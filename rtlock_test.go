package rtlock

import "testing"

func smallWorkload() WorkloadConfig {
	return WorkloadConfig{Count: 80, MeanSize: 6}
}

func TestRunSingleSiteDefaults(t *testing.T) {
	res, err := RunSingleSite(SingleSiteConfig{Workload: smallWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != 80 {
		t.Fatalf("processed %d, want 80", res.Summary.Processed)
	}
	if len(res.Records) != 80 {
		t.Fatalf("records %d", len(res.Records))
	}
	if res.Serializable != nil {
		t.Fatal("serializability reported without RecordHistory")
	}
}

func TestRunSingleSiteSerializableHistory(t *testing.T) {
	for _, proto := range []Protocol{Ceiling, CeilingExclusive, TwoPLPriority, TwoPL, TwoPLInherit} {
		res, err := RunSingleSite(SingleSiteConfig{
			Protocol:      proto,
			Workload:      smallWorkload(),
			RecordHistory: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Serializable == nil || !*res.Serializable {
			t.Fatalf("%s: committed history not conflict serializable", proto)
		}
	}
}

func TestRunSingleSiteDeterministic(t *testing.T) {
	run := func() Summary {
		res, err := RunSingleSite(SingleSiteConfig{Workload: smallWorkload()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestRunSingleSiteCustomTransactions(t *testing.T) {
	txs := []*Txn{
		{ID: 1, Kind: Update, Arrival: 0, Deadline: Time(Second),
			Ops: []Op{{Obj: 1, Mode: Write}, {Obj: 2, Mode: Write}}},
		{ID: 2, Kind: ReadOnly, Arrival: Time(5 * Millisecond), Deadline: Time(Second),
			Ops: []Op{{Obj: 3, Mode: Read}}},
	}
	res, err := RunSingleSite(SingleSiteConfig{
		Workload: WorkloadConfig{Transactions: txs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Committed != 2 {
		t.Fatalf("committed %d, want 2: %+v", res.Summary.Committed, res.Summary)
	}
}

func TestRunSingleSiteBadProtocol(t *testing.T) {
	if _, err := RunSingleSite(SingleSiteConfig{Protocol: Protocol("Z")}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunDistributedLocal(t *testing.T) {
	res, err := RunDistributed(DistributedConfig{Workload: smallWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != 80 {
		t.Fatalf("processed %d", res.Summary.Processed)
	}
	if res.Replication == nil {
		t.Fatal("local run missing replication stats")
	}
	if res.Replication.Installs == 0 {
		t.Fatal("no replica installs recorded")
	}
	if res.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestRunDistributedGlobal(t *testing.T) {
	res, err := RunDistributed(DistributedConfig{
		Global:        true,
		Workload:      WorkloadConfig{Count: 60, MeanSize: 4, MeanInterarrival: 120 * Millisecond},
		CommDelay:     5 * Millisecond,
		RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replication != nil {
		t.Fatal("global run reported replication stats")
	}
	if res.Serializable == nil || !*res.Serializable {
		t.Fatal("global committed history not serializable")
	}
}

func TestDistributedLocalBeatsGlobal(t *testing.T) {
	wl := WorkloadConfig{Count: 150, MeanSize: 6}
	local, err := RunDistributed(DistributedConfig{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	global, err := RunDistributed(DistributedConfig{Global: true, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if local.Summary.MissedPct > global.Summary.MissedPct {
		t.Fatalf("local missed %.1f%% > global %.1f%%",
			local.Summary.MissedPct, global.Summary.MissedPct)
	}
}

func TestCeilingBeatsTwoPLAtLargeSizes(t *testing.T) {
	wl := WorkloadConfig{Count: 200, MeanSize: 18}
	ceiling, err := RunSingleSite(SingleSiteConfig{Protocol: Ceiling, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	twoPL, err := RunSingleSite(SingleSiteConfig{Protocol: TwoPL, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if ceiling.Summary.MissedPct >= twoPL.Summary.MissedPct {
		t.Fatalf("ceiling missed %.1f%% not below 2PL %.1f%% at size 18",
			ceiling.Summary.MissedPct, twoPL.Summary.MissedPct)
	}
}

func TestReproduceAllScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction sweep")
	}
	sp := DefaultSingleSiteParams().Scale(0.15, 1)
	sp.Sizes = []int{6, 20}
	dp := DefaultDistParams().Scale(0.2, 1)
	dp.Mixes = []float64{0, 1}
	dp.DelayUnits = []float64{0, 8}
	dp.Fig6Delays = []float64{8}
	figs, err := ReproduceAll(sp, dp)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 8 {
		t.Fatalf("figures = %d, want 8", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) == 0 {
			t.Fatalf("figure %s has no series", f.Name)
		}
		if f.String() == "" || f.CSV() == "" {
			t.Fatalf("figure %s renders empty", f.Name)
		}
	}
}
