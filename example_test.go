package rtlock_test

import (
	"fmt"

	"rtlock"
)

// ExampleRunSingleSite runs a tiny deterministic workload under the
// priority ceiling protocol.
func ExampleRunSingleSite() {
	res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
		Protocol: rtlock.Ceiling,
		Workload: rtlock.WorkloadConfig{Seed: 1, Count: 50, MeanSize: 4},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("processed=%d missed=%d\n", res.Summary.Processed, res.Summary.Missed)
	// Output: processed=50 missed=0
}

// ExampleRunSingleSite_customTransactions runs hand-crafted transactions
// and inspects per-transaction records.
func ExampleRunSingleSite_customTransactions() {
	txs := []*rtlock.Txn{
		{ID: 1, Kind: rtlock.Update, Arrival: 0, Deadline: rtlock.Time(rtlock.Second),
			Ops: []rtlock.Op{{Obj: 1, Mode: rtlock.Write}}},
		{ID: 2, Kind: rtlock.ReadOnly, Arrival: rtlock.Time(5 * rtlock.Millisecond),
			Deadline: rtlock.Time(rtlock.Second),
			Ops:      []rtlock.Op{{Obj: 1, Mode: rtlock.Read}}},
	}
	res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
		MemoryResident: true,
		Workload:       rtlock.WorkloadConfig{Transactions: txs},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, rec := range res.Records {
		fmt.Printf("tx%d committed=%t\n", rec.ID, rec.Outcome == rtlock.Committed)
	}
	// Output:
	// tx1 committed=true
	// tx2 committed=true
}

// ExampleRunDistributed compares the two distributed architectures on
// one deterministic workload.
func ExampleRunDistributed() {
	wl := rtlock.WorkloadConfig{Seed: 2, Count: 60, MeanSize: 4, MeanInterarrival: 100 * rtlock.Millisecond}
	local, err := rtlock.RunDistributed(rtlock.DistributedConfig{Workload: wl})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	global, err := rtlock.RunDistributed(rtlock.DistributedConfig{Global: true, Workload: wl})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("local missed <= global missed: %t\n",
		local.Summary.Missed <= global.Summary.Missed)
	// Output: local missed <= global missed: true
}

// ExampleParseSpec runs a declarative JSON specification.
func ExampleParseSpec() {
	spec, err := rtlock.ParseSpec([]byte(`{
		"mode": "single",
		"protocol": "C",
		"memoryResident": true,
		"workload": {"seed": 1, "count": 30, "meanSize": 3}
	}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := spec.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("processed=%d\n", res.Summary.Processed)
	// Output: processed=30
}
