package rtlock

// Allocation-regression gate for the full single-site fast path. The
// per-package gates (internal/sim, internal/journal) pin their hot
// loops at exactly zero steady-state allocations; a whole run cannot be
// zero — each transaction spawns a goroutine and a fresh system builds
// its pools — so this gate pins the end-to-end budget instead. The
// budget is ~2x the measured cost (~19 allocs per transaction), tight
// enough that an accidental per-operation or per-record allocation
// (several per transaction) blows through it immediately.

import (
	"runtime"
	"testing"
)

// runAllocsPerTx runs the configuration twice — once to warm the
// runtime — and returns the second run's heap allocations divided by
// the transaction count.
func runAllocsPerTx(t *testing.T, cfg SingleSiteConfig) float64 {
	t.Helper()
	if _, err := RunSingleSite(cfg); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := RunSingleSite(cfg); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(cfg.Workload.Count)
}

func TestSingleSiteRunAllocGate(t *testing.T) {
	const maxAllocsPerTx = 40
	for _, tc := range []struct {
		name string
		cfg  SingleSiteConfig
	}{
		{"plain", SingleSiteConfig{Workload: WorkloadConfig{Count: 200}}},
		{"journal", SingleSiteConfig{Journal: true, Workload: WorkloadConfig{Count: 200}}},
		{"timeline", SingleSiteConfig{TimelineWindow: 10 * Second, MaxRawRecords: 64,
			Workload: WorkloadConfig{Count: 200}}},
	} {
		got := runAllocsPerTx(t, tc.cfg)
		t.Logf("%s: %.1f allocs/tx", tc.name, got)
		if got > maxAllocsPerTx {
			t.Errorf("%s: %.1f allocs per transaction exceeds the gate of %d", tc.name, got, maxAllocsPerTx)
		}
	}
}
