package rtlock

// Benchmarks regenerating each of the paper's figures at reduced scale,
// reporting the headline metric of each as a custom benchmark metric so
// `go test -bench` doubles as a quick reproduction check, plus
// micro-benchmarks of the simulation substrate.

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/experiments"
	"rtlock/internal/sim"
)

func benchSingleParams() SingleSiteParams {
	p := DefaultSingleSiteParams()
	p.Count = 150
	p.Runs = 2
	p.Sizes = []int{4, 12, 20}
	return p
}

func benchDistParams() DistParams {
	p := DefaultDistParams()
	p.Count = 100
	p.Runs = 2
	p.Mixes = []float64{0, 0.5, 1}
	p.DelayUnits = []float64{0, 2, 8}
	p.Fig6Delays = []float64{2, 8}
	return p
}

// BenchmarkFig2 regenerates the single-site throughput figure; the
// reported metrics are the size-20 normalized throughputs.
func BenchmarkFig2(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "thptC_objps")
	reportLast(b, f, "L", "thptL_objps")
}

// BenchmarkFig3 regenerates the single-site deadline-miss figure; the
// reported metrics are the size-20 miss percentages.
func BenchmarkFig3(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_pct")
	reportLast(b, f, "L", "missL_pct")
}

// BenchmarkFig4 regenerates the distributed throughput-ratio figure; the
// reported metric is the ratio at the update-only mix and largest
// plotted delay.
func BenchmarkFig4(b *testing.B) {
	p := benchDistParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	lastSeries := f.Series[len(f.Series)-1]
	b.ReportMetric(lastSeries.Points[0].Y, "ratio_localOverGlobal")
}

// BenchmarkFig5 regenerates the deadline-missing-ratio figure; the
// reported metrics are the ratios at zero and maximum delay.
func BenchmarkFig5(b *testing.B) {
	p := benchDistParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig5(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	s := f.Series[0]
	b.ReportMetric(s.Points[0].Y, "ratio_delay0")
	b.ReportMetric(s.Points[len(s.Points)-1].Y, "ratio_delayMax")
}

// BenchmarkFig6 regenerates the distributed miss-percentage figure; the
// reported metrics compare the approaches at the 50/50 mix and larger
// delay.
func BenchmarkFig6(b *testing.B) {
	p := benchDistParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	if g, ok := f.SeriesByLabel("global,delay=8"); ok {
		b.ReportMetric(mid(g).Y, "missGlobal_pct")
	}
	if l, ok := f.SeriesByLabel("local,delay=8"); ok {
		b.ReportMetric(mid(l).Y, "missLocal_pct")
	}
}

// BenchmarkDBSizeAblation regenerates the omitted database-size sweep.
func BenchmarkDBSizeAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.DBSizeAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "L", "missL_largestDB_pct")
}

// BenchmarkSemanticsAblation regenerates the §5 read-vs-exclusive
// semantics comparison.
func BenchmarkSemanticsAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.SemanticsAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_pct")
	reportLast(b, f, "CX", "missCX_pct")
}

// BenchmarkInheritAblation regenerates the §3.1 inheritance comparison.
func BenchmarkInheritAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.InheritAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_pct")
	reportLast(b, f, "PI", "missPI_pct")
}

// BenchmarkRestartAblation regenerates the §5 blocking-vs-abort
// comparison.
func BenchmarkRestartAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RestartAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_pct")
	reportLast(b, f, "HP", "missHP_pct")
	reportLast(b, f, "TO", "missTO_pct")
}

// BenchmarkPriorityPolicyAblation regenerates the priority-assignment
// comparison.
func BenchmarkPriorityPolicyAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.PriorityPolicyAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "EDF", "missEDF_pct")
	reportLast(b, f, "RANDOM", "missRandom_pct")
}

// BenchmarkBufferAblation regenerates the page-buffer sweep.
func BenchmarkBufferAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.BufferAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_largestBuf_pct")
}

// BenchmarkHotspotAblation regenerates the skewed-access sweep.
func BenchmarkHotspotAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.HotspotAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_maxSkew_pct")
	reportLast(b, f, "P", "missP_maxSkew_pct")
}

// BenchmarkPredictabilityAblation regenerates the response-tail
// comparison.
func BenchmarkPredictabilityAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.PredictabilityAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "tailC_p99p50")
	reportLast(b, f, "P", "tailP_p99p50")
}

// BenchmarkPeriodicAblation regenerates the periodic-mix sweep.
func BenchmarkPeriodicAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.PeriodicAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_allPeriodic_pct")
	reportLast(b, f, "L", "missL_allPeriodic_pct")
}

// BenchmarkOverheadAblation regenerates the lock-overhead sweep.
func BenchmarkOverheadAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.OverheadAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "C", "missC_maxOverhead_pct")
}

// BenchmarkRecoveryAblation regenerates the checkpoint-interval
// trade-off.
func BenchmarkRecoveryAblation(b *testing.B) {
	p := benchSingleParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RecoveryAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "recovery_ms", "restartNoCkpt_ms")
}

// BenchmarkConsistencyAblation regenerates the temporal-consistency
// comparison.
func BenchmarkConsistencyAblation(b *testing.B) {
	p := benchDistParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.ConsistencyAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "latest", "inconsistentLatest_pct")
	reportLast(b, f, "snapshot", "inconsistentSnapshot_pct")
}

// BenchmarkPlacementAblation regenerates the GCM-placement comparison.
func BenchmarkPlacementAblation(b *testing.B) {
	p := benchDistParams()
	var f Figure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.PlacementAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, f, "hub", "missHub_pct")
	reportLast(b, f, "leaf", "missLeaf_pct")
}

func reportLast(b *testing.B, f Figure, label, metric string) {
	b.Helper()
	if s, ok := f.SeriesByLabel(label); ok && len(s.Points) > 0 {
		b.ReportMetric(s.Points[len(s.Points)-1].Y, metric)
	}
}

func mid(s experiments.Series) experiments.Point { return s.Points[len(s.Points)/2] }

// BenchmarkKernelEvents measures raw event dispatch throughput of the
// simulation kernel.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	b.ResetTimer()
	k.After(1, tick)
	k.Run()
}

// BenchmarkProcessSwitch measures the coroutine handshake: one process
// sleeping repeatedly.
func BenchmarkProcessSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := p.Sleep(1); err != nil {
				return
			}
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkCPUPreemption measures the preemptive CPU resource under
// alternating-priority load.
func BenchmarkCPUPreemption(b *testing.B) {
	k := sim.NewKernel()
	cpu := sim.NewCPU(k, sim.PreemptivePriority)
	k.Spawn("low", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := cpu.Use(p, sim.Priority{Deadline: 100, TxID: 1}, 10); err != nil {
				return
			}
		}
	})
	k.Spawn("high", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := cpu.Use(p, sim.Priority{Deadline: 1, TxID: 2}, 5); err != nil {
				return
			}
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkCeilingAcquireRelease measures the ceiling manager's lock
// path without contention.
func BenchmarkCeilingAcquireRelease(b *testing.B) {
	k := sim.NewKernel()
	m := core.NewCeiling(k)
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			st := core.NewTxState(int64(i), sim.Priority{Deadline: int64(i), TxID: int64(i)}, p)
			st.WriteSet = []core.ObjectID{1, 2, 3}
			m.Register(st)
			for _, obj := range st.WriteSet {
				if err := m.Acquire(p, st, obj, core.Write); err != nil {
					return
				}
			}
			m.ReleaseAll(st)
			m.Unregister(st)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkTwoPLAcquireRelease measures the 2PL lock path without
// contention.
func BenchmarkTwoPLAcquireRelease(b *testing.B) {
	k := sim.NewKernel()
	m := core.NewTwoPLPriority(k)
	k.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			st := core.NewTxState(int64(i), sim.Priority{Deadline: int64(i), TxID: int64(i)}, p)
			m.Register(st)
			for _, obj := range []core.ObjectID{1, 2, 3} {
				if err := m.Acquire(p, st, obj, core.Write); err != nil {
					return
				}
			}
			m.ReleaseAll(st)
			m.Unregister(st)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkSingleSiteRun measures an end-to-end single-site simulation
// per iteration (one full workload under the ceiling protocol).
func BenchmarkSingleSiteRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunSingleSite(SingleSiteConfig{
			Workload: WorkloadConfig{Count: 200, MeanSize: 10, Seed: int64(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkDistributedRun measures an end-to-end distributed local-
// ceiling simulation per iteration.
func BenchmarkDistributedRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunDistributed(DistributedConfig{
			Workload: WorkloadConfig{Count: 150, MeanSize: 6, Seed: int64(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkJournaledRun measures the same single-site simulation with
// the replay journal recording every kernel-level event — the delta
// against BenchmarkSingleSiteRun is the journaling overhead.
func BenchmarkJournaledRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunSingleSite(SingleSiteConfig{
			Journal:  true,
			Workload: WorkloadConfig{Count: 200, MeanSize: 10, Seed: int64(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkAuditReplay measures replaying one recorded journal through
// the full single-site auditor set.
func BenchmarkAuditReplay(b *testing.B) {
	res, err := RunSingleSite(SingleSiteConfig{
		Journal:  true,
		Workload: WorkloadConfig{Count: 200, MeanSize: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Auditors are stateful; each replay needs a fresh set.
		auds, err := AuditorsForProtocol(Ceiling)
		if err != nil {
			b.Fatal(err)
		}
		if vs := AuditJournal(res.Journal, auds...); len(vs) > 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
}
