package rtlock

import "testing"

// TestExploreFacadeSingleSite: the facade explores a single-site
// protocol clean and reports non-vacuous coverage.
func TestExploreFacadeSingleSite(t *testing.T) {
	rep, err := Explore(ExploreConfig{
		Protocol: Ceiling,
		Options:  ExploreOptions{Strategy: ExploreDFS, Schedules: 12, MaxDepth: 12, Branch: 2, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		t.Fatalf("clean tree produced counterexamples: %s", rep.Summary())
	}
	if rep.Explored == 0 || rep.Deepest == 0 {
		t.Fatalf("vacuous exploration: %s", rep.Summary())
	}
}

// TestExploreFacadeDistributed: the facade explores the distributed
// architectures through the same entry point.
func TestExploreFacadeDistributed(t *testing.T) {
	rep, err := Explore(ExploreConfig{
		Distributed: true,
		Global:      true,
		Options:     ExploreOptions{Strategy: ExploreRandom, Schedules: 6, MaxDepth: 16, Branch: 2, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		t.Fatalf("clean tree produced counterexamples: %s", rep.Summary())
	}
	if rep.Target != "dist/global" {
		t.Fatalf("target = %q, want dist/global", rep.Target)
	}
}

// TestExploreFacadeBadProtocol: unknown protocols error.
func TestExploreFacadeBadProtocol(t *testing.T) {
	if _, err := Explore(ExploreConfig{Protocol: "ZZ"}); err == nil {
		t.Fatal("expected error for unknown protocol")
	}
}
