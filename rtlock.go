// Package rtlock is a simulation library for real-time database locking
// protocols, reproducing Son & Chang, "Performance Evaluation of
// Real-Time Locking Protocols using a Distributed Software Prototyping
// Environment".
//
// The library bundles a deterministic process-oriented discrete-event
// kernel (the StarLite role in the paper's prototyping environment), a
// real-time transaction runtime with hard deadlines and restarts, nine
// concurrency-control protocols — the priority ceiling protocol (with
// read/write or exclusive lock semantics), two-phase locking with and
// without priority, basic priority inheritance, High-Priority and
// conditional-restart wounding, waits-for deadlock detection, and basic
// timestamp ordering — and the two distributed architectures of the
// paper: a global ceiling manager (with message-based two-phase commit)
// and local ceiling managers over fully replicated data with
// asynchronous update propagation, optional multi-version snapshot
// reads, configurable topologies, and site-failure injection.
//
// Quick start:
//
//	res, err := rtlock.RunSingleSite(rtlock.SingleSiteConfig{
//		Protocol: rtlock.Ceiling,
//		Workload: rtlock.WorkloadConfig{Count: 500, MeanSize: 8},
//	})
//	fmt.Println(res.Summary)
//
// The experiment harness in ReproduceAll (or per-figure functions)
// regenerates every table and figure of the paper's evaluation; the
// rtdbsim command wraps them on the command line.
package rtlock

import (
	"fmt"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/dist"
	"rtlock/internal/experiments"
	"rtlock/internal/explore"
	"rtlock/internal/faults"
	"rtlock/internal/journal"
	"rtlock/internal/metrics"
	"rtlock/internal/netsim"
	"rtlock/internal/place"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/timeline"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// Protocol selects a concurrency-control protocol, using the paper's
// letters.
type Protocol = experiments.Protocol

// The protocols of the study.
const (
	// Ceiling is the priority ceiling protocol (C in the paper).
	Ceiling = experiments.ProtoCeiling
	// CeilingExclusive is the ceiling protocol with exclusive-only
	// lock semantics (the §5 ablation).
	CeilingExclusive = experiments.ProtoCeilingX
	// TwoPLPriority is two-phase locking with priority mode (P).
	TwoPLPriority = experiments.ProtoTwoPLPrio
	// TwoPL is two-phase locking without priority mode (L).
	TwoPL = experiments.ProtoTwoPL
	// TwoPLInherit is two-phase locking with basic priority
	// inheritance (§3.1).
	TwoPLInherit = experiments.ProtoInherit
	// TwoPLHighPriority is two-phase locking with High-Priority
	// wounding: conflicting lower-priority holders are aborted and
	// restarted.
	TwoPLHighPriority = experiments.ProtoTwoPLHP
	// TwoPLDetect is two-phase locking with waits-for deadlock
	// detection; victims restart.
	TwoPLDetect = experiments.ProtoTwoPLDD
	// TimestampOrdering is basic timestamp ordering — non-blocking,
	// abort-based.
	TimestampOrdering = experiments.ProtoTimestamp
	// TwoPLConditional is two-phase locking with conditional restart:
	// wound a lower-priority holder only when the requester's slack
	// cannot absorb the wait.
	TwoPLConditional = experiments.ProtoTwoPLCR
)

// Re-exported workload types, so callers can hand-craft transactions.
type (
	// Txn is one transaction: timing constraints, home site, and
	// access sequence.
	Txn = workload.Txn
	// Op is one access in a transaction.
	Op = workload.Op
	// Kind distinguishes update from read-only transactions.
	Kind = workload.Kind
	// ObjectID names a data object.
	ObjectID = core.ObjectID
	// Mode is a lock mode.
	Mode = core.Mode
	// SiteID identifies a site.
	SiteID = db.SiteID
	// Duration is simulated time; use the Millisecond/Second
	// constants.
	Duration = sim.Duration
	// Time is a simulated instant.
	Time = sim.Time
	// Summary is the aggregate result of a run.
	Summary = stats.Summary
	// TxRecord is the performance monitor's per-transaction record.
	TxRecord = stats.TxRecord
	// Figure is one reproduced table/figure.
	Figure = experiments.Figure
	// Outcome classifies how a transaction left the system.
	Outcome = stats.Outcome
	// Trace is the performance monitor's event log.
	Trace = stats.Trace
	// TraceEvent is one recorded occurrence in a Trace.
	TraceEvent = stats.Event
	// Topology is a site interconnect with per-pair delays.
	Topology = netsim.Topology
	// ReplicationStats aggregates the local approach's replica
	// behavior.
	ReplicationStats = dist.ReplicationStats
	// NetReport aggregates a distributed run's message-layer counters:
	// sends, deliveries, and per-cause losses.
	NetReport = stats.NetReport
	// FaultPlan is a deterministic fault-injection schedule: site
	// crash/recover windows, per-link loss/duplication/jitter, and
	// symmetric partitions. Identical (seed, config, plan) triples
	// replay byte-identically.
	FaultPlan = faults.Plan
	// FaultCrash schedules one site crash (and optional recovery).
	FaultCrash = faults.Crash
	// FaultLink degrades messages on matching links for a window.
	FaultLink = faults.LinkFault
	// FaultPartition splits the sites into two groups for a window.
	FaultPartition = faults.Partition
	// FaultGenParams parameterizes GenerateFaultPlan.
	FaultGenParams = faults.GenParams
	// MetricsRegistry is the deterministic virtual-time metrics
	// registry a run fills when the Metrics flag is set. Export it
	// with WritePrometheus, WriteCSV, or WriteHTML (internal/metrics).
	MetricsRegistry = metrics.Registry
	// LockProfile is the journal-derived lock-contention profile: per-
	// object wait/hold/inversion totals, abort causes, and folded
	// blocking-chain stacks.
	LockProfile = metrics.Profile
	// ObjectProfile is one contended object's row in a LockProfile.
	ObjectProfile = metrics.ObjectProfile
	// TimelineRow is one virtual-time window of the streaming timeline:
	// throughput, miss %, response quantiles, lock-wait quantiles, net
	// loss/dup, and the in-flight gauge, rolled per TimelineWindow.
	TimelineRow = metrics.TimelineRow
)

// HTMLReport renders the static self-contained HTML observability
// report for a completed metrics-enabled run: the registry's final
// state plus the lock-contention profile, no scripts or timestamps, so
// identical runs render byte-identical reports.
func HTMLReport(title string, reg *MetricsRegistry, prof *LockProfile) []byte {
	return metrics.HTML(title, reg, prof)
}

// HTMLTimelineReport renders the HTML observability report with a
// windowed-timeline section from a TimelineWindow-enabled run's rows.
func HTMLTimelineReport(title string, reg *MetricsRegistry, prof *LockProfile, rows []TimelineRow) []byte {
	return metrics.HTMLWithTimeline(title, reg, prof, rows)
}

// TimelineJSONL renders timeline rows as deterministic JSONL (one JSON
// object per window; see README "Timeline export" for the schema).
func TimelineJSONL(rows []TimelineRow) []byte { return timeline.JSONL(rows) }

// TimelineCSV renders timeline rows as deterministic CSV.
func TimelineCSV(rows []TimelineRow) []byte { return timeline.CSV(rows) }

// ParseFaultPlan decodes a JSON fault plan (strict: unknown fields are
// errors) and validates nothing beyond syntax; RunDistributed validates
// against the cluster's site count.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return faults.Parse(data) }

// GenerateFaultPlan derives a random-but-reproducible fault plan from a
// seed and a severity knob; the same arguments always yield the same
// plan.
func GenerateFaultPlan(seed int64, p FaultGenParams) (*FaultPlan, error) {
	return faults.Generate(seed, p)
}

// Convenience re-exports.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second

	Read  = core.Read
	Write = core.Write

	Update   = workload.Update
	ReadOnly = workload.ReadOnly

	// Committed and DeadlineMissed are the transaction outcomes.
	Committed      = stats.Committed
	DeadlineMissed = stats.DeadlineMissed

	// Trace event kinds.
	TraceEventArrive       = stats.EvArrive
	TraceEventLockRequest  = stats.EvLockRequest
	TraceEventLockGrant    = stats.EvLockGrant
	TraceEventOpDone       = stats.EvOpDone
	TraceEventCommit       = stats.EvCommit
	TraceEventDeadlineMiss = stats.EvDeadlineMiss
	TraceEventRestart      = stats.EvRestart
)

// WorkloadConfig describes the generated transaction load, following the
// paper's model: exponential interarrival, uniform object selection,
// deadlines proportional to size, earliest-deadline-highest priorities.
type WorkloadConfig struct {
	// Seed drives the deterministic random stream (default 1).
	Seed int64
	// Count is the number of transactions (default 500).
	Count int
	// MeanInterarrival is the mean arrival spacing (default 450ms
	// single-site, 30ms distributed — the calibrated heavy loads).
	MeanInterarrival Duration
	// MeanSize is the mean number of objects accessed (default 10
	// single-site, 6 distributed).
	MeanSize int
	// ReadOnlyFrac is the fraction of read-only transactions
	// (default 0).
	ReadOnlyFrac float64
	// SlackMin and SlackMax bound the uniform deadline slack factor
	// (defaults 4 and 8).
	SlackMin, SlackMax float64
	// PeriodicFrac generates that fraction of update transactions as
	// periodic task instances (default 0).
	PeriodicFrac float64
	// Period is the period of periodic streams (default
	// 10×MeanInterarrival).
	Period Duration
	// ImplicitDeadlines gives periodic instances the start of the next
	// period as their deadline.
	ImplicitDeadlines bool
	// BurstFactor, when > 1, makes the arrival process bursty: a
	// deterministic square wave alternates BurstOn at BurstFactor times
	// the base rate with BurstOff at the base rate. Zero or one leaves
	// the load unchanged.
	BurstFactor float64
	// BurstOn and BurstOff are the burst and quiet phase widths; both
	// must be positive when BurstFactor > 1.
	BurstOn, BurstOff Duration
	// LocalityProb, for distributed runs with a sharded, quorum, or
	// primary-only placement, biases object selection toward the
	// transaction's home shard: each access is drawn Zipf-skewed from
	// the home site's primaries with this probability, uniformly from
	// the whole database otherwise. Zero keeps uniform global
	// selection; requires Placement to be set.
	LocalityProb float64
	// Transactions, when non-nil, bypasses generation entirely and
	// runs exactly these transactions.
	Transactions []*Txn
}

// SingleSiteConfig configures a single-site run (the setting of the
// paper's Figures 2–3).
type SingleSiteConfig struct {
	// Protocol under test (default Ceiling).
	Protocol Protocol
	// DBSize is the number of data objects (default 200).
	DBSize int
	// CPUPerObj is the CPU demand per object accessed (default 10ms).
	CPUPerObj Duration
	// IOPerObj is the I/O delay per object accessed, served in
	// parallel (default 20ms).
	IOPerObj Duration
	// MemoryResident forces IOPerObj to zero, modeling the
	// memory-resident database of the distributed experiments.
	MemoryResident bool
	// Workload describes the load.
	Workload WorkloadConfig
	// RecordHistory keeps the access history and reports whether the
	// committed history was conflict serializable.
	RecordHistory bool
	// TraceEvents, when positive, records up to that many
	// per-transaction events (arrivals, lock requests and grants with
	// blocked intervals, commits, misses, restarts) into Result.Trace.
	TraceEvents int
	// BufferPages sizes the LRU object buffer; accesses that hit skip
	// the I/O delay. Zero disables buffering.
	BufferPages int
	// IODisks bounds I/O parallelism (misses queue FIFO for a disk).
	// Zero keeps the paper's unbounded parallel-I/O assumption.
	IODisks int
	// WAL enables the redo-only write-ahead log: commits force a log
	// record before their writes become visible, and Result.Recovery
	// reports the restart cost.
	WAL bool
	// CheckpointEvery spaces WAL checkpoints (zero disables the
	// checkpointer).
	CheckpointEvery Duration
	// Journal records every kernel-level event into Result.Journal;
	// byte-identical journals across runs prove determinism.
	Journal bool
	// Audit implies Journal and additionally replays the journal
	// through the protocol's invariant auditors; violations land in
	// Result.Violations.
	Audit bool
	// Metrics implies Journal and additionally samples a deterministic
	// virtual-time metrics registry into Result.Metrics and derives the
	// lock-contention profile into Result.LockProfile. Identical
	// (seed, config) runs export byte-identical metrics.
	Metrics bool
	// MetricsInterval spaces registry snapshots in virtual time (zero
	// picks the 100ms default).
	MetricsInterval Duration
	// TimelineWindow, when positive, rolls the run into virtual-time
	// windows of this width and fills Result.Timeline: per-window
	// throughput, miss %, response quantiles, lock-wait quantiles, and
	// the in-flight gauge. Unlike Metrics it does not imply a journal,
	// so million-transaction runs stay bounded-memory; combine with
	// Metrics to also keep the sampled registry.
	TimelineWindow Duration
	// TimelineMaxWindows bounds the retained timeline rows (ring of the
	// newest; zero picks a 4096-window default).
	TimelineMaxWindows int
	// MaxRawRecords caps per-transaction record retention: only the
	// newest MaxRawRecords land in Result.Records, while Summary and the
	// streaming quantiles stay exact. Zero keeps every record.
	MaxRawRecords int
}

// DistributedConfig configures a distributed run (the setting of
// Figures 4–6).
type DistributedConfig struct {
	// Global selects the global-ceiling-manager architecture; false
	// (the default) selects local ceilings with full replication.
	// Mutually exclusive with the non-full Placement policies.
	Global bool
	// Placement selects a point on the data placement and replication
	// spectrum (internal/place): "" or "full" keeps the paper's fully
	// replicated layout under the approach selected by Global; "shard"
	// runs primary-copy sharding (locks and data at each object's
	// primary, 2PC for cross-shard writers); "quorum" adds K-replica
	// quorum replication with R/W rounds; "primary" is the
	// uncoordinated primary-only baseline — no distributed locking, no
	// 2PC, serializability waived and journaled as such. Comparing a
	// coordinated mode against "primary" yields its consistency tax.
	Placement string
	// HashShards selects hash partitioning for the primary mapping of
	// sharded, quorum, and primary-only placements (default: contiguous
	// range partitioning).
	HashShards bool
	// Replicas is the replica-set size K for the quorum placement
	// (default min(3, Sites)).
	Replicas int
	// ReadQuorum and WriteQuorum are the quorum sizes R and W over the
	// K replicas; defaults are a read majority (K/2+1) and the smallest
	// intersecting write quorum (K-R+1). R+W must exceed K.
	ReadQuorum, WriteQuorum int
	// Sites is the number of fully interconnected sites (default 3).
	Sites int
	// DBSize is the number of data objects (default 200).
	DBSize int
	// CommDelay is the one-way inter-site delay over a uniform full
	// mesh (default 20ms). Ignored when Topology is set.
	CommDelay Duration
	// Topology, when non-nil, supplies per-pair delays; build one with
	// NewFullMesh, NewRing, NewStar, or NewCustomTopology.
	Topology *Topology
	// GCMSite places the global ceiling manager (global mode only).
	GCMSite SiteID
	// CPUPerObj is the CPU demand per object (default 10ms); the
	// distributed database is memory-resident.
	CPUPerObj Duration
	// ApplyPerObj is the replica-installation CPU per object for the
	// local approach (default CPUPerObj/2).
	ApplyPerObj Duration
	// Multiversion gives read-only transactions in the local approach
	// temporally consistent snapshot reads (the paper's §4 closing
	// multi-version idea) instead of latest-copy reads.
	Multiversion bool
	// Failures schedules sites to become unreachable: messages toward
	// a down site are dropped and synchronous requests time out (the
	// paper's message-server time-out mechanism).
	Failures []SiteFailure
	// Faults, when non-nil, attaches a deterministic fault-injection
	// plan: sites crash (losing volatile state) and recover, links
	// drop/duplicate/delay messages, partitions cut the mesh. Attaching
	// a plan also arms the crash-recovery machinery — write-ahead-
	// logged 2PC votes with redo, presumed-abort coordination with
	// bounded retries, and (global approach) failover to per-site local
	// ceiling managers while the GCM site is down. An empty plan arms
	// the machinery but injects nothing; the journal stays byte-
	// identical to a run without it.
	Faults *FaultPlan
	// FaultSeed seeds the fault injector's random stream (defaults to
	// the workload seed).
	FaultSeed int64
	// SiteSpeed optionally scales each site's processor speed; empty
	// means uniform speed 1.
	SiteSpeed []float64
	// SnapshotLag is the snapshot age for multiversion reads (zero
	// uses a default covering typical propagation).
	SnapshotLag Duration
	// Workload describes the load. Updates are homed at their write
	// set's primary site, read-only transactions at random sites.
	Workload WorkloadConfig
	// RecordHistory keeps the access history (meaningful for the
	// global approach; the local approach's stale replica reads are
	// intentionally not serializable system-wide).
	RecordHistory bool
	// Journal records every kernel-level event into Result.Journal.
	Journal bool
	// Audit implies Journal and replays the journal through the
	// architecture's invariant auditors; violations land in
	// Result.Violations.
	Audit bool
	// Metrics implies Journal and additionally samples a deterministic
	// virtual-time metrics registry into Result.Metrics and derives the
	// lock-contention profile into Result.LockProfile.
	Metrics bool
	// MetricsInterval spaces registry snapshots in virtual time (zero
	// picks the 100ms default).
	MetricsInterval Duration
	// TimelineWindow, when positive, rolls the run into virtual-time
	// windows of this width and fills Result.Timeline (see
	// SingleSiteConfig.TimelineWindow).
	TimelineWindow Duration
	// TimelineMaxWindows bounds the retained timeline rows (zero picks
	// a 4096-window default).
	TimelineMaxWindows int
	// MaxRawRecords caps per-transaction record retention (see
	// SingleSiteConfig.MaxRawRecords).
	MaxRawRecords int
}

// RecoveryInfo summarizes the write-ahead log after a WAL-enabled run.
type RecoveryInfo struct {
	// Records is the total number of commit records forced.
	Records int
	// Checkpoints is the number of checkpoints taken.
	Checkpoints int
	// RedoTail is the number of records a restart would replay.
	RedoTail int
	// EstimatedRestart is the modeled restart duration (snapshot load
	// plus redo replay).
	EstimatedRestart Duration
}

// SiteFailure makes a site unreachable from At until RecoverAt (no
// recovery when RecoverAt is not after At).
type SiteFailure struct {
	Site      SiteID
	At        Time
	RecoverAt Time
}

// Result is the outcome of a run.
type Result struct {
	// Summary aggregates throughput and deadline misses.
	Summary Summary
	// Records lists every processed transaction.
	Records []TxRecord
	// Serializable reports whether the committed history was conflict
	// serializable; it is nil unless RecordHistory was set.
	Serializable *bool
	// Replication holds replica statistics for distributed local-
	// ceiling runs, nil otherwise.
	Replication *ReplicationStats
	// Trace holds the event log when tracing was requested.
	Trace *Trace
	// Recovery summarizes the write-ahead log at the end of a WAL run,
	// nil otherwise.
	Recovery *RecoveryInfo
	// Messages is the total inter-site message count (distributed
	// runs).
	Messages int
	// Net breaks the message traffic down by outcome (distributed
	// runs), attributing every loss to its cause; nil for single-site
	// runs.
	Net *NetReport
	// Journal is the deterministic replay journal, nil unless the
	// Journal or Audit flag was set.
	Journal *Journal
	// Violations lists invariant violations found by the auditors; it
	// is non-nil (possibly empty) exactly when Audit was set.
	Violations []Violation
	// Metrics is the sampled virtual-time registry, nil unless the
	// Metrics flag was set.
	Metrics *MetricsRegistry
	// LockProfile is the journal-derived contention profile, nil
	// unless the Metrics flag was set.
	LockProfile *LockProfile
	// Timeline holds the per-window rows of a TimelineWindow-enabled
	// run, oldest first; nil otherwise. Export with TimelineJSONL,
	// TimelineCSV, or HTMLTimelineReport.
	Timeline []TimelineRow
	// TimelineDropped reports how many early windows the timeline ring
	// overwrote (0 unless the run outlived TimelineMaxWindows windows).
	TimelineDropped int
	// RawRetained and RawDropped report per-transaction record
	// retention under a MaxRawRecords cap: Records holds RawRetained
	// entries and RawDropped older ones were discarded (0 uncapped).
	RawRetained, RawDropped int
}

func (w *WorkloadConfig) fill(singleSite bool) {
	if w.Seed == 0 {
		w.Seed = 1
	}
	if w.Count == 0 {
		w.Count = 500
	}
	if w.MeanInterarrival == 0 {
		if singleSite {
			w.MeanInterarrival = 450 * Millisecond
		} else {
			w.MeanInterarrival = 30 * Millisecond
		}
	}
	if w.MeanSize == 0 {
		if singleSite {
			w.MeanSize = 10
		} else {
			w.MeanSize = 6
		}
	}
	if w.SlackMin == 0 {
		w.SlackMin = 4
	}
	if w.SlackMax == 0 {
		w.SlackMax = 8
	}
}

// RunSingleSite executes one single-site simulation.
func RunSingleSite(cfg SingleSiteConfig) (*Result, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = Ceiling
	}
	if cfg.DBSize == 0 {
		cfg.DBSize = 200
	}
	if cfg.CPUPerObj == 0 {
		cfg.CPUPerObj = 10 * Millisecond
	}
	if cfg.IOPerObj == 0 {
		cfg.IOPerObj = 20 * Millisecond
	}
	if cfg.MemoryResident {
		cfg.IOPerObj = 0
	}
	cfg.Workload.fill(true)

	newMgr, disc, err := experiments.ManagerFor(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	// Single-site loads stream: arrivals are scheduled one event at a
	// time so a million-transaction run never materializes the whole
	// load. LoadStream journals identically to Load, so golden journals
	// are unaffected.
	var stream *workload.Stream
	if cfg.Workload.Transactions == nil {
		p, err := buildParams(cfg.Workload, 1, cfg.DBSize, cfg.CPUPerObj+cfg.IOPerObj, false)
		if err != nil {
			return nil, err
		}
		if stream, err = workload.NewStream(p); err != nil {
			return nil, err
		}
	}
	var trace *stats.Trace
	if cfg.TraceEvents > 0 {
		trace = stats.NewTrace(cfg.TraceEvents)
	}
	var jrn *journal.Journal
	if cfg.Journal || cfg.Audit || cfg.Metrics {
		jrn = journal.New(cfg.Workload.Seed, fmt.Sprintf(
			"single/%s/db=%d/cpu=%d/io=%d/count=%d/size=%d/ro=%g",
			cfg.Protocol, cfg.DBSize, int64(cfg.CPUPerObj), int64(cfg.IOPerObj),
			cfg.Workload.Count, cfg.Workload.MeanSize, cfg.Workload.ReadOnlyFrac))
	}
	reg, tl := buildTelemetry(cfg.Metrics, cfg.TimelineWindow, cfg.TimelineMaxWindows)
	sys, err := txn.NewSystem(txn.Config{
		CPUPerObj:       cfg.CPUPerObj,
		IOPerObj:        cfg.IOPerObj,
		CPUDiscipline:   disc,
		NewManager:      newMgr,
		RecordHistory:   cfg.RecordHistory,
		Trace:           trace,
		BufferPages:     cfg.BufferPages,
		IODisks:         cfg.IODisks,
		WAL:             cfg.WAL,
		CheckpointEvery: cfg.CheckpointEvery,
		Journal:         jrn,
		Metrics:         reg,
		MetricsInterval: cfg.MetricsInterval,
		Timeline:        tl,
		MaxRawRecords:   cfg.MaxRawRecords,
	})
	if err != nil {
		return nil, err
	}
	if stream != nil {
		sys.LoadStream(stream)
	} else {
		sys.Load(cfg.Workload.Transactions)
	}
	sum := sys.Run()
	res := &Result{Summary: sum, Records: sys.Monitor.Records(), Trace: trace, Journal: jrn,
		RawRetained: sys.Monitor.RawRetained(), RawDropped: sys.Monitor.RawDropped()}
	if cfg.Metrics {
		res.Metrics = reg
		res.LockProfile = metrics.FromJournal(jrn, 0)
	}
	if tl != nil {
		res.Timeline = tl.Rows()
		res.TimelineDropped = tl.Dropped()
	}
	if cfg.Audit {
		res.Violations = audit.Run(jrn, audit.ForManager(sys.Mgr.Name())...)
		if res.Violations == nil {
			res.Violations = []Violation{}
		}
	}
	if sys.Log != nil {
		res.Recovery = &RecoveryInfo{
			Records:          sys.Log.Records(),
			Checkpoints:      sys.Log.Checkpoints(),
			RedoTail:         sys.Log.RedoLength(),
			EstimatedRestart: sys.Log.RecoveryTime(Millisecond/10, Millisecond),
		}
	}
	if sys.History != nil {
		ok := sys.History.ConflictSerializable()
		res.Serializable = &ok
	}
	return res, nil
}

// RunDistributed executes one distributed simulation.
func RunDistributed(cfg DistributedConfig) (*Result, error) {
	if cfg.Sites == 0 {
		cfg.Sites = 3
	}
	if cfg.DBSize == 0 {
		cfg.DBSize = 200
	}
	if cfg.CPUPerObj == 0 {
		cfg.CPUPerObj = 10 * Millisecond
	}
	if cfg.CommDelay == 0 {
		cfg.CommDelay = 20 * Millisecond
	}
	cfg.Workload.fill(false)

	approach := dist.LocalCeiling
	if cfg.Global {
		approach = dist.GlobalCeiling
	}
	// Resolve the placement policy. "" and "full" keep the legacy
	// approach selection; the other policies select their own execution
	// model and leave the approach unset.
	var pol place.Policy
	if cfg.Placement != "" {
		var err error
		if pol, err = place.ParsePolicy(cfg.Placement); err != nil {
			return nil, err
		}
	}
	placed := pol != 0 && pol != place.Full
	if placed {
		if cfg.Global {
			return nil, fmt.Errorf("rtlock: placement %s selects its own execution model; Global must be false", cfg.Placement)
		}
		approach = 0
	}
	if cfg.Workload.LocalityProb > 0 && !placed {
		return nil, fmt.Errorf("rtlock: LocalityProb requires a sharded, quorum, or primary-only placement")
	}
	var jrn *journal.Journal
	if cfg.Journal || cfg.Audit || cfg.Metrics {
		arch := approach.String()
		if placed {
			arch = pol.String()
		}
		key := fmt.Sprintf(
			"dist/%s/sites=%d/db=%d/delay=%d/count=%d/size=%d/ro=%g/mv=%t",
			arch, cfg.Sites, cfg.DBSize, int64(cfg.CommDelay),
			cfg.Workload.Count, cfg.Workload.MeanSize, cfg.Workload.ReadOnlyFrac,
			cfg.Multiversion)
		if placed {
			// The placement parameters are part of the run identity; the
			// legacy and full layouts keep the historical key so existing
			// golden journals stay byte-identical.
			key += fmt.Sprintf("/place=%s", pol)
			if cfg.HashShards {
				key += "/hash"
			}
			if pol == place.Quorum {
				key += fmt.Sprintf("/k=%d/r=%d/w=%d", cfg.Replicas, cfg.ReadQuorum, cfg.WriteQuorum)
			}
			if cfg.Workload.LocalityProb > 0 {
				key += fmt.Sprintf("/loc=%g", cfg.Workload.LocalityProb)
			}
		}
		if !cfg.Faults.Empty() {
			// An empty plan keeps the fault-free config key so its
			// journal stays byte-identical to a run without one.
			key += "/" + cfg.Faults.String()
		}
		jrn = journal.New(cfg.Workload.Seed, key)
	}
	reg, tl := buildTelemetry(cfg.Metrics, cfg.TimelineWindow, cfg.TimelineMaxWindows)
	cluster, err := dist.NewCluster(dist.Config{
		Approach:        approach,
		Placement:       pol,
		HashShards:      cfg.HashShards,
		Replicas:        cfg.Replicas,
		ReadQuorum:      cfg.ReadQuorum,
		WriteQuorum:     cfg.WriteQuorum,
		Sites:           cfg.Sites,
		Objects:         cfg.DBSize,
		CommDelay:       cfg.CommDelay,
		Topology:        cfg.Topology,
		GCMSite:         cfg.GCMSite,
		CPUPerObj:       cfg.CPUPerObj,
		ApplyPerObj:     cfg.ApplyPerObj,
		Multiversion:    cfg.Multiversion,
		SnapshotLag:     cfg.SnapshotLag,
		SiteSpeed:       cfg.SiteSpeed,
		RecordHistory:   cfg.RecordHistory,
		Journal:         jrn,
		Metrics:         reg,
		MetricsInterval: cfg.MetricsInterval,
		Timeline:        tl,
		MaxRawRecords:   cfg.MaxRawRecords,
	})
	if err != nil {
		return nil, err
	}
	load := cfg.Workload.Transactions
	if load == nil {
		load, err = workload.Generate(workload.Params{
			Seed:              cfg.Workload.Seed,
			Catalog:           cluster.Catalog,
			Count:             cfg.Workload.Count,
			MeanInterarrival:  cfg.Workload.MeanInterarrival,
			MeanSize:          cfg.Workload.MeanSize,
			ReadOnlyFrac:      cfg.Workload.ReadOnlyFrac,
			PerObjCost:        cfg.CPUPerObj,
			SlackMin:          cfg.Workload.SlackMin,
			SlackMax:          cfg.Workload.SlackMax,
			LocalWriteSets:    !placed,
			LocalityProb:      cfg.Workload.LocalityProb,
			PeriodicFrac:      cfg.Workload.PeriodicFrac,
			Period:            cfg.Workload.Period,
			ImplicitDeadlines: cfg.Workload.ImplicitDeadlines,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Workload.Seed
		}
		if err := cluster.AttachFaults(cfg.Faults, seed); err != nil {
			return nil, err
		}
	}
	for _, f := range cfg.Failures {
		cluster.FailSite(f.Site, f.At, f.RecoverAt)
	}
	cluster.Load(load)
	sum := cluster.Run()
	net := cluster.NetReport()
	res := &Result{
		Summary:     sum,
		Records:     cluster.Monitor.Records(),
		Messages:    cluster.Net.Sent,
		Net:         &net,
		Journal:     jrn,
		RawRetained: cluster.Monitor.RawRetained(),
		RawDropped:  cluster.Monitor.RawDropped(),
	}
	if cfg.Metrics {
		res.Metrics = reg
		res.LockProfile = metrics.FromJournal(jrn, 0)
	}
	if tl != nil {
		res.Timeline = tl.Rows()
		res.TimelineDropped = tl.Dropped()
	}
	if cfg.Audit {
		var auds []audit.Auditor
		if placed {
			auds = audit.ForPlacement(pol.String())
			if cfg.Faults != nil && !cfg.Faults.Empty() {
				auds = audit.ForPlacementFaults(pol.String())
			}
		} else {
			auds = audit.ForApproach(approach.String())
			if cfg.Faults != nil && !cfg.Faults.Empty() {
				auds = audit.ForFaults(approach.String())
			}
		}
		res.Violations = audit.Run(jrn, auds...)
		if res.Violations == nil {
			res.Violations = []Violation{}
		}
	}
	if approach == dist.LocalCeiling {
		repl := cluster.Replication()
		res.Replication = &repl
	}
	if cluster.History != nil {
		ok := cluster.History.ConflictSerializable()
		res.Serializable = &ok
	}
	return res, nil
}

// timelineSampleRetention bounds the probe registry's sample history in
// timeline-only mode: the timeline needs live probe series, not an O(run
// length) sample log, so long runs stay bounded-memory.
const timelineSampleRetention = 1024

// buildTelemetry assembles the metrics registry and timeline collector a
// run needs. With the Metrics flag the registry is user-visible and
// unbounded (compat); a timeline without Metrics gets a private probe
// registry with capped sample retention that never reaches the Result.
func buildTelemetry(metricsOn bool, window Duration, maxWindows int) (*metrics.Registry, *timeline.Collector) {
	var reg *metrics.Registry
	if metricsOn {
		reg = metrics.New()
	}
	if window <= 0 {
		return reg, nil
	}
	if reg == nil {
		reg = metrics.New()
		reg.SetRetention(timelineSampleRetention)
	}
	return reg, timeline.New(timeline.Config{Window: window, MaxWindows: maxWindows}, reg)
}

// experimentsManagerFor lets spec validation reuse the protocol
// registry.
func experimentsManagerFor(p Protocol) (func(*sim.Kernel) core.Manager, sim.Discipline, error) {
	return experiments.ManagerFor(p)
}

// buildLoad generates (or passes through) the transaction load.
func buildLoad(w WorkloadConfig, sites, dbSize int, perObjCost Duration, localWriteSets bool) ([]*Txn, error) {
	if w.Transactions != nil {
		return w.Transactions, nil
	}
	p, err := buildParams(w, sites, dbSize, perObjCost, localWriteSets)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p)
}

// buildParams maps the facade workload config onto generator parameters.
func buildParams(w WorkloadConfig, sites, dbSize int, perObjCost Duration, localWriteSets bool) (workload.Params, error) {
	cat, err := db.NewCatalog(sites, dbSize)
	if err != nil {
		return workload.Params{}, err
	}
	return workload.Params{
		Seed:              w.Seed,
		Catalog:           cat,
		Count:             w.Count,
		MeanInterarrival:  w.MeanInterarrival,
		MeanSize:          w.MeanSize,
		ReadOnlyFrac:      w.ReadOnlyFrac,
		PerObjCost:        perObjCost,
		SlackMin:          w.SlackMin,
		SlackMax:          w.SlackMax,
		LocalWriteSets:    localWriteSets,
		PeriodicFrac:      w.PeriodicFrac,
		Period:            w.Period,
		ImplicitDeadlines: w.ImplicitDeadlines,
		BurstFactor:       w.BurstFactor,
		BurstOn:           w.BurstOn,
		BurstOff:          w.BurstOff,
	}, nil
}

// NewFullMesh builds a fully connected topology with a uniform delay.
func NewFullMesh(sites int, delay Duration) (*Topology, error) {
	return netsim.FullMesh(sites, delay)
}

// NewRing builds a ring topology; delay between sites is the shorter way
// around times the link delay.
func NewRing(sites int, link Duration) (*Topology, error) {
	return netsim.Ring(sites, link)
}

// NewStar builds a star topology around a hub site.
func NewStar(sites int, hub SiteID, link Duration) (*Topology, error) {
	return netsim.Star(sites, hub, link)
}

// NewCustomTopology builds a topology from an explicit one-way delay
// matrix.
func NewCustomTopology(delay [][]Duration) (*Topology, error) {
	return netsim.Custom(delay)
}

// PlacementPolicy enumerates the data placement and replication
// policies of internal/place; parse names with ParsePlacementPolicy.
type PlacementPolicy = place.Policy

// The placement policies.
const (
	// PlacementFull replicates every object at every site (the paper's
	// layout; pairs with the local approach).
	PlacementFull = place.Full
	// PlacementShard assigns each object one primary holding its only
	// copy and its lock.
	PlacementShard = place.Sharded
	// PlacementQuorum adds K-replica quorum replication over the shard
	// layout.
	PlacementQuorum = place.Quorum
	// PlacementPrimaryOnly is the uncoordinated primary-only baseline.
	PlacementPrimaryOnly = place.PrimaryOnly
)

// ParsePlacementPolicy resolves a policy name ("full", "shard",
// "quorum", "primary").
func ParsePlacementPolicy(name string) (PlacementPolicy, error) { return place.ParsePolicy(name) }

// SingleSiteParams re-exports the Figures 2–3 experiment configuration.
type SingleSiteParams = experiments.SingleSiteParams

// DistParams re-exports the Figures 4–6 experiment configuration.
type DistParams = experiments.DistParams

// DefaultSingleSiteParams returns the calibrated single-site experiment
// configuration.
func DefaultSingleSiteParams() SingleSiteParams { return experiments.DefaultSingleSite() }

// DefaultDistParams returns the calibrated distributed experiment
// configuration.
func DefaultDistParams() DistParams { return experiments.DefaultDistributed() }

// SiteSweepParams re-exports the placement site-count sweep
// configuration.
type SiteSweepParams = experiments.SiteSweepParams

// DefaultSiteSweepParams returns the calibrated site-sweep
// configuration: sites {1,2,4,8,16} × all four placement policies at a
// locality-skewed 50/50 mix.
func DefaultSiteSweepParams() SiteSweepParams { return experiments.DefaultSiteSweep() }

// RunSiteSweep sweeps every placement policy across the site-count axis
// and reports committed throughput, deadline misses, and each
// coordinated policy's consistency tax (latency and throughput ratios)
// against the primary-only baseline.
func RunSiteSweep(p SiteSweepParams) (thpt, missed, tax Figure, err error) {
	return experiments.SiteSweep(p)
}

// ReproduceFig2 regenerates the paper's Figure 2 (single-site normalized
// throughput vs transaction size).
func ReproduceFig2(p SingleSiteParams) (Figure, error) { return experiments.Fig2(p) }

// ReproduceFig3 regenerates Figure 3 (single-site % deadline-missing vs
// transaction size).
func ReproduceFig3(p SingleSiteParams) (Figure, error) { return experiments.Fig3(p) }

// ReproduceFig4 regenerates Figure 4 (local/global throughput ratio vs
// transaction mix).
func ReproduceFig4(p DistParams) (Figure, error) { return experiments.Fig4(p) }

// ReproduceFig5 regenerates Figure 5 (global/local deadline-missing
// ratio vs communication delay).
func ReproduceFig5(p DistParams) (Figure, error) { return experiments.Fig5(p) }

// ReproduceFig6 regenerates Figure 6 (distributed % deadline-missing vs
// transaction mix at two delays).
func ReproduceFig6(p DistParams) (Figure, error) { return experiments.Fig6(p) }

// ReproduceAll regenerates every figure and ablation.
func ReproduceAll(sp SingleSiteParams, dp DistParams) ([]Figure, error) {
	f2, f3, err := experiments.SingleSiteSweep(sp)
	if err != nil {
		return nil, fmt.Errorf("single-site sweep: %w", err)
	}
	f4, f5, f6, err := experiments.DistributedSweep(dp)
	if err != nil {
		return nil, fmt.Errorf("distributed sweep: %w", err)
	}
	fa, err := experiments.DBSizeAblation(sp)
	if err != nil {
		return nil, fmt.Errorf("dbsize ablation: %w", err)
	}
	fb, err := experiments.SemanticsAblation(sp)
	if err != nil {
		return nil, fmt.Errorf("semantics ablation: %w", err)
	}
	fc, err := experiments.InheritAblation(sp)
	if err != nil {
		return nil, fmt.Errorf("inherit ablation: %w", err)
	}
	return []Figure{f2, f3, f4, f5, f6, fa, fb, fc}, nil
}

// Schedule-space exploration re-exports: the systematic concurrency
// testing engine of internal/explore, surfaced so library callers can
// explore their own configurations without reaching into internals.
type (
	// ExploreStrategy selects how the schedule space is walked.
	ExploreStrategy = explore.Strategy
	// ExploreOptions bounds one exploration (budgets, workers, seed).
	ExploreOptions = explore.Options
	// ExploreReport summarizes one exploration: coverage counters and
	// any counterexamples.
	ExploreReport = explore.Report
	// ExploreCounterexample is one violating schedule, minimized when
	// shrinking was enabled.
	ExploreCounterexample = explore.Counterexample
	// ExploreTarget is a replayable simulation under exploration.
	ExploreTarget = explore.Target
)

// Exploration strategies.
const (
	// ExploreDFS walks deviations from the canonical schedule
	// depth-first, deepest decision first.
	ExploreDFS = explore.DFS
	// ExploreRandom runs seeded random walks plus the canonical
	// schedule.
	ExploreRandom = explore.Random
)

// ExploreConfig selects what to explore: one single-site protocol, or
// one distributed architecture when Distributed is set.
type ExploreConfig struct {
	// Protocol is the single-site protocol to explore (default
	// Ceiling). Ignored when Distributed is set.
	Protocol Protocol
	// Distributed explores a three-site cluster instead of a
	// single-site system; Global selects the global-ceiling-manager
	// architecture (false = local ceilings over full replication).
	Distributed bool
	Global      bool
	// Faults promotes fault injection into the explored decision tree
	// (implies Distributed): site crashes, per-message drop/duplicate
	// fates, and partition cuts become choice points searched alongside
	// the scheduling decisions, runs execute under the full
	// crash-recovery machinery, and journals are audited with the
	// recovery-correctness family. Counterexamples carry the exact
	// failure schedule as an exportable, replayable fault plan.
	Faults bool
	// Placement explores a placement-aware execution model ("shard",
	// "quorum", or "primary") instead of the legacy approaches;
	// requires Faults and Global=false. Empty keeps the approach
	// selected by Global.
	Placement string
	// Seed drives the workload stream (default 1).
	Seed int64
	// Options bounds the exploration (explore defaults when zero).
	Options ExploreOptions
}

// Explore runs the schedule-space exploration engine against one
// protocol configuration and returns its report. Counterexamples on an
// unmodified tree indicate protocol bugs; the report carries the
// minimized decision schedules for replay.
func Explore(cfg ExploreConfig) (*ExploreReport, error) {
	var tgt ExploreTarget
	var err error
	if cfg.Placement != "" && !cfg.Faults {
		return nil, fmt.Errorf("rtlock: exploring placement %s requires Faults", cfg.Placement)
	}
	if cfg.Faults {
		var pol place.Policy
		if cfg.Placement != "" {
			if pol, err = place.ParsePolicy(cfg.Placement); err != nil {
				return nil, err
			}
		}
		tgt, err = explore.FaultTarget(explore.FaultOpts{Global: cfg.Global, Placement: pol, Seed: cfg.Seed})
	} else if cfg.Distributed {
		tgt, err = explore.DistributedTarget(explore.DistributedOpts{Global: cfg.Global, Seed: cfg.Seed})
	} else {
		if cfg.Protocol == "" {
			cfg.Protocol = Ceiling
		}
		var mk func(*sim.Kernel) core.Manager
		var disc sim.Discipline
		mk, disc, err = experimentsManagerFor(cfg.Protocol)
		if err != nil {
			return nil, err
		}
		tgt, err = explore.SingleSiteTarget(explore.SingleSiteOpts{
			Proto:      string(cfg.Protocol),
			NewManager: mk,
			Discipline: disc,
			Seed:       cfg.Seed,
		})
	}
	if err != nil {
		return nil, err
	}
	return explore.Run(tgt, cfg.Options)
}

// ExploreSweepParams re-exports the exploration sweep configuration.
type ExploreSweepParams = experiments.ExploreParams

// DefaultExploreSweepParams returns the calibrated exploration sweep
// configuration.
func DefaultExploreSweepParams() ExploreSweepParams { return experiments.DefaultExplore() }

// RunExploreSweep explores every protocol at a range of schedule
// budgets and reports coverage; any invariant violation fails the
// sweep.
func RunExploreSweep(p ExploreSweepParams) (Figure, error) { return experiments.ExploreSweep(p) }
