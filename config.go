package rtlock

// Declarative run specifications. The paper's prototyping environment
// front end (the menu-driven User Interface plus Configuration Manager)
// lets an experimenter describe system configuration, database
// configuration, load characteristics, and the concurrency control to
// use; this file provides the equivalent as a JSON document that can be
// checked into an experiment directory and replayed exactly.

import (
	"encoding/json"
	"fmt"
	"os"

	"rtlock/internal/place"
)

// Spec is a complete, serializable run description. Exactly one of the
// modes is selected by Mode ("single" or "distributed").
type Spec struct {
	// Mode selects "single" (one site, Figures 2–3 setting) or
	// "distributed" (Figures 4–6 setting).
	Mode string `json:"mode"`
	// Protocol applies to single-site runs (C, P, L, PI, CX, HP, DD,
	// TO). Distributed runs always use the ceiling protocol, per the
	// paper.
	Protocol string `json:"protocol,omitempty"`
	// Global selects the global-ceiling-manager architecture for
	// distributed runs.
	Global bool `json:"global,omitempty"`
	// Placement selects the distributed data-placement policy: "" or
	// "full" (the paper's replicated layout), "shard", "quorum", or
	// "primary" (see DistributedConfig.Placement).
	Placement string `json:"placement,omitempty"`
	// HashShards switches the primary mapping from range to hash
	// partitioning (placement runs only).
	HashShards bool `json:"hashShards,omitempty"`
	// Replicas, ReadQuorum, and WriteQuorum parameterize the quorum
	// placement (K, R, W).
	Replicas    int `json:"replicas,omitempty"`
	ReadQuorum  int `json:"readQuorum,omitempty"`
	WriteQuorum int `json:"writeQuorum,omitempty"`

	DBSize         int     `json:"dbSize,omitempty"`
	Sites          int     `json:"sites,omitempty"`
	CPUPerObjMs    float64 `json:"cpuPerObjMs,omitempty"`
	IOPerObjMs     float64 `json:"ioPerObjMs,omitempty"`
	MemoryResident bool    `json:"memoryResident,omitempty"`
	CommDelayMs    float64 `json:"commDelayMs,omitempty"`
	ApplyPerObjMs  float64 `json:"applyPerObjMs,omitempty"`
	Multiversion   bool    `json:"multiversion,omitempty"`
	SnapshotLagMs  float64 `json:"snapshotLagMs,omitempty"`

	Failures  []SpecFailure `json:"failures,omitempty"`
	SiteSpeed []float64     `json:"siteSpeed,omitempty"`

	Workload SpecWorkload `json:"workload"`

	RecordHistory bool `json:"recordHistory,omitempty"`
	TraceEvents   int  `json:"traceEvents,omitempty"`
	BufferPages   int  `json:"bufferPages,omitempty"`
	IODisks       int  `json:"ioDisks,omitempty"`

	// Journal records a deterministic replay journal into
	// Result.Journal; Audit additionally replays it through the
	// protocol invariant auditors into Result.Violations.
	Journal bool `json:"journal,omitempty"`
	Audit   bool `json:"audit,omitempty"`

	// Metrics samples a deterministic virtual-time metrics registry
	// into Result.Metrics (implies Journal); MetricsIntervalMs spaces
	// the snapshots (zero picks the 100ms default).
	Metrics           bool    `json:"metrics,omitempty"`
	MetricsIntervalMs float64 `json:"metricsIntervalMs,omitempty"`

	WAL               bool    `json:"wal,omitempty"`
	CheckpointEveryMs float64 `json:"checkpointEveryMs,omitempty"`

	// TimelineWindowMs rolls the run into virtual-time windows of this
	// width and fills Result.Timeline (bounded memory, no journal);
	// TimelineMaxWindows bounds the retained rows (0 = 4096) and
	// MaxRawRecords caps per-transaction record retention (0 = all).
	TimelineWindowMs   float64 `json:"timelineWindowMs,omitempty"`
	TimelineMaxWindows int     `json:"timelineMaxWindows,omitempty"`
	MaxRawRecords      int     `json:"maxRawRecords,omitempty"`
}

// SpecWorkload mirrors WorkloadConfig with JSON-friendly units.
type SpecWorkload struct {
	Seed               int64   `json:"seed,omitempty"`
	Count              int     `json:"count,omitempty"`
	MeanInterarrivalMs float64 `json:"meanInterarrivalMs,omitempty"`
	MeanSize           int     `json:"meanSize,omitempty"`
	ReadOnlyFrac       float64 `json:"readOnlyFrac,omitempty"`
	SlackMin           float64 `json:"slackMin,omitempty"`
	SlackMax           float64 `json:"slackMax,omitempty"`
	PeriodicFrac       float64 `json:"periodicFrac,omitempty"`
	PeriodMs           float64 `json:"periodMs,omitempty"`
	BurstFactor        float64 `json:"burstFactor,omitempty"`
	BurstOnMs          float64 `json:"burstOnMs,omitempty"`
	BurstOffMs         float64 `json:"burstOffMs,omitempty"`
	LocalityProb       float64 `json:"localityProb,omitempty"`
}

// SpecFailure mirrors SiteFailure with JSON-friendly units.
type SpecFailure struct {
	Site        int     `json:"site"`
	AtMs        float64 `json:"atMs"`
	RecoverAtMs float64 `json:"recoverAtMs,omitempty"`
}

// ParseSpec decodes and validates a JSON run specification.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("rtlock: parse spec: %w", err)
	}
	switch s.Mode {
	case "single", "distributed":
	default:
		return nil, fmt.Errorf("rtlock: spec mode %q (want \"single\" or \"distributed\")", s.Mode)
	}
	if s.Mode == "single" && s.Protocol != "" {
		if _, _, err := experimentsManagerFor(Protocol(s.Protocol)); err != nil {
			return nil, err
		}
	}
	if s.Workload.ReadOnlyFrac < 0 || s.Workload.ReadOnlyFrac > 1 {
		return nil, fmt.Errorf("rtlock: spec readOnlyFrac %v out of [0,1]", s.Workload.ReadOnlyFrac)
	}
	if s.Placement != "" {
		if s.Mode != "distributed" {
			return nil, fmt.Errorf("rtlock: spec placement %q requires distributed mode", s.Placement)
		}
		if _, err := place.ParsePolicy(s.Placement); err != nil {
			return nil, err
		}
	}
	if s.Workload.LocalityProb < 0 || s.Workload.LocalityProb > 1 {
		return nil, fmt.Errorf("rtlock: spec localityProb %v out of [0,1]", s.Workload.LocalityProb)
	}
	return &s, nil
}

// LoadSpec reads a specification file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rtlock: load spec: %w", err)
	}
	return ParseSpec(data)
}

// Run executes the specification.
func (s *Spec) Run() (*Result, error) {
	wl := WorkloadConfig{
		Seed:             s.Workload.Seed,
		Count:            s.Workload.Count,
		MeanInterarrival: ms(s.Workload.MeanInterarrivalMs),
		MeanSize:         s.Workload.MeanSize,
		ReadOnlyFrac:     s.Workload.ReadOnlyFrac,
		SlackMin:         s.Workload.SlackMin,
		SlackMax:         s.Workload.SlackMax,
		PeriodicFrac:     s.Workload.PeriodicFrac,
		Period:           ms(s.Workload.PeriodMs),
		BurstFactor:      s.Workload.BurstFactor,
		BurstOn:          ms(s.Workload.BurstOnMs),
		BurstOff:         ms(s.Workload.BurstOffMs),
		LocalityProb:     s.Workload.LocalityProb,
	}
	if s.Mode == "single" {
		return RunSingleSite(SingleSiteConfig{
			Protocol:           Protocol(s.Protocol),
			DBSize:             s.DBSize,
			CPUPerObj:          ms(s.CPUPerObjMs),
			IOPerObj:           ms(s.IOPerObjMs),
			MemoryResident:     s.MemoryResident,
			Workload:           wl,
			RecordHistory:      s.RecordHistory,
			TraceEvents:        s.TraceEvents,
			BufferPages:        s.BufferPages,
			IODisks:            s.IODisks,
			WAL:                s.WAL,
			CheckpointEvery:    ms(s.CheckpointEveryMs),
			Journal:            s.Journal,
			Audit:              s.Audit,
			Metrics:            s.Metrics,
			MetricsInterval:    ms(s.MetricsIntervalMs),
			TimelineWindow:     ms(s.TimelineWindowMs),
			TimelineMaxWindows: s.TimelineMaxWindows,
			MaxRawRecords:      s.MaxRawRecords,
		})
	}
	var failures []SiteFailure
	for _, f := range s.Failures {
		failures = append(failures, SiteFailure{
			Site:      SiteID(f.Site),
			At:        Time(ms(f.AtMs)),
			RecoverAt: Time(ms(f.RecoverAtMs)),
		})
	}
	return RunDistributed(DistributedConfig{
		Global:             s.Global,
		Placement:          s.Placement,
		HashShards:         s.HashShards,
		Replicas:           s.Replicas,
		ReadQuorum:         s.ReadQuorum,
		WriteQuorum:        s.WriteQuorum,
		Sites:              s.Sites,
		DBSize:             s.DBSize,
		CommDelay:          ms(s.CommDelayMs),
		CPUPerObj:          ms(s.CPUPerObjMs),
		ApplyPerObj:        ms(s.ApplyPerObjMs),
		Multiversion:       s.Multiversion,
		SnapshotLag:        ms(s.SnapshotLagMs),
		Failures:           failures,
		SiteSpeed:          s.SiteSpeed,
		Workload:           wl,
		RecordHistory:      s.RecordHistory,
		Journal:            s.Journal,
		Audit:              s.Audit,
		Metrics:            s.Metrics,
		MetricsInterval:    ms(s.MetricsIntervalMs),
		TimelineWindow:     ms(s.TimelineWindowMs),
		TimelineMaxWindows: s.TimelineMaxWindows,
		MaxRawRecords:      s.MaxRawRecords,
	})
}

// ms converts fractional milliseconds to simulated duration.
func ms(v float64) Duration { return Duration(v * float64(Millisecond)) }
