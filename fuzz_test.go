package rtlock_test

// Fuzzing for the JSON run-specification parser: arbitrary input must be
// rejected with an error or produce a validated spec — never a panic —
// and every accepted spec must survive a marshal/re-parse round trip.

import (
	"encoding/json"
	"testing"

	"rtlock"
)

func FuzzConfig(f *testing.F) {
	f.Add([]byte(`{"mode":"single","protocol":"C","workload":{"count":50,"meanSize":8}}`))
	f.Add([]byte(`{"mode":"single","protocol":"HP","dbSize":100,"wal":true,"audit":true}`))
	f.Add([]byte(`{"mode":"distributed","global":true,"sites":3,"workload":{"seed":2,"readOnlyFrac":0.5}}`))
	f.Add([]byte(`{"mode":"distributed","multiversion":true,"failures":[{"site":1,"atMs":50}]}`))
	f.Add([]byte(`{"mode":"distributed","placement":"shard","hashShards":true,"sites":4,"workload":{"localityProb":0.7}}`))
	f.Add([]byte(`{"mode":"distributed","placement":"quorum","replicas":3,"readQuorum":2,"writeQuorum":2}`))
	f.Add([]byte(`{"mode":"distributed","placement":"primary","sites":8,"workload":{"localityProb":1}}`))
	f.Add([]byte(`{"mode":"single","placement":"shard"}`))
	f.Add([]byte(`{"mode":"distributed","placement":"bogus"}`))
	f.Add([]byte(`{"mode":"distributed","workload":{"localityProb":1.5}}`))
	f.Add([]byte(`{"mode":"nope"}`))
	f.Add([]byte(`{"mode":"single","protocol":"ZZ"}`))
	f.Add([]byte(`{"mode":"single","workload":{"readOnlyFrac":2}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := rtlock.ParseSpec(data)
		if err != nil {
			if s != nil {
				t.Fatalf("ParseSpec returned both a spec and error %v", err)
			}
			return
		}
		if s == nil {
			t.Fatal("ParseSpec returned nil spec without error")
		}
		if s.Mode != "single" && s.Mode != "distributed" {
			t.Fatalf("accepted spec with mode %q", s.Mode)
		}
		if ro := s.Workload.ReadOnlyFrac; ro < 0 || ro > 1 {
			t.Fatalf("accepted spec with readOnlyFrac %v", ro)
		}
		if lp := s.Workload.LocalityProb; lp < 0 || lp > 1 {
			t.Fatalf("accepted spec with localityProb %v", lp)
		}
		if s.Placement != "" {
			if s.Mode != "distributed" {
				t.Fatalf("accepted single-site spec with placement %q", s.Placement)
			}
			if _, err := rtlock.ParsePlacementPolicy(s.Placement); err != nil {
				t.Fatalf("accepted spec with unparseable placement %q", s.Placement)
			}
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		if _, err := rtlock.ParseSpec(out); err != nil {
			t.Fatalf("accepted spec does not re-parse: %v\n%s", err, out)
		}
	})
}
