package rtlock

import (
	"bytes"
	"runtime"
	"testing"
)

// metricsTestConfig is a small but contended single-site run: a tiny
// database forces lock conflicts so the profiler has material.
func metricsTestConfig() SingleSiteConfig {
	cfg := SingleSiteConfig{Protocol: TwoPL, DBSize: 40, Metrics: true}
	cfg.Workload.Seed = 7
	cfg.Workload.Count = 120
	return cfg
}

// metricsExports renders every export format of a completed run.
func metricsExports(t *testing.T, res *Result) map[string][]byte {
	t.Helper()
	if res.Metrics == nil || res.LockProfile == nil {
		t.Fatal("Metrics flag did not populate Result.Metrics/.LockProfile")
	}
	return map[string][]byte{
		"prom":   res.Metrics.Prometheus(),
		"csv":    res.Metrics.CSV(),
		"folded": res.LockProfile.Folded(),
		"html":   HTMLReport("test", res.Metrics, res.LockProfile),
	}
}

func compareExports(t *testing.T, what string, a, b map[string][]byte) {
	t.Helper()
	for name, first := range a {
		if !bytes.Equal(first, b[name]) {
			t.Errorf("%s: %s export diverged (%d vs %d bytes)", what, name, len(first), len(b[name]))
		}
	}
}

func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	res1, err := RunSingleSite(metricsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := metricsExports(t, res1)
	if len(first["prom"]) == 0 || len(first["csv"]) == 0 {
		t.Fatal("exports are empty")
	}
	for r := 2; r <= 3; r++ {
		res, err := RunSingleSite(metricsTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		compareExports(t, "run", first, metricsExports(t, res))
	}
}

func TestMetricsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var first map[string][]byte
	for _, p := range []int{1, 8} {
		runtime.GOMAXPROCS(p)
		res, err := RunSingleSite(metricsTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		exp := metricsExports(t, res)
		if first == nil {
			first = exp
			continue
		}
		compareExports(t, "GOMAXPROCS", first, exp)
	}
}

func TestMetricsDeterministicDistributed(t *testing.T) {
	cfg := DistributedConfig{Global: true, Sites: 3, Metrics: true}
	cfg.Workload.Seed = 3
	cfg.Workload.Count = 60
	res1, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareExports(t, "distributed run", metricsExports(t, res1), metricsExports(t, res2))
}

// TestMetricsZeroOverhead proves attaching the metrics registry cannot
// perturb the simulation: the replay journal of a metrics-enabled run is
// record-identical to that of a run that never saw a registry.
func TestMetricsZeroOverhead(t *testing.T) {
	with := metricsTestConfig()
	with.Journal = true
	without := with
	without.Metrics = false

	rw, err := RunSingleSite(with)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := RunSingleSite(without)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Journal == nil || ro.Journal == nil {
		t.Fatal("journals missing")
	}
	if !JournalsEqual(rw.Journal, ro.Journal) {
		t.Fatalf("metrics perturbed the run: %s", JournalDiff(ro.Journal, rw.Journal))
	}
}

func TestMetricsRegistrySamplesAndProbes(t *testing.T) {
	res, err := RunSingleSite(metricsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Samples() == 0 {
		t.Fatal("registry took no virtual-time samples")
	}
	prom := string(res.Metrics.Prometheus())
	for _, fam := range []string{
		"sim_events_total", "cpu_dispatches_total", "lock_requests_total",
		"lock_wait_ticks", "txn_commits_total", "txn_inflight",
	} {
		if !containsMetric(prom, fam) {
			t.Errorf("exposition missing family %q", fam)
		}
	}
}

func TestMetricsLockProfileNamesContendedObjects(t *testing.T) {
	res, err := RunSingleSite(metricsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := res.LockProfile
	if len(p.Objects) == 0 || p.TotalWaitTicks == 0 {
		t.Fatalf("contended run produced an empty profile: %+v", p)
	}
	for _, o := range p.Objects {
		if o.Obj < 0 {
			t.Errorf("profile row without an object id: %+v", o)
		}
	}
	if len(p.Stacks) == 0 {
		t.Error("no folded blocking-chain stacks")
	}
}

func TestMetricsDisabledLeavesResultNil(t *testing.T) {
	cfg := metricsTestConfig()
	cfg.Metrics = false
	res, err := RunSingleSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil || res.LockProfile != nil {
		t.Fatal("Metrics=false must leave Result.Metrics/.LockProfile nil")
	}
}

// containsMetric reports whether the exposition text contains a sample
// of the family (bare or labeled).
func containsMetric(prom, fam string) bool {
	return bytes.Contains([]byte(prom), []byte("\n"+fam+" ")) ||
		bytes.Contains([]byte(prom), []byte("\n"+fam+"{")) ||
		bytes.Contains([]byte(prom), []byte("# TYPE "+fam+" "))
}
