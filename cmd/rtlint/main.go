// Command rtlint runs the determinism static-analysis suite over the
// repository's simulation-critical packages.
//
// Usage:
//
//	go run ./cmd/rtlint [-json] [-tests] [-list] [-escapes] [-escape-cache dir] [packages...]
//
// Patterns follow the usual Go shapes ("./...", "./internal/sim");
// packages outside the simulation-critical set are skipped. By default
// rtlint also runs the compiler's escape analysis (go build
// -gcflags=-m=2) so the allocfree analyzer can enforce
// //rtlint:allocfree annotations; -escapes=false skips the compile (and
// leaves allocfree dormant), and the parsed diagnostics are cached
// under -escape-cache keyed on the toolchain, go.mod, and source
// hashes. The exit status is 0 when no findings remain after
// //rtlint:allow suppressions, 1 when findings (or malformed/stale
// suppressions) exist, and 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtlock/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rtlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array for CI annotation")
	tests := fs.Bool("tests", false, "also analyze the packages' own _test.go files")
	list := fs.Bool("list", false, "list the analyzers and exit")
	escapes := fs.Bool("escapes", true, "run compiler escape analysis so allocfree annotations are enforced")
	escapeCache := fs.String("escape-cache", "", "directory for cached escape diagnostics (default <modroot>/.rtlint-cache)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", lint.MetaAnalyzerName, "meta-analyzer: reports malformed, unknown, and stale //rtlint:allow suppressions")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modRoot, err := findModRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	cfg := lint.DefaultConfig()
	cfg.IncludeTests = *tests
	if *escapes {
		dir := *escapeCache
		if dir == "" {
			dir = filepath.Join(modRoot, ".rtlint-cache")
		}
		rep, _, err := lint.CollectEscapesCached(modRoot, dir, []string{"./..."})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtlint:", err)
			return 2
		}
		cfg.Escapes = rep
	}
	diags, err := lint.Run(modRoot, patterns, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, modRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "rtlint:", err)
			return 2
		}
	} else if err := lint.WriteText(os.Stdout, modRoot, diags); err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rtlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// findModRoot walks up from the working directory to the enclosing
// go.mod.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
