package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCustomTiny(t *testing.T) {
	if err := run([]string{"-experiment", "custom", "-protocol", "C", "-size", "4", "-runs", "1", "-count", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomBadProtocol(t *testing.T) {
	if err := run([]string{"-experiment", "custom", "-protocol", "ZZ", "-runs", "1", "-count", "30"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestRunFigTiny(t *testing.T) {
	// A tiny fig2 run exercises the sweep plumbing end to end.
	if err := run([]string{"-experiment", "fig2", "-runs", "1", "-count", "25", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "fig3", "-runs", "1", "-count", "25", "-out", dir, "-plot"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3.txt", "fig3.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRunSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	spec := `{"mode":"single","protocol":"C","memoryResident":true,"workload":{"seed":1,"count":20,"meanSize":3}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path, "-trace", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing spec accepted")
	}
}
