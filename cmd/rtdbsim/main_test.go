package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCustomTiny(t *testing.T) {
	if err := run([]string{"-experiment", "custom", "-protocol", "C", "-size", "4", "-runs", "1", "-count", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomBadProtocol(t *testing.T) {
	if err := run([]string{"-experiment", "custom", "-protocol", "ZZ", "-runs", "1", "-count", "30"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestRunFigTiny(t *testing.T) {
	// A tiny fig2 run exercises the sweep plumbing end to end.
	if err := run([]string{"-experiment", "fig2", "-runs", "1", "-count", "25", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutputFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "fig3", "-runs", "1", "-count", "25", "-out", dir, "-plot"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3.txt", "fig3.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRunSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	spec := `{"mode":"single","protocol":"C","memoryResident":true,"workload":{"seed":1,"count":20,"meanSize":3}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", path, "-trace", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing spec accepted")
	}
}

// TestExitCodes pins the subcommand UX contract: help exits 0, usage
// mistakes (unknown subcommand/flag/experiment, stray positionals) exit
// 2, runtime failures exit 1 — uniformly across subcommands.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"explore help", []string{"explore", "-h"}, 0},
		{"audit help", []string{"audit", "-h"}, 0},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"unknown flag", []string{"-bogus"}, 2},
		{"unknown experiment", []string{"-experiment", "nope"}, 2},
		{"stray positional", []string{"-experiment", "custom", "stray"}, 2},
		{"explore unknown flag", []string{"explore", "-bogus"}, 2},
		{"explore stray positional", []string{"explore", "stray"}, 2},
		{"explore bad strategy", []string{"explore", "-strategy", "bfs"}, 2},
		{"faults unknown flag", []string{"faults", "-bogus"}, 2},
		{"metrics stray positional", []string{"metrics", "stray"}, 2},
		{"replay unknown flag", []string{"replay", "-bogus"}, 2},
		{"runtime bad protocol", []string{"-experiment", "custom", "-protocol", "ZZ", "-runs", "1", "-count", "20"}, 1},
		{"explore runtime bad protocol", []string{"explore", "-protocol", "ZZ"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitCode(run(tc.args)); got != tc.want {
				t.Fatalf("run(%v) exit code = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestRunExploreTiny runs a small clean-tree exploration through the
// subcommand and checks the verdict and artifact outputs.
func TestRunExploreTiny(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "verdict.jsonl")
	args := []string{"explore", "-schedules", "6", "-depth", "10", "-branch", "2", "-workers", "2", "-jsonl", jsonl}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("verdict file is empty")
	}
	// Byte-identical across runs and worker counts.
	jsonl2 := filepath.Join(dir, "verdict2.jsonl")
	args2 := []string{"explore", "-schedules", "6", "-depth", "10", "-branch", "2", "-workers", "4", "-jsonl", jsonl2}
	if err := run(args2); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(jsonl2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("verdict output differs across worker counts")
	}
}
