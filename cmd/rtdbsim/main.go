// Command rtdbsim regenerates the paper's tables and figures, or runs a
// custom single configuration, printing aligned text tables and
// optionally CSV.
//
// Usage:
//
//	rtdbsim -experiment fig2            # any of fig2..fig6, dbsize, semantics, inherit, all
//	rtdbsim -experiment fig3 -runs 3 -count 200 -csv
//	rtdbsim -experiment custom -protocol C -size 12 -runs 5
//
// Two subcommands wrap the deterministic replay journal:
//
//	rtdbsim audit -protocol HP -count 200      # run + check protocol invariants
//	rtdbsim audit -spec run.json -chrome t.json
//	rtdbsim replay -protocol C -runs 3         # prove byte-identical journals
//	rtdbsim replay -spec run.json -against saved.jsonl
//
// A third subcommand runs distributed configurations under deterministic
// fault injection (site crashes, message loss, partitions):
//
//	rtdbsim faults -plan examples/specs/faultplan.json -approach global
//	rtdbsim faults -severities 0,0.5,1 -runs 4 -count 120
//
// A fourth exports the deterministic virtual-time observability bundle
// (Prometheus exposition, CSV time series, folded blocking-chain stacks,
// HTML report); -spec accepts a run spec or a fault plan:
//
//	rtdbsim metrics -protocol C -count 200 -out metrics-out
//	rtdbsim metrics -spec examples/specs/faultplan.json -runs 2
//
// The main -spec path and the audit/replay subcommands accept a
// -metrics directory to export the same bundle alongside their output.
//
// A fifth explores the schedule space: alternative scheduling decisions
// instead of the single canonical order, every explored schedule
// audited, violations shrunk to minimal decision traces:
//
//	rtdbsim explore -protocol C -schedules 64 -minimize
//	rtdbsim explore -all -jsonl verdict.jsonl -minout counterexamples
//
// A sixth rolls a run into virtual-time windows and exports the
// streaming timeline (JSONL rows, CSV, HTML report) in bounded memory,
// suitable for million-transaction soaks; the main -spec path accepts a
// -timeline directory for the same bundle:
//
//	rtdbsim timeline -protocol C -count 1000000 -window 10000 -burst 3
//	rtdbsim timeline -spec run.json -runs 2 -out timeline-out
//
// A seventh sweeps the data-placement spectrum (full replication,
// primary-copy sharding, quorum replication, uncoordinated primary-only)
// across site counts and prices each coordinated policy's consistency
// tax against the no-2PC baseline:
//
//	rtdbsim sitesweep -sites 1,2,4,8,16 -audit
//	rtdbsim sitesweep -policies shard,quorum,primary -json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rtlock"
	"rtlock/internal/experiments"
)

// Exit codes: 0 success (including -h/-help), 1 runtime failure
// (experiment error, invariant violation, counterexample found), 2 usage
// error (unknown subcommand or flag, stray positional argument).
func main() {
	err := run(os.Args[1:])
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "rtdbsim:", err)
	}
	os.Exit(exitCode(err))
}

// usageError marks command-line mistakes so main can exit 2 instead of
// 1; the underlying flag machinery has already printed the usage text.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usagef(format string, a ...any) error {
	return &usageError{fmt.Errorf(format, a...)}
}

// exitCode maps a run error to the process exit code.
func exitCode(err error) int {
	var ue *usageError
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.As(err, &ue):
		return 2
	default:
		return 1
	}
}

// parseFlags parses uniformly for every subcommand: -h/-help surfaces
// flag.ErrHelp (exit 0), unknown flags become usage errors (exit 2),
// and stray positional arguments are rejected with the usage text.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return &usageError{err}
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(fs.Output(), "%s: unexpected argument %q\n", fs.Name(), fs.Arg(0))
		fs.Usage()
		return usagef("unexpected argument %q", fs.Arg(0))
	}
	return nil
}

// subcommands is the dispatch table; run rejects anything else that
// does not look like a flag.
var subcommands = map[string]func([]string) error{
	"audit":     runAudit,
	"replay":    runReplay,
	"faults":    runFaults,
	"metrics":   runMetrics,
	"explore":   runExplore,
	"timeline":  runTimeline,
	"sitesweep": runSiteSweep,
}

func subcommandNames() []string {
	return []string{"audit", "replay", "faults", "metrics", "explore", "timeline", "sitesweep"}
}

func run(args []string) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, ok := subcommands[args[0]]
		if !ok {
			return usagef("unknown subcommand %q (want one of %s, or flags; see -h)",
				args[0], strings.Join(subcommandNames(), ", "))
		}
		return sub(args[1:])
	}
	fs := flag.NewFlagSet("rtdbsim", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "which experiment: fig2..fig6, dbsize, semantics, inherit, restart, priority, buffer, hotspot, predictability, consistency, placement, faultsweep, longrun, custom, all")
		runs       = fs.Int("runs", 0, "override runs per point (0 keeps the default)")
		count      = fs.Int("count", 0, "override transactions per run (0 keeps the default)")
		seed       = fs.Int64("seed", 1, "base random seed")
		csv        = fs.Bool("csv", false, "also print CSV after each table")
		plot       = fs.Bool("plot", false, "also print an ASCII plot of each figure")
		outDir     = fs.String("out", "", "also write <name>.txt and <name>.csv per figure into this directory")
		protocol   = fs.String("protocol", "C", "custom: protocol C|P|L|PI|CX|HP|CR|DD|TO")
		size       = fs.Int("size", 10, "custom: mean transaction size")
		spec       = fs.String("spec", "", "run a JSON specification file instead of a named experiment")
		placeFlag  = fs.String("placement", "", "with -spec (distributed): override the data placement policy full|shard|quorum|primary")
		trace      = fs.Int("trace", 0, "with -spec single mode: print up to N trace events")
		auditRuns  = fs.Bool("audit", false, "record a replay journal for every run and fail on invariant violations")
		metricsDir = fs.String("metrics", "", "with -spec: sample virtual-time metrics and export the bundle into this directory")
		tlDir      = fs.String("timeline", "", "with -spec: roll windowed telemetry and export timeline.jsonl/csv + report into this directory")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if *spec != "" {
		s, err := rtlock.LoadSpec(*spec)
		if err != nil {
			return err
		}
		if *trace > 0 {
			s.TraceEvents = *trace
		}
		if *placeFlag != "" {
			if s.Mode != "distributed" {
				return fmt.Errorf("-placement %q requires a distributed spec, got mode %q", *placeFlag, s.Mode)
			}
			s.Placement = *placeFlag
		}
		if *auditRuns {
			s.Audit = true
		}
		if *metricsDir != "" {
			s.Metrics = true
		}
		if *tlDir != "" && s.TimelineWindowMs <= 0 {
			s.TimelineWindowMs = 1000
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		if *metricsDir != "" {
			if err := writeMetricsBundle(*metricsDir, filepath.Base(*spec), res); err != nil {
				return err
			}
		}
		if *tlDir != "" {
			if err := writeTimelineBundle(*tlDir, filepath.Base(*spec), res); err != nil {
				return err
			}
		}
		fmt.Println(res.Summary)
		if res.Serializable != nil {
			fmt.Printf("serializable=%t\n", *res.Serializable)
		}
		if res.Violations != nil {
			for _, v := range res.Violations {
				fmt.Println(v)
			}
			if n := len(res.Violations); n > 0 {
				return fmt.Errorf("audit: %d invariant violations", n)
			}
			fmt.Println("audit: all invariants hold")
		}
		if res.Net != nil {
			fmt.Printf("net: %s\n", res.Net)
		}
		if res.Replication != nil {
			fmt.Printf("replication: %+v\n", *res.Replication)
		}
		if res.Trace != nil {
			fmt.Print(res.Trace.String())
		}
		return nil
	}

	single := experiments.DefaultSingleSite()
	dp := experiments.DefaultDistributed()
	single.BaseSeed = *seed
	dp.BaseSeed = *seed
	if *runs > 0 {
		single.Runs = *runs
		dp.Runs = *runs
	}
	if *count > 0 {
		single.Count = *count
		dp.Count = *count
	}
	single.Audit = *auditRuns
	dp.Audit = *auditRuns

	var emitErr error
	emit := func(figs ...experiments.Figure) {
		for _, f := range figs {
			fmt.Println(f.String())
			if *plot {
				fmt.Println(f.Plot())
			}
			if *csv {
				fmt.Println(f.CSV())
			}
			if *outDir != "" && emitErr == nil {
				emitErr = writeFigure(*outDir, f)
			}
		}
	}

	want := strings.ToLower(*experiment)
	switch want {
	case "fig2", "fig3":
		f2, f3, err := experiments.SingleSiteSweep(single)
		if err != nil {
			return err
		}
		if want == "fig2" {
			emit(f2)
		} else {
			emit(f3)
		}
	case "fig4", "fig5", "fig6":
		f4, f5, f6, err := experiments.DistributedSweep(dp)
		if err != nil {
			return err
		}
		switch want {
		case "fig4":
			emit(f4)
		case "fig5":
			emit(f5)
		case "fig6":
			emit(f6)
		}
	case "dbsize":
		f, err := experiments.DBSizeAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "semantics":
		f, err := experiments.SemanticsAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "inherit":
		f, err := experiments.InheritAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "restart":
		f, err := experiments.RestartAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "priority":
		f, err := experiments.PriorityPolicyAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "buffer":
		f, err := experiments.BufferAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "placement":
		f, err := experiments.PlacementAblation(dp)
		if err != nil {
			return err
		}
		emit(f)
	case "consistency":
		f, err := experiments.ConsistencyAblation(dp)
		if err != nil {
			return err
		}
		emit(f)
	case "faultsweep":
		fp := experiments.DefaultFaults()
		fp.BaseSeed = *seed
		fp.Audit = *auditRuns
		if *runs > 0 {
			fp.Runs = *runs
		}
		if *count > 0 {
			fp.Count = *count
		}
		f, err := experiments.FaultSweep(fp)
		if err != nil {
			return err
		}
		emit(f)
	case "hotspot":
		f, err := experiments.HotspotAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "predictability":
		f, err := experiments.PredictabilityAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "periodic":
		f, err := experiments.PeriodicAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "overhead":
		f, err := experiments.OverheadAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "recovery":
		f, err := experiments.RecoveryAblation(single)
		if err != nil {
			return err
		}
		emit(f)
	case "custom":
		sum, err := experiments.RunCustom(single, experiments.Protocol(*protocol), *size)
		if err != nil {
			return err
		}
		fmt.Printf("protocol=%s size=%d %s\n", *protocol, *size, sum)
	case "longrun":
		lp := experiments.LongRunParams{
			Protocol: experiments.Protocol(*protocol),
			Seed:     *seed,
			Count:    *count,
		}
		res, err := experiments.LongRun(lp)
		if err != nil {
			return err
		}
		fmt.Println(res.Summary)
		fmt.Printf("timeline: %d windows (%d evicted), raw records retained/dropped %d/%d\n",
			len(res.Timeline), res.TimelineDropped, res.RawRetained, res.RawDropped)
		if *csv {
			fmt.Print(string(rtlock.TimelineCSV(res.Timeline)))
		}
	case "all":
		f2, f3, err := experiments.SingleSiteSweep(single)
		if err != nil {
			return err
		}
		emit(f2, f3)
		f4, f5, f6, err := experiments.DistributedSweep(dp)
		if err != nil {
			return err
		}
		emit(f4, f5, f6)
		fa, err := experiments.DBSizeAblation(single)
		if err != nil {
			return err
		}
		emit(fa)
		fb, err := experiments.SemanticsAblation(single)
		if err != nil {
			return err
		}
		emit(fb)
		fc, err := experiments.InheritAblation(single)
		if err != nil {
			return err
		}
		emit(fc)
		fd, err := experiments.RestartAblation(single)
		if err != nil {
			return err
		}
		emit(fd)
		fe, err := experiments.PriorityPolicyAblation(single)
		if err != nil {
			return err
		}
		emit(fe)
		ff, err := experiments.HotspotAblation(single)
		if err != nil {
			return err
		}
		emit(ff)
		fg, err := experiments.PredictabilityAblation(single)
		if err != nil {
			return err
		}
		emit(fg)
		fh, err := experiments.BufferAblation(single)
		if err != nil {
			return err
		}
		emit(fh)
		fi, err := experiments.ConsistencyAblation(dp)
		if err != nil {
			return err
		}
		emit(fi)
		fj, err := experiments.PlacementAblation(dp)
		if err != nil {
			return err
		}
		emit(fj)
		fk, err := experiments.PeriodicAblation(single)
		if err != nil {
			return err
		}
		emit(fk)
		fl, err := experiments.OverheadAblation(single)
		if err != nil {
			return err
		}
		emit(fl)
		fm, err := experiments.RecoveryAblation(single)
		if err != nil {
			return err
		}
		emit(fm)
	default:
		return usagef("unknown experiment %q", *experiment)
	}
	return emitErr
}

// writeFigure persists one figure as <dir>/<name>.txt and .csv.
func writeFigure(dir string, f experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	txt := filepath.Join(dir, f.Name+".txt")
	if err := os.WriteFile(txt, []byte(f.String()+"\n"+f.Plot()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", txt, err)
	}
	csvPath := filepath.Join(dir, f.Name+".csv")
	if err := os.WriteFile(csvPath, []byte(f.CSV()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", csvPath, err)
	}
	return nil
}
