// The timeline subcommand: run one configuration with windowed
// streaming telemetry and export the timeline — JSONL rows, CSV, and an
// HTML report with the per-window table. The run holds bounded memory
// regardless of transaction count (arrivals stream, raw records are
// capped, windows live in a ring), so this is the tool for
// million-transaction soaks. With -runs > 1 the exports are
// re-generated from independent executions and must be byte-identical.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtlock"
)

// timelineExport is one run's rendered timeline bundle.
type timelineExport struct {
	jsonl []byte
	csv   []byte
	html  []byte
}

// runTimeline implements "rtdbsim timeline".
func runTimeline(args []string) error {
	fs := flag.NewFlagSet("rtdbsim timeline", flag.ContinueOnError)
	var sel specSelection
	sel.register(fs)
	var (
		out      = fs.String("out", "timeline-out", "directory for timeline.jsonl, timeline.csv, report.html")
		windowMs = fs.Float64("window", 0, "window width in virtual milliseconds (0 keeps the spec's value, or 1000)")
		maxWin   = fs.Int("maxwindows", 0, "retained windows in the ring (0 = default 4096)")
		maxRaw   = fs.Int("maxraw", 4096, "raw per-transaction records retained (0 = unlimited)")
		burst    = fs.Float64("burst", 0, "arrival burst factor (>1 enables the deterministic burst square wave)")
		burstOn  = fs.Float64("burston", 2000, "burst phase width in milliseconds")
		burstOff = fs.Float64("burstoff", 8000, "quiet phase width in milliseconds")
		runs     = fs.Int("runs", 1, "independent executions; with >1 every export must be byte-identical")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *runs < 1 {
		*runs = 1
	}

	s, err := sel.load()
	if err != nil {
		return err
	}
	if *windowMs > 0 {
		s.TimelineWindowMs = *windowMs
	}
	if s.TimelineWindowMs <= 0 {
		s.TimelineWindowMs = 1000
	}
	if *maxWin > 0 {
		s.TimelineMaxWindows = *maxWin
	}
	if *maxRaw > 0 {
		s.MaxRawRecords = *maxRaw
	}
	if *burst > 0 {
		s.Workload.BurstFactor = *burst
		s.Workload.BurstOnMs = *burstOn
		s.Workload.BurstOffMs = *burstOff
	}
	title := s.Mode
	if s.Protocol != "" {
		title += "/" + s.Protocol
	}

	first, res, err := timelineOnce(s, title)
	if err != nil {
		return err
	}
	for r := 2; r <= *runs; r++ {
		again, _, err := timelineOnce(s, title)
		if err != nil {
			return err
		}
		for _, cmp := range []struct {
			name string
			a, b []byte
		}{
			{"timeline.jsonl", first.jsonl, again.jsonl},
			{"timeline.csv", first.csv, again.csv},
			{"report.html", first.html, again.html},
		} {
			if !bytes.Equal(cmp.a, cmp.b) {
				return fmt.Errorf("timeline: %s diverged on run %d — nondeterminism", cmp.name, r)
			}
		}
	}

	if err := first.write(*out); err != nil {
		return err
	}
	fmt.Println(res.Summary)
	fmt.Printf("timeline: %d windows (%d evicted), raw records retained/dropped %d/%d\n",
		len(res.Timeline), res.TimelineDropped, res.RawRetained, res.RawDropped)
	if *runs > 1 {
		fmt.Printf("timeline: %d runs byte-identical — deterministic\n", *runs)
	}
	return nil
}

// timelineOnce executes the spec and renders the timeline bundle.
func timelineOnce(s *rtlock.Spec, title string) (*timelineExport, *rtlock.Result, error) {
	res, err := s.Run()
	if err != nil {
		return nil, nil, err
	}
	exp, err := timelineFrom(res, title)
	if err != nil {
		return nil, nil, err
	}
	return exp, res, nil
}

// timelineFrom renders the three export formats from a completed run.
func timelineFrom(res *rtlock.Result, title string) (*timelineExport, error) {
	if res.Timeline == nil {
		return nil, fmt.Errorf("timeline: run produced no timeline (window not set?)")
	}
	return &timelineExport{
		jsonl: rtlock.TimelineJSONL(res.Timeline),
		csv:   rtlock.TimelineCSV(res.Timeline),
		html:  rtlock.HTMLTimelineReport("rtlock timeline — "+title, res.Metrics, nil, res.Timeline),
	}, nil
}

// write persists the bundle into dir, creating it as needed.
func (e *timelineExport) write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"timeline.jsonl", e.jsonl},
		{"timeline.csv", e.csv},
		{"report.html", e.html},
	} {
		path := filepath.Join(dir, f.name)
		if err := os.WriteFile(path, f.data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(f.data))
	}
	return nil
}

// writeTimelineBundle is the -timeline flag on the main -spec path:
// export the timeline of a completed run.
func writeTimelineBundle(dir, title string, res *rtlock.Result) error {
	exp, err := timelineFrom(res, title)
	if err != nil {
		return err
	}
	return exp.write(dir)
}
