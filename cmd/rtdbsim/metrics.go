// The metrics subcommand: run one configuration with the deterministic
// virtual-time metrics registry attached and export the observability
// bundle — Prometheus text exposition, CSV time series, pprof-style
// folded blocking-chain stacks, and a static HTML report. With -runs > 1
// the exports are re-generated from independent executions and must be
// byte-identical, proving the observability layer is as deterministic as
// the simulation it watches.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtlock"
	"rtlock/internal/metrics"
)

// metricsExport is one run's rendered observability bundle.
type metricsExport struct {
	prom   []byte
	csv    []byte
	folded []byte
	html   []byte
}

// runMetrics implements "rtdbsim metrics".
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("rtdbsim metrics", flag.ContinueOnError)
	var sel specSelection
	sel.register(fs)
	var (
		out      = fs.String("out", "metrics-out", "directory for metrics.prom, metrics.csv, profile.folded, report.html")
		interval = fs.Float64("interval", 0, "virtual-time snapshot interval in milliseconds (0 picks the 100ms default)")
		topk     = fs.Int("topk", 10, "hottest objects to print and embed in the report")
		runs     = fs.Int("runs", 1, "independent executions; with >1 every export must be byte-identical")
		approach = fs.String("approach", "global", "fault-plan mode: architecture under test, global|local")
		sites    = fs.Int("sites", 3, "fault-plan mode: number of sites")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *runs < 1 {
		*runs = 1
	}

	run, title, err := metricsRunner(&sel, *interval, *approach, *sites)
	if err != nil {
		return err
	}

	first, res, err := exportOnce(run, title, *topk)
	if err != nil {
		return err
	}
	for r := 2; r <= *runs; r++ {
		again, _, err := exportOnce(run, title, *topk)
		if err != nil {
			return err
		}
		for _, cmp := range []struct {
			name string
			a, b []byte
		}{
			{"metrics.prom", first.prom, again.prom},
			{"metrics.csv", first.csv, again.csv},
			{"profile.folded", first.folded, again.folded},
			{"report.html", first.html, again.html},
		} {
			if !bytes.Equal(cmp.a, cmp.b) {
				return fmt.Errorf("metrics: %s diverged on run %d — nondeterminism", cmp.name, r)
			}
		}
	}

	if err := first.write(*out); err != nil {
		return err
	}

	fmt.Println(res.Summary)
	prof := metrics.FromJournal(res.Journal, *topk)
	fmt.Print(prof.String())
	if *runs > 1 {
		fmt.Printf("metrics: %d runs byte-identical — deterministic\n", *runs)
	}
	return nil
}

// metricsRunner builds the run closure from the selection. The -spec
// file may be either a JSON run specification or a JSON fault plan
// (sniffed in that order), so the observability bundle composes with the
// fault-injection subcommand's plan files.
func metricsRunner(sel *specSelection, intervalMs float64, approach string, sites int) (func() (*rtlock.Result, error), string, error) {
	if sel.spec != "" {
		if s, err := rtlock.LoadSpec(sel.spec); err == nil {
			s.Metrics = true
			s.MetricsIntervalMs = intervalMs
			return s.Run, filepath.Base(sel.spec), nil
		}
		data, err := os.ReadFile(sel.spec)
		if err != nil {
			return nil, "", err
		}
		fp, err := rtlock.ParseFaultPlan(data)
		if err != nil {
			return nil, "", fmt.Errorf("%s: neither run spec nor fault plan: %w", sel.spec, err)
		}
		if approach != "global" && approach != "local" {
			return nil, "", fmt.Errorf("unknown approach %q", approach)
		}
		cfg := rtlock.DistributedConfig{
			Global:          approach == "global",
			Sites:           sites,
			Faults:          fp,
			Metrics:         true,
			MetricsInterval: rtlock.Duration(intervalMs * float64(rtlock.Millisecond)),
		}
		cfg.Workload.Seed = sel.seed
		cfg.Workload.Count = sel.count
		cfg.Workload.MeanSize = sel.size
		return func() (*rtlock.Result, error) { return rtlock.RunDistributed(cfg) }, filepath.Base(sel.spec), nil
	}
	s, err := sel.load()
	if err != nil {
		return nil, "", err
	}
	s.Metrics = true
	s.MetricsIntervalMs = intervalMs
	title := s.Mode
	if s.Protocol != "" {
		title += "/" + s.Protocol
	}
	return s.Run, title, nil
}

// exportOnce executes the run and renders all four export formats.
func exportOnce(run func() (*rtlock.Result, error), title string, topk int) (*metricsExport, *rtlock.Result, error) {
	res, err := run()
	if err != nil {
		return nil, nil, err
	}
	exp, err := exportFrom(res, title, topk)
	if err != nil {
		return nil, nil, err
	}
	return exp, res, nil
}

// exportFrom renders the four export formats from a completed run.
func exportFrom(res *rtlock.Result, title string, topk int) (*metricsExport, error) {
	if res.Metrics == nil {
		return nil, fmt.Errorf("metrics: run produced no registry")
	}
	prof := metrics.FromJournal(res.Journal, topk)
	html := metrics.HTML("rtlock metrics — "+title, res.Metrics, prof)
	return &metricsExport{
		prom:   res.Metrics.Prometheus(),
		csv:    res.Metrics.CSV(),
		folded: prof.Folded(),
		html:   html,
	}, nil
}

// write persists the bundle into dir, creating it as needed.
func (e *metricsExport) write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"metrics.prom", e.prom},
		{"metrics.csv", e.csv},
		{"profile.folded", e.folded},
		{"report.html", e.html},
	} {
		path := filepath.Join(dir, f.name)
		if err := os.WriteFile(path, f.data, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(f.data))
	}
	return nil
}

// writeMetricsBundle is the -metrics flag shared by the other
// subcommands: export the bundle of a completed metrics-enabled run.
func writeMetricsBundle(dir, title string, res *rtlock.Result) error {
	exp, err := exportFrom(res, title, 10)
	if err != nil {
		return err
	}
	return exp.write(dir)
}
