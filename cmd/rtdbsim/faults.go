// The faults subcommand: run distributed configurations under
// deterministic fault injection — either one run under an explicit JSON
// plan file, or a severity sweep over generated plans (the
// graceful-degradation experiment).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtlock"
	"rtlock/internal/experiments"
)

// runFaults implements "rtdbsim faults".
func runFaults(args []string) error {
	fs := flag.NewFlagSet("rtdbsim faults", flag.ContinueOnError)
	var (
		plan       = fs.String("plan", "", "JSON fault-plan file; empty runs the generated-plan severity sweep")
		approach   = fs.String("approach", "global", "architecture under test: global|local (plan mode), or both (sweep mode ignores this)")
		sites      = fs.Int("sites", 3, "number of sites")
		count      = fs.Int("count", 0, "transactions per run (0 keeps the default)")
		runs       = fs.Int("runs", 0, "sweep: runs per point (0 keeps the default)")
		seed       = fs.Int64("seed", 1, "base random seed (workload and injector)")
		severities = fs.String("severities", "", "sweep: comma-separated severities in [0,1] (empty keeps the default)")
		auditRuns  = fs.Bool("audit", true, "record a replay journal and fail on invariant violations")
		csv        = fs.Bool("csv", false, "sweep: also print CSV")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if *plan != "" {
		data, err := os.ReadFile(*plan)
		if err != nil {
			return err
		}
		fp, err := rtlock.ParseFaultPlan(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *plan, err)
		}
		cfg := rtlock.DistributedConfig{
			Global: *approach == "global",
			Sites:  *sites,
			Faults: fp,
			Audit:  *auditRuns,
		}
		if *approach != "global" && *approach != "local" {
			return fmt.Errorf("unknown approach %q", *approach)
		}
		cfg.Workload.Seed = *seed
		cfg.Workload.Count = *count
		res, err := rtlock.RunDistributed(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s\n", fp)
		fmt.Println(res.Summary)
		if res.Net != nil {
			fmt.Printf("net: %s\n", res.Net)
		}
		if res.Violations != nil {
			for _, v := range res.Violations {
				fmt.Println(v)
			}
			if n := len(res.Violations); n > 0 {
				return fmt.Errorf("audit: %d invariant violations", n)
			}
			fmt.Println("audit: all invariants hold")
		}
		return nil
	}

	p := experiments.DefaultFaults()
	p.BaseSeed = *seed
	p.Sites = *sites
	p.Audit = *auditRuns
	if *count > 0 {
		p.Count = *count
	}
	if *runs > 0 {
		p.Runs = *runs
	}
	if *severities != "" {
		p.Severities = p.Severities[:0]
		for _, tok := range strings.Split(*severities, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad severity %q: %w", tok, err)
			}
			p.Severities = append(p.Severities, v)
		}
	}
	fig, err := experiments.FaultSweep(p)
	if err != nil {
		return err
	}
	fmt.Println(fig.String())
	if *csv {
		fmt.Println(fig.CSV())
	}
	return nil
}
