// The audit and replay subcommands: run a configuration with the
// deterministic replay journal attached, check protocol invariants, and
// prove run-to-run determinism by comparing journal hashes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rtlock"
)

// specSelection holds the flags shared by audit and replay that pick the
// run to perform: a JSON spec file, or a quick inline configuration.
type specSelection struct {
	spec        string
	protocol    string
	size        int
	count       int
	seed        int64
	distributed bool
	global      bool
}

func (sel *specSelection) register(fs *flag.FlagSet) {
	fs.StringVar(&sel.spec, "spec", "", "JSON specification file (overrides the quick-config flags)")
	fs.StringVar(&sel.protocol, "protocol", "C", "quick config: protocol C|P|L|PI|CX|HP|CR|DD|TO")
	fs.IntVar(&sel.size, "size", 0, "quick config: mean transaction size (0 keeps the default)")
	fs.IntVar(&sel.count, "count", 0, "quick config: transactions per run (0 keeps the default)")
	fs.Int64Var(&sel.seed, "seed", 1, "quick config: random seed")
	fs.BoolVar(&sel.distributed, "distributed", false, "quick config: distributed local-ceiling run instead of single-site")
	fs.BoolVar(&sel.global, "global", false, "quick config: distributed global-ceiling run")
}

func (sel *specSelection) load() (*rtlock.Spec, error) {
	if sel.spec != "" {
		return rtlock.LoadSpec(sel.spec)
	}
	s := &rtlock.Spec{Mode: "single", Protocol: sel.protocol}
	if sel.distributed || sel.global {
		s.Mode = "distributed"
		s.Global = sel.global
		s.Protocol = ""
	}
	s.Workload.Seed = sel.seed
	s.Workload.Count = sel.count
	s.Workload.MeanSize = sel.size
	return s, nil
}

// writeJournal exports a journal with the given encoder, creating path.
func writeJournal(path, what string, encode func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write %s: %w", what, err)
	}
	if err := encode(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", what, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write %s: %w", what, err)
	}
	fmt.Printf("wrote %s to %s\n", what, path)
	return nil
}

// exportJournal handles the -jsonl and -chrome output flags.
func exportJournal(j *rtlock.Journal, jsonl, chrome string) error {
	if jsonl != "" {
		if err := writeJournal(jsonl, "journal JSONL", j.EncodeJSONL); err != nil {
			return err
		}
	}
	if chrome != "" {
		if err := writeJournal(chrome, "Chrome trace", j.EncodeChromeTrace); err != nil {
			return err
		}
	}
	return nil
}

// runAudit executes one run with the journal attached and replays it
// through the configuration's protocol-invariant auditors.
func runAudit(args []string) error {
	fs := flag.NewFlagSet("rtdbsim audit", flag.ContinueOnError)
	var sel specSelection
	sel.register(fs)
	var (
		jsonl      = fs.String("jsonl", "", "also write the journal as JSONL to this file")
		chrome     = fs.String("chrome", "", "also write a Chrome trace_event file (load in chrome://tracing or Perfetto)")
		maxPrint   = fs.Int("max", 20, "print at most this many violations")
		metricsDir = fs.String("metrics", "", "also sample virtual-time metrics and export the bundle into this directory")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	s, err := sel.load()
	if err != nil {
		return err
	}
	s.Audit = true
	if *metricsDir != "" {
		s.Metrics = true
	}
	res, err := s.Run()
	if err != nil {
		return err
	}
	if *metricsDir != "" {
		if err := writeMetricsBundle(*metricsDir, "audit", res); err != nil {
			return err
		}
	}
	j := res.Journal
	fmt.Printf("journal: %d records  seed=%d  config=%q\n", j.Len(), j.Seed(), j.Config())
	fmt.Printf("hash: %s\n", j.HashString())
	fmt.Println(res.Summary)
	if err := exportJournal(j, *jsonl, *chrome); err != nil {
		return err
	}
	if len(res.Violations) == 0 {
		fmt.Println("audit: all invariants hold")
		return nil
	}
	for i, v := range res.Violations {
		if i >= *maxPrint {
			fmt.Printf("... and %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Println(v)
	}
	return fmt.Errorf("audit: %d invariant violations", len(res.Violations))
}

// runReplay proves determinism: it executes the same configuration
// several times (or compares against a previously saved journal) and
// checks that the journals are byte-identical.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("rtdbsim replay", flag.ContinueOnError)
	var sel specSelection
	sel.register(fs)
	var (
		runs       = fs.Int("runs", 2, "independent executions to compare")
		against    = fs.String("against", "", "compare against this saved journal JSONL instead of re-running")
		jsonl      = fs.String("jsonl", "", "also write the first run's journal as JSONL to this file")
		chrome     = fs.String("chrome", "", "also write the first run's Chrome trace_event file")
		metricsDir = fs.String("metrics", "", "also sample virtual-time metrics and export the first run's bundle into this directory")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	s, err := sel.load()
	if err != nil {
		return err
	}
	s.Journal = true
	if *metricsDir != "" {
		s.Metrics = true
	}
	res, err := s.Run()
	if err != nil {
		return err
	}
	if *metricsDir != "" {
		if err := writeMetricsBundle(*metricsDir, "replay", res); err != nil {
			return err
		}
	}
	first := res.Journal
	fmt.Printf("journal: %d records  seed=%d  config=%q\n", first.Len(), first.Seed(), first.Config())
	fmt.Printf("run 1: %s\n", first.HashString())
	if err := exportJournal(first, *jsonl, *chrome); err != nil {
		return err
	}
	if *against != "" {
		f, err := os.Open(*against)
		if err != nil {
			return err
		}
		saved, err := rtlock.DecodeJournalJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("read %s: %w", *against, err)
		}
		fmt.Printf("saved: %s (%s)\n", saved.HashString(), *against)
		if !rtlock.JournalsEqual(first, saved) {
			return fmt.Errorf("replay diverged from %s: %s", *against, rtlock.JournalDiff(saved, first))
		}
		fmt.Println("replay: journal matches the saved run")
		return nil
	}
	for r := 2; r <= *runs; r++ {
		res2, err := s.Run()
		if err != nil {
			return err
		}
		fmt.Printf("run %d: %s\n", r, res2.Journal.HashString())
		if !rtlock.JournalsEqual(first, res2.Journal) {
			return fmt.Errorf("replay diverged on run %d: %s", r, rtlock.JournalDiff(first, res2.Journal))
		}
	}
	fmt.Printf("replay: %d runs byte-identical — deterministic\n", *runs)
	return nil
}
