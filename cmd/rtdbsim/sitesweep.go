package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtlock"
	"rtlock/internal/experiments"
)

// runSiteSweep drives the placement site-count sweep: every selected
// placement policy at every site count, reporting throughput, deadline
// misses, and the consistency tax against the primary-only baseline.
func runSiteSweep(args []string) error {
	fs := flag.NewFlagSet("rtdbsim sitesweep", flag.ContinueOnError)
	var (
		sitesArg  = fs.String("sites", "", "comma-separated site counts (empty keeps the default 1,2,4,8,16)")
		policies  = fs.String("policies", "", "comma-separated placement policies full|shard|quorum|primary (empty sweeps all four)")
		runs      = fs.Int("runs", 0, "runs per grid cell (0 keeps the default)")
		count     = fs.Int("count", 0, "transactions per run (0 keeps the default)")
		seed      = fs.Int64("seed", 1, "base random seed")
		locality  = fs.Float64("locality", -1, "home-shard access probability for placement workloads (negative keeps the default)")
		mix       = fs.Float64("mix", -1, "read-only transaction fraction (negative keeps the default)")
		replicas  = fs.Int("replicas", 0, "quorum replica-set size K (0 keeps the cluster default)")
		readQ     = fs.Int("readq", 0, "quorum read size R (0 keeps the default majority)")
		writeQ    = fs.Int("writeq", 0, "quorum write size W (0 keeps the default K-R+1)")
		auditRuns = fs.Bool("audit", false, "record a replay journal for every run and fail on invariant violations")
		csv       = fs.Bool("csv", false, "also print CSV after each table")
		jsonOut   = fs.Bool("json", false, "print the figures as one JSON document instead of text tables")
		outDir    = fs.String("out", "", "also write <name>.txt and <name>.csv per figure into this directory")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	p := rtlock.DefaultSiteSweepParams()
	p.BaseSeed = *seed
	p.Audit = *auditRuns
	if *runs > 0 {
		p.Runs = *runs
	}
	if *count > 0 {
		p.Count = *count
	}
	if *locality >= 0 {
		p.LocalityProb = *locality
	}
	if *mix >= 0 {
		p.ReadOnlyFrac = *mix
	}
	p.Replicas, p.ReadQuorum, p.WriteQuorum = *replicas, *readQ, *writeQ
	if *sitesArg != "" {
		sites, err := parseIntList(*sitesArg)
		if err != nil {
			return usagef("bad -sites: %v", err)
		}
		p.Sites = sites
	}
	if *policies != "" {
		p.Policies = p.Policies[:0]
		for _, name := range strings.Split(*policies, ",") {
			pol, err := rtlock.ParsePlacementPolicy(strings.TrimSpace(name))
			if err != nil {
				return usagef("bad -policies: %v", err)
			}
			p.Policies = append(p.Policies, pol)
		}
	}

	thpt, missed, tax, err := rtlock.RunSiteSweep(p)
	if err != nil {
		return err
	}
	figs := []experiments.Figure{thpt, missed, tax}
	if *jsonOut {
		doc := struct {
			Figures []experiments.Figure `json:"figures"`
		}{figs}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else {
		for _, f := range figs {
			fmt.Println(f.String())
			if *csv {
				fmt.Println(f.CSV())
			}
		}
	}
	if *outDir != "" {
		for _, f := range figs {
			if err := writeFigure(*outDir, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("site count %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}
