// The explore subcommand: systematic schedule-space exploration over
// the deterministic kernel. It drives one protocol configuration (or,
// with -all, every protocol of the study plus both distributed
// architectures) through alternative scheduling decisions and fails
// with exit code 1 if any explored schedule violates the protocol's
// invariants, printing the minimized decision schedule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rtlock"
	"rtlock/internal/experiments"
	"rtlock/internal/explore"
)

func runExplore(args []string) error {
	fs := flag.NewFlagSet("rtdbsim explore", flag.ContinueOnError)
	var (
		strategy    = fs.String("strategy", "dfs", "exploration strategy: dfs|random")
		schedules   = fs.Int("schedules", 64, "schedule budget per target")
		depth       = fs.Int("depth", 24, "max decision positions that may deviate from canonical")
		branch      = fs.Int("branch", 3, "max alternatives per decision position (canonical included)")
		workers     = fs.Int("workers", 1, "parallel schedule runners (never affects the explored set)")
		seed        = fs.Int64("seed", 1, "exploration seed (random strategy) and workload seed")
		minimize    = fs.Bool("minimize", true, "shrink counterexamples to locally minimal schedules")
		protocol    = fs.String("protocol", "C", "single-site protocol C|P|L|PI|CX|HP|CR|DD|TO")
		distributed = fs.Bool("distributed", false, "explore a distributed cluster instead of a single site")
		global      = fs.Bool("global", false, "with -distributed or -faults: global-ceiling architecture (default local)")
		faultsMode  = fs.Bool("faults", false, "fault-space exploration: search over failure schedules (crashes, message fates, partition cuts) of a distributed cluster")
		placement   = fs.String("placement", "", "with -faults: data placement policy shard|quorum|primary instead of the legacy fully-replicated architectures")
		all         = fs.Bool("all", false, "explore every protocol plus both distributed architectures (with -faults: both fault-space architectures too)")
		jsonl       = fs.String("jsonl", "", "write the byte-stable JSONL verdict stream to this file (\"-\" = stdout)")
		minout      = fs.String("minout", "", "write each minimized counterexample as JSON into this directory")
		faultplans  = fs.String("faultplans", "", "write each counterexample's fault plan into this directory as a runnable \"rtdbsim faults -plan\" JSON spec")
	)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *strategy != string(explore.DFS) && *strategy != string(explore.Random) {
		return usagef("unknown strategy %q (want dfs or random)", *strategy)
	}

	opts := rtlock.ExploreOptions{
		Strategy:  rtlock.ExploreStrategy(*strategy),
		Schedules: *schedules,
		MaxDepth:  *depth,
		Branch:    *branch,
		Workers:   *workers,
		Seed:      *seed,
		Minimize:  *minimize,
	}
	var cfgs []rtlock.ExploreConfig
	if *all {
		for _, p := range experiments.AllProtocols() {
			cfgs = append(cfgs, rtlock.ExploreConfig{Protocol: rtlock.Protocol(p), Seed: *seed, Options: opts})
		}
		for _, g := range []bool{false, true} {
			cfgs = append(cfgs, rtlock.ExploreConfig{Distributed: true, Global: g, Seed: *seed, Options: opts})
		}
		if *faultsMode {
			for _, g := range []bool{false, true} {
				cfgs = append(cfgs, rtlock.ExploreConfig{Faults: true, Global: g, Seed: *seed, Options: opts})
			}
			for _, pol := range []string{"shard", "quorum", "primary"} {
				cfgs = append(cfgs, rtlock.ExploreConfig{Faults: true, Placement: pol, Seed: *seed, Options: opts})
			}
		}
	} else {
		cfgs = append(cfgs, rtlock.ExploreConfig{
			Protocol:    rtlock.Protocol(*protocol),
			Distributed: *distributed,
			Faults:      *faultsMode,
			Global:      *global,
			Placement:   *placement,
			Seed:        *seed,
			Options:     opts,
		})
	}

	var verdictOut *os.File
	if *jsonl != "" {
		if *jsonl == "-" {
			verdictOut = os.Stdout
		} else {
			f, err := os.Create(*jsonl)
			if err != nil {
				return fmt.Errorf("create verdict file: %w", err)
			}
			defer f.Close()
			verdictOut = f
		}
	}

	counterexamples := 0
	for _, cfg := range cfgs {
		rep, err := rtlock.Explore(cfg)
		if err != nil {
			return err
		}
		fmt.Println(rep.Summary())
		if verdictOut != nil {
			if err := explore.WriteVerdict(verdictOut, rep); err != nil {
				return fmt.Errorf("write verdict: %w", err)
			}
		}
		for i, ce := range rep.Counterexamples {
			counterexamples++
			fmt.Printf("  counterexample %d: rule=%s schedule=%v minimized=%t", i, ce.Rule, ce.Schedule, ce.Minimized)
			if ce.FaultPlan != nil {
				fmt.Printf(" fault_decisions=%d fault_only=%t", ce.FaultDecisions, ce.FaultOnly)
			}
			fmt.Println()
			for _, v := range ce.Violations {
				fmt.Printf("    %s\n", v)
			}
			if *minout != "" {
				if err := writeCounterexample(*minout, rep.Target, i, ce); err != nil {
					return err
				}
			}
			if *faultplans != "" {
				if err := writeFaultPlan(*faultplans, rep.Target, i, ce); err != nil {
					return err
				}
			}
		}
	}
	if counterexamples > 0 {
		return fmt.Errorf("explore: %d counterexample(s) across %d target(s)", counterexamples, len(cfgs))
	}
	return nil
}

// writeFaultPlan persists one counterexample's failure schedule as a
// standalone fault-plan JSON spec, runnable directly with
// "rtdbsim faults -plan FILE". Counterexamples without fault decisions
// are skipped.
func writeFaultPlan(dir, target string, idx int, ce rtlock.ExploreCounterexample) error {
	if ce.FaultPlan == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create fault-plan dir: %w", err)
	}
	data, err := json.MarshalIndent(ce.FaultPlan, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal fault plan: %w", err)
	}
	name := fmt.Sprintf("%s-%d-faults.json", strings.ReplaceAll(target, "/", "-"), idx)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write fault plan %s: %w", path, err)
	}
	return nil
}

// writeCounterexample persists one minimized counterexample as a JSONL
// artifact (header + counterexample), named after the target and index.
func writeCounterexample(dir, target string, idx int, ce rtlock.ExploreCounterexample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create counterexample dir: %w", err)
	}
	name := fmt.Sprintf("%s-%d.json", strings.ReplaceAll(target, "/", "-"), idx)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write counterexample: %w", err)
	}
	defer f.Close()
	rep := &rtlock.ExploreReport{Target: target, Counterexamples: []rtlock.ExploreCounterexample{ce}}
	if err := explore.WriteVerdict(f, rep); err != nil {
		return fmt.Errorf("write counterexample %s: %w", path, err)
	}
	return nil
}
