// Package timeline rolls a run's activity into fixed virtual-time
// windows, giving long runs a bounded-memory, time-resolved view of
// throughput, deadline misses, response-time quantiles, lock waiting,
// and network loss — the streaming counterpart of the end-of-run
// aggregates in internal/stats.
//
// The collector is driven from the transaction layer: every finished
// transaction is reported with Tx, and because the kernel's clock is
// monotonic those reports arrive in non-decreasing finish-time order,
// so window rollover is a simple forward sweep. A window [start, end)
// owns the transactions finishing inside it; probe-derived fields
// (lock-wait quantiles, net counters, the in-flight gauge) are sampled
// at rollover, so activity between the last transaction of a window and
// the first of the next is attributed to the later window. Both rules
// are functions of the event sequence only, so two runs of the same
// (seed, config) pair produce byte-identical timelines.
//
// Memory is fixed at construction: a preallocated ring of MaxWindows
// rows (oldest windows overwritten, count reported by Dropped), one
// reusable response-time sketch, and scratch slices for histogram
// snapshots. The hot path (Tx and window rollover) allocates nothing
// and never touches the replay journal; the marker below has rtlint
// prove the latter.
//
//rtlint:pure=journal
package timeline

import (
	"rtlock/internal/metrics"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
)

// Row is one closed window; see metrics.TimelineRow for field docs.
type Row = metrics.TimelineRow

// DefaultMaxWindows is the ring capacity when Config.MaxWindows is not
// positive: enough for a virtual day of 21s windows, ~5 MB of rows.
const DefaultMaxWindows = 4096

// Config sizes a Collector.
type Config struct {
	// Window is the virtual-time width of one row. It must be positive;
	// New returns nil otherwise, and every Collector method is nil-safe,
	// so a zero Window is simply "timeline off".
	Window sim.Duration
	// MaxWindows bounds the ring of retained rows; non-positive picks
	// DefaultMaxWindows.
	MaxWindows int
	// SketchWidth/SketchBuckets size the per-window response sketch;
	// non-positive values pick the stats package defaults.
	SketchWidth   sim.Duration
	SketchBuckets int
}

// Collector accumulates the open window and the ring of closed rows.
type Collector struct {
	window sim.Duration
	rows   []Row // ring storage, len == cap == MaxWindows
	head   int   // index of oldest retained row
	n      int   // retained rows
	lost   int   // rows overwritten by ring wrap

	// Open-window state.
	winIdx   int
	start    sim.Time
	procd    int64
	commit   int64
	missed   int64
	restarts int64
	respSum  sim.Duration
	sketch   *stats.Sketch

	// Probe handles and rollover scratch. All handles are nil-safe
	// no-ops when built without a registry, yielding zero-valued fields.
	lockWait   metrics.Histogram
	lockBounds []int64
	lockPrev   []int64 // cumulative bucket counts at last rollover
	lockCur    []int64 // snapshot scratch
	lockPrevN  int64
	inflight   metrics.Gauge
	netDrop    [3]metrics.Counter
	netDup     metrics.Counter
	netLostPrv int64
	netDupPrv  int64
}

// New builds a collector reading probe series from reg (which may be
// nil: transaction fields still roll up, probe fields stay zero).
// Resolving the probe series here means they exist in the registry even
// for runs that never block or drop a message; exporters sort by name,
// so creation order does not show in any output.
func New(cfg Config, reg *metrics.Registry) *Collector {
	if cfg.Window <= 0 {
		return nil
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = DefaultMaxWindows
	}
	c := &Collector{
		window: cfg.Window,
		rows:   make([]Row, cfg.MaxWindows),
		sketch: stats.NewSketch(cfg.SketchWidth, cfg.SketchBuckets),
	}
	c.lockWait = reg.Histogram("lock_wait_ticks",
		"Blocked-interval lengths of lock waiters, in ticks.", nil)
	c.lockBounds = c.lockWait.Bounds()
	if len(c.lockBounds) > 0 {
		c.lockPrev = make([]int64, len(c.lockBounds))
		c.lockCur = make([]int64, len(c.lockBounds))
	}
	c.inflight = reg.Gauge("txn_inflight",
		"Transactions between arrival and commit/abort.")
	c.netDrop[0] = reg.Counter("net_msgs_dropped_total",
		"Messages lost in transit, by reason.", metrics.L("reason", "down"))
	c.netDrop[1] = reg.Counter("net_msgs_dropped_total",
		"Messages lost in transit, by reason.", metrics.L("reason", "cut"))
	c.netDrop[2] = reg.Counter("net_msgs_dropped_total",
		"Messages lost in transit, by reason.", metrics.L("reason", "fault"))
	c.netDup = reg.Counter("net_msgs_duplicated_total",
		"Extra message copies the fault injector delivered.")
	return c
}

// Window returns the configured window width (0 on a nil collector).
func (c *Collector) Window() sim.Duration {
	if c == nil {
		return 0
	}
	return c.window
}

// Tx reports one finished transaction: its finish time, whether it
// committed, its response time (ignored unless committed), and how many
// times it restarted. Finish times must be non-decreasing, which the
// kernel's monotonic clock guarantees at the call sites.
//
//rtlint:allocfree
func (c *Collector) Tx(finish sim.Time, committed bool, resp sim.Duration, restarts int) {
	if c == nil {
		return
	}
	c.advance(finish)
	c.procd++
	c.restarts += int64(restarts)
	if committed {
		c.commit++
		c.respSum += resp
		c.sketch.Observe(resp)
	} else {
		c.missed++
	}
}

// Finish closes every window up to the run horizon, including a final
// partial window when the horizon falls inside one.
func (c *Collector) Finish(horizon sim.Time) {
	if c == nil {
		return
	}
	c.advance(horizon)
	if horizon > c.start {
		c.close(horizon)
	}
}

// advance closes every window that ends at or before t, so the open
// window contains t. Consecutive empty windows produce zero-valued rows
// (probe deltas land in the first row closed by a sweep).
//
//rtlint:allocfree
func (c *Collector) advance(t sim.Time) {
	for end := c.start.Add(c.window); t >= end; end = c.start.Add(c.window) {
		c.close(end)
	}
}

// close emits the open window as a row ending at end (end is start +
// window except for a partial final window) and resets the accumulators.
//
//rtlint:allocfree
func (c *Collector) close(end sim.Time) {
	row := Row{
		Window:    c.winIdx,
		Start:     int64(c.start),
		End:       int64(end),
		Processed: c.procd,
		Committed: c.commit,
		Missed:    c.missed,
		Restarts:  c.restarts,
	}
	if c.procd > 0 {
		row.MissPct = float64(c.missed) / float64(c.procd) * 100
	}
	if dur := end.Sub(c.start); dur > 0 {
		row.Throughput = float64(c.commit) * float64(sim.Second) / float64(dur)
	}
	if c.commit > 0 {
		row.MeanResp = int64(c.respSum / sim.Duration(c.commit))
		row.P50Resp = int64(c.sketch.Quantile(0.5))
		row.P99Resp = int64(c.sketch.Quantile(0.99))
	}
	row.LockWaitP50, row.LockWaitP99 = c.lockWaitQuantiles()
	lost := c.netDrop[0].Value() + c.netDrop[1].Value() + c.netDrop[2].Value()
	row.NetLost = lost - c.netLostPrv
	c.netLostPrv = lost
	dup := c.netDup.Value()
	row.NetDup = dup - c.netDupPrv
	c.netDupPrv = dup
	row.InFlight = c.inflight.Value()

	if c.n == len(c.rows) {
		c.rows[c.head] = row
		c.head++
		if c.head == len(c.rows) {
			c.head = 0
		}
		c.lost++
	} else {
		i := c.head + c.n
		if i >= len(c.rows) {
			i -= len(c.rows)
		}
		c.rows[i] = row
		c.n++
	}

	c.winIdx++
	c.start = end
	c.procd, c.commit, c.missed, c.restarts = 0, 0, 0, 0
	c.respSum = 0
	c.sketch.Reset()
}

// lockWaitQuantiles diffs the cumulative lock-wait histogram against
// the previous rollover and answers nearest-rank p50/p99 over the
// delta, each as the containing bucket's upper bound (observations
// beyond the last bound answer the last bound).
//
//rtlint:allocfree
func (c *Collector) lockWaitQuantiles() (p50, p99 int64) {
	if len(c.lockBounds) == 0 {
		return 0, 0
	}
	count, _ := c.lockWait.Snapshot(c.lockCur)
	dn := count - c.lockPrevN
	c.lockPrevN = count
	if dn <= 0 {
		for i, v := range c.lockCur {
			c.lockPrev[i] = v
		}
		return 0, 0
	}
	// Ceil-rank without floats: rank(q) = ceil(q·dn) with q = p/100.
	rank50 := (50*dn + 99) / 100
	rank99 := (99*dn + 99) / 100
	var seen int64
	var got50, got99 bool
	for i, v := range c.lockCur {
		d := v - c.lockPrev[i]
		c.lockPrev[i] = v
		seen += d
		if !got50 && seen >= rank50 {
			p50, got50 = c.lockBounds[i], true
		}
		if !got99 && seen >= rank99 {
			p99, got99 = c.lockBounds[i], true
		}
	}
	last := c.lockBounds[len(c.lockBounds)-1]
	if !got50 {
		p50 = last
	}
	if !got99 {
		p99 = last
	}
	return p50, p99
}

// Rows returns the retained rows, oldest first, as a fresh slice.
func (c *Collector) Rows() []Row {
	if c == nil || c.n == 0 {
		return nil
	}
	out := make([]Row, c.n)
	k := copy(out, c.rows[c.head:min(c.head+c.n, len(c.rows))])
	copy(out[k:], c.rows[:c.n-k])
	return out
}

// Dropped reports how many closed windows the ring has overwritten.
func (c *Collector) Dropped() int {
	if c == nil {
		return 0
	}
	return c.lost
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
