package timeline

import (
	"encoding/json"
	"io"
	"strconv"
)

// Exporters are pure functions of the rows: no clocks, no maps, fixed
// field order — identical rows give byte-identical output.

// WriteJSONL writes one JSON object per row, newline-terminated. The
// schema is the metrics.TimelineRow JSON tags; see README "Timeline
// export" for the field list.
func WriteJSONL(w io.Writer, rows []Row) error {
	for i := range rows {
		b, err := json.Marshal(&rows[i])
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// JSONL returns the JSONL export as a byte slice.
func JSONL(rows []Row) []byte {
	var b writerBuf
	_ = WriteJSONL(&b, rows)
	return b
}

// CSVHeader is the column order of the CSV export, matching the JSONL
// field names.
const CSVHeader = "window,start,end,processed,committed,missed,restarts," +
	"throughput,miss_pct,mean_resp,p50_resp,p99_resp," +
	"lock_wait_p50,lock_wait_p99,net_lost,net_dup,in_flight"

// WriteCSV writes a header line plus one line per row.
func WriteCSV(w io.Writer, rows []Row) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, CSVHeader...)
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(r.Window), 10)
		for _, v := range [...]int64{r.Start, r.End, r.Processed, r.Committed, r.Missed, r.Restarts} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, v, 10)
		}
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, r.Throughput, 'g', -1, 64)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, r.MissPct, 'g', -1, 64)
		for _, v := range [...]int64{r.MeanResp, r.P50Resp, r.P99Resp,
			r.LockWaitP50, r.LockWaitP99, r.NetLost, r.NetDup, r.InFlight} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, v, 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// CSV returns the CSV export as a byte slice.
func CSV(rows []Row) []byte {
	var b writerBuf
	_ = WriteCSV(&b, rows)
	return b
}

// writerBuf is an io.Writer that appends to itself, avoiding a
// bytes.Buffer copy for the []byte-returning helpers.
type writerBuf []byte

func (b *writerBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
