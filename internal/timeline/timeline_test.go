package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rtlock/internal/metrics"
	"rtlock/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * sim.Millisecond }
func at(n int64) sim.Time     { return sim.Time(ms(n)) }

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Tx(at(5), true, ms(1), 0)
	c.Finish(at(10))
	if c.Rows() != nil || c.Dropped() != 0 || c.Window() != 0 {
		t.Error("nil collector not inert")
	}
	if New(Config{}, nil) != nil {
		t.Error("zero-window New did not return nil")
	}
}

func TestWindowRollup(t *testing.T) {
	c := New(Config{Window: ms(10)}, nil)
	// Window 0: two commits, one miss with a restart.
	c.Tx(at(1), true, ms(2), 0)
	c.Tx(at(5), true, ms(4), 0)
	c.Tx(at(9), false, 0, 2)
	// Window 1 left empty. Window 2: one commit.
	c.Tx(at(25), true, ms(6), 1)
	// Horizon falls mid-window 3: partial row.
	c.Finish(at(35))
	rows := c.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	w0 := rows[0]
	if w0.Start != 0 || w0.End != int64(ms(10)) {
		t.Errorf("w0 bounds [%d,%d)", w0.Start, w0.End)
	}
	if w0.Processed != 3 || w0.Committed != 2 || w0.Missed != 1 || w0.Restarts != 2 {
		t.Errorf("w0 counts: %+v", w0)
	}
	if want := 100.0 / 3; w0.MissPct < want-0.01 || w0.MissPct > want+0.01 {
		t.Errorf("w0 MissPct = %v, want ~%v", w0.MissPct, want)
	}
	if want := 200.0; w0.Throughput != want { // 2 commits / 10ms
		t.Errorf("w0 Throughput = %v, want %v", w0.Throughput, want)
	}
	if w0.MeanResp != int64(ms(3)) {
		t.Errorf("w0 MeanResp = %d, want %d", w0.MeanResp, int64(ms(3)))
	}
	if w0.P50Resp <= 0 || w0.P99Resp < w0.P50Resp {
		t.Errorf("w0 quantiles p50=%d p99=%d", w0.P50Resp, w0.P99Resp)
	}
	w1 := rows[1]
	if w1.Processed != 0 || w1.Throughput != 0 || w1.MeanResp != 0 {
		t.Errorf("empty window not zero: %+v", w1)
	}
	if rows[2].Committed != 1 || rows[2].Restarts != 1 {
		t.Errorf("w2: %+v", rows[2])
	}
	w3 := rows[3]
	if w3.Start != int64(ms(30)) || w3.End != int64(ms(35)) {
		t.Errorf("partial window bounds [%d,%d)", w3.Start, w3.End)
	}
	// Finish on an exact boundary adds no empty trailing row.
	c2 := New(Config{Window: ms(10)}, nil)
	c2.Tx(at(1), true, ms(1), 0)
	c2.Finish(at(10))
	if got := len(c2.Rows()); got != 1 {
		t.Errorf("boundary horizon rows = %d, want 1", got)
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	c := New(Config{Window: ms(1), MaxWindows: 4}, nil)
	for i := int64(0); i < 10; i++ {
		c.Tx(at(i), true, ms(1), 0)
	}
	c.Finish(at(10))
	rows := c.Rows()
	if len(rows) != 4 || c.Dropped() != 6 {
		t.Fatalf("rows=%d dropped=%d, want 4/6", len(rows), c.Dropped())
	}
	for i, r := range rows {
		if r.Window != 6+i {
			t.Errorf("rows[%d].Window = %d, want %d", i, r.Window, 6+i)
		}
	}
}

func TestProbeDeltasPerWindow(t *testing.T) {
	reg := metrics.New()
	c := New(Config{Window: ms(10)}, reg)
	// Probe series resolved by name: these are the same series the
	// subsystems update.
	wait := reg.Histogram("lock_wait_ticks", "", nil)
	drop := reg.Counter("net_msgs_dropped_total", "", metrics.L("reason", "fault"))
	dup := reg.Counter("net_msgs_duplicated_total", "")
	infl := reg.Gauge("txn_inflight", "")

	wait.Observe(int64(ms(2)))
	wait.Observe(int64(ms(2)))
	drop.Add(3)
	infl.Set(7)
	c.Tx(at(5), true, ms(1), 0)
	c.Tx(at(12), true, ms(1), 0) // rolls window 0

	wait.Observe(int64(ms(4)))
	dup.Add(2)
	infl.Set(1)
	c.Finish(at(20))

	rows := c.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Window 0 owns the first two waits and the drops; its p50 and p99
	// are the bound containing 2ms.
	if rows[0].LockWaitP50 != rows[0].LockWaitP99 || rows[0].LockWaitP50 < int64(ms(2)) {
		t.Errorf("w0 lock quantiles p50=%d p99=%d", rows[0].LockWaitP50, rows[0].LockWaitP99)
	}
	if rows[0].NetLost != 3 || rows[0].NetDup != 0 || rows[0].InFlight != 7 {
		t.Errorf("w0 probe fields: %+v", rows[0])
	}
	// Window 1 owns only the delta since window 0 closed.
	if rows[1].LockWaitP50 < int64(ms(4)) {
		t.Errorf("w1 lock p50 = %d, want >= %d", rows[1].LockWaitP50, int64(ms(4)))
	}
	if rows[1].NetLost != 0 || rows[1].NetDup != 2 || rows[1].InFlight != 1 {
		t.Errorf("w1 probe fields: %+v", rows[1])
	}
}

func TestExportsDeterministicAndParse(t *testing.T) {
	build := func() []Row {
		c := New(Config{Window: ms(10)}, nil)
		c.Tx(at(1), true, ms(2), 0)
		c.Tx(at(9), false, 0, 1)
		c.Tx(at(25), true, ms(6), 0)
		c.Finish(at(30))
		return c.Rows()
	}
	rows := build()
	j1, j2 := JSONL(rows), JSONL(build())
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL not byte-identical across identical runs")
	}
	lines := strings.Split(strings.TrimSuffix(string(j1), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	for _, ln := range lines {
		var r Row
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("JSONL line does not parse: %v\n%s", err, ln)
		}
	}
	var r0 Row
	_ = json.Unmarshal([]byte(lines[0]), &r0)
	if r0 != rows[0] {
		t.Errorf("JSONL round-trip mismatch:\n%+v\n%+v", r0, rows[0])
	}
	c1, c2 := CSV(rows), CSV(build())
	if !bytes.Equal(c1, c2) {
		t.Error("CSV not byte-identical across identical runs")
	}
	got := strings.Split(strings.TrimSuffix(string(c1), "\n"), "\n")
	if got[0] != CSVHeader {
		t.Errorf("CSV header = %q", got[0])
	}
	if len(got) != 4 {
		t.Fatalf("CSV lines = %d, want 4", len(got))
	}
	if wantCols := strings.Count(CSVHeader, ",") + 1; strings.Count(got[1], ",")+1 != wantCols {
		t.Errorf("CSV row has %d cols, want %d", strings.Count(got[1], ",")+1, wantCols)
	}
	// Empty rows still produce a header.
	if string(CSV(nil)) != CSVHeader+"\n" {
		t.Error("empty CSV missing header")
	}
	if len(JSONL(nil)) != 0 {
		t.Error("empty JSONL not empty")
	}
}

// TestHotPathAllocFree pins the bounded-memory claim: once built, Tx
// and rollover allocate nothing, registry or not.
func TestHotPathAllocFree(t *testing.T) {
	reg := metrics.New()
	c := New(Config{Window: ms(1), MaxWindows: 64}, reg)
	wait := reg.Histogram("lock_wait_ticks", "", nil)
	i := int64(0)
	allocs := testing.AllocsPerRun(2000, func() {
		wait.Observe(int64(ms(1)))
		c.Tx(at(i/2), i%3 != 0, ms(2), int(i%2))
		i++
	})
	if allocs != 0 {
		t.Errorf("Tx+rollover allocates %.2f per call, want 0", allocs)
	}
}
