package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rtlock/internal/sim"
)

// TestEmptyRunGuards pins the zero-horizon/empty-run behavior of every
// aggregate: 0, never NaN, Inf, or a panic.
func TestEmptyRunGuards(t *testing.T) {
	empty := NewMonitor()
	zeroHorizon := NewMonitor()
	zeroHorizon.Add(TxRecord{ID: 1, Outcome: Committed, Size: 3}) // Finish stays 0
	missOnly := NewMonitor()
	missOnly.Add(TxRecord{ID: 1, Outcome: DeadlineMissed, Finish: sim.Time(5 * sim.Second)})
	for _, tc := range []struct {
		name string
		m    *Monitor
	}{
		{"empty", empty},
		{"zero-horizon", zeroHorizon},
		{"missed-only", missOnly},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checks := []struct {
				what string
				got  float64
			}{
				{"MissedPct", tc.m.MissedPct()},
				{"Throughput", tc.m.Throughput()},
				{"AvgBlocked", float64(tc.m.AvgBlocked())},
				{"AvgResponse", float64(tc.m.AvgResponse())},
				{"ResponsePercentile(0.99)", float64(tc.m.ResponsePercentile(0.99))},
				{"ResponseQuantile(0.5)", float64(tc.m.ResponseQuantile(0.5))},
				{"BlockedQuantile(0.5)", float64(tc.m.BlockedQuantile(0.5))},
			}
			for _, c := range checks {
				if math.IsNaN(c.got) || math.IsInf(c.got, 0) {
					t.Errorf("%s = %v, want finite", c.what, c.got)
				}
			}
			if tc.m.Processed() == 0 {
				for _, c := range checks {
					if c.got != 0 {
						t.Errorf("%s = %v on empty monitor, want 0", c.what, c.got)
					}
				}
			}
			if got := tc.m.Summarize(); math.IsNaN(got.Throughput) || math.IsNaN(got.MissedPct) {
				t.Errorf("Summarize produced NaN: %+v", got)
			}
		})
	}
	if got := missOnly.MissedPct(); got != 100 {
		t.Errorf("missed-only MissedPct = %v, want 100", got)
	}
	if got := missOnly.Throughput(); got != 0 {
		t.Errorf("missed-only Throughput = %v, want 0 (no committed objects)", got)
	}
}

// TestSketchQuantileParity drives random durations through the sketch
// and checks every quantile stays within one bucket width of the exact
// nearest-rank answer.
func TestSketchQuantileParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSketch(sim.Millisecond, 4096)
	var exact []sim.Duration
	for i := 0; i < 5000; i++ {
		d := sim.Duration(rng.Int63n(int64(3 * sim.Second)))
		s.Observe(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q*float64(len(exact)))) - 1
		want := exact[rank]
		got := s.Quantile(q)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > s.Width() {
			t.Errorf("q=%v: sketch %d vs exact %d, off by %d > width %d",
				q, got, want, diff, s.Width())
		}
	}
}

func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(sim.Millisecond, 16)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch quantile = %d, want 0", got)
	}
	s.Observe(0)
	s.Observe(0)
	if got := s.Quantile(1); got != 0 {
		t.Errorf("all-zero quantile = %d, want 0", got)
	}
	// Constant value on a bucket edge answers exactly.
	s.Reset()
	for i := 0; i < 10; i++ {
		s.Observe(5 * sim.Millisecond)
	}
	if got := s.Quantile(0.5); got != 5*sim.Millisecond {
		t.Errorf("constant-edge quantile = %d, want %d", got, 5*sim.Millisecond)
	}
	// Observations beyond the covered range answer with the max.
	s.Reset()
	s.Observe(100 * sim.Millisecond) // beyond 16 buckets of 1ms
	s.Observe(200 * sim.Millisecond)
	if got := s.Quantile(0.99); got != 200*sim.Millisecond {
		t.Errorf("overflow quantile = %d, want max %d", got, 200*sim.Millisecond)
	}
	if s.Count() != 2 || s.Sum() != 300*sim.Millisecond {
		t.Errorf("count/sum = %d/%d, want 2/%d", s.Count(), s.Sum(), 300*sim.Millisecond)
	}
	// Negative observations clamp to zero.
	s.Reset()
	s.Observe(-sim.Second)
	if got := s.Quantile(1); got != 0 {
		t.Errorf("negative observation quantile = %d, want 0", got)
	}
	// Reset clears everything.
	if s.Count() != 1 {
		t.Fatalf("count after reset+observe = %d, want 1", s.Count())
	}
	s.Reset()
	if s.Count() != 0 || s.Sum() != 0 || s.Max() != 0 || s.Quantile(1) != 0 {
		t.Error("Reset left state behind")
	}
}

// synthRecord builds a deterministic record stream for cap tests.
func synthRecord(i int) TxRecord {
	r := TxRecord{
		ID:      int64(i + 1),
		Size:    1 + i%7,
		Arrival: sim.Time(i) * sim.Time(10*sim.Millisecond),
		Blocked: sim.Duration(i%13) * sim.Millisecond,

		Restarts: i % 3,
		Messages: i % 5,
	}
	r.Finish = r.Arrival.Add(sim.Duration(5+i%40) * sim.Millisecond)
	if i%4 == 0 {
		r.Outcome = DeadlineMissed
	} else {
		r.Outcome = Committed
	}
	return r
}

// TestMaxRawCapKeepsAggregatesExact proves the retention cap changes
// only what is retained: every streaming aggregate matches an uncapped
// monitor fed the same records, retention never exceeds the cap, and
// the percentile path degrades to the sketch within one bucket width.
func TestMaxRawCapKeepsAggregatesExact(t *testing.T) {
	const n, cap = 10000, 64
	full := NewMonitor()
	capped := NewMonitor()
	capped.SetMaxRaw(cap)
	for i := 0; i < n; i++ {
		r := synthRecord(i)
		full.Add(r)
		capped.Add(r)
		if got := capped.RawRetained(); got > cap {
			t.Fatalf("retained %d records, cap %d", got, cap)
		}
	}
	if capped.Processed() != full.Processed() || capped.CommittedCount() != full.CommittedCount() {
		t.Errorf("counts diverge: capped %d/%d vs full %d/%d",
			capped.Processed(), capped.CommittedCount(), full.Processed(), full.CommittedCount())
	}
	if capped.MissedPct() != full.MissedPct() {
		t.Errorf("MissedPct %v vs %v", capped.MissedPct(), full.MissedPct())
	}
	if capped.Throughput() != full.Throughput() {
		t.Errorf("Throughput %v vs %v", capped.Throughput(), full.Throughput())
	}
	if capped.AvgBlocked() != full.AvgBlocked() || capped.AvgResponse() != full.AvgResponse() {
		t.Errorf("means diverge: blocked %v/%v resp %v/%v",
			capped.AvgBlocked(), full.AvgBlocked(), capped.AvgResponse(), full.AvgResponse())
	}
	if capped.Restarts() != full.Restarts() || capped.Messages() != full.Messages() {
		t.Errorf("totals diverge")
	}
	if got, want := capped.RawDropped(), n-cap; got != want {
		t.Errorf("RawDropped = %d, want %d", got, want)
	}
	// Retained records are the most recent cap, by id.
	recs := capped.Records()
	if len(recs) != cap {
		t.Fatalf("Records len %d, want %d", len(recs), cap)
	}
	for i, r := range recs {
		if want := int64(n - cap + i + 1); r.ID != want {
			t.Fatalf("Records[%d].ID = %d, want %d (newest window)", i, r.ID, want)
		}
	}
	// Capped percentile comes from the sketch, within a bucket of exact.
	for _, q := range []float64{0.5, 0.99} {
		exact := full.ResponsePercentile(q)
		approx := capped.ResponsePercentile(q)
		diff := approx - exact
		if diff < 0 {
			diff = -diff
		}
		if diff > DefaultSketchWidth {
			t.Errorf("q=%v: capped percentile %d vs exact %d, off by %d", q, approx, exact, diff)
		}
	}
	// SetMaxRaw after the fact trims to the newest window.
	full.SetMaxRaw(10)
	if full.RawRetained() != 10 {
		t.Errorf("post-hoc trim retained %d, want 10", full.RawRetained())
	}
	if got := full.Records()[0].ID; got != int64(n-10+1) {
		t.Errorf("post-hoc trim kept oldest id %d, want %d", got, n-10+1)
	}
}

// TestMonitorAddSteadyStateAllocFree pins the bounded-memory claim at
// the allocation level: once the cap is reached, Add allocates nothing.
func TestMonitorAddSteadyStateAllocFree(t *testing.T) {
	m := NewMonitor()
	m.SetMaxRaw(32)
	for i := 0; i < 64; i++ {
		m.Add(synthRecord(i))
	}
	i := 64
	allocs := testing.AllocsPerRun(1000, func() {
		m.Add(synthRecord(i))
		i++
	})
	if allocs != 0 {
		t.Errorf("capped Monitor.Add allocates %.1f per call, want 0", allocs)
	}
}
