package stats

import (
	"math"
	"testing"

	"rtlock/internal/sim"
)

func TestEmptyMonitor(t *testing.T) {
	m := NewMonitor()
	if m.MissedPct() != 0 || m.Throughput() != 0 || m.AvgBlocked() != 0 || m.AvgResponse() != 0 {
		t.Fatal("empty monitor must report zeros")
	}
}

func TestMissedPct(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 4; i++ {
		out := Committed
		if i == 0 {
			out = DeadlineMissed
		}
		m.Add(TxRecord{ID: int64(i), Size: 5, Outcome: out, Finish: sim.Time(sim.Second)})
	}
	if got := m.MissedPct(); got != 25 {
		t.Fatalf("MissedPct = %v, want 25", got)
	}
	if m.Processed() != 4 || m.CommittedCount() != 3 || m.MissedCount() != 1 {
		t.Fatalf("counts wrong: %+v", m.Summarize())
	}
}

func TestThroughputNormalizedByObjects(t *testing.T) {
	m := NewMonitor()
	// Two committed transactions of size 10 within a 2-second horizon:
	// 20 objects / 2 s = 10 obj/s. The missed one contributes nothing.
	m.Add(TxRecord{ID: 1, Size: 10, Outcome: Committed, Finish: sim.Time(sim.Second)})
	m.Add(TxRecord{ID: 2, Size: 10, Outcome: Committed, Finish: sim.Time(2 * sim.Second)})
	m.Add(TxRecord{ID: 3, Size: 99, Outcome: DeadlineMissed, Finish: sim.Time(2 * sim.Second)})
	if got := m.Throughput(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Throughput = %v, want 10", got)
	}
}

func TestHorizonOverride(t *testing.T) {
	m := NewMonitor()
	m.Add(TxRecord{ID: 1, Size: 10, Outcome: Committed, Finish: sim.Time(sim.Second)})
	m.SetHorizon(sim.Time(4 * sim.Second))
	if got := m.Throughput(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("Throughput = %v, want 2.5 over 4s horizon", got)
	}
}

func TestAverages(t *testing.T) {
	m := NewMonitor()
	m.Add(TxRecord{ID: 1, Size: 1, Outcome: Committed, Arrival: 0, Finish: sim.Time(100), Blocked: 40})
	m.Add(TxRecord{ID: 2, Size: 1, Outcome: Committed, Arrival: 100, Finish: sim.Time(300), Blocked: 0})
	m.Add(TxRecord{ID: 3, Size: 1, Outcome: DeadlineMissed, Arrival: 0, Finish: sim.Time(999), Blocked: 20})
	if got := m.AvgBlocked(); got != 20 {
		t.Fatalf("AvgBlocked = %v, want 20", got)
	}
	// Response time averages only committed: (100 + 200) / 2.
	if got := m.AvgResponse(); got != 150 {
		t.Fatalf("AvgResponse = %v, want 150", got)
	}
}

func TestRecordsSortedCopy(t *testing.T) {
	m := NewMonitor()
	m.Add(TxRecord{ID: 2})
	m.Add(TxRecord{ID: 1})
	recs := m.Records()
	if recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("records not sorted: %+v", recs)
	}
	recs[0].ID = 99
	if m.Records()[0].ID != 1 {
		t.Fatal("Records returned internal storage, not a copy")
	}
}

func TestResponsePercentile(t *testing.T) {
	m := NewMonitor()
	// Committed responses: 10, 20, ..., 100 (aborted ones excluded).
	for i := 1; i <= 10; i++ {
		m.Add(TxRecord{ID: int64(i), Size: 1, Outcome: Committed, Arrival: 0, Finish: sim.Time(i * 10)})
	}
	m.Add(TxRecord{ID: 99, Size: 1, Outcome: DeadlineMissed, Arrival: 0, Finish: sim.Time(99999)})
	cases := []struct {
		q    float64
		want sim.Duration
	}{
		{0.5, 50}, {0.95, 100}, {0.99, 100}, {0.1, 10}, {1.0, 100},
	}
	for _, c := range cases {
		if got := m.ResponsePercentile(c.q); got != c.want {
			t.Fatalf("p%v = %v, want %v", c.q*100, got, c.want)
		}
	}
	if m.ResponsePercentile(0) != 0 || m.ResponsePercentile(1.5) != 0 {
		t.Fatal("invalid quantiles must return 0")
	}
	if NewMonitor().ResponsePercentile(0.5) != 0 {
		t.Fatal("empty monitor percentile not 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-2.138089935) > 1e-6 {
		t.Fatalf("std = %v", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
	if m, s := MeanStd([]float64{3}); m != 3 || s != 0 {
		t.Fatalf("single-sample MeanStd = %v,%v", m, s)
	}
}

func TestSummaryString(t *testing.T) {
	m := NewMonitor()
	m.Add(TxRecord{ID: 1, Size: 2, Outcome: Committed, Finish: sim.Time(sim.Second)})
	s := m.Summarize().String()
	if s == "" {
		t.Fatal("empty summary string")
	}
}
