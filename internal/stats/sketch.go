package stats

import (
	"math"

	"rtlock/internal/sim"
)

// Sketch is a deterministic fixed-bucket quantile sketch over simulated
// durations. Unlike sampling sketches (t-digest, GK), it has no random
// state and no data-dependent bucket boundaries: bucket i counts
// observations in (i·width, (i+1)·width], with zero landing in bucket 0
// and everything beyond the last bucket in an overflow cell. Two runs
// that observe the same sequence therefore hold byte-identical state,
// and a quantile answer is always within one bucket width of the exact
// nearest-rank value as long as the observation fits the covered range
// (the overflow cell answers with the tracked maximum instead).
//
// Memory is buckets×8 bytes, fixed at construction — the monitor's
// bounded-memory replacement for retaining and sorting every response
// time.
type Sketch struct {
	width  sim.Duration
	counts []int64
	over   int64 // observations beyond the covered range
	count  int64
	sum    sim.Duration
	max    sim.Duration
}

// Default sketch geometry for response/blocked times: 1ms buckets
// covering 0–8.192s. Every calibrated experiment's deadlines (and so
// every committed response time) fit well inside the covered range.
const (
	// DefaultSketchWidth is the default bucket width.
	DefaultSketchWidth = sim.Millisecond
	// DefaultSketchBuckets is the default bucket count.
	DefaultSketchBuckets = 8192
)

// NewSketch returns an empty sketch of the given geometry; non-positive
// arguments pick the defaults.
func NewSketch(width sim.Duration, buckets int) *Sketch {
	if width <= 0 {
		width = DefaultSketchWidth
	}
	if buckets <= 0 {
		buckets = DefaultSketchBuckets
	}
	return &Sketch{width: width, counts: make([]int64, buckets)}
}

// Observe records one duration. Negative durations clamp to zero. The
// method allocates nothing; it is safe on the simulation hot path.
//
//rtlint:allocfree
func (s *Sketch) Observe(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	s.count++
	s.sum += d
	if d > s.max {
		s.max = d
	}
	idx := 0
	if d > 0 {
		// Inclusive upper edge: d in (i·width, (i+1)·width] lands in i.
		idx = int((d - 1) / s.width)
	}
	if idx >= len(s.counts) {
		s.over++
		return
	}
	s.counts[idx]++
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the sum of observations.
func (s *Sketch) Sum() sim.Duration { return s.sum }

// Max returns the largest observation.
func (s *Sketch) Max() sim.Duration { return s.max }

// Width returns the bucket width.
func (s *Sketch) Width() sim.Duration { return s.width }

// Mean returns the mean observation (0 when empty).
func (s *Sketch) Mean() sim.Duration {
	if s.count == 0 {
		return 0
	}
	return s.sum / sim.Duration(s.count)
}

// Quantile returns the q-quantile (0 < q ≤ 1) by the nearest-rank
// method, answering with the containing bucket's upper edge clamped to
// the maximum observation — so the answer is within one bucket width of
// the exact nearest-rank value whenever the rank falls inside the
// covered range, and exactly the maximum when it falls beyond it.
//
//rtlint:allocfree
func (s *Sketch) Quantile(q float64) sim.Duration {
	if q <= 0 || q > 1 || s.count == 0 {
		return 0
	}
	// The same ceil-rank as ResponsePercentile's exact path, so the two
	// disagree only by the in-bucket rounding, never by rank selection.
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var seen int64
	for i, c := range s.counts {
		seen += c
		if seen >= rank {
			upper := sim.Duration(i+1) * s.width
			if upper > s.max {
				upper = s.max
			}
			return upper
		}
	}
	return s.max
}

// Reset clears the sketch for reuse without releasing its buckets.
//
//rtlint:allocfree
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.over = 0
	s.count = 0
	s.sum = 0
	s.max = 0
}
