package stats

import (
	"strings"
	"testing"

	"rtlock/internal/sim"
)

func TestTraceRecordsInOrder(t *testing.T) {
	tr := NewTrace(0)
	tr.Log(10, 1, EvArrive, -1, "")
	tr.Log(20, 1, EvLockRequest, 5, "W")
	tr.Log(30, 2, EvArrive, -1, "")
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[1].Kind != EvLockRequest || evs[1].Obj != 5 || evs[1].Note != "W" {
		t.Fatalf("event = %+v", evs[1])
	}
}

func TestTraceCapBounds(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Log(sim.Time(i), int64(i), EvArrive, -1, "")
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", tr.Len())
	}
}

func TestTraceTimeline(t *testing.T) {
	tr := NewTrace(0)
	tr.Log(1, 1, EvArrive, -1, "")
	tr.Log(2, 2, EvArrive, -1, "")
	tr.Log(3, 1, EvCommit, -1, "")
	tl := tr.Timeline(1)
	if len(tl) != 2 || tl[1].Kind != EvCommit {
		t.Fatalf("timeline = %+v", tl)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Log(1, 1, EvArrive, -1, "") // must not panic
	if tr.Len() != 0 || tr.Events() != nil || tr.Timeline(1) != nil || tr.String() != "" {
		t.Fatal("nil trace misbehaved")
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace(0)
	tr.Log(sim.Time(1500), 7, EvLockGrant, 3, "W blocked 1.0ms")
	s := tr.String()
	if !strings.Contains(s, "tx7") || !strings.Contains(s, "lock-grant") || !strings.Contains(s, "obj3") {
		t.Fatalf("rendered: %q", s)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvArrive, EvLockRequest, EvLockGrant, EvOpDone, EvCommit, EvDeadlineMiss, EvRestart, EvMessage}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "EventKind(99)" {
		t.Fatal("unknown kind fallback broken")
	}
}
