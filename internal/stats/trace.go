package stats

import (
	"fmt"
	"strings"

	"rtlock/internal/sim"
)

// EventKind classifies trace events, mirroring what the paper's
// Performance Monitor records: priority and read/write set per
// transaction, the time each event occurred, blocked intervals, deadline
// outcomes, and abort counts.
type EventKind int

// Trace event kinds.
const (
	EvArrive EventKind = iota + 1
	EvLockRequest
	EvLockGrant
	EvOpDone
	EvCommit
	EvDeadlineMiss
	EvRestart
	EvMessage
)

// String names the kind in timelines.
func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvLockRequest:
		return "lock-request"
	case EvLockGrant:
		return "lock-grant"
	case EvOpDone:
		return "op-done"
	case EvCommit:
		return "commit"
	case EvDeadlineMiss:
		return "deadline-miss"
	case EvRestart:
		return "restart"
	case EvMessage:
		return "message"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Tx   int64
	Kind EventKind
	// Obj is the object involved in lock/op events (-1 otherwise).
	Obj int32
	// Note carries free-form detail ("W", "blocked 12ms", …).
	Note string
}

// String renders one event line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.3fms tx%-4d %-13s", sim.Duration(e.At).Millis(), e.Tx, e.Kind)
	if e.Obj >= 0 {
		s += fmt.Sprintf(" obj%-4d", e.Obj)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Trace is a bounded in-order event log. A zero capacity means
// unbounded; otherwise recording stops (silently) at the cap, keeping
// long experiment runs cheap while short investigations see everything.
type Trace struct {
	cap    int
	events []Event
}

// NewTrace returns a trace keeping at most capacity events (0 =
// unbounded).
func NewTrace(capacity int) *Trace { return &Trace{cap: capacity} }

// Log appends an event if capacity remains. Pass obj -1 when no object
// is involved.
func (t *Trace) Log(at sim.Time, tx int64, kind EventKind, obj int32, note string) {
	if t == nil {
		return
	}
	if t.cap > 0 && len(t.events) >= t.cap {
		return
	}
	t.events = append(t.events, Event{At: at, Tx: tx, Kind: kind, Obj: obj, Note: note})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns a copy of the full log.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Timeline returns the events of one transaction, in order.
func (t *Trace) Timeline(tx int64) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if e.Tx == tx {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole log, one event per line.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range t.events {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
