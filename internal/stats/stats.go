// Package stats is the performance monitor: it records the paper's
// per-transaction statistics (arrival and start times, total processing
// time, blocked interval, deadline hit or miss, aborts) and derives the
// two headline metrics of the evaluation — normalized transaction
// throughput in data objects accessed per second for successful
// transactions, and the percentage of deadline-missing transactions,
// %missed = 100 × missed / processed.
package stats

import (
	"fmt"
	"math"
	"sort"

	"rtlock/internal/db"
	"rtlock/internal/sim"
)

// Outcome classifies how a transaction left the system.
type Outcome int

// Transaction outcomes. Every processed transaction either commits or is
// aborted at its deadline (transactions are hard: a missed deadline has
// no residual value and the transaction disappears, §3.2).
const (
	Committed Outcome = iota + 1
	DeadlineMissed
)

// TxRecord is the monitor's per-transaction record.
type TxRecord struct {
	ID       int64
	Site     db.SiteID
	Size     int
	ReadOnly bool

	Arrival  sim.Time
	Start    sim.Time
	Finish   sim.Time
	Deadline sim.Time

	Outcome      Outcome
	Blocked      sim.Duration
	BlockedCount int
	Messages     int
	// Restarts counts aborted-and-retried attempts under abort-based
	// protocols (the paper's per-transaction "number of aborts").
	Restarts int
}

// Monitor accumulates transaction statistics for one run. Every
// aggregate the paper reports (throughput, %missed, mean blocked and
// response times, restart and message totals) is maintained as a running
// sum or count at Add time, and the response/blocked distributions feed
// deterministic fixed-bucket sketches — so the aggregates cost O(1)
// memory regardless of run length. Raw TxRecords are additionally
// retained for callers that want per-transaction detail; SetMaxRaw caps
// that retention (a ring of the most recent records) so million-
// transaction runs stay bounded.
type Monitor struct {
	records []TxRecord
	maxRaw  int // 0 = retain everything
	next    int // ring write index once the cap is reached
	dropped int // records processed but no longer retained
	horizon sim.Time

	// Streaming aggregates, updated on every Add.
	processed    int
	committed    int
	objects      int // objects accessed by committed transactions
	totalBlocked sim.Duration
	blockedCount int
	totalResp    sim.Duration // over committed transactions
	restarts     int
	messages     int

	respSketch    *Sketch // committed response times
	blockedSketch *Sketch // blocked intervals, all processed
}

// NewMonitor returns an empty monitor with the default sketch geometry.
func NewMonitor() *Monitor {
	return &Monitor{
		respSketch:    NewSketch(0, 0),
		blockedSketch: NewSketch(0, 0),
	}
}

// SetMaxRaw caps raw TxRecord retention at n records (0 restores
// unlimited retention): once n records are held, each Add overwrites the
// oldest. The streaming aggregates are unaffected — only Records (and
// the exact percentile path) see the bounded window. Call it before the
// run; lowering the cap mid-run drops the oldest retained records.
func (m *Monitor) SetMaxRaw(n int) {
	if n < 0 {
		n = 0
	}
	m.maxRaw = n
	if n > 0 && len(m.records) > n {
		// Keep the newest n. Records are held in finish order (ring
		// rotation aside), so the front is the oldest.
		m.dropped += len(m.records) - n
		copy(m.records, m.records[len(m.records)-n:])
		m.records = m.records[:n]
		m.next = 0
	}
}

// MaxRaw returns the raw-retention cap (0 = unlimited).
func (m *Monitor) MaxRaw() int { return m.maxRaw }

// RawRetained returns how many raw records are currently held.
func (m *Monitor) RawRetained() int { return len(m.records) }

// RawDropped returns how many processed records were evicted by the cap.
func (m *Monitor) RawDropped() int { return m.dropped }

// Reserve grows the record buffer to hold n transactions, so a loader
// that knows its workload size avoids incremental growth in the run.
// Under a raw-retention cap, the reservation clamps to the cap.
func (m *Monitor) Reserve(n int) {
	if m.maxRaw > 0 && n > m.maxRaw {
		n = m.maxRaw
	}
	if cap(m.records) >= n {
		return
	}
	records := make([]TxRecord, len(m.records), n)
	copy(records, m.records)
	m.records = records
}

// Add records one processed transaction: the streaming aggregates and
// sketches always, the raw record subject to the retention cap. Under a
// cap the method allocates nothing in steady state (ring overwrite); an
// uncapped monitor grows the record slice as before.
func (m *Monitor) Add(r TxRecord) {
	m.processed++
	m.totalBlocked += r.Blocked
	m.blockedCount += r.BlockedCount
	m.restarts += r.Restarts
	m.messages += r.Messages
	m.blockedSketch.Observe(r.Blocked)
	if r.Outcome == Committed {
		m.committed++
		m.objects += r.Size
		resp := r.Finish.Sub(r.Arrival)
		m.totalResp += resp
		m.respSketch.Observe(resp)
	}
	if r.Finish > m.horizon {
		m.horizon = r.Finish
	}
	if m.maxRaw > 0 && len(m.records) >= m.maxRaw {
		m.records[m.next] = r
		m.next++
		if m.next == m.maxRaw {
			m.next = 0
		}
		m.dropped++
		return
	}
	m.records = append(m.records, r)
}

// SetHorizon overrides the observation window end (defaults to the last
// recorded finish time). Throughput normalizes by this window.
func (m *Monitor) SetHorizon(t sim.Time) { m.horizon = t }

// Records returns a copy of the retained records, ordered by
// transaction id. Under a raw-retention cap only the most recent cap
// records are held; RawDropped reports how many were evicted.
func (m *Monitor) Records() []TxRecord {
	out := make([]TxRecord, len(m.records))
	copy(out, m.records)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Processed returns the number of transactions that completed or were
// aborted.
func (m *Monitor) Processed() int { return m.processed }

// CommittedCount returns the number of transactions that met their
// deadline.
func (m *Monitor) CommittedCount() int { return m.committed }

// MissedCount returns the number of deadline-missing transactions.
func (m *Monitor) MissedCount() int { return m.processed - m.committed }

// MissedPct returns 100 × missed / processed, the paper's %missed
// (0 for an empty run).
func (m *Monitor) MissedPct() float64 {
	if m.processed == 0 {
		return 0
	}
	return 100 * float64(m.MissedCount()) / float64(m.processed)
}

// Throughput returns the normalized throughput: data objects accessed per
// second over successful (committed) transactions — the completion rate
// multiplied by transaction size, as the paper normalizes to account for
// bigger transactions doing more database work. A zero or unset horizon
// reports 0.
func (m *Monitor) Throughput() float64 {
	if m.horizon <= 0 {
		return 0
	}
	return float64(m.objects) / sim.Duration(m.horizon).Seconds()
}

// AvgBlocked returns the mean blocked interval across processed
// transactions (0 for an empty run).
func (m *Monitor) AvgBlocked() sim.Duration {
	if m.processed == 0 {
		return 0
	}
	return m.totalBlocked / sim.Duration(m.processed)
}

// AvgResponse returns the mean finish−arrival time over committed
// transactions (0 when none committed).
func (m *Monitor) AvgResponse() sim.Duration {
	if m.committed == 0 {
		return 0
	}
	return m.totalResp / sim.Duration(m.committed)
}

// ResponsePercentile returns the q-quantile (0 < q <= 1) of the
// finish−arrival time over committed transactions, using the
// nearest-rank method. Real-time systems care about the tail, not just
// the mean; p95/p99 response times quantify predictability.
//
// While every raw record is retained the answer is exact; once the
// retention cap has evicted records it comes from the streaming sketch
// instead, within one sketch bucket width of exact.
func (m *Monitor) ResponsePercentile(q float64) sim.Duration {
	if q <= 0 || q > 1 {
		return 0
	}
	if m.dropped > 0 {
		return m.respSketch.Quantile(q)
	}
	var resp []sim.Duration
	for _, r := range m.records {
		if r.Outcome == Committed {
			resp = append(resp, r.Finish.Sub(r.Arrival))
		}
	}
	if len(resp) == 0 {
		return 0
	}
	sort.Slice(resp, func(i, j int) bool { return resp[i] < resp[j] })
	rank := int(math.Ceil(q*float64(len(resp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(resp) {
		rank = len(resp) - 1
	}
	return resp[rank]
}

// ResponseQuantile returns the q-quantile of committed response times
// from the streaming sketch: bounded memory, within one bucket width of
// the exact nearest-rank answer.
func (m *Monitor) ResponseQuantile(q float64) sim.Duration {
	return m.respSketch.Quantile(q)
}

// BlockedQuantile returns the q-quantile of blocked intervals across
// processed transactions from the streaming sketch.
func (m *Monitor) BlockedQuantile(q float64) sim.Duration {
	return m.blockedSketch.Quantile(q)
}

// ResponseSketch exposes the streaming response-time sketch (committed
// transactions).
func (m *Monitor) ResponseSketch() *Sketch { return m.respSketch }

// BlockedSketch exposes the streaming blocked-interval sketch (all
// processed transactions).
func (m *Monitor) BlockedSketch() *Sketch { return m.blockedSketch }

// Restarts returns the total number of aborted-and-retried attempts.
func (m *Monitor) Restarts() int { return m.restarts }

// Messages returns the total message count across transactions.
func (m *Monitor) Messages() int { return m.messages }

// Summary is an aggregate snapshot convenient for tables.
type Summary struct {
	Processed  int
	Committed  int
	Missed     int
	MissedPct  float64
	Throughput float64 // objects/sec over committed transactions
	AvgBlocked sim.Duration
	AvgResp    sim.Duration
	Restarts   int
	// RespP50 and RespP99 are the median and 99th-percentile response
	// times over committed transactions: the tail/median ratio
	// measures predictability, the real-time property the ceiling
	// protocol is designed for.
	RespP50 sim.Duration
	RespP99 sim.Duration
	// CPUUtil is the mean processor utilization over the horizon
	// (averaged across sites in distributed runs); the runtime fills
	// it in.
	CPUUtil float64
	// IOUtil is the mean I/O utilization over the horizon (single-site
	// runs; meaningful when I/O parallelism is bounded, otherwise it
	// reports offered I/O load).
	IOUtil float64
}

// Summarize computes the aggregate snapshot.
func (m *Monitor) Summarize() Summary {
	return Summary{
		Processed:  m.Processed(),
		Committed:  m.CommittedCount(),
		Missed:     m.MissedCount(),
		MissedPct:  m.MissedPct(),
		Throughput: m.Throughput(),
		AvgBlocked: m.AvgBlocked(),
		AvgResp:    m.AvgResponse(),
		Restarts:   m.Restarts(),
		RespP50:    m.ResponsePercentile(0.5),
		RespP99:    m.ResponsePercentile(0.99),
	}
}

// Horizon returns the observation-window end used for normalization.
func (m *Monitor) Horizon() sim.Time { return m.horizon }

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("processed=%d committed=%d missed=%d (%.1f%%) thpt=%.1f obj/s blocked=%.1fms resp=%.1fms restarts=%d cpu=%.0f%%",
		s.Processed, s.Committed, s.Missed, s.MissedPct, s.Throughput,
		s.AvgBlocked.Millis(), s.AvgResp.Millis(), s.Restarts, 100*s.CPUUtil)
}

// NetReport aggregates the message-layer counters of a distributed run:
// how many inter-site messages were sent, how many reached a handler,
// and where the rest were lost. Fault-free runs show zeros in every
// loss column except DroppedNoHandler (which counts late replies to
// ports whose waiter already gave up); fault runs attribute each loss
// to its cause — endpoint site down, link cut by a partition, or the
// injector's random loss.
type NetReport struct {
	// Sent counts inter-site messages handed to the network.
	Sent int
	// Delivered counts messages dispatched to a registered handler.
	Delivered int
	// DroppedNoHandler counts messages that arrived on a port with no
	// handler registered.
	DroppedNoHandler int
	// DroppedDown counts messages discarded because an endpoint site
	// was down at send or delivery time.
	DroppedDown int
	// DroppedCut counts messages discarded because the link was cut by
	// a partition.
	DroppedCut int
	// DroppedFault counts messages the fault injector dropped.
	DroppedFault int
	// Duplicated counts extra copies the fault injector delivered.
	Duplicated int
}

// Lost returns the total number of messages that never reached a
// handler.
func (n NetReport) Lost() int {
	return n.DroppedNoHandler + n.DroppedDown + n.DroppedCut + n.DroppedFault
}

// String renders the report on one line.
func (n NetReport) String() string {
	return fmt.Sprintf("sent=%d delivered=%d lost=%d (nohandler=%d down=%d cut=%d fault=%d) dup=%d",
		n.Sent, n.Delivered, n.Lost(),
		n.DroppedNoHandler, n.DroppedDown, n.DroppedCut, n.DroppedFault, n.Duplicated)
}

// MeanStd returns the mean and standard deviation of xs; the experiment
// harness averages each metric over independent runs as the paper does
// (10 runs per point).
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
