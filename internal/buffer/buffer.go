// Package buffer provides an LRU page buffer for the database — part of
// the "intrinsic" file-management layer the paper says dominates a
// database system's code while the control algorithms vary around it. An
// access that hits the buffer skips the per-object I/O delay; a miss
// pays it and installs the object, evicting the least recently used
// entry when full.
package buffer

import (
	"container/list"

	"rtlock/internal/core"
)

// Pool is an LRU object buffer. A nil pool or zero capacity means no
// buffering: every access misses, reproducing the unbuffered behavior of
// the calibrated experiments.
type Pool struct {
	capacity int
	order    *list.List // front = most recently used
	index    map[core.ObjectID]*list.Element

	// Hits and Misses count accesses for hit-ratio reporting.
	Hits   int
	Misses int
}

// New returns a pool holding up to capacity objects (capacity <= 0
// disables buffering).
func New(capacity int) *Pool {
	if capacity <= 0 {
		return &Pool{}
	}
	return &Pool{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[core.ObjectID]*list.Element, capacity),
	}
}

// Access touches obj and reports whether it was resident (hit). Misses
// install the object, evicting the LRU entry if needed.
func (p *Pool) Access(obj core.ObjectID) bool {
	if p == nil || p.capacity <= 0 {
		if p != nil {
			p.Misses++
		}
		return false
	}
	if el, ok := p.index[obj]; ok {
		p.order.MoveToFront(el)
		p.Hits++
		return true
	}
	p.Misses++
	if p.order.Len() >= p.capacity {
		lru := p.order.Back()
		if lru != nil {
			if evicted, ok := lru.Value.(core.ObjectID); ok {
				delete(p.index, evicted)
			}
			p.order.Remove(lru)
		}
	}
	p.index[obj] = p.order.PushFront(obj)
	return false
}

// Invalidate drops obj from the buffer (e.g. a remote update superseded
// the cached copy).
func (p *Pool) Invalidate(obj core.ObjectID) {
	if p == nil || p.index == nil {
		return
	}
	if el, ok := p.index[obj]; ok {
		p.order.Remove(el)
		delete(p.index, obj)
	}
}

// Len reports the resident object count.
func (p *Pool) Len() int {
	if p == nil || p.order == nil {
		return 0
	}
	return p.order.Len()
}

// HitRatio reports hits/(hits+misses), zero when idle.
func (p *Pool) HitRatio() float64 {
	if p == nil {
		return 0
	}
	total := p.Hits + p.Misses
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}
