package buffer

import (
	"testing"
	"testing/quick"

	"rtlock/internal/core"
)

func TestHitAfterMiss(t *testing.T) {
	p := New(4)
	if p.Access(1) {
		t.Fatal("first access hit")
	}
	if !p.Access(1) {
		t.Fatal("second access missed")
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", p.Hits, p.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(2)
	p.Access(1)
	p.Access(2)
	p.Access(1) // 1 is now MRU; order [1, 2]
	if p.Access(3) {
		t.Fatal("3 hit unexpectedly")
	}
	// 3 evicted the LRU entry (2); 1 survived as MRU. Probe 1 first —
	// probes install, so order matters.
	if !p.Access(1) {
		t.Fatal("MRU object evicted")
	}
	if p.Access(2) {
		t.Fatal("evicted object still resident")
	}
	if p.Len() > 2 {
		t.Fatalf("len = %d exceeds capacity", p.Len())
	}
}

func TestZeroCapacityAlwaysMisses(t *testing.T) {
	p := New(0)
	for i := 0; i < 5; i++ {
		if p.Access(1) {
			t.Fatal("zero-capacity pool hit")
		}
	}
	if p.HitRatio() != 0 {
		t.Fatalf("hit ratio = %v", p.HitRatio())
	}
}

func TestNilPoolSafe(t *testing.T) {
	var p *Pool
	if p.Access(1) {
		t.Fatal("nil pool hit")
	}
	p.Invalidate(1)
	if p.Len() != 0 || p.HitRatio() != 0 {
		t.Fatal("nil pool misbehaved")
	}
}

func TestInvalidate(t *testing.T) {
	p := New(4)
	p.Access(7)
	p.Invalidate(7)
	if p.Access(7) {
		t.Fatal("invalidated object still resident")
	}
	p.Invalidate(99) // absent: no-op
}

func TestHitRatio(t *testing.T) {
	p := New(10)
	p.Access(1)
	p.Access(1)
	p.Access(1)
	p.Access(2)
	// 2 hits out of 4.
	if r := p.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
}

func TestPropNeverExceedsCapacity(t *testing.T) {
	prop := func(capRaw uint8, accesses []uint8) bool {
		capacity := int(capRaw%16) + 1
		p := New(capacity)
		for _, a := range accesses {
			p.Access(core.ObjectID(a % 64))
			if p.Len() > capacity {
				return false
			}
		}
		return p.Hits+p.Misses == len(accesses)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropWorkingSetFitsAllHits(t *testing.T) {
	// Once the working set fits, every subsequent access hits.
	prop := func(objsRaw uint8) bool {
		n := int(objsRaw%8) + 1
		p := New(n)
		for i := 0; i < n; i++ {
			p.Access(core.ObjectID(i))
		}
		for round := 0; round < 3; round++ {
			for i := 0; i < n; i++ {
				if !p.Access(core.ObjectID(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
