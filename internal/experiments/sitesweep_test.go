package experiments

import (
	"math"
	"testing"

	"rtlock/internal/place"
)

func TestSiteSweepSmall(t *testing.T) {
	p := DefaultSiteSweep().Scale(0.15, 2)
	p.Sites = []int{1, 2, 4}
	p.Audit = true
	thpt, missed, tax, err := SiteSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(thpt.Series) != 4 || len(missed.Series) != 4 {
		t.Fatalf("series: thpt=%d missed=%d, want 4 policies each", len(thpt.Series), len(missed.Series))
	}
	// Tax figure: latency and throughput series for each coordinated
	// policy, every ratio finite and positive.
	if len(tax.Series) != 6 {
		t.Fatalf("tax series = %d, want 3 coordinated policies x 2 ratios", len(tax.Series))
	}
	for _, s := range tax.Series {
		if len(s.Points) != len(p.Sites) {
			t.Fatalf("%s: %d points, want %d", s.Label, len(s.Points), len(p.Sites))
		}
		for _, pt := range s.Points {
			if math.IsNaN(pt.Y) || math.IsInf(pt.Y, 0) || pt.Y <= 0 {
				t.Fatalf("%s at sites=%g: tax ratio %v", s.Label, pt.X, pt.Y)
			}
		}
	}
	for _, pol := range place.Policies() {
		if _, ok := tax.SeriesByLabel(pol.String() + "/latency"); !ok && pol != place.PrimaryOnly {
			t.Fatalf("missing latency tax series for %s", pol)
		}
	}
}

// TestSiteSweepBaselineCheaper pins the economic direction of the tax:
// coordination cannot beat no-coordination on latency at multi-site
// counts, so the latency tax of the 2PC policies stays >= 1 within
// noise.
func TestSiteSweepBaselineCheaper(t *testing.T) {
	p := DefaultSiteSweep().Scale(0.15, 2)
	p.Sites = []int{4}
	_, _, tax, err := SiteSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"shard/latency", "quorum/latency"} {
		s, ok := tax.SeriesByLabel(label)
		if !ok {
			t.Fatalf("missing series %s", label)
		}
		if s.Points[0].Y < 0.95 {
			t.Fatalf("%s = %v, expected coordination to cost latency (>= ~1)", label, s.Points[0].Y)
		}
	}
}
