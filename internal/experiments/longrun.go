package experiments

// The streaming soak: a single-site run long enough (a million
// transactions by default) that materializing the load, the raw
// per-transaction records, or an unbounded metrics table would dominate
// memory. Arrivals stream one event at a time, raw record retention is
// capped, and the windowed timeline is the primary observable — the
// whole run holds O(windows + cap) state regardless of Count.

import (
	"fmt"

	"rtlock/internal/db"
	"rtlock/internal/metrics"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/timeline"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// LongRunParams configures the streaming soak. The zero value runs the
// calibrated million-transaction bursty load under the ceiling protocol.
type LongRunParams struct {
	Protocol Protocol
	Seed     int64
	// Count is the number of transactions (default 1,000,000).
	Count int
	// DBSize (default 10000) keeps the conflict rate moderate so the
	// run is throughput-bound, not livelocked.
	DBSize int
	// CPUPerObj (default 1ms) with MeanSize (default 4) and
	// MeanInterarrival (default 6ms) put base utilization near 2/3;
	// bursts push it past saturation.
	CPUPerObj        sim.Duration
	MeanSize         int
	MeanInterarrival sim.Duration
	// BurstFactor/BurstOn/BurstOff shape the deterministic burst square
	// wave (defaults 3, 2s on, 8s off).
	BurstFactor       float64
	BurstOn, BurstOff sim.Duration
	// Window is the timeline window width (default 10s virtual);
	// MaxWindows bounds retained rows (0 = timeline.DefaultMaxWindows).
	Window     sim.Duration
	MaxWindows int
	// MaxRawRecords caps raw per-transaction retention (default 4096).
	MaxRawRecords int
}

func (p *LongRunParams) fill() {
	if p.Protocol == "" {
		p.Protocol = ProtoCeiling
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Count == 0 {
		p.Count = 1_000_000
	}
	if p.DBSize == 0 {
		p.DBSize = 10_000
	}
	if p.CPUPerObj == 0 {
		p.CPUPerObj = sim.Millisecond
	}
	if p.MeanSize == 0 {
		p.MeanSize = 4
	}
	if p.MeanInterarrival == 0 {
		p.MeanInterarrival = 6 * sim.Millisecond
	}
	if p.BurstFactor == 0 {
		p.BurstFactor = 3
	}
	if p.BurstOn == 0 {
		p.BurstOn = 2 * sim.Second
	}
	if p.BurstOff == 0 {
		p.BurstOff = 8 * sim.Second
	}
	if p.Window == 0 {
		p.Window = 10 * sim.Second
	}
	if p.MaxRawRecords == 0 {
		p.MaxRawRecords = 4096
	}
}

// LongRunResult is the bounded-size outcome of a streaming soak.
type LongRunResult struct {
	Summary  stats.Summary
	Timeline []metrics.TimelineRow
	// TimelineDropped counts windows evicted from the ring.
	TimelineDropped int
	// RawRetained/RawDropped report the record cap in effect: retained
	// never exceeds MaxRawRecords no matter how large Count is.
	RawRetained, RawDropped int
}

// longRunSampleRetention caps the probe registry's sample table; the
// timeline reads live counters at window closes, so old sample rows are
// dead weight.
const longRunSampleRetention = 1024

// LongRun executes the streaming soak and returns the windowed
// timeline. Memory stays bounded by (windows retained + record cap +
// live transactions), not by Count.
func LongRun(p LongRunParams) (*LongRunResult, error) {
	p.fill()
	newMgr, disc, err := ManagerFor(p.Protocol)
	if err != nil {
		return nil, err
	}
	cat, err := db.NewCatalog(1, p.DBSize)
	if err != nil {
		return nil, err
	}
	stream, err := workload.NewStream(workload.Params{
		Seed:             p.Seed,
		Catalog:          cat,
		Count:            p.Count,
		MeanInterarrival: p.MeanInterarrival,
		MeanSize:         p.MeanSize,
		PerObjCost:       p.CPUPerObj,
		SlackMin:         4,
		SlackMax:         8,
		BurstFactor:      p.BurstFactor,
		BurstOn:          p.BurstOn,
		BurstOff:         p.BurstOff,
	})
	if err != nil {
		return nil, err
	}
	reg := metrics.New()
	reg.SetRetention(longRunSampleRetention)
	tl := timeline.New(timeline.Config{Window: p.Window, MaxWindows: p.MaxWindows}, reg)
	if tl == nil {
		return nil, fmt.Errorf("experiments: long run window %v invalid", p.Window)
	}
	sys, err := txn.NewSystem(txn.Config{
		CPUPerObj:     p.CPUPerObj,
		CPUDiscipline: disc,
		NewManager:    newMgr,
		Metrics:       reg,
		Timeline:      tl,
		MaxRawRecords: p.MaxRawRecords,
	})
	if err != nil {
		return nil, err
	}
	sys.LoadStream(stream)
	sum := sys.Run()
	return &LongRunResult{
		Summary:         sum,
		Timeline:        tl.Rows(),
		TimelineDropped: tl.Dropped(),
		RawRetained:     sys.Monitor.RawRetained(),
		RawDropped:      sys.Monitor.RawDropped(),
	}, nil
}
