package experiments

import (
	"testing"
)

// TestExploreSweepSmall runs the sweep at a tiny budget over two
// protocols and checks the figure's shape.
func TestExploreSweepSmall(t *testing.T) {
	p := ExploreParams{
		Protocols: []Protocol{ProtoCeiling, ProtoTwoPLPrio},
		Budgets:   []int{4, 8},
		MaxDepth:  12,
		Branch:    2,
		Workers:   2,
	}
	fig, err := ExploreSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points, want 2", s.Label, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.Y <= 0 {
				t.Errorf("series %s explored no distinct schedules at budget %g", s.Label, pt.X)
			}
		}
	}
}

// TestExploreSweepCleanTreeAllProtocols is the clean-tree soak: every
// protocol of the study plus both distributed architectures explores a
// small schedule budget with zero invariant violations. This is the CI
// smoke run's in-tree twin.
func TestExploreSweepCleanTreeAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short")
	}
	p := DefaultExplore()
	p.Budgets = []int{10}
	if _, err := ExploreSweep(p); err != nil {
		t.Fatal(err)
	}
}

// TestExploreSweepSeedDeterministic: the sweep's figure is identical
// across runs for a fixed configuration.
func TestExploreSweepSeedDeterministic(t *testing.T) {
	p := ExploreParams{Protocols: []Protocol{ProtoCeiling}, Budgets: []int{6}, MaxDepth: 12, Branch: 2, Workers: 3}
	a, err := ExploreSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExploreSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatalf("sweep not deterministic:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
}

// TestExploreTargetsCoverDistributed: the target list includes both
// distributed architectures when asked.
func TestExploreTargetsCoverDistributed(t *testing.T) {
	targets, err := exploreTargets(DefaultExplore())
	if err != nil {
		t.Fatal(err)
	}
	want := len(AllProtocols()) + 2
	if len(targets) != want {
		t.Fatalf("got %d targets, want %d", len(targets), want)
	}
	var dist int
	for _, tgt := range targets {
		if tgt.Name == "dist/local" || tgt.Name == "dist/global" {
			dist++
		}
	}
	if dist != 2 {
		names := make([]string, 0, len(targets))
		for _, tgt := range targets {
			names = append(names, tgt.Name)
		}
		t.Fatalf("distributed targets missing from %v", names)
	}
}
