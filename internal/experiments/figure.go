// Package experiments regenerates every figure in the paper's evaluation:
// Figures 2–3 (single-site throughput and deadline misses for the
// priority ceiling protocol C versus two-phase locking with (P) and
// without (L) priority), Figures 4–6 (the distributed comparison of the
// global and local ceiling approaches across transaction mixes and
// communication delays), plus the ablations the paper mentions but omits
// (database-size sweep) or raises as open questions (read/write versus
// exclusive lock semantics, basic inheritance versus ceiling).
package experiments

import (
	"fmt"
	"strings"
)

// Point is one measured value: an x coordinate, the mean y over the
// independent runs, and the standard deviation across runs.
type Point struct {
	X    float64
	Y    float64
	Std  float64
	Runs int
}

// Series is one curve in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced table/figure: rows are x values, columns are
// series.
type Figure struct {
	Name   string // e.g. "fig2"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as an aligned text table with one row per x
// value and one column per series, mean±std.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.Name), f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Label)
	}
	b.WriteString("\n")
	for i := range f.xs() {
		fmt.Fprintf(&b, "%-12.4g", f.xs()[i])
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %11.3f±%-6.2f", s.Points[i].Y, s.Points[i].Std)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	return b.String()
}

// CSV renders the figure as comma-separated values: header row of series
// labels, then one row per x.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(csvEscape(s.Label))
		b.WriteString(",")
		b.WriteString(csvEscape(s.Label + "_std"))
	}
	b.WriteString("\n")
	for i := range f.xs() {
		fmt.Fprintf(&b, "%g", f.xs()[i])
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%g,%g", s.Points[i].Y, s.Points[i].Std)
			} else {
				b.WriteString(",,")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// xs returns the x axis (taken from the longest series).
func (f Figure) xs() []float64 {
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > len(xs) {
			xs = xs[:0]
			for _, p := range s.Points {
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}

// SeriesByLabel finds a series, for assertions in tests.
func (f Figure) SeriesByLabel(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
