package experiments

import (
	"fmt"
	"math"
	"sort"

	"rtlock/internal/audit"
	"rtlock/internal/db"
	"rtlock/internal/dist"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

// DistParams configures the distributed experiments (Figures 4–6): three
// fully interconnected sites, a memory-resident database (no I/O cost),
// update transactions assigned to the site of their write set, read-only
// transactions distributed randomly, and a swept communication delay
// measured in "time units" (one unit is the per-object CPU cost).
type DistParams struct {
	Sites            int
	DBSize           int
	CPUPerObj        sim.Duration
	MeanInterarrival sim.Duration
	SlackMin         float64
	SlackMax         float64
	MeanSize         int
	Count            int
	Runs             int
	// Mixes is the swept fraction of read-only transactions.
	Mixes []float64
	// DelayUnits is the swept communication delay, in units of
	// CPUPerObj.
	DelayUnits []float64
	// Fig6Delays picks the two delays (same units) whose curves
	// Figure 6 shows.
	Fig6Delays []float64
	BaseSeed   int64
	// Audit records a replay journal for every run and replays it
	// through the approach's invariant auditors; any violation fails
	// the run.
	Audit bool
}

// DefaultDistributed returns the calibrated configuration.
func DefaultDistributed() DistParams {
	return DistParams{
		Sites:            3,
		DBSize:           200,
		CPUPerObj:        10 * sim.Millisecond,
		MeanInterarrival: 30 * sim.Millisecond,
		SlackMin:         4,
		SlackMax:         8,
		MeanSize:         6,
		Count:            300,
		Runs:             8,
		Mixes:            []float64{0, 0.25, 0.5, 0.75, 1},
		DelayUnits:       []float64{0, 0.5, 1, 2, 4, 6, 8, 10},
		Fig6Delays:       []float64{2, 8},
		BaseSeed:         1,
	}
}

// Scale shrinks the run length for quick tests and benchmarks.
func (p DistParams) Scale(countFrac float64, runs int) DistParams {
	p.Count = int(float64(p.Count) * countFrac)
	if p.Count < 20 {
		p.Count = 20
	}
	p.Runs = runs
	return p
}

// cell is the averaged result of one (approach, mix, delay) grid cell.
type cell struct {
	thpt, thptStd   float64
	missed, missStd float64
}

// runDist executes one distributed run.
func runDist(p DistParams, approach dist.Approach, mix, delayUnits float64, seed int64) (stats.Summary, error) {
	var jrn *journal.Journal
	if p.Audit {
		jrn = journal.New(seed, fmt.Sprintf("dist/%s/mix=%g/delay=%g", approach, mix, delayUnits))
	}
	c, err := dist.NewCluster(dist.Config{
		Approach:  approach,
		Sites:     p.Sites,
		Objects:   p.DBSize,
		CommDelay: sim.Duration(delayUnits * float64(p.CPUPerObj)),
		CPUPerObj: p.CPUPerObj,
		Journal:   jrn,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	load, err := workload.Generate(workload.Params{
		Seed:             seed,
		Catalog:          c.Catalog,
		Count:            p.Count,
		MeanInterarrival: p.MeanInterarrival,
		MeanSize:         p.MeanSize,
		ReadOnlyFrac:     mix,
		PerObjCost:       p.CPUPerObj,
		SlackMin:         p.SlackMin,
		SlackMax:         p.SlackMax,
		LocalWriteSets:   true,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	c.Load(load)
	sum := c.Run()
	if jrn != nil {
		if vs := audit.Run(jrn, audit.ForApproach(approach.String())...); len(vs) > 0 {
			return sum, fmt.Errorf("experiments: %s mix=%g delay=%g seed=%d: %d invariant violations, first: %s",
				approach, mix, delayUnits, seed, len(vs), vs[0])
		}
	}
	return sum, nil
}

// runGrid evaluates one grid cell averaged over runs.
func runGrid(p DistParams, approach dist.Approach, mix, delayUnits float64) (cell, error) {
	sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
		return runDist(p, approach, mix, delayUnits, p.BaseSeed+int64(r)*7919)
	})
	if err != nil {
		return cell{}, err
	}
	var c cell
	c.thpt, c.thptStd = stats.MeanStd(throughputOf(sums))
	c.missed, c.missStd = stats.MeanStd(missedOf(sums))
	return c, nil
}

// DistributedSweep runs the full grid once and derives Figures 4, 5 and 6.
//
//   - Figure 4: ratio of local-approach to global-approach throughput vs
//     transaction mix, one series per communication delay (the paper
//     reports the local approach 1.5–3× ahead even at delay 0).
//   - Figure 5: ratio of global-approach to local-approach %missed vs
//     communication delay at the 50/50 mix.
//   - Figure 6: %missed vs mix for two specific delays, both approaches.
func DistributedSweep(p DistParams) (fig4, fig5, fig6 Figure, err error) {
	type key struct {
		approach dist.Approach
		mix      float64
		delay    float64
	}
	grid := make(map[key]cell)

	// Delays needed: Figure 4 uses a subset (every other delay to keep
	// series readable); Figure 5 needs the whole delay axis at mix 0.5;
	// Figure 6 needs its two delays across all mixes.
	fig4Delays := pickFig4Delays(p.DelayUnits)
	need := make(map[key]struct{})
	for _, a := range []dist.Approach{dist.GlobalCeiling, dist.LocalCeiling} {
		for _, d := range fig4Delays {
			for _, mx := range p.Mixes {
				need[key{a, mx, d}] = struct{}{}
			}
		}
		for _, d := range p.DelayUnits {
			need[key{a, 0.5, d}] = struct{}{}
		}
		for _, d := range p.Fig6Delays {
			for _, mx := range p.Mixes {
				need[key{a, mx, d}] = struct{}{}
			}
		}
	}
	// Sweep the grid in a fixed order. Each cell builds its own kernel,
	// so results are per-cell deterministic either way, but map order
	// would still reorder progress output and first-error selection.
	cells := make([]key, 0, len(need))
	for k := range need {
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.approach != b.approach {
			return a.approach < b.approach
		}
		if a.mix != b.mix {
			return a.mix < b.mix
		}
		return a.delay < b.delay
	})
	for _, k := range cells {
		c, err2 := runGrid(p, k.approach, k.mix, k.delay)
		if err2 != nil {
			return fig4, fig5, fig6, err2
		}
		grid[k] = c
	}

	fig4 = Figure{
		Name:   "fig4",
		Title:  "Transaction Throughput Ratio (local/global)",
		XLabel: "%read-only",
		YLabel: "throughput(local)/throughput(global)",
	}
	for _, d := range fig4Delays {
		s := Series{Label: fmt.Sprintf("delay=%g", d)}
		for _, mx := range p.Mixes {
			g := grid[key{dist.GlobalCeiling, mx, d}]
			l := grid[key{dist.LocalCeiling, mx, d}]
			s.Points = append(s.Points, Point{X: 100 * mx, Y: ratio(l.thpt, g.thpt), Runs: p.Runs})
		}
		fig4.Series = append(fig4.Series, s)
	}

	fig5 = Figure{
		Name:   "fig5",
		Title:  "Deadline Missing Ratio (global/local) at 50% read-only",
		XLabel: "delay",
		YLabel: "%missed(global)/%missed(local)",
	}
	s5 := Series{Label: "global/local"}
	for _, d := range p.DelayUnits {
		g := grid[key{dist.GlobalCeiling, 0.5, d}]
		l := grid[key{dist.LocalCeiling, 0.5, d}]
		s5.Points = append(s5.Points, Point{X: d, Y: missRatio(g.missed, l.missed, p), Runs: p.Runs})
	}
	fig5.Series = []Series{s5}

	fig6 = Figure{
		Name:   "fig6",
		Title:  "Deadline Missing Transaction Percentage (distributed)",
		XLabel: "%read-only",
		YLabel: "% missed",
	}
	for _, d := range p.Fig6Delays {
		for _, a := range []dist.Approach{dist.GlobalCeiling, dist.LocalCeiling} {
			s := Series{Label: fmt.Sprintf("%s,delay=%g", a, d)}
			for _, mx := range p.Mixes {
				c := grid[key{a, mx, d}]
				s.Points = append(s.Points, Point{X: 100 * mx, Y: c.missed, Std: c.missStd, Runs: p.Runs})
			}
			fig6.Series = append(fig6.Series, s)
		}
	}
	return fig4, fig5, fig6, nil
}

// Fig4 reproduces the throughput-ratio figure alone.
func Fig4(p DistParams) (Figure, error) {
	f4, _, _, err := DistributedSweep(p)
	return f4, err
}

// Fig5 reproduces the deadline-missing-ratio figure alone.
func Fig5(p DistParams) (Figure, error) {
	_, f5, _, err := DistributedSweep(p)
	return f5, err
}

// Fig6 reproduces the distributed %missed figure alone.
func Fig6(p DistParams) (Figure, error) {
	_, _, f6, err := DistributedSweep(p)
	return f6, err
}

// ConsistencyAblation quantifies the paper's closing §4 idea: reading
// each replica's latest copy risks temporally inconsistent views (the
// set of versions read could never have coexisted), while multi-version
// snapshot reads pin every read-only transaction to one instant. It
// sweeps the communication delay at a read-heavy mix and reports the
// percentage of multi-read read-only transactions whose views were
// inconsistent, for latest-copy reads versus snapshot reads.
func ConsistencyAblation(p DistParams) (Figure, error) {
	fig := Figure{
		Name:   "consistency",
		Title:  "Temporal consistency of read-only views (local approach)",
		XLabel: "delay",
		YLabel: "% inconsistent views",
	}
	for _, mode := range []struct {
		label string
		mv    bool
	}{{"latest", false}, {"snapshot", true}} {
		s := Series{Label: mode.label}
		for _, d := range p.DelayUnits {
			d := d
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				c, err := dist.NewCluster(dist.Config{
					Approach:     dist.LocalCeiling,
					Sites:        p.Sites,
					Objects:      p.DBSize,
					CommDelay:    sim.Duration(d * float64(p.CPUPerObj)),
					CPUPerObj:    p.CPUPerObj,
					Multiversion: mode.mv,
				})
				if err != nil {
					return stats.Summary{}, err
				}
				load, err := workload.Generate(workload.Params{
					Seed:             p.BaseSeed + int64(r)*7919,
					Catalog:          c.Catalog,
					Count:            p.Count,
					MeanInterarrival: p.MeanInterarrival,
					MeanSize:         p.MeanSize,
					ReadOnlyFrac:     0.7,
					PerObjCost:       p.CPUPerObj,
					SlackMin:         p.SlackMin,
					SlackMax:         p.SlackMax,
					LocalWriteSets:   true,
				})
				if err != nil {
					return stats.Summary{}, err
				}
				c.Load(load)
				c.Run()
				repl := c.Replication()
				classified := repl.ConsistentViews + repl.InconsistentViews
				pct := 0.0
				if classified > 0 {
					pct = 100 * float64(repl.InconsistentViews) / float64(classified)
				}
				// Smuggle the inconsistency percentage through the
				// summary's MissedPct slot for uniform aggregation.
				return stats.Summary{MissedPct: pct}, nil
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: d, Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// PlacementAblation studies where to put the global ceiling manager on a
// non-uniform interconnect: a star network with the GCM either at the
// hub (one link from everyone) or at a leaf (two links from the other
// leaves). The paper notes all ceiling information lives "at the site of
// the global ceiling manager"; placement is the first operational
// question that raises.
func PlacementAblation(p DistParams) (Figure, error) {
	fig := Figure{
		Name:   "placement",
		Title:  "GCM placement on a star interconnect: %missed",
		XLabel: "link delay",
		YLabel: "% missed",
	}
	for _, placement := range []struct {
		label string
		gcm   db.SiteID
	}{{"hub", 0}, {"leaf", 1}} {
		s := Series{Label: placement.label}
		for _, d := range p.DelayUnits {
			link := sim.Duration(d * float64(p.CPUPerObj))
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				topo, err := netsim.Star(p.Sites, 0, link)
				if err != nil {
					return stats.Summary{}, err
				}
				c, err := dist.NewCluster(dist.Config{
					Approach:  dist.GlobalCeiling,
					Sites:     p.Sites,
					Objects:   p.DBSize,
					Topology:  topo,
					GCMSite:   placement.gcm,
					CPUPerObj: p.CPUPerObj,
				})
				if err != nil {
					return stats.Summary{}, err
				}
				load, err := workload.Generate(workload.Params{
					Seed:             p.BaseSeed + int64(r)*7919,
					Catalog:          c.Catalog,
					Count:            p.Count,
					MeanInterarrival: p.MeanInterarrival,
					MeanSize:         p.MeanSize,
					ReadOnlyFrac:     0.5,
					PerObjCost:       p.CPUPerObj,
					SlackMin:         p.SlackMin,
					SlackMax:         p.SlackMax,
					LocalWriteSets:   true,
				})
				if err != nil {
					return stats.Summary{}, err
				}
				c.Load(load)
				return c.Run(), nil
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: d, Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// pickFig4Delays thins the delay axis for Figure 4's per-delay series to
// the small-delay regime, where both approaches still process most of
// their load (at large delays the global approach saturates and the
// ratio diverges; Figure 5 covers that regime).
func pickFig4Delays(delays []float64) []float64 {
	if len(delays) <= 4 {
		return delays
	}
	return delays[:4]
}

// ratio guards against division by zero.
func ratio(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// missRatio compares miss percentages with light smoothing: a run of
// Count transactions cannot resolve rates below one miss, so both sides
// are floored at half a transaction's worth, keeping the ratio finite as
// the paper's plots are.
func missRatio(global, local float64, p DistParams) float64 {
	floor := 100 * 0.5 / float64(p.Count)
	if local < floor {
		local = floor
	}
	if global < floor {
		global = floor
	}
	return global / local
}
