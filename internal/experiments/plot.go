package experiments

import (
	"fmt"
	"math"
	"strings"
)

// plotMarkers distinguish series in ASCII plots.
var plotMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders the figure as an ASCII chart: y autoscaled, x mapped to
// columns, one marker per series, overlaps shown as '?'. It lets the
// CLI show curve shapes — who wins, where the crossover falls — without
// leaving the terminal.
func (f Figure) Plot() string {
	const (
		width  = 64
		height = 20
	)
	xs := f.xs()
	if len(xs) == 0 || len(f.Series) == 0 {
		return "(empty figure)\n"
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if math.IsInf(p.Y, 0) || math.IsNaN(p.Y) {
				continue
			}
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minY, 0) {
		return "(no finite data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int(math.Round((maxY - y) / (maxY - minY) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range f.Series {
		marker := plotMarkers[si%len(plotMarkers)]
		for _, p := range s.Points {
			if math.IsInf(p.Y, 0) || math.IsNaN(p.Y) {
				continue
			}
			r, c := row(p.Y), col(p.X)
			switch grid[r][c] {
			case ' ':
				grid[r][c] = marker
			case marker:
			default:
				grid[r][c] = '?'
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.Name), f.Title)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-10.4g%*s\n", "", minX, width-10, fmt.Sprintf("%.4g", maxX))
	b.WriteString("          ")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%c=%s  ", plotMarkers[si%len(plotMarkers)], s.Label)
	}
	fmt.Fprintf(&b, "(x: %s, y: %s)\n", f.XLabel, f.YLabel)
	return b.String()
}
