package experiments

import (
	"runtime"
	"sync"

	"rtlock/internal/stats"
)

// collectRuns executes fn for every run index concurrently (each run
// builds its own kernel, so runs are independent) and returns the
// summaries in run order, preserving determinism of every aggregate.
// The first error wins.
func collectRuns(runs int, fn func(r int) (stats.Summary, error)) ([]stats.Summary, error) {
	if runs <= 0 {
		return nil, nil
	}
	out := make([]stats.Summary, runs)
	errs := make([]error, runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				out[r], errs[r] = fn(r)
			}
		}()
	}
	for r := 0; r < runs; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// missedOf projects the miss percentages from summaries.
func missedOf(sums []stats.Summary) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = s.MissedPct
	}
	return out
}

// throughputOf projects the throughputs from summaries.
func throughputOf(sums []stats.Summary) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = s.Throughput
	}
	return out
}
