package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"rtlock/internal/stats"
)

// collectRuns executes fn for every run index concurrently (each run
// builds its own kernel, so runs are independent) and returns the
// summaries in run order, preserving determinism of every aggregate.
// The first error (by run index) wins. A panicking run is surfaced as
// an error carrying its run index instead of crashing the sweep.
func collectRuns(runs int, fn func(r int) (stats.Summary, error)) ([]stats.Summary, error) {
	if runs <= 0 {
		return nil, nil
	}
	out := make([]stats.Summary, runs)
	errs := make([]error, runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	var wg sync.WaitGroup
	// Buffered to capacity: the feeder below can never block, so a
	// worker dying early cannot strand it (with an unbuffered channel a
	// lost worker would deadlock the whole sweep).
	next := make(chan int, runs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				runOne(r, fn, out, errs)
			}
		}()
	}
	for r := 0; r < runs; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runOne executes a single run, converting a panic into an error that
// names the run index.
func runOne(r int, fn func(r int) (stats.Summary, error), out []stats.Summary, errs []error) {
	defer func() {
		if p := recover(); p != nil {
			errs[r] = fmt.Errorf("experiments: run %d panicked: %v", r, p)
		}
	}()
	out[r], errs[r] = fn(r)
}

// missedOf projects the miss percentages from summaries.
func missedOf(sums []stats.Summary) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = s.MissedPct
	}
	return out
}

// throughputOf projects the throughputs from summaries.
func throughputOf(sums []stats.Summary) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = s.Throughput
	}
	return out
}
