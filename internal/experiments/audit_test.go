package experiments

import (
	"strings"
	"testing"
)

// The Audit flag turns every experiment cell into a correctness check:
// a journal is recorded and replayed through the protocol's invariant
// auditors, and any violation fails the run. Exhaustive per-protocol
// determinism coverage lives in the root package's determinism tests;
// these check the plumbing at the experiments layer.

func TestAuditFlagSingleSite(t *testing.T) {
	p := DefaultSingleSite().Scale(0.25, 2)
	p.Audit = true
	for _, proto := range []Protocol{ProtoCeiling, ProtoTwoPLHP, ProtoTwoPLDD} {
		if _, err := runSingle(p, proto, 12, 1); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

func TestAuditFlagDistributed(t *testing.T) {
	p := DefaultDistributed().Scale(0.25, 2)
	p.Audit = true
	if _, err := runDist(p, 1, 0.5, 2, 1); err != nil {
		t.Errorf("global: %v", err)
	}
	if _, err := runDist(p, 2, 0.5, 2, 1); err != nil {
		t.Errorf("local: %v", err)
	}
}

// TestAuditFlagUnknownProtocol checks the failure plumbing: an unknown
// protocol must surface an error, not a silent skip.
func TestAuditFlagUnknownProtocol(t *testing.T) {
	p := DefaultSingleSite().Scale(0.25, 1)
	p.Audit = true
	if _, err := runSingle(p, Protocol("nope"), 12, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown protocol") {
		t.Errorf("want unknown-protocol error, got %v", err)
	}
}
