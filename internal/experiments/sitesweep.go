package experiments

import (
	"fmt"

	"rtlock/internal/audit"
	"rtlock/internal/dist"
	"rtlock/internal/journal"
	"rtlock/internal/place"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

// SiteSweepParams configures the placement site-count sweep: every
// placement policy of internal/place is run at every site count with a
// locality-skewed workload, and each coordinated policy is compared
// against the uncoordinated primary-only baseline to price its
// consistency tax.
type SiteSweepParams struct {
	// Sites is the swept cluster-size axis (default {1, 2, 4, 8, 16}).
	Sites []int
	// Policies selects the placement policies (default all four).
	Policies []place.Policy
	DBSize   int
	// CPUPerObj is the per-object CPU demand; the database is
	// memory-resident as in the paper's distributed setting.
	CPUPerObj sim.Duration
	// CommDelay is the fixed one-way inter-site delay.
	CommDelay        sim.Duration
	MeanInterarrival sim.Duration
	MeanSize         int
	Count            int
	Runs             int
	// LocalityProb biases each access of the placement workloads toward
	// the transaction's home shard (full replication keeps the paper's
	// home-partition write sets instead; locality is meaningless when
	// every site holds every object).
	LocalityProb float64
	// ReadOnlyFrac is the transaction mix.
	ReadOnlyFrac float64
	SlackMin     float64
	SlackMax     float64
	// Replicas, ReadQuorum, WriteQuorum parameterize the quorum policy
	// (zero takes the cluster defaults: K=min(3,sites), majority R,
	// minimal intersecting W).
	Replicas, ReadQuorum, WriteQuorum int
	BaseSeed                          int64
	// Audit records a replay journal for every run and replays it
	// through the policy's invariant auditors (quorum runs include the
	// quorum-intersection invariant); any violation fails the sweep.
	Audit bool
}

// DefaultSiteSweep returns the calibrated site-sweep configuration.
func DefaultSiteSweep() SiteSweepParams {
	return SiteSweepParams{
		Sites:            []int{1, 2, 4, 8, 16},
		Policies:         place.Policies(),
		DBSize:           240,
		CPUPerObj:        10 * sim.Millisecond,
		CommDelay:        20 * sim.Millisecond,
		MeanInterarrival: 30 * sim.Millisecond,
		MeanSize:         6,
		Count:            300,
		Runs:             8,
		LocalityProb:     0.7,
		ReadOnlyFrac:     0.5,
		SlackMin:         4,
		SlackMax:         8,
		BaseSeed:         1,
	}
}

// Scale shrinks the run length for quick tests and benchmarks.
func (p SiteSweepParams) Scale(countFrac float64, runs int) SiteSweepParams {
	p.Count = int(float64(p.Count) * countFrac)
	if p.Count < 20 {
		p.Count = 20
	}
	p.Runs = runs
	return p
}

// siteCell is the averaged result of one (policy, sites) grid cell.
type siteCell struct {
	thpt, thptStd   float64
	missed, missStd float64
	resp, respStd   float64 // mean response over committed, ms
}

// runSiteCell executes one run of a policy at a site count.
func runSiteCell(p SiteSweepParams, pol place.Policy, sites int, seed int64) (stats.Summary, error) {
	var jrn *journal.Journal
	if p.Audit {
		jrn = journal.New(seed, fmt.Sprintf("sitesweep/%s/sites=%d/loc=%g/mix=%g",
			pol, sites, p.LocalityProb, p.ReadOnlyFrac))
	}
	c, err := dist.NewCluster(dist.Config{
		Placement:   pol,
		Replicas:    p.Replicas,
		ReadQuorum:  p.ReadQuorum,
		WriteQuorum: p.WriteQuorum,
		Sites:       sites,
		Objects:     p.DBSize,
		CommDelay:   p.CommDelay,
		CPUPerObj:   p.CPUPerObj,
		Journal:     jrn,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	wp := workload.Params{
		Seed:             seed,
		Catalog:          c.Catalog,
		Count:            p.Count,
		MeanInterarrival: p.MeanInterarrival,
		MeanSize:         p.MeanSize,
		ReadOnlyFrac:     p.ReadOnlyFrac,
		PerObjCost:       p.CPUPerObj,
		SlackMin:         p.SlackMin,
		SlackMax:         p.SlackMax,
	}
	if pol == place.Full {
		wp.LocalWriteSets = true
	} else {
		wp.LocalityProb = p.LocalityProb
	}
	load, err := workload.Generate(wp)
	if err != nil {
		return stats.Summary{}, err
	}
	c.Load(load)
	sum := c.Run()
	if jrn != nil {
		if vs := audit.Run(jrn, audit.ForPlacement(pol.String())...); len(vs) > 0 {
			return sum, fmt.Errorf("experiments: sitesweep %s sites=%d seed=%d: %d invariant violations, first: %s",
				pol, sites, seed, len(vs), vs[0])
		}
	}
	return sum, nil
}

// respOf projects the mean response times (in milliseconds) from
// summaries.
func respOf(sums []stats.Summary) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = float64(s.AvgResp) / float64(sim.Millisecond)
	}
	return out
}

// SiteSweep runs every placement policy across the site-count axis and
// derives three figures:
//
//   - "sites-throughput": committed throughput vs sites, one series per
//     policy.
//   - "sites-missed": % deadline-missing vs sites, one series per
//     policy.
//   - "consistency-tax": each coordinated policy's cost relative to the
//     uncoordinated primary-only baseline at the same site count —
//     latency tax = avgResp(policy)/avgResp(primary), throughput tax =
//     throughput(primary)/throughput(policy). A tax of 1 means
//     coordination was free; the gap above 1 is the price of the
//     consistency guarantee the policy actually delivers.
//
// The primary-only baseline is added to the policy set when absent,
// since the tax is measured against it.
func SiteSweep(p SiteSweepParams) (thpt, missed, tax Figure, err error) {
	policies := p.Policies
	hasPrimary := false
	for _, pol := range policies {
		if pol == place.PrimaryOnly {
			hasPrimary = true
		}
	}
	if !hasPrimary {
		policies = append(append([]place.Policy(nil), policies...), place.PrimaryOnly)
	}

	grid := make(map[place.Policy]map[int]siteCell)
	for _, pol := range policies {
		grid[pol] = make(map[int]siteCell)
		for _, sites := range p.Sites {
			pol, sites := pol, sites
			sums, err2 := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSiteCell(p, pol, sites, p.BaseSeed+int64(r)*7919)
			})
			if err2 != nil {
				return thpt, missed, tax, err2
			}
			var c siteCell
			c.thpt, c.thptStd = stats.MeanStd(throughputOf(sums))
			c.missed, c.missStd = stats.MeanStd(missedOf(sums))
			c.resp, c.respStd = stats.MeanStd(respOf(sums))
			grid[pol][sites] = c
		}
	}

	thpt = Figure{
		Name:   "sites-throughput",
		Title:  "Committed throughput vs site count, by placement policy",
		XLabel: "sites",
		YLabel: "objects/sec",
	}
	missed = Figure{
		Name:   "sites-missed",
		Title:  "Deadline-missing percentage vs site count, by placement policy",
		XLabel: "sites",
		YLabel: "% missed",
	}
	for _, pol := range policies {
		st := Series{Label: pol.String()}
		sm := Series{Label: pol.String()}
		for _, sites := range p.Sites {
			c := grid[pol][sites]
			st.Points = append(st.Points, Point{X: float64(sites), Y: c.thpt, Std: c.thptStd, Runs: p.Runs})
			sm.Points = append(sm.Points, Point{X: float64(sites), Y: c.missed, Std: c.missStd, Runs: p.Runs})
		}
		thpt.Series = append(thpt.Series, st)
		missed.Series = append(missed.Series, sm)
	}

	tax = Figure{
		Name:   "consistency-tax",
		Title:  "Consistency tax vs the primary-only baseline",
		XLabel: "sites",
		YLabel: "coordinated/baseline ratio (1 = free)",
	}
	for _, pol := range policies {
		if pol == place.PrimaryOnly {
			continue
		}
		lat := Series{Label: pol.String() + "/latency"}
		thr := Series{Label: pol.String() + "/throughput"}
		for _, sites := range p.Sites {
			c, base := grid[pol][sites], grid[place.PrimaryOnly][sites]
			lat.Points = append(lat.Points, Point{X: float64(sites), Y: ratio(c.resp, base.resp), Runs: p.Runs})
			thr.Points = append(thr.Points, Point{X: float64(sites), Y: ratio(base.thpt, c.thpt), Runs: p.Runs})
		}
		tax.Series = append(tax.Series, lat, thr)
	}
	return thpt, missed, tax, nil
}
