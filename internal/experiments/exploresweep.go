package experiments

import (
	"fmt"

	"rtlock/internal/explore"
)

// ExploreParams configures the schedule-exploration sweep: every
// protocol is explored under a range of schedule budgets, and the sweep
// fails if any explored schedule violates the protocol's invariants.
// The figure reports how many distinct schedules each budget actually
// reaches per protocol — the coverage the budget buys.
type ExploreParams struct {
	// Protocols is the set swept (default: the full study).
	Protocols []Protocol
	// Budgets is the swept schedule budget (x axis).
	Budgets []int
	// MaxDepth and Branch bound each exploration (explore.Options
	// semantics, with that package's defaults when zero).
	MaxDepth int
	Branch   int
	// Workers parallelizes schedule execution within one exploration.
	Workers int
	// Seed drives the workload stream of every target.
	Seed int64
	// IncludeDistributed adds the two distributed architectures as
	// extra series (the only targets with message-order and 2PC vote
	// decision points).
	IncludeDistributed bool
}

// DefaultExplore returns the calibrated sweep configuration.
func DefaultExplore() ExploreParams {
	return ExploreParams{
		Protocols:          AllProtocols(),
		Budgets:            []int{8, 16, 32, 64},
		MaxDepth:           16,
		Branch:             2,
		Workers:            4,
		Seed:               1,
		IncludeDistributed: true,
	}
}

// AllProtocols returns every protocol of the study, in the order the
// figures list them.
func AllProtocols() []Protocol {
	return []Protocol{ProtoCeiling, ProtoTwoPLPrio, ProtoTwoPL, ProtoInherit,
		ProtoCeilingX, ProtoTwoPLHP, ProtoTwoPLDD, ProtoTimestamp, ProtoTwoPLCR}
}

// exploreTargets builds the sweep's target list from the configuration.
func exploreTargets(p ExploreParams) ([]explore.Target, error) {
	var targets []explore.Target
	for _, proto := range p.Protocols {
		mk, disc, err := ManagerFor(proto)
		if err != nil {
			return nil, err
		}
		tgt, err := explore.SingleSiteTarget(explore.SingleSiteOpts{
			Proto:      string(proto),
			NewManager: mk,
			Discipline: disc,
			Seed:       p.Seed,
		})
		if err != nil {
			return nil, err
		}
		targets = append(targets, tgt)
	}
	if p.IncludeDistributed {
		for _, global := range []bool{false, true} {
			tgt, err := explore.DistributedTarget(explore.DistributedOpts{Global: global, Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			targets = append(targets, tgt)
		}
	}
	return targets, nil
}

// ExploreSweep runs the schedule-space exploration sweep: each target is
// explored at every schedule budget, DFS strategy, and the distinct
// schedule count becomes the figure's y value. Any counterexample on an
// unmutated tree is a protocol bug and fails the sweep with the
// minimized schedule in the error.
func ExploreSweep(p ExploreParams) (Figure, error) {
	if len(p.Protocols) == 0 {
		p.Protocols = AllProtocols()
	}
	if len(p.Budgets) == 0 {
		p.Budgets = DefaultExplore().Budgets
	}
	targets, err := exploreTargets(p)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		Name:   "explore",
		Title:  "Schedule-space coverage by budget (distinct schedules explored)",
		XLabel: "budget",
		YLabel: "distinct schedules",
	}
	for _, tgt := range targets {
		s := Series{Label: tgt.Name}
		for _, budget := range p.Budgets {
			rep, err := explore.Run(tgt, explore.Options{
				Strategy:  explore.DFS,
				Schedules: budget,
				MaxDepth:  p.MaxDepth,
				Branch:    p.Branch,
				Workers:   p.Workers,
				Minimize:  true,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("experiments: exploring %s at budget %d: %w", tgt.Name, budget, err)
			}
			if len(rep.Counterexamples) > 0 {
				ce := rep.Counterexamples[0]
				return Figure{}, fmt.Errorf(
					"experiments: %s violates %s on schedule %v (budget %d): %s",
					tgt.Name, ce.Rule, ce.Schedule, budget, ce.Violations[0])
			}
			s.Points = append(s.Points, Point{X: float64(budget), Y: float64(rep.Distinct), Runs: rep.Explored})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
