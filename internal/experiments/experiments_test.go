package experiments

import (
	"errors"
	"strings"
	"testing"

	"rtlock/internal/stats"
)

// scaled single-site parameters keep the suite fast while preserving the
// qualitative shapes the assertions check.
func scaledSingle() SingleSiteParams {
	p := DefaultSingleSite()
	p.Count = 120
	p.Runs = 2
	p.Sizes = []int{4, 12, 20}
	return p
}

func scaledDist() DistParams {
	p := DefaultDistributed()
	p.Count = 80
	p.Runs = 2
	p.Mixes = []float64{0, 0.5, 1}
	p.DelayUnits = []float64{0, 2, 8}
	p.Fig6Delays = []float64{2, 8}
	return p
}

func last(s Series) Point  { return s.Points[len(s.Points)-1] }
func first(s Series) Point { return s.Points[0] }

func TestFig2Shapes(t *testing.T) {
	f2, _, err := SingleSiteSweep(scaledSingle())
	if err != nil {
		t.Fatal(err)
	}
	c, okC := f2.SeriesByLabel("C")
	p, okP := f2.SeriesByLabel("P")
	l, okL := f2.SeriesByLabel("L")
	if !okC || !okP || !okL {
		t.Fatalf("missing series in %v", f2)
	}
	// Headline: at the largest size the ceiling protocol sustains
	// higher normalized throughput than both 2PL variants.
	if last(c).Y <= last(p).Y || last(c).Y <= last(l).Y {
		t.Fatalf("at size 20, C throughput %.1f must exceed P %.1f and L %.1f",
			last(c).Y, last(p).Y, last(l).Y)
	}
	// Stability: C's throughput at size 20 stays within a factor of
	// two of its mid-size value; P and L fall much further from their
	// own mid-size values.
	if last(c).Y < c.Points[1].Y/2 {
		t.Fatalf("C throughput collapsed: %v", c.Points)
	}
	if last(p).Y > p.Points[1].Y/2 {
		t.Fatalf("P throughput did not degrade rapidly: %v", p.Points)
	}
}

func TestFig3Shapes(t *testing.T) {
	_, f3, err := SingleSiteSweep(scaledSingle())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f3.SeriesByLabel("C")
	p, _ := f3.SeriesByLabel("P")
	l, _ := f3.SeriesByLabel("L")
	// At the largest size the ceiling protocol misses far fewer
	// deadlines.
	if last(c).Y >= last(p).Y || last(c).Y >= last(l).Y {
		t.Fatalf("at size 20, C missed %.1f%% must be below P %.1f%% and L %.1f%%",
			last(c).Y, last(p).Y, last(l).Y)
	}
	// Misses rise with size for every protocol.
	for _, s := range []Series{c, p, l} {
		if last(s).Y < first(s).Y {
			t.Fatalf("%s misses did not rise with size: %v", s.Label, s.Points)
		}
	}
	// The rise is sharp for 2PL: the largest size at least quadruples
	// the smallest-size misses plus a base.
	if last(p).Y < 4*first(p).Y+10 {
		t.Fatalf("P misses did not rise sharply: %v", p.Points)
	}
}

func TestDistributedShapes(t *testing.T) {
	f4, f5, f6, err := DistributedSweep(scaledDist())
	if err != nil {
		t.Fatal(err)
	}

	// Figure 4: at the update-heavy mix the local approach wins at
	// every delay, and the advantage grows with delay.
	for _, s := range f4.Series {
		if first(s).Y <= 1 && s.Label != "delay=0" {
			t.Fatalf("series %s: local/global ratio %.2f not > 1 at mix 0", s.Label, first(s).Y)
		}
	}
	d0, _ := f4.SeriesByLabel("delay=0")
	dMax := f4.Series[len(f4.Series)-1]
	if dMax.Points[0].Y <= d0.Points[0].Y {
		t.Fatalf("throughput ratio did not grow with delay: %v vs %v", dMax.Points[0], d0.Points[0])
	}

	// Figure 5: the miss ratio favors local everywhere and grows from
	// delay 0 to the maximum delay.
	s5 := f5.Series[0]
	for _, pt := range s5.Points {
		if pt.Y < 1 {
			t.Fatalf("global/local miss ratio %.2f < 1 at delay %g", pt.Y, pt.X)
		}
	}
	if last(s5).Y <= first(s5).Y {
		t.Fatalf("miss ratio did not grow with delay: %v", s5.Points)
	}

	// Figure 6: local misses fewer deadlines than global at every mix
	// and delay; global misses are substantial under delay.
	for _, d := range []string{"2", "8"} {
		g, okG := f6.SeriesByLabel("global,delay=" + d)
		l, okL := f6.SeriesByLabel("local,delay=" + d)
		if !okG || !okL {
			t.Fatalf("missing fig6 series for delay %s", d)
		}
		for i := range g.Points {
			if l.Points[i].Y > g.Points[i].Y {
				t.Fatalf("delay %s mix %.0f: local %.1f%% > global %.1f%%",
					d, g.Points[i].X, l.Points[i].Y, g.Points[i].Y)
			}
		}
	}
}

func TestDBSizeAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := DBSizeAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger databases mean fewer conflicts: the 2PL curves fall from
	// the smallest database to the largest.
	for _, label := range []string{"P", "L"} {
		s, ok := f.SeriesByLabel(label)
		if !ok {
			t.Fatalf("missing series %s", label)
		}
		if last(s).Y > first(s).Y {
			t.Fatalf("%s misses rose with database size: %v", label, s.Points)
		}
	}
}

func TestSemanticsAblationRuns(t *testing.T) {
	p := scaledSingle()
	f, err := SemanticsAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	c, okC := f.SeriesByLabel("C")
	cx, okCX := f.SeriesByLabel("CX")
	if !okC || !okCX {
		t.Fatal("missing series")
	}
	for _, s := range []Series{c, cx} {
		for _, pt := range s.Points {
			if pt.Y < 0 || pt.Y > 100 {
				t.Fatalf("%s: %%missed %v out of range", s.Label, pt)
			}
		}
	}
}

func TestInheritAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := InheritAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.SeriesByLabel("C")
	pi, _ := f.SeriesByLabel("PI")
	// Basic inheritance still deadlocks and chains; at the largest size
	// the ceiling protocol misses fewer deadlines.
	if last(c).Y >= last(pi).Y {
		t.Fatalf("C %.1f%% not below PI %.1f%% at size 20", last(c).Y, last(pi).Y)
	}
}

func TestRestartAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := RestartAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	hp, okHP := f.SeriesByLabel("HP")
	pp, okP := f.SeriesByLabel("P")
	if !okHP || !okP {
		t.Fatal("missing series")
	}
	// At the largest size, wounding resolves conflicts in favor of
	// urgency and beats blocking 2PL decisively.
	if last(hp).Y >= last(pp).Y {
		t.Fatalf("HP %.1f%% not below P %.1f%% at size 20", last(hp).Y, last(pp).Y)
	}
}

func TestPriorityPolicyAblationShape(t *testing.T) {
	p := scaledSingle()
	p.Sizes = []int{4, 12} // below saturation, where EDF dominates
	f, err := PriorityPolicyAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	edf, okE := f.SeriesByLabel("EDF")
	rnd, okR := f.SeriesByLabel("RANDOM")
	if !okE || !okR {
		t.Fatal("missing series")
	}
	if last(edf).Y > last(rnd).Y {
		t.Fatalf("EDF %.1f%% above RANDOM %.1f%% below saturation", last(edf).Y, last(rnd).Y)
	}
}

func TestBufferAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := BufferAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := f.SeriesByLabel("C")
	if !ok {
		t.Fatal("missing series C")
	}
	// A buffer holding the whole database cannot be worse than no
	// buffer for the ceiling protocol, whose misses are driven by the
	// length of its serialized lock-holding windows.
	if last(c).Y > first(c).Y {
		t.Fatalf("C misses rose with buffer size: %v", c.Points)
	}
}

func TestHotspotAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := HotspotAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.SeriesByLabel("C")
	pp, _ := f.SeriesByLabel("P")
	// Skew devastates direct-blocking 2PL but not the ceiling protocol.
	if last(pp).Y <= first(pp).Y {
		t.Fatalf("P misses did not rise with skew: %v", pp.Points)
	}
	if last(c).Y >= last(pp).Y {
		t.Fatalf("C %.1f%% not below P %.1f%% at max skew", last(c).Y, last(pp).Y)
	}
}

func TestPredictabilityAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := PredictabilityAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	c, okC := f.SeriesByLabel("C")
	pp, okP := f.SeriesByLabel("P")
	if !okC || !okP {
		t.Fatal("missing series")
	}
	for _, s := range []Series{c, pp} {
		for _, pt := range s.Points {
			if pt.Y < 1 {
				t.Fatalf("%s: tail ratio %v below 1", s.Label, pt)
			}
		}
	}
	// At the largest (most contended) size the ceiling protocol has
	// the tighter tail.
	if last(c).Y >= last(pp).Y {
		t.Fatalf("C tail ratio %.2f not below P %.2f at size 20", last(c).Y, last(pp).Y)
	}
}

func TestConsistencyAblationShape(t *testing.T) {
	p := scaledDist()
	f, err := ConsistencyAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	latest, okL := f.SeriesByLabel("latest")
	snap, okS := f.SeriesByLabel("snapshot")
	if !okL || !okS {
		t.Fatal("missing series")
	}
	var latestSum, snapSum float64
	for i := range latest.Points {
		latestSum += latest.Points[i].Y
		snapSum += snap.Points[i].Y
	}
	if snapSum > latestSum {
		t.Fatalf("snapshot reads more inconsistent overall (%.2f vs %.2f)", snapSum, latestSum)
	}
}

func TestPlacementAblationShape(t *testing.T) {
	p := scaledDist()
	f, err := PlacementAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			if pt.Y < 0 || pt.Y > 100 {
				t.Fatalf("%s: %%missed %v out of range", s.Label, pt)
			}
		}
	}
}

func TestPeriodicAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := PeriodicAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := f.SeriesByLabel("C")
	l, _ := f.SeriesByLabel("L")
	// Recurring access sets are the ceiling protocol's native model:
	// at full periodicity it must beat plain 2PL clearly.
	if last(c).Y >= last(l).Y {
		t.Fatalf("C %.1f%% not below L %.1f%% at 100%% periodic", last(c).Y, last(l).Y)
	}
}

func TestOverheadAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := OverheadAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			if pt.Y < 0 || pt.Y > 100 {
				t.Fatalf("%s: %v out of range", s.Label, pt)
			}
		}
		// More overhead can only consume capacity: the zero-overhead
		// point must not be the worst by a wide margin.
		if first(s).Y > last(s).Y+15 {
			t.Fatalf("%s: misses fell sharply with overhead: %v", s.Label, s.Points)
		}
	}
}

func TestRecoveryAblationShape(t *testing.T) {
	p := scaledSingle()
	f, err := RecoveryAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := f.SeriesByLabel("recovery_ms")
	if !ok {
		t.Fatal("missing recovery series")
	}
	// The no-checkpoint sentinel (last point) must have the longest
	// restart.
	lastPt := last(rec)
	for _, pt := range rec.Points[:len(rec.Points)-1] {
		if pt.Y >= lastPt.Y {
			t.Fatalf("checkpointed restart %v not below uncheckpointed %v", pt.Y, lastPt.Y)
		}
	}
	if _, ok := f.SeriesByLabel("missed_pct"); !ok {
		t.Fatal("missing missed series")
	}
}

func TestRunCustom(t *testing.T) {
	p := scaledSingle()
	p.Runs = 2
	sum, err := RunCustom(p, ProtoCeiling, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Processed == 0 {
		t.Fatal("no transactions processed")
	}
	if _, err := RunCustom(p, Protocol("bogus"), 8); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestFigureFormatting(t *testing.T) {
	f := Figure{
		Name:   "figX",
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2, Std: 0.5}, {X: 2, Y: 3}}},
			{Label: "b,comma", Points: []Point{{X: 1, Y: 4}}},
		},
	}
	text := f.String()
	if !strings.Contains(text, "FIGX") || !strings.Contains(text, "demo") {
		t.Fatalf("table header missing: %s", text)
	}
	csv := f.CSV()
	if !strings.Contains(csv, `"b,comma"`) {
		t.Fatalf("CSV did not escape commas: %s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2", len(lines))
	}
}

func TestSweepsDeterministicUnderParallelRuns(t *testing.T) {
	// Runs execute concurrently but aggregate by index; two identical
	// sweeps must render byte-identical CSV.
	p := scaledSingle()
	p.Runs = 4
	a2, a3, err := SingleSiteSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	b2, b3, err := SingleSiteSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if a2.CSV() != b2.CSV() || a3.CSV() != b3.CSV() {
		t.Fatal("identical sweeps produced different figures")
	}

	d := scaledDist()
	d.Runs = 4
	c4, c5, c6, err := DistributedSweep(d)
	if err != nil {
		t.Fatal(err)
	}
	e4, e5, e6, err := DistributedSweep(d)
	if err != nil {
		t.Fatal(err)
	}
	if c4.CSV() != e4.CSV() || c5.CSV() != e5.CSV() || c6.CSV() != e6.CSV() {
		t.Fatal("identical distributed sweeps diverged")
	}
}

func TestCollectRunsOrderAndErrors(t *testing.T) {
	sums, err := collectRuns(8, func(r int) (stats.Summary, error) {
		return stats.Summary{Processed: r}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		if s.Processed != i {
			t.Fatalf("results out of order: %v", sums)
		}
	}
	if _, err := collectRuns(4, func(r int) (stats.Summary, error) {
		if r == 2 {
			return stats.Summary{}, errBoom
		}
		return stats.Summary{}, nil
	}); err != errBoom {
		t.Fatalf("error not surfaced: %v", err)
	}
	if sums, err := collectRuns(0, nil); err != nil || sums != nil {
		t.Fatal("zero runs must be a no-op")
	}
}

var errBoom = errors.New("boom")

func TestFigurePlot(t *testing.T) {
	f := Figure{
		Name:   "plotdemo",
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "up", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 5}, {X: 2, Y: 10}}},
			{Label: "down", Points: []Point{{X: 0, Y: 10}, {X: 1, Y: 5}, {X: 2, Y: 0}}},
		},
	}
	p := f.Plot()
	if !strings.Contains(p, "*=up") || !strings.Contains(p, "o=down") {
		t.Fatalf("legend missing:\n%s", p)
	}
	// The crossing point is shared by both series.
	if !strings.Contains(p, "?") {
		t.Fatalf("overlap marker missing:\n%s", p)
	}
	if (Figure{}).Plot() == "" {
		t.Fatal("empty figure must still render a placeholder")
	}
	flat := Figure{Name: "flat", Series: []Series{{Label: "a", Points: []Point{{X: 1, Y: 3}, {X: 2, Y: 3}}}}}
	if flat.Plot() == "" {
		t.Fatal("flat series did not render")
	}
}

func TestScaleClampsCount(t *testing.T) {
	p := DefaultSingleSite().Scale(0.0001, 1)
	if p.Count < 20 || p.Runs != 1 {
		t.Fatalf("Scale produced %+v", p)
	}
	d := DefaultDistributed().Scale(0.0001, 2)
	if d.Count < 20 || d.Runs != 2 {
		t.Fatalf("Scale produced %+v", d)
	}
}
