package experiments

import (
	"fmt"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// Protocol names a concurrency-control protocol under test, using the
// paper's letters.
type Protocol string

// The protocols of the study.
const (
	// ProtoCeiling is the priority ceiling protocol (C).
	ProtoCeiling Protocol = "C"
	// ProtoTwoPLPrio is two-phase locking with priority mode (P).
	ProtoTwoPLPrio Protocol = "P"
	// ProtoTwoPL is two-phase locking without priority mode (L).
	ProtoTwoPL Protocol = "L"
	// ProtoInherit is two-phase locking with basic priority
	// inheritance (§3.1), used by the inheritance ablation.
	ProtoInherit Protocol = "PI"
	// ProtoCeilingX is the ceiling protocol with exclusive-only lock
	// semantics, used by the §5 semantics ablation.
	ProtoCeilingX Protocol = "CX"
	// ProtoTwoPLHP is two-phase locking with High-Priority wounding
	// ([Abb88]): conflicting lower-priority holders are aborted and
	// restarted.
	ProtoTwoPLHP Protocol = "HP"
	// ProtoTwoPLDD is two-phase locking with waits-for deadlock
	// detection; victims restart.
	ProtoTwoPLDD Protocol = "DD"
	// ProtoTimestamp is basic timestamp ordering, the environment's
	// non-locking concurrency control.
	ProtoTimestamp Protocol = "TO"
	// ProtoTwoPLCR is two-phase locking with conditional restart
	// ([Abb88]): wound a lower-priority holder only when the
	// requester's slack cannot absorb the wait.
	ProtoTwoPLCR Protocol = "CR"
)

// ManagerFor builds the protocol's lock manager constructor and the CPU
// discipline the protocol runs under (L runs FIFO; the rest preemptive
// priority).
func ManagerFor(p Protocol) (func(*sim.Kernel) core.Manager, sim.Discipline, error) {
	switch p {
	case ProtoCeiling:
		return func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) }, sim.PreemptivePriority, nil
	case ProtoCeilingX:
		return func(k *sim.Kernel) core.Manager { return core.NewCeilingExclusive(k) }, sim.PreemptivePriority, nil
	case ProtoTwoPLPrio:
		return func(k *sim.Kernel) core.Manager { return core.NewTwoPLPriority(k) }, sim.PreemptivePriority, nil
	case ProtoTwoPL:
		return func(k *sim.Kernel) core.Manager { return core.NewTwoPL(k) }, sim.FIFO, nil
	case ProtoInherit:
		return func(k *sim.Kernel) core.Manager { return core.NewTwoPLInherit(k) }, sim.PreemptivePriority, nil
	case ProtoTwoPLHP:
		return func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) }, sim.PreemptivePriority, nil
	case ProtoTwoPLDD:
		return func(k *sim.Kernel) core.Manager { return core.NewTwoPLDetect(k) }, sim.PreemptivePriority, nil
	case ProtoTimestamp:
		return func(k *sim.Kernel) core.Manager { return core.NewTimestamp(k) }, sim.PreemptivePriority, nil
	case ProtoTwoPLCR:
		return func(k *sim.Kernel) core.Manager { return core.NewTwoPLCond(k) }, sim.PreemptivePriority, nil
	default:
		return nil, 0, fmt.Errorf("experiments: unknown protocol %q", p)
	}
}

// SingleSiteParams configures the single-site experiments (Figures 2–3).
// The defaults reproduce the paper's setting: a database of 200 objects;
// transaction size swept up to 10% of the database so conflicts are
// frequent; an arrival rate that keeps the system heavily loaded (both
// CPU and I/O are saturated when the mean size reaches 20); deadlines
// proportional to size; hard transactions aborted at their deadlines.
type SingleSiteParams struct {
	DBSize           int
	CPUPerObj        sim.Duration
	IOPerObj         sim.Duration
	MeanInterarrival sim.Duration
	SlackMin         float64
	SlackMax         float64
	ReadOnlyFrac     float64
	Count            int // transactions per run
	Runs             int // independent runs averaged per point
	Sizes            []int
	Protocols        []Protocol
	BaseSeed         int64
	// Policy assigns transaction priorities (zero value = earliest
	// deadline first, the paper's choice).
	Policy workload.PriorityPolicy
	// Audit records a replay journal for every run and replays it
	// through the protocol's invariant auditors; any violation fails
	// the run. It turns every experiment cell into a correctness test
	// at modest memory cost.
	Audit bool
}

// DefaultSingleSite returns the calibrated configuration.
func DefaultSingleSite() SingleSiteParams {
	return SingleSiteParams{
		DBSize:           200,
		CPUPerObj:        10 * sim.Millisecond,
		IOPerObj:         20 * sim.Millisecond,
		MeanInterarrival: 450 * sim.Millisecond,
		SlackMin:         4,
		SlackMax:         8,
		Count:            400,
		Runs:             10,
		Sizes:            []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		Protocols:        []Protocol{ProtoCeiling, ProtoTwoPLPrio, ProtoTwoPL},
		BaseSeed:         1,
	}
}

// Scale shrinks the run length for quick tests and benchmarks.
func (p SingleSiteParams) Scale(countFrac float64, runs int) SingleSiteParams {
	p.Count = int(float64(p.Count) * countFrac)
	if p.Count < 20 {
		p.Count = 20
	}
	p.Runs = runs
	return p
}

// runOpts carries the per-cell knobs the ablations vary beyond the base
// parameters.
type runOpts struct {
	bufferPages       int
	hotspotFrac       float64
	hotspotProb       float64
	periodicFrac      float64
	implicitDeadlines bool
	lockOverhead      sim.Duration
	wal               bool
	checkpointEvery   sim.Duration
}

// runSingle executes one (protocol, size, seed) cell and returns the
// summary.
func runSingle(p SingleSiteParams, proto Protocol, size int, seed int64) (stats.Summary, error) {
	return runSingleOpts(p, proto, size, runOpts{}, seed)
}

// runSingleBuffered is runSingle with an LRU page buffer of the given
// size (0 disables buffering).
func runSingleBuffered(p SingleSiteParams, proto Protocol, size, bufferPages int, seed int64) (stats.Summary, error) {
	return runSingleOpts(p, proto, size, runOpts{bufferPages: bufferPages}, seed)
}

// runSingleHotspot is runSingle with skewed object selection: prob of an
// access landing in the hottest 10% of the database.
func runSingleHotspot(p SingleSiteParams, proto Protocol, size int, prob float64, seed int64) (stats.Summary, error) {
	return runSingleOpts(p, proto, size, runOpts{hotspotFrac: 0.1, hotspotProb: prob}, seed)
}

func runSingleOpts(p SingleSiteParams, proto Protocol, size int, opts runOpts, seed int64) (stats.Summary, error) {
	newMgr, disc, err := ManagerFor(proto)
	if err != nil {
		return stats.Summary{}, err
	}
	cat, err := db.NewCatalog(1, p.DBSize)
	if err != nil {
		return stats.Summary{}, err
	}
	load, err := workload.Generate(workload.Params{
		Seed:              seed,
		Catalog:           cat,
		Count:             p.Count,
		MeanInterarrival:  p.MeanInterarrival,
		MeanSize:          size,
		ReadOnlyFrac:      p.ReadOnlyFrac,
		PerObjCost:        p.CPUPerObj + p.IOPerObj,
		SlackMin:          p.SlackMin,
		SlackMax:          p.SlackMax,
		Policy:            p.Policy,
		HotspotFrac:       opts.hotspotFrac,
		HotspotProb:       opts.hotspotProb,
		PeriodicFrac:      opts.periodicFrac,
		ImplicitDeadlines: opts.implicitDeadlines,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	var jrn *journal.Journal
	if p.Audit {
		jrn = journal.New(seed, fmt.Sprintf("single/%s/size=%d", proto, size))
	}
	sys, err := txn.NewSystem(txn.Config{
		CPUPerObj:       p.CPUPerObj,
		IOPerObj:        p.IOPerObj,
		CPUDiscipline:   disc,
		NewManager:      newMgr,
		BufferPages:     opts.bufferPages,
		LockOverhead:    opts.lockOverhead,
		WAL:             opts.wal,
		CheckpointEvery: opts.checkpointEvery,
		Journal:         jrn,
	})
	if err != nil {
		return stats.Summary{}, err
	}
	sys.Load(load)
	sum := sys.Run()
	if jrn != nil {
		if vs := audit.Run(jrn, audit.ForManager(sys.Mgr.Name())...); len(vs) > 0 {
			return sum, fmt.Errorf("experiments: %s size=%d seed=%d: %d invariant violations, first: %s",
				proto, size, seed, len(vs), vs[0])
		}
	}
	return sum, nil
}

// runSingleWAL runs one WAL-enabled cell and also returns the estimated
// restart time at the end of the run.
func runSingleWAL(p SingleSiteParams, proto Protocol, size int, checkpointEvery sim.Duration, seed int64) (stats.Summary, sim.Duration, error) {
	newMgr, disc, err := ManagerFor(proto)
	if err != nil {
		return stats.Summary{}, 0, err
	}
	cat, err := db.NewCatalog(1, p.DBSize)
	if err != nil {
		return stats.Summary{}, 0, err
	}
	load, err := workload.Generate(workload.Params{
		Seed:             seed,
		Catalog:          cat,
		Count:            p.Count,
		MeanInterarrival: p.MeanInterarrival,
		MeanSize:         size,
		ReadOnlyFrac:     p.ReadOnlyFrac,
		PerObjCost:       p.CPUPerObj + p.IOPerObj,
		SlackMin:         p.SlackMin,
		SlackMax:         p.SlackMax,
	})
	if err != nil {
		return stats.Summary{}, 0, err
	}
	sys, err := txn.NewSystem(txn.Config{
		CPUPerObj:       p.CPUPerObj,
		IOPerObj:        p.IOPerObj,
		CPUDiscipline:   disc,
		NewManager:      newMgr,
		WAL:             true,
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		return stats.Summary{}, 0, err
	}
	sys.Load(load)
	sum := sys.Run()
	recovery := sys.Log.RecoveryTime(sim.Millisecond/10, sim.Millisecond)
	return sum, recovery, nil
}

// SingleSiteSweep runs the full grid once and derives both Figure 2
// (normalized throughput vs transaction size) and Figure 3 (% deadline
// missing vs transaction size).
func SingleSiteSweep(p SingleSiteParams) (fig2, fig3 Figure, err error) {
	fig2 = Figure{
		Name:   "fig2",
		Title:  "Transaction Throughput (single site)",
		XLabel: "size",
		YLabel: "objects/second over committed transactions",
	}
	fig3 = Figure{
		Name:   "fig3",
		Title:  "Percentage of Deadline Missing Transactions (single site)",
		XLabel: "size",
		YLabel: "% missed = 100*missed/processed",
	}
	for _, proto := range p.Protocols {
		thpt := Series{Label: string(proto)}
		missed := Series{Label: string(proto)}
		for _, size := range p.Sizes {
			size := size
			sums, err2 := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(p, proto, size, p.BaseSeed+int64(r)*7919)
			})
			if err2 != nil {
				return fig2, fig3, err2
			}
			tm, tstd := stats.MeanStd(throughputOf(sums))
			mm, mstd := stats.MeanStd(missedOf(sums))
			thpt.Points = append(thpt.Points, Point{X: float64(size), Y: tm, Std: tstd, Runs: p.Runs})
			missed.Points = append(missed.Points, Point{X: float64(size), Y: mm, Std: mstd, Runs: p.Runs})
		}
		fig2.Series = append(fig2.Series, thpt)
		fig3.Series = append(fig3.Series, missed)
	}
	return fig2, fig3, nil
}

// Fig2 reproduces the throughput figure alone.
func Fig2(p SingleSiteParams) (Figure, error) {
	f2, _, err := SingleSiteSweep(p)
	return f2, err
}

// Fig3 reproduces the deadline-miss figure alone.
func Fig3(p SingleSiteParams) (Figure, error) {
	_, f3, err := SingleSiteSweep(p)
	return f3, err
}
