package experiments

import (
	"fmt"
	"sort"

	"rtlock/internal/audit"
	"rtlock/internal/dist"
	"rtlock/internal/faults"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

// FaultParams configures the graceful-degradation sweep: the Figures 4–6
// setting (three sites, memory-resident database, 50/50 mix) rerun under
// generated fault plans of increasing severity. Severity 0 is the
// fault-free baseline; each higher point crashes more sites for longer
// and loses, duplicates, and delays more messages.
type FaultParams struct {
	Sites            int
	DBSize           int
	CPUPerObj        sim.Duration
	MeanInterarrival sim.Duration
	SlackMin         float64
	SlackMax         float64
	MeanSize         int
	ReadOnlyFrac     float64
	Count            int
	Runs             int
	// Severities is the swept fault severity in [0, 1].
	Severities []float64
	BaseSeed   int64
	// Audit records a replay journal for every run and replays it
	// through the fault-aware invariant auditors; any violation fails
	// the sweep.
	Audit bool
}

// DefaultFaults returns the calibrated configuration.
func DefaultFaults() FaultParams {
	return FaultParams{
		Sites:            3,
		DBSize:           200,
		CPUPerObj:        10 * sim.Millisecond,
		MeanInterarrival: 30 * sim.Millisecond,
		SlackMin:         4,
		SlackMax:         8,
		MeanSize:         6,
		ReadOnlyFrac:     0.5,
		Count:            300,
		Runs:             8,
		Severities:       []float64{0, 0.25, 0.5, 0.75, 1},
		BaseSeed:         1,
	}
}

// Scale shrinks the run length for quick tests and benchmarks.
func (p FaultParams) Scale(countFrac float64, runs int) FaultParams {
	p.Count = int(float64(p.Count) * countFrac)
	if p.Count < 20 {
		p.Count = 20
	}
	p.Runs = runs
	return p
}

// horizon estimates the run's active window for plan generation: the
// last arrival lands around Count x MeanInterarrival, and the generator
// places every fault inside the first 85% of the horizon, so crashes
// and partitions hit live load rather than the drained tail.
func (p FaultParams) horizon() int64 {
	return int64(sim.Duration(p.Count) * p.MeanInterarrival)
}

// runFault executes one faulted distributed run and returns its summary
// and message-layer report.
func runFault(p FaultParams, approach dist.Approach, severity float64, seed int64) (stats.Summary, stats.NetReport, error) {
	plan, err := faults.Generate(seed, faults.GenParams{
		Sites:    p.Sites,
		Horizon:  p.horizon(),
		Severity: severity,
	})
	if err != nil {
		return stats.Summary{}, stats.NetReport{}, err
	}
	var jrn *journal.Journal
	if p.Audit {
		jrn = journal.New(seed, fmt.Sprintf("faultsweep/%s/sev=%g/%s", approach, severity, plan))
	}
	c, err := dist.NewCluster(dist.Config{
		Approach:  approach,
		Sites:     p.Sites,
		Objects:   p.DBSize,
		CommDelay: 2 * p.CPUPerObj,
		CPUPerObj: p.CPUPerObj,
		Journal:   jrn,
	})
	if err != nil {
		return stats.Summary{}, stats.NetReport{}, err
	}
	if err := c.AttachFaults(plan, seed); err != nil {
		return stats.Summary{}, stats.NetReport{}, err
	}
	load, err := workload.Generate(workload.Params{
		Seed:             seed,
		Catalog:          c.Catalog,
		Count:            p.Count,
		MeanInterarrival: p.MeanInterarrival,
		MeanSize:         p.MeanSize,
		ReadOnlyFrac:     p.ReadOnlyFrac,
		PerObjCost:       p.CPUPerObj,
		SlackMin:         p.SlackMin,
		SlackMax:         p.SlackMax,
		LocalWriteSets:   true,
	})
	if err != nil {
		return stats.Summary{}, stats.NetReport{}, err
	}
	c.Load(load)
	sum := c.Run()
	if jrn != nil {
		auds := audit.ForApproach(approach.String())
		if !plan.Empty() {
			auds = audit.ForFaults(approach.String())
		}
		if vs := audit.Run(jrn, auds...); len(vs) > 0 {
			return sum, stats.NetReport{}, fmt.Errorf("experiments: %s sev=%g seed=%d: %d invariant violations, first: %s",
				approach, severity, seed, len(vs), vs[0])
		}
	}
	return sum, c.NetReport(), nil
}

// canonicalSeverities returns p.Severities sorted ascending with exact
// duplicates removed, so the sweep's row order is a function of the
// severity set alone — not of the order or repetition the caller wrote
// the slice in. The input slice is never mutated.
func canonicalSeverities(sevs []float64) []float64 {
	out := make([]float64, len(sevs))
	copy(out, sevs)
	sort.Float64s(out)
	dedup := out[:0]
	for i, s := range out {
		if i == 0 || s != dedup[len(dedup)-1] {
			dedup = append(dedup, s)
		}
	}
	return dedup
}

// FaultSweep measures graceful degradation: %missed versus fault
// severity for both distributed architectures, with the message loss
// rate alongside. The fault-free point anchors the curves to the
// Figures 4–6 results; every faulted run still passes the fault-aware
// invariant auditors when Audit is set — degraded, never incorrect.
// Severities are canonicalized (sorted, deduplicated) before the sweep,
// so two parameter sets naming the same severity values produce
// identical figures row for row.
func FaultSweep(p FaultParams) (Figure, error) {
	severities := canonicalSeverities(p.Severities)
	fig := Figure{
		Name:   "faultsweep",
		Title:  "Graceful degradation under injected faults",
		XLabel: "severity",
		YLabel: "% missed",
	}
	for _, approach := range []dist.Approach{dist.GlobalCeiling, dist.LocalCeiling} {
		s := Series{Label: approach.String()}
		loss := Series{Label: approach.String() + ",%msgs lost"}
		for _, sev := range severities {
			sev := sev
			nets := make([]stats.NetReport, p.Runs)
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				sum, net, err := runFault(p, approach, sev, p.BaseSeed+int64(r)*7919)
				nets[r] = net
				return sum, err
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: sev, Y: mean, Std: std, Runs: p.Runs})
			lost := make([]float64, len(nets))
			for i, n := range nets {
				if n.Sent > 0 {
					lost[i] = 100 * float64(n.Lost()) / float64(n.Sent)
				}
			}
			lm, ls := stats.MeanStd(lost)
			loss.Points = append(loss.Points, Point{X: sev, Y: lm, Std: ls, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s, loss)
	}
	return fig, nil
}
