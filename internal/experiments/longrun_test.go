package experiments

import (
	"os"
	"testing"

	"rtlock/internal/sim"
)

// TestLongRunBoundedRetention runs a scaled-down soak and checks every
// bounded-memory claim that does not need the full million: the raw
// record cap holds, the window ring holds, and every transaction is
// attributed to exactly one window.
func TestLongRunBoundedRetention(t *testing.T) {
	const count, cap = 12_000, 512
	res, err := LongRun(LongRunParams{Count: count, MaxRawRecords: cap,
		Window: 5 * sim.Second, MaxWindows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != count {
		t.Fatalf("processed %d, want %d", res.Summary.Processed, count)
	}
	if res.RawRetained > cap {
		t.Fatalf("retained %d raw records past cap %d", res.RawRetained, cap)
	}
	if res.RawDropped != count-cap {
		t.Fatalf("raw dropped %d, want %d", res.RawDropped, count-cap)
	}
	if len(res.Timeline) > 8 {
		t.Fatalf("ring held %d windows past cap 8", len(res.Timeline))
	}
	if res.TimelineDropped == 0 {
		t.Fatal("a 12k-transaction run should outlive an 8-window ring")
	}
	var windowed int64
	for _, r := range res.Timeline {
		windowed += r.Processed
	}
	if windowed == 0 {
		t.Fatal("retained windows are empty")
	}
}

// TestLongRunBurstShowsInTimeline checks the point of the bursty
// calibration: windows overlapping burst phases process more
// transactions than quiet ones, which is exactly what the timeline
// exists to show.
func TestLongRunBurstShowsInTimeline(t *testing.T) {
	res, err := LongRun(LongRunParams{
		Count:  10_000,
		Window: 2 * sim.Second, // aligned with BurstOn, inside BurstOff
	})
	if err != nil {
		t.Fatal(err)
	}
	// With BurstOn=2s/BurstOff=8s and 2s windows, every 5th window is
	// a burst window. Compare mean arrivals of burst vs quiet windows,
	// skipping the (possibly partial) last one.
	var burst, quiet, nb, nq int64
	for _, r := range res.Timeline[:len(res.Timeline)-1] {
		if r.Window%5 == 0 {
			burst += r.Processed
			nb++
		} else {
			quiet += r.Processed
			nq++
		}
	}
	if nb == 0 || nq == 0 {
		t.Fatalf("degenerate timeline: %d burst, %d quiet windows", nb, nq)
	}
	mb, mq := float64(burst)/float64(nb), float64(quiet)/float64(nq)
	if mb < 1.5*mq {
		t.Fatalf("burst windows average %.1f tx vs quiet %.1f — burst not visible", mb, mq)
	}
}

// TestLongRunMillion is the acceptance soak: a million transactions
// through the bursty load complete with raw retention capped. It runs
// in a few MB of heap but over a minute of CPU — far too slow for the
// race and shuffle sweeps — so it only runs when LONGRUN is set (CI
// gives it a dedicated step).
func TestLongRunMillion(t *testing.T) {
	if os.Getenv("LONGRUN") == "" {
		t.Skip("minute-scale soak; set LONGRUN=1 to run")
	}
	res, err := LongRun(LongRunParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Processed != 1_000_000 {
		t.Fatalf("processed %d, want 1000000", res.Summary.Processed)
	}
	if res.RawRetained > 4096 {
		t.Fatalf("retained %d raw records past the 4096 cap", res.RawRetained)
	}
	if res.RawDropped != 1_000_000-4096 {
		t.Fatalf("raw dropped %d, want %d", res.RawDropped, 1_000_000-4096)
	}
	var windowed int64
	for _, r := range res.Timeline {
		windowed += r.Processed
	}
	if res.TimelineDropped == 0 && windowed != 1_000_000 {
		t.Fatalf("windows account for %d of 1000000 transactions", windowed)
	}
}
