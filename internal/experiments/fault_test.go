package experiments

import "testing"

// TestFaultSoak is the CI soak: a short randomized-plan severity sweep
// with auditing on. FaultSweep fails on the first invariant violation,
// so a green run certifies that every generated plan — crashes,
// partitions, loss — left the protocol auditors satisfied for both
// architectures.
func TestFaultSoak(t *testing.T) {
	p := DefaultFaults().Scale(0.1, 2)
	p.Audit = true
	p.Severities = []float64{0, 0.5, 1}
	for _, seed := range []int64{1, 99} {
		p.BaseSeed = seed
		fig, err := FaultSweep(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("seed %d: empty figure", seed)
		}
	}
}

func TestFaultSweepScale(t *testing.T) {
	p := DefaultFaults()
	s := p.Scale(0.01, 1)
	if s.Count < 20 {
		t.Fatalf("Count = %d, want the floor of 20", s.Count)
	}
	if s.Runs != 1 {
		t.Fatalf("Runs = %d", s.Runs)
	}
}
