package experiments

import (
	"reflect"
	"testing"
)

// TestFaultSoak is the CI soak: a short randomized-plan severity sweep
// with auditing on. FaultSweep fails on the first invariant violation,
// so a green run certifies that every generated plan — crashes,
// partitions, loss — left the protocol auditors satisfied for both
// architectures.
func TestFaultSoak(t *testing.T) {
	p := DefaultFaults().Scale(0.1, 2)
	p.Audit = true
	p.Severities = []float64{0, 0.5, 1}
	for _, seed := range []int64{1, 99} {
		p.BaseSeed = seed
		fig, err := FaultSweep(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("seed %d: empty figure", seed)
		}
	}
}

// TestFaultSweepSeverityOrder pins the row-order contract: FaultSweep
// canonicalizes Severities (sorted ascending, duplicates collapsed), so
// an unsorted, repetitive severity slice yields exactly the figure its
// sorted set would — point for point, including replicated-run stddevs.
func TestFaultSweepSeverityOrder(t *testing.T) {
	p := DefaultFaults().Scale(0.1, 2)
	p.Severities = []float64{1, 0.5, 0, 0.5, 1, 1}
	messy, err := FaultSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1, 0.5, 0, 0.5, 1, 1}; !reflect.DeepEqual(p.Severities, want) {
		t.Fatalf("FaultSweep mutated the caller's Severities: %v", p.Severities)
	}
	p.Severities = []float64{0, 0.5, 1}
	clean, err := FaultSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(messy, clean) {
		t.Fatalf("row order depends on severity slice presentation:\nmessy %+v\nclean %+v", messy, clean)
	}
	for _, s := range messy.Series {
		if len(s.Points) != 3 {
			t.Fatalf("series %q has %d points, want 3 (one per distinct severity): %+v", s.Label, len(s.Points), s.Points)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X <= s.Points[i-1].X {
				t.Fatalf("series %q rows not strictly ascending in severity: %+v", s.Label, s.Points)
			}
		}
	}
}

func TestFaultSweepScale(t *testing.T) {
	p := DefaultFaults()
	s := p.Scale(0.01, 1)
	if s.Count < 20 {
		t.Fatalf("Count = %d, want the floor of 20", s.Count)
	}
	if s.Runs != 1 {
		t.Fatalf("Runs = %d", s.Runs)
	}
}
