package experiments

import (
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

// RunCustom executes one configuration and returns its summary, backing
// the CLI's -experiment custom mode.
func RunCustom(p SingleSiteParams, proto Protocol, size int) (stats.Summary, error) {
	var agg []stats.Summary
	for r := 0; r < p.Runs; r++ {
		sum, err := runSingle(p, proto, size, p.BaseSeed+int64(r)*7919)
		if err != nil {
			return stats.Summary{}, err
		}
		agg = append(agg, sum)
	}
	if len(agg) == 1 {
		return agg[0], nil
	}
	// Average the headline metrics over runs.
	var out stats.Summary
	var thpts, missed []float64
	for _, s := range agg {
		out.Processed += s.Processed
		out.Committed += s.Committed
		out.Missed += s.Missed
		thpts = append(thpts, s.Throughput)
		missed = append(missed, s.MissedPct)
	}
	out.Throughput, _ = stats.MeanStd(thpts)
	out.MissedPct, _ = stats.MeanStd(missed)
	return out, nil
}

// DBSizeAblation reproduces the experiment the paper ran but omitted from
// the figures (§3.3): varying the database size, and thus the conflict
// probability, at a fixed transaction size. The paper reports it "only
// confirms" the other experiments — the protocol ordering should not
// change, with misses falling as the database grows.
func DBSizeAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "dbsize",
		Title:  "Database-size sweep (omitted experiment): %missed at fixed size",
		XLabel: "db objects",
		YLabel: "% missed",
	}
	const fixedSize = 12
	dbSizes := []int{60, 100, 150, 200, 300, 400, 600}
	for _, proto := range p.Protocols {
		s := Series{Label: string(proto)}
		for _, dbs := range dbSizes {
			q := p
			q.DBSize = dbs
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(q, proto, fixedSize, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: float64(dbs), Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// SemanticsAblation answers the question the paper's conclusion raises:
// does the read semantics of locks (shared read locks with the
// write-priority ceiling) help or hurt schedulability compared with
// exclusive-only semantics? It sweeps the read-only fraction of the
// workload and compares the ceiling protocol (C) with its
// exclusive-semantics variant (CX) on %missed.
func SemanticsAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "semantics",
		Title:  "Read/write vs exclusive lock semantics in the ceiling protocol",
		XLabel: "%read-only",
		YLabel: "% missed",
	}
	const size = 10
	mixes := []float64{0, 0.25, 0.5, 0.75, 0.9}
	for _, proto := range []Protocol{ProtoCeiling, ProtoCeilingX} {
		s := Series{Label: string(proto)}
		for _, mix := range mixes {
			q := p
			q.ReadOnlyFrac = mix
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(q, proto, size, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: 100 * mix, Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RestartAblation explores the paper's §5 question about preemption in
// real-time transaction scheduling: aborting a lock holder frees the
// resource immediately but wastes its completed work and forces a redo
// that may push it (or others) past their deadlines. It sweeps the size
// axis comparing blocking-based protocols (C, P) against abort-based
// ones: High-Priority wounding (HP), deadlock detection (DD), and
// timestamp ordering (TO).
func RestartAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "restart",
		Title:  "Blocking vs abort-based protocols: %missed",
		XLabel: "size",
		YLabel: "% missed",
	}
	for _, proto := range []Protocol{ProtoCeiling, ProtoTwoPLPrio, ProtoTwoPLHP, ProtoTwoPLCR, ProtoTwoPLDD, ProtoTimestamp} {
		s := Series{Label: string(proto)}
		for _, size := range p.Sizes {
			size := size
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(p, proto, size, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: float64(size), Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// BufferAblation sweeps the page-buffer size at a fixed transaction
// size: a larger buffer converts I/O delays into hits, shortening
// lock-holding windows and reducing deadline misses for every protocol
// (and shifting the workload from I/O-bound toward CPU-bound, the axis
// the paper's Figure 2 discussion mentions).
func BufferAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "buffer",
		Title:  "Page-buffer size sweep: %missed at fixed size",
		XLabel: "buffer pages",
		YLabel: "% missed",
	}
	const fixedSize = 14
	bufSizes := []int{0, 25, 50, 100, 200}
	for _, proto := range p.Protocols {
		s := Series{Label: string(proto)}
		for _, pages := range bufSizes {
			pages := pages
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingleBuffered(p, proto, fixedSize, pages, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: float64(pages), Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// PriorityPolicyAblation sweeps the priority-assignment policy under the
// ceiling protocol: earliest deadline first (the paper's choice),
// first-come-first-served, least slack, and random. The deadline-miss
// comparison shows how much of the ceiling protocol's performance comes
// from deadline-cognizant priorities rather than from the protocol
// machinery itself.
func PriorityPolicyAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "priority",
		Title:  "Priority assignment policies under the ceiling protocol: %missed",
		XLabel: "size",
		YLabel: "% missed",
	}
	policies := []struct {
		label  string
		policy workload.PriorityPolicy
	}{
		{"EDF", workload.PriorityEDF},
		{"FCFS", workload.PriorityFCFS},
		{"SLACK", workload.PrioritySlack},
		{"RANDOM", workload.PriorityRandom},
	}
	for _, pol := range policies {
		s := Series{Label: pol.label}
		q := p
		q.Policy = pol.policy
		for _, size := range p.Sizes {
			size := size
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(q, ProtoCeiling, size, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: float64(size), Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// HotspotAblation skews object selection toward a small hot region
// (contemporaneous simulators' standard contention knob) at a fixed
// transaction size and compares the protocols as the conflict rate
// rises: the direct-blocking protocols should suffer steeply, the
// ceiling protocol — whose blocking is governed by active-transaction
// ceilings rather than the objects actually touched — more gently.
func HotspotAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "hotspot",
		Title:  "Hotspot skew sweep: %missed at fixed size",
		XLabel: "%hot accesses",
		YLabel: "% missed",
	}
	const fixedSize = 12
	probs := []float64{0, 0.25, 0.5, 0.75, 0.9}
	for _, proto := range p.Protocols {
		s := Series{Label: string(proto)}
		for _, prob := range probs {
			prob := prob
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingleHotspot(p, proto, fixedSize, prob, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: 100 * prob, Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// PredictabilityAblation measures what the ceiling protocol actually
// buys: bounded, predictable blocking. Across the size sweep it reports
// the p99/p50 response-time ratio of committed transactions — a
// protocol may post excellent averages (High-Priority wounding) while
// its victims' redone work stretches the tail.
func PredictabilityAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "predictability",
		Title:  "Response-time tail ratio (p99/p50) of committed transactions",
		XLabel: "size",
		YLabel: "p99/p50 response",
	}
	for _, proto := range []Protocol{ProtoCeiling, ProtoTwoPLPrio, ProtoTwoPLHP, ProtoTimestamp} {
		s := Series{Label: string(proto)}
		for _, size := range p.Sizes {
			size := size
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(p, proto, size, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			var ratios []float64
			for _, sum := range sums {
				if sum.RespP50 > 0 {
					ratios = append(ratios, float64(sum.RespP99)/float64(sum.RespP50))
				}
			}
			mean, std := stats.MeanStd(ratios)
			s.Points = append(s.Points, Point{X: float64(size), Y: mean, Std: std, Runs: len(ratios)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// PeriodicAblation sweeps the periodic/aperiodic transaction mix the
// paper's UI exposes ("transaction types ... periodic/aperiodic"): the
// tracking model's repetitive scans re-use one access set per stream
// and carry implicit (next-period) deadlines. Stream reuse concentrates
// conflicts on the streams' objects while the periodic deadlines are
// typically looser than size-proportional ones.
func PeriodicAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "periodic",
		Title:  "Periodic/aperiodic mix sweep: %missed at fixed size",
		XLabel: "%periodic",
		YLabel: "% missed",
	}
	const fixedSize = 12
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	for _, proto := range p.Protocols {
		s := Series{Label: string(proto)}
		for _, frac := range fracs {
			frac := frac
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingleOpts(p, proto, fixedSize,
					runOpts{periodicFrac: frac, implicitDeadlines: true},
					p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: 100 * frac, Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// OverheadAblation charges a CPU cost per lock operation and sweeps it:
// protocol bookkeeping is not free, and a protocol's advantage must
// survive its own overhead. All protocols pay the same per-operation
// cost here; what differs is how many operations their outcomes buy.
func OverheadAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "overhead",
		Title:  "Lock-operation CPU overhead sweep: %missed at fixed size",
		XLabel: "overhead ms",
		YLabel: "% missed",
	}
	const fixedSize = 12
	overheads := []sim.Duration{0, sim.Millisecond / 2, sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond}
	for _, proto := range p.Protocols {
		s := Series{Label: string(proto)}
		for _, ov := range overheads {
			ov := ov
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingleOpts(p, proto, fixedSize,
					runOpts{lockOverhead: ov}, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: ov.Millis(), Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RecoveryAblation sweeps the checkpoint interval of the write-ahead
// log and reports both sides of the classic trade-off under the ceiling
// protocol: frequent checkpoints stall transactions (their snapshot CPU
// runs at top priority) but bound the redo tail, so restart is fast;
// rare checkpoints are cheap online but leave a long redo. The
// "recovery_ms" series is the estimated restart time at the end of the
// run (0.1ms/object snapshot load + 1ms/record redo).
func RecoveryAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "recovery",
		Title:  "Checkpoint interval trade-off (ceiling protocol, WAL on)",
		XLabel: "interval s",
		YLabel: "%missed / recovery ms",
	}
	const size = 10
	intervals := []sim.Duration{250 * sim.Millisecond, 500 * sim.Millisecond,
		sim.Second, 2 * sim.Second, 4 * sim.Second, 0 /* no checkpoints */}
	missed := Series{Label: "missed_pct"}
	recovery := Series{Label: "recovery_ms"}
	for _, every := range intervals {
		every := every
		var ms, rs []float64
		type pair struct {
			sum stats.Summary
			rec sim.Duration
		}
		results := make([]pair, p.Runs)
		_, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
			sum, rec, err := runSingleWAL(p, ProtoCeiling, size, every, p.BaseSeed+int64(r)*7919)
			results[r] = pair{sum, rec}
			return sum, err
		})
		if err != nil {
			return fig, err
		}
		for _, res := range results {
			ms = append(ms, res.sum.MissedPct)
			rs = append(rs, res.rec.Millis())
		}
		x := sim.Duration(every).Seconds()
		if every == 0 {
			x = 99 // sentinel column for "never"
		}
		mMean, mStd := stats.MeanStd(ms)
		rMean, rStd := stats.MeanStd(rs)
		missed.Points = append(missed.Points, Point{X: x, Y: mMean, Std: mStd, Runs: p.Runs})
		recovery.Points = append(recovery.Points, Point{X: x, Y: rMean, Std: rStd, Runs: p.Runs})
	}
	fig.Series = []Series{missed, recovery}
	return fig, nil
}

// InheritAblation compares basic priority inheritance (§3.1) against the
// ceiling protocol and plain priority two-phase locking across the size
// sweep: inheritance bounds each blocking but still allows chains of
// blocking and deadlock, so it should land between P and C.
func InheritAblation(p SingleSiteParams) (Figure, error) {
	fig := Figure{
		Name:   "inherit",
		Title:  "Basic priority inheritance vs priority ceiling: %missed",
		XLabel: "size",
		YLabel: "% missed",
	}
	for _, proto := range []Protocol{ProtoCeiling, ProtoInherit, ProtoTwoPLPrio} {
		s := Series{Label: string(proto)}
		for _, size := range p.Sizes {
			size := size
			sums, err := collectRuns(p.Runs, func(r int) (stats.Summary, error) {
				return runSingle(p, proto, size, p.BaseSeed+int64(r)*7919)
			})
			if err != nil {
				return fig, err
			}
			mean, std := stats.MeanStd(missedOf(sums))
			s.Points = append(s.Points, Point{X: float64(size), Y: mean, Std: std, Runs: p.Runs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
