package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MarkerKind distinguishes the annotation directives.
type MarkerKind int

const (
	// MarkerPooled tags a type declaration whose values are recycled
	// through a free list; poolsafety tracks them.
	MarkerPooled MarkerKind = iota
	// MarkerAllocFree tags a function declaration whose body must not
	// contain any heap escape; allocfree enforces it against
	// -gcflags=-m=2 compiler diagnostics.
	MarkerAllocFree
	// MarkerPure tags a package (in its package doc comment) as pure
	// with respect to a domain; journalpurity proves the "journal"
	// domain can never be mutated from the package.
	MarkerPure
)

func (k MarkerKind) String() string {
	switch k {
	case MarkerPooled:
		return "pooled"
	case MarkerAllocFree:
		return "allocfree"
	case MarkerPure:
		return "pure"
	}
	return "unknown"
}

// Marker is one parsed annotation directive.
type Marker struct {
	Kind     MarkerKind
	Domain   string // for MarkerPure: the purity domain ("journal")
	Position token.Position
}

// ParseMarker parses one comment's text as a marker directive. ok=false
// when the comment is not a marker at all (including when it is an
// //rtlint:allow suppression); a non-nil error means it tried to be a
// marker but is malformed.
func ParseMarker(text string) (Marker, bool, error) {
	const prefix = "//rtlint:"
	if !strings.HasPrefix(text, prefix) {
		return Marker{}, false, nil
	}
	rest := text[len(prefix):]
	verb := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, rest = rest[:i], rest[i+1:]
	} else {
		rest = ""
	}
	if !markerVerb(verb) {
		return Marker{}, false, nil
	}
	if strings.TrimSpace(rest) != "" {
		return Marker{}, true, fmt.Errorf("%w: %q", ErrMarkerArgs, strings.TrimSpace(rest))
	}
	switch {
	case verb == "pooled":
		return Marker{Kind: MarkerPooled}, true, nil
	case verb == "allocfree":
		return Marker{Kind: MarkerAllocFree}, true, nil
	case verb == "pure=journal":
		return Marker{Kind: MarkerPure, Domain: "journal"}, true, nil
	default: // "pure", "pure=", "pure=<unknown>"
		return Marker{}, true, ErrMarkerDomain
	}
}

// pkgMarkers is the resolved view of one package's marker annotations.
type pkgMarkers struct {
	// pooled holds the named types tagged //rtlint:pooled.
	pooled map[*types.TypeName]bool
	// allocFree maps each //rtlint:allocfree-annotated function object
	// to its declaration.
	allocFree map[*types.Func]*ast.FuncDecl
	// pureDomains holds the purity domains the package's doc comments
	// declare ("journal").
	pureDomains map[string]bool
	// meta carries malformed/misplaced marker diagnostics for the
	// directive meta-analyzer.
	meta []Diagnostic
}

func (m *pkgMarkers) isPooled(tn *types.TypeName) bool { return m != nil && m.pooled[tn] }

// collectMarkers parses and places every marker of a package. Placement
// is strict: //rtlint:pooled belongs in a type declaration's doc
// comment, //rtlint:allocfree in a function's, and //rtlint:pure=journal
// in a file's package doc comment. A marker anywhere else is reported as
// misplaced so a stray annotation can never silently bind to nothing.
func collectMarkers(pkg *Package) *pkgMarkers {
	mk := &pkgMarkers{
		pooled:      make(map[*types.TypeName]bool),
		allocFree:   make(map[*types.Func]*ast.FuncDecl),
		pureDomains: make(map[string]bool),
	}
	placed := make(map[*ast.Comment]bool)

	take := func(doc *ast.CommentGroup, accept func(Marker) bool) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			m, ok, err := ParseMarker(c.Text)
			if !ok {
				continue
			}
			placed[c] = true
			if err != nil {
				mk.meta = append(mk.meta, Diagnostic{
					Analyzer: MetaAnalyzerName,
					Position: pkg.Fset.Position(c.Pos()),
					Message:  "malformed marker: " + err.Error(),
				})
				continue
			}
			m.Position = pkg.Fset.Position(c.Pos())
			if !accept(m) {
				mk.meta = append(mk.meta, Diagnostic{
					Analyzer: MetaAnalyzerName,
					Position: m.Position,
					Message:  fmt.Sprintf("misplaced marker: //rtlint:%s does not apply to this declaration", m.Kind),
				})
			}
		}
	}

	for _, f := range pkg.Files {
		take(f.Doc, func(m Marker) bool {
			if m.Kind != MarkerPure {
				return false
			}
			mk.pureDomains[m.Domain] = true
			return true
		})
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				take(d.Doc, func(m Marker) bool {
					if m.Kind != MarkerAllocFree {
						return false
					}
					if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						mk.allocFree[obj] = d
					}
					return true
				})
			case *ast.GenDecl:
				acceptType := func(spec *ast.TypeSpec) func(Marker) bool {
					return func(m Marker) bool {
						if m.Kind != MarkerPooled {
							return false
						}
						if obj, ok := pkg.Info.Defs[spec.Name].(*types.TypeName); ok {
							mk.pooled[obj] = true
						}
						return true
					}
				}
				if d.Tok == token.TYPE && len(d.Specs) == 1 {
					if spec, ok := d.Specs[0].(*ast.TypeSpec); ok {
						take(d.Doc, acceptType(spec))
					}
				} else {
					take(d.Doc, func(Marker) bool { return false })
				}
				for _, s := range d.Specs {
					if spec, ok := s.(*ast.TypeSpec); ok && d.Tok == token.TYPE {
						take(spec.Doc, acceptType(spec))
					}
				}
			}
		}
	}

	// Any marker-shaped comment not consumed above sits in a position
	// where it binds to nothing.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if placed[c] {
					continue
				}
				m, ok, err := ParseMarker(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if err != nil {
					mk.meta = append(mk.meta, Diagnostic{
						Analyzer: MetaAnalyzerName,
						Position: pos,
						Message:  "malformed marker: " + err.Error(),
					})
					continue
				}
				mk.meta = append(mk.meta, Diagnostic{
					Analyzer: MetaAnalyzerName,
					Position: pos,
					Message: fmt.Sprintf("misplaced marker: //rtlint:%s must be in the doc comment of a %s",
						m.Kind, markerHome(m.Kind)),
				})
			}
		}
	}
	return mk
}

func markerHome(k MarkerKind) string {
	switch k {
	case MarkerPooled:
		return "type declaration"
	case MarkerAllocFree:
		return "function declaration"
	case MarkerPure:
		return "file's package clause"
	}
	return "declaration"
}
