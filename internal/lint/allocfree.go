package lint

// AllocFree enforces the //rtlint:allocfree function annotation: the
// compiler's own escape analysis (-gcflags=-m=2) must report no heap
// escape inside an annotated function's body. PR 6's allocation gates
// (AllocsPerRun==0, the per-transaction allocation budget) catch
// regressions only on exercised paths at test time; this turns the same
// invariant into a per-function compile-time proof — the moment a change
// makes a value escape inside Kernel.Run's dispatch helpers,
// journal.Append, or a manager waiter path, lint fails with the
// compiler's diagnostic at the escaping expression.
//
// The analyzer is evidence-driven: it needs an EscapeReport in the
// Config (cmd/rtlint produces one by invoking `go build` with
// -gcflags=-m=2 over the module, cached on content hashes). Without the
// report it stays dormant, and its //rtlint:allow directives are exempt
// from staleness so source-only runs do not flag them.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "enforces //rtlint:allocfree: compiler escape analysis must prove annotated functions heap-allocation-free",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) error {
	if pass.Config.Escapes == nil || len(pass.Markers.allocFree) == 0 {
		return nil
	}
	for _, decl := range pass.Markers.allocFree {
		body := decl.Body
		if body == nil {
			continue
		}
		start := pass.Fset.Position(decl.Pos())
		end := pass.Fset.Position(body.End())
		for _, esc := range pass.Config.Escapes.InFile(start.Filename) {
			if esc.Line < start.Line || esc.Line > end.Line {
				continue
			}
			pass.ReportAt(positionOf(esc), "heap escape in //rtlint:allocfree %s: %s", decl.Name.Name, esc.Message)
		}
	}
	return nil
}
