package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolSafety checks the object-pooling discipline PR 6 introduced for
// the hot path: kernel events, wait tokens, per-manager lock waiters,
// and TxState are recycled through free lists, so three whole bug
// classes open up that Go's GC normally makes impossible. For every
// type tagged //rtlint:pooled the analyzer detects:
//
//   - use-after-release: a read or write of a pooled value on a path
//     after it was handed back to its pool (appended to a free list or
//     zeroed by a releaser), where the next pool hit would alias it;
//   - escapes into long-lived state: a pool-derived pointer captured by
//     a closure or stored into a package-level variable outlives its
//     lease and defeats the static-callback discipline;
//   - reuse without reset: a free list whose push sites and pop sites
//     both lack reset evidence (field zeroing, a Reset* call, *p = T{},
//     or a generation-counter bump), so a recycled value leaks its
//     previous life into the next one.
//
// The analysis is an intra-procedural flow walk over go/types-resolved
// ASTs with a package-level call summary: release functions are
// classified by their bodies (append a pooled pointer parameter to a
// free-list field, or zero it through the pointer), transitively
// through same-package wrappers; free lists are recognized by the
// repo's naming convention — slice-of-pooled fields named free*.
// Release inside a terminating branch (return/continue/panic) does not
// poison the fall-through path, and rebinding a variable clears its
// released state.
var PoolSafety = &Analyzer{
	Name: "poolsafety",
	Doc:  "detects use-after-release, closure/global escapes, and reset-less reuse of //rtlint:pooled values",
	Run:  runPoolSafety,
}

// poolSummary is the package-level call summary for pool analysis.
type poolSummary struct {
	pass *Pass
	// releasers maps a function to the parameter indices (receiver = -1)
	// it releases back to a pool.
	releasers map[*types.Func]map[int]bool
	// getters are functions returning a pooled pointer popped from a
	// free list.
	getters map[*types.Func]bool
	// pools tracks each free-list field's push/pop sites.
	pools map[*types.Var]*poolField
}

// poolField aggregates the evidence about one free-list field.
type poolField struct {
	name      string
	elem      *types.TypeName
	pushTotal int
	pushReset int
	popTotal  int
	popReset  int
	firstPush token.Pos
}

func runPoolSafety(pass *Pass) error {
	sum := &poolSummary{
		pass:      pass,
		releasers: make(map[*types.Func]map[int]bool),
		getters:   make(map[*types.Func]bool),
		pools:     make(map[*types.Var]*poolField),
	}
	if !sum.anyPooled() {
		return nil
	}
	decls := sum.collectFuncs()
	for _, fd := range decls {
		sum.classify(fd)
	}
	sum.propagateReleasers(decls)
	for _, fd := range decls {
		checkPoolFlow(sum, fd)
	}
	sum.checkResetDiscipline()
	return nil
}

// anyPooled short-circuits packages that neither declare nor import a
// pooled type anywhere in their type info.
func (s *poolSummary) anyPooled() bool {
	if len(s.pass.Markers.pooled) > 0 {
		return true
	}
	for _, tv := range s.pass.Info.Types {
		if s.pooledElem(tv.Type) != nil {
			return true
		}
	}
	return false
}

// isPooled reports whether a named type carries //rtlint:pooled,
// locally or (through the resolver) in its defining package.
func (s *poolSummary) isPooled(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	if tn.Pkg() == s.pass.Pkg {
		return s.pass.Markers.pooled[tn]
	}
	if r := s.pass.Config.Resolve; r != nil {
		return r.PooledType(tn)
	}
	return false
}

// pooledElem returns the pooled type name when t is *T for pooled T.
func (s *poolSummary) pooledElem(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	if s.isPooled(named.Obj()) {
		return named.Obj()
	}
	return nil
}

func (s *poolSummary) collectFuncs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range s.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// funcObj resolves a declaration to its *types.Func.
func (s *poolSummary) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := s.pass.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// paramsOf lists a declaration's pooled-pointer parameters, receiver
// first as index -1.
func (s *poolSummary) paramsOf(fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	add := func(names []*ast.Ident, idx int) {
		for _, name := range names {
			if obj := s.pass.Info.Defs[name]; obj != nil && s.pooledElem(obj.Type()) != nil {
				out[obj] = idx
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		add(fd.Recv.List[0].Names, -1)
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			add([]*ast.Ident{name}, idx)
			idx++
		}
	}
	return out
}

// freeListField resolves a selector to a free-list field: a field whose
// name starts with "free" (the repo's pooling convention) and whose
// type is a slice of pooled pointers.
func (s *poolSummary) freeListField(e ast.Expr) (*types.Var, *types.TypeName) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "free") {
		return nil, nil
	}
	var obj types.Object
	if selection, ok := s.pass.Info.Selections[sel]; ok {
		obj = selection.Obj()
	} else {
		obj = s.pass.Info.Uses[sel.Sel]
	}
	field, ok := obj.(*types.Var)
	if !ok || !field.IsField() {
		return nil, nil
	}
	slice, ok := field.Type().Underlying().(*types.Slice)
	if !ok {
		return nil, nil
	}
	elem := s.pooledElem(slice.Elem())
	if elem == nil {
		return nil, nil
	}
	return field, elem
}

// poolFor returns (lazily creating) the aggregate for a free-list field.
func (s *poolSummary) poolFor(field *types.Var, elem *types.TypeName) *poolField {
	p := s.pools[field]
	if p == nil {
		p = &poolField{name: field.Name(), elem: elem}
		s.pools[field] = p
	}
	return p
}

// classify records one function's push/pop sites and its direct
// releaser/getter nature.
func (s *poolSummary) classify(fd *ast.FuncDecl) {
	params := s.paramsOf(fd)
	fn := s.funcObj(fd)
	var poolReads, poolReturns bool

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Push site: x.freeF = append(x.freeF, v)
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				field, elem := s.freeListField(lhs)
				if field == nil {
					continue
				}
				call, ok := n.Rhs[i].(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				p := s.poolFor(field, elem)
				p.pushTotal++
				if p.firstPush == token.NoPos {
					p.firstPush = n.Pos()
				}
				if s.resetEvidence(fd, call.Args[1:]) {
					p.pushReset++
				}
				// Releaser: the pushed value is a pooled parameter.
				if fn != nil {
					for _, arg := range call.Args[1:] {
						if obj := identObj(s.pass.Info, arg); obj != nil {
							if idx, ok := params[obj]; ok {
								s.addReleaser(fn, idx)
							}
						}
					}
				}
			}
			// Pop site: v := x.freeF[i]
			for i, rhs := range n.Rhs {
				ix, ok := ast.Unparen(rhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				field, elem := s.freeListField(ix.X)
				if field == nil {
					continue
				}
				p := s.poolFor(field, elem)
				p.popTotal++
				if i < len(n.Lhs) {
					if obj := lhsObj(s.pass.Info, n.Lhs[i]); obj != nil && s.resetEvidenceFor(fd, obj) {
						p.popReset++
					}
				}
				poolReads = true
			}
		}
		return true
	})

	// Releaser via zeroing a pooled parameter: *p = T{}.
	if fn != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				star, ok := ast.Unparen(lhs).(*ast.StarExpr)
				if !ok {
					continue
				}
				if obj := identObj(s.pass.Info, star.X); obj != nil {
					if idx, ok := params[obj]; ok {
						s.addReleaser(fn, idx)
					}
				}
			}
			return true
		})
	}

	// Getter: returns a pooled pointer and reads a free list.
	if fn != nil && poolReads {
		if res := fn.Type().(*types.Signature).Results(); res != nil {
			for i := 0; i < res.Len(); i++ {
				if s.pooledElem(res.At(i).Type()) != nil {
					poolReturns = true
				}
			}
		}
		if poolReturns {
			s.getters[fn] = true
		}
	}
}

func (s *poolSummary) addReleaser(fn *types.Func, idx int) {
	m := s.releasers[fn]
	if m == nil {
		m = make(map[int]bool)
		s.releasers[fn] = m
	}
	m[idx] = true
}

// propagateReleasers closes releaser classification over same-package
// wrappers: a function that forwards its pooled parameter to a known
// releaser is itself a releaser of that parameter.
func (s *poolSummary) propagateReleasers(decls []*ast.FuncDecl) {
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn := s.funcObj(fd)
			if fn == nil {
				continue
			}
			params := s.paramsOf(fd)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for obj, idx := range params {
					if s.releasedArg(call, obj) && !s.releasers[fn][idx] {
						s.addReleaser(fn, idx)
						changed = true
					}
				}
				return true
			})
		}
	}
}

// releasedArg reports whether the call releases obj: obj appears in an
// argument (or receiver) position that the callee is known to release.
func (s *poolSummary) releasedArg(call *ast.CallExpr, obj types.Object) bool {
	callee := staticCallee(s.pass.Info, call)
	if callee == nil {
		return false
	}
	released := s.releasers[callee]
	if len(released) == 0 {
		return false
	}
	if released[-1] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recvObj := identObj(s.pass.Info, sel.X); recvObj == obj {
				return true
			}
			// &w.tok style receivers: release of a field is not a
			// release of the whole value.
		}
	}
	for i, arg := range call.Args {
		if !released[i] {
			continue
		}
		a := ast.Unparen(arg)
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
			a = u.X
		}
		if identObj(s.pass.Info, a) == obj {
			return true
		}
	}
	return false
}

// resetEvidence reports whether any of the pushed values shows reset
// evidence earlier in the same function.
func (s *poolSummary) resetEvidence(fd *ast.FuncDecl, args []ast.Expr) bool {
	for _, arg := range args {
		if obj := identObj(s.pass.Info, arg); obj != nil && s.resetEvidenceFor(fd, obj) {
			return true
		}
	}
	return false
}

// resetEvidenceFor reports whether fd's body contains, anywhere, a
// reset of obj: a field assignment or inc/dec through it (generation
// bump, truncation), *obj = T{}, or a Reset*-named method call on obj
// or one of its fields.
func (s *poolSummary) resetEvidenceFor(fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	rootIs := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				return declOrUseObj(s.pass.Info, x) == obj
			default:
				return false
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if rootIs(l.X) {
						found = true
					}
				case *ast.StarExpr:
					if rootIs(l.X) {
						found = true
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && rootIs(sel.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "Reset") && rootIs(sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkResetDiscipline reports pools where neither side of the recycle
// shows reset evidence.
func (s *poolSummary) checkResetDiscipline() {
	for _, p := range s.pools {
		if p.pushTotal == 0 || p.popTotal == 0 {
			continue // not a full recycle loop in this package
		}
		pushOK := p.pushReset == p.pushTotal
		popOK := p.popReset == p.popTotal
		if !pushOK && !popOK {
			s.pass.Reportf(p.firstPush,
				"pooled %s recycled through %s without reset evidence on every push or every pop (zero fields, call a Reset* method, or bump a generation counter before reuse)",
				p.elem.Name(), p.name)
		}
	}
}

// --- intra-procedural flow: use-after-release and escapes ---

// poolFlow walks one function's statements in order, tracking which
// pooled locals are pool-derived and which have been released.
type poolFlow struct {
	sum *poolSummary
	fd  *ast.FuncDecl
	// origin marks pool-derived locals (assigned from a getter call or
	// a free-list pop).
	origin map[types.Object]bool
	// released maps a released local to the position of the release.
	released map[types.Object]token.Pos
	// reported dedupes per-object reports.
	reported map[types.Object]bool
}

func checkPoolFlow(sum *poolSummary, fd *ast.FuncDecl) {
	fl := &poolFlow{
		sum:      sum,
		fd:       fd,
		origin:   make(map[types.Object]bool),
		released: make(map[types.Object]token.Pos),
		reported: make(map[types.Object]bool),
	}
	fl.stmts(fd.Body.List)
	fl.checkEscapes()
}

// stmts processes a statement list in order. Loop bodies are processed
// twice so a release at the bottom of a loop poisons uses at the top on
// the next iteration (the back edge).
func (fl *poolFlow) stmts(list []ast.Stmt) {
	for _, st := range list {
		fl.stmt(st)
	}
}

func (fl *poolFlow) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		// Uses on both sides happen before rebinding takes effect. A
		// plain identifier on the left is a write (the rebind itself),
		// not a read; only compound targets (v.f = x, *v = x, a[v] = x)
		// read the variable.
		for _, rhs := range st.Rhs {
			fl.checkUses(rhs)
		}
		for _, lhs := range st.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				continue
			}
			fl.checkUses(lhs)
		}
		fl.applyAssign(st)
		fl.applyReleases(st)
	case *ast.ExprStmt:
		fl.checkUses(st.X)
		fl.applyReleases(st)
	case *ast.DeferStmt:
		// A deferred release runs at function exit; it cannot poison
		// the body. Still check the arguments as uses.
		fl.checkUses(st.Call.Fun)
		for _, a := range st.Call.Args {
			fl.checkUses(a)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			fl.checkUses(r)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			fl.stmt(st.Init)
		}
		fl.checkUses(st.Cond)
		entry := fl.snapshot()
		fl.stmts(st.Body.List)
		if terminates(st.Body.List) {
			// The branch never falls through: its releases do not
			// reach the code after the if.
			fl.restore(entry)
		}
		if st.Else != nil {
			afterThen := fl.snapshot()
			fl.restore(entry)
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				fl.stmts(e.List)
				if terminates(e.List) {
					fl.restore(entry)
				}
			case *ast.IfStmt:
				fl.stmt(e)
			}
			// Join: released on either surviving branch stays released.
			fl.merge(afterThen)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			fl.stmt(st.Init)
		}
		if st.Cond != nil {
			fl.checkUses(st.Cond)
		}
		// Two passes: the second sees releases from the first via the
		// back edge. Terminating-branch releases (release+continue,
		// release+return) were already filtered by the if handling.
		fl.stmts(st.Body.List)
		if st.Post != nil {
			fl.stmt(st.Post)
		}
		fl.stmts(st.Body.List)
	case *ast.RangeStmt:
		fl.checkUses(st.X)
		fl.stmts(st.Body.List)
		fl.stmts(st.Body.List)
	case *ast.BlockStmt:
		fl.stmts(st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			fl.stmt(st.Init)
		}
		if st.Tag != nil {
			fl.checkUses(st.Tag)
		}
		entry := fl.snapshot()
		acc := fl.snapshot()
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			fl.restore(entry)
			for _, e := range cc.List {
				fl.checkUses(e)
			}
			fl.stmts(cc.Body)
			if !terminates(cc.Body) {
				acc = fl.mergeInto(acc)
			}
		}
		fl.restore(acc)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			fl.stmt(st.Init)
		}
		fl.stmts(st.Body.List)
	case *ast.SelectStmt:
		fl.stmts(st.Body.List)
	case *ast.CaseClause:
		fl.stmts(st.Body)
	case *ast.CommClause:
		if st.Comm != nil {
			fl.stmt(st.Comm)
		}
		fl.stmts(st.Body)
	case *ast.LabeledStmt:
		fl.stmt(st.Stmt)
	case *ast.IncDecStmt:
		fl.checkUses(st.X)
	case *ast.SendStmt:
		fl.checkUses(st.Chan)
		fl.checkUses(st.Value)
	case *ast.GoStmt:
		fl.checkUses(st.Call.Fun)
		for _, a := range st.Call.Args {
			fl.checkUses(a)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fl.checkUses(v)
					}
				}
			}
		}
	}
}

// snapshot/restore/merge manage the released set across branches.
func (fl *poolFlow) snapshot() map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(fl.released))
	for k, v := range fl.released {
		out[k] = v
	}
	return out
}

func (fl *poolFlow) restore(s map[types.Object]token.Pos) {
	fl.released = make(map[types.Object]token.Pos, len(s))
	for k, v := range s {
		fl.released[k] = v
	}
}

func (fl *poolFlow) merge(other map[types.Object]token.Pos) {
	for k, v := range other {
		if _, ok := fl.released[k]; !ok {
			fl.released[k] = v
		}
	}
}

func (fl *poolFlow) mergeInto(base map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(base))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range fl.released {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// applyAssign updates origin/released for an assignment: a variable
// assigned from a getter call or free-list pop becomes pool-derived;
// any rebinding clears its released state.
func (fl *poolFlow) applyAssign(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		obj := lhsObj(fl.sum.pass.Info, lhs)
		if obj == nil || fl.sum.pooledElem(obj.Type()) == nil {
			continue
		}
		delete(fl.released, obj)
		if i < len(st.Rhs) {
			rhs := ast.Unparen(st.Rhs[i])
			if call, ok := rhs.(*ast.CallExpr); ok {
				if callee := staticCallee(fl.sum.pass.Info, call); callee != nil && fl.sum.getters[callee] {
					fl.origin[obj] = true
					continue
				}
			}
			if ix, ok := rhs.(*ast.IndexExpr); ok {
				if field, _ := fl.sum.freeListField(ix.X); field != nil {
					fl.origin[obj] = true
				}
			}
		}
	}
}

// applyReleases marks locals released by calls (or zeroing) in st.
func (fl *poolFlow) applyReleases(st ast.Stmt) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fl.applyCallReleases(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
					if obj := identObj(fl.sum.pass.Info, star.X); obj != nil && fl.sum.pooledElem(obj.Type()) != nil {
						// *v = T{} through a local: treat as release
						// only when v is pool-derived (zeroing an
						// owned value is initialization, not release).
						if fl.origin[obj] {
							fl.released[obj] = n.Pos()
						}
					}
				}
			}
		}
		return true
	})
}

func (fl *poolFlow) applyCallReleases(call *ast.CallExpr) {
	callee := staticCallee(fl.sum.pass.Info, call)
	if callee == nil {
		return
	}
	released := fl.sum.releasers[callee]
	if len(released) == 0 {
		return
	}
	mark := func(e ast.Expr) {
		a := ast.Unparen(e)
		if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
			a = u.X
		}
		if obj := identObj(fl.sum.pass.Info, a); obj != nil && fl.sum.pooledElem(obj.Type()) != nil {
			fl.released[obj] = call.Pos()
		}
	}
	if released[-1] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			mark(sel.X)
		}
	}
	for i, arg := range call.Args {
		if released[i] {
			mark(arg)
		}
	}
}

// checkUses reports reads of released locals inside e, skipping the
// argument position of the release call itself (handled by ordering:
// releases apply after the statement's uses are checked).
func (fl *poolFlow) checkUses(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies are checked by checkEscapes
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := declOrUseObj(fl.sum.pass.Info, id)
		if obj == nil {
			return true
		}
		if pos, ok := fl.released[obj]; ok && !fl.reported[obj] {
			rel := fl.sum.pass.Fset.Position(pos)
			fl.sum.pass.Reportf(id.Pos(),
				"use of pooled %s %q after it was released at line %d; the next pool hit aliases it",
				fl.sum.pooledElem(obj.Type()).Name(), id.Name, rel.Line)
			fl.reported[obj] = true
		}
		return true
	})
}

// checkEscapes reports pool-derived locals that outlive their lease:
// captured by a closure or stored into a package-level variable.
func (fl *poolFlow) checkEscapes() {
	info := fl.sum.pass.Info
	ast.Inspect(fl.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || !fl.origin[obj] {
					return true
				}
				if fl.reported[obj] {
					return true
				}
				fl.sum.pass.Reportf(id.Pos(),
					"pool-derived %s %q captured by closure; a pooled value must not outlive its lease (use a static callback with the value as argument)",
					fl.sum.pooledElem(obj.Type()).Name(), id.Name)
				fl.reported[obj] = true
				return true
			})
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhsObj := identObj(info, ast.Unparen(n.Rhs[i]))
				if rhsObj == nil || !fl.origin[rhsObj] {
					continue
				}
				if root := packageLevelRoot(info, lhs); root != nil {
					fl.sum.pass.Reportf(n.Pos(),
						"pool-derived %s %q stored into package-level %s; pooled values must stay within their lease",
						fl.sum.pooledElem(rhsObj.Type()).Name(), rhsObj.Name(), root.Name())
				}
			}
		}
		return true
	})
}

// packageLevelRoot returns the package-level variable at the root of an
// assignment target, or nil.
func packageLevelRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Only follow selectors rooted at a plain identifier; a
			// field store through a local receiver is legitimate
			// (waiter queues hold pooled pointers by design).
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				e = id
				continue
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// terminates reports whether a statement list cannot fall through:
// its last statement is a return, branch, panic, or an if/else where
// both arms terminate (mirrors go/types' terminating statements closely
// enough for release-flow purposes).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminatingStmt(list[len(list)-1])
}

func terminatingStmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.IfStmt:
		if st.Else == nil {
			return false
		}
		elseTerm := false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseTerm = terminatingStmt(e)
		}
		return terminates(st.Body.List) && elseTerm
	case *ast.BlockStmt:
		return terminates(st.List)
	case *ast.LabeledStmt:
		return terminatingStmt(st.Stmt)
	}
	return false
}

// lhsObj resolves an assignment target identifier (defined or used).
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return declOrUseObj(info, id)
}
