package lint

import (
	"errors"
	"strings"
	"testing"
)

func TestParseDirectiveValid(t *testing.T) {
	d, ok, err := ParseDirective("//rtlint:allow maprange commutative Max fold, no side effects")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if d.Analyzer != "maprange" {
		t.Errorf("analyzer = %q", d.Analyzer)
	}
	if d.Reason != "commutative Max fold, no side effects" {
		t.Errorf("reason = %q", d.Reason)
	}
}

func TestParseDirectiveNotADirective(t *testing.T) {
	for _, text := range []string{
		"// plain comment",
		"//go:generate stringer",
		"//nolint:errcheck",
		"/* block */",
		"//",
	} {
		if _, ok, err := ParseDirective(text); ok || err != nil {
			t.Errorf("%q: ok=%v err=%v, want inert", text, ok, err)
		}
	}
}

// TestParseDirectiveMalformed pins down that broken directives are
// reported, never silently ignored: each is recognized as an attempted
// directive (ok=true) carrying an error.
func TestParseDirectiveMalformed(t *testing.T) {
	cases := []struct {
		text string
		want error
	}{
		{"//rtlint:allow", ErrDirectiveAnalyzer},
		{"//rtlint:allow   ", ErrDirectiveAnalyzer},
		{"//rtlint:allow maprange", ErrDirectiveReason},
		{"//rtlint:allow maprange   ", ErrDirectiveReason},
		{"//rtlint:allow map-range because", ErrDirectiveBadName},
		{"//rtlint:allow MapRange because", ErrDirectiveBadName},
		{"//rtlint:allow 2maprange because", ErrDirectiveBadName},
		{"//rtlint:deny maprange because", ErrDirectiveVerb},
		{"//rtlint:allowmaprange because", ErrDirectiveVerb},
		{"//rtlint:", ErrDirectiveVerb},
		{"// rtlint:allow maprange because", ErrDirectiveSpace},
		{"//  rtlint:allow maprange because", ErrDirectiveSpace},
		{"/*rtlint:allow maprange because*/", ErrDirectiveSpace},
	}
	for _, c := range cases {
		_, ok, err := ParseDirective(c.text)
		if !ok {
			t.Errorf("%q: not recognized as a directive attempt", c.text)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%q: err = %v, want %v", c.text, err, c.want)
		}
	}
}

// TestDirectiveTrailingReasonKept checks that everything after the
// analyzer name is the reason, whitespace-normalized.
func TestDirectiveTrailingReasonKept(t *testing.T) {
	d, ok, err := ParseDirective("//rtlint:allow selectorder   reason   with\tmixed   spacing")
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if d.Reason != "reason with mixed spacing" {
		t.Errorf("reason = %q", d.Reason)
	}
}

// FuzzDirective asserts the parser never panics and never both accepts
// and errors inconsistently, for arbitrary comment text.
func FuzzDirective(f *testing.F) {
	seeds := []string{
		"//rtlint:allow maprange commutative fold",
		"//rtlint:allow wallclock reason",
		"//rtlint:allow maprange",
		"//rtlint:allow",
		"//rtlint:deny maprange x",
		"//rtlint:",
		"//rtlint:allow map-range why",
		"// rtlint:allow maprange why",
		"/*rtlint:allow maprange why*/",
		"// want \"foo\"",
		"//go:build linux",
		"//",
		"",
		"//rtlint:allow maprange \x00\xff",
		"//rtlint:allow m reason",
		"//rtlint:allow maprange\treason",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, err := ParseDirective(text)
		if !ok && err != nil {
			t.Fatalf("%q: error %v on a non-directive", text, err)
		}
		if ok && err == nil {
			if !validAnalyzerName(d.Analyzer) {
				t.Fatalf("%q: accepted invalid analyzer name %q", text, d.Analyzer)
			}
			if strings.TrimSpace(d.Reason) == "" {
				t.Fatalf("%q: accepted empty reason", text)
			}
			if !strings.HasPrefix(text, "//rtlint:allow") {
				t.Fatalf("%q: accepted without the canonical prefix", text)
			}
		}
	})
}
