package lint

import (
	"go/ast"
)

// SelectOrder flags multi-case select statements in simulation
// packages. When more than one case is ready the runtime picks
// uniformly at random, so the chosen branch — and everything downstream
// of it — differs between runs. The kernel's single-runner handshake
// needs only single-case sends and receives; anything that looks like
// it needs a racing select should be restructured as kernel events.
var SelectOrder = &Analyzer{
	Name: "selectorder",
	Doc:  "flags multi-case select statements, whose ready-case choice is randomized by the runtime",
	Run:  runSelectOrder,
}

func runSelectOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			cases := len(sel.Body.List)
			if cases <= 1 {
				return true
			}
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				pass.Reportf(sel.Select, "select with a default clause polls nondeterministically; restructure as kernel events")
			} else {
				pass.Reportf(sel.Select, "select with %d cases chooses a ready case at random; restructure as kernel events", cases)
			}
			return true
		})
	}
	return nil
}
