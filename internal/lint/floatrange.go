package lint

import (
	"go/ast"
	"go/token"
)

// FloatRange flags floating-point accumulation inside a map range.
// Float addition is not associative: summing the same values in two
// different map orders yields different low bits, which then reach
// reported aggregates (miss percentages, throughput means) and break
// replay comparisons. Accumulate over a sorted slice instead, or fold
// with an order-insensitive operation.
var FloatRange = &Analyzer{
	Name: "floatrange",
	Doc:  "flags floating-point accumulation inside map ranges, where summation order changes the result",
	Run:  runFloatRange,
}

func runFloatRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.Info, rs) {
				return true
			}
			ast.Inspect(rs.Body, func(bn ast.Node) bool {
				as, ok := bn.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if pos, ok := floatAccumulation(pass, as); ok {
					pass.Reportf(pos, "floating-point accumulation inside a map range depends on iteration order; sum over a sorted slice instead")
				}
				return true
			})
			return true
		})
	}
	return nil
}

// floatAccumulation matches `x += e`, `x -= e`, `x *= e`, `x /= e`, and
// `x = x + e` forms with a float-typed target.
func floatAccumulation(pass *Pass, as *ast.AssignStmt) (token.Pos, bool) {
	if len(as.Lhs) != 1 {
		return token.NoPos, false
	}
	lhs := as.Lhs[0]
	t := pass.Info.TypeOf(lhs)
	if t == nil || !isFloatType(t) {
		return token.NoPos, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return as.TokPos, true
	case token.ASSIGN:
	default:
		return token.NoPos, false
	}
	// x = x <op> e (or x = e <op> x): the target feeds its own update.
	lid, ok := lhs.(*ast.Ident)
	if !ok {
		return token.NoPos, false
	}
	lobj := declOrUseObj(pass.Info, lid)
	if lobj == nil || len(as.Rhs) != 1 {
		return token.NoPos, false
	}
	bin, ok := as.Rhs[0].(*ast.BinaryExpr)
	if !ok {
		return token.NoPos, false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return token.NoPos, false
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if id, ok := side.(*ast.Ident); ok && pass.Info.Uses[id] == lobj {
			return as.TokPos, true
		}
	}
	return token.NoPos, false
}
