package lint

import (
	"go/token"
	"sort"
)

// WallClock forbids reading or waiting on the real clock inside
// simulation packages. The discrete-event kernel owns time: virtual
// sim.Time advances only through the event heap, so a time.Now or
// time.Sleep smuggles wall-clock nondeterminism into an execution that
// must replay byte-identically. time.Duration constants remain legal —
// they are plain numbers.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Sleep/After/Since and timer types in simulation packages; use virtual sim.Time",
	Run:  runWallClock,
}

// wallClockBanned lists the package-level names of "time" that read or
// schedule against the real clock.
var wallClockBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
	"Timer": true, "Ticker": true,
}

func runWallClock(pass *Pass) error {
	report := collectUses(pass, func(pkgPath, name string) bool {
		return pkgPath == "time" && wallClockBanned[name]
	})
	for _, u := range report {
		pass.Reportf(u.pos, "time.%s reads the wall clock; simulation code must use virtual sim.Time (kernel After/Sleep)", u.name)
	}
	return nil
}

// use is one flagged identifier occurrence.
type use struct {
	pos  token.Pos
	name string
}

// collectUses scans the package's resolved identifier uses and returns
// the matching ones in stable position order (types.Info maps iterate
// randomly; sorting here keeps rtlint's own output deterministic).
func collectUses(pass *Pass, match func(pkgPath, name string) bool) []use {
	var out []use
	//rtlint:allow maprange uses are gathered into a slice and sorted by position below
	for id, obj := range pass.Info.Uses {
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		if obj.Parent() != obj.Pkg().Scope() {
			continue // methods, fields, locals — not package-level names
		}
		if match(obj.Pkg().Path(), obj.Name()) {
			out = append(out, use{pos: id.Pos(), name: obj.Name()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}
