package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //rtlint:allow comment.
type Directive struct {
	// Analyzer is the check being suppressed.
	Analyzer string
	// Reason is the mandatory free-text justification.
	Reason string
	// Position is where the directive comment starts.
	Position token.Position

	// used is set when a diagnostic was actually suppressed; unused
	// directives are reported as stale.
	used bool
}

// Directive parse errors, matched by tests.
var (
	ErrDirectiveVerb     = errors.New("unknown rtlint directive verb (supported: allow, pooled, allocfree, pure=journal)")
	ErrDirectiveAnalyzer = errors.New("rtlint:allow needs an analyzer name")
	ErrDirectiveBadName  = errors.New("rtlint:allow analyzer name must be lowercase letters and digits")
	ErrDirectiveReason   = errors.New("rtlint:allow needs a reason after the analyzer name")
	ErrDirectiveSpace    = errors.New("rtlint directives must start exactly with //rtlint: (no space, no block comment)")
)

// Marker parse errors.
var (
	ErrMarkerArgs   = errors.New("rtlint marker takes no arguments")
	ErrMarkerDomain = errors.New("rtlint:pure only supports the \"journal\" domain (//rtlint:pure=journal)")
)

// markerVerb reports whether verb names a marker directive (an
// annotation that tags a declaration for an analyzer, as opposed to an
// //rtlint:allow suppression).
func markerVerb(verb string) bool {
	return verb == "pooled" || verb == "allocfree" ||
		verb == "pure" || strings.HasPrefix(verb, "pure=")
}

// ParseDirective parses one comment's text (including the // or /*
// marker, as go/ast stores it). It returns ok=false when the comment is
// not an rtlint directive at all, and a non-nil error when it tries to
// be one but is malformed — malformed directives are diagnostics, never
// silently ignored suppressions.
func ParseDirective(text string) (Directive, bool, error) {
	const prefix = "//rtlint:"
	if !strings.HasPrefix(text, prefix) {
		// Catch near-misses that a reader would believe are active:
		// "// rtlint:allow ..." or "/*rtlint:allow ...*/".
		trimmed := text
		trimmed = strings.TrimPrefix(trimmed, "//")
		trimmed = strings.TrimPrefix(trimmed, "/*")
		trimmed = strings.TrimSpace(strings.TrimSuffix(trimmed, "*/"))
		if strings.HasPrefix(trimmed, "rtlint:") {
			return Directive{}, true, ErrDirectiveSpace
		}
		return Directive{}, false, nil
	}
	rest := text[len(prefix):]
	verb := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, rest = rest[:i], rest[i+1:]
	} else {
		rest = ""
	}
	if verb != "allow" {
		if markerVerb(verb) {
			// Marker directives (//rtlint:pooled, //rtlint:allocfree,
			// //rtlint:pure=journal) are parsed by ParseMarker; they are
			// not suppressions.
			return Directive{}, false, nil
		}
		return Directive{}, true, fmt.Errorf("%w: %q", ErrDirectiveVerb, verb)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{}, true, ErrDirectiveAnalyzer
	}
	name := fields[0]
	if !validAnalyzerName(name) {
		return Directive{}, true, fmt.Errorf("%w: %q", ErrDirectiveBadName, name)
	}
	reason := strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		return Directive{Analyzer: name}, true, ErrDirectiveReason
	}
	return Directive{Analyzer: name, Reason: reason}, true, nil
}

func validAnalyzerName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// fileDirectives extracts every directive (and every malformed attempt,
// as a diagnostic) from one file's comments.
func fileDirectives(fset *token.FileSet, f *ast.File) (ds []*Directive, malformed []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, isDirective, err := ParseDirective(c.Text)
			if !isDirective {
				continue
			}
			pos := fset.Position(c.Pos())
			if err != nil {
				malformed = append(malformed, Diagnostic{
					Analyzer: MetaAnalyzerName,
					Position: pos,
					Message:  "malformed suppression: " + err.Error(),
				})
				continue
			}
			d.Position = pos
			dd := d
			ds = append(ds, &dd)
		}
	}
	return ds, malformed
}
