package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// callSite is one statically resolvable call inside a function body.
type callSite struct {
	pos    ast.Node
	callee *types.Func
}

// funcInfo is the per-function call summary the cross-package analyzers
// consume: the static callees, plus domain facts about the body.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	// calls are the statically resolved call sites, in source order.
	calls []callSite
	// mutatesJournal is set when the body writes a field of
	// journal.Journal (append to j.records, reset of j.encBuf, ...).
	mutatesJournal bool
}

// pkgGraph is one package's call summary.
type pkgGraph struct {
	pkg   *Package
	funcs map[*types.Func]*funcInfo
}

// Resolver gives analyzers whole-module context: it loads dependency
// packages on demand and memoizes their call summaries and marker sets,
// so an analyzer looking at internal/metrics can chase a call into
// internal/txn and ask whether it ever reaches a journal mutation, or
// whether an imported type is //rtlint:pooled. It is built on the same
// stdlib-only loader the runner uses.
type Resolver struct {
	modPath string
	lookup  func(importPath string) (*Package, error)

	graphs  map[string]*pkgGraph
	markers map[string]*pkgMarkers

	// reach memoizes reachesJournalMutation per function.
	reach map[*types.Func]reachState
}

type reachState struct {
	status int // 0 unknown, 1 visiting, 2 no, 3 yes
	// next is the first hop of a mutation-reaching path (nil when the
	// function itself mutates).
	next *types.Func
}

// NewResolver builds a resolver over a loader (or any compatible lookup
// function).
func NewResolver(l *Loader) *Resolver {
	return &Resolver{
		modPath: l.ModPath,
		lookup:  l.Load,
		graphs:  make(map[string]*pkgGraph),
		markers: make(map[string]*pkgMarkers),
		reach:   make(map[*types.Func]reachState),
	}
}

// inModule reports whether the package is loadable from module source
// (the standard library is opaque to the resolver and treated as
// journal-pure and pool-free).
func (r *Resolver) inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == r.modPath || strings.HasPrefix(path, r.modPath+"/")
}

// graphFor loads and summarizes a package by import path, memoized.
// Load errors surface as a nil graph: the callers treat unresolvable
// packages as opaque.
func (r *Resolver) graphFor(path string) *pkgGraph {
	if g, ok := r.graphs[path]; ok {
		return g
	}
	pkg, err := r.lookup(path)
	if err != nil {
		r.graphs[path] = nil
		return nil
	}
	g := buildPkgGraph(pkg)
	r.graphs[path] = g
	return g
}

// graphForPackage registers an already-loaded package (the one under
// analysis, which may be an ad-hoc fixture directory the lookup cannot
// reach by import path).
func (r *Resolver) graphForPackage(pkg *Package) *pkgGraph {
	if g, ok := r.graphs[pkg.Path]; ok && g != nil {
		return g
	}
	g := buildPkgGraph(pkg)
	r.graphs[pkg.Path] = g
	return g
}

// markersFor resolves another package's marker annotations, memoized.
func (r *Resolver) markersFor(path string) *pkgMarkers {
	if m, ok := r.markers[path]; ok {
		return m
	}
	pkg, err := r.lookup(path)
	if err != nil {
		r.markers[path] = nil
		return nil
	}
	m := collectMarkers(pkg)
	r.markers[path] = m
	return m
}

// PooledType reports whether a named type is //rtlint:pooled, resolving
// the marker from the type's defining package.
func (r *Resolver) PooledType(tn *types.TypeName) bool {
	if tn == nil || !r.inModule(tn.Pkg()) {
		return false
	}
	return r.markersFor(tn.Pkg().Path()).isPooled(tn)
}

// buildPkgGraph walks every function body of the package and records
// its static call sites and journal-mutation facts.
func buildPkgGraph(pkg *Package) *pkgGraph {
	g := &pkgGraph{pkg: pkg, funcs: make(map[*types.Func]*funcInfo)}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if callee := staticCallee(pkg.Info, n); callee != nil {
						fi.calls = append(fi.calls, callSite{pos: n, callee: callee})
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if writesJournalField(pkg.Info, lhs) {
							fi.mutatesJournal = true
						}
					}
				case *ast.IncDecStmt:
					if writesJournalField(pkg.Info, n.X) {
						fi.mutatesJournal = true
					}
				}
				return true
			})
			g.funcs[obj] = fi
		}
	}
	return g
}

// staticCallee resolves a call expression to the function or method it
// statically invokes, or nil for dynamic calls (interface methods stay
// resolvable to their interface declaration), conversions, and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// writesJournalField reports whether the assignment target is a field
// selector on a journal.Journal value.
func writesJournalField(info *types.Info, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return isJournalType(tv.Type)
}

// isJournalType reports whether t (possibly behind a pointer) is the
// journal.Journal struct.
func isJournalType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Journal" {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/journal")
}

// ReachesJournalMutation reports whether fn can transitively reach a
// function that writes journal.Journal state, following statically
// resolvable calls through module source. chain names the path's hops
// from fn down to (and including) the mutating function; it is nil when
// fn itself mutates. Dynamic dispatch and function values are outside
// the static closure; journalpurity documents that boundary.
func (r *Resolver) ReachesJournalMutation(fn *types.Func) (bool, []*types.Func) {
	if !r.reaches(fn) {
		return false, nil
	}
	var chain []*types.Func
	for hop := r.reach[fn].next; hop != nil; hop = r.reach[hop].next {
		chain = append(chain, hop)
		if len(chain) > 32 { // defensive: memo chains are acyclic by construction
			break
		}
	}
	return true, chain
}

func (r *Resolver) reaches(fn *types.Func) bool {
	if st, ok := r.reach[fn]; ok {
		switch st.status {
		case 1: // visiting: break the cycle; another path must prove it
			return false
		case 2:
			return false
		case 3:
			return true
		}
	}
	pkg := fn.Pkg()
	if !r.inModule(pkg) {
		r.reach[fn] = reachState{status: 2}
		return false
	}
	g := r.graphFor(pkg.Path())
	var fi *funcInfo
	if g != nil {
		fi = g.funcs[fn]
	}
	if fi == nil {
		// No body available (interface method, external declaration):
		// opaque, assumed pure.
		r.reach[fn] = reachState{status: 2}
		return false
	}
	if fi.mutatesJournal {
		r.reach[fn] = reachState{status: 3}
		return true
	}
	r.reach[fn] = reachState{status: 1}
	for _, cs := range fi.calls {
		if cs.callee == fn {
			continue
		}
		if r.reaches(cs.callee) {
			r.reach[fn] = reachState{status: 3, next: cs.callee}
			return true
		}
	}
	r.reach[fn] = reachState{status: 2}
	return false
}
