package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate: running rtlint over the real
// repository must produce zero findings. Every remaining map range (or
// other hazard) in a sim-critical package needs a fix or a justified
// //rtlint:allow.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

const seededViolations = `// Package sim holds one seeded violation per analyzer.
package sim

import (
	"math/rand"
	"time"
)

type Event struct{ ID int64 }

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Jitter() float64 {
	return rand.Float64()
}

func Pump(in, out chan Event) Event {
	go func() { out <- <-in }()
	select {
	case e := <-in:
		return e
	case e := <-out:
		return e
	}
}

func Drain(pending map[int64]Event) []Event {
	var order []Event
	for _, e := range pending {
		order = append(order, e)
	}
	return order
}

func Load(weights map[int64]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return total
}

// Slot is pooled, so reading it after recycling is a seeded
// use-after-release for poolsafety.
//
//rtlint:pooled
type Slot struct{ v int64 }

type slotPool struct{ freeSlots []*Slot }

func (p *slotPool) get() *Slot {
	if n := len(p.freeSlots); n > 0 {
		s := p.freeSlots[n-1]
		p.freeSlots = p.freeSlots[:n-1]
		s.v = 0
		return s
	}
	return &Slot{}
}

func (p *slotPool) put(s *Slot) {
	s.v = 0
	p.freeSlots = append(p.freeSlots, s)
}

func UseAfterFree(p *slotPool) int64 {
	s := p.get()
	p.put(s)
	return s.v
}
`

// seededJournal is a minimal stand-in for the real journal package: a
// Journal type with a field-writing method, which is exactly what the
// journal-purity mutator detection keys on.
const seededJournal = `// Package journal is a stand-in with one mutating method.
package journal

type Journal struct{ n int }

func (j *Journal) Append(v int) { j.n += v }

func (j *Journal) Len() int { return j.n }
`

// seededMetrics violates journal purity: internal/metrics is pure by
// default policy, and it calls the journal's mutator.
const seededMetrics = `// Package metrics holds the seeded journal-purity violation.
package metrics

import "rtlock/internal/journal"

func Observe(j *journal.Journal) int {
	j.Append(1)
	return j.Len()
}
`

// TestSeededViolations builds a throwaway module seeded with one
// violation per analyzer and checks each fires with a positioned
// diagnostic — the "seeding a synthetic violation makes rtlint exit
// non-zero" acceptance criterion, minus the process boundary
// (cmd/rtlint exits 1 whenever Run returns findings). The only analyzer
// excused is allocfree, which needs compiler escape evidence and has its
// own seeded test below.
func TestSeededViolations(t *testing.T) {
	root := t.TempDir()
	for dir, content := range map[string]string{
		filepath.Join("internal", "sim"):     seededViolations,
		filepath.Join("internal", "journal"): seededJournal,
		filepath.Join("internal", "metrics"): seededMetrics,
	} {
		full := filepath.Join(root, dir)
		if err := os.MkdirAll(full, 0o755); err != nil {
			t.Fatal(err)
		}
		writeFile(t, filepath.Join(full, "bad.go"), content)
	}
	writeFile(t, filepath.Join(root, "go.mod"), "module rtlock\n\ngo 1.22\n")

	diags, err := Run(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	fired := map[string][]Diagnostic{}
	for _, d := range diags {
		fired[d.Analyzer] = append(fired[d.Analyzer], d)
		if d.Position.Filename == "" || d.Position.Line == 0 {
			t.Errorf("diagnostic without a position: %+v", d)
		}
		if filepath.Base(d.Position.Filename) != "bad.go" {
			t.Errorf("diagnostic attributed to the wrong file: %s", d)
		}
	}
	for _, a := range Analyzers() {
		if a.Name == AllocFree.Name {
			continue
		}
		if len(fired[a.Name]) == 0 {
			t.Errorf("seeded violation for %s not detected", a.Name)
		}
	}
}

// seededEscape is a module whose annotated function provably allocates:
// returning &v forces v to the heap, which -m=2 reports inside the
// annotated body.
const seededEscape = `// Package sim holds one seeded allocfree violation.
package sim

// Box leaks its parameter to the heap on purpose.
//
//rtlint:allocfree
func Box(v int64) *int64 {
	return &v
}
`

// TestSeededAllocFreeViolation runs the real escape pipeline — a `go
// build -gcflags=-m=2` over a throwaway module — and checks the
// annotation catches the seeded escape.
func TestSeededAllocFreeViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	root := t.TempDir()
	simDir := filepath.Join(root, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "go.mod"), "module rtlock\n\ngo 1.22\n")
	writeFile(t, filepath.Join(simDir, "bad.go"), seededEscape)

	rep, err := CollectEscapes(root, []string{"./..."})
	if err != nil {
		t.Fatalf("collecting escapes: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Escapes = rep
	diags, err := Run(root, []string{"./..."}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == AllocFree.Name && strings.Contains(d.Message, "Box") {
			found = true
		}
	}
	if !found {
		t.Errorf("seeded escape in annotated Box not detected; got %v", diags)
	}
}

// TestRepoIsCleanWithEscapes is the escape-backed acceptance gate: the
// full pipeline cmd/rtlint runs in CI — compiler escape evidence
// included — must stay finding-free over the real repository.
func TestRepoIsCleanWithEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole module with -m=2")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := CollectEscapesCached(root, t.TempDir(), []string{"./..."})
	if err != nil {
		t.Fatalf("collecting escapes: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Escapes = rep
	diags, err := Run(root, []string{"./..."}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean under escape evidence: %s", d)
	}
}

// TestSeededViolationOutsideSimPackagesIgnored checks scope: the same
// file in a package outside SimCriticalPkgs is not analyzed.
func TestSeededViolationOutsideSimPackagesIgnored(t *testing.T) {
	root := t.TempDir()
	toolDir := filepath.Join(root, "internal", "tools")
	if err := os.MkdirAll(toolDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "go.mod"), "module rtlock\n\ngo 1.22\n")
	writeFile(t, filepath.Join(toolDir, "bad.go"),
		strings.Replace(seededViolations, "package sim", "package tools", 1))

	diags, err := Run(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("non-sim-critical package was analyzed: %v", diags)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
