package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate: running rtlint over the real
// repository must produce zero findings. Every remaining map range (or
// other hazard) in a sim-critical package needs a fix or a justified
// //rtlint:allow.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

const seededViolations = `// Package sim holds one seeded violation per analyzer.
package sim

import (
	"math/rand"
	"time"
)

type Event struct{ ID int64 }

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Jitter() float64 {
	return rand.Float64()
}

func Pump(in, out chan Event) Event {
	go func() { out <- <-in }()
	select {
	case e := <-in:
		return e
	case e := <-out:
		return e
	}
}

func Drain(pending map[int64]Event) []Event {
	var order []Event
	for _, e := range pending {
		order = append(order, e)
	}
	return order
}

func Load(weights map[int64]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return total
}
`

// TestSeededViolations builds a throwaway module whose internal/sim
// package violates all six analyzers and checks each one fires with a
// positioned diagnostic — the "seeding a synthetic violation makes
// rtlint exit non-zero" acceptance criterion, minus the process
// boundary (cmd/rtlint exits 1 whenever Run returns findings).
func TestSeededViolations(t *testing.T) {
	root := t.TempDir()
	simDir := filepath.Join(root, "internal", "sim")
	if err := os.MkdirAll(simDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "go.mod"), "module rtlock\n\ngo 1.22\n")
	writeFile(t, filepath.Join(simDir, "bad.go"), seededViolations)

	diags, err := Run(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	fired := map[string][]Diagnostic{}
	for _, d := range diags {
		fired[d.Analyzer] = append(fired[d.Analyzer], d)
		if d.Position.Filename == "" || d.Position.Line == 0 {
			t.Errorf("diagnostic without a position: %+v", d)
		}
		if !strings.HasSuffix(d.Position.Filename, filepath.Join("internal", "sim", "bad.go")) {
			t.Errorf("diagnostic attributed to the wrong file: %s", d)
		}
	}
	for _, a := range Analyzers() {
		if len(fired[a.Name]) == 0 {
			t.Errorf("seeded violation for %s not detected", a.Name)
		}
	}
}

// TestSeededViolationOutsideSimPackagesIgnored checks scope: the same
// file in a package outside SimCriticalPkgs is not analyzed.
func TestSeededViolationOutsideSimPackagesIgnored(t *testing.T) {
	root := t.TempDir()
	toolDir := filepath.Join(root, "internal", "tools")
	if err := os.MkdirAll(toolDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "go.mod"), "module rtlock\n\ngo 1.22\n")
	writeFile(t, filepath.Join(toolDir, "bad.go"),
		strings.Replace(seededViolations, "package sim", "package tools", 1))

	diags, err := Run(root, []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("non-sim-critical package was analyzed: %v", diags)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
