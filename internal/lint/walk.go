package lint

import (
	"go/ast"
	"go/types"
)

// parentMap records each node's syntactic parent within one file, so
// analyzers can climb from a finding to its enclosing block.
type parentMap map[ast.Node]ast.Node

func buildParents(f *ast.File) parentMap {
	parents := make(parentMap)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingStmts returns the statement list containing stmt and stmt's
// index in it, climbing through the parent map to the nearest block or
// case body. ok is false at the top level of a function literal used as
// an expression, etc.
func enclosingStmts(parents parentMap, stmt ast.Stmt) (list []ast.Stmt, idx int, ok bool) {
	parent := parents[stmt]
	switch p := parent.(type) {
	case *ast.BlockStmt:
		list = p.List
	case *ast.CaseClause:
		list = p.Body
	case *ast.CommClause:
		list = p.Body
	default:
		return nil, 0, false
	}
	for i, s := range list {
		if s == stmt {
			return list, i, true
		}
	}
	return nil, 0, false
}

// isMapRange reports whether rs ranges over a map-typed expression.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// identObj resolves an expression to the object of a plain identifier,
// or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// declOrUseObj resolves an identifier whether it is being defined (:=)
// or used (=).
func declOrUseObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isIntegerType reports whether t's underlying type is an integer kind
// (order-insensitive under + and ^).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloatType reports whether t's underlying type is a float or complex
// kind, whose accumulation order changes results.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// exprString renders a short source-ish form of an expression for
// diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return "expression"
	}
}
