// Package journalpurity is a golden fixture for the journal-purity
// analyzer: the package declares itself journal-pure below, so any call
// path that reaches a function mutating journal.Journal state is a
// finding, while read-only observation stays silent.
//
//rtlint:pure=journal
package journalpurity

import (
	"io"

	"rtlock/internal/journal"
)

// readSide only observes the journal: reads are the whole point of
// purity and stay silent.
func readSide(j *journal.Journal) int {
	return j.Len() + len(j.Records())
}

// writeSide appends a record: a direct call to a mutator.
func writeSide(j *journal.Journal) {
	j.Append(0, 0, 0, 1, 0, 0, 0, "") // want "journal-pure package calls .*Append, which mutates journal.Journal state"
}

// encode reaches mutation through the encoder's buffer reuse
// (EncodeBinary writes the journal's scratch buffer field).
func encode(j *journal.Journal, w io.Writer) error {
	return j.EncodeBinary(w) // want "journal-pure package calls .*EncodeBinary, which mutates journal.Journal state"
}

// helper shows the finding lands at the mutating call inside the local
// callee, not at the local call site (same-package callees report at
// their own bodies).
func helper(j *journal.Journal) {
	writeLocal(j)
}

func writeLocal(j *journal.Journal) {
	j.Reset(0, "") // want "journal-pure package calls .*Reset, which mutates journal.Journal state"
}

// allowed exercises a justified suppression of a pure-package mutation.
func allowed(j *journal.Journal) {
	j.Reset(0, "") //rtlint:allow journalpurity fixture exercises suppression; this reset runs only in test teardown
}
