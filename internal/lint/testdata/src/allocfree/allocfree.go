// Package allocfree is a golden fixture for the allocation-freedom
// analyzer. The harness synthesizes the escape report from the
// "/* escape: ... */" comments below — each one stands in for a
// `go build -gcflags=-m=2` diagnostic at its own line — so the fixture
// pins the annotation matching without invoking the compiler.
package allocfree

type evt struct{ n int }

// hot is annotated and has an escape inside its body: a finding carrying
// the compiler's message.
//
//rtlint:allocfree
func hot() *evt {
	e := &evt{} /* escape: &evt literal escapes to heap */ /* want "heap escape in //rtlint:allocfree hot: &evt literal escapes to heap" */
	return e
}

// cold is annotated and clean: silent.
//
//rtlint:allocfree
func cold(e *evt) int { return e.n }

// unannotated escapes but made no claim: silent.
func unannotated() *evt {
	return &evt{} /* escape: &evt literal escapes to heap */
}

// between documents that escapes outside any annotated body are ignored.
var between = func() *evt {
	return &evt{} /* escape: &evt literal escapes to heap */
}

// allowed exercises the pool-miss idiom: a justified suppression on the
// escaping line.
//
//rtlint:allocfree
func allowed() *evt {
	return &evt{} /* escape: &evt literal escapes to heap */ //rtlint:allow allocfree fixture pool-miss growth path, amortized to zero in steady state
}
