// Package poolsafety is a golden fixture for the pool-safety analyzer:
// use-after-release, closure and package-level escapes, and reset-less
// recycling of //rtlint:pooled values are findings; releases inside
// terminating branches, rebinding, and field stores through locals are
// the sanctioned patterns and stay silent.
package poolsafety

// item is a pooled hot-path record.
//
//rtlint:pooled
type item struct {
	id   int64
	next *item
}

// bag is a pooled record recycled without any reset evidence; its pool
// below trips the reset-discipline check.
//
//rtlint:pooled
type bag struct{ n int }

// pool owns the free lists.
type pool struct {
	freeItems []*item
	freeBags  []*bag
}

// global exists so the package-level escape case has a target.
var global *item

// get pops a reset item from the pool (reset evidence on the pop side).
func (p *pool) get() *item {
	if n := len(p.freeItems); n > 0 {
		it := p.freeItems[n-1]
		p.freeItems[n-1] = nil
		p.freeItems = p.freeItems[:n-1]
		it.id = 0
		return it
	}
	return &item{}
}

// put recycles an item (reset evidence on the push side too).
func (p *pool) put(it *item) {
	it.next = nil
	p.freeItems = append(p.freeItems, it)
}

// release is a same-package wrapper; the transitive closure classifies
// it as a releaser of its parameter.
func (p *pool) release(it *item) { p.put(it) }

// Use-after-release through the direct releaser.
func useAfterRelease(p *pool) int64 {
	it := p.get()
	p.put(it)
	return it.id // want "use of pooled item \"it\" after it was released"
}

// Use-after-release through the wrapper releaser.
func useAfterWrapperRelease(p *pool) int64 {
	it := p.get()
	p.release(it)
	return it.id // want "use of pooled item \"it\" after it was released"
}

// A release at the bottom of a loop poisons the next iteration's use at
// the top (the back edge).
func loopBackEdge(p *pool) {
	it := p.get()
	for i := 0; i < 3; i++ {
		it.id++ // want "use of pooled item \"it\" after it was released"
		p.put(it)
	}
}

// A pool-derived pointer captured by a closure outlives its lease.
func closureCapture(p *pool) func() int64 {
	it := p.get()
	return func() int64 { return it.id } // want "pool-derived item \"it\" captured by closure"
}

// A pool-derived pointer stored into a package-level variable outlives
// its lease.
func storeGlobal(p *pool) {
	it := p.get()
	global = it // want "pool-derived item \"it\" stored into package-level global"
}

// getBag and putBag recycle bags with no reset on either side: the pool
// itself is the finding, reported at its first push site.
func getBag(p *pool) *bag {
	if n := len(p.freeBags); n > 0 {
		b := p.freeBags[n-1]
		p.freeBags = p.freeBags[:n-1]
		return b
	}
	return &bag{}
}

func putBag(p *pool, b *bag) {
	p.freeBags = append(p.freeBags, b) // want "pooled bag recycled through freeBags without reset evidence"
}

// OK: a release inside a terminating branch does not poison the
// fall-through path.
func releaseInBranch(p *pool, done bool) int64 {
	it := p.get()
	if done {
		p.put(it)
		return 0
	}
	return it.id
}

// OK: rebinding after release starts a fresh lease.
func rebind(p *pool) int64 {
	it := p.get()
	p.put(it)
	it = p.get()
	return it.id
}

// holder stands in for a wait queue: field stores through locals are the
// sanctioned way pooled pointers move around.
type holder struct{ cur *item }

// OK: storing a pooled pointer into a field through a local is queue
// discipline, not an escape.
func fieldStore(p *pool, h *holder) {
	it := p.get()
	h.cur = it
}

// OK: a justified suppression silences a known-benign read.
func allowedUse(p *pool) int64 {
	it := p.get()
	p.put(it)
	return it.id //rtlint:allow poolsafety fixture exercises suppression; the pool is single-threaded here and the read races nothing
}
