// Package globalrand is a golden fixture for the global-rand analyzer.
package globalrand

import "math/rand"

// Flagged: draws from the process-global source.
func roll() int {
	return rand.Intn(6) // want "process-global source"
}

// Flagged: global float draw.
func jitter() float64 {
	return rand.Float64() // want "process-global source"
}

// Flagged: reseeding the global source is still global state.
func reseed() {
	rand.Seed(42) // want "process-global source"
}

// Flagged: global shuffle.
func mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global source"
}

// OK: a seeded source owned by the caller, the internal/workload way.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// OK: method draws on an owned generator.
func draw(rng *rand.Rand) int {
	return rng.Intn(6)
}
