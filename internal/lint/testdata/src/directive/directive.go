// Package directive is a golden fixture for //rtlint:allow handling:
// working suppressions stay silent, and malformed, unknown, or stale
// directives are diagnostics in their own right.
package directive

import "time"

func observe(int64) {}

// OK: a justified suppression on the line above the finding.
func allowedAbove(m map[int64]int64) {
	//rtlint:allow maprange order provably cannot reach the journal in this fixture
	for id := range m {
		observe(id)
	}
}

// OK: a justified trailing suppression on the finding's own line.
func allowedTrailing() int64 {
	return time.Now().UnixNano() //rtlint:allow wallclock fixture exercises trailing-comment suppression
}

// Stale: nothing on this or the next line trips maprange.
func stale(xs []int64) {
	/* want "stale suppression" */ //rtlint:allow maprange nothing nondeterministic here
	for _, x := range xs {
		observe(x)
	}
}

// Unknown analyzer name.
func unknown(m map[int64]int64) {
	/* want "unknown analyzer" */ //rtlint:allow mapsort iteration order is fine
	for id := range m {           // want "nondeterministic iteration order"
		observe(id)
	}
}

// Missing reason: the suppression must not take effect.
func reasonless(m map[int64]int64) {
	/* want "needs a reason" */ //rtlint:allow maprange
	for id := range m {         // want "nondeterministic iteration order"
		observe(id)
	}
}

// Unknown verb.
func badVerb(m map[int64]int64) {
	/* want "unknown rtlint directive verb" */ //rtlint:deny maprange because
	for id := range m {                        // want "nondeterministic iteration order"
		observe(id)
	}
}

// A space between // and rtlint looks active but is not; flag it so the
// reader is not misled.
func spaced(m map[int64]int64) {
	/* want "no space" */ // rtlint:allow maprange looks real but is inert
	for id := range m {   // want "nondeterministic iteration order"
		observe(id)
	}
}

// A directive only suppresses its own analyzer: this wallclock allow
// does not quiet maprange (and is stale for wallclock).
func wrongAnalyzer(m map[int64]int64) {
	/* want "stale suppression" */ //rtlint:allow wallclock suppressing the wrong analyzer
	for id := range m {            // want "nondeterministic iteration order"
		observe(id)
	}
}

// A near-miss analyzer name earns a spelling suggestion on top of the
// unknown-analyzer diagnostic.
func nearMiss(m map[int64]int64) {
	/* want "unknown analyzer \"mapranges\" \\(did you mean \"maprange\"\\?\\)" */ //rtlint:allow mapranges iteration order is fine
	for id := range m {                                                            // want "nondeterministic iteration order"
		observe(id)
	}
}

// A marker in a statement position is inert; flag it so the reader is
// not misled into thinking the type below is pool-checked.
func misplacedMarker() {
	/* want "misplaced marker: //rtlint:pooled" */ //rtlint:pooled
	type local struct{ n int }
	_ = local{}
}
