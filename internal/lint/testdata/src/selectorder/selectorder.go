// Package selectorder is a golden fixture for the select analyzer.
package selectorder

// Flagged: two ready cases race.
func race(a, b chan int) int {
	select { // want "chooses a ready case at random"
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}

// Flagged: default turns a receive into a nondeterministic poll.
func poll(c chan int) (int, bool) {
	select { // want "polls nondeterministically"
	case x := <-c:
		return x, true
	default:
		return 0, false
	}
}

// OK: a single-case select is just a blocking receive.
func recv(c chan int) int {
	select {
	case x := <-c:
		return x
	}
}
