package rawgo

// This file is on the test's spawn allowlist, mirroring
// internal/sim/proc.go: its go statement must not be flagged.
func handshake(resume chan struct{}, body func()) {
	go func() {
		<-resume
		body()
	}()
}
