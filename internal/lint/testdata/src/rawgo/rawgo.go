// Package rawgo is a golden fixture for the raw-goroutine analyzer.
package rawgo

// Flagged: a goroutine outside the kernel handshake.
func fanOut(work []func()) {
	for _, w := range work {
		go w() // want "outside the kernel spawn handshake"
	}
}

// Flagged: anonymous goroutines too.
func fire(done chan<- struct{}) {
	go func() { // want "outside the kernel spawn handshake"
		done <- struct{}{}
	}()
}

// OK: deferred and direct calls are synchronous.
func sync(f func()) {
	defer f()
	f()
}
