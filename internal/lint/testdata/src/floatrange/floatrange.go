// Package floatrange is a golden fixture for the float-accumulation
// analyzer.
package floatrange

// Flagged: float sum in map order.
func mean(samples map[int64]float64) float64 {
	total := 0.0
	for _, v := range samples {
		total += v // want "accumulation inside a map range"
	}
	return total / float64(len(samples))
}

// Flagged: explicit self-assignment form.
func product(samples map[int64]float64) float64 {
	p := 1.0
	for _, v := range samples {
		p = p * v // want "accumulation inside a map range"
	}
	return p
}

// Flagged: subtraction is order-sensitive too.
func drain(budget map[string]float64) float64 {
	left := 100.0
	for _, cost := range budget {
		left -= cost // want "accumulation inside a map range"
	}
	return left
}

// OK: integer accumulation commutes.
func total(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// OK: float accumulation over an ordered slice.
func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// OK: float assignment that is not self-accumulating.
func last(samples map[int64]float64) bool {
	seen := false
	for range samples {
		seen = true
	}
	return seen
}
