// Package maprange is a golden fixture: `// want` comments mark the
// lines the analyzer must flag; unmarked map ranges must stay silent.
package maprange

import "sort"

func sideEffect(id int64) {}

// Flagged: the loop body calls out, so iteration order escapes.
func leakyCall(m map[int64]string) {
	for id := range m { // want "nondeterministic iteration order"
		sideEffect(id)
	}
}

// Flagged: appending values in map order without sorting afterwards.
func collectNoSort(m map[int64]string) []string {
	var out []string
	for _, v := range m { // want "never sorts it in this block"
		out = append(out, v)
	}
	return out
}

// OK: the Kernel.Shutdown idiom — collect, then sort in the same block.
func collectThenSort(m map[int64]string) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OK: conditional collect followed by a sort.
func conditionalCollect(m map[int64]int64) []int64 {
	var big []int64
	for id, v := range m {
		if v > 10 {
			big = append(big, id)
		}
	}
	sort.Slice(big, func(i, j int) bool { return big[i] < big[j] })
	return big
}

// OK: integer counters commute.
func count(m map[int64]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// OK: integer accumulation commutes.
func sumInts(m map[int64]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// OK: any-match early return carries no order information.
func anyNegative(m map[int64]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// OK: per-key map store cannot alias across iterations.
func invert(m map[int64]string) map[string]int64 {
	out := make(map[string]int64, len(m))
	for id, name := range m {
		out[name] = id
	}
	return out
}

// OK: deletes commute.
func drop(m, cond map[int64]bool) {
	for id := range cond {
		delete(m, id)
	}
}

// Flagged: break makes the visited subset order-dependent.
func stopEarly(m map[int64]int) int {
	n := 0
	for _, v := range m { // want "nondeterministic iteration order"
		if v == 0 {
			break
		}
		n++
	}
	return n
}

// Flagged: returning a ranged element leaks order.
func pickOne(m map[int64]string) string {
	for _, v := range m { // want "nondeterministic iteration order"
		return v
	}
	return ""
}

// Flagged: float accumulation is order-sensitive (maprange view).
func sumFloats(m map[int64]float64) float64 {
	total := 0.0
	for _, v := range m { // want "nondeterministic iteration order"
		total += v
	}
	return total
}

// OK: ranging a slice is ordered; nothing to flag.
func slices_(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
