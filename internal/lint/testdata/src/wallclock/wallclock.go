// Package wallclock is a golden fixture for the wall-clock analyzer.
package wallclock

import "time"

// Flagged: reads the real clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}

// Flagged: sleeps against the real clock.
func pause() {
	time.Sleep(time.Millisecond) // want "reads the wall clock"
}

// Flagged: timers race virtual time.
func timer() *time.Timer { // want "reads the wall clock"
	return time.NewTimer(time.Second) // want "reads the wall clock"
}

// Flagged: measuring elapsed real time.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "reads the wall clock"
}

// OK: durations are plain numbers.
const tick = 10 * time.Millisecond

// OK: formatting a provided time value reads no clock.
func format(t time.Time) string {
	return t.Format(time.RFC3339)
}
