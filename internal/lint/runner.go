package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// MetaAnalyzerName tags diagnostics produced by the suppression
// meta-analyzer. Its findings are themselves not suppressible: a stale
// or malformed allow-directive must be deleted or repaired, never
// silenced.
const MetaAnalyzerName = "directive"

// Analyze runs the given analyzers over one package, applies
// //rtlint:allow suppressions, and appends the meta-analyzer's findings
// about the directives themselves. Diagnostics come back sorted by
// position.
func Analyze(pkg *Package, analyzers []*Analyzer, cfg Config) ([]Diagnostic, error) {
	markers := collectMarkers(pkg)
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Config:   cfg,
			Markers:  markers,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	known := KnownAnalyzers()
	var directives []*Directive
	var meta []Diagnostic
	meta = append(meta, markers.meta...)
	for _, f := range pkg.Files {
		ds, malformed := fileDirectives(pkg.Fset, f)
		directives = append(directives, ds...)
		meta = append(meta, malformed...)
	}
	for _, d := range directives {
		if !known[d.Analyzer] {
			msg := fmt.Sprintf("suppression names unknown analyzer %q", d.Analyzer)
			if near := nearestAnalyzer(d.Analyzer, known); near != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", near)
			}
			meta = append(meta, Diagnostic{
				Analyzer: MetaAnalyzerName,
				Position: d.Position,
				Message:  msg,
			})
			d.used = true // don't double-report as stale
		}
		// allocfree findings exist only when escape data is present; a
		// source-only run cannot judge these suppressions stale.
		if cfg.Escapes == nil && d.Analyzer == AllocFree.Name {
			d.used = true
		}
	}

	// A directive suppresses diagnostics of its analyzer on its own
	// line (trailing comment) or the line directly below (comment line
	// above the code).
	var kept []Diagnostic
	for _, diag := range raw {
		suppressed := false
		for _, d := range directives {
			if d.Analyzer != diag.Analyzer || d.Position.Filename != diag.Position.Filename {
				continue
			}
			if d.Position.Line == diag.Position.Line || d.Position.Line == diag.Position.Line-1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range directives {
		if !d.used {
			meta = append(meta, Diagnostic{
				Analyzer: MetaAnalyzerName,
				Position: d.Position,
				Message:  fmt.Sprintf("stale suppression: %s reports nothing on this or the next line", d.Analyzer),
			})
		}
	}

	kept = append(kept, meta...)
	sortDiagnostics(kept)
	return kept, nil
}

// Run loads every pattern-matched package of the module, analyzes the
// simulation-critical ones, and returns all diagnostics sorted by
// position. Packages outside the sim-critical set are skipped: the
// determinism rules only bind code that runs inside (or aggregates
// results of) the simulation.
func Run(modRoot string, patterns []string, cfg Config) ([]Diagnostic, error) {
	loader, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = cfg.IncludeTests
	if cfg.Resolve == nil {
		cfg.Resolve = NewResolver(loader)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	critical := make(map[string]bool, len(SimCriticalPkgs))
	for _, suffix := range SimCriticalPkgs {
		critical[loader.ModPath+"/"+suffix] = true
	}
	analyzers := Analyzers()
	var all []Diagnostic
	for _, path := range paths {
		if !critical[path] {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := Analyze(pkg, analyzers, cfg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

// nearestAnalyzer suggests the closest known analyzer name for a typo,
// within an edit distance of 2.
func nearestAnalyzer(name string, known map[string]bool) string {
	candidates := make([]string, 0, len(known)+1)
	for k := range known {
		candidates = append(candidates, k)
	}
	candidates = append(candidates, MetaAnalyzerName)
	sort.Strings(candidates)
	best, bestDist := "", 3
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance, capped implicitly by the
// caller's threshold (the names involved are short).
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// WriteText prints diagnostics in the classic file:line:col form, with
// paths shown relative to base when possible.
func WriteText(w io.Writer, base string, ds []Diagnostic) error {
	for _, d := range ds {
		name := relPath(base, d.Position.Filename)
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
			name, d.Position.Line, d.Position.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the CI annotation form of a finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits the diagnostics as a JSON array for CI annotation.
func WriteJSON(w io.Writer, base string, ds []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiagnostic{
			File:     relPath(base, d.Position.Filename),
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(base, name string) string {
	if base == "" {
		return name
	}
	rel, err := filepath.Rel(base, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
