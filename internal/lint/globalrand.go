package lint

// GlobalRand forbids the top-level math/rand convenience functions in
// simulation packages. They draw from a process-global, unseeded (or
// racily shared) source, so two runs with the same configuration
// diverge. Randomness must flow from a seeded *rand.Rand owned by the
// run — exactly how internal/workload threads Params.Seed through
// rand.New(rand.NewSource(seed)). The constructors stay legal; it is
// the package-level draws that are banned.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbids top-level math/rand draws; use a seeded *rand.Rand as internal/workload does",
	Run:  runGlobalRand,
}

// globalRandAllowed names the math/rand package-level functions that do
// not touch the global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(pass *Pass) error {
	report := collectUses(pass, func(pkgPath, name string) bool {
		if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
			return false
		}
		if globalRandAllowed[name] {
			return false
		}
		// Types (Rand, Source, Zipf, PCG...) are fine; only the
		// package-level draw functions and Seed are nondeterministic.
		// Matching on the exported funcs by exclusion keeps the list
		// short: anything not a constructor is a draw or Seed.
		return name[0] >= 'A' && name[0] <= 'Z' && !globalRandTypes[name]
	})
	for _, u := range report {
		pass.Reportf(u.pos, "rand.%s draws from the process-global source; plumb a seeded *rand.Rand through the run instead", u.name)
	}
	return nil
}

// globalRandTypes are math/rand names that are types, legal to mention.
var globalRandTypes = map[string]bool{
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}
