package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureLoader builds a loader rooted at the repository so fixture
// packages (which import only the standard library) can be type-checked
// with the production code path.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// want is one expectation parsed from a `// want "regex"` comment.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants extracts the expectations from a fixture package.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Accept both `// want "..."` and `/* want "..." */`; the
				// block form lets an expectation share a line with a
				// //-directive under test.
				text := c.Text
				switch {
				case strings.HasPrefix(text, "//"):
					text = strings.TrimSpace(text[2:])
				case strings.HasPrefix(text, "/*"):
					text = strings.TrimSpace(strings.TrimSuffix(text[2:], "*/"))
				}
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(t, pos, rest) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want expectations must be double-quoted strings, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want string %q", pos, s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", pos, s[:end+1], err)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// checkFixture loads testdata/src/<name>, runs the analyzers through the
// full Analyze pipeline (including suppression and the directive
// meta-analyzer), and compares against the // want comments.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer, cfg Config) {
	t.Helper()
	checkFixtureWith(t, name, analyzers, cfg, nil)
}

// checkFixtureWith is checkFixture plus a prep hook that can adjust the
// config once the fixture package is loaded (e.g. to synthesize an
// escape report at the fixture's own positions). The resolver is wired
// from the fixture's loader, mirroring what Run does for real packages.
func checkFixtureWith(t *testing.T, name string, analyzers []*Analyzer, cfg Config, prep func(*Package, *Config)) {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if cfg.Resolve == nil {
		cfg.Resolve = NewResolver(l)
	}
	if prep != nil {
		prep(pkg, &cfg)
	}
	diags, err := Analyze(pkg, analyzers, cfg)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", name, err)
	}
	wants := parseWants(t, pkg.Fset, pkg.Files)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Position.Filename && w.line == d.Position.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

func TestMapRangeFixture(t *testing.T) {
	checkFixture(t, "maprange", []*Analyzer{MapRange}, DefaultConfig())
}

func TestWallClockFixture(t *testing.T) {
	checkFixture(t, "wallclock", []*Analyzer{WallClock}, DefaultConfig())
}

func TestGlobalRandFixture(t *testing.T) {
	checkFixture(t, "globalrand", []*Analyzer{GlobalRand}, DefaultConfig())
}

func TestRawGoFixture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GoSpawnAllowlist = append(cfg.GoSpawnAllowlist, "rawgo/spawn_allowed.go")
	checkFixture(t, "rawgo", []*Analyzer{RawGo}, cfg)
}

func TestSelectOrderFixture(t *testing.T) {
	checkFixture(t, "selectorder", []*Analyzer{SelectOrder}, DefaultConfig())
}

func TestFloatRangeFixture(t *testing.T) {
	checkFixture(t, "floatrange", []*Analyzer{FloatRange}, DefaultConfig())
}

func TestDirectiveFixture(t *testing.T) {
	checkFixture(t, "directive", Analyzers(), DefaultConfig())
}

func TestPoolSafetyFixture(t *testing.T) {
	checkFixture(t, "poolsafety", []*Analyzer{PoolSafety}, DefaultConfig())
}

func TestJournalPurityFixture(t *testing.T) {
	checkFixture(t, "journalpurity", []*Analyzer{JournalPurity}, DefaultConfig())
}

func TestAllocFreeFixture(t *testing.T) {
	checkFixtureWith(t, "allocfree", []*Analyzer{AllocFree}, DefaultConfig(),
		func(pkg *Package, cfg *Config) {
			cfg.Escapes = fixtureEscapes(pkg)
		})
}

// fixtureEscapes synthesizes an EscapeReport from "/* escape: msg */"
// comments, each standing in for a -gcflags=-m=2 diagnostic at its line.
func fixtureEscapes(pkg *Package) *EscapeReport {
	var diags []EscapeDiag
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/"))
				msg, ok := strings.CutPrefix(text, "escape: ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				diags = append(diags, EscapeDiag{File: pos.Filename, Line: pos.Line, Col: pos.Column, Message: msg})
			}
		}
	}
	return NewEscapeReport(diags)
}

// TestAnalyzersHaveDocs keeps the -list output and DESIGN.md honest.
func TestAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !validAnalyzerName(a.Name) {
			t.Errorf("analyzer name %q not directive-addressable", a.Name)
		}
	}
	if seen[MetaAnalyzerName] {
		t.Errorf("meta-analyzer name %q collides with a real analyzer", MetaAnalyzerName)
	}
}
