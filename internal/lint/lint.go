// Package lint is a determinism-preserving static-analysis suite for the
// simulation. The prototyping environment is only useful because its
// executions are repeatable; PR 1 made that checkable at runtime with the
// replay journal and the protocol auditors, but the two map-iteration
// shutdown bugs it caught were found only because a shuffled interleaving
// happened to trigger them. The whole bug class — unordered map ranges,
// wall-clock reads, unseeded global randomness, goroutines spawned outside
// the kernel handshake, racy selects, order-dependent float accumulation —
// is statically detectable, and this package detects it at compile time so
// every performance PR is gated on determinism before a single test runs.
//
// The design mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library alone: go/parser,
// go/types, and go/importer. Findings can be suppressed with a
//
//	//rtlint:allow <analyzer> <reason>
//
// directive on the offending line or the line directly above it; a
// meta-analyzer flags malformed, unknown, and stale suppressions so the
// allow-list can never rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one determinism check. It mirrors the x/tools analysis
// API shape so the checks could migrate there if the repo ever takes on
// the dependency.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //rtlint:allow directives.
	Name string
	// Doc describes the bug class the analyzer prevents.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Config carries runner-level policy (e.g. the raw-go spawn-site
	// allowlist) that some analyzers consult.
	Config Config
	// Markers holds the package's parsed //rtlint:pooled, allocfree,
	// and pure= annotations.
	Markers *pkgMarkers

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an externally supplied position (e.g. a
// compiler diagnostic that has no token.Pos in this FileSet).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// positionOf converts a compiler escape diagnostic to a position.
func positionOf(e EscapeDiag) token.Position {
	return token.Position{Filename: e.File, Line: e.Line, Column: e.Col}
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Config is runner-level policy shared by the analyzers.
type Config struct {
	// GoSpawnAllowlist lists file path suffixes (slash-separated) in
	// which `go` statements are legal. The defaults are the kernel's
	// process-spawn handshake and the parallel experiment runner.
	GoSpawnAllowlist []string
	// IncludeTests also analyzes _test.go files of the package itself
	// (external _test packages are never analyzed).
	IncludeTests bool
	// Escapes carries the compiler's -gcflags=-m=2 heap-escape
	// diagnostics for the allocfree analyzer. When nil the analyzer is
	// dormant and its //rtlint:allow directives are exempt from
	// staleness (source-only runs cannot tell whether they still mask
	// anything).
	Escapes *EscapeReport
	// Resolve gives analyzers whole-module context (cross-package call
	// summaries, imported //rtlint:pooled markers). Run and the fixture
	// harness wire one automatically.
	Resolve *Resolver
	// JournalPurePkgs lists import-path suffixes that are journal-pure
	// by policy, in addition to packages tagged //rtlint:pure=journal.
	JournalPurePkgs []string
}

// DefaultGoSpawnAllowlist names the only files where a raw `go`
// statement is part of the deterministic machinery: the kernel's
// spawn/park handshake, the run-indexed parallel sweep runner, and the
// schedule explorer's index-slotted batch pool.
var DefaultGoSpawnAllowlist = []string{
	"internal/sim/proc.go",
	"internal/experiments/parallel.go",
	"internal/explore/pool.go",
}

// DefaultConfig returns the policy rtlint ships with.
func DefaultConfig() Config {
	return Config{
		GoSpawnAllowlist: DefaultGoSpawnAllowlist,
		JournalPurePkgs:  DefaultJournalPurePkgs,
	}
}

// Analyzers returns the full determinism suite, in stable order. The
// directive meta-analyzer is not in the list: it is part of the runner,
// because it must observe which suppressions the listed analyzers
// consumed.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRange,
		WallClock,
		GlobalRand,
		RawGo,
		SelectOrder,
		FloatRange,
		PoolSafety,
		AllocFree,
		JournalPurity,
	}
}

// KnownAnalyzers reports every name a directive may legally reference.
func KnownAnalyzers() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// SimCriticalPkgs lists the import-path suffixes (relative to the module
// root) whose code runs inside — or aggregates results of — the
// discrete-event simulation, where any nondeterminism reaches
// scheduling, journal emission, or reported numbers.
var SimCriticalPkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/dist",
	"internal/netsim",
	"internal/place",
	"internal/faults",
	"internal/txn",
	"internal/journal",
	"internal/audit",
	"internal/experiments",
	"internal/metrics",
	"internal/explore",
	"internal/stats",
	"internal/timeline",
}
