package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` statements over maps whose iteration order can
// escape the loop: in simulation code any map-ordered effect — a wake-up,
// a journal record, an element appended to a slice — makes two identical
// runs diverge. The analyzer recognizes the two shapes that cannot leak
// order:
//
//   - the collect-then-sort idiom Kernel.Shutdown uses: the body only
//     appends keys/values to slices that are sorted later in the same
//     block;
//   - pure order-insensitive accumulation: integer counters, deletes,
//     per-key map stores, constant flag assignments, and constant-only
//     early returns (the "any element matches" pattern).
//
// Everything else needs either a sort or a justified
// //rtlint:allow maprange suppression.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flags nondeterministic map iteration whose order can reach scheduling, journal emission, or aggregate state",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.Info, rs) {
				return true
			}
			checkMapRange(pass, parents, rs)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, parents parentMap, rs *ast.RangeStmt) {
	b := &benignChecker{info: pass.Info, loopVars: rangeVarObjs(pass.Info, rs)}
	if !b.stmts(rs.Body.List) {
		pass.Reportf(rs.For,
			"range over map %s has nondeterministic iteration order; collect and sort keys first (as sim.Kernel.Shutdown does) or justify with //rtlint:allow maprange <reason>",
			exprString(rs.X))
		return
	}
	// Every slice the loop collected into must be sorted before the
	// enclosing block does anything else with it.
	for _, target := range b.collected {
		if !sortedAfter(pass.Info, parents, rs, target) {
			pass.Reportf(rs.For,
				"range over map %s collects into %s in map order but never sorts it in this block; add a sort.Slice (or similar) after the loop",
				exprString(rs.X), target.Name())
		}
	}
}

// rangeVarObjs returns the objects bound to the range's key and value
// variables (nil entries for _ or absent).
func rangeVarObjs(info *types.Info, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := declOrUseObj(info, id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// benignChecker decides whether a loop body is provably
// order-insensitive, collecting the append targets it sees.
type benignChecker struct {
	info      *types.Info
	loopVars  []types.Object
	collected []types.Object
}

func (b *benignChecker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !b.stmt(s) {
			return false
		}
	}
	return true
}

func (b *benignChecker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BlockStmt:
		return b.stmts(s.List)
	case *ast.BranchStmt:
		// continue just skips an element; break makes "which elements
		// ran" order-dependent.
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil && !b.stmt(s.Init) {
			return false
		}
		if !b.stmts(s.Body.List) {
			return false
		}
		return s.Else == nil || b.stmt(s.Else)
	case *ast.IncDecStmt:
		t := b.info.TypeOf(s.X)
		return t != nil && isIntegerType(t)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		// delete(m, k) is commutative across iterations.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if bi, ok := b.info.Uses[id].(*types.Builtin); ok && bi.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		return b.assign(s)
	case *ast.ReturnStmt:
		// Early return is benign only when it carries no order
		// information: every result is a constant (true/false/nil/lit).
		for _, r := range s.Results {
			if !isConstExpr(b.info, r) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (b *benignChecker) assign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation is associative and commutative;
		// floating-point is floatrange's concern and not benign here.
		if len(s.Lhs) != 1 {
			return false
		}
		t := b.info.TypeOf(s.Lhs[0])
		return t != nil && isIntegerType(t)
	case token.ASSIGN, token.DEFINE:
	default:
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	// s = append(s, ...): collect, to be sorted after the loop.
	if target, ok := b.appendTarget(lhs, rhs); ok {
		b.collected = append(b.collected, target)
		return true
	}
	// m[k] = v keyed by a loop variable writes a per-element slot, so
	// iteration order cannot alias two writes.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := b.info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap && b.usesLoopVar(ix.Index) {
				return true
			}
		}
	}
	// x = true / x = 0: idempotent constant store.
	if _, ok := lhs.(*ast.Ident); ok && isConstExpr(b.info, rhs) {
		return true
	}
	return false
}

// appendTarget matches `s = append(s, ...)` and returns s's object.
func (b *benignChecker) appendTarget(lhs, rhs ast.Expr) (types.Object, bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if bi, ok := b.info.Uses[id].(*types.Builtin); !ok || bi.Name() != "append" {
		return nil, false
	}
	lid, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, false
	}
	aid, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	lobj := declOrUseObj(b.info, lid)
	if lobj == nil || lobj != b.info.Uses[aid] {
		return nil, false
	}
	return lobj, true
}

func (b *benignChecker) usesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := b.info.Uses[id]
			for _, lv := range b.loopVars {
				if obj == lv {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isConstExpr reports whether e is a compile-time constant (literal,
// true/false, nil, or a named constant).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok {
		if tv.Value != nil || tv.IsNil() {
			return true
		}
	}
	return false
}

// sortFuncs are the callees accepted as "sorting the collected slice".
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Ints": true, "Strings": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether some statement after rs in its enclosing
// block sorts the collected slice.
func sortedAfter(info *types.Info, parents parentMap, rs *ast.RangeStmt, target types.Object) bool {
	list, idx, ok := enclosingStmts(parents, rs)
	if !ok {
		return false
	}
	for _, s := range list[idx+1:] {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			names, ok := sortFuncs[pn.Imported().Path()]
			if !ok || !names[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				argFound := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && info.Uses[id] == target {
						argFound = true
					}
					return !argFound
				})
				if argFound {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
