package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// RawGo forbids `go` statements in simulation packages outside the
// kernel's process-spawn handshake. The kernel guarantees at most one
// runnable goroutine at a time by pairing every spawn with the
// resume/yield channel protocol in internal/sim/proc.go; a goroutine
// created anywhere else runs unsynchronized with virtual time and races
// the journal. The parallel experiment runner is the one other
// allow-listed site: it fans out whole independent kernels and joins
// them by run index, never sharing simulation state.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbids go statements outside the kernel spawn handshake and the allow-listed parallel sweep runner",
	Run:  runRawGo,
}

func runRawGo(pass *Pass) error {
	allowed := func(filename string) bool {
		slash := filepath.ToSlash(filename)
		for _, suffix := range pass.Config.GoSpawnAllowlist {
			if strings.HasSuffix(slash, suffix) {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		if allowed(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go, "go statement outside the kernel spawn handshake; use Kernel.Spawn so the scheduler keeps one runnable process")
			}
			return true
		})
	}
	return nil
}
