package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("rtlock/internal/sim").
	Path string
	// Fset maps the files' positions.
	Fset *token.FileSet
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed sources, with comments, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal imports are resolved from source
// relative to the module root, and everything else (the standard
// library) goes through go/importer's source importer, so no compiled
// export data or external tooling is needed.
type Loader struct {
	Fset         *token.FileSet
	ModRoot      string
	ModPath      string
	IncludeTests bool

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader rooted at the module directory. The module
// path is read from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     std,
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer so module-internal imports recurse
// through the loader while everything else uses the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModRoot, 0)
}

// dirFor maps an in-module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// Load parses and type-checks the in-module package with the given
// import path, memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir := l.dirFor(path)
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks an ad-hoc directory (used by the
// fixture test harness) under a display import path. The package may
// import the standard library only.
func (l *Loader) LoadDir(dir, displayPath string) (*Package, error) {
	return l.loadDir(dir, displayPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	names, err := goFilesIn(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	var pkgName string
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// Keep only the package proper: external test packages
		// (package foo_test) are compiled separately and are not
		// simulation code.
		if pkgName == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if pkgName != "" {
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == pkgName {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// goFilesIn lists the buildable Go files of a directory in sorted order.
func goFilesIn(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line patterns ("./...", "./internal/sim",
// "rtlock/internal/core") to in-module import paths, sorted.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkPackages(l.ModRoot)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			root := l.dirFor(l.pathForPattern(strings.TrimSuffix(pat, "/...")))
			paths, err := l.walkPackages(root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			add(l.pathForPattern(pat))
		}
	}
	sort.Strings(out)
	return out, nil
}

// pathForPattern converts one non-wildcard pattern to an import path.
func (l *Loader) pathForPattern(pat string) string {
	pat = strings.TrimSuffix(pat, "/")
	if pat == "." || pat == "" {
		return l.ModPath
	}
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		return l.ModPath + "/" + rest
	}
	if pat == l.ModPath || strings.HasPrefix(pat, l.ModPath+"/") {
		return pat
	}
	return l.ModPath + "/" + pat
}

// walkPackages finds every directory under root that holds Go files.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		files, err := goFilesIn(p, false)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModPath)
		} else {
			out = append(out, l.ModPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}
