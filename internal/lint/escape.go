package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// EscapeDiag is one heap-allocation diagnostic from the compiler's
// escape analysis (-gcflags=-m=2), positioned in module source.
type EscapeDiag struct {
	// File is the absolute path of the source file.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message is the compiler's diagnostic ("&Event{} escapes to heap",
	// "moved to heap: buf", ...).
	Message string `json:"message"`
}

// EscapeReport indexes the compiler's escape diagnostics by file so the
// allocfree analyzer can map them onto annotated function bodies.
type EscapeReport struct {
	byFile map[string][]EscapeDiag
}

// NewEscapeReport builds a report from parsed diagnostics.
func NewEscapeReport(diags []EscapeDiag) *EscapeReport {
	r := &EscapeReport{byFile: make(map[string][]EscapeDiag)}
	for _, d := range diags {
		r.byFile[d.File] = append(r.byFile[d.File], d)
	}
	for _, ds := range r.byFile {
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Line != ds[j].Line {
				return ds[i].Line < ds[j].Line
			}
			return ds[i].Col < ds[j].Col
		})
	}
	return r
}

// InFile returns the diagnostics of one file (by absolute path), sorted
// by position.
func (r *EscapeReport) InFile(file string) []EscapeDiag {
	if r == nil {
		return nil
	}
	return r.byFile[file]
}

// Diags returns every diagnostic, sorted by file then position.
func (r *EscapeReport) Diags() []EscapeDiag {
	if r == nil {
		return nil
	}
	files := make([]string, 0, len(r.byFile))
	for f := range r.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []EscapeDiag
	for _, f := range files {
		out = append(out, r.byFile[f]...)
	}
	return out
}

// escapeLine matches one compiler diagnostic line: path:line:col: msg.
var escapeLine = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.+)$`)

// CollectEscapes runs the compiler's escape analysis over the module's
// packages and parses the heap-escape diagnostics. The go command
// re-emits diagnostics for every package matched by the -gcflags
// pattern on every invocation (such packages are rebuilt, never served
// stale from the build cache), so the output is complete even on a warm
// cache; the JSON cache in CollectEscapesCached exists purely to skip
// the ~2s compile.
func CollectEscapes(modRoot string, patterns []string) (*EscapeReport, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"build", "-gcflags=" + modPath + "/...=-m=2"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: escape analysis build failed: %v\n%s", err, out)
	}
	return NewEscapeReport(parseEscapeOutput(modRoot, string(out))), nil
}

// parseEscapeOutput extracts the heap-escape diagnostics from go build
// -gcflags=-m=2 output. -m=2 also prints inlining decisions and
// indented explanation ("flow:") lines; only top-level escape facts are
// kept, deduplicated (the compiler emits some twice, with and without a
// trailing colon introducing the explanation).
func parseEscapeOutput(modRoot, out string) []EscapeDiag {
	seen := make(map[string]bool)
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			continue // indented explanation line
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(modRoot, filepath.FromSlash(file))
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d:%s", file, lineNo, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		diags = append(diags, EscapeDiag{File: file, Line: lineNo, Col: col, Message: msg})
	}
	return diags
}

// CollectEscapesCached wraps CollectEscapes with an on-disk JSON cache
// keyed on the toolchain version, go.mod, and the content hash of every
// buildable .go file in the module (the module is dependency-free, so
// there is no go.sum to fold in). hit reports whether the compile was
// skipped.
func CollectEscapesCached(modRoot, cacheDir string, patterns []string) (rep *EscapeReport, hit bool, err error) {
	key, err := escapeCacheKey(modRoot, patterns)
	if err != nil {
		return nil, false, err
	}
	path := filepath.Join(cacheDir, "escapes-"+key+".json")
	if data, err := os.ReadFile(path); err == nil {
		var diags []EscapeDiag
		if json.Unmarshal(data, &diags) == nil {
			for i := range diags { // stored relative to the module root
				if !filepath.IsAbs(diags[i].File) {
					diags[i].File = filepath.Join(modRoot, filepath.FromSlash(diags[i].File))
				}
			}
			return NewEscapeReport(diags), true, nil
		}
	}
	rep, err = CollectEscapes(modRoot, patterns)
	if err != nil {
		return nil, false, err
	}
	stored := rep.Diags()
	for i := range stored {
		if rel, err := filepath.Rel(modRoot, stored[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			stored[i].File = filepath.ToSlash(rel)
		}
	}
	if err := os.MkdirAll(cacheDir, 0o755); err == nil {
		if data, err := json.MarshalIndent(stored, "", "  "); err == nil {
			// One live entry: drop superseded keys before writing.
			if old, err := filepath.Glob(filepath.Join(cacheDir, "escapes-*.json")); err == nil {
				for _, p := range old {
					os.Remove(p)
				}
			}
			_ = os.WriteFile(path, data, 0o644)
		}
	}
	return rep, false, nil
}

// escapeCacheKey hashes everything the compile output depends on.
func escapeCacheKey(modRoot string, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, strings.Join(patterns, " "))
	gomod, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	h.Write(gomod)
	var files []string
	err = filepath.WalkDir(modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "results") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(modRoot, f)
		fmt.Fprintln(h, filepath.ToSlash(rel))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}
