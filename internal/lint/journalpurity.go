package lint

import (
	"go/types"
	"strings"
)

// JournalPurity proves that journal-pure packages can never mutate the
// replay journal. PR 4's zero-perturbation guarantee — metrics
// aggregation must not feed back into the byte-identical journal — is
// pinned at runtime by TestMetricsZeroOverhead; this analyzer makes it a
// theorem about the code: starting from every function of a pure
// package (internal/metrics by default, plus any package whose package
// doc carries //rtlint:pure=journal), it follows statically resolvable
// calls through module source and reports any path that reaches a
// function writing journal.Journal state (Append, Reset, Reserve, the
// encoders). Mutators are detected by their bodies — a field write on a
// journal.Journal value — not by name, so a new mutating method is
// covered the day it is written.
//
// The proof covers the static call graph: dynamic dispatch through
// interfaces and calls through stored function values are opaque (an
// interface method without a reachable body is assumed pure). The
// journal's hot path uses static callbacks precisely so this closure is
// meaningful.
var JournalPurity = &Analyzer{
	Name: "journalpurity",
	Doc:  "proves journal-pure packages (internal/metrics, //rtlint:pure=journal) never reach a journal-mutating function",
	Run:  runJournalPurity,
}

// DefaultJournalPurePkgs lists the import-path suffixes that are
// journal-pure by policy, annotation or not.
var DefaultJournalPurePkgs = []string{"internal/metrics"}

func runJournalPurity(pass *Pass) error {
	r := pass.Config.Resolve
	if r == nil {
		// Purity is a whole-module property; without a resolver there
		// is no dependency source to chase calls into.
		return nil
	}
	pure := pass.Markers.pureDomains["journal"]
	if !pure {
		for _, suffix := range pass.Config.JournalPurePkgs {
			if pass.Pkg.Path() == suffix || strings.HasSuffix(pass.Pkg.Path(), "/"+suffix) {
				pure = true
				break
			}
		}
	}
	if !pure {
		return nil
	}

	g := r.graphForPackage(&Package{
		Path:  pass.Pkg.Path(),
		Fset:  pass.Fset,
		Files: pass.Files,
		Types: pass.Pkg,
		Info:  pass.Info,
	})
	for _, fi := range g.funcs {
		if fi.mutatesJournal {
			// A pure package writing journal fields directly is only
			// possible if it IS the journal package; keep the check for
			// completeness.
			pass.Reportf(fi.decl.Name.Pos(), "journal-pure package mutates journal.Journal state in %s", fi.obj.Name())
		}
		for _, cs := range fi.calls {
			callee := cs.callee
			if callee.Pkg() == pass.Pkg {
				// Same-package callees are analyzed on their own; the
				// mutation (or the escaping call) is reported there.
				continue
			}
			reaches, chain := r.ReachesJournalMutation(callee)
			if !reaches {
				continue
			}
			pass.Reportf(cs.pos.Pos(),
				"journal-pure package calls %s, which %s journal.Journal state%s; journal purity is the zero-perturbation guarantee — read Records(), never mutate",
				calleeName(callee), mutationVerb(chain), chainString(callee, chain))
		}
	}
	return nil
}

func calleeName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "(" + recv.Type().String() + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func mutationVerb(chain []*types.Func) string {
	if len(chain) == 0 {
		return "mutates"
	}
	return "reaches a mutation of"
}

func chainString(first *types.Func, chain []*types.Func) string {
	if len(chain) == 0 {
		return ""
	}
	parts := []string{first.Name()}
	for _, fn := range chain {
		parts = append(parts, fn.Name())
	}
	return " (via " + strings.Join(parts, " -> ") + ")"
}
