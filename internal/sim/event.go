package sim

// Event is a scheduled kernel action. Events fire in (time, sequence)
// order; the sequence number makes simultaneous events fire in the order
// they were scheduled, which is what keeps runs deterministic.
//
// Events are pooled: after an event fires (or a canceled event is
// discarded) the kernel bumps its generation and recycles the struct.
// External code therefore never holds a bare *Event — schedule calls
// return a generation-checked EventRef, so a stale handle to a recycled
// event turns into a harmless no-op instead of corrupting an innocent
// event that happens to reuse the allocation.
//
// The handler is stored in one of two forms: fn (a plain closure, the
// convenient path) or call+arg (a static function plus its argument, the
// allocation-free path used by hot sites like token wake-ups and CPU
// completions — storing a pointer in an interface value does not
// allocate, while a capturing closure does).
//
//rtlint:pooled
type Event struct {
	at   Time
	seq  uint64
	gen  uint64
	fn   func()
	call func(any)
	arg  any
	idx  int
	// canceled marks the event dead in place; the heap discards it
	// lazily on pop, which is cheaper than eager removal.
	canceled bool
}

// EventRef is a cancelable handle to a scheduled event. The zero value
// is inert. Refs stay valid (as no-ops) after the event fires, even once
// the underlying struct is recycled for a different event: the embedded
// generation must match for Cancel to act.
type EventRef struct {
	e   *Event
	gen uint64
}

// Cancel prevents the event from firing. It reports whether the event
// was still pending; canceling an event that already fired, was already
// canceled, or whose struct has been recycled returns false.
func (r EventRef) Cancel() bool {
	e := r.e
	if e == nil || e.gen != r.gen || e.canceled || e.idx < 0 {
		return false
	}
	e.canceled = true
	return true
}

// At returns the virtual time the event is scheduled for, or -1 if the
// handle is inert or the event already fired and was recycled.
func (r EventRef) At() Time {
	if r.e == nil || r.e.gen != r.gen {
		return -1
	}
	return r.e.at
}

// Pending reports whether the event is still scheduled to fire.
func (r EventRef) Pending() bool {
	return r.e != nil && r.e.gen == r.gen && !r.e.canceled && r.e.idx >= 0
}

// eventHeap is a binary min-heap over (time, seq), implemented directly
// on the slice rather than through container/heap: the interface-based
// version boxes every comparison through dynamic dispatch, which
// profiles as a measurable slice of the kernel dispatch loop. (at, seq)
// is a strict total order — seq is unique — so pop order is fully
// determined and independent of heap layout.
type eventHeap struct {
	s []*Event
}

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.s) }

// push schedules e on the heap.
func (h *eventHeap) push(e *Event) {
	e.idx = len(h.s)
	h.s = append(h.s, e)
	h.up(e.idx)
}

func (h *eventHeap) up(i int) {
	s := h.s
	e := s[i]
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(e, s[p]) {
			break
		}
		s[i] = s[p]
		s[i].idx = i
		i = p
	}
	s[i] = e
	e.idx = i
}

func (h *eventHeap) down(i int) {
	s := h.s
	n := len(s)
	e := s[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(s[r], s[l]) {
			m = r
		}
		if !eventLess(s[m], e) {
			break
		}
		s[i] = s[m]
		s[i].idx = i
		i = m
	}
	s[i] = e
	e.idx = i
}

// popMin removes and returns the earliest event, canceled or not; nil
// when empty. Callers (the kernel) discard canceled events and recycle.
func (h *eventHeap) popMin() *Event {
	n := len(h.s)
	if n == 0 {
		return nil
	}
	e := h.s[0]
	last := h.s[n-1]
	h.s[n-1] = nil
	h.s = h.s[:n-1]
	if n > 1 {
		h.s[0] = last
		last.idx = 0
		h.down(0)
	}
	e.idx = -1
	return e
}

// min returns the earliest event without removing it (may be canceled);
// nil when empty.
func (h *eventHeap) min() *Event {
	if len(h.s) == 0 {
		return nil
	}
	return h.s[0]
}
