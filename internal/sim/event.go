package sim

import "container/heap"

// Event is a scheduled kernel action. Events fire in (time, sequence)
// order; the sequence number makes simultaneous events fire in the order
// they were scheduled, which is what keeps runs deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	idx      int
	canceled bool
}

// Cancel prevents the event from firing. It reports whether the event was
// still pending; canceling an event that already fired or was already
// canceled returns false.
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.idx < 0 {
		return false
	}
	e.canceled = true
	return true
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// eventHeap orders events by (time, seq). It implements heap.Interface.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// push schedules e on the heap.
func (h *eventHeap) push(e *Event) { heap.Push(h, e) }

// pop removes and returns the earliest pending event, skipping canceled
// ones. It returns nil when the heap is exhausted.
func (h *eventHeap) pop() *Event {
	for h.Len() > 0 {
		e, ok := heap.Pop(h).(*Event)
		if !ok {
			continue
		}
		if e.canceled {
			continue
		}
		return e
	}
	return nil
}

// peek returns the earliest pending event without removing it, discarding
// canceled events as it goes. It returns nil when the heap is exhausted.
func (h *eventHeap) peek() *Event {
	for h.Len() > 0 {
		e := (*h)[0]
		if !e.canceled {
			return e
		}
		heap.Pop(h)
	}
	return nil
}
