package sim

import (
	"errors"
	"testing"
)

func prio(d int64) Priority { return Priority{Deadline: d, TxID: d} }

func TestCPUSingleUse(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	var done Time
	k.Spawn("t", func(p *Proc) {
		if err := cpu.Use(p, prio(1), 250); err != nil {
			t.Errorf("Use: %v", err)
		}
		done = p.Now()
	})
	k.Run()
	if done != 250 {
		t.Fatalf("completed at %d, want 250", done)
	}
	if cpu.Busy() != 250 {
		t.Fatalf("busy = %d, want 250", cpu.Busy())
	}
}

func TestCPUPreemption(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	var lowDone, highDone Time
	k.Spawn("low", func(p *Proc) {
		if err := cpu.Use(p, prio(100), 1000); err != nil {
			t.Errorf("low Use: %v", err)
		}
		lowDone = p.Now()
	})
	k.Spawn("high", func(p *Proc) {
		if err := p.Sleep(300); err != nil {
			return
		}
		if err := cpu.Use(p, prio(1), 200); err != nil {
			t.Errorf("high Use: %v", err)
		}
		highDone = p.Now()
	})
	k.Run()
	if highDone != 500 {
		t.Fatalf("high finished at %d, want 500 (preempts at 300)", highDone)
	}
	if lowDone != 1200 {
		t.Fatalf("low finished at %d, want 1200 (resumes after preemption)", lowDone)
	}
}

func TestCPUFIFONoPreemption(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, FIFO)
	var lowDone, highDone Time
	k.Spawn("low", func(p *Proc) {
		if err := cpu.Use(p, prio(100), 1000); err != nil {
			t.Errorf("low Use: %v", err)
		}
		lowDone = p.Now()
	})
	k.Spawn("high", func(p *Proc) {
		if err := p.Sleep(300); err != nil {
			return
		}
		if err := cpu.Use(p, prio(1), 200); err != nil {
			t.Errorf("high Use: %v", err)
		}
		highDone = p.Now()
	})
	k.Run()
	if lowDone != 1000 {
		t.Fatalf("low finished at %d, want 1000 (FIFO never preempts)", lowDone)
	}
	if highDone != 1200 {
		t.Fatalf("high finished at %d, want 1200 (queued behind low)", highDone)
	}
}

func TestCPUPriorityDispatchOrder(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	var order []string
	spawn := func(name string, pr Priority) {
		k.Spawn(name, func(p *Proc) {
			if err := cpu.Use(p, pr, 100); err != nil {
				return
			}
			order = append(order, name)
		})
	}
	// All arrive at time 0; the first gets the CPU, the rest queue by
	// priority.
	spawn("mid", prio(50))
	spawn("low", prio(90))
	spawn("high", prio(10))
	k.Run()
	// "mid" is dispatched first (CPU idle), then "high" preempts;
	// among the queued, high priority runs before low.
	want := []string{"high", "mid", "low"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCPUReprioritizeWaiter(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	var order []string
	var waiter *Proc
	k.Spawn("running", func(p *Proc) {
		if err := cpu.Use(p, prio(10), 500); err != nil {
			return
		}
		order = append(order, "running")
	})
	waiter = k.Spawn("waiter", func(p *Proc) {
		if err := cpu.Use(p, prio(90), 100); err != nil {
			return
		}
		order = append(order, "waiter")
	})
	// At 200, the waiter inherits a very urgent priority and must
	// preempt the running request.
	k.At(200, func() { cpu.Reprioritize(waiter, prio(1)) })
	k.Run()
	if len(order) != 2 || order[0] != "waiter" {
		t.Fatalf("order = %v, want waiter first after inheritance", order)
	}
}

func TestCPUCancelRunning(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	errAbort := errors.New("abort")
	var got error
	var next Time
	var victim *Proc
	victim = k.Spawn("victim", func(p *Proc) {
		got = cpu.Use(p, prio(1), 1000)
	})
	k.Spawn("next", func(p *Proc) {
		if err := cpu.Use(p, prio(2), 100); err != nil {
			t.Errorf("next Use: %v", err)
		}
		next = p.Now()
	})
	k.At(300, func() { victim.Interrupt(errAbort) })
	k.Run()
	if !errors.Is(got, errAbort) {
		t.Fatalf("victim got %v, want abort", got)
	}
	if next != 400 {
		t.Fatalf("next finished at %d, want 400 (dispatched at 300 for 100)", next)
	}
}

func TestCPUCancelQueued(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	var got error
	var victim *Proc
	k.Spawn("running", func(p *Proc) {
		if err := cpu.Use(p, prio(1), 1000); err != nil {
			t.Errorf("running Use: %v", err)
		}
	})
	victim = k.Spawn("queued", func(p *Proc) {
		got = cpu.Use(p, prio(2), 100)
	})
	k.At(50, func() { victim.Interrupt(errors.New("die")) })
	k.Run()
	if got == nil {
		t.Fatal("queued victim saw nil error")
	}
	if cpu.Busy() != 1000 {
		t.Fatalf("busy = %d, want 1000 (victim consumed nothing)", cpu.Busy())
	}
}

func TestCPUZeroDemand(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	ok := false
	k.Spawn("z", func(p *Proc) {
		if err := cpu.Use(p, prio(1), 0); err != nil {
			t.Errorf("Use(0): %v", err)
		}
		ok = true
	})
	k.Run()
	if !ok {
		t.Fatal("zero-demand use did not complete")
	}
}

func TestCPUBusyAccounting(t *testing.T) {
	k := NewKernel()
	cpu := NewCPU(k, PreemptivePriority)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("t", func(p *Proc) {
			if err := p.Sleep(Duration(i) * 10); err != nil {
				return
			}
			if err := cpu.Use(p, prio(int64(i+1)), 100); err != nil {
				t.Errorf("Use: %v", err)
			}
		})
	}
	k.Run()
	if cpu.Busy() != 400 {
		t.Fatalf("busy = %d, want 400", cpu.Busy())
	}
	if k.Now() != 400 {
		t.Fatalf("end time = %d, want 400 (work-conserving)", k.Now())
	}
}
