// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. It plays the role of the StarLite concurrent
// programming kernel in the paper's prototyping environment: simulated
// processes are created, readied, blocked, and terminated under a virtual
// clock, and exactly one process runs at a time so every run is
// reproducible.
package sim

// Time is an instant of virtual time, in ticks. One tick is one
// microsecond of simulated time; the constants below give readable units.
type Time int64

// Duration is a span of virtual time, in ticks.
type Duration int64

// Virtual-time units. These mirror time.Duration's naming but are
// independent of wall-clock time: the simulation advances only when the
// kernel dispatches events.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts a virtual duration to floating-point seconds, for
// reporting rates such as objects per second.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis converts a virtual duration to floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }
