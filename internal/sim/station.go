package sim

// Station is a k-server FIFO service center (e.g. a pool of disks).
// Requests queue for a free server, hold it for their service time, and
// release it. A Station with zero servers is a pure delay: every request
// is served immediately in parallel — the paper's "parallel I/O
// processing" assumption, and the default I/O model of the experiments.
type Station struct {
	k       *Kernel
	servers int
	sem     *Semaphore

	busy Duration
	jobs int

	// Probe handles, cached at construction (no-ops without a
	// registry).
	mJobs      Counter
	mBusy      Counter
	mInService Gauge
}

// NewStation returns a service center with the given number of servers
// (0 = infinite, pure delay).
func NewStation(k *Kernel, servers int) *Station {
	s := &Station{k: k, servers: servers}
	if servers > 0 {
		s.sem = NewSemaphore(k, servers)
	}
	m := k.Metrics()
	s.mJobs = m.Counter("io_jobs_total", "I/O service requests accepted.")
	s.mBusy = m.Counter("io_busy_ticks_total", "Virtual time of I/O service delivered.")
	s.mInService = m.Gauge("io_in_service", "I/O requests being served or queued.")
	return s
}

// Serve occupies one server for d, parking p while waiting and while
// served. It returns nil on completion or the cancellation error if the
// wait or the service was interrupted; an interrupted service still
// frees its server.
func (s *Station) Serve(p *Proc, d Duration) error {
	s.jobs++
	s.mJobs.Inc()
	s.mInService.Add(1)
	defer s.mInService.Add(-1)
	if s.sem == nil {
		s.busy += d
		s.mBusy.Add(int64(d))
		return p.Sleep(d)
	}
	if err := s.sem.Wait(p); err != nil {
		return err
	}
	err := p.Sleep(d)
	if err == nil {
		s.busy += d
		s.mBusy.Add(int64(d))
	} else {
		// Partial service: the exact consumed amount is unknown to
		// the station (the sleep was cut short); charge nothing.
	}
	s.sem.Signal()
	return err
}

// Servers returns the configured server count (0 = infinite).
func (s *Station) Servers() int { return s.servers }

// Jobs returns the number of service requests accepted.
func (s *Station) Jobs() int { return s.jobs }

// Busy returns the total service time delivered to completed requests.
func (s *Station) Busy() Duration { return s.busy }

// QueueLen reports requests waiting for a server.
func (s *Station) QueueLen() int {
	if s.sem == nil {
		return 0
	}
	return s.sem.Waiting()
}
