package sim

import (
	"errors"
	"testing"
)

func TestCancelAlreadyFiredEvent(t *testing.T) {
	k := NewKernel()
	var ev EventRef
	ev = k.At(10, func() {})
	k.Run()
	if ev.Cancel() {
		t.Fatal("Cancel of a fired event returned true")
	}
}

func TestCancelNilEvent(t *testing.T) {
	var ev EventRef
	if ev.Cancel() {
		t.Fatal("Cancel of zero EventRef returned true")
	}
}

// TestCancelRecycledEvent pins the generation check: a stale ref to a
// fired event must not cancel a different event that recycled the same
// struct.
func TestCancelRecycledEvent(t *testing.T) {
	k := NewKernel()
	stale := k.At(1, func() {})
	k.Run()
	// The recycled struct is reused for the next scheduled event.
	fired := false
	fresh := k.At(2, func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale ref canceled a recycled event")
	}
	if stale.Pending() {
		t.Fatal("stale ref reports pending")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event not pending")
	}
	k.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestEventAtAccessor(t *testing.T) {
	k := NewKernel()
	ev := k.At(42, func() {})
	if ev.At() != 42 {
		t.Fatalf("At() = %v", ev.At())
	}
	ev.Cancel()
	k.Run()
}

func TestRunUntilSkipsCanceledHead(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.At(5, func() { fired = true })
	k.At(10, func() {})
	ev.Cancel()
	k.RunUntil(20)
	if fired {
		t.Fatal("canceled head event fired")
	}
	if k.Now() != 20 {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestStepsBounded(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 5; i++ {
		k.At(Time(i), func() { count++ })
	}
	if ran := k.Steps(3); ran != 3 || count != 3 {
		t.Fatalf("Steps(3) ran %d, count %d", ran, count)
	}
	if ran := k.Steps(10); ran != 2 {
		t.Fatalf("Steps(10) ran %d, want remaining 2", ran)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childDone Time
	k.Spawn("parent", func(p *Proc) {
		if err := p.Sleep(10); err != nil {
			return
		}
		k.Spawn("child", func(c *Proc) {
			if err := c.Sleep(5); err != nil {
				return
			}
			childDone = c.Now()
		})
		if err := p.Sleep(100); err != nil {
			return
		}
	})
	k.Run()
	if childDone != 15 {
		t.Fatalf("child done at %v, want 15", childDone)
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d", k.Live())
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("named", func(p *Proc) {
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
		if p.Now() != k.Now() {
			t.Error("Now() mismatch")
		}
	})
	k.Run()
	if p.Name() != "named" || p.ID() == 0 {
		t.Fatalf("name=%q id=%d", p.Name(), p.ID())
	}
}

func TestTokenCancelBeforeParkConsumedInline(t *testing.T) {
	// A token woken before Park is consumed without yielding.
	k := NewKernel()
	var got error
	k.Spawn("p", func(p *Proc) {
		tok := &Token{}
		tok.Wake(errors.New("early"))
		got = p.Park(tok)
	})
	k.Run()
	if got == nil || got.Error() != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestZeroSleepStillYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		if err := p.Sleep(0); err != nil {
			return
		}
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	// a parks at its zero-sleep, letting b run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInterruptTwiceSecondFails(t *testing.T) {
	k := NewKernel()
	var proc *Proc
	proc = k.Spawn("p", func(p *Proc) {
		_ = p.Sleep(1000)
	})
	k.At(10, func() {
		if !proc.Interrupt(errors.New("first")) {
			t.Error("first interrupt failed")
		}
		if proc.Interrupt(errors.New("second")) {
			t.Error("second interrupt succeeded on same park")
		}
	})
	k.Run()
}

func TestSemaphoreTryWait(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 1)
	if !sem.TryWait() {
		t.Fatal("TryWait failed with count 1")
	}
	if sem.TryWait() {
		t.Fatal("TryWait succeeded with count 0")
	}
	sem.Signal()
	if sem.Count() != 1 {
		t.Fatalf("count = %d", sem.Count())
	}
}

func TestShutdownIdempotentWhenEmpty(t *testing.T) {
	k := NewKernel()
	if err := k.Shutdown(); err != nil {
		t.Fatalf("Shutdown of empty kernel: %v", err)
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel()
	k.At(1, func() {})
	k.At(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("pending after run = %d", k.Pending())
	}
}
