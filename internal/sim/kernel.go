package sim

import (
	"errors"
	"fmt"
	"sort"

	"rtlock/internal/journal"
	"rtlock/internal/metrics"
)

// Kernel errors delivered to parked processes.
var (
	// ErrShutdown wakes every parked process when the kernel shuts
	// down; process bodies should unwind promptly when they see it.
	ErrShutdown = errors.New("sim: kernel shutdown")
)

// Kernel is the discrete-event scheduler. It owns the virtual clock and
// the event heap, and it hands control to at most one simulated process
// at a time, so all simulation code runs single-threaded and every run
// with the same inputs produces the same interleaving.
//
// A Kernel is not safe for concurrent use from multiple OS threads; all
// interaction happens either before Run or from inside event handlers
// and process bodies.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap

	// freeEvents and freeTokens recycle fired/discarded events and
	// consumed wait tokens. An Event is reachable from outside the
	// kernel only through generation-checked EventRefs, and a Token is
	// recycled only by the call site that owns its full lifecycle
	// (Sleep, CPU.Use), so reuse cannot alias live state. batch is the
	// reused chooseNext scratch.
	freeEvents []*Event
	freeTokens []*Token
	batch      []*Event

	// yielded is signaled by the running process when it parks,
	// terminates, or otherwise returns control to the kernel.
	yielded chan struct{}
	current *Proc
	parked  map[*Proc]struct{}
	nextPID int64
	live    int

	// jrn, when set, receives process lifecycle records; jrnSite tags
	// them with the site this kernel simulates (0 single-site).
	jrn     *journal.Journal
	jrnSite int32

	// met, when set, receives virtual-time samples: the dispatch loop
	// takes one registry snapshot per sampleEvery of virtual time (plus
	// a final row when the event heap drains). Sampling is driven by
	// event timestamps, never by extra scheduled events, so attaching
	// metrics cannot change the event interleaving or the journal.
	met         *metrics.Registry
	sampleEvery Duration
	nextSample  Time
	flushedAt   Time

	// Kernel-owned probe handles (no-ops without a registry).
	mEvents Counter
	mProcs  Gauge
	mSpawns Counter

	// chooser, when set, overrides scheduling decision points (see
	// choice.go); nil means canonical order.
	chooser Chooser
}

// Metric handle aliases, so subsystems in this package and its
// dependents can hold probe handles without importing metrics
// everywhere.
type (
	// Counter is a monotonically increasing metric handle.
	Counter = metrics.Counter
	// Gauge is an up/down metric handle.
	Gauge = metrics.Gauge
	// Histogram is a fixed-bucket distribution handle.
	Histogram = metrics.Histogram
)

// DefaultSampleInterval spaces metric samples when the caller does not
// choose: 100ms of virtual time.
const DefaultSampleInterval = 100 * Millisecond

// SetMetrics attaches a metrics registry, sampled every `every` of
// virtual time (zero or negative picks DefaultSampleInterval). It must
// be called before the subsystems whose constructors cache probe
// handles (CPU, stations, network) are built. A nil registry detaches.
func (k *Kernel) SetMetrics(m *metrics.Registry, every Duration) {
	k.met = m
	k.mEvents = m.Counter("sim_events_total", "Kernel events dispatched.")
	k.mProcs = m.Gauge("sim_procs_live", "Simulated processes currently alive.")
	k.mSpawns = m.Counter("sim_procs_spawned_total", "Simulated processes spawned.")
	if m == nil {
		k.sampleEvery = 0
		return
	}
	if every <= 0 {
		every = DefaultSampleInterval
	}
	k.sampleEvery = every
	k.nextSample = k.now.Add(every)
	k.flushedAt = -1
}

// Metrics returns the attached registry (nil when none). Probe sites
// call it once at construction; all registry methods are nil-safe.
func (k *Kernel) Metrics() *metrics.Registry { return k.met }

// sampleTo takes every due registry snapshot strictly before advancing
// the clock to t: a sample at time T reflects the state after all
// events earlier than T and before any event at T.
func (k *Kernel) sampleTo(t Time) {
	for k.nextSample <= t {
		k.met.Sample(int64(k.nextSample))
		k.flushedAt = k.nextSample
		k.nextSample = k.nextSample.Add(k.sampleEvery)
	}
}

// flushSample records one final row at the current time when the event
// heap drains, so short runs (and the tail beyond the last boundary)
// still appear in the time series. Repeated drains at the same instant
// (Cluster.Run re-enters Run after shutdown) add nothing.
func (k *Kernel) flushSample() {
	if k.now > k.flushedAt {
		k.met.Sample(int64(k.now))
		k.flushedAt = k.now
	}
}

// SetJournal attaches a replay journal to the kernel; process spawn and
// termination events are recorded to it, tagged with the given site id.
// A nil journal detaches.
func (k *Kernel) SetJournal(j *journal.Journal, site int32) {
	k.jrn = j
	k.jrnSite = site
}

// Journal returns the attached journal (nil when none).
func (k *Kernel) Journal() *journal.Journal { return k.jrn }

// JournalSite returns the site id journal records are tagged with.
func (k *Kernel) JournalSite() int32 { return k.jrnSite }

// Emit appends a record to the attached journal (a no-op when none) at
// the current virtual time, tagged with the kernel's site. Subsystems
// that hold a kernel reference use it instead of tracking the journal
// themselves.
//
//rtlint:allocfree
func (k *Kernel) Emit(kind journal.Kind, tx int64, obj int32, a, b int64, note string) {
	k.jrn.Append(int64(k.now), kind, k.jrnSite, tx, obj, a, b, note)
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		parked:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at virtual time t. Times in
// the past are clamped to now. The returned handle may be used to cancel.
func (k *Kernel) At(t Time, fn func()) EventRef {
	return k.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (k *Kernel) After(d Duration, fn func()) EventRef {
	return k.schedule(k.now.Add(d), fn, nil, nil)
}

// AtCall is the allocation-free form of At: call(arg) runs at t. Hot
// sites use it because storing a pointer in an interface value does not
// allocate, while the equivalent capturing closure does.
func (k *Kernel) AtCall(t Time, call func(any), arg any) EventRef {
	return k.schedule(t, nil, call, arg)
}

// AfterCall is the allocation-free form of After.
func (k *Kernel) AfterCall(d Duration, call func(any), arg any) EventRef {
	return k.schedule(k.now.Add(d), nil, call, arg)
}

//rtlint:allocfree
func (k *Kernel) schedule(t Time, fn func(), call func(any), arg any) EventRef {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var e *Event
	if n := len(k.freeEvents); n > 0 {
		e = k.freeEvents[n-1]
		k.freeEvents[n-1] = nil
		k.freeEvents = k.freeEvents[:n-1]
	} else {
		e = &Event{} //rtlint:allow allocfree pool-miss growth path: one Event per high-water-mark, amortized to zero in steady state
	}
	e.at = t
	e.seq = k.seq
	e.fn = fn
	e.call = call
	e.arg = arg
	k.events.push(e)
	return EventRef{e: e, gen: e.gen}
}

// recycle returns a fired or discarded event to the pool. Bumping the
// generation first invalidates every outstanding EventRef to it.
//
//rtlint:allocfree
func (k *Kernel) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.call = nil
	e.arg = nil
	e.canceled = false
	e.idx = -1
	k.freeEvents = append(k.freeEvents, e)
}

// popEvent removes and returns the earliest pending event, recycling
// canceled ones as it goes; nil when the heap is exhausted.
//
//rtlint:allocfree
func (k *Kernel) popEvent() *Event {
	for {
		e := k.events.popMin()
		if e == nil {
			return nil
		}
		if e.canceled {
			k.recycle(e)
			continue
		}
		return e
	}
}

// peekEvent returns the earliest pending event without removing it,
// recycling canceled events as it goes; nil when exhausted.
//
//rtlint:allocfree
func (k *Kernel) peekEvent() *Event {
	for {
		e := k.events.min()
		if e == nil {
			return nil
		}
		if !e.canceled {
			return e
		}
		k.events.popMin()
		k.recycle(e)
	}
}

// dispatch runs the event's handler and recycles the struct. The handler
// runs to completion (nested process switches included) before the
// recycle, so e's fields are stable for its whole execution.
//
//rtlint:allocfree
func (k *Kernel) dispatch(e *Event) {
	if e.call != nil {
		e.call(e.arg)
	} else {
		e.fn()
	}
	k.recycle(e)
}

// Run dispatches events until none remain. It returns the final virtual
// time.
//
// Canonical runs — no chooser, no metrics sampling — take a fast path
// with nothing in the loop but pop/advance/dispatch; the choice-point
// and sampling hooks are compiled out entirely rather than branch-tested
// per event.
//
//rtlint:allocfree
func (k *Kernel) Run() Time {
	if k.chooser == nil && (k.met == nil || k.sampleEvery <= 0) {
		for {
			e := k.popEvent()
			if e == nil {
				return k.now
			}
			k.now = e.at
			k.dispatch(e)
		}
	}
	sampling := k.met != nil && k.sampleEvery > 0
	for {
		e := k.popEvent()
		if e == nil {
			if sampling {
				k.flushSample()
			}
			return k.now
		}
		if k.chooser != nil {
			e = k.chooseNext(e)
		}
		if sampling {
			k.sampleTo(e.at)
			k.mEvents.Inc()
		}
		k.now = e.at
		k.dispatch(e)
	}
}

// RunUntil dispatches events with timestamps <= t, then advances the
// clock to t. Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for {
		e := k.peekEvent()
		if e == nil || e.at > t {
			break
		}
		k.events.popMin()
		k.now = e.at
		k.dispatch(e)
	}
	if k.now < t {
		k.now = t
	}
}

// Steps dispatches up to n events and reports how many actually ran.
// It exists for tests that want fine-grained control.
func (k *Kernel) Steps(n int) int {
	ran := 0
	for ran < n {
		e := k.popEvent()
		if e == nil {
			break
		}
		k.now = e.at
		k.dispatch(e)
		ran++
	}
	return ran
}

// Shutdown interrupts every parked process with ErrShutdown and runs the
// resulting unwinding until no live processes remain (or a safety bound
// is hit, which indicates a process that refuses to die). Tests that end
// a simulation early use it to avoid leaking goroutines.
func (k *Kernel) Shutdown() error {
	const maxRounds = 100000
	for round := 0; round < maxRounds; round++ {
		if k.live == 0 {
			return nil
		}
		// Interrupt in process-id order: map iteration order would
		// otherwise leak into the wake ordering (and the journal's
		// procend sequence) of processes dying at the same instant.
		procs := make([]*Proc, 0, len(k.parked))
		for p := range k.parked {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
		for _, p := range procs {
			p.Interrupt(ErrShutdown)
		}
		if k.Steps(1) == 0 {
			// Live processes but nothing runnable: every live
			// process must be parked; the next round interrupts
			// them. If none are parked either, we are stuck.
			if len(k.parked) == 0 {
				return fmt.Errorf("sim: shutdown stuck with %d live processes", k.live)
			}
		}
	}
	return fmt.Errorf("sim: shutdown did not converge; %d live processes", k.live)
}

// Live reports the number of processes that have started and not yet
// terminated.
func (k *Kernel) Live() int { return k.live }

// Pending reports the number of events still scheduled (including
// canceled events not yet discarded).
func (k *Kernel) Pending() int { return k.events.len() }

// switchTo transfers control to p and blocks the kernel until p yields
// back (by parking or terminating).
func (k *Kernel) switchTo(p *Proc) {
	if p.dead {
		return
	}
	k.current = p
	p.resume <- struct{}{}
	<-k.yielded
	k.current = nil
}

// Current returns the process currently holding the kernel, or nil when
// the kernel itself is running (e.g. inside a timer event).
func (k *Kernel) Current() *Proc { return k.current }
