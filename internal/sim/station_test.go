package sim

import (
	"errors"
	"testing"
)

func TestStationInfiniteParallel(t *testing.T) {
	k := NewKernel()
	st := NewStation(k, 0)
	var finishes []Time
	for i := 0; i < 5; i++ {
		k.Spawn("j", func(p *Proc) {
			if err := st.Serve(p, 100); err != nil {
				t.Errorf("Serve: %v", err)
				return
			}
			finishes = append(finishes, p.Now())
		})
	}
	k.Run()
	// All five overlap fully: everyone finishes at 100.
	for _, f := range finishes {
		if f != 100 {
			t.Fatalf("finishes = %v, want all 100 (parallel)", finishes)
		}
	}
	if st.Jobs() != 5 || st.Busy() != 500 {
		t.Fatalf("jobs=%d busy=%d", st.Jobs(), st.Busy())
	}
}

func TestStationSingleServerSerializes(t *testing.T) {
	k := NewKernel()
	st := NewStation(k, 1)
	var finishes []Time
	for i := 0; i < 3; i++ {
		k.Spawn("j", func(p *Proc) {
			if err := st.Serve(p, 100); err != nil {
				return
			}
			finishes = append(finishes, p.Now())
		})
	}
	k.Run()
	want := []Time{100, 200, 300}
	for i, f := range finishes {
		if f != want[i] {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

func TestStationTwoServers(t *testing.T) {
	k := NewKernel()
	st := NewStation(k, 2)
	var last Time
	for i := 0; i < 4; i++ {
		k.Spawn("j", func(p *Proc) {
			if err := st.Serve(p, 100); err != nil {
				return
			}
			last = p.Now()
		})
	}
	k.Run()
	// 4 jobs on 2 servers, 100 each: done at 200.
	if last != 200 {
		t.Fatalf("last finish = %v, want 200", last)
	}
}

func TestStationCancelWhileQueuedFreesNothing(t *testing.T) {
	k := NewKernel()
	st := NewStation(k, 1)
	errKill := errors.New("kill")
	var victim *Proc
	var got error
	k.Spawn("holder", func(p *Proc) {
		if err := st.Serve(p, 100); err != nil {
			t.Errorf("holder: %v", err)
		}
	})
	victim = k.Spawn("victim", func(p *Proc) { got = st.Serve(p, 100) })
	var thirdDone Time
	k.Spawn("third", func(p *Proc) {
		if err := p.Sleep(10); err != nil {
			return
		}
		if err := st.Serve(p, 100); err != nil {
			return
		}
		thirdDone = p.Now()
	})
	k.At(50, func() { victim.Interrupt(errKill) })
	k.Run()
	if !errors.Is(got, errKill) {
		t.Fatalf("victim err = %v", got)
	}
	// Third runs right after the holder (victim dequeued): 100..200.
	if thirdDone != 200 {
		t.Fatalf("third done at %v, want 200", thirdDone)
	}
}

func TestStationCancelDuringServiceFreesServer(t *testing.T) {
	k := NewKernel()
	st := NewStation(k, 1)
	var victim *Proc
	victim = k.Spawn("victim", func(p *Proc) {
		_ = st.Serve(p, 1000)
	})
	var nextDone Time
	k.Spawn("next", func(p *Proc) {
		if err := p.Sleep(10); err != nil {
			return
		}
		if err := st.Serve(p, 50); err != nil {
			return
		}
		nextDone = p.Now()
	})
	k.At(100, func() { victim.Interrupt(errors.New("die")) })
	k.Run()
	// Victim's server frees at 100; next serves 100..150.
	if nextDone != 150 {
		t.Fatalf("next done at %v, want 150 (server freed on cancel)", nextDone)
	}
	if st.QueueLen() != 0 {
		t.Fatalf("queue leaked: %d", st.QueueLen())
	}
}
