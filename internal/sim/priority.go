package sim

import (
	"fmt"
	"math"
)

// Priority is a totally ordered transaction priority. The paper assigns
// the highest priority to the transaction with the earliest deadline and
// assumes unique priorities (the ceiling tests are strict comparisons),
// so ties on deadline are broken by transaction id: between two equal
// deadlines the older (smaller id) transaction is the more urgent one.
type Priority struct {
	// Deadline is the virtual-time deadline backing the priority;
	// smaller means more urgent.
	Deadline int64
	// TxID breaks deadline ties; smaller wins.
	TxID int64
}

// MinPriority is lower than every real transaction priority. It is the
// identity element when folding Max over a set of priorities, e.g. when
// computing a priority ceiling over an empty set of lock holders.
var MinPriority = Priority{Deadline: math.MaxInt64, TxID: math.MaxInt64}

// MaxPriority is higher than every real transaction priority. System
// chores that must never be blocked (such as replica installation at a
// site that models an interrupt handler) may use it.
var MaxPriority = Priority{Deadline: math.MinInt64, TxID: math.MinInt64}

// Higher reports whether p is strictly more urgent than q.
func (p Priority) Higher(q Priority) bool {
	if p.Deadline != q.Deadline {
		return p.Deadline < q.Deadline
	}
	return p.TxID < q.TxID
}

// Lower reports whether p is strictly less urgent than q.
func (p Priority) Lower(q Priority) bool { return q.Higher(p) }

// Max returns the more urgent of p and q.
func (p Priority) Max(q Priority) Priority {
	if q.Higher(p) {
		return q
	}
	return p
}

// String renders the priority for traces and test failures.
func (p Priority) String() string {
	switch p {
	case MinPriority:
		return "prio(min)"
	case MaxPriority:
		return "prio(max)"
	}
	return fmt.Sprintf("prio(d=%d,tx=%d)", p.Deadline, p.TxID)
}
