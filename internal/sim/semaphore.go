package sim

// Semaphore is a counting semaphore with a FIFO wait queue, matching the
// StarLite kernel primitive the paper's message server blocks senders on.
type Semaphore struct {
	k *Kernel
	n int
	q []*Token
}

// NewSemaphore returns a semaphore with an initial count.
func NewSemaphore(k *Kernel, initial int) *Semaphore {
	return &Semaphore{k: k, n: initial}
}

// Wait decrements the count, parking p while the count is zero. It
// returns nil once a unit is acquired, or the interruption error if the
// wait was canceled.
func (s *Semaphore) Wait(p *Proc) error {
	if s.n > 0 {
		s.n--
		return nil
	}
	tok := &Token{}
	s.q = append(s.q, tok)
	tok.OnCancel = func() { s.drop(tok) }
	return p.Park(tok)
}

// TryWait acquires a unit without blocking, reporting success.
func (s *Semaphore) TryWait() bool {
	if s.n > 0 {
		s.n--
		return true
	}
	return false
}

// Signal releases a unit, waking the longest-waiting process if any.
func (s *Semaphore) Signal() {
	for len(s.q) > 0 {
		tok := s.q[0]
		s.q = s.q[1:]
		if tok.Wake(nil) {
			return
		}
	}
	s.n++
}

// Count returns the currently available units.
func (s *Semaphore) Count() int { return s.n }

// Waiting returns the number of parked waiters.
func (s *Semaphore) Waiting() int { return len(s.q) }

func (s *Semaphore) drop(tok *Token) {
	for i, t := range s.q {
		if t == tok {
			s.q = append(s.q[:i], s.q[i+1:]...)
			return
		}
	}
}
