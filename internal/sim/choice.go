package sim

import "rtlock/internal/journal"

// ChoicePoint identifies one kind of scheduling decision the kernel (or
// a subsystem holding a kernel reference) exposes to schedule-space
// exploration. At each point the canonical simulator has exactly one
// fixed ordering; a Chooser may substitute any of the n legal
// alternatives, turning the single canonical interleaving into a tree of
// schedules.
type ChoicePoint int32

// The decision-point taxonomy. Alternative 0 is always the canonical
// pick, so a chooser that returns 0 everywhere reproduces the canonical
// run exactly (byte-identical journal included: canonical picks are
// never journaled).
const (
	// ChooseEvent orders simultaneous kernel events: which of the n
	// events sharing the minimum timestamp fires first.
	ChooseEvent ChoicePoint = 1
	// ChooseReady breaks CPU ready-queue ties: which of the n
	// equal-priority ready requests is dispatched next.
	ChooseReady ChoicePoint = 2
	// ChooseMsg orders message delivery: which of the n queued
	// messages a netsim server handles next.
	ChooseMsg ChoicePoint = 3
	// ChooseVote orders 2PC prepare fan-out (and hence vote arrival):
	// which rotation of the participant list the coordinator uses.
	ChooseVote ChoicePoint = 4
	// ChooseCrash decides whether a site crashes at a fault-space
	// decision instant: alternative 0 is "no crash", alternative i > 0
	// crashes site i-1. Surfaced through ChooseQuiet — the faults layer
	// journals the chosen crash itself (KFaultCrash).
	ChooseCrash ChoicePoint = 5
	// ChooseFate decides one inter-site message's fate: 0 = deliver,
	// 1 = drop, 2 = duplicate. Surfaced through ChooseQuiet (KFaultFate
	// records the decision).
	ChooseFate ChoicePoint = 6
	// ChooseCut decides whether a site is cut off by a partition at a
	// fault-space decision instant: 0 = no cut, i > 0 isolates site i-1.
	// Surfaced through ChooseQuiet (KFaultCut records the decision).
	ChooseCut ChoicePoint = 7
)

// String returns the stable short name used in KChoice journal notes.
func (p ChoicePoint) String() string {
	switch p {
	case ChooseEvent:
		return "event"
	case ChooseReady:
		return "ready"
	case ChooseMsg:
		return "msg"
	case ChooseVote:
		return "vote"
	case ChooseCrash:
		return "crash"
	case ChooseFate:
		return "fate"
	case ChooseCut:
		return "cut"
	default:
		return "choice?"
	}
}

// Chooser supplies scheduling decisions. Choose is called with the
// decision-point kind and the number of legal alternatives n (always
// >= 2; unary decisions are not surfaced) and must return an index in
// [0, n). Out-of-range returns are clamped by the kernel, which makes
// replaying a recorded decision trace against a slightly divergent
// schedule safe: the trace degrades to canonical instead of panicking.
//
// Choose runs on the single kernel dispatch thread; implementations
// need no locking but must be deterministic functions of their own
// state and the call sequence.
type Chooser interface {
	Choose(p ChoicePoint, n int) int
}

// SetChooser attaches a schedule chooser to the kernel (nil detaches,
// restoring canonical order). It must be installed before Run; swapping
// choosers mid-run yields well-defined but unnamed hybrids.
func (k *Kernel) SetChooser(c Chooser) { k.chooser = c }

// Chooser returns the attached chooser (nil when none).
func (k *Kernel) Chooser() Chooser { return k.chooser }

// Choose asks the attached chooser to pick among n alternatives at
// decision point p. Without a chooser, or with fewer than two
// alternatives, it returns the canonical pick 0 without consulting
// anything — so decision sites may call it unconditionally on hot paths.
// A non-canonical pick is journaled as KChoice (A = point kind, B =
// pick); canonical picks are not journaled, keeping canonical-chooser
// runs byte-identical to chooser-less runs.
func (k *Kernel) Choose(p ChoicePoint, n int) int {
	if k.chooser == nil || n < 2 {
		return 0
	}
	pick := k.chooser.Choose(p, n)
	if pick <= 0 {
		return 0
	}
	if pick >= n {
		pick = n - 1
	}
	k.Emit(journal.KChoice, 0, 0, int64(p), int64(pick), p.String())
	return pick
}

// ChooseQuiet is Choose without the KChoice record: same guards, same
// clamping, no journal emission. It serves the fault decision points
// (ChooseCrash, ChooseFate, ChooseCut), whose outcomes the faults layer
// journals itself as KFaultCrash/KFaultFate/KFaultCut — records that a
// chooser-less replay of the exported fault plan emits identically, so
// a minimized fault schedule and its plan replay stay byte-identical.
func (k *Kernel) ChooseQuiet(p ChoicePoint, n int) int {
	if k.chooser == nil || n < 2 {
		return 0
	}
	pick := k.chooser.Choose(p, n)
	if pick <= 0 {
		return 0
	}
	if pick >= n {
		pick = n - 1
	}
	return pick
}

// chooseNext widens a just-popped event into the full set of pending
// events sharing its timestamp, lets the chooser pick which fires first,
// and re-pushes the rest (their (time, seq) keys are untouched, so the
// canonical relative order among the deferred events is preserved and
// re-chosen at the next dispatch). Called only when a chooser is
// attached.
func (k *Kernel) chooseNext(e *Event) *Event {
	if p := k.peekEvent(); p == nil || p.at != e.at {
		return e
	}
	// The clock is about to advance to e.at anyway; advance it first so
	// the KChoice record carries the decision's virtual time.
	k.now = e.at
	batch := append(k.batch[:0], e)
	for {
		p := k.peekEvent()
		if p == nil || p.at != e.at {
			break
		}
		batch = append(batch, k.events.popMin())
	}
	pick := k.Choose(ChooseEvent, len(batch))
	for i, b := range batch {
		if i != pick {
			k.events.push(b)
		}
	}
	picked := batch[pick]
	for i := range batch {
		batch[i] = nil
	}
	k.batch = batch[:0]
	return picked
}
