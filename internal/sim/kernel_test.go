package sim

import (
	"errors"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	end := k.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events out of schedule order: %v", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestPastEventClampedToNow(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.At(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 100 {
		t.Fatalf("past-scheduled event ran at %d, want 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, tt := range []Time{10, 20, 30, 40} {
		tt := tt
		k.At(tt, func() { fired = append(fired, tt) })
	}
	k.RunUntil(25)
	if len(fired) != 2 || k.Now() != 25 {
		t.Fatalf("RunUntil(25): fired=%v now=%d", fired, k.Now())
	}
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events did not fire: %v", fired)
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		if err := p.Sleep(500); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		wake = p.Now()
	})
	k.Run()
	if wake != 500 {
		t.Fatalf("woke at %d, want 500", wake)
	}
	if k.Live() != 0 {
		t.Fatalf("%d live processes after Run", k.Live())
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					if err := p.Sleep(10); err != nil {
						return
					}
				}
			})
		}
		k.Run()
		return trace
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("trace lengths differ: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, first, again)
			}
		}
	}
}

func TestTokenWakeDeliversError(t *testing.T) {
	k := NewKernel()
	errBoom := errors.New("boom")
	var got error
	tok := &Token{}
	k.Spawn("waiter", func(p *Proc) {
		got = p.Park(tok)
	})
	k.At(50, func() { tok.Wake(errBoom) })
	k.Run()
	if !errors.Is(got, errBoom) {
		t.Fatalf("Park returned %v, want errBoom", got)
	}
}

func TestTokenWakeOnlyOnce(t *testing.T) {
	k := NewKernel()
	tok := &Token{}
	k.Spawn("waiter", func(p *Proc) {
		if err := p.Park(tok); err != nil {
			t.Errorf("Park: %v", err)
		}
	})
	k.At(10, func() {
		if !tok.Wake(nil) {
			t.Error("first Wake returned false")
		}
		if tok.Wake(errors.New("late")) {
			t.Error("second Wake returned true")
		}
	})
	k.Run()
}

func TestInterruptCancelsSleep(t *testing.T) {
	k := NewKernel()
	errAbort := errors.New("abort")
	var got error
	var woke Time
	var proc *Proc
	proc = k.Spawn("sleeper", func(p *Proc) {
		got = p.Sleep(1000)
		woke = p.Now()
	})
	k.At(100, func() {
		if !proc.Interrupt(errAbort) {
			t.Error("Interrupt returned false for a parked process")
		}
	})
	k.Run()
	if !errors.Is(got, errAbort) {
		t.Fatalf("Sleep returned %v, want abort error", got)
	}
	if woke != 100 {
		t.Fatalf("woke at %d, want 100 (immediately on interrupt)", woke)
	}
}

func TestInterruptRunsOnCancelHook(t *testing.T) {
	k := NewKernel()
	cleaned := false
	tok := &Token{OnCancel: func() { cleaned = true }}
	var proc *Proc
	proc = k.Spawn("p", func(p *Proc) {
		if err := p.Park(tok); err == nil {
			t.Error("Park returned nil after cancel")
		}
	})
	k.At(5, func() { proc.Interrupt(errors.New("x")) })
	k.Run()
	if !cleaned {
		t.Fatal("OnCancel hook did not run")
	}
}

func TestInterruptNotParked(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("idle", func(p *Proc) {})
	k.Run()
	if p.Interrupt(errors.New("x")) {
		t.Fatal("Interrupt of a terminated process returned true")
	}
}

func TestShutdownUnparksAll(t *testing.T) {
	k := NewKernel()
	var errs []error
	for i := 0; i < 5; i++ {
		k.Spawn("stuck", func(p *Proc) {
			errs = append(errs, p.Park(&Token{}))
		})
	}
	k.RunUntil(10)
	if k.Live() != 5 {
		t.Fatalf("live = %d, want 5", k.Live())
	}
	if err := k.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d after shutdown", k.Live())
	}
	for _, err := range errs {
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("parked process got %v, want ErrShutdown", err)
		}
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 1)
	var order []string
	worker := func(name string, start Duration) {
		k.Spawn(name, func(p *Proc) {
			if err := p.Sleep(start); err != nil {
				return
			}
			if err := sem.Wait(p); err != nil {
				return
			}
			order = append(order, name)
			if err := p.Sleep(100); err != nil {
				return
			}
			sem.Signal()
		})
	}
	worker("a", 0)
	worker("b", 10)
	worker("c", 20)
	k.Run()
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("semaphore order %v, want %v", order, want)
		}
	}
}

func TestSemaphoreCancelWaiter(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 0)
	var got error
	var proc *Proc
	proc = k.Spawn("w", func(p *Proc) { got = sem.Wait(p) })
	k.At(5, func() { proc.Interrupt(errors.New("die")) })
	k.At(10, func() {
		sem.Signal() // must not be consumed by the dead waiter
		if sem.Count() != 1 {
			t.Errorf("count = %d after signaling past a canceled waiter, want 1", sem.Count())
		}
	})
	k.Run()
	if got == nil {
		t.Fatal("canceled waiter saw nil error")
	}
}

func TestPriorityOrdering(t *testing.T) {
	early := Priority{Deadline: 100, TxID: 2}
	late := Priority{Deadline: 200, TxID: 1}
	if !early.Higher(late) {
		t.Fatal("earlier deadline should be higher priority")
	}
	tieA := Priority{Deadline: 100, TxID: 1}
	tieB := Priority{Deadline: 100, TxID: 2}
	if !tieA.Higher(tieB) {
		t.Fatal("smaller TxID should break deadline ties")
	}
	if MinPriority.Higher(late) {
		t.Fatal("MinPriority must not outrank a real priority")
	}
	if !MaxPriority.Higher(early) {
		t.Fatal("MaxPriority must outrank every real priority")
	}
	if got := early.Max(late); got != early {
		t.Fatalf("Max = %v, want %v", got, early)
	}
	if !late.Lower(early) {
		t.Fatal("Lower is the inverse of Higher")
	}
}
