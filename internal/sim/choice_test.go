package sim

import (
	"reflect"
	"testing"

	"rtlock/internal/journal"
)

// pickChooser returns scripted picks, then canonical.
type pickChooser struct {
	picks []int
	calls []int // n of each consulted decision
	pos   int
}

func (c *pickChooser) Choose(p ChoicePoint, n int) int {
	c.calls = append(c.calls, n)
	pick := 0
	if c.pos < len(c.picks) {
		pick = c.picks[c.pos]
	}
	c.pos++
	return pick
}

// TestChooseEventOrdersSimultaneousEvents: three events on the same
// tick are surfaced as a 3-way then 2-way choice, and the picked order
// is honored.
func TestChooseEventOrdersSimultaneousEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.At(5, func() { order = append(order, name) })
	}
	ch := &pickChooser{picks: []int{2, 1}}
	k.SetChooser(ch)
	k.Run()
	if want := []string{"c", "b", "a"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	if want := []int{3, 2}; !reflect.DeepEqual(ch.calls, want) {
		t.Fatalf("consulted %v, want %v", ch.calls, want)
	}
}

// TestCanonicalChooserMatchesNoChooser: a chooser that always picks 0
// reproduces the chooser-less run exactly, journal included (KChoice is
// only emitted for non-canonical picks).
func TestCanonicalChooserMatchesNoChooser(t *testing.T) {
	run := func(attach bool) (*journal.Journal, []string) {
		k := NewKernel()
		j := journal.New(1, "choice-test")
		k.SetJournal(j, 0)
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.At(5, func() {
				order = append(order, name)
				k.Emit(journal.KArrive, int64(len(order)), 0, 0, 0, name)
			})
		}
		k.At(7, func() { order = append(order, "d") })
		if attach {
			k.SetChooser(&pickChooser{})
		}
		k.Run()
		return j, order
	}
	j1, o1 := run(false)
	j2, o2 := run(true)
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("orders differ: %v vs %v", o1, o2)
	}
	if j1.HashString() != j2.HashString() {
		t.Fatalf("canonical chooser changed the journal:\n%s", journal.Diff(j1, j2))
	}
}

// TestNonCanonicalPickIsJournaled: deviating picks land in the journal
// as KChoice records carrying the point kind and pick.
func TestNonCanonicalPickIsJournaled(t *testing.T) {
	k := NewKernel()
	j := journal.New(1, "choice-test")
	k.SetJournal(j, 0)
	k.At(5, func() {})
	k.At(5, func() {})
	k.SetChooser(&pickChooser{picks: []int{1}})
	k.Run()
	var found *journal.Record
	for _, r := range j.Records() {
		if r.Kind == journal.KChoice {
			r := r
			found = &r
		}
	}
	if found == nil {
		t.Fatal("no KChoice record for a non-canonical pick")
	}
	if found.A != int64(ChooseEvent) || found.B != 1 || found.Note != "event" {
		t.Fatalf("KChoice record = %+v, want A=%d B=1 note=event", found, ChooseEvent)
	}
	if found.At != 5 {
		t.Fatalf("KChoice at t=%d, want the decision's virtual time 5", found.At)
	}
}

// TestChooseClampsOutOfRangePicks: picks outside [0, n) degrade to the
// nearest legal alternative instead of panicking, so stale decision
// traces replay safely.
func TestChooseClampsOutOfRangePicks(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		k.At(1, func() { order = append(order, name) })
	}
	k.At(2, func() { order = append(order, "c") })
	k.At(2, func() { order = append(order, "d") })
	k.SetChooser(&pickChooser{picks: []int{99, -7}})
	k.Run()
	// 99 clamps to n-1=1 (pick "b"); -7 clamps to canonical 0.
	if want := []string{"b", "a", "c", "d"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestChoiceCancellationSafe: canceled events never reach the chooser
// as alternatives.
func TestChoiceCancellationSafe(t *testing.T) {
	k := NewKernel()
	var order []string
	ev := k.At(3, func() { order = append(order, "x") })
	k.At(3, func() { order = append(order, "y") })
	ev.Cancel()
	ch := &pickChooser{}
	k.SetChooser(ch)
	k.Run()
	if want := []string{"y"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	if len(ch.calls) != 0 {
		t.Fatalf("chooser consulted %v times for a unary decision", ch.calls)
	}
}
