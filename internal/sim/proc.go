package sim

import (
	"fmt"

	"rtlock/internal/journal"
)

// Proc is a simulated process: a goroutine that runs only when the kernel
// hands it control, mirroring the paper's "separate process for each
// transaction". A process advances virtual time by parking (Sleep, Park)
// and is resumed by kernel events.
type Proc struct {
	k      *Kernel
	id     int64
	name   string
	resume chan struct{}
	dead   bool

	// waiting is the token the process is currently parked on, nil
	// while the process is running. Interrupt cancels it.
	waiting *Token
}

// Token is a one-shot wake-up slot a process parks on. Whoever completes
// the awaited condition calls Wake; whoever needs to cancel the wait
// (deadline aborts, shutdown) calls Cancel, which first runs OnCancel so
// the resource that enqueued the waiter can remove it.
//
//rtlint:pooled
type Token struct {
	// OnCancel, if set, detaches the waiter from whatever queue it
	// sits in. It runs exactly once, before the process is woken with
	// the cancellation error.
	OnCancel func()

	// ev, when pending, is a timer driving this token; Cancel revokes
	// it so a canceled wait leaves no live event behind. Hot sites set
	// it instead of capturing the event in an OnCancel closure.
	ev EventRef

	// onCancel/onCancelArg are the allocation-free form of OnCancel
	// (static function plus argument), used by hot internal sites. Both
	// hooks run on Cancel, internal first.
	onCancel    func(any)
	onCancelArg any

	p     *Proc
	fired bool
	err   error
	k     *Kernel
}

// SetCancel installs the allocation-free cancel hook (static function
// plus argument) in place of an OnCancel closure. The hook must not be
// combined with resource-internal tokens (CPU requests), which use the
// same slot.
func (t *Token) SetCancel(fn func(any), arg any) {
	t.onCancel = fn
	t.onCancelArg = arg
}

// Reset clears a token for reuse by a pooled waiter. Only legal before
// the first Park or after the owning Park has returned: a completed
// wait leaves no kernel references behind.
func (t *Token) Reset() { *t = Token{} }

// getToken hands out a reset token from the pool. Only call sites that
// own the token's full lifecycle (no other holder after Park returns)
// may pair it with putToken; everyone else allocates a Token normally.
//
//rtlint:allocfree
func (k *Kernel) getToken() *Token {
	if n := len(k.freeTokens); n > 0 {
		t := k.freeTokens[n-1]
		k.freeTokens[n-1] = nil
		k.freeTokens = k.freeTokens[:n-1]
		return t
	}
	return &Token{} //rtlint:allow allocfree pool-miss growth path: one Token per high-water-mark, amortized to zero in steady state
}

// putToken resets and recycles a consumed token. A canceled timer event
// may still hold the token as its argument, but canceled events are
// discarded without running, so the stale reference is never followed.
//
//rtlint:allocfree
func (k *Kernel) putToken(t *Token) {
	*t = Token{}
	k.freeTokens = append(k.freeTokens, t)
}

// Spawn creates a process named name and schedules it to start now. The
// body runs in simulation context; when it returns the process
// terminates.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	k.nextPID++
	p := &Proc{
		k:      k,
		id:     k.nextPID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.live++
	k.mSpawns.Inc()
	k.mProcs.Add(1)
	k.Emit(journal.KSpawn, p.id, 0, 0, 0, name)
	k.After(0, func() {
		go func() {
			<-p.resume
			body(p)
			p.dead = true
			k.live--
			k.mProcs.Add(-1)
			k.Emit(journal.KProcEnd, p.id, 0, 0, 0, "")
			k.yielded <- struct{}{}
		}()
		k.switchTo(p)
	})
	return p
}

// ID returns the process id (unique per kernel).
func (p *Proc) ID() int64 { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Dead reports whether the process body has finished. Crash-recovery
// bookkeeping uses it to purge registrations owned by processes that
// died while a manager's site was unreachable.
func (p *Proc) Dead() bool { return p.dead }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// yield returns control to the kernel and blocks until resumed.
func (p *Proc) yield() {
	p.k.yielded <- struct{}{}
	<-p.resume
}

// panicTokenReuse and panicParkNotRunning keep the panic-path string
// formatting (which heap-allocates its fmt arguments) out of Park's
// body, so the parking hot path stays provably allocation-free. The
// noinline pragma stops the compiler from inlining the Sprintf back
// into every caller.
//
//go:noinline
func panicTokenReuse(name string) {
	panic(fmt.Sprintf("sim: token reused by process %q", name))
}

//go:noinline
func panicParkNotRunning(name string) {
	panic(fmt.Sprintf("sim: Park called by %q while not running", name))
}

// Park suspends the process until tok is woken or canceled. It returns
// the error delivered with the wake-up (nil for a normal Wake). Each
// token may be parked on at most once.
//
//rtlint:allocfree
func (p *Proc) Park(tok *Token) error {
	if tok.p != nil {
		panicTokenReuse(p.name)
	}
	if p.k.current != p {
		panicParkNotRunning(p.name)
	}
	tok.p = p
	tok.k = p.k
	if tok.fired {
		// Woken before parking (e.g. a zero-length resource use
		// completed inline). Consume the result without yielding.
		return tok.err
	}
	p.waiting = tok
	p.k.parked[p] = struct{}{}
	p.yield()
	p.waiting = nil
	return tok.err
}

// Wake delivers err (nil for success) to the parked process. It reports
// whether this call was the one that fired the token; later Wake/Cancel
// calls on a fired token are no-ops returning false.
//
// Wake never transfers control immediately: it schedules the resumption
// as an event at the current time, preserving the single-runner
// discipline even when one process wakes another.
//
//rtlint:allocfree
func (t *Token) Wake(err error) bool {
	if t.fired {
		return false
	}
	t.fired = true
	t.err = err
	if t.p == nil {
		// Not yet parked; Park will consume the result inline.
		return true
	}
	k := t.k
	proc := t.p
	delete(k.parked, proc)
	k.AtCall(k.now, switchToProc, proc)
	return true
}

// switchToProc is the static wake handler: resume the parked process.
func switchToProc(a any) {
	p := a.(*Proc)
	p.k.switchTo(p)
}

// Cancel detaches the waiter from its resource (revoking its timer and
// running the cancel hooks) and wakes the process with err. It reports
// whether the token was still pending.
//
//rtlint:allocfree
func (t *Token) Cancel(err error) bool {
	if t.fired {
		return false
	}
	t.ev.Cancel()
	if t.onCancel != nil {
		t.onCancel(t.onCancelArg)
	}
	if t.OnCancel != nil {
		t.OnCancel()
	}
	return t.Wake(err)
}

// Interrupt cancels whatever wait the process is currently parked on,
// delivering err. It reports whether an interruption happened; a running
// or terminated process cannot be interrupted.
func (p *Proc) Interrupt(err error) bool {
	if p.waiting == nil {
		return false
	}
	return p.waiting.Cancel(err)
}

// Sleep parks the process for d of virtual time. It returns nil when the
// time elapsed or the interruption error if the sleep was canceled.
//
// The token and timer event are pooled: Sleep owns the token's whole
// lifecycle (nothing else ever sees it), so it is recycled as soon as
// Park returns.
//
//rtlint:allocfree
func (p *Proc) Sleep(d Duration) error {
	if d <= 0 {
		// Even zero-length sleeps yield through the event queue so
		// that simultaneous activities interleave deterministically.
		d = 0
	}
	tok := p.k.getToken() //rtlint:allow allocfree inlined pool-miss &Token literal from getToken's growth path
	tok.ev = p.k.AfterCall(d, wakeTokenNil, tok)
	err := p.Park(tok)
	p.k.putToken(tok)
	return err
}

// wakeTokenNil is the static timer handler: deliver a normal wake-up.
func wakeTokenNil(a any) { a.(*Token).Wake(nil) }
