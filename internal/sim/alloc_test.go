package sim

import (
	"runtime"
	"testing"
)

// allocTicker is the self-rescheduling dispatch workload for the
// allocation gate: a static callback plus a pointer argument exercises
// the AfterCall path exactly as the hot simulation sites do.
type allocTicker struct {
	k *Kernel
	n int
}

func allocTick(arg any) {
	t := arg.(*allocTicker)
	if t.n > 0 {
		t.n--
		t.k.AfterCall(Millisecond, allocTick, t)
	}
}

// TestKernelDispatchZeroAlloc is the allocation-regression gate for the
// kernel's event fast path: once the event pool is warm, scheduling and
// dispatching events must not allocate at all. A regression here (a
// closure sneaking into a hot site, an event escaping its pool) fails
// the gate before it can show up as a throughput loss.
func TestKernelDispatchZeroAlloc(t *testing.T) {
	k := NewKernel()
	tick := &allocTicker{k: k}
	run := func() {
		tick.n = 256
		k.AfterCall(0, allocTick, tick)
		k.Run()
	}
	run() // warm the event pool and heap storage
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Fatalf("kernel dispatch allocated %.1f times per 256-event run; want 0", allocs)
	}
}

// sleepRunAllocs runs one kernel with a single process that sleeps n
// times and returns the total heap allocations of the whole run
// (spawn, goroutine, and all sleeps included).
func sleepRunAllocs(t *testing.T, n int) uint64 {
	t.Helper()
	k := NewKernel()
	done := false
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			if err := p.Sleep(Millisecond); err != nil {
				t.Errorf("sleep: %v", err)
				return
			}
		}
		done = true
	})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	k.Run()
	runtime.ReadMemStats(&after)
	if !done {
		t.Fatal("sleeper did not finish")
	}
	return after.Mallocs - before.Mallocs
}

// TestKernelSleepScaleInvariantAllocs gates the park/wake cycle: the
// token and event recycling make each Sleep allocation-free, so a run
// with 16x the sleeps must not allocate meaningfully more than a short
// one. The fixed per-run overhead (spawn, goroutine, channels) is
// allowed; per-sleep growth is the regression this catches.
func TestKernelSleepScaleInvariantAllocs(t *testing.T) {
	short := sleepRunAllocs(t, 64)
	long := sleepRunAllocs(t, 1024)
	// Allow a small slack for runtime-internal noise; 960 extra sleeps
	// would add >=960 allocations if the park path allocated per sleep.
	if long > short+32 {
		t.Fatalf("sleep path allocates per iteration: 64 sleeps = %d allocs, 1024 sleeps = %d allocs", short, long)
	}
}
