package sim

import (
	"rtlock/internal/journal"
)

// Discipline selects how a CPU orders its ready queue.
type Discipline int

// CPU scheduling disciplines. The paper's protocol L (two-phase locking
// without priority mode) runs on a FIFO processor; protocols P and C run
// on a preemptive-priority processor where a higher-priority transaction
// preempts lower-priority ones unless blocked by the locking protocol.
const (
	// PreemptivePriority dispatches the highest-priority request and
	// preempts the running one when a more urgent request arrives or
	// is promoted (priority inheritance).
	PreemptivePriority Discipline = iota + 1
	// FIFO dispatches in arrival order and never preempts.
	FIFO
)

// CPU models a single processor at a site. Requests consume service time;
// under PreemptivePriority a request's remaining service is tracked
// across preemptions. Priority inheritance reaches the CPU through
// Reprioritize.
type CPU struct {
	k     *Kernel
	disc  Discipline
	cur   *cpuReq
	ready cpuQueue

	busy Duration // total service delivered
	seq  uint64

	// freeReqs recycles request records; a record is owned by Use for
	// its whole lifetime (Park returns only after the request has left
	// the CPU), so reuse cannot alias. ties is the chooseTie scratch.
	freeReqs []*cpuReq
	ties     []*cpuReq

	// Probe handles, cached at construction (no-ops without a
	// registry). Distributed clusters share the series across their
	// per-site CPUs, so the counters aggregate the whole machine.
	mDispatch Counter
	mPreempt  Counter
	mBusy     Counter
	mReady    Gauge
}

type cpuReq struct {
	c       *CPU
	proc    *Proc
	prio    Priority
	rem     Duration
	tok     Token
	runFrom Time
	doneEv  EventRef
	seq     uint64
	idx     int
}

// NewCPU returns a processor scheduled under disc.
func NewCPU(k *Kernel, disc Discipline) *CPU {
	m := k.Metrics()
	return &CPU{
		k: k, disc: disc, ready: cpuQueue{disc: disc},
		mDispatch: m.Counter("cpu_dispatches_total", "CPU dispatches (service starts and resumptions)."),
		mPreempt:  m.Counter("cpu_preemptions_total", "CPU preemptions of the running request."),
		mBusy:     m.Counter("cpu_busy_ticks_total", "Virtual time of CPU service delivered."),
		mReady:    m.Gauge("cpu_ready_queue", "Requests waiting behind the running one."),
	}
}

func (c *CPU) getReq() *cpuReq {
	if n := len(c.freeReqs); n > 0 {
		r := c.freeReqs[n-1]
		c.freeReqs[n-1] = nil
		c.freeReqs = c.freeReqs[:n-1]
		return r
	}
	return &cpuReq{c: c}
}

func (c *CPU) putReq(r *cpuReq) {
	r.proc = nil
	r.prio = Priority{}
	r.rem = 0
	r.tok = Token{}
	r.runFrom = 0
	r.doneEv = EventRef{}
	r.seq = 0
	r.idx = 0
	c.freeReqs = append(c.freeReqs, r)
}

// Use consumes d of service time on behalf of p at the given priority,
// parking p until the service completes. It returns nil on completion or
// the cancellation error if the request was interrupted (deadline abort,
// shutdown). Zero or negative demand completes via the event queue so
// ordering stays deterministic.
func (c *CPU) Use(p *Proc, prio Priority, d Duration) error {
	if d <= 0 {
		return p.Sleep(0)
	}
	req := c.getReq()
	req.proc = p
	req.prio = prio
	req.rem = d
	req.tok.onCancel = removeReq
	req.tok.onCancelArg = req
	c.add(req)
	err := p.Park(&req.tok)
	c.putReq(req)
	return err
}

// removeReq is the static cancel hook: detach the request from its CPU.
func removeReq(a any) {
	r := a.(*cpuReq)
	r.c.remove(r)
}

// completeReq is the static service-completion handler.
func completeReq(a any) {
	r := a.(*cpuReq)
	r.c.complete(r)
}

// Reprioritize updates the priority of p's pending request, if any,
// re-sorting the ready queue and preempting as needed. Lock managers call
// it when a transaction inherits (or sheds) priority while waiting for or
// holding the processor.
func (c *CPU) Reprioritize(p *Proc, prio Priority) {
	if c.disc != PreemptivePriority {
		return
	}
	if c.cur != nil && c.cur.proc == p {
		c.cur.prio = prio
		c.maybePreemptCur()
		return
	}
	for i, r := range c.ready.reqs {
		if r.proc == p {
			r.prio = prio
			c.ready.fix(i)
			c.maybePreemptCur()
			return
		}
	}
}

// Busy returns the total service time the CPU has delivered, for
// utilization reporting.
func (c *CPU) Busy() Duration {
	b := c.busy
	if c.cur != nil {
		b += c.k.now.Sub(c.cur.runFrom)
	}
	return b
}

// QueueLen reports how many requests wait behind the running one.
func (c *CPU) QueueLen() int { return c.ready.len() }

func (c *CPU) add(req *cpuReq) {
	req.seq = c.nextSeq()
	if c.cur == nil {
		c.dispatch(req)
		return
	}
	if c.disc == PreemptivePriority && req.prio.Higher(c.cur.prio) {
		c.preemptCur()
		c.dispatch(req)
		return
	}
	c.ready.push(req)
	c.mReady.Add(1)
}

func (c *CPU) nextSeq() uint64 {
	c.seq++
	return c.seq
}

func (c *CPU) dispatch(req *cpuReq) {
	c.cur = req
	req.runFrom = c.k.now
	c.mDispatch.Inc()
	c.k.Emit(journal.KCPUDispatch, req.proc.id, 0, int64(req.rem), 0, "")
	req.doneEv = c.k.AfterCall(req.rem, completeReq, req)
}

func (c *CPU) complete(req *cpuReq) {
	c.busy += req.rem
	c.mBusy.Add(int64(req.rem))
	req.rem = 0
	c.cur = nil
	req.tok.Wake(nil)
	c.next()
}

func (c *CPU) preemptCur() {
	req := c.cur
	req.doneEv.Cancel()
	used := c.k.now.Sub(req.runFrom)
	c.busy += used
	c.mBusy.Add(int64(used))
	req.rem -= used
	c.cur = nil
	c.mPreempt.Inc()
	c.k.Emit(journal.KCPUPreempt, req.proc.id, 0, int64(req.rem), 0, "")
	c.ready.push(req)
	c.mReady.Add(1)
}

// maybePreemptCur preempts the running request if the ready queue now
// holds a more urgent one (after a priority change).
func (c *CPU) maybePreemptCur() {
	if c.cur == nil || c.ready.len() == 0 {
		return
	}
	head := c.ready.reqs[0]
	if head.prio.Higher(c.cur.prio) {
		c.preemptCur()
		c.next()
	}
}

func (c *CPU) next() {
	if c.cur != nil {
		return
	}
	req := c.ready.pop()
	if req == nil {
		return
	}
	if c.k.chooser != nil && c.disc == PreemptivePriority {
		req = c.chooseTie(req)
	}
	c.mReady.Add(-1)
	c.dispatch(req)
}

// chooseTie widens the popped ready-queue head into the set of requests
// sharing its exact priority and lets the attached chooser pick which
// dispatches; the rest are re-pushed with their sequence numbers intact,
// preserving the canonical relative order. Priorities embed the
// transaction id as a tie-break, so ties arise only between processes
// acting for the same transaction (or under inherited/system
// priorities) — rare, but exactly the orderings a fixed seq-based pick
// would never vary. FIFO queues are excluded: arrival order there is
// protocol semantics (protocol L), not an arbitrary tie-break.
func (c *CPU) chooseTie(req *cpuReq) *cpuReq {
	if c.ready.len() == 0 || c.ready.reqs[0].prio != req.prio {
		return req
	}
	ties := append(c.ties[:0], req)
	for c.ready.len() > 0 && c.ready.reqs[0].prio == req.prio {
		ties = append(ties, c.ready.pop())
	}
	pick := c.k.Choose(ChooseReady, len(ties))
	for i, r := range ties {
		if i != pick {
			c.ready.push(r)
		}
	}
	picked := ties[pick]
	for i := range ties {
		ties[i] = nil
	}
	c.ties = ties[:0]
	return picked
}

func (c *CPU) remove(req *cpuReq) {
	if c.cur == req {
		req.doneEv.Cancel()
		used := c.k.now.Sub(req.runFrom)
		c.busy += used
		c.mBusy.Add(int64(used))
		req.rem -= used
		c.cur = nil
		c.next()
		return
	}
	if c.ready.remove(req) {
		c.mReady.Add(-1)
	}
}

// cpuQueue is a ready queue ordered by priority (PreemptivePriority) or
// arrival sequence (FIFO); under FIFO the ordering key is just the
// sequence number. Like eventHeap it is a direct binary min-heap rather
// than container/heap, avoiding interface dispatch on the hot path. The
// key is a strict total order (seq is unique), so pop order does not
// depend on heap layout.
type cpuQueue struct {
	disc Discipline
	reqs []*cpuReq
}

func (q *cpuQueue) less(a, b *cpuReq) bool {
	if q.disc == PreemptivePriority {
		if a.prio != b.prio {
			return a.prio.Higher(b.prio)
		}
	}
	return a.seq < b.seq
}

func (q *cpuQueue) len() int { return len(q.reqs) }

func (q *cpuQueue) push(r *cpuReq) {
	r.idx = len(q.reqs)
	q.reqs = append(q.reqs, r)
	q.up(r.idx)
}

func (q *cpuQueue) up(i int) {
	s := q.reqs
	r := s[i]
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(r, s[p]) {
			break
		}
		s[i] = s[p]
		s[i].idx = i
		i = p
	}
	s[i] = r
	r.idx = i
}

func (q *cpuQueue) down(i int) {
	s := q.reqs
	n := len(s)
	r := s[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rc := l + 1; rc < n && q.less(s[rc], s[l]) {
			m = rc
		}
		if !q.less(s[m], r) {
			break
		}
		s[i] = s[m]
		s[i].idx = i
		i = m
	}
	s[i] = r
	r.idx = i
}

// fix restores heap order after the element at i changed key.
func (q *cpuQueue) fix(i int) {
	q.down(i)
	q.up(i)
}

func (q *cpuQueue) pop() *cpuReq {
	n := len(q.reqs)
	if n == 0 {
		return nil
	}
	r := q.reqs[0]
	last := q.reqs[n-1]
	q.reqs[n-1] = nil
	q.reqs = q.reqs[:n-1]
	if n > 1 {
		q.reqs[0] = last
		last.idx = 0
		q.down(0)
	}
	r.idx = -1
	return r
}

func (q *cpuQueue) remove(r *cpuReq) bool {
	i := r.idx
	if i < 0 || i >= len(q.reqs) || q.reqs[i] != r {
		return false
	}
	n := len(q.reqs) - 1
	last := q.reqs[n]
	q.reqs[n] = nil
	q.reqs = q.reqs[:n]
	if i != n {
		q.reqs[i] = last
		last.idx = i
		q.fix(i)
	}
	r.idx = -1
	return true
}
