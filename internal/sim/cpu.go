package sim

import (
	"container/heap"

	"rtlock/internal/journal"
)

// Discipline selects how a CPU orders its ready queue.
type Discipline int

// CPU scheduling disciplines. The paper's protocol L (two-phase locking
// without priority mode) runs on a FIFO processor; protocols P and C run
// on a preemptive-priority processor where a higher-priority transaction
// preempts lower-priority ones unless blocked by the locking protocol.
const (
	// PreemptivePriority dispatches the highest-priority request and
	// preempts the running one when a more urgent request arrives or
	// is promoted (priority inheritance).
	PreemptivePriority Discipline = iota + 1
	// FIFO dispatches in arrival order and never preempts.
	FIFO
)

// CPU models a single processor at a site. Requests consume service time;
// under PreemptivePriority a request's remaining service is tracked
// across preemptions. Priority inheritance reaches the CPU through
// Reprioritize.
type CPU struct {
	k     *Kernel
	disc  Discipline
	cur   *cpuReq
	ready cpuQueue

	busy Duration // total service delivered
	seq  uint64

	// Probe handles, cached at construction (no-ops without a
	// registry). Distributed clusters share the series across their
	// per-site CPUs, so the counters aggregate the whole machine.
	mDispatch Counter
	mPreempt  Counter
	mBusy     Counter
	mReady    Gauge
}

type cpuReq struct {
	proc    *Proc
	prio    Priority
	rem     Duration
	tok     *Token
	runFrom Time
	doneEv  *Event
	seq     uint64
	idx     int
}

// NewCPU returns a processor scheduled under disc.
func NewCPU(k *Kernel, disc Discipline) *CPU {
	m := k.Metrics()
	return &CPU{
		k: k, disc: disc, ready: cpuQueue{disc: disc},
		mDispatch: m.Counter("cpu_dispatches_total", "CPU dispatches (service starts and resumptions)."),
		mPreempt:  m.Counter("cpu_preemptions_total", "CPU preemptions of the running request."),
		mBusy:     m.Counter("cpu_busy_ticks_total", "Virtual time of CPU service delivered."),
		mReady:    m.Gauge("cpu_ready_queue", "Requests waiting behind the running one."),
	}
}

// Use consumes d of service time on behalf of p at the given priority,
// parking p until the service completes. It returns nil on completion or
// the cancellation error if the request was interrupted (deadline abort,
// shutdown). Zero or negative demand completes via the event queue so
// ordering stays deterministic.
func (c *CPU) Use(p *Proc, prio Priority, d Duration) error {
	if d <= 0 {
		return p.Sleep(0)
	}
	req := &cpuReq{proc: p, prio: prio, rem: d, tok: &Token{}}
	req.tok.OnCancel = func() { c.remove(req) }
	c.add(req)
	return p.Park(req.tok)
}

// Reprioritize updates the priority of p's pending request, if any,
// re-sorting the ready queue and preempting as needed. Lock managers call
// it when a transaction inherits (or sheds) priority while waiting for or
// holding the processor.
func (c *CPU) Reprioritize(p *Proc, prio Priority) {
	if c.disc != PreemptivePriority {
		return
	}
	if c.cur != nil && c.cur.proc == p {
		c.cur.prio = prio
		c.maybePreemptCur()
		return
	}
	for i, r := range c.ready.reqs {
		if r.proc == p {
			r.prio = prio
			heap.Fix(&c.ready, i)
			c.maybePreemptCur()
			return
		}
	}
}

// Busy returns the total service time the CPU has delivered, for
// utilization reporting.
func (c *CPU) Busy() Duration {
	b := c.busy
	if c.cur != nil {
		b += c.k.now.Sub(c.cur.runFrom)
	}
	return b
}

// QueueLen reports how many requests wait behind the running one.
func (c *CPU) QueueLen() int { return c.ready.Len() }

func (c *CPU) add(req *cpuReq) {
	req.seq = c.nextSeq()
	if c.cur == nil {
		c.dispatch(req)
		return
	}
	if c.disc == PreemptivePriority && req.prio.Higher(c.cur.prio) {
		c.preemptCur()
		c.dispatch(req)
		return
	}
	c.ready.push(req)
	c.mReady.Add(1)
}

func (c *CPU) nextSeq() uint64 {
	c.seq++
	return c.seq
}

func (c *CPU) dispatch(req *cpuReq) {
	c.cur = req
	req.runFrom = c.k.now
	c.mDispatch.Inc()
	c.k.Emit(journal.KCPUDispatch, req.proc.id, 0, int64(req.rem), 0, "")
	req.doneEv = c.k.After(req.rem, func() { c.complete(req) })
}

func (c *CPU) complete(req *cpuReq) {
	c.busy += req.rem
	c.mBusy.Add(int64(req.rem))
	req.rem = 0
	c.cur = nil
	req.tok.Wake(nil)
	c.next()
}

func (c *CPU) preemptCur() {
	req := c.cur
	req.doneEv.Cancel()
	used := c.k.now.Sub(req.runFrom)
	c.busy += used
	c.mBusy.Add(int64(used))
	req.rem -= used
	c.cur = nil
	c.mPreempt.Inc()
	c.k.Emit(journal.KCPUPreempt, req.proc.id, 0, int64(req.rem), 0, "")
	c.ready.push(req)
	c.mReady.Add(1)
}

// maybePreemptCur preempts the running request if the ready queue now
// holds a more urgent one (after a priority change).
func (c *CPU) maybePreemptCur() {
	if c.cur == nil || c.ready.Len() == 0 {
		return
	}
	head := c.ready.reqs[0]
	if head.prio.Higher(c.cur.prio) {
		c.preemptCur()
		c.next()
	}
}

func (c *CPU) next() {
	if c.cur != nil {
		return
	}
	req := c.ready.pop()
	if req == nil {
		return
	}
	if c.k.chooser != nil && c.disc == PreemptivePriority {
		req = c.chooseTie(req)
	}
	c.mReady.Add(-1)
	c.dispatch(req)
}

// chooseTie widens the popped ready-queue head into the set of requests
// sharing its exact priority and lets the attached chooser pick which
// dispatches; the rest are re-pushed with their sequence numbers intact,
// preserving the canonical relative order. Priorities embed the
// transaction id as a tie-break, so ties arise only between processes
// acting for the same transaction (or under inherited/system
// priorities) — rare, but exactly the orderings a fixed seq-based pick
// would never vary. FIFO queues are excluded: arrival order there is
// protocol semantics (protocol L), not an arbitrary tie-break.
func (c *CPU) chooseTie(req *cpuReq) *cpuReq {
	if c.ready.Len() == 0 || c.ready.reqs[0].prio != req.prio {
		return req
	}
	ties := []*cpuReq{req}
	for c.ready.Len() > 0 && c.ready.reqs[0].prio == req.prio {
		ties = append(ties, c.ready.pop())
	}
	pick := c.k.Choose(ChooseReady, len(ties))
	for i, r := range ties {
		if i != pick {
			c.ready.push(r)
		}
	}
	return ties[pick]
}

func (c *CPU) remove(req *cpuReq) {
	if c.cur == req {
		req.doneEv.Cancel()
		used := c.k.now.Sub(req.runFrom)
		c.busy += used
		c.mBusy.Add(int64(used))
		req.rem -= used
		c.cur = nil
		c.next()
		return
	}
	if c.ready.remove(req) {
		c.mReady.Add(-1)
	}
}

// cpuQueue is a ready queue ordered by priority (PreemptivePriority) or
// arrival sequence (FIFO). It implements heap.Interface either way; under
// FIFO the ordering key is just the sequence number.
type cpuQueue struct {
	disc Discipline
	reqs []*cpuReq
}

func (q *cpuQueue) Len() int { return len(q.reqs) }

func (q *cpuQueue) Less(i, j int) bool {
	a, b := q.reqs[i], q.reqs[j]
	if q.disc == PreemptivePriority {
		if a.prio != b.prio {
			return a.prio.Higher(b.prio)
		}
	}
	return a.seq < b.seq
}

func (q *cpuQueue) Swap(i, j int) {
	q.reqs[i], q.reqs[j] = q.reqs[j], q.reqs[i]
	q.reqs[i].idx = i
	q.reqs[j].idx = j
}

func (q *cpuQueue) Push(x any) {
	r, ok := x.(*cpuReq)
	if !ok {
		return
	}
	r.idx = len(q.reqs)
	q.reqs = append(q.reqs, r)
}

func (q *cpuQueue) Pop() any {
	old := q.reqs
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.idx = -1
	q.reqs = old[:n-1]
	return r
}

func (q *cpuQueue) push(r *cpuReq) { heap.Push(q, r) }

func (q *cpuQueue) pop() *cpuReq {
	if q.Len() == 0 {
		return nil
	}
	r, ok := heap.Pop(q).(*cpuReq)
	if !ok {
		return nil
	}
	return r
}

func (q *cpuQueue) remove(r *cpuReq) bool {
	if r.idx >= 0 && r.idx < len(q.reqs) && q.reqs[r.idx] == r {
		heap.Remove(q, r.idx)
		return true
	}
	return false
}
