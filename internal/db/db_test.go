package db

import (
	"testing"
	"testing/quick"

	"rtlock/internal/core"
)

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(0, 10); err == nil {
		t.Fatal("0 sites accepted")
	}
	if _, err := NewCatalog(3, 0); err == nil {
		t.Fatal("0 objects accepted")
	}
}

func TestCatalogPartition(t *testing.T) {
	c, err := NewCatalog(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 10 objects over 3 sites: sizes 4,3,3.
	want := map[SiteID]int{0: 4, 1: 3, 2: 3}
	for site, n := range want {
		if got := len(c.ObjectsAt(site)); got != n {
			t.Fatalf("site %d has %d objects, want %d", site, got, n)
		}
	}
}

func TestCatalogPartitionCoversAll(t *testing.T) {
	prop := func(sitesRaw, objsRaw uint8) bool {
		sites := int(sitesRaw%8) + 1
		objs := int(objsRaw%200) + 1
		c, err := NewCatalog(sites, objs)
		if err != nil {
			return false
		}
		seen := make(map[core.ObjectID]bool)
		for s := 0; s < sites; s++ {
			for _, obj := range c.ObjectsAt(SiteID(s)) {
				if seen[obj] {
					return false // object owned twice
				}
				seen[obj] = true
				if c.PrimarySite(obj) != SiteID(s) {
					return false // inconsistent mapping
				}
			}
		}
		return len(seen) == objs
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogBalance(t *testing.T) {
	prop := func(sitesRaw, objsRaw uint8) bool {
		sites := int(sitesRaw%8) + 1
		objs := int(objsRaw%200) + 1
		if objs < sites {
			return true
		}
		c, err := NewCatalog(sites, objs)
		if err != nil {
			return false
		}
		minN, maxN := objs, 0
		for s := 0; s < sites; s++ {
			n := len(c.ObjectsAt(SiteID(s)))
			if n < minN {
				minN = n
			}
			if n > maxN {
				maxN = n
			}
		}
		return maxN-minN <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogAccessors(t *testing.T) {
	c, err := NewCatalog(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sites() != 3 || c.Objects() != 12 {
		t.Fatalf("sites=%d objects=%d", c.Sites(), c.Objects())
	}
	// Out-of-range objects map to site 0 defensively.
	if c.PrimarySite(-1) != 0 || c.PrimarySite(999) != 0 {
		t.Fatal("out-of-range object did not default to site 0")
	}
}

func TestStoreSite(t *testing.T) {
	if NewStore(7).Site() != 7 {
		t.Fatal("store site accessor")
	}
}

func TestStoreVersioning(t *testing.T) {
	s := NewStore(0)
	if v := s.Read(1); v.Seq != 0 {
		t.Fatalf("fresh object version = %+v", v)
	}
	v1 := s.Write(1, 42, 100)
	if v1.Seq != 1 || v1.Value != 42 || v1.WrittenAt != 100 {
		t.Fatalf("v1 = %+v", v1)
	}
	v2 := s.Write(1, 43, 200)
	if v2.Seq != 2 {
		t.Fatalf("v2.Seq = %d", v2.Seq)
	}
	if got := s.Read(1); got != v2 {
		t.Fatalf("Read = %+v, want %+v", got, v2)
	}
}

func TestStoreInstallMonotone(t *testing.T) {
	primary := NewStore(0)
	replica := NewStore(1)
	v1 := primary.Write(5, 1, 10)
	v2 := primary.Write(5, 2, 20)
	// Deliver out of order: v2 then v1.
	if !replica.Install(5, v2) {
		t.Fatal("v2 install rejected")
	}
	if replica.Install(5, v1) {
		t.Fatal("stale v1 install accepted after v2")
	}
	if got := replica.Read(5); got != v2 {
		t.Fatalf("replica = %+v, want v2", got)
	}
}

func TestStoreStaleness(t *testing.T) {
	primary := NewStore(0)
	replica := NewStore(1)
	v1 := primary.Write(7, 1, 100)
	replica.Install(7, v1)
	if d := replica.Staleness(7, primary.Read(7), 500); d != 0 {
		t.Fatalf("up-to-date replica staleness = %d", d)
	}
	primary.Write(7, 2, 400)
	if d := replica.Staleness(7, primary.Read(7), 500); d != 400 {
		t.Fatalf("stale replica staleness = %d, want 400 (since local write at 100)", d)
	}
}
