package db

import (
	"testing"
	"testing/quick"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

func TestMVStoreLatest(t *testing.T) {
	s := NewMVStore(0, 4)
	if v := s.Latest(1); v.Seq != 0 {
		t.Fatalf("fresh latest = %+v", v)
	}
	s.Write(1, 10, 100)
	s.Write(1, 20, 200)
	if v := s.Latest(1); v.Seq != 2 || v.Value != 20 {
		t.Fatalf("latest = %+v", v)
	}
}

func TestMVStoreAsOf(t *testing.T) {
	s := NewMVStore(0, 4)
	s.Write(1, 10, 100)
	s.Write(1, 20, 200)
	s.Write(1, 30, 300)
	if _, ok := s.AsOf(1, 50); ok {
		t.Fatal("version exists before first write")
	}
	if v, ok := s.AsOf(1, 100); !ok || v.Value != 10 {
		t.Fatalf("AsOf(100) = %+v, %t", v, ok)
	}
	if v, ok := s.AsOf(1, 250); !ok || v.Value != 20 {
		t.Fatalf("AsOf(250) = %+v, %t", v, ok)
	}
	if v, ok := s.AsOf(1, 999); !ok || v.Value != 30 {
		t.Fatalf("AsOf(999) = %+v, %t", v, ok)
	}
}

func TestMVStoreHistoryBound(t *testing.T) {
	s := NewMVStore(0, 3)
	for i := 1; i <= 10; i++ {
		s.Write(2, int64(i), sim.Time(i*100))
	}
	if n := s.HistoryLen(2); n != 3 {
		t.Fatalf("history len = %d, want 3", n)
	}
	// Old versions are gone; AsOf before the retained window fails.
	if _, ok := s.AsOf(2, 400); ok {
		t.Fatal("evicted version still readable")
	}
	if v, ok := s.AsOf(2, 950); !ok || v.Value != 9 {
		t.Fatalf("AsOf(950) = %+v, %t", v, ok)
	}
}

func TestMVStoreInstallMonotone(t *testing.T) {
	primary := NewMVStore(0, 4)
	replica := NewMVStore(1, 4)
	v1 := primary.Write(5, 1, 10)
	v2 := primary.Write(5, 2, 20)
	if !replica.Install(5, v2) {
		t.Fatal("v2 rejected")
	}
	if replica.Install(5, v1) {
		t.Fatal("stale v1 accepted after v2")
	}
	if replica.Latest(5) != v2 {
		t.Fatalf("latest = %+v", replica.Latest(5))
	}
}

func TestMVStoreAccessors(t *testing.T) {
	s := NewMVStore(3, 5)
	if s.Site() != 3 || s.Keep() != 5 {
		t.Fatalf("site=%d keep=%d", s.Site(), s.Keep())
	}
}

func TestMVStoreFirstSeq(t *testing.T) {
	s := NewMVStore(0, 2)
	if s.FirstSeq(1) != 0 {
		t.Fatalf("empty FirstSeq = %d", s.FirstSeq(1))
	}
	s.Write(1, 10, 100)
	if s.FirstSeq(1) != 1 {
		t.Fatalf("FirstSeq = %d", s.FirstSeq(1))
	}
	s.Write(1, 20, 200)
	s.Write(1, 30, 300) // evicts seq 1 (keep 2)
	if s.FirstSeq(1) != 2 {
		t.Fatalf("FirstSeq after eviction = %d", s.FirstSeq(1))
	}
}

func TestMVStoreInterval(t *testing.T) {
	s := NewMVStore(0, 8)
	// Empty object: the zero version is valid forever.
	if start, end, known := s.Interval(5, 0); !known || start >= end {
		t.Fatalf("empty interval = %v %v %v", start, end, known)
	}
	s.Write(5, 1, 100)
	s.Write(5, 2, 200)
	// Zero version: until the first write.
	if _, end, known := s.Interval(5, 0); !known || end != 100 {
		t.Fatalf("zero-version interval end = %v known=%v", end, known)
	}
	// Middle version: [100, 200).
	if start, end, known := s.Interval(5, 1); !known || start != 100 || end != 200 {
		t.Fatalf("v1 interval = [%v,%v) known=%v", start, end, known)
	}
	// Latest version: open-ended.
	if start, end, known := s.Interval(5, 2); !known || start != 200 || end <= start {
		t.Fatalf("v2 interval = [%v,%v) known=%v", start, end, known)
	}
	// Unknown sequence number.
	if _, _, known := s.Interval(5, 9); known {
		t.Fatal("nonexistent version reported known")
	}
}

func TestMVStoreIntervalEvictedZero(t *testing.T) {
	s := NewMVStore(0, 1)
	s.Write(7, 1, 100)
	s.Write(7, 2, 200) // seq 1 evicted
	if _, _, known := s.Interval(7, 0); known {
		t.Fatal("zero version reconstructible after eviction of v1")
	}
	if _, _, known := s.Interval(7, 1); known {
		t.Fatal("evicted version reported known")
	}
}

func TestMVStoreMinimumKeep(t *testing.T) {
	s := NewMVStore(0, 0)
	if s.Keep() != 1 {
		t.Fatalf("keep = %d, want clamped to 1", s.Keep())
	}
}

func TestPropMVStoreAsOfNeverNewer(t *testing.T) {
	prop := func(writesRaw []uint8, probe uint8) bool {
		s := NewMVStore(0, 8)
		now := sim.Time(0)
		for i, w := range writesRaw {
			now = now.Add(sim.Duration(w%50) + 1)
			s.Write(core.ObjectID(1), int64(i), now)
		}
		t := sim.Time(probe) * 10
		v, ok := s.AsOf(1, t)
		if !ok {
			return true
		}
		return v.WrittenAt <= t
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
