package db

import (
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// MVStore keeps a bounded history of versions per object, enabling the
// multi-version scheme the paper's §4 closes with: "If the system
// provides multiple versions of data objects, ensuring a temporally
// consistent view becomes a real-time scheduling problem in which the
// time lags in the distributed versions need to be controlled …
// transactions can read the proper versions of distributed data objects,
// and ensure that decisions are based on temporally consistent data."
//
// A reader asking for the state "as of" time t receives, for every
// object, the newest version written at or before t — a mutually
// consistent snapshot — instead of each object's latest (and possibly
// mutually inconsistent) copy.
type MVStore struct {
	site     SiteID
	keep     int
	versions map[core.ObjectID][]Version // ascending by Seq
}

// NewMVStore returns a store keeping up to keep versions per object
// (minimum 1).
func NewMVStore(site SiteID, keep int) *MVStore {
	if keep < 1 {
		keep = 1
	}
	return &MVStore{site: site, keep: keep, versions: make(map[core.ObjectID][]Version)}
}

// Site returns the owning site.
func (s *MVStore) Site() SiteID { return s.site }

// Keep returns the per-object history bound.
func (s *MVStore) Keep() int { return s.keep }

// Write installs a new latest version produced locally at time now.
func (s *MVStore) Write(obj core.ObjectID, value int64, now sim.Time) Version {
	latest := s.Latest(obj)
	v := Version{Value: value, WrittenAt: now, Seq: latest.Seq + 1}
	s.append(obj, v)
	return v
}

// Install applies a replicated version, keeping history ordered and
// dropping versions that do not advance past what is already held.
func (s *MVStore) Install(obj core.ObjectID, v Version) bool {
	if v.Seq <= s.Latest(obj).Seq {
		return false
	}
	s.append(obj, v)
	return true
}

// Latest returns the newest local version of obj (zero Version if never
// written).
func (s *MVStore) Latest(obj core.ObjectID) Version {
	hist := s.versions[obj]
	if len(hist) == 0 {
		return Version{}
	}
	return hist[len(hist)-1]
}

// AsOf returns the newest version of obj written at or before t, and
// whether any such version exists. Reading every object AsOf the same t
// yields a temporally consistent snapshot.
func (s *MVStore) AsOf(obj core.ObjectID, t sim.Time) (Version, bool) {
	hist := s.versions[obj]
	// Find the last version with WrittenAt <= t.
	i := sort.Search(len(hist), func(i int) bool { return hist[i].WrittenAt > t })
	if i == 0 {
		return Version{}, false
	}
	return hist[i-1], true
}

// HistoryLen reports how many versions of obj are retained.
func (s *MVStore) HistoryLen(obj core.ObjectID) int { return len(s.versions[obj]) }

// FirstSeq returns the sequence number of the oldest retained version of
// obj (0 when no versions are retained). When it is at most 1, the
// implicit zero version — the state before any write — is still
// reconstructible.
func (s *MVStore) FirstSeq(obj core.ObjectID) int64 {
	hist := s.versions[obj]
	if len(hist) == 0 {
		return 0
	}
	return hist[0].Seq
}

// Interval returns the validity window [start, end) during which version
// seq of obj was the newest: from its write time until the next
// version's. seq 0 denotes "before any version" and is valid from the
// beginning of time until the first retained write. known is false when
// the version has been evicted from the bounded history, in which case
// nothing can be said.
func (s *MVStore) Interval(obj core.ObjectID, seq int64) (start, end sim.Time, known bool) {
	const (
		minTime = sim.Time(-1 << 62)
		maxTime = sim.Time(1<<62 - 1)
	)
	hist := s.versions[obj]
	if seq == 0 {
		if len(hist) == 0 {
			return minTime, maxTime, true
		}
		if hist[0].Seq == 1 {
			return minTime, hist[0].WrittenAt, true
		}
		// The first versions were evicted; the zero version's window
		// cannot be reconstructed.
		return 0, 0, false
	}
	for i, v := range hist {
		if v.Seq != seq {
			continue
		}
		end = maxTime
		if i+1 < len(hist) {
			end = hist[i+1].WrittenAt
		}
		return v.WrittenAt, end, true
	}
	return 0, 0, false
}

func (s *MVStore) append(obj core.ObjectID, v Version) {
	hist := append(s.versions[obj], v)
	// Histories stay ordered by Seq; replicated installs always advance
	// Seq (guarded by Install), local writes too.
	if len(hist) > s.keep {
		hist = hist[len(hist)-s.keep:]
	}
	s.versions[obj] = hist
}
