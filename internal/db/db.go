// Package db models the database the transactions operate on: the object
// catalog, the assignment of primary copies to sites, full replication
// for the local-ceiling approach, and per-site stores with versioned
// values so replica staleness (the paper's "temporal inconsistency") can
// be measured.
package db

import (
	"fmt"

	"rtlock/internal/core"
	"rtlock/internal/place"
	"rtlock/internal/sim"
)

// SiteID identifies a site (node) in the distributed system.
type SiteID int

// Catalog describes the database layout: how many objects exist and which
// site holds each copy. The object→site mapping and replica policy live
// in the embedded placement (internal/place); the default is range
// partitioning — contiguous ranges per site, which makes "the objects of
// site s" easy to reason about in workloads and tests.
type Catalog struct {
	sites     int
	objects   int
	placement place.Map
}

// NewCatalog lays out objects across sites with the historical default
// placement: contiguous, nearly equal ranges; site i owns the i-th range
// as primary, every site replicates everything.
func NewCatalog(sites, objects int) (*Catalog, error) {
	if sites < 1 {
		return nil, fmt.Errorf("db: sites must be >= 1, got %d", sites)
	}
	if objects < 1 {
		return nil, fmt.Errorf("db: objects must be >= 1, got %d", objects)
	}
	pm, err := place.NewFull(sites, objects)
	if err != nil {
		return nil, err
	}
	return &Catalog{sites: sites, objects: objects, placement: pm}, nil
}

// NewCatalogWithPlacement lays out objects according to an explicit
// placement map.
func NewCatalogWithPlacement(pm place.Map) (*Catalog, error) {
	if pm == nil {
		return nil, fmt.Errorf("db: placement must not be nil")
	}
	return &Catalog{sites: pm.Sites(), objects: pm.Objects(), placement: pm}, nil
}

// Sites returns the number of sites.
func (c *Catalog) Sites() int { return c.sites }

// Objects returns the total number of data objects.
func (c *Catalog) Objects() int { return c.objects }

// Placement returns the object→site mapping and replica policy.
func (c *Catalog) Placement() place.Map { return c.placement }

// PrimarySite returns the site holding the primary copy of obj.
func (c *Catalog) PrimarySite(obj core.ObjectID) SiteID {
	return SiteID(c.placement.Primary(int(obj)))
}

// Replicas returns every site holding a copy of obj, primary first, in
// deterministic order.
func (c *Catalog) Replicas(obj core.ObjectID) []SiteID {
	reps := c.placement.Replicas(int(obj))
	out := make([]SiteID, len(reps))
	for i, s := range reps {
		out[i] = SiteID(s)
	}
	return out
}

// ObjectsAt returns the primary objects of a site, in ascending order.
func (c *Catalog) ObjectsAt(site SiteID) []core.ObjectID {
	var objs []core.ObjectID
	for i := 0; i < c.objects; i++ {
		if c.PrimarySite(core.ObjectID(i)) == site {
			objs = append(objs, core.ObjectID(i))
		}
	}
	return objs
}

// Version is one committed value of an object: a logical payload plus the
// commit time of the write that produced it, used to measure staleness.
type Version struct {
	// Value is the logical payload (a counter in the simulation).
	Value int64
	// WrittenAt is the virtual commit time of the producing write.
	WrittenAt sim.Time
	// Seq is a monotonically increasing version number per object.
	Seq int64
}

// Store holds one site's copies of data objects. In the local-ceiling
// approach every site stores all objects (the local primary copies plus
// replicated secondaries); in the global approach each site stores only
// its primaries.
type Store struct {
	site     SiteID
	versions map[core.ObjectID]Version
}

// NewStore returns an empty store for a site. Objects read before any
// write observe the zero Version.
func NewStore(site SiteID) *Store {
	return &Store{site: site, versions: make(map[core.ObjectID]Version)}
}

// Site returns the owning site.
func (s *Store) Site() SiteID { return s.site }

// Read returns the current local version of obj.
func (s *Store) Read(obj core.ObjectID) Version {
	return s.versions[obj]
}

// Write installs a new version produced locally at time now, bumping the
// sequence number.
func (s *Store) Write(obj core.ObjectID, value int64, now sim.Time) Version {
	v := Version{Value: value, WrittenAt: now, Seq: s.versions[obj].Seq + 1}
	s.versions[obj] = v
	return v
}

// Install applies a replicated version from another site. Out-of-order
// deliveries are dropped: a version is installed only if its sequence
// number advances the copy, which keeps replicas monotone.
func (s *Store) Install(obj core.ObjectID, v Version) bool {
	if v.Seq <= s.versions[obj].Seq {
		return false
	}
	s.versions[obj] = v
	return true
}

// State exports the committed values as a plain map, for checkpointing.
func (s *Store) State() map[core.ObjectID]int64 {
	out := make(map[core.ObjectID]int64, len(s.versions))
	for obj, v := range s.versions {
		out[obj] = v.Value
	}
	return out
}

// Staleness returns how far the local copy of obj lags behind a reference
// version (typically the primary's): zero when up to date.
func (s *Store) Staleness(obj core.ObjectID, primary Version, now sim.Time) sim.Duration {
	local := s.versions[obj]
	if local.Seq >= primary.Seq {
		return 0
	}
	// The copy misses writes since primary.WrittenAt at the latest.
	return now.Sub(local.WrittenAt)
}
