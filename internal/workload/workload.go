// Package workload generates transaction loads per the paper's model:
// transactions enter the system with exponentially distributed
// interarrival times; the data objects accessed are chosen uniformly
// from the database; the total processing time is directly related to
// the number of objects accessed; each deadline is set in proportion to
// the transaction's size and the system workload; and the transaction
// with the earliest deadline is assigned the highest priority.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/sim"
)

// Kind distinguishes the paper's transaction types.
type Kind int

// Transaction kinds.
const (
	// Update transactions write every object they access (the
	// tracking-update model of §4: a station updates its view).
	Update Kind = iota + 1
	// ReadOnly transactions only read.
	ReadOnly
)

// PriorityPolicy selects how transaction priorities are assigned. The
// paper's experiments assign the highest priority to the earliest
// deadline; the environment lets the experimenter choose, so the
// alternatives studied by contemporaneous work ([Abb88]) are available
// as ablations.
type PriorityPolicy int

// Priority assignment policies.
const (
	// PriorityEDF: earliest deadline first (the paper's choice).
	PriorityEDF PriorityPolicy = iota + 1
	// PriorityFCFS: earliest arrival first.
	PriorityFCFS
	// PriorityRandom: arbitrary fixed order, the no-information
	// baseline.
	PriorityRandom
	// PrioritySlack: least slack (deadline minus estimated execution
	// time) first.
	PrioritySlack
)

// Txn is one generated transaction: its timing constraints, home site,
// and declared access sets. The runtime in internal/txn executes it.
type Txn struct {
	ID       int64
	Kind     Kind
	Periodic bool
	Arrival  sim.Time
	Deadline sim.Time
	Home     db.SiteID
	// Ops is the access sequence; under strict two-phase locking each
	// object appears once.
	Ops []Op
	// Prio, when non-zero, overrides the default earliest-deadline
	// priority (set by non-EDF policies or by hand-crafted loads).
	Prio sim.Priority
}

// Op is one access in a transaction's sequence.
type Op struct {
	Obj  core.ObjectID
	Mode core.Mode
}

// Size returns the number of objects the transaction accesses.
func (t *Txn) Size() int { return len(t.Ops) }

// Priority returns the transaction's fixed priority: the explicit Prio
// if one was assigned, otherwise earliest-deadline-highest.
func (t *Txn) Priority() sim.Priority {
	if t.Prio != (sim.Priority{}) {
		return t.Prio
	}
	return sim.Priority{Deadline: int64(t.Deadline), TxID: t.ID}
}

// ReadSet returns the objects read, ascending.
func (t *Txn) ReadSet() []core.ObjectID { return t.set(core.Read) }

// WriteSet returns the objects written, ascending.
func (t *Txn) WriteSet() []core.ObjectID { return t.set(core.Write) }

func (t *Txn) set(mode core.Mode) []core.ObjectID {
	var objs []core.ObjectID
	for _, op := range t.Ops {
		if op.Mode == mode {
			objs = append(objs, op.Obj)
		}
	}
	// Access sets are small (mean size objects); insertion sort beats
	// sort.Slice and its closure on the hot path.
	for i := 1; i < len(objs); i++ {
		v := objs[i]
		j := i - 1
		for j >= 0 && objs[j] > v {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = v
	}
	return objs
}

// Params configures generation.
type Params struct {
	// Seed drives the deterministic random stream; experiments vary it
	// per run and average, as the paper averages over 10 runs.
	Seed int64
	// Catalog lays out the database.
	Catalog *db.Catalog
	// Count is the number of transactions to generate.
	Count int
	// MeanInterarrival is the mean of the exponential interarrival
	// distribution.
	MeanInterarrival sim.Duration
	// MeanSize is the average number of objects accessed. Individual
	// sizes are uniform on [MeanSize/2, 3*MeanSize/2] (clamped to at
	// least 1 and at most the database size).
	MeanSize int
	// ReadOnlyFrac is the fraction of read-only transactions; the rest
	// are updates. The paper's single-site experiments use updates
	// (ReadOnlyFrac 0); the distributed experiments sweep the mix.
	ReadOnlyFrac float64
	// PerObjCost is the estimated processing cost per object used in
	// the deadline formula (CPU plus I/O for a disk-resident database).
	PerObjCost sim.Duration
	// SlackMin and SlackMax bound the uniform slack factor: deadline =
	// arrival + slack × size × PerObjCost. Tighter slack means harder
	// deadlines.
	SlackMin, SlackMax float64
	// LocalWriteSets, when true, draws each update transaction's
	// objects from a single site's primary partition and homes the
	// transaction there (the local-ceiling approach's restriction 2:
	// objects to be updated must be primary copies at the updating
	// transaction's site). Read-only transactions are assigned to a
	// uniformly random site either way.
	LocalWriteSets bool
	// PeriodicFrac is the fraction of update transactions generated as
	// periodic task instances (the tracking model's repetitive scans);
	// they re-use one access set per stream and arrive on a fixed
	// period with the same size and deadline slack.
	PeriodicFrac float64
	// Period is the period of periodic streams (defaults to
	// 10×MeanInterarrival when zero).
	Period sim.Duration
	// ImplicitDeadlines gives periodic instances the classic implicit
	// deadline — the start of the next period — instead of the
	// size-proportional one.
	ImplicitDeadlines bool
	// Policy assigns priorities (default PriorityEDF).
	Policy PriorityPolicy
	// HotspotFrac and HotspotProb skew object selection: with
	// probability HotspotProb an access lands uniformly inside the
	// first HotspotFrac of the database (per partition under
	// LocalWriteSets). Both zero keeps the paper's uniform choice.
	HotspotFrac float64
	// HotspotProb is the probability an access targets the hotspot.
	HotspotProb float64
}

func (p Params) validate() error {
	if p.Catalog == nil {
		return fmt.Errorf("workload: nil catalog")
	}
	if p.Count <= 0 {
		return fmt.Errorf("workload: count must be positive, got %d", p.Count)
	}
	if p.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: mean interarrival must be positive")
	}
	if p.MeanSize < 1 {
		return fmt.Errorf("workload: mean size must be >= 1, got %d", p.MeanSize)
	}
	if p.ReadOnlyFrac < 0 || p.ReadOnlyFrac > 1 {
		return fmt.Errorf("workload: read-only fraction %v out of [0,1]", p.ReadOnlyFrac)
	}
	if p.SlackMin <= 0 || p.SlackMax < p.SlackMin {
		return fmt.Errorf("workload: slack bounds (%v,%v) invalid", p.SlackMin, p.SlackMax)
	}
	if p.PerObjCost <= 0 {
		return fmt.Errorf("workload: per-object cost must be positive")
	}
	if p.HotspotFrac < 0 || p.HotspotFrac > 1 || p.HotspotProb < 0 || p.HotspotProb > 1 {
		return fmt.Errorf("workload: hotspot parameters (%v,%v) out of [0,1]", p.HotspotFrac, p.HotspotProb)
	}
	return nil
}

// Generate produces the transaction load, ordered by arrival time.
func Generate(p Params) ([]*Txn, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	period := p.Period
	if period <= 0 {
		period = 10 * p.MeanInterarrival
	}

	txs := make([]*Txn, 0, p.Count)
	now := sim.Time(0)
	var id int64
	// One permutation buffer shared by every pickOps call: rand.Perm
	// would allocate a database-sized slice per transaction.
	var perm []int

	// Periodic streams are materialized lazily: each new periodic
	// instance either continues an existing stream or starts one.
	type stream struct {
		home db.SiteID
		ops  []Op
		next sim.Time
	}
	var streams []*stream

	for len(txs) < p.Count {
		now = now.Add(expDuration(rng, p.MeanInterarrival))
		id++
		kind := Update
		if rng.Float64() < p.ReadOnlyFrac {
			kind = ReadOnly
		}
		t := &Txn{ID: id, Kind: kind, Arrival: now}

		if kind == Update && p.PeriodicFrac > 0 && rng.Float64() < p.PeriodicFrac {
			t.Periodic = true
			var s *stream
			// Reuse the stream whose next instance is due.
			for _, cand := range streams {
				if cand.next <= now {
					s = cand
					break
				}
			}
			if s == nil {
				s = &stream{
					home: db.SiteID(rng.Intn(p.Catalog.Sites())),
				}
				s.ops = pickOps(rng, p, Update, s.home, &perm)
				streams = append(streams, s)
			}
			s.next = now.Add(sim.Duration(period))
			t.Home = s.home
			t.Ops = append([]Op(nil), s.ops...)
		} else {
			t.Home = db.SiteID(rng.Intn(p.Catalog.Sites()))
			t.Ops = pickOps(rng, p, kind, t.Home, &perm)
		}
		slack := p.SlackMin + rng.Float64()*(p.SlackMax-p.SlackMin)
		exec := sim.Duration(float64(t.Size()) * float64(p.PerObjCost) * slack)
		t.Deadline = t.Arrival.Add(exec)
		if t.Periodic && p.ImplicitDeadlines {
			t.Deadline = t.Arrival.Add(period)
		}
		switch p.Policy {
		case PriorityFCFS:
			t.Prio = sim.Priority{Deadline: int64(t.Arrival), TxID: t.ID}
		case PriorityRandom:
			t.Prio = sim.Priority{Deadline: rng.Int63(), TxID: t.ID}
		case PrioritySlack:
			est := sim.Duration(t.Size()) * p.PerObjCost
			t.Prio = sim.Priority{Deadline: int64(t.Deadline.Sub(t.Arrival) - est), TxID: t.ID}
		}
		txs = append(txs, t)
	}
	return txs, nil
}

// pickOps draws a transaction's access set: size uniform around the mean,
// objects uniform without replacement from the whole database (or, for
// update transactions under LocalWriteSets, from the home site's primary
// partition), in random request order.
func pickOps(rng *rand.Rand, p Params, kind Kind, home db.SiteID, perm *[]int) []Op {
	pool := p.Catalog.Objects()
	var partition []core.ObjectID
	if kind == Update && p.LocalWriteSets {
		partition = p.Catalog.ObjectsAt(home)
		pool = len(partition)
	}
	lo := p.MeanSize / 2
	if lo < 1 {
		lo = 1
	}
	hi := p.MeanSize + p.MeanSize/2
	if hi < lo {
		hi = lo
	}
	if hi > pool {
		hi = pool
	}
	if lo > hi {
		lo = hi
	}
	size := lo + rng.Intn(hi-lo+1)

	mode := core.Write
	if kind == ReadOnly {
		mode = core.Read
	}
	picked := pickIndexes(rng, p, pool, size, perm)
	ops := make([]Op, 0, size)
	for _, idx := range picked {
		obj := core.ObjectID(idx)
		if partition != nil {
			obj = partition[idx]
		}
		ops = append(ops, Op{Obj: obj, Mode: mode})
	}
	return ops
}

// pickIndexes draws size distinct indexes from [0, pool): uniformly, or
// skewed toward the hotspot prefix when configured. The returned slice
// aliases the shared perm scratch and is only valid until the next call.
func pickIndexes(rng *rand.Rand, p Params, pool, size int, perm *[]int) []int {
	if p.HotspotProb <= 0 || p.HotspotFrac <= 0 {
		return permInto(rng, perm, pool)[:size]
	}
	hot := int(p.HotspotFrac * float64(pool))
	if hot < 1 {
		hot = 1
	}
	if hot >= pool {
		return permInto(rng, perm, pool)[:size]
	}
	used := make(map[int]bool, size)
	out := make([]int, 0, size)
	hotUsed, coldUsed := 0, 0
	for len(out) < size {
		fromHot := rng.Float64() < p.HotspotProb
		// When one region is exhausted, draw from the other so the
		// loop always terminates (size never exceeds the pool).
		if hotUsed == hot {
			fromHot = false
		} else if coldUsed == pool-hot {
			fromHot = true
		}
		var idx int
		if fromHot {
			idx = rng.Intn(hot)
		} else {
			idx = hot + rng.Intn(pool-hot)
		}
		if used[idx] {
			continue
		}
		used[idx] = true
		if fromHot {
			hotUsed++
		} else {
			coldUsed++
		}
		out = append(out, idx)
	}
	return out
}

// permInto writes a uniform permutation of [0, n) into the shared
// scratch buffer, growing it as needed. The loop is exactly
// rand.Perm's, so it consumes the identical random stream — workloads
// (and therefore journals) are byte-for-byte unchanged.
func permInto(rng *rand.Rand, scratch *[]int, n int) []int {
	s := *scratch
	if cap(s) < n {
		s = make([]int, n)
		*scratch = s
	}
	s = s[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		s[i] = s[j]
		s[j] = i
	}
	return s
}

// expDuration draws from an exponential distribution with the given mean.
func expDuration(rng *rand.Rand, mean sim.Duration) sim.Duration {
	d := sim.Duration(math.Round(rng.ExpFloat64() * float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}
