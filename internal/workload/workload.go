// Package workload generates transaction loads per the paper's model:
// transactions enter the system with exponentially distributed
// interarrival times; the data objects accessed are chosen uniformly
// from the database; the total processing time is directly related to
// the number of objects accessed; each deadline is set in proportion to
// the transaction's size and the system workload; and the transaction
// with the earliest deadline is assigned the highest priority.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/sim"
)

// Kind distinguishes the paper's transaction types.
type Kind int

// Transaction kinds.
const (
	// Update transactions write every object they access (the
	// tracking-update model of §4: a station updates its view).
	Update Kind = iota + 1
	// ReadOnly transactions only read.
	ReadOnly
)

// PriorityPolicy selects how transaction priorities are assigned. The
// paper's experiments assign the highest priority to the earliest
// deadline; the environment lets the experimenter choose, so the
// alternatives studied by contemporaneous work ([Abb88]) are available
// as ablations.
type PriorityPolicy int

// Priority assignment policies.
const (
	// PriorityEDF: earliest deadline first (the paper's choice).
	PriorityEDF PriorityPolicy = iota + 1
	// PriorityFCFS: earliest arrival first.
	PriorityFCFS
	// PriorityRandom: arbitrary fixed order, the no-information
	// baseline.
	PriorityRandom
	// PrioritySlack: least slack (deadline minus estimated execution
	// time) first.
	PrioritySlack
)

// Txn is one generated transaction: its timing constraints, home site,
// and declared access sets. The runtime in internal/txn executes it.
type Txn struct {
	ID       int64
	Kind     Kind
	Periodic bool
	Arrival  sim.Time
	Deadline sim.Time
	Home     db.SiteID
	// Ops is the access sequence; under strict two-phase locking each
	// object appears once.
	Ops []Op
	// Prio, when non-zero, overrides the default earliest-deadline
	// priority (set by non-EDF policies or by hand-crafted loads).
	Prio sim.Priority
}

// Op is one access in a transaction's sequence.
type Op struct {
	Obj  core.ObjectID
	Mode core.Mode
}

// Size returns the number of objects the transaction accesses.
func (t *Txn) Size() int { return len(t.Ops) }

// Priority returns the transaction's fixed priority: the explicit Prio
// if one was assigned, otherwise earliest-deadline-highest.
func (t *Txn) Priority() sim.Priority {
	if t.Prio != (sim.Priority{}) {
		return t.Prio
	}
	return sim.Priority{Deadline: int64(t.Deadline), TxID: t.ID}
}

// ReadSet returns the objects read, ascending.
func (t *Txn) ReadSet() []core.ObjectID { return t.set(core.Read) }

// WriteSet returns the objects written, ascending.
func (t *Txn) WriteSet() []core.ObjectID { return t.set(core.Write) }

func (t *Txn) set(mode core.Mode) []core.ObjectID {
	var objs []core.ObjectID
	for _, op := range t.Ops {
		if op.Mode == mode {
			objs = append(objs, op.Obj)
		}
	}
	// Access sets are small (mean size objects); insertion sort beats
	// sort.Slice and its closure on the hot path.
	for i := 1; i < len(objs); i++ {
		v := objs[i]
		j := i - 1
		for j >= 0 && objs[j] > v {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = v
	}
	return objs
}

// Params configures generation.
type Params struct {
	// Seed drives the deterministic random stream; experiments vary it
	// per run and average, as the paper averages over 10 runs.
	Seed int64
	// Catalog lays out the database.
	Catalog *db.Catalog
	// Count is the number of transactions to generate.
	Count int
	// MeanInterarrival is the mean of the exponential interarrival
	// distribution.
	MeanInterarrival sim.Duration
	// MeanSize is the average number of objects accessed. Individual
	// sizes are uniform on [MeanSize/2, 3*MeanSize/2] (clamped to at
	// least 1 and at most the database size).
	MeanSize int
	// ReadOnlyFrac is the fraction of read-only transactions; the rest
	// are updates. The paper's single-site experiments use updates
	// (ReadOnlyFrac 0); the distributed experiments sweep the mix.
	ReadOnlyFrac float64
	// PerObjCost is the estimated processing cost per object used in
	// the deadline formula (CPU plus I/O for a disk-resident database).
	PerObjCost sim.Duration
	// SlackMin and SlackMax bound the uniform slack factor: deadline =
	// arrival + slack × size × PerObjCost. Tighter slack means harder
	// deadlines.
	SlackMin, SlackMax float64
	// LocalWriteSets, when true, draws each update transaction's
	// objects from a single site's primary partition and homes the
	// transaction there (the local-ceiling approach's restriction 2:
	// objects to be updated must be primary copies at the updating
	// transaction's site). Read-only transactions are assigned to a
	// uniformly random site either way.
	LocalWriteSets bool
	// PeriodicFrac is the fraction of update transactions generated as
	// periodic task instances (the tracking model's repetitive scans);
	// they re-use one access set per stream and arrive on a fixed
	// period with the same size and deadline slack.
	PeriodicFrac float64
	// Period is the period of periodic streams (defaults to
	// 10×MeanInterarrival when zero).
	Period sim.Duration
	// ImplicitDeadlines gives periodic instances the classic implicit
	// deadline — the start of the next period — instead of the
	// size-proportional one.
	ImplicitDeadlines bool
	// Policy assigns priorities (default PriorityEDF).
	Policy PriorityPolicy
	// HotspotFrac and HotspotProb skew object selection: with
	// probability HotspotProb an access lands uniformly inside the
	// first HotspotFrac of the database (per partition under
	// LocalWriteSets). Both zero keeps the paper's uniform choice.
	HotspotFrac float64
	// HotspotProb is the probability an access targets the hotspot.
	HotspotProb float64
	// LocalityProb skews object selection toward the home site's shard:
	// with this probability an access draws from the home site's primary
	// partition through a Zipf-skewed rank (hot local objects first);
	// otherwise it is uniform over the whole database. Zero keeps the
	// historical uniform choice and draws nothing extra from the random
	// stream. Update transactions under LocalWriteSets are already fully
	// partition-local; the knob then shapes only the unrestricted
	// transactions.
	LocalityProb float64
	// BurstFactor, when > 1, makes the arrival process bursty: while the
	// burst phase is on, the mean interarrival is divided by this factor.
	// The phase is a deterministic square wave of the arrival clock —
	// BurstOn of compressed arrivals, then BurstOff of the base rate —
	// so the same seed still yields the same load. Zero (or 1) keeps the
	// paper's stationary Poisson arrivals, with a random stream identical
	// to pre-burst versions of this package.
	BurstFactor float64
	// BurstOn and BurstOff are the burst-phase and quiet-phase widths;
	// both must be positive when BurstFactor > 1.
	BurstOn, BurstOff sim.Duration
}

func (p Params) validate() error {
	if p.Catalog == nil {
		return fmt.Errorf("workload: nil catalog")
	}
	if p.Count <= 0 {
		return fmt.Errorf("workload: count must be positive, got %d", p.Count)
	}
	if p.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: mean interarrival must be positive")
	}
	if p.MeanSize < 1 {
		return fmt.Errorf("workload: mean size must be >= 1, got %d", p.MeanSize)
	}
	if p.ReadOnlyFrac < 0 || p.ReadOnlyFrac > 1 {
		return fmt.Errorf("workload: read-only fraction %v out of [0,1]", p.ReadOnlyFrac)
	}
	if p.SlackMin <= 0 || p.SlackMax < p.SlackMin {
		return fmt.Errorf("workload: slack bounds (%v,%v) invalid", p.SlackMin, p.SlackMax)
	}
	if p.PerObjCost <= 0 {
		return fmt.Errorf("workload: per-object cost must be positive")
	}
	if p.HotspotFrac < 0 || p.HotspotFrac > 1 || p.HotspotProb < 0 || p.HotspotProb > 1 {
		return fmt.Errorf("workload: hotspot parameters (%v,%v) out of [0,1]", p.HotspotFrac, p.HotspotProb)
	}
	if p.LocalityProb < 0 || p.LocalityProb > 1 {
		return fmt.Errorf("workload: locality probability %v out of [0,1]", p.LocalityProb)
	}
	if p.BurstFactor != 0 && p.BurstFactor < 1 {
		return fmt.Errorf("workload: burst factor %v must be >= 1 (or 0 for off)", p.BurstFactor)
	}
	if p.BurstFactor > 1 && (p.BurstOn <= 0 || p.BurstOff <= 0) {
		return fmt.Errorf("workload: burst factor %v needs positive BurstOn/BurstOff, got (%d,%d)",
			p.BurstFactor, p.BurstOn, p.BurstOff)
	}
	return nil
}

// Generate produces the transaction load, ordered by arrival time. It
// is a Stream drained to completion: the random draw sequence per
// transaction is identical, so existing (seed, config) loads — and
// therefore journals — are byte-for-byte unchanged by the streaming
// refactor.
func Generate(p Params) ([]*Txn, error) {
	s, err := NewStream(p)
	if err != nil {
		return nil, err
	}
	txs := make([]*Txn, 0, p.Count)
	for t := s.Next(); t != nil; t = s.Next() {
		txs = append(txs, t)
	}
	return txs, nil
}

// Stream generates the transaction load one transaction at a time, so a
// loader can schedule arrival i+1 from arrival i's event and a
// million-transaction run never materializes the whole load. Next
// consumes the random stream exactly as Generate always has.
type Stream struct {
	p       Params
	rng     *rand.Rand
	period  sim.Duration
	now     sim.Time
	id      int64
	emitted int
	// One permutation buffer shared by every pickOps call: rand.Perm
	// would allocate a database-sized slice per transaction.
	perm []int
	// Periodic streams are materialized lazily: each new periodic
	// instance either continues an existing stream or starts one.
	streams []*pstream
}

// pstream is one periodic task stream (a repetitive tracking scan).
type pstream struct {
	home db.SiteID
	ops  []Op
	next sim.Time
}

// NewStream validates the parameters and positions the stream before
// the first arrival.
func NewStream(p Params) (*Stream, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	period := p.Period
	if period <= 0 {
		period = 10 * p.MeanInterarrival
	}
	return &Stream{p: p, rng: rand.New(rand.NewSource(p.Seed)), period: period}, nil
}

// Remaining reports how many transactions Next will still produce.
func (s *Stream) Remaining() int { return s.p.Count - s.emitted }

// Next returns the next transaction, or nil once Count have been
// produced. Arrival times are non-decreasing.
func (s *Stream) Next() *Txn {
	if s.emitted >= s.p.Count {
		return nil
	}
	s.emitted++
	s.now = s.now.Add(expDuration(s.rng, s.meanInterarrival()))
	s.id++
	kind := Update
	if s.rng.Float64() < s.p.ReadOnlyFrac {
		kind = ReadOnly
	}
	t := &Txn{ID: s.id, Kind: kind, Arrival: s.now}

	if kind == Update && s.p.PeriodicFrac > 0 && s.rng.Float64() < s.p.PeriodicFrac {
		t.Periodic = true
		var ps *pstream
		// Reuse the stream whose next instance is due.
		for _, cand := range s.streams {
			if cand.next <= s.now {
				ps = cand
				break
			}
		}
		if ps == nil {
			ps = &pstream{
				home: db.SiteID(s.rng.Intn(s.p.Catalog.Sites())),
			}
			ps.ops = pickOps(s.rng, s.p, Update, ps.home, &s.perm)
			s.streams = append(s.streams, ps)
		}
		ps.next = s.now.Add(sim.Duration(s.period))
		t.Home = ps.home
		t.Ops = append([]Op(nil), ps.ops...)
	} else {
		t.Home = db.SiteID(s.rng.Intn(s.p.Catalog.Sites()))
		t.Ops = pickOps(s.rng, s.p, kind, t.Home, &s.perm)
	}
	slack := s.p.SlackMin + s.rng.Float64()*(s.p.SlackMax-s.p.SlackMin)
	exec := sim.Duration(float64(t.Size()) * float64(s.p.PerObjCost) * slack)
	t.Deadline = t.Arrival.Add(exec)
	if t.Periodic && s.p.ImplicitDeadlines {
		t.Deadline = t.Arrival.Add(s.period)
	}
	switch s.p.Policy {
	case PriorityFCFS:
		t.Prio = sim.Priority{Deadline: int64(t.Arrival), TxID: t.ID}
	case PriorityRandom:
		t.Prio = sim.Priority{Deadline: s.rng.Int63(), TxID: t.ID}
	case PrioritySlack:
		est := sim.Duration(t.Size()) * s.p.PerObjCost
		t.Prio = sim.Priority{Deadline: int64(t.Deadline.Sub(t.Arrival) - est), TxID: t.ID}
	}
	return t
}

// meanInterarrival returns the phase-dependent mean: the base mean, or
// the base divided by BurstFactor while the deterministic burst square
// wave (evaluated at the previous arrival instant) is on. With bursts
// off this is exactly the base mean, and since the burst branch draws
// nothing from the random stream, non-bursty loads are unchanged.
func (s *Stream) meanInterarrival() sim.Duration {
	mean := s.p.MeanInterarrival
	if s.p.BurstFactor <= 1 {
		return mean
	}
	cycle := s.p.BurstOn + s.p.BurstOff
	if sim.Duration(int64(s.now)%int64(cycle)) < s.p.BurstOn {
		mean = sim.Duration(float64(mean) / s.p.BurstFactor)
		if mean < 1 {
			mean = 1
		}
	}
	return mean
}

// pickOps draws a transaction's access set: size uniform around the mean,
// objects uniform without replacement from the whole database (or, for
// update transactions under LocalWriteSets, from the home site's primary
// partition), in random request order.
func pickOps(rng *rand.Rand, p Params, kind Kind, home db.SiteID, perm *[]int) []Op {
	pool := p.Catalog.Objects()
	var partition []core.ObjectID
	if kind == Update && p.LocalWriteSets {
		partition = p.Catalog.ObjectsAt(home)
		pool = len(partition)
	}
	lo := p.MeanSize / 2
	if lo < 1 {
		lo = 1
	}
	hi := p.MeanSize + p.MeanSize/2
	if hi < lo {
		hi = lo
	}
	if hi > pool {
		hi = pool
	}
	if lo > hi {
		lo = hi
	}
	size := lo + rng.Intn(hi-lo+1)

	mode := core.Write
	if kind == ReadOnly {
		mode = core.Read
	}
	if p.LocalityProb > 0 && partition == nil {
		return pickLocalityOps(rng, p, mode, home, size)
	}
	picked := pickIndexes(rng, p, pool, size, perm)
	ops := make([]Op, 0, size)
	for _, idx := range picked {
		obj := core.ObjectID(idx)
		if partition != nil {
			obj = partition[idx]
		}
		ops = append(ops, Op{Obj: obj, Mode: mode})
	}
	return ops
}

// pickIndexes draws size distinct indexes from [0, pool): uniformly, or
// skewed toward the hotspot prefix when configured. The returned slice
// aliases the shared perm scratch and is only valid until the next call.
func pickIndexes(rng *rand.Rand, p Params, pool, size int, perm *[]int) []int {
	if p.HotspotProb <= 0 || p.HotspotFrac <= 0 {
		return permInto(rng, perm, pool)[:size]
	}
	hot := int(p.HotspotFrac * float64(pool))
	if hot < 1 {
		hot = 1
	}
	if hot >= pool {
		return permInto(rng, perm, pool)[:size]
	}
	used := make(map[int]bool, size)
	out := make([]int, 0, size)
	hotUsed, coldUsed := 0, 0
	for len(out) < size {
		fromHot := rng.Float64() < p.HotspotProb
		// When one region is exhausted, draw from the other so the
		// loop always terminates (size never exceeds the pool).
		if hotUsed == hot {
			fromHot = false
		} else if coldUsed == pool-hot {
			fromHot = true
		}
		var idx int
		if fromHot {
			idx = rng.Intn(hot)
		} else {
			idx = hot + rng.Intn(pool-hot)
		}
		if used[idx] {
			continue
		}
		used[idx] = true
		if fromHot {
			hotUsed++
		} else {
			coldUsed++
		}
		out = append(out, idx)
	}
	return out
}

// zipfSkew is the fixed exponent of the locality draw's Zipf rank: the
// home partition's objects are ranked ascending and low ranks dominate.
const zipfSkew = 1.5

// pickLocalityOps draws size distinct objects mixing local-shard and
// global accesses: with probability LocalityProb an access is a
// Zipf-skewed rank into the home site's primary partition, otherwise
// uniform over the whole database. Repeats in the dense Zipf head fall
// back to the first unused partition object so the loop stays bounded;
// an exhausted partition (or a site with no primaries under hash
// placement) degrades to the uniform draw.
func pickLocalityOps(rng *rand.Rand, p Params, mode core.Mode, home db.SiteID, size int) []Op {
	local := p.Catalog.ObjectsAt(home)
	total := p.Catalog.Objects()
	var zipf *rand.Zipf
	localSet := make(map[core.ObjectID]bool, len(local))
	if len(local) > 0 {
		zipf = rand.NewZipf(rng, zipfSkew, 1, uint64(len(local)-1))
		for _, o := range local {
			localSet[o] = true
		}
	}
	used := make(map[core.ObjectID]bool, size)
	localUsed := 0
	ops := make([]Op, 0, size)
	for len(ops) < size {
		fromLocal := rng.Float64() < p.LocalityProb
		if localUsed >= len(local) {
			fromLocal = false
		}
		var obj core.ObjectID
		if fromLocal {
			obj = local[zipf.Uint64()]
			if used[obj] {
				for _, cand := range local {
					if !used[cand] {
						obj = cand
						break
					}
				}
			}
		} else {
			obj = core.ObjectID(rng.Intn(total))
			if used[obj] {
				continue
			}
		}
		used[obj] = true
		if localSet[obj] {
			localUsed++
		}
		ops = append(ops, Op{Obj: obj, Mode: mode})
	}
	return ops
}

// permInto writes a uniform permutation of [0, n) into the shared
// scratch buffer, growing it as needed. The loop is exactly
// rand.Perm's, so it consumes the identical random stream — workloads
// (and therefore journals) are byte-for-byte unchanged.
func permInto(rng *rand.Rand, scratch *[]int, n int) []int {
	s := *scratch
	if cap(s) < n {
		s = make([]int, n)
		*scratch = s
	}
	s = s[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		s[i] = s[j]
		s[j] = i
	}
	return s
}

// expDuration draws from an exponential distribution with the given mean.
func expDuration(rng *rand.Rand, mean sim.Duration) sim.Duration {
	d := sim.Duration(math.Round(rng.ExpFloat64() * float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}
