package workload

import (
	"reflect"
	"testing"

	"rtlock/internal/db"
	"rtlock/internal/sim"
)

func streamParams(count int) Params {
	cat, err := db.NewCatalog(1, 500)
	if err != nil {
		panic(err)
	}
	return Params{
		Seed:             42,
		Count:            count,
		MeanInterarrival: 5 * sim.Millisecond,
		MeanSize:         4,
		ReadOnlyFrac:     0.3,
		SlackMin:         2,
		SlackMax:         8,
		PerObjCost:       sim.Millisecond,
		PeriodicFrac:     0.2,
		Period:           50 * sim.Millisecond,
		Catalog:          cat,
	}
}

// TestStreamMatchesGenerate pins the streaming refactor: draining a
// Stream must reproduce Generate transaction by transaction, since
// every existing golden journal depends on the draw sequence.
func TestStreamMatchesGenerate(t *testing.T) {
	p := streamParams(500)
	want, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Remaining(); got != 500 {
		t.Fatalf("Remaining = %d, want 500", got)
	}
	for i, w := range want {
		g := s.Next()
		if g == nil {
			t.Fatalf("Next returned nil at %d", i)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("tx %d: stream %+v != generate %+v", i, g, w)
		}
	}
	if g := s.Next(); g != nil {
		t.Fatalf("Next past Count returned %+v", g)
	}
	if got := s.Remaining(); got != 0 {
		t.Fatalf("Remaining after drain = %d, want 0", got)
	}
}

func TestBurstValidation(t *testing.T) {
	p := streamParams(10)
	p.BurstFactor = 0.5
	if _, err := Generate(p); err == nil {
		t.Fatal("burst factor < 1 accepted")
	}
	p.BurstFactor = 3
	if _, err := Generate(p); err == nil {
		t.Fatal("burst factor without phases accepted")
	}
	p.BurstOn, p.BurstOff = 20*sim.Millisecond, 80*sim.Millisecond
	if _, err := Generate(p); err != nil {
		t.Fatalf("valid burst config rejected: %v", err)
	}
}

// TestBurstModulatesArrivalRate checks that the on-phase arrival rate
// exceeds the off-phase rate, and that the burst clock is a
// deterministic function of virtual time (two drains agree exactly).
func TestBurstModulatesArrivalRate(t *testing.T) {
	p := streamParams(20000)
	p.BurstFactor = 5
	p.BurstOn = 100 * sim.Millisecond
	p.BurstOff = 400 * sim.Millisecond
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("bursty load not deterministic")
	}
	cycle := p.BurstOn + p.BurstOff
	var on, off int
	for _, tx := range a {
		if sim.Duration(int64(tx.Arrival)%int64(cycle)) < p.BurstOn {
			on++
		} else {
			off++
		}
	}
	// The on phase is 1/5 of the cycle but runs 5x the rate, so it
	// should hold about half the arrivals — far more than the 20% a
	// uniform process would put there.
	if frac := float64(on) / float64(on+off); frac < 0.35 {
		t.Fatalf("on-phase arrival fraction %.2f, want bursty (> 0.35)", frac)
	}
}

// TestBurstOffLeavesLoadUnchanged pins that BurstFactor <= 1 draws
// nothing extra from the random stream: the load is byte-identical to
// the same parameters without burst fields.
func TestBurstOffLeavesLoadUnchanged(t *testing.T) {
	base, err := Generate(streamParams(1000))
	if err != nil {
		t.Fatal(err)
	}
	p := streamParams(1000)
	p.BurstFactor = 1
	p.BurstOn, p.BurstOff = sim.Second, sim.Second
	same, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, same) {
		t.Fatal("BurstFactor = 1 changed the generated load")
	}
}
