package workload

import (
	"math"
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/sim"
)

func params(t *testing.T) Params {
	t.Helper()
	cat, err := db.NewCatalog(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Seed:             1,
		Catalog:          cat,
		Count:            2000,
		MeanInterarrival: 100 * sim.Millisecond,
		MeanSize:         10,
		ReadOnlyFrac:     0.5,
		PerObjCost:       30 * sim.Millisecond,
		SlackMin:         3,
		SlackMax:         7,
	}
}

func TestGenerateValidation(t *testing.T) {
	p := params(t)
	bad := []func(*Params){
		func(p *Params) { p.Catalog = nil },
		func(p *Params) { p.Count = 0 },
		func(p *Params) { p.MeanInterarrival = 0 },
		func(p *Params) { p.MeanSize = 0 },
		func(p *Params) { p.ReadOnlyFrac = 1.5 },
		func(p *Params) { p.SlackMin = 0 },
		func(p *Params) { p.SlackMax = p.SlackMin - 1 },
		func(p *Params) { p.PerObjCost = 0 },
	}
	for i, mutate := range bad {
		q := p
		mutate(&q)
		if _, err := Generate(q); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := params(t)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline ||
			a[i].Kind != b[i].Kind || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("transaction %d differs between identical seeds", i)
		}
	}
	p.Seed = 2
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestGenerateInterarrivalMean(t *testing.T) {
	p := params(t)
	p.Count = 20000
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	last := txs[len(txs)-1].Arrival
	mean := float64(last) / float64(len(txs))
	want := float64(p.MeanInterarrival)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("empirical mean interarrival %v, want within 5%% of %v", mean, want)
	}
}

func TestGenerateSizesAroundMean(t *testing.T) {
	p := params(t)
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tx := range txs {
		s := tx.Size()
		if s < p.MeanSize/2 || s > p.MeanSize+p.MeanSize/2 {
			t.Fatalf("size %d outside [%d,%d]", s, p.MeanSize/2, p.MeanSize+p.MeanSize/2)
		}
		total += s
	}
	mean := float64(total) / float64(len(txs))
	if math.Abs(mean-float64(p.MeanSize)) > 1 {
		t.Fatalf("mean size %v, want about %d", mean, p.MeanSize)
	}
}

func TestGenerateMix(t *testing.T) {
	p := params(t)
	p.Count = 10000
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ro := 0
	for _, tx := range txs {
		switch tx.Kind {
		case ReadOnly:
			ro++
			for _, op := range tx.Ops {
				if op.Mode != core.Read {
					t.Fatal("read-only transaction writes")
				}
			}
		case Update:
			for _, op := range tx.Ops {
				if op.Mode != core.Write {
					t.Fatal("update transaction reads (update model writes all accesses)")
				}
			}
		}
	}
	frac := float64(ro) / float64(len(txs))
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("read-only fraction %v, want about 0.5", frac)
	}
}

func TestGenerateNoDuplicateObjects(t *testing.T) {
	p := params(t)
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		seen := make(map[core.ObjectID]bool)
		for _, op := range tx.Ops {
			if seen[op.Obj] {
				t.Fatalf("transaction %d accesses object %d twice", tx.ID, op.Obj)
			}
			seen[op.Obj] = true
		}
	}
}

func TestGenerateDeadlineProportionalToSize(t *testing.T) {
	p := params(t)
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		slack := float64(tx.Deadline.Sub(tx.Arrival)) / (float64(tx.Size()) * float64(p.PerObjCost))
		if slack < p.SlackMin-0.01 || slack > p.SlackMax+0.01 {
			t.Fatalf("transaction %d slack %v outside [%v,%v]", tx.ID, slack, p.SlackMin, p.SlackMax)
		}
	}
}

func TestGenerateLocalWriteSets(t *testing.T) {
	p := params(t)
	p.LocalWriteSets = true
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		if tx.Kind != Update {
			continue
		}
		for _, obj := range tx.WriteSet() {
			if p.Catalog.PrimarySite(obj) != tx.Home {
				t.Fatalf("update transaction %d at site %d writes object %d whose primary is site %d",
					tx.ID, tx.Home, obj, p.Catalog.PrimarySite(obj))
			}
		}
	}
}

func TestGeneratePriorityEDF(t *testing.T) {
	p := params(t)
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := txs[0], txs[1]
	pa, pb := a.Priority(), b.Priority()
	if a.Deadline < b.Deadline && !pa.Higher(pb) {
		t.Fatal("earlier deadline must mean higher priority")
	}
	if a.Deadline > b.Deadline && !pb.Higher(pa) {
		t.Fatal("later deadline must mean lower priority")
	}
}

func TestGeneratePeriodicStreams(t *testing.T) {
	p := params(t)
	p.ReadOnlyFrac = 0
	p.PeriodicFrac = 0.5
	p.Count = 500
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	periodic := 0
	bySet := make(map[string]int)
	for _, tx := range txs {
		if !tx.Periodic {
			continue
		}
		periodic++
		key := ""
		for _, op := range tx.Ops {
			key += string(rune(op.Obj)) + ","
		}
		bySet[key]++
	}
	if periodic == 0 {
		t.Fatal("no periodic transactions generated")
	}
	reused := false
	for _, n := range bySet {
		if n > 1 {
			reused = true
		}
	}
	if !reused {
		t.Fatal("periodic streams never reuse an access set")
	}
}

func TestGeneratePriorityPolicies(t *testing.T) {
	p := params(t)
	p.Count = 200

	p.Policy = PriorityFCFS
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(txs); i++ {
		if !txs[i-1].Priority().Higher(txs[i].Priority()) {
			t.Fatal("FCFS: earlier arrival must outrank later")
		}
	}

	p.Policy = PrioritySlack
	txs, err = Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		est := sim.Duration(tx.Size()) * p.PerObjCost
		slack := int64(tx.Deadline.Sub(tx.Arrival) - est)
		if tx.Priority().Deadline != slack {
			t.Fatalf("slack priority = %d, want %d", tx.Priority().Deadline, slack)
		}
	}

	p.Policy = PriorityRandom
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Random priorities must still be deterministic per seed.
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Priority() != b[i].Priority() {
			t.Fatal("random policy not reproducible across identical seeds")
		}
	}
}

func TestExplicitPriorityOverride(t *testing.T) {
	tx := &Txn{ID: 1, Deadline: 100}
	if got := tx.Priority(); got.Deadline != 100 {
		t.Fatalf("default priority = %v", got)
	}
	tx.Prio = sim.Priority{Deadline: 5, TxID: 1}
	if got := tx.Priority(); got.Deadline != 5 {
		t.Fatalf("override ignored: %v", got)
	}
}

func TestGenerateHotspot(t *testing.T) {
	p := params(t)
	p.Count = 2000
	p.HotspotFrac = 0.1
	p.HotspotProb = 0.8
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	hotN := int(0.1 * float64(p.Catalog.Objects()))
	hot, total := 0, 0
	for _, tx := range txs {
		for _, op := range tx.Ops {
			total++
			if int(op.Obj) < hotN {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("hotspot access fraction %v, want ≈ 0.8", frac)
	}
}

func TestGenerateHotspotValidation(t *testing.T) {
	p := params(t)
	p.HotspotFrac = 1.5
	if _, err := Generate(p); err == nil {
		t.Fatal("bad hotspot fraction accepted")
	}
	p = params(t)
	p.HotspotProb = -0.1
	if _, err := Generate(p); err == nil {
		t.Fatal("bad hotspot probability accepted")
	}
}

func TestGenerateHotspotExhaustsRegion(t *testing.T) {
	// HotspotProb 1 with a tiny hotspot must not loop forever when
	// transactions are bigger than the hotspot.
	cat, err := db.NewCatalog(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	p := params(t)
	p.Catalog = cat
	p.Count = 50
	p.MeanSize = 10
	p.HotspotFrac = 0.1 // 2 objects
	p.HotspotProb = 1
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		seen := map[core.ObjectID]bool{}
		for _, op := range tx.Ops {
			if seen[op.Obj] {
				t.Fatal("duplicate object under hotspot sampling")
			}
			seen[op.Obj] = true
		}
	}
}

func TestGenerateImplicitDeadlines(t *testing.T) {
	p := params(t)
	p.ReadOnlyFrac = 0
	p.PeriodicFrac = 0.6
	p.Period = 500 * sim.Millisecond
	p.ImplicitDeadlines = true
	p.Count = 300
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, tx := range txs {
		if !tx.Periodic {
			continue
		}
		checked++
		if tx.Deadline != tx.Arrival.Add(p.Period) {
			t.Fatalf("periodic deadline %v, want arrival+period %v",
				tx.Deadline, tx.Arrival.Add(p.Period))
		}
	}
	if checked == 0 {
		t.Fatal("no periodic instances generated")
	}
}

func TestGenerateSortedByArrival(t *testing.T) {
	p := params(t)
	txs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(txs); i++ {
		if txs[i].Arrival < txs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
}
