package audit

import (
	"fmt"
	"sort"

	"rtlock/internal/journal"
)

// The recovery-correctness auditor family checks the crash-recovery
// machinery of the global approach against its journal: a participant
// that voted yes is prepared — its vote is forced to the write-ahead
// log — and a recovery's WAL redo must restore exactly the still-
// undecided votes (no committed-then-lost work, no resurrected settled
// work), while every surviving in-doubt participant must eventually
// settle or journal its retry exhaustion.

// inDoubtKey identifies one participant's stake in one transaction.
type inDoubtKey struct {
	site int32
	tx   int64
}

// inDoubtTracker derives, from the journal alone, which (site, tx)
// pairs are in doubt: the participant cast a fresh yes-vote
// (KTwoPCVote A=1 B=0 — duplicate re-votes carry B=1 and settled
// restates are not journaled) and has not yet observed a decision.
// Decision records with note "coord" are the coordinator's own and do
// not settle a participant.
type inDoubtTracker struct {
	pending map[inDoubtKey]bool
}

func newInDoubtTracker() inDoubtTracker {
	return inDoubtTracker{pending: make(map[inDoubtKey]bool, 16)}
}

func (t *inDoubtTracker) observe(r *journal.Record) {
	switch r.Kind {
	case journal.KTwoPCVote:
		if r.A == 1 && r.B == 0 {
			t.pending[inDoubtKey{site: r.Site, tx: r.Tx}] = true
		}
	case journal.KTwoPCDecision:
		if r.Note != "coord" {
			delete(t.pending, inDoubtKey{site: r.Site, tx: r.Tx})
		}
	}
}

// inDoubtAt returns the site's in-doubt transactions, sorted.
func (t *inDoubtTracker) inDoubtAt(site int32) []int64 {
	var txs []int64
	for k := range t.pending {
		if k.site == site {
			txs = append(txs, k.tx)
		}
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	return txs
}

// RecoveryDurable checks durability across crashes: a WAL redo
// (KWALRedo) must restore at least every vote the journal still holds
// in doubt at that site — fewer means a forced vote was lost, i.e.
// committed-then-forgotten prepared state.
type RecoveryDurable struct {
	t inDoubtTracker
	v []Violation
}

// NewRecoveryDurable returns the crash-durability auditor.
func NewRecoveryDurable() *RecoveryDurable {
	return &RecoveryDurable{t: newInDoubtTracker()}
}

// Name implements Auditor.
func (a *RecoveryDurable) Name() string { return "recovery-durable" }

// Observe implements Auditor.
func (a *RecoveryDurable) Observe(r *journal.Record) {
	if r.Kind == journal.KWALRedo {
		expected := a.t.inDoubtAt(r.Site)
		if r.A < int64(len(expected)) {
			a.v = append(a.v, Violation{
				Rule: a.Name(), Seq: r.Seq, At: r.At,
				Detail: fmt.Sprintf("WAL redo at site %d restored %d votes but %d are in doubt (txs %v): a forced vote was lost",
					r.Site, r.A, len(expected), expected),
			})
		}
	}
	a.t.observe(r)
}

// Finish implements Auditor.
func (a *RecoveryDurable) Finish() []Violation { return a.v }

// RecoveryReentry checks recovery re-entry safety: replaying the WAL
// must be idempotent under repeated crashes, so a redo can never
// restore more votes than the journal holds in doubt — more means
// settled (or never-cast) work was resurrected.
type RecoveryReentry struct {
	t inDoubtTracker
	v []Violation
}

// NewRecoveryReentry returns the redo-idempotence auditor.
func NewRecoveryReentry() *RecoveryReentry {
	return &RecoveryReentry{t: newInDoubtTracker()}
}

// Name implements Auditor.
func (a *RecoveryReentry) Name() string { return "recovery-reentry" }

// Observe implements Auditor.
func (a *RecoveryReentry) Observe(r *journal.Record) {
	if r.Kind == journal.KWALRedo {
		expected := a.t.inDoubtAt(r.Site)
		if r.A > int64(len(expected)) {
			a.v = append(a.v, Violation{
				Rule: a.Name(), Seq: r.Seq, At: r.At,
				Detail: fmt.Sprintf("WAL redo at site %d restored %d votes but only %d are in doubt (txs %v): settled work was resurrected",
					r.Site, r.A, len(expected), expected),
			})
		}
	}
	a.t.observe(r)
}

// Finish implements Auditor.
func (a *RecoveryReentry) Finish() []Violation { return a.v }

// retryKey identifies one bounded retry loop.
type retryKey struct {
	site  int32
	tx    int64
	phase string
}

// RecoveryLiveness checks in-doubt liveness: every prepared participant
// must resolve within the bounded retry budget — by run end each
// in-doubt (site, tx) is either settled, exempt because its site is
// down, or journaled as retry-exhausted (graceful degradation). Retry
// attempts must also never skip a round: each KRetry's attempt number
// is at most one above its predecessor in the same loop.
type RecoveryLiveness struct {
	t           inDoubtTracker
	down        map[int32]bool
	exhausted   map[inDoubtKey]bool
	lastAttempt map[retryKey]int64
	lastSeq     uint64
	lastAt      int64
	v           []Violation
}

// NewRecoveryLiveness returns the in-doubt liveness auditor.
func NewRecoveryLiveness() *RecoveryLiveness {
	return &RecoveryLiveness{
		t:           newInDoubtTracker(),
		down:        make(map[int32]bool, 4),
		exhausted:   make(map[inDoubtKey]bool, 4),
		lastAttempt: make(map[retryKey]int64, 8),
	}
}

// Name implements Auditor.
func (a *RecoveryLiveness) Name() string { return "recovery-liveness" }

// Observe implements Auditor.
func (a *RecoveryLiveness) Observe(r *journal.Record) {
	a.lastSeq, a.lastAt = r.Seq, r.At
	a.t.observe(r)
	switch r.Kind {
	case journal.KSiteCrash:
		a.down[r.Site] = true
	case journal.KSiteRecover:
		a.down[r.Site] = false
	case journal.KRetryExhausted:
		if r.Note == "resolve" {
			a.exhausted[inDoubtKey{site: r.Site, tx: r.Tx}] = true
		}
	case journal.KRetry:
		k := retryKey{site: r.Site, tx: r.Tx, phase: r.Note}
		if prev, ok := a.lastAttempt[k]; ok && r.A > prev+1 {
			a.v = append(a.v, Violation{
				Rule: a.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("retry attempt %d at site %d skipped past attempt %d (phase %s)",
					r.A, r.Site, prev, r.Note),
			})
		}
		a.lastAttempt[k] = r.A
	}
}

// Finish implements Auditor.
func (a *RecoveryLiveness) Finish() []Violation {
	var keys []inDoubtKey
	for k := range a.t.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].site != keys[j].site {
			return keys[i].site < keys[j].site
		}
		return keys[i].tx < keys[j].tx
	})
	for _, k := range keys {
		if a.down[k.site] || a.exhausted[k] {
			continue // down sites are exempt; exhaustion is graceful
		}
		a.v = append(a.v, Violation{
			Rule: a.Name(), Seq: a.lastSeq, At: a.lastAt, Tx: k.tx,
			Detail: fmt.Sprintf("participant site %d still in doubt on tx %d at run end without retry exhaustion", k.site, k.tx),
		})
	}
	return a.v
}
