package audit

import (
	"fmt"
	"reflect"
	"testing"

	"rtlock/internal/journal"
)

// feedCommitDespiteAborts builds a TwoPCConsistent auditor that has seen
// a transaction prepare at sites 0..n-1, receive an abort vote from
// every site, and commit anyway — n violations whose emission order is
// the behavior under test.
func feedCommitDespiteAborts(n int) *TwoPCConsistent {
	a := NewTwoPCConsistent()
	seq := uint64(1)
	for site := 0; site < n; site++ {
		a.Observe(&journal.Record{Seq: seq, Kind: journal.KTwoPCPrepare, Tx: 7, A: int64(site)})
		seq++
	}
	for site := 0; site < n; site++ {
		a.Observe(&journal.Record{Seq: seq, Kind: journal.KTwoPCVote, Tx: 7, Site: int32(site), A: 0})
		seq++
	}
	a.Observe(&journal.Record{Seq: seq, Kind: journal.KTwoPCDecision, Tx: 7, A: 1})
	return a
}

// TestAbortVoteViolationOrderDeterministic is the "after" half of the
// maprange fix in TwoPCConsistent.Finish: auditing the same journal
// repeatedly must emit the abort-vote violations in the same (site)
// order every time, even though the votes live in a map.
func TestAbortVoteViolationOrderDeterministic(t *testing.T) {
	const sites = 12
	ref := feedCommitDespiteAborts(sites).Finish()
	if len(ref) < sites {
		t.Fatalf("expected at least %d violations, got %d", sites, len(ref))
	}
	for trial := 0; trial < 50; trial++ {
		got := feedCommitDespiteAborts(sites).Finish()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: violation order diverged:\n got %v\nwant %v", trial, got, ref)
		}
	}
}

// TestUnsortedMapOrderDiverges is the "before" half: it re-creates the
// pre-fix pattern — emitting one line per abort vote directly in map
// iteration order — and checks that it actually diverges across fresh
// maps. This pins down that the runtime randomizes map order here, i.e.
// the sort in Finish is load-bearing, not decorative.
func TestUnsortedMapOrderDiverges(t *testing.T) {
	emit := func() string {
		votes := make(map[int32]int64)
		for site := int32(0); site < 12; site++ {
			votes[site] = 0
		}
		out := ""
		for site, vote := range votes { //rtlint:allow maprange deliberately unsorted to demonstrate the bug class
			if vote == 0 {
				out += fmt.Sprintf("site %d;", site)
			}
		}
		return out
	}
	first := emit()
	for trial := 0; trial < 100; trial++ {
		if emit() != first {
			return // diverged, as the buggy pattern does
		}
	}
	t.Skip("map iteration order did not vary in 100 trials on this runtime")
}
