// Package audit checks protocol invariants against a replay journal.
//
// Every auditor is a streaming consumer of journal records: it observes
// the run one record at a time and reports violations with the sequence
// number and virtual time where the invariant broke. The auditors are
// the machine-checkable form of the guarantees the paper's protocols
// claim — the priority ceiling protocol's blocked-at-most-once bound
// and deadlock freedom, strict two-phase locking and conflict
// serializability of committed work, and two-phase commit's agreement
// property — so every experiment can prove, not assume, that the
// implementation honors them.
package audit

import (
	"fmt"
	"sort"
	"sync"

	"rtlock/internal/check"
	"rtlock/internal/core"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
)

// Violation is one invariant breach, anchored to the journal record
// that exposed it.
type Violation struct {
	// Rule names the auditor that fired.
	Rule string
	// Seq is the journal sequence number of the exposing record.
	Seq uint64
	// At is the virtual time of that record.
	At int64
	// Tx is the transaction involved (0 when not transaction-specific).
	Tx int64
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: seq=%d t=%d tx=%d: %s", v.Rule, v.Seq, v.At, v.Tx, v.Detail)
}

// Auditor consumes journal records and reports invariant violations.
type Auditor interface {
	// Name identifies the rule in reports.
	Name() string
	// Observe feeds one record, in journal order.
	Observe(r *journal.Record)
	// Finish runs end-of-journal checks and returns all violations.
	Finish() []Violation
}

// Run replays a journal through the auditors and returns every
// violation, ordered by exposing sequence number.
func Run(j *journal.Journal, auds ...Auditor) []Violation {
	records := j.Records()
	for i := range records {
		r := &records[i]
		for _, a := range auds {
			a.Observe(r)
		}
	}
	var out []Violation
	for _, a := range auds {
		out = append(out, a.Finish()...)
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
	return out
}

// ForManager returns the auditors applicable to a single-site protocol,
// selected by its Manager.Name(). Timestamp ordering holds no locks, so
// only serializability applies; plain 2PL and its priority variants can
// deadlock by design (the deadline timeout resolves them), so deadlock
// freedom is asserted only where the protocol guarantees it (PCP and
// wound-based 2PL-HP); blocked-at-most-once is the priority ceiling
// protocol's own bound.
func ForManager(name string) []Auditor {
	auds := []Auditor{NewSerializable(false)}
	if name == "TO" {
		return auds
	}
	auds = append(auds, NewStrictTwoPhase(), NewLockSafety())
	switch name {
	case "PCP", "PCP-X":
		auds = append(auds, NewDeadlockFree(), NewBlockedAtMostOnce())
	case "2PL-HP":
		auds = append(auds, NewDeadlockFree())
	}
	return auds
}

// ForApproach returns the auditors applicable to a distributed run
// ("global" or "local"). Both approaches synchronize through priority
// ceiling managers, so deadlock freedom applies; the global approach
// additionally runs two-phase commit; the local approach's histories
// are judged per site (each replica set is its own serializable
// database). Blocked-at-most-once is omitted: registration messages
// travel with communication delay, so the ceiling a blocking decision
// used may lag the true system state.
func ForApproach(approach string) []Auditor {
	auds := []Auditor{
		NewSerializable(approach == "local"),
		NewStrictTwoPhase(),
		NewLockSafety(),
		NewDeadlockFree(),
	}
	if approach == "global" {
		auds = append(auds, NewTwoPCConsistent())
	}
	return auds
}

// ForPlacement returns the auditors applicable to a placement-aware
// distributed run, selected by the canonical policy name (place.Policy
// String values). Full replication is the local approach's layout and
// inherits its auditors. The sharded and quorum modes run strict 2PL
// against independent per-shard ceiling managers: one committed global
// history, lock safety, strict two-phase locking, and 2PC agreement all
// apply, but deadlock freedom does not — the ceiling protocol prevents
// cycles within one manager only, and cross-shard waits can cycle (the
// deadline timeout resolves them, as with plain 2PL single-site
// schemes). Quorum runs additionally get the quorum-intersection
// invariant. The primary-only baseline holds no locks and promises no
// serializability (its journal says so in the KPlacement banner), so no
// auditor applies — the absence is the point of the baseline.
func ForPlacement(policy string) []Auditor {
	switch policy {
	case "full":
		return ForApproach("local")
	case "shard":
		return []Auditor{
			NewSerializable(false),
			NewStrictTwoPhase(),
			NewLockSafety(),
			NewTwoPCConsistent(),
		}
	case "quorum":
		return []Auditor{
			NewSerializable(false),
			NewStrictTwoPhase(),
			NewLockSafety(),
			NewTwoPCConsistent(),
			NewQuorumIntersection(),
		}
	default: // "primary"
		return nil
	}
}

// ForPlacementFaults returns the auditors for a placement-aware run
// with a fault plan attached. Serializability is dropped for the shard
// and quorum modes: a crash wipes a shard manager's lock table while a
// remote survivor may still think it holds locks there, so committed
// histories across the crash carry no cross-shard ordering guarantee —
// the same reasoning that drops global serializability in ForFaults.
// Lock safety, strict 2PL, 2PC agreement, the recovery-correctness
// family, and (quorum) the intersection invariant must hold across any
// plan; the intersection survives crashes because primary stores are
// durable and write rounds only report after W installs.
func ForPlacementFaults(policy string) []Auditor {
	switch policy {
	case "full":
		return ForFaults("local")
	case "shard", "quorum":
		auds := []Auditor{
			NewStrictTwoPhase(),
			NewLockSafety(),
			NewTwoPCConsistent(),
			NewRecoveryDurable(),
			NewRecoveryReentry(),
			NewRecoveryLiveness(),
		}
		if policy == "quorum" {
			auds = append(auds, NewQuorumIntersection())
		}
		return auds
	default: // "primary"
		return nil
	}
}

// ForFaults returns the auditors applicable to a distributed run with a
// fault plan attached. Crash, loss, and partition events do not weaken
// lock safety, strict two-phase locking, deadlock freedom, or two-phase
// commit agreement — those must hold across any plan. Global
// serializability is the exception: while the global ceiling manager's
// site is down, transactions degrade to their home sites' failover
// managers, and histories synchronized by different managers carry no
// cross-manager ordering guarantee (see DESIGN.md, "Fault model"). The
// local approach keeps its per-site serializability: each judged
// history is guarded by a single site's manager throughout. Fault runs
// additionally get the recovery-correctness family: durability and
// re-entry safety of WAL redo, and bounded-retry liveness for in-doubt
// participants.
func ForFaults(approach string) []Auditor {
	if approach != "global" {
		return ForApproach(approach)
	}
	return []Auditor{
		NewStrictTwoPhase(),
		NewLockSafety(),
		NewDeadlockFree(),
		NewTwoPCConsistent(),
		NewRecoveryDurable(),
		NewRecoveryReentry(),
		NewRecoveryLiveness(),
	}
}

// grouper detects the record-group convention the emitters use: a
// blocking (or re-blame) episode with several blamed transactions is
// written as consecutive records sharing kind, transaction, object, and
// time. first reports whether r starts a new group.
type grouper struct {
	valid bool
	seq   uint64
	kind  journal.Kind
	tx    int64
	obj   int32
	at    int64
}

func (g *grouper) first(r *journal.Record) bool {
	same := g.valid && r.Seq == g.seq+1 && r.Kind == g.kind &&
		r.Tx == g.tx && r.Obj == g.obj && r.At == g.at
	g.valid = true
	g.seq, g.kind, g.tx, g.obj, g.at = r.Seq, r.Kind, r.Tx, r.Obj, r.At
	return !same
}

// BlockedAtMostOnce checks the priority ceiling protocol's bound: one
// transaction attempt is blocked by lower-priority work at most once.
// Priorities are base priorities (deadline, id) learned from KArrive.
type BlockedAtMostOnce struct {
	g        grouper
	prio     map[int64]sim.Priority
	episodes map[int64]int
	// counted marks whether the current block group already counted as
	// a lower-priority episode, so later records of the same group
	// don't double-count.
	counted map[int64]bool
	v       []Violation
}

// NewBlockedAtMostOnce returns the PCP blocking-bound auditor.
func NewBlockedAtMostOnce() *BlockedAtMostOnce {
	return &BlockedAtMostOnce{
		prio:     make(map[int64]sim.Priority, 64),
		episodes: make(map[int64]int, 64),
		counted:  make(map[int64]bool, 64),
	}
}

// Name implements Auditor.
func (b *BlockedAtMostOnce) Name() string { return "pcp-blocked-at-most-once" }

// Observe implements Auditor.
func (b *BlockedAtMostOnce) Observe(r *journal.Record) {
	switch r.Kind {
	case journal.KArrive:
		b.prio[r.Tx] = sim.Priority{Deadline: r.A, TxID: r.Tx}
		delete(b.episodes, r.Tx)
	case journal.KRestart, journal.KCommit, journal.KDeadlineMiss:
		delete(b.episodes, r.Tx)
	case journal.KLockBlock:
		if b.g.first(r) {
			b.counted[r.Tx] = false
		}
		if b.counted[r.Tx] || r.A < 0 {
			return
		}
		waiter, okW := b.prio[r.Tx]
		blamed, okB := b.prio[r.A]
		if !okW || !okB || !blamed.Lower(waiter) {
			return
		}
		b.counted[r.Tx] = true
		b.episodes[r.Tx]++
		if b.episodes[r.Tx] == 2 {
			b.v = append(b.v, Violation{
				Rule: b.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("second lower-priority blocking episode in one attempt (blamed tx %d on obj %d)", r.A, r.Obj),
			})
		}
	}
}

// Finish implements Auditor.
func (b *BlockedAtMostOnce) Finish() []Violation { return b.v }

// DeadlockFree checks that the waits-for graph implied by blocking and
// re-blame records never contains a cycle. Each parked waiter has one
// outgoing edge set (it waits on one lock), replaced on re-blame and
// cleared when the wait ends by grant, restart, commit, or deadline
// miss. Only direct conflicts (B flag 0) form edges: a ceiling-blocked
// transaction resumes when the system ceiling drops — which any
// contributing holder's release can cause — so ceiling blame is
// attribution, not a hard wait on the blamed transaction. A wounded
// transaction is unwinding, no longer waiting, so KWound clears the
// victim's edges (wound-based schemes transiently show victim cycles
// that the in-flight abort resolves).
type DeadlockFree struct {
	g     grouper
	edges map[int64][]int64
	v     []Violation

	// findCycle scratch, reused across the per-block walks so the hot
	// Observe path allocates nothing in steady state.
	seen map[int64]bool
	path []int64
}

// NewDeadlockFree returns the waits-for cycle auditor.
func NewDeadlockFree() *DeadlockFree {
	return &DeadlockFree{
		edges: make(map[int64][]int64, 64),
		seen:  make(map[int64]bool, 64),
	}
}

// Name implements Auditor.
func (d *DeadlockFree) Name() string { return "deadlock-free" }

// Observe implements Auditor.
func (d *DeadlockFree) Observe(r *journal.Record) {
	switch r.Kind {
	case journal.KLockBlock, journal.KBlame:
		if d.g.first(r) {
			d.dropEdges(r.Tx)
		}
		if r.A < 0 || r.B != 0 {
			return
		}
		es := d.edges[r.Tx]
		dup := false
		for _, e := range es {
			if e == r.A {
				dup = true
				break
			}
		}
		if !dup {
			d.edges[r.Tx] = append(es, r.A)
		}
		if cycle := d.findCycle(r.Tx); cycle != nil {
			d.v = append(d.v, Violation{
				Rule: d.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("waits-for cycle %v", cycle),
			})
		}
	case journal.KLockGrant, journal.KRestart, journal.KCommit,
		journal.KDeadlineMiss, journal.KUnregister, journal.KWound:
		d.dropEdges(r.Tx)
	}
}

// dropEdges clears tx's outgoing edge set, keeping the slice for reuse.
func (d *DeadlockFree) dropEdges(tx int64) {
	if es, ok := d.edges[tx]; ok {
		d.edges[tx] = es[:0]
	}
}

// findCycle walks the waits-for edges from start and returns the cycle
// through start, if any. The returned slice aliases the walk scratch;
// callers consume it (format it) before the next Observe.
func (d *DeadlockFree) findCycle(start int64) []int64 {
	d.seen[start] = true
	path := append(d.path[:0], start)
	cur := start
	found := false
	var result []int64
	for {
		next, ok := int64(0), false
		// Deterministic walk: smallest successor first.
		for _, n := range d.edges[cur] {
			if !ok || n < next {
				next, ok = n, true
			}
		}
		if !ok {
			break
		}
		if next == start {
			result = append(path, start)
			found = true
			break
		}
		if d.seen[next] {
			// Cycle not through start; it will be reported when one of
			// its own members gains an edge.
			break
		}
		d.seen[next] = true
		path = append(path, next)
		cur = next
	}
	for _, n := range path {
		delete(d.seen, n)
	}
	d.path = path[:0]
	if !found {
		return nil
	}
	return result
}

// Finish implements Auditor.
func (d *DeadlockFree) Finish() []Violation { return d.v }

// StrictTwoPhase checks that no transaction attempt acquires a lock
// after releasing one: every protocol here releases all locks at end of
// attempt (strict 2PL), so a grant after a release within the same
// attempt is a bug. Attempt boundaries are KRegister/KRestart records;
// commit and deadline miss also close the attempt.
type StrictTwoPhase struct {
	released map[int64]uint64 // tx -> seq of first release this attempt
	v        []Violation
}

// NewStrictTwoPhase returns the strict-2PL auditor.
func NewStrictTwoPhase() *StrictTwoPhase {
	return &StrictTwoPhase{released: make(map[int64]uint64, 64)}
}

// Name implements Auditor.
func (s *StrictTwoPhase) Name() string { return "strict-two-phase" }

// Observe implements Auditor.
func (s *StrictTwoPhase) Observe(r *journal.Record) {
	switch r.Kind {
	case journal.KLockRelease:
		if _, ok := s.released[r.Tx]; !ok {
			s.released[r.Tx] = r.Seq
		}
	case journal.KLockGrant:
		if rel, ok := s.released[r.Tx]; ok {
			s.v = append(s.v, Violation{
				Rule: s.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("lock on obj %d granted after release at seq %d in the same attempt", r.Obj, rel),
			})
		}
	case journal.KRegister, journal.KRestart, journal.KCommit, journal.KDeadlineMiss:
		delete(s.released, r.Tx)
	}
}

// Finish implements Auditor.
func (s *StrictTwoPhase) Finish() []Violation { return s.v }

// LockSafety checks grant compatibility: at no instant do two
// transactions hold conflicting locks on the same (site, object). This
// is the ground-level guarantee the lock managers provide and every
// other property builds on. A site crash (KSiteCrash, fault runs only)
// discards that site's volatile lock table without individual release
// records, so the auditor clears the site's holders there too.
type LockSafety struct {
	holders map[lockKey][]txMode // (site,obj) -> held modes, grant order
	v       []Violation
}

type lockKey struct {
	site int32
	obj  int32
}

// txMode is one holder of a lock: the transaction and its strongest
// granted mode. Holder sets are tiny (one writer or a few readers), so
// slices beat the per-object maps they replaced.
type txMode struct {
	tx   int64
	mode int64
}

// NewLockSafety returns the grant-compatibility auditor.
func NewLockSafety() *LockSafety {
	return &LockSafety{holders: make(map[lockKey][]txMode, 64)}
}

// Name implements Auditor.
func (l *LockSafety) Name() string { return "lock-safety" }

// Observe implements Auditor.
func (l *LockSafety) Observe(r *journal.Record) {
	key := lockKey{site: r.Site, obj: r.Obj}
	switch r.Kind {
	case journal.KLockGrant:
		hs := l.holders[key]
		var conflicts []int64
		for _, h := range hs {
			if h.tx != r.Tx && (h.mode == int64(core.Write) || r.A == int64(core.Write)) {
				conflicts = append(conflicts, h.tx)
			}
		}
		if len(conflicts) > 0 {
			sort.Slice(conflicts, func(i, j int) bool { return conflicts[i] < conflicts[j] })
			l.v = append(l.v, Violation{
				Rule: l.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("mode %d grant on site %d obj %d conflicts with holders %v", r.A, r.Site, r.Obj, conflicts),
			})
		}
		upgraded := false
		for i := range hs {
			if hs[i].tx == r.Tx {
				if hs[i].mode < r.A {
					hs[i].mode = r.A
				}
				upgraded = true
				break
			}
		}
		if !upgraded {
			l.holders[key] = append(hs, txMode{tx: r.Tx, mode: r.A})
		}
	case journal.KLockRelease:
		hs := l.holders[key]
		for i := range hs {
			if hs[i].tx == r.Tx {
				l.holders[key] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
	case journal.KSiteCrash:
		for k := range l.holders {
			if k.site == r.Site {
				delete(l.holders, k)
			}
		}
	}
}

// Finish implements Auditor.
func (l *LockSafety) Finish() []Violation { return l.v }

// TwoPCConsistent checks two-phase commit's agreement property: every
// decision for a transaction is the same, a commit decision requires a
// recorded yes-vote from every prepared participant, and no commit
// decision coexists with an abort vote.
type TwoPCConsistent struct {
	prepares  map[int64]map[int64]bool // tx -> participant set (from A)
	votes     map[int64]map[int32]int64
	decisions map[int64][]journal.Record
	order     []int64
}

// NewTwoPCConsistent returns the 2PC agreement auditor.
func NewTwoPCConsistent() *TwoPCConsistent {
	return &TwoPCConsistent{
		prepares:  make(map[int64]map[int64]bool),
		votes:     make(map[int64]map[int32]int64),
		decisions: make(map[int64][]journal.Record),
	}
}

// Name implements Auditor.
func (t *TwoPCConsistent) Name() string { return "twopc-consistent" }

// Observe implements Auditor.
func (t *TwoPCConsistent) Observe(r *journal.Record) {
	switch r.Kind {
	case journal.KTwoPCPrepare:
		m, ok := t.prepares[r.Tx]
		if !ok {
			m = make(map[int64]bool)
			t.prepares[r.Tx] = m
			t.order = append(t.order, r.Tx)
		}
		m[r.A] = true
	case journal.KTwoPCVote:
		m, ok := t.votes[r.Tx]
		if !ok {
			m = make(map[int32]int64)
			t.votes[r.Tx] = m
		}
		m[r.Site] = r.A
	case journal.KTwoPCDecision:
		t.decisions[r.Tx] = append(t.decisions[r.Tx], *r)
	}
}

// Finish implements Auditor.
func (t *TwoPCConsistent) Finish() []Violation {
	var v []Violation
	for _, tx := range t.order {
		decs := t.decisions[tx]
		if len(decs) == 0 {
			continue // coordinator never decided (run ended mid-protocol)
		}
		first := decs[0]
		for _, d := range decs[1:] {
			if d.A != first.A {
				v = append(v, Violation{
					Rule: t.Name(), Seq: d.Seq, At: d.At, Tx: tx,
					Detail: fmt.Sprintf("decision %d at site %d disagrees with decision %d at seq %d", d.A, d.Site, first.A, first.Seq),
				})
			}
		}
		if first.A != 1 {
			continue
		}
		// Report abort-vote conflicts in site order, not map order, so
		// two audits of the same journal emit identical reports.
		abortSites := make([]int32, 0, len(t.votes[tx]))
		for site, vote := range t.votes[tx] {
			if vote == 0 {
				abortSites = append(abortSites, site)
			}
		}
		sort.Slice(abortSites, func(i, j int) bool { return abortSites[i] < abortSites[j] })
		for _, site := range abortSites {
			v = append(v, Violation{
				Rule: t.Name(), Seq: first.Seq, At: first.At, Tx: tx,
				Detail: fmt.Sprintf("committed despite abort vote from site %d", site),
			})
		}
		parts := make([]int64, 0, len(t.prepares[tx]))
		for p := range t.prepares[tx] {
			parts = append(parts, p)
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		for _, p := range parts {
			if vote, ok := t.votes[tx][int32(p)]; !ok || vote != 1 {
				v = append(v, Violation{
					Rule: t.Name(), Seq: first.Seq, At: first.At, Tx: tx,
					Detail: fmt.Sprintf("committed without a yes-vote from prepared participant %d", p),
				})
			}
		}
	}
	return v
}

// Serializable feeds committed attempts' operations into the conflict
// serializability checker of internal/check. With perSite set (the
// local-ceiling replication approach) every site's history is judged
// independently — each replica set is its own database; otherwise all
// operations form one history.
type Serializable struct {
	perSite bool
	pending map[int64][]pendingOp
	hist    map[int32]*check.History
	lastSeq uint64
	lastAt  int64

	// free recycles pending-op buffers of finished attempts; without it
	// every restarted or committed transaction leaks its slice to the
	// garbage collector.
	free [][]pendingOp
}

type pendingOp struct {
	site int32
	obj  core.ObjectID
	mode core.Mode
	at   sim.Time
}

// historyPool recycles committed histories across audit runs: the
// explorer audits hundreds of journals per exploration, and each
// history's op buffer and checker scratch would otherwise be regrown
// from nothing. Finish returns each history after its verdict.
var historyPool = sync.Pool{New: func() any { return check.NewHistory() }}

// NewSerializable returns the committed-history serializability
// auditor.
func NewSerializable(perSite bool) *Serializable {
	return &Serializable{
		perSite: perSite,
		pending: make(map[int64][]pendingOp, 64),
		hist:    make(map[int32]*check.History, 4),
	}
}

// Name implements Auditor.
func (s *Serializable) Name() string { return "serializable" }

// Observe implements Auditor.
func (s *Serializable) Observe(r *journal.Record) {
	s.lastSeq, s.lastAt = r.Seq, r.At
	switch r.Kind {
	case journal.KOp:
		ops, ok := s.pending[r.Tx]
		if !ok && len(s.free) > 0 {
			ops = s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
		}
		s.pending[r.Tx] = append(ops, pendingOp{
			site: r.Site,
			obj:  core.ObjectID(r.Obj),
			mode: core.Mode(r.A),
			at:   sim.Time(r.At),
		})
	case journal.KRestart, journal.KDeadlineMiss:
		s.dropPending(r.Tx)
	case journal.KCommit:
		for _, op := range s.pending[r.Tx] {
			site := int32(0)
			if s.perSite {
				site = op.site
			}
			h, ok := s.hist[site]
			if !ok {
				h = historyPool.Get().(*check.History)
				s.hist[site] = h
			}
			h.Record(r.Tx, op.obj, op.mode, op.at)
			h.Commit(r.Tx)
		}
		s.dropPending(r.Tx)
	}
}

// dropPending retires tx's buffered operations, recycling the buffer.
func (s *Serializable) dropPending(tx int64) {
	if ops, ok := s.pending[tx]; ok {
		if cap(ops) > 0 {
			s.free = append(s.free, ops[:0])
		}
		delete(s.pending, tx)
	}
}

// Finish implements Auditor.
func (s *Serializable) Finish() []Violation {
	sites := make([]int32, 0, len(s.hist))
	for site := range s.hist {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	var v []Violation
	for _, site := range sites {
		h := s.hist[site]
		serializable := h.ConflictSerializable()
		h.Reset()
		historyPool.Put(h)
		delete(s.hist, site)
		if !serializable {
			v = append(v, Violation{
				Rule: s.Name(), Seq: s.lastSeq, At: s.lastAt,
				Detail: fmt.Sprintf("committed history at site %d is not conflict serializable", site),
			})
		}
	}
	return v
}

// CommitSet extracts the set of committed transaction ids from a
// journal.
func CommitSet(j *journal.Journal) map[int64]bool {
	out := make(map[int64]bool)
	for _, r := range j.Records() {
		if r.Kind == journal.KCommit {
			out[r.Tx] = true
		}
	}
	return out
}

// CompareCommitSets reports the transactions committed in exactly one
// of the two journals, sorted. This is a diagnostic, not an invariant:
// the global and local ceiling architectures legitimately commit
// different subsets of the same workload (they have different blocking
// and message costs), and the comparison quantifies how far apart the
// outcomes are.
func CompareCommitSets(a, b *journal.Journal) (onlyA, onlyB []int64) {
	sa, sb := CommitSet(a), CommitSet(b)
	for tx := range sa {
		if !sb[tx] {
			onlyA = append(onlyA, tx)
		}
	}
	for tx := range sb {
		if !sa[tx] {
			onlyB = append(onlyB, tx)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return onlyA, onlyB
}
