package audit

import (
	"fmt"

	"rtlock/internal/journal"
)

// QuorumIntersection checks the quorum replication invariant R+W > K
// buys: every read quorum observes the latest quorum-committed version.
// A KQuorumWrite record attests that a version reached a W-sized write
// quorum; a later KQuorumRead for the same object must report a version
// at least that new. The auditor also holds the rounds to their
// configured sizes — learned from the run's KPlacement banner — and the
// per-object commit sequence to monotonicity (writes are serialized by
// the primary's write lock).
type QuorumIntersection struct {
	readQ, writeQ int64
	committed     map[int32]int64 // obj -> latest quorum-committed seq
	v             []Violation
}

// NewQuorumIntersection returns the quorum-intersection auditor.
func NewQuorumIntersection() *QuorumIntersection {
	return &QuorumIntersection{committed: make(map[int32]int64, 64)}
}

// Name implements Auditor.
func (q *QuorumIntersection) Name() string { return "quorum-intersection" }

// Observe implements Auditor.
func (q *QuorumIntersection) Observe(r *journal.Record) {
	switch r.Kind {
	case journal.KPlacement:
		q.readQ = r.B & 0xffffffff
		q.writeQ = r.B >> 32
	case journal.KQuorumWrite:
		if q.writeQ > 0 && r.B < q.writeQ {
			q.v = append(q.v, Violation{
				Rule: q.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("write round for obj %d reported %d acknowledgements, want >= W=%d", r.Obj, r.B, q.writeQ),
			})
		}
		if prev, ok := q.committed[r.Obj]; ok && r.A <= prev {
			q.v = append(q.v, Violation{
				Rule: q.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("quorum commit of obj %d at seq %d not after previous commit %d", r.Obj, r.A, prev),
			})
		}
		if r.A > q.committed[r.Obj] {
			q.committed[r.Obj] = r.A
		}
	case journal.KQuorumRead:
		if q.readQ > 0 && r.B < q.readQ {
			q.v = append(q.v, Violation{
				Rule: q.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("read round for obj %d reported %d replies, want >= R=%d", r.Obj, r.B, q.readQ),
			})
		}
		if want := q.committed[r.Obj]; r.A < want {
			q.v = append(q.v, Violation{
				Rule: q.Name(), Seq: r.Seq, At: r.At, Tx: r.Tx,
				Detail: fmt.Sprintf("read of obj %d observed seq %d, older than latest quorum-committed %d", r.Obj, r.A, want),
			})
		}
	}
}

// Finish implements Auditor.
func (q *QuorumIntersection) Finish() []Violation { return q.v }
