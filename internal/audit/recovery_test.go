package audit

import (
	"testing"

	"rtlock/internal/journal"
)

// addN appends with an explicit note, which the recovery kinds use to
// distinguish coordinator decisions, duplicate votes, and retry phases.
func (b *jb) addN(kind journal.Kind, site int32, tx int64, obj int32, a, bb int64, note string) *jb {
	b.at++
	b.j.Append(b.at, kind, site, tx, obj, a, bb, note)
	return b
}

func TestRecoveryDurable(t *testing.T) {
	// A yes-vote survives the crash: redo restores it. Clean.
	b := newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 1, 0)
	wantViolations(t, Run(b.j, NewRecoveryDurable()), "recovery-durable", 0)

	// The forced vote was lost: redo restores nothing. Violation.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 0, 0)
	wantViolations(t, Run(b.j, NewRecoveryDurable()), "recovery-durable", 1)

	// Settled before the crash: nothing is in doubt, redo of 0 is fine.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 1, 5, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 0, 0)
	wantViolations(t, Run(b.j, NewRecoveryDurable()), "recovery-durable", 0)

	// A duplicate re-vote (B=1) adds nothing to the in-doubt set.
	b = newJB()
	b.addN(journal.KTwoPCVote, 1, 5, 0, 1, 1, "dup")
	b.add(journal.KWALRedo, 1, 0, 0, 0, 0)
	wantViolations(t, Run(b.j, NewRecoveryDurable()), "recovery-durable", 0)

	// The coordinator's own decision record does not settle a
	// participant: the vote is still in doubt, a redo of 0 is a loss.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.addN(journal.KTwoPCDecision, 1, 5, 0, 1, 0, "coord")
	b.add(journal.KWALRedo, 1, 0, 0, 0, 0)
	wantViolations(t, Run(b.j, NewRecoveryDurable()), "recovery-durable", 1)

	// Only the redone site's votes count: site 2's in-doubt vote does
	// not inflate site 1's expectation.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KTwoPCVote, 2, 6, 0, 1, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 1, 0)
	wantViolations(t, Run(b.j, NewRecoveryDurable()), "recovery-durable", 0)
}

func TestRecoveryReentry(t *testing.T) {
	// Redo restores more votes than are in doubt: resurrection.
	b := newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 2, 0)
	wantViolations(t, Run(b.j, NewRecoveryReentry()), "recovery-reentry", 1)

	// A settled vote reappearing in the redo count is a resurrection.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.addN(journal.KTwoPCDecision, 1, 5, 0, 1, 0, "resolved")
	b.add(journal.KWALRedo, 1, 0, 0, 1, 0)
	wantViolations(t, Run(b.j, NewRecoveryReentry()), "recovery-reentry", 1)

	// Repeated crash/redo of the same unresolved vote is idempotent:
	// both redos restore exactly one vote. Clean for both rules.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 1, 0)
	v := Run(b.j, NewRecoveryDurable(), NewRecoveryReentry())
	wantViolations(t, v, "recovery-durable", 0)
	wantViolations(t, v, "recovery-reentry", 0)

	// Resolution between two crashes shrinks the second redo to zero.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 1, 0)
	b.addN(journal.KTwoPCDecision, 1, 5, 0, 1, 0, "resolved")
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	b.add(journal.KSiteRecover, 1, 0, 0, 0, 0)
	b.add(journal.KWALRedo, 1, 0, 0, 0, 0)
	v = Run(b.j, NewRecoveryDurable(), NewRecoveryReentry())
	wantViolations(t, v, "recovery-durable", 0)
	wantViolations(t, v, "recovery-reentry", 0)
}

func TestRecoveryLiveness(t *testing.T) {
	// In doubt at run end with the site up and no exhaustion record.
	b := newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 1)

	// Journaled retry exhaustion legitimizes the unresolved doubt.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.addN(journal.KRetryExhausted, 1, 5, 0, 4, 0, "resolve")
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 0)

	// A site that stays down is exempt: nothing can resolve there.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KSiteCrash, 1, 0, 0, -1, 0)
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 0)

	// Settled participants are not in doubt.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 1, 5, 0, 1, 0)
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 0)

	// Coordinator-phase exhaustion does not excuse a participant's
	// unresolved doubt.
	b = newJB()
	b.add(journal.KTwoPCVote, 1, 5, 0, 1, 0)
	b.addN(journal.KRetryExhausted, 1, 5, 0, 4, 0, "prepare")
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 1)
}

func TestRecoveryRetryMonotonic(t *testing.T) {
	// Consecutive attempts and fresh restarts are fine.
	b := newJB()
	b.addN(journal.KRetry, 1, 5, 0, 0, 0, "resolve")
	b.addN(journal.KRetry, 1, 5, 0, 1, 0, "resolve")
	b.addN(journal.KRetry, 1, 5, 0, 2, 0, "resolve")
	b.addN(journal.KRetry, 1, 5, 0, 0, 0, "resolve")
	b.addN(journal.KRetry, 1, 5, 0, 1, 0, "resolve")
	b.addN(journal.KRetryExhausted, 1, 5, 0, 4, 0, "resolve")
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 0)

	// Skipping an attempt number is a violation.
	b = newJB()
	b.addN(journal.KRetry, 1, 5, 0, 0, 0, "resolve")
	b.addN(journal.KRetry, 1, 5, 0, 2, 0, "resolve")
	b.addN(journal.KRetryExhausted, 1, 5, 0, 4, 0, "resolve")
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 1)

	// Attempts are tracked per (site, tx, phase): interleaved loops do
	// not trip each other.
	b = newJB()
	b.addN(journal.KRetry, 1, 5, 0, 0, 0, "resolve")
	b.addN(journal.KRetry, 2, 5, 0, 0, 0, "resolve")
	b.addN(journal.KRetry, 1, 5, 0, 1, 0, "resolve")
	b.addN(journal.KRetry, 2, 5, 0, 1, 0, "resolve")
	b.addN(journal.KRetryExhausted, 1, 5, 0, 4, 0, "resolve")
	b.addN(journal.KRetryExhausted, 2, 5, 0, 4, 0, "resolve")
	wantViolations(t, Run(b.j, NewRecoveryLiveness()), "recovery-liveness", 0)
}
