package audit

import (
	"strings"
	"testing"

	"rtlock/internal/journal"
)

// jb is a tiny journal builder for hand-crafted auditor inputs.
type jb struct {
	j  *journal.Journal
	at int64
}

func newJB() *jb { return &jb{j: journal.New(1, "test")} }

func (b *jb) add(kind journal.Kind, site int32, tx int64, obj int32, a, bb int64) *jb {
	b.at++
	b.j.Append(b.at, kind, site, tx, obj, a, bb, "")
	return b
}

// addAt appends at the same virtual time as the previous record, for
// encoding multi-record groups.
func (b *jb) addAt(kind journal.Kind, site int32, tx int64, obj int32, a, bb int64) *jb {
	b.j.Append(b.at, kind, site, tx, obj, a, bb, "")
	return b
}

func wantViolations(t *testing.T, v []Violation, rule string, n int) {
	t.Helper()
	got := 0
	for _, x := range v {
		if x.Rule == rule {
			got++
		}
	}
	if got != n {
		t.Fatalf("rule %s: got %d violations, want %d: %v", rule, got, n, v)
	}
}

func TestBlockedAtMostOnce(t *testing.T) {
	// tx 1 (tight deadline, high priority) is blocked twice in one
	// attempt by lower-priority tx 2 (loose deadline): a violation.
	b := newJB()
	b.add(journal.KArrive, 0, 1, 0, 100, 0)
	b.add(journal.KArrive, 0, 2, 0, 900, 0)
	b.add(journal.KLockBlock, 0, 1, 10, 2, 1)
	b.add(journal.KLockGrant, 0, 1, 10, 1, 0)
	b.add(journal.KLockBlock, 0, 1, 11, 2, 1)
	v := Run(b.j, NewBlockedAtMostOnce())
	wantViolations(t, v, "pcp-blocked-at-most-once", 1)

	// A restart between the two episodes starts a new attempt: clean.
	b = newJB()
	b.add(journal.KArrive, 0, 1, 0, 100, 0)
	b.add(journal.KArrive, 0, 2, 0, 900, 0)
	b.add(journal.KLockBlock, 0, 1, 10, 2, 1)
	b.add(journal.KRestart, 0, 1, 0, 1, 0)
	b.add(journal.KLockBlock, 0, 1, 11, 2, 1)
	v = Run(b.j, NewBlockedAtMostOnce())
	wantViolations(t, v, "pcp-blocked-at-most-once", 0)

	// Blocking behind HIGHER-priority work does not count: tx 2 blocked
	// twice by tx 1 is fine.
	b = newJB()
	b.add(journal.KArrive, 0, 1, 0, 100, 0)
	b.add(journal.KArrive, 0, 2, 0, 900, 0)
	b.add(journal.KLockBlock, 0, 2, 10, 1, 0)
	b.add(journal.KLockGrant, 0, 2, 10, 1, 0)
	b.add(journal.KLockBlock, 0, 2, 11, 1, 0)
	v = Run(b.j, NewBlockedAtMostOnce())
	wantViolations(t, v, "pcp-blocked-at-most-once", 0)

	// One episode blaming several lower-priority holders via a record
	// group counts once.
	b = newJB()
	b.add(journal.KArrive, 0, 1, 0, 100, 0)
	b.add(journal.KArrive, 0, 2, 0, 900, 0)
	b.add(journal.KArrive, 0, 3, 0, 950, 0)
	b.add(journal.KLockBlock, 0, 1, 10, 2, 0)
	b.addAt(journal.KLockBlock, 0, 1, 10, 3, 0)
	v = Run(b.j, NewBlockedAtMostOnce())
	wantViolations(t, v, "pcp-blocked-at-most-once", 0)
}

func TestDeadlockFree(t *testing.T) {
	// 1 waits for 2, 2 waits for 1: cycle.
	b := newJB()
	b.add(journal.KLockBlock, 0, 1, 10, 2, 0)
	b.add(journal.KLockBlock, 0, 2, 11, 1, 0)
	v := Run(b.j, NewDeadlockFree())
	wantViolations(t, v, "deadlock-free", 1)
	if !strings.Contains(v[0].Detail, "cycle") {
		t.Fatalf("detail %q should mention the cycle", v[0].Detail)
	}

	// The same waits with a grant between them never form a cycle.
	b = newJB()
	b.add(journal.KLockBlock, 0, 1, 10, 2, 0)
	b.add(journal.KLockGrant, 0, 1, 10, 1, 0)
	b.add(journal.KLockBlock, 0, 2, 11, 1, 0)
	v = Run(b.j, NewDeadlockFree())
	wantViolations(t, v, "deadlock-free", 0)

	// Re-blame replaces the edge set: 1 first blames 2, then is
	// re-blamed to 3 only; a later wait of 2 on 1 is no cycle.
	b = newJB()
	b.add(journal.KLockBlock, 0, 1, 10, 2, 0)
	b.add(journal.KBlame, 0, 1, 10, 3, 0)
	b.add(journal.KLockBlock, 0, 2, 11, 1, 0)
	v = Run(b.j, NewDeadlockFree())
	wantViolations(t, v, "deadlock-free", 0)

	// Three-party cycle through a blame group.
	b = newJB()
	b.add(journal.KLockBlock, 0, 1, 10, 2, 0)
	b.add(journal.KLockBlock, 0, 2, 11, 3, 0)
	b.add(journal.KLockBlock, 0, 3, 12, 1, 0)
	v = Run(b.j, NewDeadlockFree())
	wantViolations(t, v, "deadlock-free", 1)

	// Ceiling blocks (B flag 1) are attribution, not waits: a mutual
	// ceiling blame is not a deadlock.
	b = newJB()
	b.add(journal.KLockBlock, 0, 1, 10, 2, 1)
	b.add(journal.KLockBlock, 0, 2, 11, 1, 1)
	v = Run(b.j, NewDeadlockFree())
	wantViolations(t, v, "deadlock-free", 0)

	// A wounded victim is unwinding, not waiting: 1 waits for 2, 2 is
	// wounded by 1, then 2's stale wait edge toward 1 must be gone.
	b = newJB()
	b.add(journal.KLockBlock, 0, 2, 11, 1, 0)
	b.add(journal.KWound, 0, 2, 0, 1, 0)
	b.add(journal.KLockBlock, 0, 1, 10, 2, 0)
	v = Run(b.j, NewDeadlockFree())
	wantViolations(t, v, "deadlock-free", 0)
}

func TestStrictTwoPhase(t *testing.T) {
	// Grant after release in one attempt: violation.
	b := newJB()
	b.add(journal.KRegister, 0, 1, 0, 0, 0)
	b.add(journal.KLockGrant, 0, 1, 10, 1, 0)
	b.add(journal.KLockRelease, 0, 1, 10, 0, 0)
	b.add(journal.KLockGrant, 0, 1, 11, 1, 0)
	v := Run(b.j, NewStrictTwoPhase())
	wantViolations(t, v, "strict-two-phase", 1)

	// A new registration (next attempt) resets the phase.
	b = newJB()
	b.add(journal.KRegister, 0, 1, 0, 0, 0)
	b.add(journal.KLockGrant, 0, 1, 10, 1, 0)
	b.add(journal.KLockRelease, 0, 1, 10, 0, 0)
	b.add(journal.KRestart, 0, 1, 0, 1, 0)
	b.add(journal.KRegister, 0, 1, 0, 0, 0)
	b.add(journal.KLockGrant, 0, 1, 11, 1, 0)
	v = Run(b.j, NewStrictTwoPhase())
	wantViolations(t, v, "strict-two-phase", 0)
}

func TestLockSafety(t *testing.T) {
	// Two write grants on one object: violation.
	b := newJB()
	b.add(journal.KLockGrant, 0, 1, 10, 2, 0)
	b.add(journal.KLockGrant, 0, 2, 10, 2, 0)
	v := Run(b.j, NewLockSafety())
	wantViolations(t, v, "lock-safety", 1)

	// Shared readers are fine; a write after both released is fine.
	b = newJB()
	b.add(journal.KLockGrant, 0, 1, 10, 1, 0)
	b.add(journal.KLockGrant, 0, 2, 10, 1, 0)
	b.add(journal.KLockRelease, 0, 1, 10, 0, 0)
	b.add(journal.KLockRelease, 0, 2, 10, 0, 0)
	b.add(journal.KLockGrant, 0, 3, 10, 2, 0)
	v = Run(b.j, NewLockSafety())
	wantViolations(t, v, "lock-safety", 0)

	// Same object id on different sites never conflicts (replicas).
	b = newJB()
	b.add(journal.KLockGrant, 0, 1, 10, 2, 0)
	b.add(journal.KLockGrant, 1, 2, 10, 2, 0)
	v = Run(b.j, NewLockSafety())
	wantViolations(t, v, "lock-safety", 0)

	// Read->write upgrade by the same holder is not a conflict with
	// itself.
	b = newJB()
	b.add(journal.KLockGrant, 0, 1, 10, 1, 0)
	b.add(journal.KLockGrant, 0, 1, 10, 2, 0)
	v = Run(b.j, NewLockSafety())
	wantViolations(t, v, "lock-safety", 0)
}

func TestTwoPCConsistent(t *testing.T) {
	// Clean protocol round: prepare to sites 1,2; both vote yes; commit
	// decisions everywhere.
	b := newJB()
	b.add(journal.KTwoPCPrepare, 0, 7, 0, 1, 0)
	b.add(journal.KTwoPCPrepare, 0, 7, 0, 2, 0)
	b.add(journal.KTwoPCVote, 1, 7, 0, 1, 0)
	b.add(journal.KTwoPCVote, 2, 7, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 0, 7, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 1, 7, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 2, 7, 0, 1, 0)
	v := Run(b.j, NewTwoPCConsistent())
	wantViolations(t, v, "twopc-consistent", 0)

	// Commit despite an abort vote: two violations (abort vote present,
	// and no yes-vote from that participant).
	b = newJB()
	b.add(journal.KTwoPCPrepare, 0, 7, 0, 1, 0)
	b.add(journal.KTwoPCVote, 1, 7, 0, 0, 0)
	b.add(journal.KTwoPCDecision, 0, 7, 0, 1, 0)
	v = Run(b.j, NewTwoPCConsistent())
	wantViolations(t, v, "twopc-consistent", 2)

	// Disagreeing decisions.
	b = newJB()
	b.add(journal.KTwoPCPrepare, 0, 7, 0, 1, 0)
	b.add(journal.KTwoPCVote, 1, 7, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 0, 7, 0, 1, 0)
	b.add(journal.KTwoPCDecision, 1, 7, 0, 0, 0)
	v = Run(b.j, NewTwoPCConsistent())
	wantViolations(t, v, "twopc-consistent", 1)

	// Abort round with an abort vote is fine.
	b = newJB()
	b.add(journal.KTwoPCPrepare, 0, 7, 0, 1, 0)
	b.add(journal.KTwoPCVote, 1, 7, 0, 0, 0)
	b.add(journal.KTwoPCDecision, 0, 7, 0, 0, 0)
	v = Run(b.j, NewTwoPCConsistent())
	wantViolations(t, v, "twopc-consistent", 0)
}

func TestSerializable(t *testing.T) {
	// Classic non-serializable interleaving: t1 reads x then writes y,
	// t2 reads y then writes x, both commit.
	b := newJB()
	b.add(journal.KOp, 0, 1, 1, 1, 0) // t1 R x
	b.add(journal.KOp, 0, 2, 2, 1, 0) // t2 R y
	b.add(journal.KOp, 0, 1, 2, 2, 0) // t1 W y
	b.add(journal.KOp, 0, 2, 1, 2, 0) // t2 W x
	b.add(journal.KCommit, 0, 1, 0, 0, 0)
	b.add(journal.KCommit, 0, 2, 0, 0, 0)
	v := Run(b.j, NewSerializable(false))
	wantViolations(t, v, "serializable", 1)

	// The same ops with t2 restarted (not committed) are serializable.
	b = newJB()
	b.add(journal.KOp, 0, 1, 1, 1, 0)
	b.add(journal.KOp, 0, 2, 2, 1, 0)
	b.add(journal.KOp, 0, 1, 2, 2, 0)
	b.add(journal.KOp, 0, 2, 1, 2, 0)
	b.add(journal.KCommit, 0, 1, 0, 0, 0)
	b.add(journal.KRestart, 0, 2, 0, 1, 0)
	v = Run(b.j, NewSerializable(false))
	wantViolations(t, v, "serializable", 0)

	// Per-site judging separates the conflicting pairs onto different
	// sites, so each site's history is trivially serializable.
	b = newJB()
	b.add(journal.KOp, 0, 1, 1, 1, 0)
	b.add(journal.KOp, 1, 2, 2, 1, 0)
	b.add(journal.KOp, 0, 1, 2, 2, 0)
	b.add(journal.KOp, 1, 2, 1, 2, 0)
	b.add(journal.KCommit, 0, 1, 0, 0, 0)
	b.add(journal.KCommit, 1, 2, 0, 0, 0)
	v = Run(b.j, NewSerializable(true))
	wantViolations(t, v, "serializable", 0)

	// A restart clears the attempt's buffered ops: the committed second
	// attempt contains only its own ops.
	b = newJB()
	b.add(journal.KOp, 0, 1, 1, 2, 0) // attempt 1: W x
	b.add(journal.KRestart, 0, 1, 0, 1, 0)
	b.add(journal.KOp, 0, 2, 1, 2, 0) // t2 W x
	b.add(journal.KOp, 0, 2, 2, 2, 0) // t2 W y
	b.add(journal.KCommit, 0, 2, 0, 0, 0)
	b.add(journal.KOp, 0, 1, 2, 2, 0) // attempt 2: W y only
	b.add(journal.KOp, 0, 1, 1, 2, 0) // then W x
	b.add(journal.KCommit, 0, 1, 0, 0, 0)
	v = Run(b.j, NewSerializable(false))
	wantViolations(t, v, "serializable", 0)
}

func TestCompareCommitSets(t *testing.T) {
	a := newJB()
	a.add(journal.KCommit, 0, 1, 0, 0, 0)
	a.add(journal.KCommit, 0, 2, 0, 0, 0)
	c := newJB()
	c.add(journal.KCommit, 0, 2, 0, 0, 0)
	c.add(journal.KCommit, 0, 3, 0, 0, 0)
	onlyA, onlyB := CompareCommitSets(a.j, c.j)
	if len(onlyA) != 1 || onlyA[0] != 1 {
		t.Fatalf("onlyA = %v, want [1]", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0] != 3 {
		t.Fatalf("onlyB = %v, want [3]", onlyB)
	}
}

func TestForManagerSelection(t *testing.T) {
	names := func(auds []Auditor) map[string]bool {
		m := make(map[string]bool)
		for _, a := range auds {
			m[a.Name()] = true
		}
		return m
	}
	to := names(ForManager("TO"))
	if len(to) != 1 || !to["serializable"] {
		t.Fatalf("TO auditors = %v, want serializability only", to)
	}
	pcp := names(ForManager("PCP"))
	for _, want := range []string{"serializable", "strict-two-phase", "lock-safety", "deadlock-free", "pcp-blocked-at-most-once"} {
		if !pcp[want] {
			t.Fatalf("PCP auditors missing %s: %v", want, pcp)
		}
	}
	plain := names(ForManager("2PL"))
	if plain["deadlock-free"] {
		t.Fatal("plain 2PL can deadlock by design; the auditor must not apply")
	}
	global := names(ForApproach("global"))
	if !global["twopc-consistent"] || global["pcp-blocked-at-most-once"] {
		t.Fatalf("global auditors = %v", global)
	}
}
