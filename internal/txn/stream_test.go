package txn

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

func streamLoadParams(count int) workload.Params {
	cat, err := db.NewCatalog(1, 200)
	if err != nil {
		panic(err)
	}
	return workload.Params{
		Seed:             7,
		Count:            count,
		MeanInterarrival: 4 * sim.Millisecond,
		MeanSize:         3,
		ReadOnlyFrac:     0.25,
		SlackMin:         2,
		SlackMax:         6,
		PerObjCost:       sim.Millisecond,
		Catalog:          cat,
	}
}

func runWithLoader(t *testing.T, load func(s *System, p workload.Params)) *journal.Journal {
	t.Helper()
	s, err := NewSystem(Config{
		CPUPerObj:     sim.Millisecond,
		CPUDiscipline: sim.PreemptivePriority,
		NewManager:    func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
	})
	if err != nil {
		t.Fatal(err)
	}
	j := journal.New(7, "stream-vs-load")
	s.K.SetJournal(j, 0)
	load(s, streamLoadParams(400))
	s.Run()
	return j
}

// TestLoadStreamJournalsIdentically pins that streaming arrivals one
// event at a time produces the exact event interleaving — and thus the
// exact journal — of preloading the whole load, so callers can switch
// loaders without invalidating golden journals.
func TestLoadStreamJournalsIdentically(t *testing.T) {
	preloaded := runWithLoader(t, func(s *System, p workload.Params) {
		txs, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		s.Load(txs)
	})
	streamed := runWithLoader(t, func(s *System, p workload.Params) {
		src, err := workload.NewStream(p)
		if err != nil {
			t.Fatal(err)
		}
		s.LoadStream(src)
	})
	if preloaded.Len() == 0 {
		t.Fatal("empty journal")
	}
	if !journal.Equal(preloaded, streamed) {
		t.Fatalf("streamed journal (%d records) differs from preloaded (%d records)",
			streamed.Len(), preloaded.Len())
	}
}
