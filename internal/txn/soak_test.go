package txn

import (
	"testing"
	"testing/quick"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

// protocolsUnderTest builds every single-site protocol.
func protocolsUnderTest() map[string]func(*sim.Kernel) core.Manager {
	return map[string]func(*sim.Kernel) core.Manager{
		"PCP":    func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
		"PCP-X":  func(k *sim.Kernel) core.Manager { return core.NewCeilingExclusive(k) },
		"2PL":    func(k *sim.Kernel) core.Manager { return core.NewTwoPL(k) },
		"2PL-P":  func(k *sim.Kernel) core.Manager { return core.NewTwoPLPriority(k) },
		"2PL-PI": func(k *sim.Kernel) core.Manager { return core.NewTwoPLInherit(k) },
		"2PL-HP": func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) },
		"2PL-CR": func(k *sim.Kernel) core.Manager { return core.NewTwoPLCond(k) },
		"2PL-DD": func(k *sim.Kernel) core.Manager { return core.NewTwoPLDetect(k) },
		"TO":     func(k *sim.Kernel) core.Manager { return core.NewTimestamp(k) },
	}
}

// soakLoad generates a heavy mixed workload.
func soakLoad(t *testing.T, seed int64, count int) []*workload.Txn {
	t.Helper()
	cat, err := db.NewCatalog(1, 60) // small database: high contention
	if err != nil {
		t.Fatal(err)
	}
	load, err := workload.Generate(workload.Params{
		Seed:             seed,
		Catalog:          cat,
		Count:            count,
		MeanInterarrival: 40 * sim.Millisecond,
		MeanSize:         8,
		ReadOnlyFrac:     0.4,
		PerObjCost:       10 * sim.Millisecond,
		SlackMin:         2,
		SlackMax:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return load
}

// TestSoakAllProtocols runs a few thousand heavily contended
// transactions through every protocol and checks the global invariants:
// every transaction is processed exactly once, the committed history is
// conflict serializable, and no simulated process leaks.
func TestSoakAllProtocols(t *testing.T) {
	count := 3000
	if testing.Short() {
		count = 300
	}
	for name, mgr := range protocolsUnderTest() {
		name, mgr := name, mgr
		t.Run(name, func(t *testing.T) {
			s, err := NewSystem(Config{
				CPUPerObj:     10 * sim.Millisecond,
				IOPerObj:      10 * sim.Millisecond,
				NewManager:    mgr,
				RecordHistory: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Load(soakLoad(t, 42, count))
			sum := s.Run()
			if sum.Processed != count {
				t.Fatalf("processed %d/%d", sum.Processed, count)
			}
			if !s.History.ConflictSerializable() {
				t.Fatal("committed history not conflict serializable")
			}
			if s.K.Live() != 0 {
				t.Fatalf("%d simulated processes leaked", s.K.Live())
			}
		})
	}
}

// TestPropEveryProtocolSerializable is the strongest oracle: random
// workloads through every protocol must always produce conflict-
// serializable committed histories and process every transaction.
func TestPropEveryProtocolSerializable(t *testing.T) {
	for name, mgr := range protocolsUnderTest() {
		name, mgr := name, mgr
		t.Run(name, func(t *testing.T) {
			prop := func(seed int64) bool {
				s, err := NewSystem(Config{
					CPUPerObj:     10 * sim.Millisecond,
					NewManager:    mgr,
					RecordHistory: true,
				})
				if err != nil {
					return false
				}
				s.Load(soakLoad(t, seed, 60))
				sum := s.Run()
				return sum.Processed == 60 && s.History.ConflictSerializable() && s.K.Live() == 0
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
