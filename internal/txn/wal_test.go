package txn

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

func newWALSystem(t *testing.T, checkpointEvery sim.Duration) *System {
	t.Helper()
	s, err := NewSystem(Config{
		CPUPerObj:       10 * sim.Millisecond,
		NewManager:      func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
		WAL:             true,
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWALRecoverEqualsStore(t *testing.T) {
	s := newWALSystem(t, 0)
	var txs []*workload.Txn
	for i := int64(1); i <= 30; i++ {
		objs := []core.ObjectID{core.ObjectID(i % 7), core.ObjectID((i + 3) % 7)}
		txs = append(txs, mkTxn(i, sim.Time(i)*sim.Time(20*sim.Millisecond), sim.Time(10*sim.Second), objs, core.Write))
	}
	s.Load(txs)
	sum := s.Run()
	if sum.Committed == 0 {
		t.Fatal("nothing committed")
	}
	recovered := s.Log.Recover()
	store := s.Store.State()
	if len(recovered) != len(store) {
		t.Fatalf("recovered %d objects, store has %d", len(recovered), len(store))
	}
	for obj, v := range store {
		if recovered[obj] != v {
			t.Fatalf("object %d: recovered %d, store %d", obj, recovered[obj], v)
		}
	}
}

func TestWALCrashMidRunRecoversCommittedState(t *testing.T) {
	s := newWALSystem(t, 0)
	var txs []*workload.Txn
	for i := int64(1); i <= 30; i++ {
		objs := []core.ObjectID{core.ObjectID(i % 7)}
		txs = append(txs, mkTxn(i, sim.Time(i)*sim.Time(20*sim.Millisecond), sim.Time(10*sim.Second), objs, core.Write))
	}
	s.Load(txs)
	// Crash mid-run: in-flight transactions never wrote the store
	// (deferred updates), so the store holds exactly the committed
	// state, and the log must recover it.
	s.K.RunUntil(sim.Time(300 * sim.Millisecond))
	recovered := s.Log.Recover()
	store := s.Store.State()
	if len(store) == 0 {
		t.Fatal("nothing committed before the crash point")
	}
	for obj, v := range store {
		if recovered[obj] != v {
			t.Fatalf("object %d: recovered %d, want committed %d", obj, recovered[obj], v)
		}
	}
	if len(recovered) != len(store) {
		t.Fatalf("recovered %d objects, store %d", len(recovered), len(store))
	}
	if err := s.K.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestWALCheckpointerBoundsRedoTail(t *testing.T) {
	run := func(every sim.Duration) int {
		s := newWALSystem(t, every)
		var txs []*workload.Txn
		for i := int64(1); i <= 50; i++ {
			objs := []core.ObjectID{core.ObjectID(i % 9)}
			txs = append(txs, mkTxn(i, sim.Time(i)*sim.Time(20*sim.Millisecond), sim.Time(10*sim.Second), objs, core.Write))
		}
		s.Load(txs)
		s.Run()
		if s.Log.Records() == 0 {
			t.Fatal("no commit records written")
		}
		return s.Log.RedoLength()
	}
	unbounded := run(0)
	bounded := run(100 * sim.Millisecond)
	if bounded >= unbounded {
		t.Fatalf("checkpointing did not shrink the redo tail: %d vs %d", bounded, unbounded)
	}
	if unbounded != 50 {
		t.Fatalf("without checkpoints the tail should hold all 50 commits, got %d", unbounded)
	}
}

func TestWALForceCostDelaysCommit(t *testing.T) {
	s := newWALSystem(t, 0)
	// 2 writes: 20ms CPU + 2ms log force.
	tx := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2}, core.Write)
	s.Load([]*workload.Txn{tx})
	s.Run()
	rec := s.Monitor.Records()[0]
	if rec.Finish != sim.Time(22*sim.Millisecond) {
		t.Fatalf("finish = %v, want 22ms (CPU + log force)", rec.Finish)
	}
}

func TestWALDeadlineDuringForceAborts(t *testing.T) {
	s := newWALSystem(t, 0)
	// CPU needs 20ms, force 2ms; deadline at 21ms lands mid-force.
	tx := mkTxn(1, 0, sim.Time(21*sim.Millisecond), []core.ObjectID{1, 2}, core.Write)
	s.Load([]*workload.Txn{tx})
	sum := s.Run()
	if sum.Missed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	if s.Log.Records() != 0 {
		t.Fatal("aborted transaction left a commit record")
	}
	if len(s.Store.State()) != 0 {
		t.Fatal("aborted transaction's writes visible")
	}
}

func TestWALWoundDuringForceRestartsCleanly(t *testing.T) {
	// Under High-Priority wounding with the WAL on, a victim wounded
	// while forcing its commit record must leave no record and no
	// visible writes, restart, and commit exactly once.
	s, err := NewSystem(Config{
		CPUPerObj:  10 * sim.Millisecond,
		NewManager: func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) },
		WAL:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Victim: 2 writes → CPU done at 20ms, force runs 20–22ms. The
	// wounder arrives at 21ms, conflicts on object 1, and has higher
	// priority → wound lands mid-force.
	victim := mkTxn(2, 0, sim.Time(2*sim.Second), []core.ObjectID{1, 2}, core.Write)
	wounder := mkTxn(1, sim.Time(21*sim.Millisecond), sim.Time(200*sim.Millisecond), []core.ObjectID{1}, core.Write)
	s.Load([]*workload.Txn{victim, wounder})
	sum := s.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	if s.Monitor.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", s.Monitor.Restarts())
	}
	// Exactly two commit records (one per transaction, none from the
	// aborted attempt), and recovery equals the store.
	if s.Log.Records() != 2 {
		t.Fatalf("log records = %d, want 2", s.Log.Records())
	}
	recovered := s.Log.Recover()
	for obj, v := range s.Store.State() {
		if recovered[obj] != v {
			t.Fatalf("object %d: recovered %d, store %d", obj, recovered[obj], v)
		}
	}
	// The victim redid its work, so object 2's final value is the
	// victim's id; object 1 belongs to whoever committed last.
	if recovered[2] != 2 {
		t.Fatalf("object 2 = %d, want victim's write", recovered[2])
	}
}

func TestWALReadOnlyWritesNoRecord(t *testing.T) {
	s := newWALSystem(t, 0)
	tx := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2}, core.Read)
	s.Load([]*workload.Txn{tx})
	s.Run()
	if s.Log.Records() != 0 {
		t.Fatalf("read-only transaction logged %d records", s.Log.Records())
	}
}
