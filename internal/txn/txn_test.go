package txn

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

func newPCPSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Config{
		CPUPerObj:     10 * sim.Millisecond,
		IOPerObj:      0,
		CPUDiscipline: sim.PreemptivePriority,
		NewManager:    func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
		RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkTxn(id int64, arrival, deadline sim.Time, objs []core.ObjectID, mode core.Mode) *workload.Txn {
	t := &workload.Txn{ID: id, Kind: workload.Update, Arrival: arrival, Deadline: deadline}
	if mode == core.Read {
		t.Kind = workload.ReadOnly
	}
	for _, o := range objs {
		t.Ops = append(t.Ops, workload.Op{Obj: o, Mode: mode})
	}
	return t
}

func TestSystemConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{CPUPerObj: 1}); err == nil {
		t.Fatal("missing NewManager accepted")
	}
	if _, err := NewSystem(Config{NewManager: func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) }}); err == nil {
		t.Fatal("zero CPUPerObj accepted")
	}
}

func TestCommitWithinDeadline(t *testing.T) {
	s := newPCPSystem(t)
	tx := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2, 3}, core.Write)
	s.Load([]*workload.Txn{tx})
	sum := s.Run()
	if sum.Committed != 1 || sum.Missed != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	// 3 objects × 10ms CPU.
	rec := s.Monitor.Records()[0]
	if rec.Finish != sim.Time(30*sim.Millisecond) {
		t.Fatalf("finish = %v, want 30ms", rec.Finish)
	}
	// Committed writes reach the store.
	if v := s.Store.Read(2); v.Seq != 1 || v.Value != 1 {
		t.Fatalf("store version %+v", v)
	}
}

func TestDeadlineAbortReleasesLocksAndDisappears(t *testing.T) {
	s := newPCPSystem(t)
	// tx1 needs 50ms of CPU but has a 25ms deadline.
	doomed := mkTxn(1, 0, sim.Time(25*sim.Millisecond), []core.ObjectID{1, 2, 3, 4, 5}, core.Write)
	// tx2 wants the same first object afterwards and must get it.
	after := mkTxn(2, sim.Time(40*sim.Millisecond), sim.Time(sim.Second), []core.ObjectID{1}, core.Write)
	s.Load([]*workload.Txn{doomed, after})
	sum := s.Run()
	if sum.Missed != 1 || sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := s.Monitor.Records()
	if recs[0].Outcome != stats.DeadlineMissed || recs[0].Finish != sim.Time(25*sim.Millisecond) {
		t.Fatalf("doomed record: %+v", recs[0])
	}
	// Aborted writes never reach the store.
	if v := s.Store.Read(1); v.Seq != 1 || v.Value != 2 {
		t.Fatalf("store should hold only tx2's write, got %+v", v)
	}
}

func TestDeadlineAbortWhileBlocked(t *testing.T) {
	s := newPCPSystem(t)
	holder := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1}, core.Write)
	// Needs obj 1 but will be blocked past its deadline. Note holder
	// has the earlier... later deadline; make waiter arrive during
	// holder's CPU burst with a deadline that expires mid-wait.
	waiter := mkTxn(2, sim.Time(2*sim.Millisecond), sim.Time(6*sim.Millisecond), []core.ObjectID{1}, core.Write)
	s.Load([]*workload.Txn{holder, waiter})
	sum := s.Run()
	if sum.Missed != 1 || sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	rec := s.Monitor.Records()[1]
	if rec.Outcome != stats.DeadlineMissed {
		t.Fatalf("waiter outcome %v", rec.Outcome)
	}
	if rec.Finish != sim.Time(6*sim.Millisecond) {
		t.Fatalf("aborted at %v, want exactly its 6ms deadline", rec.Finish)
	}
	if rec.Blocked == 0 {
		t.Fatal("blocked interval not recorded")
	}
}

func TestHistorySerializable(t *testing.T) {
	s := newPCPSystem(t)
	var txs []*workload.Txn
	for i := int64(1); i <= 20; i++ {
		objs := []core.ObjectID{core.ObjectID(i % 5), core.ObjectID((i + 1) % 5), core.ObjectID((i + 2) % 5)}
		txs = append(txs, mkTxn(i, sim.Time(i)*sim.Time(5*sim.Millisecond), sim.Time(10*sim.Second), objs, core.Write))
	}
	s.Load(txs)
	sum := s.Run()
	if sum.Committed != 20 {
		t.Fatalf("committed %d/20", sum.Committed)
	}
	if !s.History.ConflictSerializable() {
		t.Fatal("PCP produced a non-serializable committed history")
	}
}

func TestPreemptionByPriority(t *testing.T) {
	s := newPCPSystem(t)
	// Long low-priority transaction on disjoint objects; short urgent
	// one arrives mid-run and must preempt on the CPU.
	long := mkTxn(1, 0, sim.Time(10*sim.Second), []core.ObjectID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, core.Write)
	urgent := mkTxn(2, sim.Time(15*sim.Millisecond), sim.Time(60*sim.Millisecond), []core.ObjectID{50}, core.Write)
	s.Load([]*workload.Txn{long, urgent})
	sum := s.Run()
	if sum.Missed != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	rec := s.Monitor.Records()[1]
	// Urgent preempts at 15ms and runs its single 10ms burst.
	if rec.Finish != sim.Time(25*sim.Millisecond) {
		t.Fatalf("urgent finished at %v, want 25ms (preempts)", rec.Finish)
	}
}

func TestFIFODisciplineNoPreemption(t *testing.T) {
	s, err := NewSystem(Config{
		CPUPerObj:     10 * sim.Millisecond,
		CPUDiscipline: sim.FIFO,
		NewManager:    func(k *sim.Kernel) core.Manager { return core.NewTwoPL(k) },
	})
	if err != nil {
		t.Fatal(err)
	}
	long := mkTxn(1, 0, sim.Time(10*sim.Second), []core.ObjectID{1, 2, 3, 4, 5}, core.Write)
	urgent := mkTxn(2, sim.Time(5*sim.Millisecond), sim.Time(10*sim.Second), []core.ObjectID{50}, core.Write)
	s.Load([]*workload.Txn{long, urgent})
	s.Run()
	rec := s.Monitor.Records()[1]
	// Under FIFO the urgent transaction waits for long's current...
	// every burst: long queues its next burst only after urgent's?
	// FIFO per burst: long's first burst ends at 10ms, urgent's burst
	// runs 10–20ms.
	if rec.Finish != sim.Time(20*sim.Millisecond) {
		t.Fatalf("urgent finished at %v, want 20ms (no preemption)", rec.Finish)
	}
}

func TestIOPerObjAddsDelay(t *testing.T) {
	s, err := NewSystem(Config{
		CPUPerObj:  10 * sim.Millisecond,
		IOPerObj:   20 * sim.Millisecond,
		NewManager: func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2}, core.Write)
	s.Load([]*workload.Txn{tx})
	s.Run()
	rec := s.Monitor.Records()[0]
	if rec.Finish != sim.Time(60*sim.Millisecond) {
		t.Fatalf("finish = %v, want 60ms (2 × (10 CPU + 20 I/O))", rec.Finish)
	}
}

func TestBufferSkipsIO(t *testing.T) {
	s, err := NewSystem(Config{
		CPUPerObj:   10 * sim.Millisecond,
		IOPerObj:    20 * sim.Millisecond,
		BufferPages: 8,
		NewManager:  func(k *sim.Kernel) core.Manager { return core.NewCeiling(k) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential transactions touching the same two objects: the
	// first pays I/O (misses), the second hits the buffer and pays
	// only CPU.
	first := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2}, core.Write)
	second := mkTxn(2, sim.Time(100*sim.Millisecond), sim.Time(2*sim.Second), []core.ObjectID{1, 2}, core.Write)
	s.Load([]*workload.Txn{first, second})
	s.Run()
	recs := s.Monitor.Records()
	if d := recs[0].Finish.Sub(recs[0].Arrival); d != 60*sim.Millisecond {
		t.Fatalf("first transaction took %v, want 60ms (2×(CPU+I/O))", d)
	}
	if d := recs[1].Finish.Sub(recs[1].Arrival); d != 20*sim.Millisecond {
		t.Fatalf("second transaction took %v, want 20ms (buffer hits skip I/O)", d)
	}
	if s.Buffer.Hits != 2 || s.Buffer.Misses != 2 {
		t.Fatalf("buffer hits=%d misses=%d, want 2/2", s.Buffer.Hits, s.Buffer.Misses)
	}
}

func TestThroughputNormalization(t *testing.T) {
	s := newPCPSystem(t)
	txs := []*workload.Txn{
		mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2, 3, 4}, core.Write),
		mkTxn(2, sim.Time(sim.Second)-1, sim.Time(2*sim.Second), []core.ObjectID{5, 6, 7, 8}, core.Write),
	}
	s.Load(txs)
	sum := s.Run()
	// 8 objects over the horizon (last finish ≈ 1.04s).
	if sum.Throughput < 7 || sum.Throughput > 9 {
		t.Fatalf("throughput = %v, want ≈ 8 obj/s", sum.Throughput)
	}
}
