package txn

import (
	"testing"

	"rtlock/internal/core"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/workload"
)

func newSystem(t *testing.T, mgr func(*sim.Kernel) core.Manager) *System {
	t.Helper()
	s, err := NewSystem(Config{
		CPUPerObj:     10 * sim.Millisecond,
		NewManager:    mgr,
		RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHPWoundedTransactionRestartsAndCommits(t *testing.T) {
	s := newSystem(t, func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) })
	// Low-priority long transaction; high-priority short one arrives
	// mid-flight and wounds it. The victim restarts and still commits
	// before its (generous) deadline.
	low := mkTxn(2, 0, sim.Time(2*sim.Second), []core.ObjectID{1, 2, 3, 4}, core.Write)
	high := mkTxn(1, sim.Time(15*sim.Millisecond), sim.Time(100*sim.Millisecond), []core.ObjectID{1}, core.Write)
	s.Load([]*workload.Txn{low, high})
	sum := s.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := s.Monitor.Records()
	if recs[0].Finish >= recs[1].Finish {
		t.Fatal("wounded low-priority transaction should finish after high")
	}
	if recs[1].Restarts != 1 {
		t.Fatalf("victim restarts = %d, want 1", recs[1].Restarts)
	}
	if s.Monitor.Restarts() != 1 {
		t.Fatalf("monitor restarts = %d", s.Monitor.Restarts())
	}
	if !s.History.ConflictSerializable() {
		t.Fatal("HP history not serializable")
	}
}

func TestHPWoundedPastDeadlineIsMissed(t *testing.T) {
	s := newSystem(t, func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) })
	// The victim (lower priority = later deadline) is wounded at 15ms
	// and must redo its 40ms of work behind the wounder; its 60ms
	// deadline leaves no room.
	low := mkTxn(2, 0, sim.Time(60*sim.Millisecond), []core.ObjectID{1, 2, 3, 4}, core.Write)
	high := mkTxn(1, sim.Time(15*sim.Millisecond), sim.Time(50*sim.Millisecond), []core.ObjectID{1, 2}, core.Write)
	s.Load([]*workload.Txn{low, high})
	sum := s.Run()
	if sum.Committed != 1 || sum.Missed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := s.Monitor.Records()
	if recs[1].Outcome != stats.DeadlineMissed {
		t.Fatalf("victim outcome %v", recs[1].Outcome)
	}
	if recs[1].Finish != sim.Time(60*sim.Millisecond) {
		t.Fatalf("victim aborted at %v, want its 60ms deadline", recs[1].Finish)
	}
}

func TestTimestampRestartsUntilCommit(t *testing.T) {
	s := newSystem(t, func(k *sim.Kernel) core.Manager { return core.NewTimestamp(k) })
	// Two same-object writers interleave; the one whose access arrives
	// late restarts with a fresh timestamp and then succeeds.
	a := mkTxn(1, 0, sim.Time(sim.Second), []core.ObjectID{1, 2}, core.Write)
	b := mkTxn(2, sim.Time(5*sim.Millisecond), sim.Time(sim.Second), []core.ObjectID{2, 1}, core.Write)
	s.Load([]*workload.Txn{a, b})
	sum := s.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	if s.Monitor.Restarts() == 0 {
		t.Fatal("expected at least one TO restart")
	}
	if !s.History.ConflictSerializable() {
		t.Fatal("TO committed history not serializable")
	}
}

func TestDetectResolvesDeadlockBothCommit(t *testing.T) {
	s := newSystem(t, func(k *sim.Kernel) core.Manager { return core.NewTwoPLDetect(k) })
	a := mkTxn(1, 0, sim.Time(2*sim.Second), []core.ObjectID{1, 2}, core.Write)
	b := &workload.Txn{ID: 2, Kind: workload.Update,
		Arrival: sim.Time(5 * sim.Millisecond), Deadline: sim.Time(2 * sim.Second),
		Ops: []workload.Op{{Obj: 2, Mode: core.Write}, {Obj: 1, Mode: core.Write}}}
	s.Load([]*workload.Txn{a, b})
	sum := s.Run()
	if sum.Committed != 2 {
		t.Fatalf("deadlock not resolved to double commit: %+v", sum)
	}
	if s.Monitor.Restarts() == 0 {
		t.Fatal("no restart recorded for the deadlock victim")
	}
	if !s.History.ConflictSerializable() {
		t.Fatal("DD history not serializable")
	}
}

func TestRestartDelaySpacesAttempts(t *testing.T) {
	s, err := NewSystem(Config{
		CPUPerObj:    10 * sim.Millisecond,
		NewManager:   func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) },
		RestartDelay: 30 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	low := mkTxn(2, 0, sim.Time(2*sim.Second), []core.ObjectID{1, 2, 3, 4}, core.Write)
	high := mkTxn(1, sim.Time(15*sim.Millisecond), sim.Time(200*sim.Millisecond), []core.ObjectID{1}, core.Write)
	s.Load([]*workload.Txn{low, high})
	s.Run()
	recs := s.Monitor.Records()
	// Wounded at 15ms, backs off 30ms, restarts at 45ms, needs 40ms of
	// CPU behind high's 10ms → finishes no earlier than 85ms.
	if recs[1].Finish < sim.Time(85*sim.Millisecond) {
		t.Fatalf("victim finished at %v; restart delay not applied", recs[1].Finish)
	}
}

func TestHeavyContentionHPAllProcessed(t *testing.T) {
	s := newSystem(t, func(k *sim.Kernel) core.Manager { return core.NewTwoPLHP(k) })
	var txs []*workload.Txn
	for i := int64(1); i <= 40; i++ {
		objs := []core.ObjectID{core.ObjectID(i % 4), core.ObjectID((i + 1) % 4)}
		txs = append(txs, mkTxn(i, sim.Time(i)*sim.Time(3*sim.Millisecond), sim.Time(i)*sim.Time(3*sim.Millisecond)+sim.Time(400*sim.Millisecond), objs, core.Write))
	}
	s.Load(txs)
	sum := s.Run()
	if sum.Processed != 40 {
		t.Fatalf("processed %d/40", sum.Processed)
	}
	if !s.History.ConflictSerializable() {
		t.Fatal("heavy HP history not serializable")
	}
}

func TestHeavyContentionTOAllProcessed(t *testing.T) {
	s := newSystem(t, func(k *sim.Kernel) core.Manager { return core.NewTimestamp(k) })
	var txs []*workload.Txn
	for i := int64(1); i <= 40; i++ {
		objs := []core.ObjectID{core.ObjectID(i % 4), core.ObjectID((i + 1) % 4)}
		txs = append(txs, mkTxn(i, sim.Time(i)*sim.Time(3*sim.Millisecond), sim.Time(i)*sim.Time(3*sim.Millisecond)+sim.Time(400*sim.Millisecond), objs, core.Write))
	}
	s.Load(txs)
	sum := s.Run()
	if sum.Processed != 40 {
		t.Fatalf("processed %d/40", sum.Processed)
	}
	if !s.History.ConflictSerializable() {
		t.Fatal("heavy TO history not serializable")
	}
}
