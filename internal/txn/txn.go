// Package txn is the transaction manager: it turns generated workload
// transactions into simulated processes that register with a locking
// protocol, acquire locks operation by operation, consume CPU and I/O,
// and commit — or are aborted the instant their hard deadline expires,
// wherever they are (waiting for a lock, on the CPU, in I/O). Aborted
// transactions release their locks and disappear from the system, per
// the paper's hard-transaction model.
package txn

import (
	"errors"
	"fmt"
	"strconv"

	"rtlock/internal/buffer"
	"rtlock/internal/check"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/metrics"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/timeline"
	"rtlock/internal/wal"
	"rtlock/internal/workload"
)

// ErrDeadlineMissed aborts a transaction whose deadline expired.
var ErrDeadlineMissed = errors.New("txn: deadline missed")

// Config parameterizes a single-site system.
type Config struct {
	// CPUPerObj is the CPU service demand per object accessed.
	CPUPerObj sim.Duration
	// IOPerObj is the I/O time per object accessed. I/O is modeled as
	// a pure delay ("parallel I/O processing" per §3.3); zero gives the
	// memory-resident database of the distributed experiments.
	IOPerObj sim.Duration
	// CPUDiscipline selects the processor scheduler; protocol L runs
	// FIFO, protocols P and C run preemptive priority.
	CPUDiscipline sim.Discipline
	// NewManager constructs the concurrency-control protocol under
	// test.
	NewManager func(*sim.Kernel) core.Manager
	// RecordHistory, when true, keeps the full access history for the
	// serializability checker (tests); large runs leave it off.
	RecordHistory bool
	// RestartDelay spaces restart attempts of abort-based protocols
	// (High-Priority wounding, timestamp ordering, deadlock
	// detection). Zero retries immediately.
	RestartDelay sim.Duration
	// Trace, when non-nil, receives per-transaction events (arrival,
	// lock request/grant with blocked interval, operation completion,
	// commit, deadline miss, restarts) — the paper's performance
	// monitor log.
	Trace *stats.Trace
	// Journal, when non-nil, receives the machine-checkable replay
	// journal: every kernel, lock-manager, and transaction lifecycle
	// event, in deterministic order. internal/audit consumes it.
	Journal *journal.Journal
	// BufferPages sizes the LRU object buffer: accesses that hit skip
	// the I/O delay. Zero disables buffering (every access pays I/O),
	// which is the calibrated experiments' behavior.
	BufferPages int
	// IODisks bounds I/O parallelism: misses queue FIFO for one of
	// this many disks. Zero keeps the paper's parallel-I/O assumption
	// (unbounded).
	IODisks int
	// LockOverhead is the CPU cost of each lock operation (the
	// protocol bookkeeping the paper's environment executes in the
	// resource manager). Zero models free lock management.
	LockOverhead sim.Duration
	// WAL enables the redo-only write-ahead log: every update
	// transaction forces a commit record (costing LogWritePerObj of
	// CPU per written object) before its writes become visible, and a
	// checkpointer snapshots the committed state every CheckpointEvery
	// (costing CheckpointPerObj per stored object at top priority).
	WAL bool
	// CheckpointEvery spaces checkpoints (zero disables the
	// checkpointer; the redo tail then grows unboundedly).
	CheckpointEvery sim.Duration
	// LogWritePerObj is the commit-record force cost per written
	// object (default 1ms when WAL is on).
	LogWritePerObj sim.Duration
	// CheckpointPerObj is the snapshot cost per stored object (default
	// 0.1ms when WAL is on).
	CheckpointPerObj sim.Duration
	// Metrics, when non-nil, receives virtual-time metric series from
	// every layer (kernel, CPU, I/O, lock manager, transactions),
	// sampled every MetricsInterval of virtual time. Metrics never
	// touch the journal, so journals are byte-identical with or
	// without a registry attached.
	Metrics *metrics.Registry
	// MetricsInterval spaces registry snapshots (zero picks
	// sim.DefaultSampleInterval).
	MetricsInterval sim.Duration
	// Timeline, when non-nil, receives every finished transaction and
	// rolls per-virtual-time-window rows (throughput, miss %, response
	// quantiles, probe deltas). Like Metrics it never touches the
	// journal. Build it over the same registry as Metrics so the probe
	// fields resolve.
	Timeline *timeline.Collector
	// MaxRawRecords caps the Monitor's raw TxRecord retention (0 keeps
	// every record); the streaming aggregates are exact either way.
	MaxRawRecords int
}

// System is a single-site real-time database system instance: one
// processor, one lock manager, one store, and a performance monitor.
type System struct {
	K       *sim.Kernel
	CPU     *sim.CPU
	Mgr     core.Manager
	Store   *db.Store
	Monitor *stats.Monitor
	History *check.History
	Buffer  *buffer.Pool
	IO      *sim.Station
	Log     *wal.Log

	cfg       Config
	remaining int

	// freeTx recycles per-attempt transaction states: an attempt's
	// state fully leaves the manager before the next attempt starts
	// (strict two-phase release plus Unregister), and the kernel's
	// single-runner discipline serializes all attempt loops, so a plain
	// freelist suffices.
	freeTx []*core.TxState

	mInflight sim.Gauge
	mCommits  sim.Counter
	mMissDead sim.Counter
	mRestarts sim.Counter
}

// getTxState hands out a reset transaction state from the pool.
func (s *System) getTxState(id int64, base sim.Priority, p *sim.Proc) *core.TxState {
	if n := len(s.freeTx); n > 0 {
		st := s.freeTx[n-1]
		s.freeTx[n-1] = nil
		s.freeTx = s.freeTx[:n-1]
		st.ResetFor(id, base, p)
		return st
	}
	return core.NewTxState(id, base, p)
}

func (s *System) putTxState(st *core.TxState) { s.freeTx = append(s.freeTx, st) }

// NewSystem assembles a system from the configuration.
func NewSystem(cfg Config) (*System, error) {
	if cfg.NewManager == nil {
		return nil, errors.New("txn: Config.NewManager is required")
	}
	if cfg.CPUPerObj <= 0 {
		return nil, fmt.Errorf("txn: CPUPerObj must be positive, got %d", cfg.CPUPerObj)
	}
	if cfg.CPUDiscipline == 0 {
		cfg.CPUDiscipline = sim.PreemptivePriority
	}
	k := sim.NewKernel()
	k.SetJournal(cfg.Journal, 0)
	// Attach metrics before the CPU and I/O station are built: their
	// constructors cache probe handles from the kernel's registry.
	k.SetMetrics(cfg.Metrics, cfg.MetricsInterval)
	s := &System{
		K:       k,
		CPU:     sim.NewCPU(k, cfg.CPUDiscipline),
		Mgr:     cfg.NewManager(k),
		Store:   db.NewStore(0),
		Monitor: stats.NewMonitor(),
		Buffer:  buffer.New(cfg.BufferPages),
		IO:      sim.NewStation(k, cfg.IODisks),
		cfg:     cfg,
	}
	if cfg.RecordHistory {
		s.History = check.NewHistory()
	}
	s.Monitor.SetMaxRaw(cfg.MaxRawRecords)
	m := k.Metrics()
	s.mInflight = m.Gauge("txn_inflight", "Transactions between arrival and commit/abort.")
	s.mCommits = m.Counter("txn_commits_total", "Transactions that committed by their deadline.")
	s.mMissDead = m.Counter("txn_deadline_misses_total", "Transactions aborted at their deadline.", metrics.L("reason", "deadline"))
	s.mRestarts = m.Counter("txn_restarts_total", "Attempt restarts (wounds, deadlock victims, conditional aborts).")
	if cfg.WAL {
		if s.cfg.LogWritePerObj <= 0 {
			s.cfg.LogWritePerObj = sim.Millisecond
		}
		if s.cfg.CheckpointPerObj <= 0 {
			s.cfg.CheckpointPerObj = sim.Millisecond / 10
		}
		s.Log = wal.NewLog()
	}
	return s, nil
}

// Load schedules the transactions' arrivals and, with a write-ahead log
// configured, the checkpointer.
func (s *System) Load(txs []*workload.Txn) {
	s.remaining += len(txs)
	s.Monitor.Reserve(s.remaining)
	for _, t := range txs {
		t := t
		// "tx" + FormatInt keeps the KSpawn journal bytes identical to
		// the old Sprintf("tx%d") while skipping the fmt machinery.
		name := "tx" + strconv.FormatInt(t.ID, 10)
		s.K.At(t.Arrival, func() {
			s.K.Spawn(name, func(p *sim.Proc) {
				s.exec(p, t)
				s.remaining--
			})
		})
	}
	if s.Log != nil && s.cfg.CheckpointEvery > 0 {
		s.K.Spawn("checkpointer", s.checkpointer)
	}
}

// LoadStream schedules arrivals one at a time: each arrival event pulls
// the next transaction from the stream and schedules it before spawning
// its own worker, so the event heap and live transaction set stay
// bounded no matter how long the load is. The spawn order and names
// match Load, so a streamed run journals identically to a preloaded
// one.
func (s *System) LoadStream(src *workload.Stream) {
	s.Monitor.Reserve(src.Remaining())
	s.scheduleNext(src)
	if s.Log != nil && s.cfg.CheckpointEvery > 0 {
		s.K.Spawn("checkpointer", s.checkpointer)
	}
}

// scheduleNext pulls one transaction and registers its arrival.
// remaining is incremented at schedule time, before the previous
// transaction can finish, so the checkpointer's remaining==0 exit never
// fires while an arrival is still pending.
func (s *System) scheduleNext(src *workload.Stream) {
	t := src.Next()
	if t == nil {
		return
	}
	s.remaining++
	name := "tx" + strconv.FormatInt(t.ID, 10)
	s.K.At(t.Arrival, func() {
		s.scheduleNext(src)
		s.K.Spawn(name, func(p *sim.Proc) {
			s.exec(p, t)
			s.remaining--
		})
	})
}

// checkpointer periodically snapshots the committed state into the log,
// consuming CPU at top priority (the snapshot stalls lower-priority
// work, which is the cost side of the recovery trade-off). It exits once
// no transactions remain so the simulation can drain.
func (s *System) checkpointer(p *sim.Proc) {
	for {
		if err := p.Sleep(s.cfg.CheckpointEvery); err != nil {
			return
		}
		if s.remaining == 0 {
			return
		}
		state := s.Store.State()
		cost := sim.Duration(len(state)) * s.cfg.CheckpointPerObj
		if err := s.CPU.Use(p, sim.MaxPriority, cost); err != nil {
			return
		}
		s.Log.Checkpoint(p.Now(), s.Store.State())
	}
}

// Run drives the simulation to completion and returns the summary.
func (s *System) Run() stats.Summary {
	s.K.Run()
	s.cfg.Timeline.Finish(s.Monitor.Horizon())
	sum := s.Monitor.Summarize()
	if h := s.Monitor.Horizon(); h > 0 {
		horizon := sim.Duration(h).Seconds()
		sum.CPUUtil = s.CPU.Busy().Seconds() / horizon
		servers := s.IO.Servers()
		if servers == 0 {
			servers = 1 // unbounded I/O: report offered load per notional disk
		}
		sum.IOUtil = s.IO.Busy().Seconds() / (horizon * float64(servers))
	}
	return sum
}

// exec runs one transaction to commit or deadline abort, restarting
// attempts that abort-based protocols reject.
func (s *System) exec(p *sim.Proc, t *workload.Txn) {
	rec := stats.TxRecord{
		ID:       t.ID,
		Site:     0,
		Size:     t.Size(),
		ReadOnly: t.Kind == workload.ReadOnly,
		Arrival:  p.Now(),
		Start:    p.Now(),
		Deadline: t.Deadline,
	}
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)
	deadlineEv := s.K.At(t.Deadline, func() { p.Interrupt(ErrDeadlineMissed) })
	if s.cfg.Trace != nil {
		s.cfg.Trace.Log(p.Now(), t.ID, stats.EvArrive, -1,
			fmt.Sprintf("size=%d deadline=%.1fms", t.Size(), sim.Duration(t.Deadline).Millis()))
	}
	s.K.Emit(journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")

	var err error
	var attempt []attemptOp
	// The access sets and priority-change hook are attempt-invariant;
	// computing them once per transaction keeps restarts allocation-free
	// (managers only read the sets, never mutate them).
	readSet := t.ReadSet()
	writeSet := t.WriteSet()
	estimate := sim.Duration(t.Size()) * (s.cfg.CPUPerObj + s.cfg.IOPerObj)
	onPrio := func(pr sim.Priority) {
		s.K.Emit(journal.KInherit, t.ID, 0, pr.Deadline, pr.TxID, "")
		s.CPU.Reprioritize(p, pr)
	}
	for {
		st := s.getTxState(t.ID, t.Priority(), p)
		st.ReadSet = readSet
		st.WriteSet = writeSet
		st.Estimate = estimate
		st.OnPrioChange = onPrio
		attempt = attempt[:0]

		s.K.Emit(journal.KRegister, t.ID, 0, 0, 0, "")
		s.Mgr.Register(st)
		err = s.body(p, st, t, &attempt)
		if err == nil && s.Log != nil && len(st.WriteSet) > 0 {
			// Write-ahead: force the commit record while still
			// holding the write locks, before the writes become
			// visible. An interruption here (deadline, wound)
			// aborts the attempt with no record and no visible
			// writes.
			force := sim.Duration(len(st.WriteSet)) * s.cfg.LogWritePerObj
			if err = s.CPU.Use(p, st.Eff(), force); err == nil {
				images := make([]wal.WriteImage, 0, len(st.WriteSet))
				for _, obj := range st.WriteSet {
					images = append(images, wal.WriteImage{Obj: obj, Value: t.ID})
				}
				s.Log.AppendCommit(t.ID, p.Now(), images)
			}
		}
		s.Mgr.ReleaseAll(st)
		s.Mgr.Unregister(st)
		s.K.Emit(journal.KUnregister, t.ID, 0, 0, 0, "")
		rec.Blocked += st.BlockedTime
		rec.BlockedCount += st.BlockedCount
		s.putTxState(st)

		if !errors.Is(err, core.ErrRestart) {
			break
		}
		s.K.Emit(journal.KRestart, t.ID, 0, int64(rec.Restarts), 0, "")
		s.mRestarts.Inc()
		rec.Restarts++
		s.cfg.Trace.Log(p.Now(), t.ID, stats.EvRestart, -1, "")
		if s.cfg.RestartDelay > 0 {
			if err = p.Sleep(s.cfg.RestartDelay); err != nil {
				break
			}
		}
	}
	deadlineEv.Cancel()

	if errors.Is(err, sim.ErrShutdown) {
		return // simulation torn down; nothing to record
	}
	rec.Finish = p.Now()
	switch {
	case err == nil:
		s.K.Emit(journal.KCommit, t.ID, 0, 0, 0, "")
		s.cfg.Trace.Log(p.Now(), t.ID, stats.EvCommit, -1, "")
		s.mCommits.Inc()
		rec.Outcome = stats.Committed
		for _, obj := range writeSet {
			s.Store.Write(obj, t.ID, p.Now())
		}
		if s.History != nil {
			// Only the committed attempt's accesses enter the
			// history; aborted attempts were undone.
			for _, op := range attempt {
				s.History.Record(t.ID, op.obj, op.mode, op.at)
			}
			s.History.Commit(t.ID)
		}
	case errors.Is(err, ErrDeadlineMissed):
		s.K.Emit(journal.KDeadlineMiss, t.ID, 0, 0, 0, "")
		s.cfg.Trace.Log(p.Now(), t.ID, stats.EvDeadlineMiss, -1, "")
		s.mMissDead.Inc()
		rec.Outcome = stats.DeadlineMissed
	default:
		// Unexpected protocol error: surface it as a miss but keep
		// the record so it is visible in reports.
		rec.Outcome = stats.DeadlineMissed
	}
	s.Monitor.Add(rec)
	s.cfg.Timeline.Tx(rec.Finish, rec.Outcome == stats.Committed,
		rec.Finish.Sub(rec.Arrival), rec.Restarts)
}

// attemptOp is one access of the current attempt, buffered for the
// history so that only committed attempts are checked.
type attemptOp struct {
	obj  core.ObjectID
	mode core.Mode
	at   sim.Time
}

// body performs the access sequence: lock (or timestamp validation),
// then CPU, then I/O per object. A pending wound that missed its
// interrupt window is honored at the next step boundary.
func (s *System) body(p *sim.Proc, st *core.TxState, t *workload.Txn, attempt *[]attemptOp) error {
	for _, op := range t.Ops {
		if w := st.Wounded(); w != nil {
			return w
		}
		requested := p.Now()
		if s.cfg.Trace != nil {
			s.cfg.Trace.Log(requested, t.ID, stats.EvLockRequest, int32(op.Obj), op.Mode.String())
		}
		if s.cfg.LockOverhead > 0 {
			if err := s.CPU.Use(p, st.Eff(), s.cfg.LockOverhead); err != nil {
				return err
			}
		}
		if err := s.Mgr.Acquire(p, st, op.Obj, op.Mode); err != nil {
			return err
		}
		if s.cfg.Trace != nil {
			note := op.Mode.String()
			if wait := p.Now().Sub(requested); wait > 0 {
				note = fmt.Sprintf("%s blocked %.1fms", note, wait.Millis())
			}
			s.cfg.Trace.Log(p.Now(), t.ID, stats.EvLockGrant, int32(op.Obj), note)
		}
		s.K.Emit(journal.KOp, t.ID, int32(op.Obj), int64(op.Mode), 0, "")
		if s.History != nil {
			*attempt = append(*attempt, attemptOp{obj: op.Obj, mode: op.Mode, at: p.Now()})
		}
		if err := s.CPU.Use(p, st.Eff(), s.cfg.CPUPerObj); err != nil {
			return err
		}
		if s.cfg.IOPerObj > 0 && !s.Buffer.Access(op.Obj) {
			if err := s.IO.Serve(p, s.cfg.IOPerObj); err != nil {
				return err
			}
		}
		s.cfg.Trace.Log(p.Now(), t.ID, stats.EvOpDone, int32(op.Obj), "")
	}
	if w := st.Wounded(); w != nil {
		return w
	}
	return nil
}
