package netsim

import (
	"testing"

	"rtlock/internal/sim"
)

func TestSendDelayAndDelivery(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	var deliveredAt sim.Time
	var got Message
	n.Server(1).Handle("ping", func(msg Message) {
		deliveredAt = k.Now()
		got = msg
	})
	k.At(sim.Time(10*sim.Millisecond), func() {
		n.Send(0, 1, "ping", "hello")
	})
	k.Run()
	if deliveredAt != sim.Time(15*sim.Millisecond) {
		t.Fatalf("delivered at %v, want 15ms", deliveredAt)
	}
	if got.Payload != "hello" || got.From != 0 || got.SentAt != sim.Time(10*sim.Millisecond) {
		t.Fatalf("message = %+v", got)
	}
	if n.Sent != 1 {
		t.Fatalf("Sent = %d, want 1", n.Sent)
	}
	n.Shutdown()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("%d live processes after shutdown", k.Live())
	}
}

func TestIntraSiteSendFreeAndUncounted(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	var deliveredAt sim.Time
	n.Server(2).Handle("p", func(msg Message) { deliveredAt = k.Now() })
	k.At(sim.Time(3*sim.Millisecond), func() { n.Send(2, 2, "p", nil) })
	k.Run()
	if deliveredAt != sim.Time(3*sim.Millisecond) {
		t.Fatalf("intra-site delivery at %v, want 3ms (no delay)", deliveredAt)
	}
	if n.Sent != 0 {
		t.Fatalf("intra-site message counted: Sent = %d", n.Sent)
	}
	n.Shutdown()
	k.Run()
}

func TestDeliveryOrderFIFO(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.Millisecond)
	var order []int
	n.Server(1).Handle("seq", func(msg Message) {
		v, ok := msg.Payload.(int)
		if !ok {
			t.Errorf("payload %v", msg.Payload)
			return
		}
		order = append(order, v)
	})
	for i := 0; i < 5; i++ {
		i := i
		k.At(0, func() { n.Send(0, 1, "seq", i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v", order)
		}
	}
	if n.Server(1).Delivered != 5 {
		t.Fatalf("Delivered = %d", n.Server(1).Delivered)
	}
	n.Shutdown()
	k.Run()
}

func TestUnhandledPortDropped(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.Millisecond)
	n.Server(1) // create server with no handlers
	n.Send(0, 1, "nowhere", nil)
	k.Run()
	if n.Server(1).Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Server(1).Dropped)
	}
	n.Shutdown()
	k.Run()
}

func TestHop(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 7*sim.Millisecond)
	var after sim.Time
	k.Spawn("traveler", func(p *sim.Proc) {
		if err := n.Hop(p, 0, 1); err != nil {
			t.Errorf("Hop: %v", err)
		}
		after = p.Now()
	})
	k.Run()
	if after != sim.Time(7*sim.Millisecond) {
		t.Fatalf("hop completed at %v, want 7ms", after)
	}
	if n.Sent != 1 {
		t.Fatalf("Sent = %d", n.Sent)
	}
}

func TestHopSameSiteInstant(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 7*sim.Millisecond)
	var after sim.Time
	k.Spawn("local", func(p *sim.Proc) {
		if err := n.Hop(p, 1, 1); err != nil {
			t.Errorf("Hop: %v", err)
		}
		after = p.Now()
	})
	k.Run()
	if after != 0 {
		t.Fatalf("same-site hop took %v", after)
	}
	if n.Sent != 0 {
		t.Fatalf("same-site hop counted as message")
	}
}

func TestSendToDownSiteDropped(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.Millisecond)
	delivered := 0
	n.Server(1).Handle("p", func(m Message) { delivered++ })
	n.SetDown(1, true)
	n.Send(0, 1, "p", nil)
	k.Run()
	if delivered != 0 || n.DroppedDown != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, n.DroppedDown)
	}
	// Recovery: messages flow again.
	n.SetDown(1, false)
	n.Send(0, 1, "p", nil)
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered=%d after recovery", delivered)
	}
	n.Shutdown()
	k.Run()
}

func TestHopToDownSiteTimesOut(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	n.SetDown(2, true)
	var got error
	var woke sim.Time
	k.Spawn("caller", func(p *sim.Proc) {
		got = n.Hop(p, 0, 2)
		woke = p.Now()
	})
	k.Run()
	if got != ErrSiteDown {
		t.Fatalf("Hop returned %v, want ErrSiteDown", got)
	}
	// Default timeout: 4×delay + 10ms = 30ms.
	if woke != sim.Time(30*sim.Millisecond) {
		t.Fatalf("timed out at %v, want 30ms", woke)
	}
}

func TestHopTimeoutConfigurable(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	n.Timeout = 7 * sim.Millisecond
	n.SetDown(1, true)
	var woke sim.Time
	k.Spawn("caller", func(p *sim.Proc) {
		if err := n.Hop(p, 0, 1); err != ErrSiteDown {
			t.Errorf("err = %v", err)
		}
		woke = p.Now()
	})
	k.Run()
	if woke != sim.Time(7*sim.Millisecond) {
		t.Fatalf("timed out at %v, want 7ms", woke)
	}
}

func TestHandlerSpawnsWork(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, sim.Millisecond)
	var done sim.Time
	n.Server(1).Handle("work", func(msg Message) {
		k.Spawn("worker", func(p *sim.Proc) {
			if err := p.Sleep(10 * sim.Millisecond); err != nil {
				return
			}
			done = p.Now()
		})
	})
	n.Send(0, 1, "work", nil)
	k.Run()
	if done != sim.Time(11*sim.Millisecond) {
		t.Fatalf("worker finished at %v, want 11ms", done)
	}
	n.Shutdown()
	k.Run()
}
