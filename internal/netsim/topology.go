package netsim

import (
	"fmt"

	"rtlock/internal/db"
	"rtlock/internal/sim"
)

// Topology is a site interconnect with per-pair one-way delays. The
// paper's user interface lets the experimenter pick the number of sites
// and the topology; the constructors below build the common shapes, and
// Custom accepts an explicit delay matrix. All topologies are symmetric
// and have zero self-delay.
type Topology struct {
	n     int
	delay [][]sim.Duration
}

// FullMesh connects every pair of sites directly with a uniform delay —
// the paper's "fully interconnected communication network".
func FullMesh(sites int, delay sim.Duration) (*Topology, error) {
	if sites < 1 {
		return nil, fmt.Errorf("netsim: sites must be >= 1, got %d", sites)
	}
	t := newTopology(sites)
	for i := 0; i < sites; i++ {
		for j := 0; j < sites; j++ {
			if i != j {
				t.delay[i][j] = delay
			}
		}
	}
	return t, nil
}

// Ring connects each site to its two neighbors; the delay between two
// sites is the shorter way around times the link delay.
func Ring(sites int, link sim.Duration) (*Topology, error) {
	if sites < 1 {
		return nil, fmt.Errorf("netsim: sites must be >= 1, got %d", sites)
	}
	t := newTopology(sites)
	for i := 0; i < sites; i++ {
		for j := 0; j < sites; j++ {
			if i == j {
				continue
			}
			hops := i - j
			if hops < 0 {
				hops = -hops
			}
			if other := sites - hops; other < hops {
				hops = other
			}
			t.delay[i][j] = sim.Duration(hops) * link
		}
	}
	return t, nil
}

// Star connects every site to a hub; hub↔leaf is one link, leaf↔leaf is
// two.
func Star(sites int, hub db.SiteID, link sim.Duration) (*Topology, error) {
	if sites < 1 {
		return nil, fmt.Errorf("netsim: sites must be >= 1, got %d", sites)
	}
	if int(hub) < 0 || int(hub) >= sites {
		return nil, fmt.Errorf("netsim: hub %d out of range", hub)
	}
	t := newTopology(sites)
	for i := 0; i < sites; i++ {
		for j := 0; j < sites; j++ {
			if i == j {
				continue
			}
			if db.SiteID(i) == hub || db.SiteID(j) == hub {
				t.delay[i][j] = link
			} else {
				t.delay[i][j] = 2 * link
			}
		}
	}
	return t, nil
}

// Custom builds a topology from an explicit one-way delay matrix. The
// matrix must be square; self-delays are forced to zero.
func Custom(delay [][]sim.Duration) (*Topology, error) {
	n := len(delay)
	if n == 0 {
		return nil, fmt.Errorf("netsim: empty delay matrix")
	}
	t := newTopology(n)
	for i, row := range delay {
		if len(row) != n {
			return nil, fmt.Errorf("netsim: delay matrix row %d has %d entries, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("netsim: negative delay at [%d][%d]", i, j)
			}
			if i != j {
				t.delay[i][j] = d
			}
		}
	}
	return t, nil
}

func newTopology(n int) *Topology {
	t := &Topology{n: n, delay: make([][]sim.Duration, n)}
	for i := range t.delay {
		t.delay[i] = make([]sim.Duration, n)
	}
	return t
}

// Sites returns the number of sites.
func (t *Topology) Sites() int { return t.n }

// Delay returns the one-way delay between two sites (zero for unknown
// sites, matching the uniform network's forgiving behavior).
func (t *Topology) Delay(from, to db.SiteID) sim.Duration {
	if from == to || int(from) < 0 || int(from) >= t.n || int(to) < 0 || int(to) >= t.n {
		return 0
	}
	return t.delay[from][to]
}

// MaxDelay returns the largest pairwise delay, useful for sizing
// deadline slack in experiments.
func (t *Topology) MaxDelay() sim.Duration {
	var maxD sim.Duration
	for i := range t.delay {
		for _, d := range t.delay[i] {
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}
