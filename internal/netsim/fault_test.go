package netsim

// Fault-path coverage: journaled drops (messages lost to down sites,
// cut links, or the injector are recorded, never silent), the arrival
// re-check on synchronous hops, partition cuts, and injected
// drop/duplicate/jitter fates.

import (
	"errors"
	"testing"

	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
)

// dropRecords extracts the KMsgDrop records of a journal.
func dropRecords(j *journal.Journal) []journal.Record {
	var out []journal.Record
	for _, r := range j.Records() {
		if r.Kind == journal.KMsgDrop {
			out = append(out, r)
		}
	}
	return out
}

// fakeInjector scripts Deliveries responses in call order.
type fakeInjector struct {
	fates [][]sim.Duration
	calls int
}

func (f *fakeInjector) Deliveries(now sim.Time, from, to db.SiteID) []sim.Duration {
	i := f.calls
	f.calls++
	if i < len(f.fates) {
		return f.fates[i]
	}
	return []sim.Duration{0}
}

func TestSendToDownSiteJournalsDrop(t *testing.T) {
	k := sim.NewKernel()
	j := journal.New(1, "send-drop")
	k.SetJournal(j, 0)
	n := NewNetwork(k, sim.Millisecond)
	n.Server(1).Handle("p", func(m Message) {})
	n.SetDown(1, true)
	n.Send(0, 1, "p", nil)
	k.Run()
	drops := dropRecords(j)
	if len(drops) != 1 {
		t.Fatalf("drop records = %d, want 1 (drop must be journaled, not silent)", len(drops))
	}
	d := drops[0]
	if d.Site != 1 || d.A != 0 || d.B != DropDown || d.Note != "p" {
		t.Fatalf("drop record = %+v", d)
	}
	if n.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d", n.DroppedDown)
	}
	n.Shutdown()
	k.Run()
}

func TestSendFromDownSourceDropped(t *testing.T) {
	k := sim.NewKernel()
	j := journal.New(1, "send-drop-src")
	k.SetJournal(j, 0)
	n := NewNetwork(k, sim.Millisecond)
	delivered := 0
	n.Server(1).Handle("p", func(m Message) { delivered++ })
	n.SetDown(0, true)
	n.Send(0, 1, "p", nil)
	k.Run()
	if delivered != 0 || n.DroppedDown != 1 || len(dropRecords(j)) != 1 {
		t.Fatalf("delivered=%d DroppedDown=%d drops=%d", delivered, n.DroppedDown, len(dropRecords(j)))
	}
	n.Shutdown()
	k.Run()
}

func TestSendLostInFlight(t *testing.T) {
	// The destination goes down while the message is on the wire: the
	// delivery-time re-check loses it.
	k := sim.NewKernel()
	j := journal.New(1, "send-inflight")
	k.SetJournal(j, 0)
	n := NewNetwork(k, 5*sim.Millisecond)
	delivered := 0
	n.Server(1).Handle("p", func(m Message) { delivered++ })
	k.At(0, func() { n.Send(0, 1, "p", nil) })
	k.At(sim.Time(2*sim.Millisecond), func() { n.SetDown(1, true) })
	k.Run()
	if delivered != 0 || n.DroppedDown != 1 {
		t.Fatalf("delivered=%d DroppedDown=%d", delivered, n.DroppedDown)
	}
	drops := dropRecords(j)
	if len(drops) != 1 || drops[0].At != int64(5*sim.Millisecond) {
		t.Fatalf("drops = %+v, want one at 5ms", drops)
	}
	n.Shutdown()
	k.Run()
}

func TestHopLostAtArrival(t *testing.T) {
	// Regression: liveness used to be checked only at send time, so a
	// site crashing while the hop was in flight still "delivered" it.
	k := sim.NewKernel()
	j := journal.New(1, "hop-arrival")
	k.SetJournal(j, 0)
	n := NewNetwork(k, 5*sim.Millisecond)
	var got error
	var woke sim.Time
	k.Spawn("caller", func(p *sim.Proc) {
		got = n.Hop(p, 0, 1)
		woke = p.Now()
	})
	k.At(sim.Time(2*sim.Millisecond), func() { n.SetDown(1, true) })
	k.Run()
	if got != ErrSiteDown {
		t.Fatalf("Hop returned %v, want ErrSiteDown", got)
	}
	// Full timeout burned: default 4×5ms + 10ms = 30ms.
	if woke != sim.Time(30*sim.Millisecond) {
		t.Fatalf("woke at %v, want 30ms", woke)
	}
	drops := dropRecords(j)
	if len(drops) != 1 || drops[0].At != int64(5*sim.Millisecond) || drops[0].B != DropDown || drops[0].Note != "hop" {
		t.Fatalf("drops = %+v, want one DropDown hop record at 5ms", drops)
	}
}

func TestHopInterruptedDuringTimeoutSleep(t *testing.T) {
	// A deadline abort must propagate out of the time-out sleep
	// immediately instead of being swallowed into ErrSiteDown.
	errDeadline := errors.New("deadline")
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	n.SetDown(1, true)
	var got error
	var woke sim.Time
	p := k.Spawn("caller", func(p *sim.Proc) {
		got = n.Hop(p, 0, 1)
		woke = p.Now()
	})
	k.At(sim.Time(12*sim.Millisecond), func() { p.Interrupt(errDeadline) })
	k.Run()
	if got != errDeadline {
		t.Fatalf("Hop returned %v, want the interrupt error", got)
	}
	if woke != sim.Time(12*sim.Millisecond) {
		t.Fatalf("woke at %v, want 12ms (no residual time-out sleep)", woke)
	}
}

func TestCutLinkDropsBothDirections(t *testing.T) {
	k := sim.NewKernel()
	j := journal.New(1, "cut")
	k.SetJournal(j, 0)
	n := NewNetwork(k, sim.Millisecond)
	delivered := 0
	n.Server(0).Handle("p", func(m Message) { delivered++ })
	n.Server(1).Handle("p", func(m Message) { delivered++ })
	n.SetCut(0, 1, true)
	if n.Reachable(0, 1) || n.Reachable(1, 0) {
		t.Fatal("cut link still reachable")
	}
	n.Send(0, 1, "p", nil)
	n.Send(1, 0, "p", nil)
	k.Run()
	if delivered != 0 || n.DroppedCut != 2 {
		t.Fatalf("delivered=%d DroppedCut=%d", delivered, n.DroppedCut)
	}
	for _, d := range dropRecords(j) {
		if d.B != DropCut {
			t.Fatalf("drop reason = %d, want DropCut", d.B)
		}
	}
	// Cuts nest: two layers need two heals.
	n.SetCut(1, 0, true)
	n.SetCut(0, 1, false)
	if !n.Cut(0, 1) {
		t.Fatal("nested cut healed after one layer")
	}
	n.SetCut(0, 1, false)
	if n.Cut(0, 1) {
		t.Fatal("link still cut after both layers healed")
	}
	n.Send(0, 1, "p", nil)
	k.Run()
	if delivered != 1 {
		t.Fatalf("delivered=%d after heal", delivered)
	}
	n.Shutdown()
	k.Run()
}

func TestInjectedDropIsJournaled(t *testing.T) {
	k := sim.NewKernel()
	j := journal.New(1, "inj-drop")
	k.SetJournal(j, 0)
	n := NewNetwork(k, sim.Millisecond)
	delivered := 0
	n.Server(1).Handle("p", func(m Message) { delivered++ })
	n.SetInjector(&fakeInjector{fates: [][]sim.Duration{nil}})
	n.Send(0, 1, "p", nil)
	k.Run()
	if delivered != 0 || n.DroppedFault != 1 {
		t.Fatalf("delivered=%d DroppedFault=%d", delivered, n.DroppedFault)
	}
	drops := dropRecords(j)
	if len(drops) != 1 || drops[0].B != DropFault {
		t.Fatalf("drops = %+v", drops)
	}
	n.Shutdown()
	k.Run()
}

func TestInjectedDuplicateAndJitter(t *testing.T) {
	k := sim.NewKernel()
	j := journal.New(1, "inj-dup")
	k.SetJournal(j, 0)
	n := NewNetwork(k, 5*sim.Millisecond)
	var arrivals []sim.Time
	n.Server(1).Handle("p", func(m Message) { arrivals = append(arrivals, k.Now()) })
	n.SetInjector(&fakeInjector{fates: [][]sim.Duration{{0, 2 * sim.Millisecond}}})
	k.At(0, func() { n.Send(0, 1, "p", nil) })
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v, want 2 copies", arrivals)
	}
	if arrivals[0] != sim.Time(5*sim.Millisecond) || arrivals[1] != sim.Time(7*sim.Millisecond) {
		t.Fatalf("arrivals = %v, want 5ms and 7ms", arrivals)
	}
	if n.Duplicated != 1 {
		t.Fatalf("Duplicated = %d", n.Duplicated)
	}
	dups := 0
	for _, r := range j.Records() {
		if r.Kind == journal.KMsgDup {
			dups++
			if r.B != 2 {
				t.Fatalf("KMsgDup copies = %d, want 2", r.B)
			}
		}
	}
	if dups != 1 {
		t.Fatalf("KMsgDup records = %d", dups)
	}
	n.Shutdown()
	k.Run()
}

func TestHopInjectedDropTimesOut(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	n.SetInjector(&fakeInjector{fates: [][]sim.Duration{nil}})
	var got error
	var woke sim.Time
	k.Spawn("caller", func(p *sim.Proc) {
		got = n.Hop(p, 0, 1)
		woke = p.Now()
	})
	k.Run()
	if got != ErrSiteDown || woke != sim.Time(30*sim.Millisecond) {
		t.Fatalf("got=%v woke=%v, want ErrSiteDown at 30ms", got, woke)
	}
	if n.DroppedFault != 1 {
		t.Fatalf("DroppedFault = %d", n.DroppedFault)
	}
}

func TestHopInjectedJitterDelays(t *testing.T) {
	k := sim.NewKernel()
	n := NewNetwork(k, 5*sim.Millisecond)
	n.SetInjector(&fakeInjector{fates: [][]sim.Duration{{3 * sim.Millisecond}}})
	var woke sim.Time
	k.Spawn("caller", func(p *sim.Proc) {
		if err := n.Hop(p, 0, 1); err != nil {
			t.Errorf("Hop: %v", err)
		}
		woke = p.Now()
	})
	k.Run()
	if woke != sim.Time(8*sim.Millisecond) {
		t.Fatalf("woke at %v, want 8ms (5ms delay + 3ms jitter)", woke)
	}
}
