package netsim

import (
	"testing"

	dbpkg "rtlock/internal/db"
	"rtlock/internal/sim"
)

func TestFullMeshDelays(t *testing.T) {
	topo, err := FullMesh(4, 7*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Sites() != 4 {
		t.Fatalf("sites = %d", topo.Sites())
	}
	if d := topo.Delay(0, 3); d != 7*sim.Millisecond {
		t.Fatalf("delay(0,3) = %v", d)
	}
	if d := topo.Delay(2, 2); d != 0 {
		t.Fatalf("self delay = %v", d)
	}
	if _, err := FullMesh(0, 1); err == nil {
		t.Fatal("0 sites accepted")
	}
}

func TestRingDelays(t *testing.T) {
	topo, err := Ring(5, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		hops int
	}{
		{0, 1, 1}, {0, 2, 2}, {0, 3, 2}, {0, 4, 1}, {1, 4, 2}, {2, 4, 2},
	}
	for _, c := range cases {
		want := sim.Duration(c.hops) * 10 * sim.Millisecond
		if d := topo.Delay(site(c.a), site(c.b)); d != want {
			t.Fatalf("ring delay(%d,%d) = %v, want %d hops", c.a, c.b, d, c.hops)
		}
		if topo.Delay(site(c.a), site(c.b)) != topo.Delay(site(c.b), site(c.a)) {
			t.Fatal("ring not symmetric")
		}
	}
	if topo.MaxDelay() != 20*sim.Millisecond {
		t.Fatalf("max delay = %v", topo.MaxDelay())
	}
}

func TestStarDelays(t *testing.T) {
	topo, err := Star(4, 0, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d := topo.Delay(0, 2); d != 5*sim.Millisecond {
		t.Fatalf("hub-leaf = %v", d)
	}
	if d := topo.Delay(1, 3); d != 10*sim.Millisecond {
		t.Fatalf("leaf-leaf = %v", d)
	}
	if _, err := Star(3, 9, 1); err == nil {
		t.Fatal("out-of-range hub accepted")
	}
}

func TestCustomTopology(t *testing.T) {
	ms := sim.Millisecond
	topo, err := Custom([][]sim.Duration{
		{0, 1 * ms, 2 * ms},
		{1 * ms, 0, 3 * ms},
		{2 * ms, 3 * ms, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := topo.Delay(1, 2); d != 3*ms {
		t.Fatalf("delay(1,2) = %v", d)
	}
	if _, err := Custom(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := Custom([][]sim.Duration{{0, 1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := Custom([][]sim.Duration{{0, -1}, {1, 0}}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestNetworkUsesTopology(t *testing.T) {
	k := sim.NewKernel()
	topo, err := Star(3, 0, 4*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetworkTopology(k, topo)
	if d := n.Delay(1, 2); d != 8*sim.Millisecond {
		t.Fatalf("network delay(1,2) = %v", d)
	}
	var deliveredAt sim.Time
	n.Server(2).Handle("x", func(m Message) { deliveredAt = k.Now() })
	n.Send(1, 2, "x", nil)
	k.Run()
	if deliveredAt != sim.Time(8*sim.Millisecond) {
		t.Fatalf("delivered at %v, want 8ms (leaf-leaf)", deliveredAt)
	}
	n.Shutdown()
	k.Run()
}

// site shortens SiteID conversion in tests.
func site(i int) dbpkg.SiteID { return dbpkg.SiteID(i) }

// TestSixteenSiteMesh verifies the network scales to the placement
// sweep's largest configuration: 16 sites, all pairs connected, a
// broadcast reaching every remote site in one delay, and Hop round
// trips working from the farthest corner.
func TestSixteenSiteMesh(t *testing.T) {
	const sites = 16
	k := sim.NewKernel()
	topo, err := FullMesh(sites, 3*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Sites() != sites {
		t.Fatalf("sites = %d, want %d", topo.Sites(), sites)
	}
	n := NewNetworkTopology(k, topo)
	for a := 0; a < sites; a++ {
		for b := 0; b < sites; b++ {
			want := 3 * sim.Millisecond
			if a == b {
				want = 0
			}
			if d := n.Delay(site(a), site(b)); d != want {
				t.Fatalf("delay(%d,%d) = %v, want %v", a, b, d, want)
			}
		}
	}
	got := make(map[int]sim.Time)
	for i := 1; i < sites; i++ {
		i := i
		n.Server(site(i)).Handle("bcast", func(m Message) { got[i] = k.Now() })
	}
	k.At(0, func() {
		for i := 1; i < sites; i++ {
			n.Send(0, site(i), "bcast", i)
		}
	})
	var hopDone sim.Time
	k.Spawn("hopper", func(p *sim.Proc) {
		if err := n.Hop(p, site(sites-1), 0); err != nil {
			t.Errorf("hop out: %v", err)
			return
		}
		if err := n.Hop(p, 0, site(sites-1)); err != nil {
			t.Errorf("hop back: %v", err)
			return
		}
		hopDone = k.Now()
	})
	k.Run()
	if len(got) != sites-1 {
		t.Fatalf("broadcast reached %d sites, want %d", len(got), sites-1)
	}
	for i, at := range got {
		if at != sim.Time(3*sim.Millisecond) {
			t.Fatalf("site %d received at %v, want 3ms", i, at)
		}
	}
	if hopDone != sim.Time(6*sim.Millisecond) {
		t.Fatalf("round trip finished at %v, want 6ms", hopDone)
	}
	if n.Sent != sites-1+2 {
		t.Fatalf("Sent = %d, want %d", n.Sent, sites-1+2)
	}
	n.Shutdown()
	k.Run()
	if k.Live() != 0 {
		t.Fatalf("%d live processes after shutdown", k.Live())
	}
}
