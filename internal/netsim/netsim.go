// Package netsim simulates the distributed environment of the paper's
// prototyping environment: a Message Server per site listening on a
// well-known port, with messages placed on the destination's queue after
// a communication delay, plus a synchronous hop primitive for
// rendezvous-style interactions. Intra-site communication does not go
// through the message server (processes exchange directly), matching the
// paper.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/metrics"
	"rtlock/internal/sim"
)

// ErrSiteDown unblocks a sender whose destination site is not
// operational — the paper's "if the receiving site is not operational, a
// time-out mechanism will unblock the sender process".
var ErrSiteDown = errors.New("netsim: destination site is down")

// Message is one inter-site message.
type Message struct {
	From, To    db.SiteID
	Port        string
	Payload     any
	SentAt      sim.Time
	DeliveredAt sim.Time
}

// Handler consumes a delivered message. Handlers run in the destination
// message server's process context and must not block for long; work
// that waits (lock acquisition, CPU) should be spawned into its own
// process.
type Handler func(msg Message)

// FaultInjector decides per-message fates for the fault-injection
// subsystem (internal/faults). Deliveries is consulted once per
// inter-site message, in deterministic kernel order: nil means the
// message is dropped, otherwise each entry is one delivered copy's
// extra delay (a single zero entry is a normal delivery).
type FaultInjector interface {
	Deliveries(now sim.Time, from, to db.SiteID) []sim.Duration
}

// Drop reasons recorded in KMsgDrop's B field.
const (
	// DropDown: the destination (or source) site was down.
	DropDown int64 = 1
	// DropCut: the link was cut by a partition.
	DropCut int64 = 2
	// DropFault: the fault injector rolled a message loss.
	DropFault int64 = 3
)

// Network connects the sites and counts traffic. A zero delay still
// defers delivery through the event queue, preserving deterministic
// ordering. The default is a fully connected network with a uniform
// delay; NewNetworkTopology accepts ring, star, or custom interconnects.
type Network struct {
	k        *sim.Kernel
	delay    sim.Duration
	topo     *Topology
	servers  map[db.SiteID]*Server
	down     map[db.SiteID]bool
	cut      map[[2]db.SiteID]int
	injector FaultInjector

	// Timeout is how long a synchronous sender waits before a down
	// destination unblocks it with ErrSiteDown (zero picks a default
	// of 4× the path delay plus 10ms).
	Timeout sim.Duration

	// Sent counts all inter-site messages (intra-site sends are free
	// and uncounted, as in the paper).
	Sent int
	// DroppedDown counts messages discarded because an endpoint site
	// was down (at send or delivery time).
	DroppedDown int
	// DroppedCut counts messages discarded because the link was cut
	// by a partition.
	DroppedCut int
	// DroppedFault counts messages the fault injector dropped.
	DroppedFault int
	// Duplicated counts extra copies the fault injector delivered.
	Duplicated int

	// Probe handles, cached at construction (no-ops without a
	// registry). Per-link latency histograms are looked up per delivery
	// because their label set depends on the endpoints.
	mSent      sim.Counter
	mDelivered sim.Counter
	mDup       sim.Counter
	mDropDown  sim.Counter
	mDropCut   sim.Counter
	mDropFault sim.Counter
	mInflight  sim.Gauge
}

// NewNetwork returns a fully connected network with the given inter-site
// delay.
func NewNetwork(k *sim.Kernel, delay sim.Duration) *Network {
	n := &Network{k: k, delay: delay, servers: make(map[db.SiteID]*Server), down: make(map[db.SiteID]bool), cut: make(map[[2]db.SiteID]int)}
	n.initProbes()
	return n
}

// NewNetworkTopology returns a network whose pairwise delays come from
// the topology.
func NewNetworkTopology(k *sim.Kernel, topo *Topology) *Network {
	n := &Network{k: k, topo: topo, servers: make(map[db.SiteID]*Server), down: make(map[db.SiteID]bool), cut: make(map[[2]db.SiteID]int)}
	n.initProbes()
	return n
}

func (n *Network) initProbes() {
	m := n.k.Metrics()
	n.mSent = m.Counter("net_msgs_sent_total", "Inter-site messages put on the wire (including hops).")
	n.mDelivered = m.Counter("net_msgs_delivered_total", "Messages delivered to a site's message server.")
	n.mDup = m.Counter("net_msgs_duplicated_total", "Extra message copies the fault injector delivered.")
	n.mDropDown = m.Counter("net_msgs_dropped_total", "Messages lost in transit, by reason.", metrics.L("reason", "down"))
	n.mDropCut = m.Counter("net_msgs_dropped_total", "Messages lost in transit, by reason.", metrics.L("reason", "cut"))
	n.mDropFault = m.Counter("net_msgs_dropped_total", "Messages lost in transit, by reason.", metrics.L("reason", "fault"))
	n.mInflight = m.Gauge("net_inflight", "Asynchronous message copies currently in transit.")
}

// observeLatency feeds one delivered copy's transit time to the
// per-link latency histogram.
func (n *Network) observeLatency(from, to db.SiteID, d sim.Duration) {
	n.k.Metrics().Histogram("net_latency_ticks", "Message transit times per directed link, in ticks.",
		nil, metrics.L("link", fmt.Sprintf("%d->%d", from, to))).Observe(int64(d))
}

// SetDown marks a site as non-operational (or back up). Messages
// delivered to a down site are dropped; synchronous hops toward it time
// out with ErrSiteDown.
func (n *Network) SetDown(site db.SiteID, down bool) { n.down[site] = down }

// Down reports whether a site is non-operational.
func (n *Network) Down(site db.SiteID) bool { return n.down[site] }

// SetInjector installs (or, with nil, removes) the per-message fault
// source. A nil injector is the fault-free fast path: no fate rolls,
// no extra records.
func (n *Network) SetInjector(inj FaultInjector) { n.injector = inj }

// SetCut opens or closes a symmetric cut on the link between two sites
// (both directions). Cuts nest: overlapping partitions each add one
// layer and the link heals when the last layer lifts.
func (n *Network) SetCut(a, b db.SiteID, cut bool) {
	if a == b {
		return
	}
	if b < a {
		a, b = b, a
	}
	key := [2]db.SiteID{a, b}
	if cut {
		n.cut[key]++
		return
	}
	if n.cut[key] > 0 {
		n.cut[key]--
	}
	if n.cut[key] == 0 {
		delete(n.cut, key)
	}
}

// Cut reports whether the link between two sites is severed by a
// partition.
func (n *Network) Cut(a, b db.SiteID) bool {
	if a == b {
		return false
	}
	if b < a {
		a, b = b, a
	}
	return n.cut[[2]db.SiteID{a, b}] > 0
}

// Reachable reports whether a message from one site can currently
// arrive at the other: both endpoints up and the link uncut.
func (n *Network) Reachable(from, to db.SiteID) bool {
	return !n.down[from] && !n.down[to] && !n.Cut(from, to)
}

// Delay returns the one-way communication delay between two sites.
func (n *Network) Delay(from, to db.SiteID) sim.Duration {
	if from == to {
		return 0
	}
	if n.topo != nil {
		return n.topo.Delay(from, to)
	}
	return n.delay
}

// Server returns (creating on first use) the message server of a site.
func (n *Network) Server(site db.SiteID) *Server {
	s, ok := n.servers[site]
	if !ok {
		s = newServer(n.k, site)
		n.servers[site] = s
	}
	return s
}

// Send queues a message for delivery to the destination site's message
// server after the communication delay. Intra-site sends dispatch
// directly (still via the event queue, so ordering stays deterministic).
// Inter-site messages pass the fault path: a down endpoint, a cut link,
// or an injected fault can drop (or duplicate, or delay) the message,
// each loss journaled as a KMsgDrop record.
func (n *Network) Send(from, to db.SiteID, port string, payload any) {
	msg := Message{From: from, To: to, Port: port, Payload: payload, SentAt: n.k.Now()}
	if from != to {
		n.Sent++
		n.mSent.Inc()
	}
	n.k.Journal().Append(int64(n.k.Now()), journal.KMsgSend, int32(from), 0, 0, int64(to), 0, port)
	d := n.Delay(from, to)
	if from != to {
		switch {
		case n.down[from]:
			// A crashed source never gets the message onto the wire.
			n.dropMsg(from, to, DropDown, port)
			return
		case n.Cut(from, to):
			n.dropMsg(from, to, DropCut, port)
			return
		}
		if n.injector != nil {
			fates := n.injector.Deliveries(n.k.Now(), from, to)
			if len(fates) == 0 {
				n.dropMsg(from, to, DropFault, port)
				return
			}
			if len(fates) > 1 {
				n.Duplicated += len(fates) - 1
				n.mDup.Add(int64(len(fates) - 1))
				n.k.Journal().Append(int64(n.k.Now()), journal.KMsgDup, int32(from), 0, 0, int64(to), int64(len(fates)), port)
			}
			for _, extra := range fates {
				n.deliverAfter(msg, d+extra)
			}
			return
		}
	}
	n.deliverAfter(msg, d)
}

// deliverAfter schedules one copy's arrival, re-checking liveness and
// partition state at delivery time: a message in flight toward a site
// that goes down (or across a link that gets cut) is lost, and the loss
// is journaled rather than silent.
func (n *Network) deliverAfter(msg Message, d sim.Duration) {
	from, to := msg.From, msg.To
	n.mInflight.Add(1)
	n.k.After(d, func() {
		n.mInflight.Add(-1)
		if n.down[to] {
			n.dropMsg(from, to, DropDown, msg.Port)
			return
		}
		if from != to && n.Cut(from, to) {
			n.dropMsg(from, to, DropCut, msg.Port)
			return
		}
		msg.DeliveredAt = n.k.Now()
		n.mDelivered.Inc()
		if from != to {
			n.observeLatency(from, to, msg.DeliveredAt.Sub(msg.SentAt))
		}
		n.k.Journal().Append(int64(n.k.Now()), journal.KMsgRecv, int32(to), 0, 0, int64(from), 0, msg.Port)
		n.Server(to).enqueue(msg)
	})
}

// dropMsg counts and journals one lost message.
func (n *Network) dropMsg(from, to db.SiteID, reason int64, port string) {
	switch reason {
	case DropCut:
		n.DroppedCut++
		n.mDropCut.Inc()
	case DropFault:
		n.DroppedFault++
		n.mDropFault.Inc()
	default:
		n.DroppedDown++
		n.mDropDown.Inc()
	}
	n.k.Journal().Append(int64(n.k.Now()), journal.KMsgDrop, int32(to), 0, 0, int64(from), reason, port)
}

// Hop suspends p for the one-way delay between two sites, modeling the
// travel of a synchronous request or reply the process itself waits on.
// It is cancelable like any park (deadline aborts propagate). A hop
// that is lost — destination down or link cut at send or at arrival, or
// an injected drop — blocks for the time-out and returns ErrSiteDown.
func (n *Network) Hop(p *sim.Proc, from, to db.SiteID) error {
	d := n.Delay(from, to)
	if from == to {
		return p.Sleep(d)
	}
	n.Sent++
	n.mSent.Inc()
	n.k.Journal().Append(int64(n.k.Now()), journal.KMsgSend, int32(from), 0, 0, int64(to), 0, "hop")
	timeout := n.Timeout
	if timeout <= 0 {
		timeout = 4*d + 10*sim.Millisecond
	}
	reason := int64(0)
	extra := sim.Duration(0)
	switch {
	case n.down[from] || n.down[to]:
		reason = DropDown
	case n.Cut(from, to):
		reason = DropCut
	default:
		if n.injector != nil {
			// A duplicate is meaningless for a rendezvous; only the
			// first copy's fate applies.
			fates := n.injector.Deliveries(n.k.Now(), from, to)
			if len(fates) == 0 {
				reason = DropFault
			} else {
				extra = fates[0]
			}
		}
	}
	if reason != 0 {
		n.dropMsg(from, to, reason, "hop")
		if err := p.Sleep(timeout); err != nil {
			return err
		}
		return ErrSiteDown
	}
	if err := p.Sleep(d + extra); err != nil {
		return err
	}
	// Re-check at arrival: a site that went down (or a link that was
	// cut) while the hop was in flight loses the request; the sender
	// still burns the rest of its time-out before unblocking.
	if n.down[to] || n.Cut(from, to) {
		reason = DropCut
		if n.down[to] {
			reason = DropDown
		}
		n.dropMsg(from, to, reason, "hop")
		if rem := timeout - d - extra; rem > 0 {
			if err := p.Sleep(rem); err != nil {
				return err
			}
		}
		return ErrSiteDown
	}
	return nil
}

// Shutdown stops every message-server process, in site order: map
// iteration order would otherwise leak into the teardown interleaving
// and break journal byte-identity across runs.
func (n *Network) Shutdown() {
	sites := make([]db.SiteID, 0, len(n.servers))
	for site := range n.servers {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		n.servers[site].stop()
	}
}

// Server is a site's message server: it retrieves messages from its
// queue in arrival order and forwards each to the handler registered on
// the message's port.
type Server struct {
	k        *sim.Kernel
	site     db.SiteID
	handlers map[string]Handler
	queue    []Message
	avail    *sim.Semaphore
	proc     *sim.Proc
	stopped  bool

	// Delivered counts messages dispatched to handlers.
	Delivered int
	// Dropped counts messages that arrived on a port with no handler.
	Dropped int
}

func newServer(k *sim.Kernel, site db.SiteID) *Server {
	s := &Server{
		k:        k,
		site:     site,
		handlers: make(map[string]Handler),
		avail:    sim.NewSemaphore(k, 0),
	}
	s.proc = k.Spawn(fmt.Sprintf("msgserver-%d", site), s.run)
	return s
}

// Handle registers the handler for a port, replacing any previous one.
func (s *Server) Handle(port string, h Handler) { s.handlers[port] = h }

// Site returns the server's site.
func (s *Server) Site() db.SiteID { return s.site }

// QueueLen reports the number of undelivered messages.
func (s *Server) QueueLen() int { return len(s.queue) }

func (s *Server) enqueue(msg Message) {
	if s.stopped {
		s.Dropped++
		return
	}
	s.queue = append(s.queue, msg)
	s.avail.Signal()
}

func (s *Server) run(p *sim.Proc) {
	for {
		if err := s.avail.Wait(p); err != nil {
			return // shutdown
		}
		if len(s.queue) == 0 {
			continue
		}
		// Schedule exploration may reorder delivery: canonical order is
		// arrival order (index 0), but any queued message is a legal
		// next delivery since the network guarantees no ordering across
		// senders anyway.
		i := s.k.Choose(sim.ChooseMsg, len(s.queue))
		msg := s.queue[i]
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		h, ok := s.handlers[msg.Port]
		if !ok {
			s.Dropped++
			continue
		}
		s.Delivered++
		h(msg)
	}
}

func (s *Server) stop() {
	s.stopped = true
	s.proc.Interrupt(sim.ErrShutdown)
}
