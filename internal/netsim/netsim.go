// Package netsim simulates the distributed environment of the paper's
// prototyping environment: a Message Server per site listening on a
// well-known port, with messages placed on the destination's queue after
// a communication delay, plus a synchronous hop primitive for
// rendezvous-style interactions. Intra-site communication does not go
// through the message server (processes exchange directly), matching the
// paper.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
)

// ErrSiteDown unblocks a sender whose destination site is not
// operational — the paper's "if the receiving site is not operational, a
// time-out mechanism will unblock the sender process".
var ErrSiteDown = errors.New("netsim: destination site is down")

// Message is one inter-site message.
type Message struct {
	From, To    db.SiteID
	Port        string
	Payload     any
	SentAt      sim.Time
	DeliveredAt sim.Time
}

// Handler consumes a delivered message. Handlers run in the destination
// message server's process context and must not block for long; work
// that waits (lock acquisition, CPU) should be spawned into its own
// process.
type Handler func(msg Message)

// Network connects the sites and counts traffic. A zero delay still
// defers delivery through the event queue, preserving deterministic
// ordering. The default is a fully connected network with a uniform
// delay; NewNetworkTopology accepts ring, star, or custom interconnects.
type Network struct {
	k       *sim.Kernel
	delay   sim.Duration
	topo    *Topology
	servers map[db.SiteID]*Server
	down    map[db.SiteID]bool

	// Timeout is how long a synchronous sender waits before a down
	// destination unblocks it with ErrSiteDown (zero picks a default
	// of 4× the path delay plus 10ms).
	Timeout sim.Duration

	// Sent counts all inter-site messages (intra-site sends are free
	// and uncounted, as in the paper).
	Sent int
	// DroppedDown counts messages discarded because the destination
	// was down at delivery time.
	DroppedDown int
}

// NewNetwork returns a fully connected network with the given inter-site
// delay.
func NewNetwork(k *sim.Kernel, delay sim.Duration) *Network {
	return &Network{k: k, delay: delay, servers: make(map[db.SiteID]*Server), down: make(map[db.SiteID]bool)}
}

// NewNetworkTopology returns a network whose pairwise delays come from
// the topology.
func NewNetworkTopology(k *sim.Kernel, topo *Topology) *Network {
	return &Network{k: k, topo: topo, servers: make(map[db.SiteID]*Server), down: make(map[db.SiteID]bool)}
}

// SetDown marks a site as non-operational (or back up). Messages
// delivered to a down site are dropped; synchronous hops toward it time
// out with ErrSiteDown.
func (n *Network) SetDown(site db.SiteID, down bool) { n.down[site] = down }

// Down reports whether a site is non-operational.
func (n *Network) Down(site db.SiteID) bool { return n.down[site] }

// Delay returns the one-way communication delay between two sites.
func (n *Network) Delay(from, to db.SiteID) sim.Duration {
	if from == to {
		return 0
	}
	if n.topo != nil {
		return n.topo.Delay(from, to)
	}
	return n.delay
}

// Server returns (creating on first use) the message server of a site.
func (n *Network) Server(site db.SiteID) *Server {
	s, ok := n.servers[site]
	if !ok {
		s = newServer(n.k, site)
		n.servers[site] = s
	}
	return s
}

// Send queues a message for delivery to the destination site's message
// server after the communication delay. Intra-site sends dispatch
// directly (still via the event queue, so ordering stays deterministic).
func (n *Network) Send(from, to db.SiteID, port string, payload any) {
	msg := Message{From: from, To: to, Port: port, Payload: payload, SentAt: n.k.Now()}
	if from != to {
		n.Sent++
	}
	n.k.Journal().Append(int64(n.k.Now()), journal.KMsgSend, int32(from), 0, 0, int64(to), 0, port)
	n.k.After(n.Delay(from, to), func() {
		if n.down[to] {
			n.DroppedDown++
			return
		}
		msg.DeliveredAt = n.k.Now()
		n.k.Journal().Append(int64(n.k.Now()), journal.KMsgRecv, int32(to), 0, 0, int64(from), 0, port)
		n.Server(to).enqueue(msg)
	})
}

// Hop suspends p for the one-way delay between two sites, modeling the
// travel of a synchronous request or reply the process itself waits on.
// It is cancelable like any park (deadline aborts propagate). A hop
// toward a down site blocks for the time-out and returns ErrSiteDown.
func (n *Network) Hop(p *sim.Proc, from, to db.SiteID) error {
	d := n.Delay(from, to)
	if from != to {
		n.Sent++
		n.k.Journal().Append(int64(n.k.Now()), journal.KMsgSend, int32(from), 0, 0, int64(to), 0, "hop")
	}
	if from != to && n.down[to] {
		timeout := n.Timeout
		if timeout <= 0 {
			timeout = 4*d + 10*sim.Millisecond
		}
		if err := p.Sleep(timeout); err != nil {
			return err
		}
		return ErrSiteDown
	}
	return p.Sleep(d)
}

// Shutdown stops every message-server process, in site order: map
// iteration order would otherwise leak into the teardown interleaving
// and break journal byte-identity across runs.
func (n *Network) Shutdown() {
	sites := make([]db.SiteID, 0, len(n.servers))
	for site := range n.servers {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		n.servers[site].stop()
	}
}

// Server is a site's message server: it retrieves messages from its
// queue in arrival order and forwards each to the handler registered on
// the message's port.
type Server struct {
	k        *sim.Kernel
	site     db.SiteID
	handlers map[string]Handler
	queue    []Message
	avail    *sim.Semaphore
	proc     *sim.Proc
	stopped  bool

	// Delivered counts messages dispatched to handlers.
	Delivered int
	// Dropped counts messages that arrived on a port with no handler.
	Dropped int
}

func newServer(k *sim.Kernel, site db.SiteID) *Server {
	s := &Server{
		k:        k,
		site:     site,
		handlers: make(map[string]Handler),
		avail:    sim.NewSemaphore(k, 0),
	}
	s.proc = k.Spawn(fmt.Sprintf("msgserver-%d", site), s.run)
	return s
}

// Handle registers the handler for a port, replacing any previous one.
func (s *Server) Handle(port string, h Handler) { s.handlers[port] = h }

// Site returns the server's site.
func (s *Server) Site() db.SiteID { return s.site }

// QueueLen reports the number of undelivered messages.
func (s *Server) QueueLen() int { return len(s.queue) }

func (s *Server) enqueue(msg Message) {
	if s.stopped {
		s.Dropped++
		return
	}
	s.queue = append(s.queue, msg)
	s.avail.Signal()
}

func (s *Server) run(p *sim.Proc) {
	for {
		if err := s.avail.Wait(p); err != nil {
			return // shutdown
		}
		if len(s.queue) == 0 {
			continue
		}
		msg := s.queue[0]
		s.queue = s.queue[1:]
		h, ok := s.handlers[msg.Port]
		if !ok {
			s.Dropped++
			continue
		}
		s.Delivered++
		h(msg)
	}
}

func (s *Server) stop() {
	s.stopped = true
	s.proc.Interrupt(sim.ErrShutdown)
}
