package place

import (
	"strings"
	"testing"
)

// TestRangeMatchesHistoricalLayout pins the range partitioner to the
// historical db.Catalog formula: contiguous ranges, the first
// objects%sites sites one object larger.
func TestRangeMatchesHistoricalLayout(t *testing.T) {
	for _, tc := range []struct{ sites, objects int }{
		{1, 1}, {3, 200}, {3, 9}, {4, 10}, {16, 200}, {5, 5}, {7, 200},
	} {
		m, err := NewSharded(tc.sites, tc.objects, RangePartition)
		if err != nil {
			t.Fatal(err)
		}
		per := tc.objects / tc.sites
		extra := tc.objects % tc.sites
		prev := 0
		counts := make([]int, tc.sites)
		for obj := 0; obj < tc.objects; obj++ {
			s := m.Primary(obj)
			if s < prev {
				t.Fatalf("sites=%d objects=%d: primaries not contiguous at obj %d", tc.sites, tc.objects, obj)
			}
			prev = s
			counts[s]++
		}
		for s, n := range counts {
			want := per
			if s < extra {
				want++
			}
			if n != want {
				t.Errorf("sites=%d objects=%d: site %d holds %d primaries, want %d", tc.sites, tc.objects, s, n, want)
			}
		}
	}
}

// TestHashPartitionDeterministicAndInRange checks the hash partitioner
// stays in range and is a pure function of (obj, sites).
func TestHashPartitionDeterministicAndInRange(t *testing.T) {
	a, err := NewSharded(16, 500, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSharded(16, 500, HashPartition)
	seen := make(map[int]int)
	for obj := 0; obj < 500; obj++ {
		s := a.Primary(obj)
		if s < 0 || s >= 16 {
			t.Fatalf("obj %d: primary %d out of range", obj, s)
		}
		if b.Primary(obj) != s {
			t.Fatalf("obj %d: hash placement not deterministic", obj)
		}
		seen[s]++
	}
	if len(seen) < 12 {
		t.Errorf("hash partitioner used only %d of 16 sites", len(seen))
	}
}

// TestReplicaSets checks replica counts, primary-first ordering, and
// per-policy shapes.
func TestReplicaSets(t *testing.T) {
	full, err := NewFull(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Replicas(7); len(got) != 4 || got[0] != full.Primary(7) {
		t.Fatalf("full replicas = %v, want all 4 sites primary-first", got)
	}
	sh, _ := NewSharded(4, 20, RangePartition)
	if got := sh.Replicas(7); len(got) != 1 || got[0] != sh.Primary(7) {
		t.Fatalf("sharded replicas = %v, want primary only", got)
	}
	q, err := NewQuorum(5, 20, RangePartition, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for obj := 0; obj < 20; obj++ {
		reps := q.Replicas(obj)
		if len(reps) != 3 {
			t.Fatalf("obj %d: %d replicas, want 3", obj, len(reps))
		}
		if reps[0] != q.Primary(obj) {
			t.Fatalf("obj %d: replica set %v not primary-first", obj, reps)
		}
		dup := make(map[int]bool)
		for _, s := range reps {
			if s < 0 || s >= 5 || dup[s] {
				t.Fatalf("obj %d: bad replica set %v", obj, reps)
			}
			dup[s] = true
		}
	}
}

// TestQuorumValidation pins the constructor's rejection cases.
func TestQuorumValidation(t *testing.T) {
	cases := []struct {
		k, r, w int
		want    string
	}{
		{4, 2, 2, "place: quorums R=2 W=2 do not intersect over K=4 replicas (need R+W > K)"},
		{5, 2, 2, "place: replica count 5 out of range [1,4]"},
		{0, 1, 1, "place: replica count 0 out of range [1,4]"},
		{3, 0, 2, "place: read quorum 0 out of range [1,3]"},
		{3, 2, 4, "place: write quorum 4 out of range [1,3]"},
	}
	for _, tc := range cases {
		_, err := NewQuorum(4, 10, RangePartition, tc.k, tc.r, tc.w)
		if err == nil || err.Error() != tc.want {
			t.Errorf("NewQuorum(k=%d,r=%d,w=%d) err = %v, want %q", tc.k, tc.r, tc.w, err, tc.want)
		}
	}
	if _, err := NewQuorum(4, 10, RangePartition, 3, 2, 2); err != nil {
		t.Errorf("valid quorum rejected: %v", err)
	}
}

// TestPolicyStrings pins canonical names and ParsePolicy round trips.
func TestPolicyStrings(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("ParsePolicy(bogus) err = %v", err)
	}
	q, _ := NewQuorum(5, 20, HashPartition, 3, 2, 2)
	if q.String() != "quorum(hash,k=3,r=2,w=2)" {
		t.Errorf("quorum String = %q", q.String())
	}
	full, _ := NewFull(3, 9)
	if full.String() != "full" {
		t.Errorf("full String = %q", full.String())
	}
}
