// Package place owns the object→site mapping and replica policy of the
// distributed database. The paper's evaluation stops at three fully
// interconnected, fully replicated sites; this package makes placement a
// first-class axis so site count and replication structure can be swept
// like any other parameter. One interface covers the spectrum:
//
//   - Full replication: every site holds every object (the paper's
//     local-ceiling configuration).
//   - Primary-copy sharding: each object lives at exactly one primary,
//     range- or hash-partitioned; writers spanning shards need 2PC.
//   - Quorum replication: K replicas per object with configurable
//     read/write quorums R and W; R+W > K guarantees every read quorum
//     intersects the latest write quorum.
//   - Primary-only: sharded primaries reached by direct RPC with no
//     distributed locking or 2PC — the uncoordinated baseline whose
//     comparison against the coordinated modes yields the consistency
//     tax.
//
// The package is deliberately free of simulation dependencies (plain
// ints for sites and objects) so db, dist, and workload can all build on
// it without cycles.
package place

import "fmt"

// Policy selects the replication/placement mode.
type Policy int

const (
	// Full replicates every object at every site; site Primary(obj)
	// still designates the primary copy (the update home).
	Full Policy = 1 + iota
	// Sharded stores each object only at its primary site.
	Sharded
	// Quorum stores each object at ReplicaCount consecutive sites
	// starting from the primary; reads and writes run quorum rounds.
	Quorum
	// PrimaryOnly is the no-coordination baseline: sharded primaries,
	// direct RPC, no distributed locking, no 2PC. Serializability is
	// waived by construction.
	PrimaryOnly
)

// String returns the canonical lower-case name used in journal config
// keys, spec files, and command-line flags.
func (p Policy) String() string {
	switch p {
	case Full:
		return "full"
	case Sharded:
		return "shard"
	case Quorum:
		return "quorum"
	case PrimaryOnly:
		return "primary"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy inverts String, accepting the canonical names.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "full":
		return Full, nil
	case "shard", "sharded":
		return Sharded, nil
	case "quorum":
		return Quorum, nil
	case "primary", "primary-only":
		return PrimaryOnly, nil
	}
	return 0, fmt.Errorf("place: unknown policy %q (want full, shard, quorum, or primary)", s)
}

// Policies lists every policy in canonical sweep order.
func Policies() []Policy { return []Policy{Full, Sharded, Quorum, PrimaryOnly} }

// Partitioner selects how primaries are assigned to sites.
type Partitioner int

const (
	// RangePartition assigns contiguous, nearly equal object ranges:
	// the first objects%sites sites hold one extra object each. This
	// reproduces the historical db.Catalog layout exactly, so existing
	// journals stay byte-identical.
	RangePartition Partitioner = iota
	// HashPartition scatters primaries with a fixed multiplicative
	// hash, decorrelating an object's index from its home site.
	HashPartition
)

func (p Partitioner) String() string {
	if p == HashPartition {
		return "hash"
	}
	return "range"
}

// Map is the placement contract: a deterministic, immutable mapping from
// objects to their primary site and replica set.
type Map interface {
	// Policy identifies the replication mode.
	Policy() Policy
	// Sites is the number of sites in the system.
	Sites() int
	// Objects is the number of data objects.
	Objects() int
	// Primary returns the site holding the primary copy of obj.
	// Out-of-range objects map to site 0, matching the historical
	// Catalog behavior.
	Primary(obj int) int
	// Replicas returns every site holding a copy of obj, primary
	// first, in deterministic order. The caller must not mutate the
	// result of a shared Map concurrently; a fresh slice is returned
	// on every call.
	Replicas(obj int) []int
	// ReplicaCount is the number of copies per object (K).
	ReplicaCount() int
	// ReadQuorum is the number of replicas a read must reach (R);
	// 1 for every non-quorum policy.
	ReadQuorum() int
	// WriteQuorum is the number of replicas a write must reach (W);
	// 1 for every non-quorum policy (the primary).
	WriteQuorum() int
	// String renders the canonical description used in journal config
	// keys, e.g. "quorum(range,k=3,r=2,w=2)".
	String() string
}

// mapping is the single concrete Map; the constructors differ only in
// validation and derived fields.
type mapping struct {
	policy   Policy
	part     Partitioner
	sites    int
	objects  int
	replicas int // K
	readQ    int // R
	writeQ   int // W
}

func (m *mapping) Policy() Policy    { return m.policy }
func (m *mapping) Sites() int        { return m.sites }
func (m *mapping) Objects() int      { return m.objects }
func (m *mapping) ReplicaCount() int { return m.replicas }
func (m *mapping) ReadQuorum() int   { return m.readQ }
func (m *mapping) WriteQuorum() int  { return m.writeQ }

// Primary implements the partitioner. The range branch reproduces the
// historical db.Catalog formula bit for bit.
func (m *mapping) Primary(obj int) int {
	if obj < 0 || obj >= m.objects {
		return 0
	}
	if m.part == HashPartition {
		// Fibonacci hashing: multiply by the golden-ratio constant and
		// take the top bits via modulo. Deterministic across platforms
		// (pure uint64 arithmetic).
		h := (uint64(obj) + 1) * 0x9E3779B97F4A7C15
		return int(h % uint64(m.sites))
	}
	per := m.objects / m.sites
	extra := m.objects % m.sites
	// The first `extra` sites hold per+1 objects each.
	if obj < extra*(per+1) {
		return obj / (per + 1)
	}
	return extra + (obj-extra*(per+1))/per
}

// Replicas returns primary-first replica sets: all sites for Full, the
// primary alone for Sharded/PrimaryOnly, and K consecutive sites
// (wrapping) for Quorum.
func (m *mapping) Replicas(obj int) []int {
	p := m.Primary(obj)
	out := make([]int, 0, m.replicas)
	switch m.policy {
	case Full:
		out = append(out, p)
		for s := 0; s < m.sites; s++ {
			if s != p {
				out = append(out, s)
			}
		}
	case Quorum:
		for i := 0; i < m.replicas; i++ {
			out = append(out, (p+i)%m.sites)
		}
	default: // Sharded, PrimaryOnly
		out = append(out, p)
	}
	return out
}

func (m *mapping) String() string {
	switch m.policy {
	case Quorum:
		return fmt.Sprintf("quorum(%s,k=%d,r=%d,w=%d)", m.part, m.replicas, m.readQ, m.writeQ)
	case Sharded:
		return fmt.Sprintf("shard(%s)", m.part)
	case PrimaryOnly:
		return fmt.Sprintf("primary(%s)", m.part)
	default:
		return "full"
	}
}

func checkSize(sites, objects int) error {
	if sites < 1 {
		return fmt.Errorf("place: sites must be >= 1, got %d", sites)
	}
	if objects < 1 {
		return fmt.Errorf("place: objects must be >= 1, got %d", objects)
	}
	return nil
}

// NewFull returns the fully replicated placement (range primaries, all
// sites as replicas) — the paper's local-ceiling configuration.
func NewFull(sites, objects int) (Map, error) {
	if err := checkSize(sites, objects); err != nil {
		return nil, err
	}
	return &mapping{policy: Full, part: RangePartition, sites: sites, objects: objects,
		replicas: sites, readQ: 1, writeQ: 1}, nil
}

// NewSharded returns the primary-copy sharded placement: one copy per
// object, at its range- or hash-partitioned primary.
func NewSharded(sites, objects int, part Partitioner) (Map, error) {
	if err := checkSize(sites, objects); err != nil {
		return nil, err
	}
	return &mapping{policy: Sharded, part: part, sites: sites, objects: objects,
		replicas: 1, readQ: 1, writeQ: 1}, nil
}

// NewQuorum returns the quorum-replicated placement: K consecutive
// replicas from the primary, read quorum R and write quorum W. The
// intersection requirement R+W > K is enforced here so a valid Map
// cannot express a non-intersecting quorum system.
func NewQuorum(sites, objects int, part Partitioner, k, r, w int) (Map, error) {
	if err := checkSize(sites, objects); err != nil {
		return nil, err
	}
	if k < 1 || k > sites {
		return nil, fmt.Errorf("place: replica count %d out of range [1,%d]", k, sites)
	}
	if r < 1 || r > k {
		return nil, fmt.Errorf("place: read quorum %d out of range [1,%d]", r, k)
	}
	if w < 1 || w > k {
		return nil, fmt.Errorf("place: write quorum %d out of range [1,%d]", w, k)
	}
	if r+w <= k {
		return nil, fmt.Errorf("place: quorums R=%d W=%d do not intersect over K=%d replicas (need R+W > K)", r, w, k)
	}
	return &mapping{policy: Quorum, part: part, sites: sites, objects: objects,
		replicas: k, readQ: r, writeQ: w}, nil
}

// NewPrimaryOnly returns the uncoordinated baseline placement: sharded
// primaries with direct RPC and no 2PC.
func NewPrimaryOnly(sites, objects int, part Partitioner) (Map, error) {
	if err := checkSize(sites, objects); err != nil {
		return nil, err
	}
	return &mapping{policy: PrimaryOnly, part: part, sites: sites, objects: objects,
		replicas: 1, readQ: 1, writeQ: 1}, nil
}
