package metrics

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's final state in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series sorted by label key, histograms expanded into cumulative
// _bucket/_sum/_count series. The output is a pure function of the
// registry contents, so identical runs render byte-identical text.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		sers := make([]*series, len(f.order))
		copy(sers, f.order)
		sort.Slice(sers, func(i, j int) bool { return sers[i].key < sers[j].key })
		for _, s := range sers {
			if f.typ == histogramType {
				writePromHistogram(&b, f, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %d\n", f.name, s.key, s.val)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writePromHistogram expands one histogram series into cumulative
// buckets plus the _sum and _count samples.
func writePromHistogram(b *bytes.Buffer, f *family, s *series) {
	cum := int64(0)
	for i, ub := range f.bounds {
		cum += s.buckets[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLE(s.key, strconv.FormatInt(ub, 10)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLE(s.key, "+Inf"), s.count)
	fmt.Fprintf(b, "%s_sum%s %d\n", f.name, s.key, s.sum)
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.key, s.count)
}

// mergeLE appends the le label to an already-rendered label key. The
// series keys are canonical (sorted), and "le" is appended last, which
// the text format permits: label order within a sample is free.
func mergeLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

// Prometheus returns the exposition text as a byte slice.
func (r *Registry) Prometheus() []byte {
	var b bytes.Buffer
	_ = r.WritePrometheus(&b)
	return b.Bytes()
}
