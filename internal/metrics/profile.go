package metrics

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"rtlock/internal/journal"
)

// The lock-contention profiler derives per-object hold/wait breakdowns
// and blocking-chain stacks from the replay journal rather than from
// live probes: the journal already carries every lock request, grant,
// block (with blamed holders), and release in deterministic order, so
// the profile is exact, adds zero cost to the simulation, and two
// identical runs profile byte-identically.

// ObjectProfile aggregates one (site, object) pair's lock behavior.
type ObjectProfile struct {
	Site int32
	Obj  int32
	// Requests/Grants/Releases count lock operations on the object.
	Requests, Grants, Releases int64
	// Blocks counts blocking events (one per waiter per block, however
	// many holders were blamed).
	Blocks int64
	// HoldTicks is the total virtual time locks on the object were
	// held; WaitTicks the total time transactions sat blocked on it.
	HoldTicks, WaitTicks int64
	// MaxWaitTicks is the longest single blocked interval.
	MaxWaitTicks int64
	// InversionTicks is the waiting time during which the first blamed
	// holder had a later deadline than the waiter — priority-inversion
	// exposure in the paper's earliest-deadline priority order.
	InversionTicks int64
}

// CauseCount is one abort/restart cause tally.
type CauseCount struct {
	Cause string
	Count int64
}

// StackSample is one folded blocking-chain stack with its accumulated
// waiting time: "tx<holder>;tx<w1>@obj<o1>;…" rooted at the holding
// transaction, leaf at the blocked one, pprof-folded so flamegraph
// tooling consumes it directly.
type StackSample struct {
	Stack string
	Ticks int64
}

// RecoveryProfile aggregates crash-recovery behavior from the replay
// journal: how often sites went down and for how long, how much
// prepared-vote state WAL redo reinstated, and how many in-doubt
// resolution retries ran or exhausted their budget. All zeros for runs
// without faults.
type RecoveryProfile struct {
	// Crashes and Recoveries count site outages and completed
	// recoveries.
	Crashes, Recoveries int64
	// DownTicks is the total virtual time sites spent crashed, summed
	// over closed crash-recover pairs; MaxDownTicks the longest single
	// outage.
	DownTicks, MaxDownTicks int64
	// RedoVotes counts prepared votes reinstated by WAL redo.
	RedoVotes int64
	// Retries and RetryExhausted count 2PC retry attempts and retry
	// budgets that ran dry.
	Retries, RetryExhausted int64
}

// Profile is the journal-derived contention report.
type Profile struct {
	// TopK bounds Objects; every object is still aggregated into the
	// totals.
	TopK int
	// Objects holds the K hottest objects by waiting time (ties broken
	// by holding time, then site and object id).
	Objects []ObjectProfile
	// Stacks are the folded blocking chains, sorted by stack string.
	Stacks []StackSample
	// Causes tallies abort/restart causes (wound, restart,
	// deadline_miss, site_crash), sorted by cause.
	Causes []CauseCount
	// ChainMax is the longest blocking chain observed (in transactions,
	// including the holder).
	ChainMax int
	// Recovery summarizes crash-recovery activity (faulted runs only).
	Recovery RecoveryProfile
	// Totals across every object.
	TotalWaitTicks, TotalHoldTicks, TotalInversionTicks int64
	TotalObjects                                        int
}

type objKey struct {
	site int32
	obj  int32
}

type holdKey struct {
	site int32
	tx   int64
	obj  int32
}

// waitState is one transaction's open blocked interval.
type waitState struct {
	site     int32
	obj      int32
	start    int64
	blamed   int64 // first blamed holder, -1 when anonymous
	inverted bool
	stack    string
	depth    int
}

// FromJournal builds the contention profile from a replay journal. A
// nil or empty journal yields an empty profile. topK bounds the object
// table (<= 0 picks 10).
func FromJournal(j *journal.Journal, topK int) *Profile {
	if topK <= 0 {
		topK = 10
	}
	p := &Profile{TopK: topK}
	if j == nil {
		return p
	}
	objs := make(map[objKey]*ObjectProfile)
	holds := make(map[holdKey]int64)
	waits := make(map[int64]*waitState) // by waiter tx id
	deadlines := make(map[int64]int64)
	stacks := make(map[string]int64)
	causes := make(map[string]int64)
	crashAt := make(map[int32]int64) // open outages by site

	obj := func(site, o int32) *ObjectProfile {
		k := objKey{site: site, obj: o}
		op, ok := objs[k]
		if !ok {
			op = &ObjectProfile{Site: site, Obj: o}
			objs[k] = op
		}
		return op
	}
	closeWait := func(ws *waitState, tx, at int64) {
		elapsed := at - ws.start
		if elapsed < 0 {
			elapsed = 0
		}
		op := obj(ws.site, ws.obj)
		op.WaitTicks += elapsed
		if elapsed > op.MaxWaitTicks {
			op.MaxWaitTicks = elapsed
		}
		if ws.inverted {
			op.InversionTicks += elapsed
		}
		stacks[ws.stack] += elapsed
		delete(waits, tx)
	}

	for _, rec := range j.Records() {
		switch rec.Kind {
		case journal.KArrive:
			if _, ok := deadlines[rec.Tx]; !ok {
				deadlines[rec.Tx] = rec.A
			}
		case journal.KLockRequest:
			obj(rec.Site, rec.Obj).Requests++
		case journal.KLockGrant:
			obj(rec.Site, rec.Obj).Grants++
			holds[holdKey{site: rec.Site, tx: rec.Tx, obj: rec.Obj}] = rec.At
			if ws, ok := waits[rec.Tx]; ok && ws.site == rec.Site && ws.obj == rec.Obj {
				closeWait(ws, rec.Tx, rec.At)
			}
		case journal.KLockBlock:
			if ws, ok := waits[rec.Tx]; ok {
				if ws.site == rec.Site && ws.obj == rec.Obj && ws.start == rec.At {
					break // additional blamed holder of the same event
				}
				// A new block before the old one closed (restart path):
				// close the stale interval at its own start.
				closeWait(ws, rec.Tx, rec.At)
			}
			ws := &waitState{site: rec.Site, obj: rec.Obj, start: rec.At, blamed: rec.A}
			ws.inverted = rec.A >= 0 && deadlines[rec.A] > deadlines[rec.Tx]
			ws.stack, ws.depth = foldChain(rec.Tx, rec.Obj, rec.A, waits)
			if ws.depth > p.ChainMax {
				p.ChainMax = ws.depth
			}
			waits[rec.Tx] = ws
			obj(rec.Site, rec.Obj).Blocks++
		case journal.KLockRelease:
			op := obj(rec.Site, rec.Obj)
			op.Releases++
			hk := holdKey{site: rec.Site, tx: rec.Tx, obj: rec.Obj}
			if from, ok := holds[hk]; ok {
				op.HoldTicks += rec.At - from
				delete(holds, hk)
			}
		case journal.KUnregister:
			if ws, ok := waits[rec.Tx]; ok {
				closeWait(ws, rec.Tx, rec.At)
			}
		case journal.KWound:
			causes["wound"]++
		case journal.KRestart:
			causes["restart"]++
		case journal.KDeadlineMiss:
			if rec.Note == "crashed" {
				causes["site_crash"]++
			} else {
				causes["deadline_miss"]++
			}
		case journal.KSiteCrash:
			p.Recovery.Crashes++
			crashAt[rec.Site] = rec.At
		case journal.KSiteRecover:
			p.Recovery.Recoveries++
			if from, ok := crashAt[rec.Site]; ok {
				down := rec.At - from
				p.Recovery.DownTicks += down
				if down > p.Recovery.MaxDownTicks {
					p.Recovery.MaxDownTicks = down
				}
				delete(crashAt, rec.Site)
			}
		case journal.KWALRedo:
			p.Recovery.RedoVotes += rec.A
		case journal.KRetry:
			p.Recovery.Retries++
		case journal.KRetryExhausted:
			p.Recovery.RetryExhausted++
		}
	}

	// Aggregate totals and pick the top K, sorting outside the map
	// range so iteration order cannot leak.
	all := make([]*ObjectProfile, 0, len(objs))
	for _, op := range objs {
		all = append(all, op)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.WaitTicks != b.WaitTicks {
			return a.WaitTicks > b.WaitTicks
		}
		if a.HoldTicks != b.HoldTicks {
			return a.HoldTicks > b.HoldTicks
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Obj < b.Obj
	})
	p.TotalObjects = len(all)
	for _, op := range all {
		p.TotalWaitTicks += op.WaitTicks
		p.TotalHoldTicks += op.HoldTicks
		p.TotalInversionTicks += op.InversionTicks
	}
	if len(all) > topK {
		all = all[:topK]
	}
	for _, op := range all {
		p.Objects = append(p.Objects, *op)
	}

	stackKeys := make([]string, 0, len(stacks))
	for s := range stacks {
		stackKeys = append(stackKeys, s)
	}
	sort.Strings(stackKeys)
	for _, s := range stackKeys {
		if stacks[s] > 0 {
			p.Stacks = append(p.Stacks, StackSample{Stack: s, Ticks: stacks[s]})
		}
	}

	causeKeys := make([]string, 0, len(causes))
	for cause := range causes {
		causeKeys = append(causeKeys, cause)
	}
	sort.Strings(causeKeys)
	for _, cause := range causeKeys {
		p.Causes = append(p.Causes, CauseCount{Cause: cause, Count: causes[cause]})
	}
	return p
}

// foldChain renders the blocking chain for a waiter blamed on holder
// `blamed` as a folded stack rooted at the ultimate holder, following
// transitive waits through the currently open block table. It returns
// the stack and the chain length in transactions.
func foldChain(tx int64, obj int32, blamed int64, waits map[int64]*waitState) (string, int) {
	// Leaf-to-root frames: the waiter, then each blocked transaction on
	// the blame path, then the transaction actually holding a lock.
	frames := []string{fmt.Sprintf("tx%d@obj%d", tx, obj)}
	seen := map[int64]bool{tx: true}
	cur := blamed
	for cur >= 0 && !seen[cur] {
		seen[cur] = true
		ws, ok := waits[cur]
		if !ok {
			frames = append(frames, fmt.Sprintf("tx%d", cur))
			break
		}
		frames = append(frames, fmt.Sprintf("tx%d@obj%d", cur, ws.obj))
		cur = ws.blamed
	}
	if blamed < 0 {
		frames = append(frames, "ceiling")
	}
	var b bytes.Buffer
	for i := len(frames) - 1; i >= 0; i-- {
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(frames[i])
	}
	return b.String(), len(frames)
}

// WriteFolded renders the blocking chains in pprof's folded-stack
// format — `frame;frame;frame ticks` per line, sorted — ready for
// flamegraph tooling.
func (p *Profile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	var b bytes.Buffer
	for _, s := range p.Stacks {
		fmt.Fprintf(&b, "%s %d\n", s.Stack, s.Ticks)
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Folded returns the folded-stack export as a byte slice.
func (p *Profile) Folded() []byte {
	var b bytes.Buffer
	_ = p.WriteFolded(&b)
	return b.Bytes()
}

// String renders the top-K hot-object table and cause tallies as an
// aligned text report.
func (p *Profile) String() string {
	if p == nil {
		return ""
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "lock contention: %d objects contended, wait=%.1fms hold=%.1fms inversion=%.1fms chain<=%d\n",
		p.TotalObjects, float64(p.TotalWaitTicks)/1000, float64(p.TotalHoldTicks)/1000,
		float64(p.TotalInversionTicks)/1000, p.ChainMax)
	if len(p.Objects) > 0 {
		fmt.Fprintf(&b, "%-6s %-6s %8s %8s %8s %12s %12s %12s\n",
			"site", "obj", "reqs", "blocks", "grants", "wait_ms", "hold_ms", "maxwait_ms")
		for _, o := range p.Objects {
			fmt.Fprintf(&b, "%-6d %-6d %8d %8d %8d %12.1f %12.1f %12.1f\n",
				o.Site, o.Obj, o.Requests, o.Blocks, o.Grants,
				float64(o.WaitTicks)/1000, float64(o.HoldTicks)/1000, float64(o.MaxWaitTicks)/1000)
		}
	}
	for _, c := range p.Causes {
		fmt.Fprintf(&b, "cause %-14s %d\n", c.Cause, c.Count)
	}
	if r := p.Recovery; r != (RecoveryProfile{}) {
		fmt.Fprintf(&b, "recovery: crashes=%d recoveries=%d down=%.1fms maxdown=%.1fms redo_votes=%d retries=%d exhausted=%d\n",
			r.Crashes, r.Recoveries, float64(r.DownTicks)/1000, float64(r.MaxDownTicks)/1000,
			r.RedoVotes, r.Retries, r.RetryExhausted)
	}
	return b.String()
}
