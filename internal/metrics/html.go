package metrics

import (
	"bytes"
	"fmt"
	"html/template"
	"io"
	"sort"
)

// The HTML report is a single self-contained page (no scripts, no
// external assets, no timestamps) summarizing a run's metrics and lock
// contention. Because every table is sorted and no ambient state is
// read, identical runs produce byte-identical reports.

type htmlReport struct {
	Title        string
	FinalTime    int64
	Samples      int
	Families     []htmlFamily
	Objects      []htmlObject
	Causes       []CauseCount
	Stacks       []StackSample
	Recovery     *htmlRecovery
	Profile      *Profile
	Timeline     []htmlTimelineRow
	TimelineOmit int // windows elided before the shown tail
}

type htmlTimelineRow struct {
	TimelineRow
	StartMs, EndMs       float64
	MeanMs, P50Ms, P99Ms float64
	LockP50Ms, LockP99Ms float64
	BarPct               int // throughput bar, relative to peak window
}

type htmlRecovery struct {
	RecoveryProfile
	DownMs, MaxDownMs float64
}

type htmlFamily struct {
	Name   string
	Type   string
	Help   string
	Series []htmlSeries
}

type htmlSeries struct {
	Labels string
	Value  string
}

type htmlObject struct {
	ObjectProfile
	WaitMs, HoldMs, MaxWaitMs, InversionMs float64
	BarPct                                 int
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; font-size: 0.9em; }
th { background: #f0f0f0; } td.l, th.l { text-align: left; }
.bar { background: #c33; height: 0.8em; display: inline-block; }
.stack { font-family: monospace; font-size: 0.85em; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p>virtual horizon: {{.FinalTime}} ticks &middot; {{.Samples}} samples</p>
{{if .Profile}}
<h2>Hot objects (top {{.Profile.TopK}} of {{.Profile.TotalObjects}} by waiting time)</h2>
<table>
<tr><th>site</th><th>obj</th><th>requests</th><th>blocks</th><th>wait ms</th><th>hold ms</th><th>max wait ms</th><th>inversion ms</th><th class="l">share</th></tr>
{{range .Objects}}<tr><td>{{.Site}}</td><td>{{.Obj}}</td><td>{{.Requests}}</td><td>{{.Blocks}}</td><td>{{printf "%.1f" .WaitMs}}</td><td>{{printf "%.1f" .HoldMs}}</td><td>{{printf "%.1f" .MaxWaitMs}}</td><td>{{printf "%.1f" .InversionMs}}</td><td class="l"><span class="bar" style="width: {{.BarPct}}px"></span></td></tr>
{{end}}</table>
{{if .Causes}}<h2>Abort / restart causes</h2>
<table><tr><th class="l">cause</th><th>count</th></tr>
{{range .Causes}}<tr><td class="l">{{.Cause}}</td><td>{{.Count}}</td></tr>
{{end}}</table>{{end}}
{{if .Recovery}}<h2>Crash recovery</h2>
<table><tr><th>crashes</th><th>recoveries</th><th>down ms</th><th>max down ms</th><th>redo votes</th><th>2PC retries</th><th>retries exhausted</th></tr>
<tr><td>{{.Recovery.Crashes}}</td><td>{{.Recovery.Recoveries}}</td><td>{{printf "%.1f" .Recovery.DownMs}}</td><td>{{printf "%.1f" .Recovery.MaxDownMs}}</td><td>{{.Recovery.RedoVotes}}</td><td>{{.Recovery.Retries}}</td><td>{{.Recovery.RetryExhausted}}</td></tr>
</table>{{end}}
{{if .Stacks}}<h2>Blocking chains (folded stacks, by waiting time)</h2>
<table><tr><th class="l">chain (holder &rarr; waiter)</th><th>wait ticks</th></tr>
{{range .Stacks}}<tr><td class="l stack">{{.Stack}}</td><td>{{.Ticks}}</td></tr>
{{end}}</table>{{end}}
{{end}}
{{if .Timeline}}<h2>Timeline</h2>
{{if .TimelineOmit}}<p>({{.TimelineOmit}} earlier windows elided; full history in the JSONL/CSV export)</p>{{end}}
<table>
<tr><th>win</th><th>start ms</th><th>end ms</th><th>done</th><th>commit</th><th>miss %</th><th>restarts</th><th>tput/s</th><th>mean ms</th><th>p50 ms</th><th>p99 ms</th><th>lock p50 ms</th><th>lock p99 ms</th><th>net lost</th><th>net dup</th><th>in flight</th><th class="l">load</th></tr>
{{range .Timeline}}<tr><td>{{.Window}}</td><td>{{printf "%.0f" .StartMs}}</td><td>{{printf "%.0f" .EndMs}}</td><td>{{.Processed}}</td><td>{{.Committed}}</td><td>{{printf "%.1f" .MissPct}}</td><td>{{.Restarts}}</td><td>{{printf "%.1f" .Throughput}}</td><td>{{printf "%.2f" .MeanMs}}</td><td>{{printf "%.2f" .P50Ms}}</td><td>{{printf "%.2f" .P99Ms}}</td><td>{{printf "%.2f" .LockP50Ms}}</td><td>{{printf "%.2f" .LockP99Ms}}</td><td>{{.NetLost}}</td><td>{{.NetDup}}</td><td>{{.InFlight}}</td><td class="l"><span class="bar" style="width: {{.BarPct}}px"></span></td></tr>
{{end}}</table>
{{end}}
<h2>Metric families</h2>
{{range .Families}}
<h3>{{.Name}} <small>({{.Type}})</small></h3>
<p>{{.Help}}</p>
<table><tr><th class="l">labels</th><th>value</th></tr>
{{range .Series}}<tr><td class="l">{{if .Labels}}{{.Labels}}{{else}}&mdash;{{end}}</td><td>{{.Value}}</td></tr>
{{end}}</table>
{{end}}
</body>
</html>
`))

// WriteHTML renders the report. reg or prof may be nil; whatever is
// present is reported.
func WriteHTML(w io.Writer, title string, reg *Registry, prof *Profile) error {
	return WriteHTMLWithTimeline(w, title, reg, prof, nil)
}

// htmlTimelineMaxRows bounds the timeline table so long runs do not
// produce megabyte reports; the newest windows are shown.
const htmlTimelineMaxRows = 200

// WriteHTMLWithTimeline renders the report with a windowed-timeline
// section. reg, prof, or rows may be nil/empty; whatever is present is
// reported.
func WriteHTMLWithTimeline(w io.Writer, title string, reg *Registry, prof *Profile, rows []TimelineRow) error {
	rep := htmlReport{Title: title, Profile: prof}
	if len(rows) > htmlTimelineMaxRows {
		rep.TimelineOmit = len(rows) - htmlTimelineMaxRows
		rows = rows[rep.TimelineOmit:]
	}
	if len(rows) > 0 {
		peak := 1.0
		for _, r := range rows {
			if r.Throughput > peak {
				peak = r.Throughput
			}
		}
		for _, r := range rows {
			rep.Timeline = append(rep.Timeline, htmlTimelineRow{
				TimelineRow: r,
				StartMs:     float64(r.Start) / 1000,
				EndMs:       float64(r.End) / 1000,
				MeanMs:      float64(r.MeanResp) / 1000,
				P50Ms:       float64(r.P50Resp) / 1000,
				P99Ms:       float64(r.P99Resp) / 1000,
				LockP50Ms:   float64(r.LockWaitP50) / 1000,
				LockP99Ms:   float64(r.LockWaitP99) / 1000,
				BarPct:      int(r.Throughput * 200 / peak),
			})
		}
	}
	if reg != nil {
		rep.Samples = len(reg.times)
		if rep.Samples > 0 {
			rep.FinalTime = reg.times[rep.Samples-1]
		}
		fams := make([]*family, len(reg.order))
		copy(fams, reg.order)
		sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
		for _, f := range fams {
			hf := htmlFamily{Name: f.name, Type: f.typ.String(), Help: f.help}
			sers := make([]*series, len(f.order))
			copy(sers, f.order)
			sort.Slice(sers, func(i, j int) bool { return sers[i].key < sers[j].key })
			for _, s := range sers {
				v := fmt.Sprintf("%d", s.val)
				if f.typ == histogramType {
					v = fmt.Sprintf("count=%d sum=%d", s.count, s.sum)
				}
				hf.Series = append(hf.Series, htmlSeries{Labels: s.key, Value: v})
			}
			rep.Families = append(rep.Families, hf)
		}
	}
	if prof != nil {
		maxWait := int64(1)
		for _, o := range prof.Objects {
			if o.WaitTicks > maxWait {
				maxWait = o.WaitTicks
			}
		}
		for _, o := range prof.Objects {
			rep.Objects = append(rep.Objects, htmlObject{
				ObjectProfile: o,
				WaitMs:        float64(o.WaitTicks) / 1000,
				HoldMs:        float64(o.HoldTicks) / 1000,
				MaxWaitMs:     float64(o.MaxWaitTicks) / 1000,
				InversionMs:   float64(o.InversionTicks) / 1000,
				BarPct:        int(o.WaitTicks * 200 / maxWait),
			})
		}
		rep.Causes = prof.Causes
		if prof.Recovery != (RecoveryProfile{}) {
			rep.Recovery = &htmlRecovery{
				RecoveryProfile: prof.Recovery,
				DownMs:          float64(prof.Recovery.DownTicks) / 1000,
				MaxDownMs:       float64(prof.Recovery.MaxDownTicks) / 1000,
			}
		}
		// Show the heaviest chains first, bounded so pathological runs
		// do not produce megabyte reports.
		stacks := make([]StackSample, len(prof.Stacks))
		copy(stacks, prof.Stacks)
		sort.Slice(stacks, func(i, j int) bool {
			if stacks[i].Ticks != stacks[j].Ticks {
				return stacks[i].Ticks > stacks[j].Ticks
			}
			return stacks[i].Stack < stacks[j].Stack
		})
		if len(stacks) > 50 {
			stacks = stacks[:50]
		}
		rep.Stacks = stacks
	}
	var b bytes.Buffer
	if err := reportTmpl.Execute(&b, rep); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// HTML returns the report as a byte slice.
func HTML(title string, reg *Registry, prof *Profile) []byte {
	var b bytes.Buffer
	_ = WriteHTML(&b, title, reg, prof)
	return b.Bytes()
}

// HTMLWithTimeline returns the report, timeline section included, as a
// byte slice.
func HTMLWithTimeline(title string, reg *Registry, prof *Profile, rows []TimelineRow) []byte {
	var b bytes.Buffer
	_ = WriteHTMLWithTimeline(&b, title, reg, prof, rows)
	return b.Bytes()
}
