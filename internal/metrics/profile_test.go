package metrics

import (
	"strings"
	"testing"

	"rtlock/internal/journal"
)

// contendedJournal builds a synthetic journal in which low-priority tx1
// holds object 7 while high-priority tx2 waits (a priority inversion),
// and tx3 then waits on tx2 transitively through object 8.
func contendedJournal() *journal.Journal {
	j := journal.New(1, "test")
	j.Append(0, journal.KArrive, 0, 1, -1, 5000, 0, "") // late deadline: low priority
	j.Append(0, journal.KArrive, 0, 2, -1, 1000, 0, "") // early deadline: high priority
	j.Append(0, journal.KArrive, 0, 3, -1, 2000, 0, "")

	j.Append(10, journal.KLockRequest, 0, 1, 7, 0, 0, "")
	j.Append(10, journal.KLockGrant, 0, 1, 7, 0, 0, "")
	j.Append(20, journal.KLockRequest, 0, 2, 7, 0, 0, "")
	j.Append(20, journal.KLockBlock, 0, 2, 7, 1, 0, "") // tx2 waits on holder tx1
	j.Append(30, journal.KLockRequest, 0, 3, 8, 0, 0, "")
	j.Append(30, journal.KLockBlock, 0, 3, 8, 2, 0, "") // tx3 waits on blocked tx2

	j.Append(50, journal.KLockRelease, 0, 1, 7, 0, 0, "")
	j.Append(50, journal.KLockGrant, 0, 2, 7, 0, 0, "") // tx2 waited 30
	j.Append(60, journal.KLockGrant, 0, 3, 8, 0, 0, "") // tx3 waited 30
	j.Append(80, journal.KLockRelease, 0, 2, 7, 0, 0, "")

	j.Append(90, journal.KWound, 0, 1, -1, 0, 0, "")
	j.Append(90, journal.KRestart, 0, 1, -1, 0, 0, "")
	j.Append(95, journal.KDeadlineMiss, 0, 3, -1, 0, 0, "")
	j.Append(99, journal.KDeadlineMiss, 0, 2, -1, 0, 0, "crashed")
	return j
}

func TestFromJournalAggregates(t *testing.T) {
	p := FromJournal(contendedJournal(), 0)
	if len(p.Objects) != 2 {
		t.Fatalf("objects = %d, want 2", len(p.Objects))
	}
	// Object 7 collected the most waiting time and sorts first.
	o := p.Objects[0]
	if o.Obj != 7 {
		t.Fatalf("hottest object = %d, want 7", o.Obj)
	}
	if o.Requests != 2 || o.Grants != 2 || o.Releases != 2 || o.Blocks != 1 {
		t.Errorf("obj7 req/grant/rel/block = %d/%d/%d/%d, want 2/2/2/1",
			o.Requests, o.Grants, o.Releases, o.Blocks)
	}
	if o.WaitTicks != 30 || o.MaxWaitTicks != 30 {
		t.Errorf("obj7 wait=%d max=%d, want 30/30", o.WaitTicks, o.MaxWaitTicks)
	}
	// tx1 held 10..50, tx2 held 50..80.
	if o.HoldTicks != 70 {
		t.Errorf("obj7 hold = %d, want 70", o.HoldTicks)
	}
	// tx2 (deadline 1000) waited on tx1 (deadline 5000): inversion.
	if o.InversionTicks != 30 {
		t.Errorf("obj7 inversion = %d, want 30", o.InversionTicks)
	}
	if p.ChainMax != 3 {
		t.Errorf("chain max = %d, want 3 (tx1 <- tx2 <- tx3)", p.ChainMax)
	}
	if p.TotalObjects != 2 || p.TotalWaitTicks != 60 || p.TotalHoldTicks != 70 {
		t.Errorf("totals objects/wait/hold = %d/%d/%d, want 2/60/70",
			p.TotalObjects, p.TotalWaitTicks, p.TotalHoldTicks)
	}
}

func TestFromJournalStacks(t *testing.T) {
	p := FromJournal(contendedJournal(), 0)
	got := make(map[string]int64)
	for _, s := range p.Stacks {
		got[s.Stack] = s.Ticks
	}
	if got["tx1;tx2@obj7"] != 30 {
		t.Errorf("direct chain = %d, want 30 (stacks: %v)", got["tx1;tx2@obj7"], p.Stacks)
	}
	if got["tx1;tx2@obj7;tx3@obj8"] != 30 {
		t.Errorf("transitive chain = %d, want 30 (stacks: %v)", got["tx1;tx2@obj7;tx3@obj8"], p.Stacks)
	}
	folded := string(p.Folded())
	if !strings.Contains(folded, "tx1;tx2@obj7;tx3@obj8 30\n") {
		t.Errorf("folded export missing transitive chain:\n%s", folded)
	}
}

func TestFromJournalCauses(t *testing.T) {
	p := FromJournal(contendedJournal(), 0)
	want := []CauseCount{
		{Cause: "deadline_miss", Count: 1},
		{Cause: "restart", Count: 1},
		{Cause: "site_crash", Count: 1},
		{Cause: "wound", Count: 1},
	}
	if len(p.Causes) != len(want) {
		t.Fatalf("causes = %v, want %v", p.Causes, want)
	}
	for i, c := range p.Causes {
		if c != want[i] {
			t.Errorf("cause[%d] = %v, want %v", i, c, want[i])
		}
	}
}

func TestFromJournalTopK(t *testing.T) {
	p := FromJournal(contendedJournal(), 1)
	if len(p.Objects) != 1 || p.Objects[0].Obj != 7 {
		t.Fatalf("topK=1 objects = %v, want just obj 7", p.Objects)
	}
	if p.TotalObjects != 2 || p.TotalWaitTicks != 60 {
		t.Errorf("totals must cover every object: objects=%d wait=%d", p.TotalObjects, p.TotalWaitTicks)
	}
}

func TestFromJournalNil(t *testing.T) {
	p := FromJournal(nil, 0)
	if p == nil || len(p.Objects) != 0 || len(p.Stacks) != 0 || p.TopK != 10 {
		t.Fatalf("nil journal profile = %+v", p)
	}
	if got := p.String(); !strings.Contains(got, "0 objects contended") {
		t.Errorf("empty profile report: %q", got)
	}
	var none *Profile
	if got := none.Folded(); len(got) != 0 {
		t.Errorf("nil profile Folded: %q", got)
	}
}

// recoveryJournal layers crash-recovery traffic on a journal: two
// outages (one closed, one still open at journal end), a WAL redo, and
// a resolve-retry run that exhausts.
func recoveryJournal() *journal.Journal {
	j := journal.New(1, "test")
	j.Append(100, journal.KSiteCrash, 1, -1, -1, 0, 0, "")
	j.Append(400, journal.KSiteRecover, 1, -1, -1, 0, 0, "")
	j.Append(410, journal.KWALRedo, 1, -1, -1, 2, 0, "")
	j.Append(500, journal.KSiteCrash, 2, -1, -1, 0, 0, "") // never recovers
	j.Append(520, journal.KRetry, 0, 9, -1, 1, 0, "resolve")
	j.Append(560, journal.KRetry, 0, 9, -1, 2, 0, "resolve")
	j.Append(640, journal.KRetryExhausted, 0, 9, -1, 2, 0, "resolve")
	return j
}

func TestFromJournalRecovery(t *testing.T) {
	p := FromJournal(recoveryJournal(), 0)
	r := p.Recovery
	if r.Crashes != 2 || r.Recoveries != 1 {
		t.Errorf("crashes/recoveries = %d/%d, want 2/1", r.Crashes, r.Recoveries)
	}
	// Only the closed outage (100..400) accrues downtime; the open one
	// has no recovery record to close it.
	if r.DownTicks != 300 || r.MaxDownTicks != 300 {
		t.Errorf("down/maxdown = %d/%d, want 300/300", r.DownTicks, r.MaxDownTicks)
	}
	if r.RedoVotes != 2 {
		t.Errorf("redo votes = %d, want 2", r.RedoVotes)
	}
	if r.Retries != 2 || r.RetryExhausted != 1 {
		t.Errorf("retries/exhausted = %d/%d, want 2/1", r.Retries, r.RetryExhausted)
	}
	out := p.String()
	if !strings.Contains(out, "recovery: crashes=2 recoveries=1") ||
		!strings.Contains(out, "redo_votes=2 retries=2 exhausted=1") {
		t.Errorf("report missing recovery line:\n%s", out)
	}
	// Fault-free runs stay silent: no recovery noise in their reports.
	if out := FromJournal(contendedJournal(), 0).String(); strings.Contains(out, "recovery:") {
		t.Errorf("fault-free report grew a recovery line:\n%s", out)
	}
}

func TestHTMLRecoverySection(t *testing.T) {
	page := string(HTML("t", nil, FromJournal(recoveryJournal(), 0)))
	if !strings.Contains(page, "Crash recovery") {
		t.Fatalf("HTML report missing recovery section:\n%s", page)
	}
	for _, cell := range []string{"<td>2</td>", "<td>0.3</td>"} {
		if !strings.Contains(page, cell) {
			t.Errorf("HTML recovery table missing %q:\n%s", cell, page)
		}
	}
	if page := string(HTML("t", nil, FromJournal(contendedJournal(), 0))); strings.Contains(page, "Crash recovery") {
		t.Errorf("fault-free HTML report grew a recovery section")
	}
}

func TestProfileStringNamesHotObjects(t *testing.T) {
	p := FromJournal(contendedJournal(), 10)
	out := p.String()
	if !strings.Contains(out, "2 objects contended") {
		t.Errorf("report header wrong:\n%s", out)
	}
	for _, col := range []string{"site", "obj", "wait_ms", "maxwait_ms"} {
		if !strings.Contains(out, col) {
			t.Errorf("report missing column %q:\n%s", col, out)
		}
	}
	if !strings.Contains(out, "cause wound") {
		t.Errorf("report missing cause tally:\n%s", out)
	}
}
