package metrics

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// csvColumn is one exported CSV column bound to its series.
type csvColumn struct {
	name string
	s    *series
	sum  bool // histogram: emit the running sum instead of the count
	hist bool
}

// WriteCSV renders the sampled time series as CSV: one row per sample,
// first column the virtual timestamp in ticks, then one column per
// counter/gauge series and two per histogram series (its cumulative
// observation count and sum). Series created after sampling started
// report zero for the rows that predate them. Column order is the
// sorted column name, so the output is byte-stable.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	var cols []csvColumn
	for _, f := range r.order {
		for _, s := range f.order {
			base := f.name + s.key
			if f.typ == histogramType {
				cols = append(cols, csvColumn{name: base + "_count", s: s, hist: true})
				cols = append(cols, csvColumn{name: base + "_sum", s: s, hist: true, sum: true})
				continue
			}
			cols = append(cols, csvColumn{name: base, s: s})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })

	var b bytes.Buffer
	b.WriteString("time_us")
	for _, c := range cols {
		b.WriteByte(',')
		b.WriteString(csvQuote(c.name))
	}
	b.WriteByte('\n')
	for i, at := range r.times {
		b.WriteString(strconv.FormatInt(at, 10))
		for _, c := range cols {
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(c.at(i), 10))
		}
		b.WriteByte('\n')
	}
	_, err := w.Write(b.Bytes())
	return err
}

// at returns the column's value at sample index i (0 before the series
// existed).
func (c csvColumn) at(i int) int64 {
	j := i - c.s.firstIdx
	if j < 0 {
		return 0
	}
	if c.hist {
		if j >= len(c.s.hpoints) {
			return 0
		}
		if c.sum {
			return c.s.hpoints[j][1]
		}
		return c.s.hpoints[j][0]
	}
	if j >= len(c.s.points) {
		return 0
	}
	return c.s.points[j]
}

// csvQuote quotes a column name when it contains CSV metacharacters
// (label renderings contain commas and quotes).
func csvQuote(s string) string {
	need := false
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			need = true
			break
		}
	}
	if !need {
		return s
	}
	var b bytes.Buffer
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			b.WriteByte('"')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

// CSV returns the time-series export as a byte slice.
func (r *Registry) CSV() []byte {
	var b bytes.Buffer
	_ = r.WriteCSV(&b)
	return b.Bytes()
}

// FinalString summarizes the registry's end state for logs: every
// counter/gauge series and histogram count/sum, one per line, sorted.
func (r *Registry) FinalString() string {
	if r == nil {
		return ""
	}
	var lines []string
	for _, f := range r.order {
		for _, s := range f.order {
			if f.typ == histogramType {
				lines = append(lines, fmt.Sprintf("%s%s count=%d sum=%d", f.name, s.key, s.count, s.sum))
				continue
			}
			lines = append(lines, fmt.Sprintf("%s%s %d", f.name, s.key, s.val))
		}
	}
	sort.Strings(lines)
	var b bytes.Buffer
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
