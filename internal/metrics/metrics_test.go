package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil-registry handles must read zero")
	}
	r.Sample(10)
	if r.Samples() != 0 {
		t.Fatal("nil registry must not record samples")
	}
	if got := r.Prometheus(); len(got) != 0 {
		t.Fatalf("nil registry exposition: %q", got)
	}
	if got := r.CSV(); len(got) != 0 {
		t.Fatalf("nil registry CSV: %q", got)
	}
	if got := r.FinalString(); got != "" {
		t.Fatalf("nil registry FinalString: %q", got)
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up: ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Re-registration returns the same series.
	if r.Counter("reqs_total", "requests").Value() != 5 {
		t.Fatal("re-registered counter lost its value")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter name as gauge must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	a := r.Counter("c", "h", L("b", "2"), L("a", "1"))
	b := r.Counter("c", "h", L("a", "1"), L("b", "2"))
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("labels in different orders must name the same series; got %d", a.Value())
	}
	if !strings.Contains(string(r.Prometheus()), `c{a="1",b="2"} 2`) {
		t.Fatalf("labels not rendered canonically:\n%s", r.Prometheus())
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5065 {
		t.Fatalf("count=%d sum=%d, want 4/5065", h.Count(), h.Sum())
	}
	prom := string(r.Prometheus())
	for _, want := range []string{
		`lat_bucket{le="10"} 2`,   // 5, 10 (bounds inclusive)
		`lat_bucket{le="100"} 3`,  // + 50, cumulative
		`lat_bucket{le="1000"} 3`, // 5000 overflows
		`lat_bucket{le="+Inf"} 4`,
		`lat_sum 5065`,
		`lat_count 4`,
	} {
		if !strings.Contains(prom, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, prom)
		}
	}
}

func TestGoldenPrometheusExposition(t *testing.T) {
	r := New()
	// Registration order deliberately unsorted: exporters must sort.
	r.Gauge("zz_depth", "Ready-queue depth.").Set(3)
	r.Counter("aa_total", "Things counted.", L("kind", "x")).Add(2)
	r.Counter("aa_total", "Things counted.", L("kind", "w")).Add(7)
	h := r.Histogram("mid_ticks", "A duration.", []int64{10, 20})
	h.Observe(15)
	const want = `# HELP aa_total Things counted.
# TYPE aa_total counter
aa_total{kind="w"} 7
aa_total{kind="x"} 2
# HELP mid_ticks A duration.
# TYPE mid_ticks histogram
mid_ticks_bucket{le="10"} 0
mid_ticks_bucket{le="20"} 1
mid_ticks_bucket{le="+Inf"} 1
mid_ticks_sum 15
mid_ticks_count 1
# HELP zz_depth Ready-queue depth.
# TYPE zz_depth gauge
zz_depth 3
`
	if got := string(r.Prometheus()); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCSVSampling(t *testing.T) {
	r := New()
	c := r.Counter("c", "h")
	c.Inc()
	r.Sample(100)
	// A series created after sampling started back-fills zeros.
	g := r.Gauge("g", "h")
	g.Set(9)
	c.Add(2)
	r.Sample(200)
	const want = "time_us,c,g\n100,1,0\n200,3,9\n"
	if got := string(r.CSV()); got != want {
		t.Errorf("CSV mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if r.Samples() != 2 {
		t.Fatalf("Samples() = %d, want 2", r.Samples())
	}
}

func TestCSVHistogramColumnsAndQuoting(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "h", []int64{10}, L("link", "a,b"))
	h.Observe(4)
	r.Sample(50)
	got := string(r.CSV())
	wantHeader := `time_us,"lat{link=""a,b""}_count","lat{link=""a,b""}_sum"`
	if !strings.HasPrefix(got, wantHeader+"\n") {
		t.Fatalf("CSV header mismatch:\ngot  %q\nwant %q", strings.SplitN(got, "\n", 2)[0], wantHeader)
	}
	if !strings.Contains(got, "\n50,1,4\n") {
		t.Fatalf("CSV row mismatch:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("c", "h", L("v", "a\"b\\c\nd")).Inc()
	prom := string(r.Prometheus())
	if !strings.Contains(prom, `c{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", prom)
	}
}

func TestHTMLReportRenders(t *testing.T) {
	r := New()
	r.Counter("c_total", "Things.", L("kind", "x")).Add(3)
	r.Sample(1000)
	var b bytes.Buffer
	if err := WriteHTML(&b, "test report", r, FromJournal(nil, 0)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<html", "test report", "c_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
	if got := HTML("test report", r, FromJournal(nil, 0)); !bytes.Equal(got, b.Bytes()) {
		t.Error("HTML() and WriteHTML disagree")
	}
}
