package metrics

// TimelineRow is one virtual-time window of a run's rolled-up activity,
// produced by the timeline collector (internal/timeline) and consumed
// by the JSONL/CSV exporters and the HTML report. It lives here — not
// in the timeline package — so the HTML renderer can embed a timeline
// section without metrics importing the collector.
//
// Durations are in ticks (1 tick = 1µs of virtual time). Window fields
// describe [Start, End); a transaction belongs to the window containing
// its finish time. Probe-derived fields (lock-wait quantiles, net
// counters, in-flight) are deltas/readings attributed to the window
// being closed at rollover; see DESIGN.md "Streaming telemetry" for the
// exact attribution rules.
type TimelineRow struct {
	Window    int   `json:"window"`    // zero-based window index
	Start     int64 `json:"start"`     // window start, ticks
	End       int64 `json:"end"`       // window end, ticks
	Processed int64 `json:"processed"` // transactions finished in the window
	Committed int64 `json:"committed"`
	Missed    int64 `json:"missed"`
	Restarts  int64 `json:"restarts"` // restarts of transactions finishing here

	Throughput float64 `json:"throughput"` // committed tx per virtual second
	MissPct    float64 `json:"miss_pct"`   // missed / processed × 100

	MeanResp int64 `json:"mean_resp"` // mean committed response, ticks
	P50Resp  int64 `json:"p50_resp"`  // sketch median, ticks
	P99Resp  int64 `json:"p99_resp"`  // sketch p99, ticks

	LockWaitP50 int64 `json:"lock_wait_p50"` // from lock_wait_ticks deltas
	LockWaitP99 int64 `json:"lock_wait_p99"`

	NetLost int64 `json:"net_lost"` // messages dropped in the window
	NetDup  int64 `json:"net_dup"`  // messages duplicated in the window

	InFlight int64 `json:"in_flight"` // txn_inflight gauge at window close
}
