package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestSampleRetention pins the rolling retention limit: the registry
// keeps only the newest n rows, the CSV export stays consistent for
// series created both before and after sampling began, and the default
// (0) still keeps everything.
func TestSampleRetention(t *testing.T) {
	r := New()
	c := r.Counter("c", "h")
	r.SetRetention(3)
	if got := r.Retention(); got != 3 {
		t.Fatalf("Retention() = %d, want 3", got)
	}
	c.Inc()
	r.Sample(100)
	// Series created mid-run: firstIdx > 0 must survive trimming.
	g := r.Gauge("g", "h")
	h := r.Histogram("lat", "h", []int64{10})
	for i := int64(2); i <= 6; i++ {
		c.Inc()
		g.Set(i)
		h.Observe(i)
		r.Sample(i * 100)
	}
	if got := r.Samples(); got != 3 {
		t.Fatalf("Samples() = %d, want 3 after trimming", got)
	}
	const want = "time_us,c,g,lat_count,lat_sum\n" +
		"400,4,4,3,9\n" +
		"500,5,5,4,14\n" +
		"600,6,6,5,20\n"
	if got := string(r.CSV()); got != want {
		t.Errorf("CSV after retention:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Live values are untouched by trimming.
	if c.Value() != 6 || g.Value() != 6 || h.Count() != 5 {
		t.Errorf("live values perturbed: c=%d g=%d hcount=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestSampleRetentionDefaultUnlimited(t *testing.T) {
	r := New()
	r.Counter("c", "h").Inc()
	for i := int64(1); i <= 100; i++ {
		r.Sample(i)
	}
	if got := r.Samples(); got != 100 {
		t.Fatalf("Samples() = %d, want 100 with no retention limit", got)
	}
	// Lowering the limit after the fact trims immediately.
	r.SetRetention(10)
	if got := r.Samples(); got != 10 {
		t.Fatalf("Samples() = %d, want 10 after SetRetention", got)
	}
	if got := string(r.CSV()); !strings.Contains(got, "\n91,1\n") || strings.Contains(got, "\n90,1\n") {
		t.Errorf("CSV kept wrong window:\n%s", got)
	}
}

func TestSampleRetentionNilSafe(t *testing.T) {
	var r *Registry
	r.SetRetention(5) // must not panic
	if r.Retention() != 0 {
		t.Error("nil registry retention != 0")
	}
}

// TestSampleSteadyStateAllocFree proves a capped registry samples
// without allocating once the row buffers are warm — the property that
// lets million-transaction runs keep sampling on.
func TestSampleSteadyStateAllocFree(t *testing.T) {
	r := New()
	r.Counter("c", "h").Inc()
	r.Gauge("g", "h").Set(1)
	r.Histogram("lat", "h", []int64{10}).Observe(3)
	r.SetRetention(8)
	for i := int64(1); i <= 16; i++ {
		r.Sample(i)
	}
	at := int64(17)
	allocs := testing.AllocsPerRun(500, func() {
		r.Sample(at)
		at++
	})
	if allocs != 0 {
		t.Errorf("capped Sample allocates %.1f per call, want 0", allocs)
	}
}

func TestHistogramSnapshotAndBounds(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "h", []int64{10, 20, 30})
	h.Observe(5)
	h.Observe(15)
	h.Observe(15)
	h.Observe(99) // above every bound: count/sum only
	if got := h.Bounds(); len(got) != 3 || got[2] != 30 {
		t.Fatalf("Bounds() = %v", got)
	}
	dst := make([]int64, 3)
	count, sum := h.Snapshot(dst)
	if count != 4 || sum != 134 {
		t.Errorf("Snapshot count/sum = %d/%d, want 4/134", count, sum)
	}
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 0 {
		t.Errorf("Snapshot buckets = %v, want [1 2 0]", dst)
	}
	var nilH Histogram
	if nilH.Bounds() != nil {
		t.Error("nil handle Bounds != nil")
	}
	if c, s := nilH.Snapshot(dst); c != 0 || s != 0 {
		t.Error("nil handle Snapshot != 0,0")
	}
}

func TestHTMLTimelineSection(t *testing.T) {
	rows := []TimelineRow{
		{Window: 0, Start: 0, End: 1_000_000, Processed: 10, Committed: 9, Missed: 1,
			Throughput: 9, MissPct: 10, MeanResp: 5000, P50Resp: 4000, P99Resp: 9000,
			LockWaitP50: 100, LockWaitP99: 900, InFlight: 2},
		{Window: 1, Start: 1_000_000, End: 2_000_000, Processed: 5, Committed: 5,
			Throughput: 5, MeanResp: 3000, P50Resp: 3000, P99Resp: 4000},
	}
	out := string(HTMLWithTimeline("t", nil, nil, rows))
	for _, want := range []string{"<h2>Timeline</h2>", "<td>9</td>", "tput/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline HTML missing %q", want)
		}
	}
	// Plain WriteHTML has no timeline section and matches the nil-rows call.
	plain := HTML("t", nil, nil)
	if strings.Contains(string(plain), "Timeline") {
		t.Error("WriteHTML grew a timeline section without rows")
	}
	if !bytes.Equal(plain, HTMLWithTimeline("t", nil, nil, nil)) {
		t.Error("WriteHTML and WriteHTMLWithTimeline(nil) disagree")
	}
	// Over-long timelines elide the head, not the tail.
	long := make([]TimelineRow, htmlTimelineMaxRows+7)
	for i := range long {
		long[i].Window = i
		long[i].Throughput = 1
	}
	out = string(HTMLWithTimeline("t", nil, nil, long))
	if !strings.Contains(out, "7 earlier windows elided") {
		t.Error("elision note missing")
	}
	if !strings.Contains(out, "<td>"+itoa(len(long)-1)+"</td>") {
		t.Error("newest window missing from elided table")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
