// Package metrics is the simulator's deterministic observability layer:
// a registry of counters, gauges, and fixed-bucket histograms sampled on
// virtual time. Nothing in this package reads the wall clock or any
// other ambient state — sample rows are appended only when the kernel
// crosses a virtual-time sampling boundary — so two runs of the same
// (seed, config) pair produce byte-identical metric output, and the
// exporters (Prometheus text, CSV, HTML) are pure functions of the
// registry contents.
//
// Probe sites hold typed handles (Counter, Gauge, Histogram) obtained
// from the registry once and updated on the hot path. Every handle and
// the registry itself are nil-safe: a subsystem wired for metrics but
// running without a registry pays only a nil check per update, and the
// replay journal is never touched, so enabling metrics cannot perturb a
// run's event interleaving. The marker below has rtlint's journalpurity
// analyzer enforce exactly that: no call path out of this package may
// reach a journal-mutating function.
//
//rtlint:pure=journal
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one key/value dimension of a series. Labels are sorted by
// key when the series is created, so the same set in any order names
// the same series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricType int

const (
	counterType metricType = iota + 1
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefDurationBounds is the default histogram bucketing for virtual-time
// durations, in ticks (1 tick = 1µs): roughly exponential from 100µs to
// 5s, matching the simulator's millisecond-scale service times.
var DefDurationBounds = []int64{
	100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
}

// family is one named metric with a fixed type and any number of
// labeled series.
type family struct {
	name   string
	help   string
	typ    metricType
	bounds []int64 // histogram upper bounds, exclusive of +Inf

	byKey map[string]*series
	order []*series // creation order; exporters sort by key
}

// series is one (family, label set) time series.
type series struct {
	key    string // canonical label rendering, "" for unlabeled
	labels []Label

	// firstIdx is how many registry samples had been taken when the
	// series was created; its i-th point belongs to sample firstIdx+i.
	firstIdx int

	// Live state.
	val       int64   // counter/gauge current value
	buckets   []int64 // histogram per-bound counts (non-cumulative)
	boundsRef []int64 // the family's bounds, mirrored for Observe
	sum       int64
	count     int64

	// Sampled state: one entry per registry sample since firstIdx.
	points  []int64    // counter/gauge snapshots
	hpoints [][2]int64 // histogram {count, sum} snapshots
}

// Registry holds the metric families and the virtual-time sample rows.
// All methods are nil-safe on a nil *Registry, returning no-op handles,
// so disabled metrics cost only nil checks at the probe sites.
type Registry struct {
	families  map[string]*family
	order     []*family // creation order; exporters sort by name
	times     []int64   // virtual timestamps of the samples taken
	retention int       // max sample rows kept; 0 = unlimited
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (creating on first use) the counter series for the
// given name and labels.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{s: r.series(name, help, counterType, nil, labels)}
}

// Gauge returns (creating on first use) the gauge series for the given
// name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{s: r.series(name, help, gaugeType, nil, labels)}
}

// Histogram returns (creating on first use) the histogram series for
// the given name and labels. bounds are the inclusive upper bucket
// bounds (+Inf is implicit); nil picks DefDurationBounds. The bounds of
// the first registration win.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) Histogram {
	if r == nil {
		return Histogram{}
	}
	if bounds == nil {
		bounds = DefDurationBounds
	}
	return Histogram{s: r.series(name, help, histogramType, bounds, labels)}
}

func (r *Registry) series(name, help string, typ metricType, bounds []int64, labels []Label) *series {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	s, ok := f.byKey[key]
	if !ok {
		s = &series{key: key, labels: canonLabels(labels), firstIdx: len(r.times)}
		if typ == histogramType {
			s.buckets = make([]int64, len(f.bounds))
			s.boundsRef = f.bounds
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Sample appends one row: the current value of every series, stamped
// with the given virtual time. The kernel calls it on sampling
// boundaries; timestamps must be non-decreasing for the CSV export to
// make sense, which the kernel's monotonic clock guarantees.
func (r *Registry) Sample(at int64) {
	if r == nil {
		return
	}
	r.times = append(r.times, at)
	for _, f := range r.order {
		for _, s := range f.order {
			if f.typ == histogramType {
				s.hpoints = append(s.hpoints, [2]int64{s.count, s.sum})
			} else {
				s.points = append(s.points, s.val)
			}
		}
	}
	r.trim()
}

// SetRetention bounds the number of sample rows the registry retains:
// once more than n rows exist, the oldest are dropped. n <= 0 (the
// default) keeps every row, preserving the historical behavior. Long
// runs set a limit so sample history stops being O(run length); the
// live series values are unaffected, only the sampled history rolls.
func (r *Registry) SetRetention(n int) {
	if r == nil {
		return
	}
	r.retention = n
	r.trim()
}

// Retention returns the configured sample-row limit (0 = unlimited).
func (r *Registry) Retention() int {
	if r == nil {
		return 0
	}
	return r.retention
}

// trim drops the oldest sample rows beyond the retention limit. Rows
// are shifted in place so slice capacity is reused: at steady state a
// Sample+trim cycle allocates nothing.
func (r *Registry) trim() {
	if r.retention <= 0 {
		return
	}
	drop := len(r.times) - r.retention
	if drop <= 0 {
		return
	}
	r.times = r.times[:copy(r.times, r.times[drop:])]
	for _, f := range r.order {
		for _, s := range f.order {
			if s.firstIdx >= drop {
				// Series created after the dropped rows: its points all
				// survive, they just move drop rows earlier.
				s.firstIdx -= drop
				continue
			}
			d := drop - s.firstIdx
			s.firstIdx = 0
			if f.typ == histogramType {
				if d > len(s.hpoints) {
					d = len(s.hpoints)
				}
				s.hpoints = s.hpoints[:copy(s.hpoints, s.hpoints[d:])]
			} else {
				if d > len(s.points) {
					d = len(s.points)
				}
				s.points = s.points[:copy(s.points, s.points[d:])]
			}
		}
	}
}

// Samples reports how many rows have been taken.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	return len(r.times)
}

// canonLabels returns a sorted copy of the labels.
func canonLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// renderLabels produces the canonical `{k="v",…}` rendering ("" when
// unlabeled), used both as the series key and in the exposition output.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := canonLabels(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter is a monotonically increasing series handle.
type Counter struct{ s *series }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c Counter) Add(n int64) {
	if c.s == nil || n < 0 {
		return
	}
	c.s.val += n
}

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.s == nil {
		return 0
	}
	return c.s.val
}

// Gauge is an up/down series handle.
type Gauge struct{ s *series }

// Set replaces the value.
func (g Gauge) Set(v int64) {
	if g.s == nil {
		return
	}
	g.s.val = v
}

// Add adjusts the value by n (may be negative).
func (g Gauge) Add(n int64) {
	if g.s == nil {
		return
	}
	g.s.val += n
}

// Value returns the current value.
func (g Gauge) Value() int64 {
	if g.s == nil {
		return 0
	}
	return g.s.val
}

// Histogram is a fixed-bucket distribution handle.
type Histogram struct{ s *series }

// Observe records one value.
func (h Histogram) Observe(v int64) {
	if h.s == nil {
		return
	}
	h.s.count++
	h.s.sum += v
	for i, ub := range h.s.bucketsBounds() {
		if v <= ub {
			h.s.buckets[i]++
			return
		}
	}
	// Above every bound: counted in +Inf only (count/sum above).
}

// Count returns the number of observations.
func (h Histogram) Count() int64 {
	if h.s == nil {
		return 0
	}
	return h.s.count
}

// Sum returns the sum of observations.
func (h Histogram) Sum() int64 {
	if h.s == nil {
		return 0
	}
	return h.s.sum
}

// Bounds returns the histogram's upper bucket bounds (nil for a no-op
// handle). The slice is shared, not copied; callers must not mutate it.
func (h Histogram) Bounds() []int64 {
	if h.s == nil {
		return nil
	}
	return h.s.boundsRef
}

// Snapshot copies the per-bound bucket counts into dst — which must be
// at least len(Bounds()) long — and returns the running count and sum.
// Observations above the last bound appear in count/sum only. The
// method allocates nothing, so window-rollover code can diff successive
// snapshots on the hot path.
//
//rtlint:allocfree
func (h Histogram) Snapshot(dst []int64) (count, sum int64) {
	if h.s == nil {
		return 0, 0
	}
	copy(dst, h.s.buckets)
	return h.s.count, h.s.sum
}

// bucketsBounds returns the family's bucket bounds, mirrored onto the
// series at creation so Observe never chases the family pointer.
func (s *series) bucketsBounds() []int64 { return s.boundsRef }
