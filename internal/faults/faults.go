// Package faults is the deterministic fault-injection subsystem: a
// declarative Plan of site crash/recovery windows, per-link message
// faults (drop, duplicate, delay jitter), and symmetric network
// partitions, compiled into an Injector that the network consults on
// every inter-site message. All randomness — both when generating a
// plan and when rolling per-message fates — comes from seeded PRNG
// streams consumed in deterministic kernel order, so identical
// (seed, config, plan) triples produce byte-identical replay journals.
//
// An empty plan is a strict no-op: it draws no random numbers,
// schedules no events, and appends no journal records, so a run with
// an empty plan is byte-identical to a run without the subsystem.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Times in a plan are virtual-time ticks (1 tick = 1µs), matching the
// simulation kernel, so plans are plain integers in JSON.

// Crash takes a site down at At and (optionally) brings it back at
// RecoverAt. A crash loses the site's volatile state — in-flight
// transactions and unresolved commit-protocol bookkeeping — while its
// write-ahead log survives and is replayed on recovery. RecoverAt <= At
// means the site stays down for the rest of the run.
type Crash struct {
	Site      int   `json:"site"`
	At        int64 `json:"at"`
	RecoverAt int64 `json:"recover_at,omitempty"`
}

// LinkFault injects message-level faults on a directed link while
// active. From/To of -1 match any site. A message rolled on an active
// rule is dropped with probability Drop; surviving messages are
// duplicated with probability Dup and each delivered copy gains an
// independent uniform delay in [0, JitterMax] ticks. End <= Start means
// the rule stays active for the rest of the run.
type LinkFault struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Start     int64   `json:"start,omitempty"`
	End       int64   `json:"end,omitempty"`
	Drop      float64 `json:"drop,omitempty"`
	Dup       float64 `json:"dup,omitempty"`
	JitterMax int64   `json:"jitter_max,omitempty"`
}

// Partition symmetrically cuts every link between the sites in GroupA
// and the rest of the cluster from At until HealAt (HealAt <= At means
// it never heals). Sites within a group communicate normally.
type Partition struct {
	GroupA []int `json:"group_a"`
	At     int64 `json:"at"`
	HealAt int64 `json:"heal_at,omitempty"`
}

// Plan is one run's declarative fault schedule.
type Plan struct {
	Crashes    []Crash     `json:"crashes,omitempty"`
	Links      []LinkFault `json:"links,omitempty"`
	Partitions []Partition `json:"partitions,omitempty"`
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Links) == 0 && len(p.Partitions) == 0)
}

// Validate checks the plan against a cluster size. Partition bitmasks
// ride in journal records, so sites must number below 64.
func (p *Plan) Validate(sites int) error {
	if p == nil {
		return nil
	}
	if sites < 1 {
		return fmt.Errorf("faults: sites must be >= 1, got %d", sites)
	}
	if sites > 63 {
		return fmt.Errorf("faults: at most 63 sites supported, got %d", sites)
	}
	for i, c := range p.Crashes {
		if c.Site < 0 || c.Site >= sites {
			return fmt.Errorf("faults: crash %d: site %d out of range [0,%d)", i, c.Site, sites)
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crash %d: negative time %d", i, c.At)
		}
	}
	for i, l := range p.Links {
		if l.From < -1 || l.From >= sites {
			return fmt.Errorf("faults: link %d: from %d out of range", i, l.From)
		}
		if l.To < -1 || l.To >= sites {
			return fmt.Errorf("faults: link %d: to %d out of range", i, l.To)
		}
		if l.Start < 0 {
			return fmt.Errorf("faults: link %d: negative start %d", i, l.Start)
		}
		if l.Drop < 0 || l.Drop > 1 {
			return fmt.Errorf("faults: link %d: drop %v outside [0,1]", i, l.Drop)
		}
		if l.Dup < 0 || l.Dup > 1 {
			return fmt.Errorf("faults: link %d: dup %v outside [0,1]", i, l.Dup)
		}
		if l.JitterMax < 0 {
			return fmt.Errorf("faults: link %d: negative jitter %d", i, l.JitterMax)
		}
	}
	for i, pt := range p.Partitions {
		if len(pt.GroupA) == 0 {
			return fmt.Errorf("faults: partition %d: empty group", i)
		}
		if pt.At < 0 {
			return fmt.Errorf("faults: partition %d: negative time %d", i, pt.At)
		}
		seen := make(map[int]bool, len(pt.GroupA))
		for _, s := range pt.GroupA {
			if s < 0 || s >= sites {
				return fmt.Errorf("faults: partition %d: site %d out of range [0,%d)", i, s, sites)
			}
			if seen[s] {
				return fmt.Errorf("faults: partition %d: duplicate site %d", i, s)
			}
			seen[s] = true
		}
		if len(pt.GroupA) == sites {
			return fmt.Errorf("faults: partition %d: group A contains every site", i)
		}
	}
	return nil
}

// mask returns the group-A bitmask of a partition (sites < 64, enforced
// by Validate).
func (pt *Partition) mask() int64 {
	var m int64
	for _, s := range pt.GroupA {
		m |= 1 << uint(s)
	}
	return m
}

// String renders the plan canonically — a stable, compact form suitable
// for journal config keys, so the plan is part of the determinism key.
func (p *Plan) String() string {
	if p.Empty() {
		return "faults{}"
	}
	var b strings.Builder
	b.WriteString("faults{")
	for i, c := range p.Crashes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "crash(%d@%d-%d)", c.Site, c.At, c.RecoverAt)
	}
	if len(p.Crashes) > 0 && len(p.Links) > 0 {
		b.WriteByte(';')
	}
	for i, l := range p.Links {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "link(%d>%d@%d-%d,drop=%g,dup=%g,jit=%d)", l.From, l.To, l.Start, l.End, l.Drop, l.Dup, l.JitterMax)
	}
	if (len(p.Crashes) > 0 || len(p.Links) > 0) && len(p.Partitions) > 0 {
		b.WriteByte(';')
	}
	for i, pt := range p.Partitions {
		if i > 0 {
			b.WriteByte(',')
		}
		groups := append([]int(nil), pt.GroupA...)
		sort.Ints(groups)
		fmt.Fprintf(&b, "part(%v@%d-%d)", groups, pt.At, pt.HealAt)
	}
	b.WriteByte('}')
	return b.String()
}

// Parse decodes a JSON plan, rejecting unknown fields so typos in plan
// files fail loudly instead of silently injecting nothing.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("faults: trailing data after plan")
	}
	return &p, nil
}
