// Package faults is the deterministic fault-injection subsystem: a
// declarative Plan of site crash/recovery windows, per-link message
// faults (drop, duplicate, delay jitter), and symmetric network
// partitions, compiled into an Injector that the network consults on
// every inter-site message. All randomness — both when generating a
// plan and when rolling per-message fates — comes from seeded PRNG
// streams consumed in deterministic kernel order, so identical
// (seed, config, plan) triples produce byte-identical replay journals.
//
// An empty plan is a strict no-op: it draws no random numbers,
// schedules no events, and appends no journal records, so a run with
// an empty plan is byte-identical to a run without the subsystem.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Times in a plan are virtual-time ticks (1 tick = 1µs), matching the
// simulation kernel, so plans are plain integers in JSON.

// Crash takes a site down at At and (optionally) brings it back at
// RecoverAt. A crash loses the site's volatile state — in-flight
// transactions and unresolved commit-protocol bookkeeping — while its
// write-ahead log survives and is replayed on recovery. RecoverAt <= At
// means the site stays down for the rest of the run.
type Crash struct {
	Site      int   `json:"site"`
	At        int64 `json:"at"`
	RecoverAt int64 `json:"recover_at,omitempty"`
}

// LinkFault injects message-level faults on a directed link while
// active. From/To of -1 match any site. A message rolled on an active
// rule is dropped with probability Drop; surviving messages are
// duplicated with probability Dup and each delivered copy gains an
// independent uniform delay in [0, JitterMax] ticks. End <= Start means
// the rule stays active for the rest of the run.
type LinkFault struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Start     int64   `json:"start,omitempty"`
	End       int64   `json:"end,omitempty"`
	Drop      float64 `json:"drop,omitempty"`
	Dup       float64 `json:"dup,omitempty"`
	JitterMax int64   `json:"jitter_max,omitempty"`
}

// Partition symmetrically cuts every link between the sites in GroupA
// and the rest of the cluster from At until HealAt (HealAt <= At means
// it never heals). Sites within a group communicate normally.
type Partition struct {
	GroupA []int `json:"group_a"`
	At     int64 `json:"at"`
	HealAt int64 `json:"heal_at,omitempty"`
}

// Message fates a fault-space exploration can choose for one inter-site
// message.
const (
	// FateDrop loses the message.
	FateDrop = 1
	// FateDup delivers two copies.
	FateDup = 2
)

// ChosenCrash is one exact crash decision: site Site crashes at tick At
// and recovers at RecoverAt (RecoverAt <= At means never).
type ChosenCrash struct {
	Site      int   `json:"site"`
	At        int64 `json:"at"`
	RecoverAt int64 `json:"recover_at,omitempty"`
}

// ChosenFate is one exact message-fate decision: the Msg-th inter-site
// message the injector is consulted about (a deterministic ordinal)
// suffers Fate. From/To record the link for readability; the ordinal
// alone identifies the message.
type ChosenFate struct {
	Msg  int64 `json:"msg"`
	From int   `json:"from"`
	To   int   `json:"to"`
	Fate int   `json:"fate"`
}

// ChosenCut is one exact partition decision: site Site is isolated from
// every other site at tick At and reconnected at HealAt (HealAt <= At
// means never).
type ChosenCut struct {
	Site   int   `json:"site"`
	At     int64 `json:"at"`
	HealAt int64 `json:"heal_at,omitempty"`
}

// ChosenFaults is the exact-fault section of a plan: the decision
// sequence a fault-space exploration committed to, exported from a
// counterexample so the precise failure schedule replays without a
// chooser. Unlike the stochastic sections, chosen faults draw no random
// numbers and journal themselves as KFaultCrash/KFaultFate/KFaultCut at
// the decision instants.
type ChosenFaults struct {
	Crashes []ChosenCrash `json:"crashes,omitempty"`
	Fates   []ChosenFate  `json:"fates,omitempty"`
	Cuts    []ChosenCut   `json:"cuts,omitempty"`
}

func (c *ChosenFaults) empty() bool {
	return c == nil || (len(c.Crashes) == 0 && len(c.Fates) == 0 && len(c.Cuts) == 0)
}

// Plan is one run's declarative fault schedule.
type Plan struct {
	Crashes    []Crash       `json:"crashes,omitempty"`
	Links      []LinkFault   `json:"links,omitempty"`
	Partitions []Partition   `json:"partitions,omitempty"`
	Chosen     *ChosenFaults `json:"chosen,omitempty"`
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Links) == 0 && len(p.Partitions) == 0 &&
		p.Chosen.empty())
}

// Validate checks the plan against a cluster size. Partition bitmasks
// ride in journal records, so sites must number below 64.
func (p *Plan) Validate(sites int) error {
	if p == nil {
		return nil
	}
	if sites < 1 {
		return fmt.Errorf("faults: sites must be >= 1, got %d", sites)
	}
	if sites > 63 {
		return fmt.Errorf("faults: at most 63 sites supported, got %d", sites)
	}
	for i, c := range p.Crashes {
		if c.Site < 0 || c.Site >= sites {
			return fmt.Errorf("faults: crash %d: site %d out of range [0,%d)", i, c.Site, sites)
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crash %d: negative time %d", i, c.At)
		}
	}
	for i, l := range p.Links {
		if l.From < -1 || l.From >= sites {
			return fmt.Errorf("faults: link %d: from %d out of range", i, l.From)
		}
		if l.To < -1 || l.To >= sites {
			return fmt.Errorf("faults: link %d: to %d out of range", i, l.To)
		}
		if l.Start < 0 {
			return fmt.Errorf("faults: link %d: negative start %d", i, l.Start)
		}
		if l.Drop < 0 || l.Drop > 1 {
			return fmt.Errorf("faults: link %d: drop %v outside [0,1]", i, l.Drop)
		}
		if l.Dup < 0 || l.Dup > 1 {
			return fmt.Errorf("faults: link %d: dup %v outside [0,1]", i, l.Dup)
		}
		if l.JitterMax < 0 {
			return fmt.Errorf("faults: link %d: negative jitter %d", i, l.JitterMax)
		}
	}
	for i, pt := range p.Partitions {
		if len(pt.GroupA) == 0 {
			return fmt.Errorf("faults: partition %d: empty group", i)
		}
		if pt.At < 0 {
			return fmt.Errorf("faults: partition %d: negative time %d", i, pt.At)
		}
		seen := make(map[int]bool, len(pt.GroupA))
		for _, s := range pt.GroupA {
			if s < 0 || s >= sites {
				return fmt.Errorf("faults: partition %d: site %d out of range [0,%d)", i, s, sites)
			}
			if seen[s] {
				return fmt.Errorf("faults: partition %d: duplicate site %d", i, s)
			}
			seen[s] = true
		}
		if len(pt.GroupA) == sites {
			return fmt.Errorf("faults: partition %d: group A contains every site", i)
		}
	}
	if p.Chosen != nil {
		for i, c := range p.Chosen.Crashes {
			if c.Site < 0 || c.Site >= sites {
				return fmt.Errorf("faults: chosen crash %d: site %d out of range [0,%d)", i, c.Site, sites)
			}
			if c.At < 0 {
				return fmt.Errorf("faults: chosen crash %d: negative time %d", i, c.At)
			}
		}
		last := int64(-1)
		for i, f := range p.Chosen.Fates {
			if f.Msg < 0 {
				return fmt.Errorf("faults: chosen fate %d: negative message ordinal %d", i, f.Msg)
			}
			if f.Msg <= last {
				return fmt.Errorf("faults: chosen fate %d: message ordinals must strictly increase", i)
			}
			last = f.Msg
			if f.From < 0 || f.From >= sites {
				return fmt.Errorf("faults: chosen fate %d: from %d out of range [0,%d)", i, f.From, sites)
			}
			if f.To < 0 || f.To >= sites {
				return fmt.Errorf("faults: chosen fate %d: to %d out of range [0,%d)", i, f.To, sites)
			}
			if f.Fate != FateDrop && f.Fate != FateDup {
				return fmt.Errorf("faults: chosen fate %d: fate %d not in {1,2}", i, f.Fate)
			}
		}
		for i, ct := range p.Chosen.Cuts {
			if ct.Site < 0 || ct.Site >= sites {
				return fmt.Errorf("faults: chosen cut %d: site %d out of range [0,%d)", i, ct.Site, sites)
			}
			if ct.At < 0 {
				return fmt.Errorf("faults: chosen cut %d: negative time %d", i, ct.At)
			}
			if sites < 2 {
				return fmt.Errorf("faults: chosen cut %d: nothing to cut with %d site(s)", i, sites)
			}
		}
	}
	return nil
}

// mask returns the group-A bitmask of a partition (sites < 64, enforced
// by Validate).
func (pt *Partition) mask() int64 {
	var m int64
	for _, s := range pt.GroupA {
		m |= 1 << uint(s)
	}
	return m
}

// String renders the plan canonically — a stable, compact form suitable
// for journal config keys, so the plan is part of the determinism key.
func (p *Plan) String() string {
	if p.Empty() {
		return "faults{}"
	}
	var b strings.Builder
	b.WriteString("faults{")
	for i, c := range p.Crashes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "crash(%d@%d-%d)", c.Site, c.At, c.RecoverAt)
	}
	if len(p.Crashes) > 0 && len(p.Links) > 0 {
		b.WriteByte(';')
	}
	for i, l := range p.Links {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "link(%d>%d@%d-%d,drop=%g,dup=%g,jit=%d)", l.From, l.To, l.Start, l.End, l.Drop, l.Dup, l.JitterMax)
	}
	if (len(p.Crashes) > 0 || len(p.Links) > 0) && len(p.Partitions) > 0 {
		b.WriteByte(';')
	}
	for i, pt := range p.Partitions {
		if i > 0 {
			b.WriteByte(',')
		}
		groups := append([]int(nil), pt.GroupA...)
		sort.Ints(groups)
		fmt.Fprintf(&b, "part(%v@%d-%d)", groups, pt.At, pt.HealAt)
	}
	if !p.Chosen.empty() {
		if len(p.Crashes) > 0 || len(p.Links) > 0 || len(p.Partitions) > 0 {
			b.WriteByte(';')
		}
		b.WriteString("chosen{")
		for i, c := range p.Chosen.Crashes {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "crash(%d@%d-%d)", c.Site, c.At, c.RecoverAt)
		}
		if len(p.Chosen.Crashes) > 0 && len(p.Chosen.Fates) > 0 {
			b.WriteByte(';')
		}
		for i, f := range p.Chosen.Fates {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "fate(%d:%d>%d=%d)", f.Msg, f.From, f.To, f.Fate)
		}
		if (len(p.Chosen.Crashes) > 0 || len(p.Chosen.Fates) > 0) && len(p.Chosen.Cuts) > 0 {
			b.WriteByte(';')
		}
		for i, ct := range p.Chosen.Cuts {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "cut(%d@%d-%d)", ct.Site, ct.At, ct.HealAt)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// Parse decodes a JSON plan, rejecting unknown fields so typos in plan
// files fail loudly instead of silently injecting nothing.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("faults: trailing data after plan")
	}
	return &p, nil
}
