package faults

import (
	"math"

	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
)

// Space bounds a fault-space exploration: the decision instants and
// per-message fates a chooser may pick among. Every decision has
// canonical alternative 0 = "inject nothing", so a canonical chooser
// (or none) makes the space a strict no-op and the run byte-identical
// to a fault-free one.
type Space struct {
	// CrashPoints are the virtual ticks at which a crash decision is
	// surfaced (sim.ChooseCrash, 1+sites alternatives: none, or crash
	// site i-1).
	CrashPoints []int64
	// DownFor is how long a chosen crash keeps the site down before
	// recovery (<= 0 means crashed sites never recover).
	DownFor int64
	// MaxMsgFates caps how many inter-site messages surface a fate
	// decision (sim.ChooseFate): only the first MaxMsgFates injector
	// consults branch, bounding exploration depth. 0 disables message
	// fates.
	MaxMsgFates int
	// AllowDup adds "duplicate" as a third fate alternative beyond
	// deliver/drop.
	AllowDup bool
	// CutPoints are the virtual ticks at which a partition decision is
	// surfaced (sim.ChooseCut, 1+sites alternatives: none, or isolate
	// site i-1).
	CutPoints []int64
	// CutFor is how long a chosen cut lasts before healing (<= 0 means
	// it never heals).
	CutFor int64
}

// SpaceInjector turns a Space into live fault decisions: installed like
// a plan injector, it schedules a kernel event per crash/cut point and
// consults the kernel's chooser (via ChooseQuiet, so fault picks are
// never KChoice-journaled) at each; chosen faults journal themselves as
// KFaultCrash/KFaultFate/KFaultCut and accumulate into a ChosenFaults
// section retrievable with ChosenPlan — the exact, replayable failure
// schedule this run suffered. It is recycled across exploration runs
// via Reset.
//
//rtlint:pooled
type SpaceInjector struct {
	space Space
	k     *sim.Kernel
	n     *netsim.Network
	sites int
	hooks Hooks
	// msgIndex counts injector consults; downUntil/cutUntil mirror the
	// injected state so a decision never double-crashes or double-cuts
	// a site (such picks are no-ops, not recorded).
	msgIndex  int64
	downUntil []int64
	cutUntil  []int64
	chosen    ChosenFaults
	dup       [2]sim.Duration
}

// NewSpaceInjector builds an injector over a decision space.
func NewSpaceInjector(space Space) *SpaceInjector {
	si := &SpaceInjector{}
	si.Reset(space)
	return si
}

// Reset rearms the injector for a fresh run over a (possibly new)
// space, keeping its allocations.
func (si *SpaceInjector) Reset(space Space) {
	si.space = space
	si.k, si.n = nil, nil
	si.sites = 0
	si.hooks = Hooks{}
	si.msgIndex = 0
	si.downUntil = si.downUntil[:0]
	si.cutUntil = si.cutUntil[:0]
	si.chosen.Crashes = si.chosen.Crashes[:0]
	si.chosen.Fates = si.chosen.Fates[:0]
	si.chosen.Cuts = si.chosen.Cuts[:0]
}

// Install wires the decision space into a run: the injector becomes the
// network's per-message fault source and one decision event is
// scheduled per crash/cut point. With no chooser attached every
// decision is canonical and the run injects nothing.
func (si *SpaceInjector) Install(k *sim.Kernel, n *netsim.Network, sites int, hooks Hooks) {
	si.k, si.n, si.sites, si.hooks = k, n, sites, hooks
	for len(si.downUntil) < sites {
		si.downUntil = append(si.downUntil, 0)
	}
	for len(si.cutUntil) < sites {
		si.cutUntil = append(si.cutUntil, 0)
	}
	if si.space.MaxMsgFates > 0 {
		n.SetInjector(si)
	}
	for _, at := range si.space.CrashPoints {
		at := at
		k.At(sim.Time(at), func() { si.crashDecision(at) })
	}
	for _, at := range si.space.CutPoints {
		at := at
		k.At(sim.Time(at), func() { si.cutDecision(at) })
	}
}

func (si *SpaceInjector) crashDecision(at int64) {
	pick := si.k.ChooseQuiet(sim.ChooseCrash, 1+si.sites)
	if pick == 0 {
		return
	}
	site := pick - 1
	if si.downUntil[site] > at {
		return
	}
	recover := int64(-1)
	rec := int64(0)
	if si.space.DownFor > 0 {
		recover = at + si.space.DownFor
		rec = recover
		si.downUntil[site] = recover
	} else {
		si.downUntil[site] = math.MaxInt64
	}
	si.chosen.Crashes = append(si.chosen.Crashes, ChosenCrash{Site: site, At: at, RecoverAt: rec})
	si.k.Journal().Append(int64(si.k.Now()), journal.KFaultCrash, int32(site), 0, 0, recover, 0, "")
	applyCrash(si.k, si.n, si.hooks, db.SiteID(site), recover)
	if recover > 0 {
		s := db.SiteID(site)
		si.k.At(sim.Time(recover), func() {
			applyRecover(si.k, si.n, si.hooks, s)
		})
	}
}

func (si *SpaceInjector) cutDecision(at int64) {
	pick := si.k.ChooseQuiet(sim.ChooseCut, 1+si.sites)
	if pick == 0 {
		return
	}
	site := pick - 1
	if si.cutUntil[site] > at {
		return
	}
	heal := int64(-1)
	hl := int64(0)
	if si.space.CutFor > 0 {
		heal = at + si.space.CutFor
		hl = heal
		si.cutUntil[site] = heal
	} else {
		si.cutUntil[site] = math.MaxInt64
	}
	mask := int64(1) << uint(site)
	pairs := partitionPairs([]int{site}, si.sites)
	si.chosen.Cuts = append(si.chosen.Cuts, ChosenCut{Site: site, At: at, HealAt: hl})
	si.k.Journal().Append(int64(si.k.Now()), journal.KFaultCut, int32(site), 0, 0, mask, heal, "")
	applyCut(si.k, si.n, pairs, mask, true)
	if heal > 0 {
		si.k.At(sim.Time(heal), func() {
			applyCut(si.k, si.n, pairs, mask, false)
		})
	}
}

// Deliveries surfaces one fate decision per inter-site message for the
// first MaxMsgFates consults; canonical picks deliver normally.
func (si *SpaceInjector) Deliveries(now sim.Time, from, to db.SiteID) []sim.Duration {
	idx := si.msgIndex
	si.msgIndex++
	if idx >= int64(si.space.MaxMsgFates) {
		return oneCopy
	}
	alts := 2
	if si.space.AllowDup {
		alts = 3
	}
	pick := si.k.ChooseQuiet(sim.ChooseFate, alts)
	if pick == 0 {
		return oneCopy
	}
	si.chosen.Fates = append(si.chosen.Fates, ChosenFate{Msg: idx, From: int(from), To: int(to), Fate: pick})
	si.k.Journal().Append(int64(now), journal.KFaultFate, int32(from), idx, 0, int64(to), int64(pick), "")
	if pick == FateDrop {
		return nil
	}
	si.dup[0], si.dup[1] = 0, 0
	return si.dup[:]
}

// ChosenPlan returns the exact fault plan this run suffered, or nil
// when every decision was canonical. Replaying the returned plan
// (without a chooser) through Injector regenerates a byte-identical
// journal for the same (seed, config) key.
func (si *SpaceInjector) ChosenPlan() *Plan {
	if si.chosen.empty() {
		return nil
	}
	c := &ChosenFaults{}
	if len(si.chosen.Crashes) > 0 {
		c.Crashes = append([]ChosenCrash(nil), si.chosen.Crashes...)
	}
	if len(si.chosen.Fates) > 0 {
		c.Fates = append([]ChosenFate(nil), si.chosen.Fates...)
	}
	if len(si.chosen.Cuts) > 0 {
		c.Cuts = append([]ChosenCut(nil), si.chosen.Cuts...)
	}
	return &Plan{Chosen: c}
}
