package faults

import (
	"encoding/json"
	"testing"
)

// FuzzFaultPlan checks that arbitrary bytes never panic the plan
// parser, and that any plan which parses survives a canonical
// marshal → re-parse round trip with a stable String form.
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"crashes":[{"site":1,"at":3000000,"recover_at":5000000}]}`))
	f.Add([]byte(`{"crashes":[{"site":1,"at":3000000,"recover_at":5000000}],` +
		`"links":[{"from":-1,"to":-1,"start":1000000,"end":9000000,"drop":0.05,"dup":0.02,"jitter_max":2000}],` +
		`"partitions":[{"group_a":[0],"at":6500000,"heal_at":7500000}]}`))
	f.Add([]byte(`{"links":[{"from":0,"to":2,"drop":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"bogus":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Validation must not panic whatever the parsed contents are.
		_ = p.Validate(63)
		s := p.String()
		if s != p.String() {
			t.Fatalf("String unstable: %q", s)
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal parsed plan: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled plan failed: %v\n%s", err, out)
		}
		if again.String() != s {
			t.Fatalf("round trip changed plan:\n before %s\n after  %s", s, again.String())
		}
	})
}
