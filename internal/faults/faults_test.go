package faults

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rtlock/internal/sim"
)

func validPlan() *Plan {
	return &Plan{
		Crashes: []Crash{{Site: 1, At: 3 * int64(sim.Millisecond), RecoverAt: 5 * int64(sim.Millisecond)}},
		Links: []LinkFault{{
			From: -1, To: -1,
			Start: int64(sim.Millisecond), End: 9 * int64(sim.Millisecond),
			Drop: 0.05, Dup: 0.02, JitterMax: 2000,
		}},
		Partitions: []Partition{{GroupA: []int{0}, At: 6 * int64(sim.Millisecond), HealAt: 7 * int64(sim.Millisecond)}},
	}
}

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if validPlan().Empty() {
		t.Error("populated plan reported empty")
	}
}

func TestPlanValidate(t *testing.T) {
	if err := validPlan().Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name string
		plan Plan
	}{
		{"crash site out of range", Plan{Crashes: []Crash{{Site: 3, At: 0}}}},
		{"crash negative site", Plan{Crashes: []Crash{{Site: -1, At: 0}}}},
		{"crash negative at", Plan{Crashes: []Crash{{Site: 0, At: -1}}}},
		{"link from out of range", Plan{Links: []LinkFault{{From: 3, To: -1}}}},
		{"link drop above one", Plan{Links: []LinkFault{{From: -1, To: -1, Drop: 1.5}}}},
		{"link negative dup", Plan{Links: []LinkFault{{From: -1, To: -1, Dup: -0.1}}}},
		{"link negative jitter", Plan{Links: []LinkFault{{From: -1, To: -1, JitterMax: -1}}}},
		{"partition empty group", Plan{Partitions: []Partition{{GroupA: nil, At: 0}}}},
		{"partition duplicate member", Plan{Partitions: []Partition{{GroupA: []int{0, 0}, At: 0}}}},
		{"partition all sites", Plan{Partitions: []Partition{{GroupA: []int{0, 1, 2}, At: 0}}}},
		{"partition member out of range", Plan{Partitions: []Partition{{GroupA: []int{5}, At: 0}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(3); err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestPlanString(t *testing.T) {
	if got := (&Plan{}).String(); got != "faults{}" {
		t.Fatalf("empty plan String = %q", got)
	}
	p := validPlan()
	s := p.String()
	if s != p.String() {
		t.Fatal("String is not stable across calls")
	}
	for _, want := range []string{"crash(1@", "link(-1>-1@", "part([0]@"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := validPlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	if _, err := Parse([]byte(`{"crashes":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(`{} {"crashes":[]}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := GenParams{Sites: 3, Horizon: 10 * int64(sim.Millisecond), Severity: 0.6}
	a, err := Generate(42, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%s\n%s", a, b)
	}
	c, err := Generate(43, g)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans (suspicious)")
	}
	if err := a.Validate(g.Sites); err != nil {
		t.Errorf("generated plan fails validation: %v", err)
	}
}

func TestGenerateZeroSeverityEmpty(t *testing.T) {
	p, err := Generate(1, GenParams{Sites: 3, Horizon: int64(sim.Second), Severity: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("severity 0 plan not empty: %s", p)
	}
}

func TestNewEmptyPlanNil(t *testing.T) {
	if New(nil, 1) != nil {
		t.Error("New(nil) should return nil")
	}
	if New(&Plan{}, 1) != nil {
		t.Error("New(empty) should return nil")
	}
	if New(validPlan(), 1) == nil {
		t.Error("New(populated) returned nil")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	p := validPlan()
	run := func() [][]sim.Duration {
		in := New(p, 7)
		var out [][]sim.Duration
		for i := 0; i < 200; i++ {
			now := sim.Time(i * int(sim.Millisecond) / 20)
			out = append(out, in.Deliveries(now, 0, 2))
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("injector fates differ across identically seeded runs")
	}
}

func TestInjectorOutsideWindowDeliversClean(t *testing.T) {
	in := New(validPlan(), 7)
	// The link fault window is [1ms, 9ms); at 20ms every delivery is a
	// single on-time copy.
	for i := 0; i < 50; i++ {
		fates := in.Deliveries(sim.Time(20*sim.Millisecond), 0, 2)
		if len(fates) != 1 || fates[0] != 0 {
			t.Fatalf("fates outside window = %v", fates)
		}
	}
}
