package faults

import (
	"fmt"
	"math/rand"
)

// GenParams shapes a generated plan.
type GenParams struct {
	// Sites is the cluster size (must be >= 1).
	Sites int
	// Horizon is the run length in ticks; fault windows land inside it.
	Horizon int64
	// Severity in [0,1] scales everything: 0 generates the empty plan,
	// 1 the harshest one (crashes at every site, heavy loss, a
	// partition).
	Severity float64
	// JitterMax is the per-message delay jitter at severity 1, in
	// ticks (zero picks a default of 2ms).
	JitterMax int64
}

// Generate derives a fault plan from a seed. The PRNG stream is the
// plan: the same (seed, params) always yield the identical plan, and
// the draw order is fixed, so generated plans are part of the
// determinism key like everything else.
func Generate(seed int64, g GenParams) (*Plan, error) {
	if g.Sites < 1 {
		return nil, fmt.Errorf("faults: generate: sites must be >= 1, got %d", g.Sites)
	}
	if g.Horizon <= 0 {
		return nil, fmt.Errorf("faults: generate: horizon must be positive, got %d", g.Horizon)
	}
	sev := g.Severity
	if sev < 0 {
		sev = 0
	}
	if sev > 1 {
		sev = 1
	}
	if sev == 0 {
		return &Plan{}, nil
	}
	jitterMax := g.JitterMax
	if jitterMax <= 0 {
		jitterMax = 2000 // 2ms in ticks
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}

	// Crashes: about severity×sites of them, starting in the first
	// two-thirds of the run, each down for a severity-scaled window so
	// recovery (and WAL redo) is exercised before the run ends.
	h := float64(g.Horizon)
	nCrash := int(sev*float64(g.Sites) + 0.5)
	for i := 0; i < nCrash; i++ {
		at := int64((0.10 + 0.50*rng.Float64()) * h)
		down := int64((0.05 + 0.20*sev*rng.Float64()) * h)
		p.Crashes = append(p.Crashes, Crash{
			Site:      rng.Intn(g.Sites),
			At:        at,
			RecoverAt: at + down,
		})
	}

	// One cluster-wide lossy-link rule, active for the whole run.
	p.Links = append(p.Links, LinkFault{
		From:      -1,
		To:        -1,
		Drop:      sev * (0.10 + 0.15*rng.Float64()),
		Dup:       sev * (0.05 + 0.10*rng.Float64()),
		JitterMax: int64(sev * float64(jitterMax) * rng.Float64()),
	})

	// A single symmetric partition once severity crosses one half:
	// isolate one site mid-run, heal before the end.
	if sev >= 0.5 && g.Sites >= 2 {
		at := int64((0.30 + 0.20*rng.Float64()) * h)
		dur := int64((0.05 + 0.10*rng.Float64()) * h)
		p.Partitions = append(p.Partitions, Partition{
			GroupA: []int{rng.Intn(g.Sites)},
			At:     at,
			HealAt: at + dur,
		})
	}

	if err := p.Validate(g.Sites); err != nil {
		return nil, err
	}
	return p, nil
}
