package faults

import (
	"math/rand"
	"sort"

	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
)

// Hooks lets the protocol layer react to scheduled site faults: the
// cluster wipes volatile state (and kills resident work) on crash, and
// replays its write-ahead log on recovery. Either hook may be nil.
type Hooks struct {
	OnCrash   func(site db.SiteID)
	OnRecover func(site db.SiteID)
}

// Injector is a compiled plan plus its per-message PRNG stream. It
// implements netsim.FaultInjector; the network consults it once per
// inter-site message, in deterministic kernel order, so the fate
// sequence is a pure function of (plan, seed).
//
// When the plan carries a Chosen section, the injector replays it
// exactly: chosen crashes and cuts are scheduled as kernel events that
// emit the same KFaultCrash/KFaultCut records a fault-space exploration
// emitted when it made those decisions, and chosen message fates are
// applied by consult ordinal, emitting KFaultFate — so a counterexample
// journal and its plan replay are byte-identical.
type Injector struct {
	plan *Plan
	rng  *rand.Rand
	k    *sim.Kernel
	// fates is plan.Chosen.Fates sorted by ordinal; next cursors it and
	// msgIndex counts injector consults to match ordinals against.
	fates    []ChosenFate
	next     int
	msgIndex int64
	dup      [2]sim.Duration
}

// New compiles a plan. It returns nil for an empty plan so callers can
// hand the result straight to netsim.Network.SetInjector and keep the
// fault-free fast path (a nil injector draws nothing).
func New(plan *Plan, seed int64) *Injector {
	if plan.Empty() {
		return nil
	}
	in := &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}
	if plan.Chosen != nil && len(plan.Chosen.Fates) > 0 {
		in.fates = append([]ChosenFate(nil), plan.Chosen.Fates...)
		sort.Slice(in.fates, func(i, j int) bool { return in.fates[i].Msg < in.fates[j].Msg })
	}
	return in
}

// Plan returns the compiled plan (nil receiver allowed).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// oneCopy is the fate of an unaffected message: a single copy with no
// extra delay. Callers must not mutate it.
var oneCopy = []sim.Duration{0}

// rule returns the first link rule active at now that matches the link,
// or nil. First-match-wins keeps overlapping rules deterministic.
func (in *Injector) rule(now int64, from, to int) *LinkFault {
	for i := range in.plan.Links {
		l := &in.plan.Links[i]
		if l.From != -1 && l.From != from {
			continue
		}
		if l.To != -1 && l.To != to {
			continue
		}
		if now < l.Start {
			continue
		}
		if l.End > l.Start && now >= l.End {
			continue
		}
		return l
	}
	return nil
}

// Deliveries rolls one message's fate: nil means the message is
// dropped; otherwise one entry per delivered copy carrying that copy's
// extra delay (a single zero entry is a normal delivery). PRNG draws
// are guarded by plan fields, so the draw sequence depends only on
// (plan, message order). Chosen fates are checked first, by consult
// ordinal; unmatched messages fall through to the stochastic rules.
func (in *Injector) Deliveries(now sim.Time, from, to db.SiteID) []sim.Duration {
	if len(in.fates) > 0 {
		idx := in.msgIndex
		in.msgIndex++
		if in.next < len(in.fates) && in.fates[in.next].Msg == idx {
			fate := in.fates[in.next].Fate
			in.next++
			if in.k != nil {
				in.k.Journal().Append(int64(now), journal.KFaultFate,
					int32(from), idx, 0, int64(to), int64(fate), "")
			}
			if fate == FateDrop {
				return nil
			}
			in.dup[0], in.dup[1] = 0, 0
			return in.dup[:]
		}
	}
	r := in.rule(int64(now), int(from), int(to))
	if r == nil {
		return oneCopy
	}
	if r.Drop > 0 && in.rng.Float64() < r.Drop {
		return nil
	}
	copies := 1
	if r.Dup > 0 && in.rng.Float64() < r.Dup {
		copies = 2
	}
	if r.JitterMax <= 0 {
		if copies == 1 {
			return oneCopy
		}
		return make([]sim.Duration, copies)
	}
	out := make([]sim.Duration, copies)
	for i := range out {
		out[i] = sim.Duration(in.rng.Int63n(r.JitterMax + 1))
	}
	return out
}

// applyCrash journals and applies one site crash: the network stops
// routing to the site and the protocol layer wipes its volatile state.
func applyCrash(k *sim.Kernel, n *netsim.Network, hooks Hooks, site db.SiteID, recover int64) {
	k.Journal().Append(int64(k.Now()), journal.KSiteCrash, int32(site), 0, 0, recover, 0, "")
	n.SetDown(site, true)
	if hooks.OnCrash != nil {
		hooks.OnCrash(site)
	}
}

// applyRecover journals and applies one site recovery.
func applyRecover(k *sim.Kernel, n *netsim.Network, hooks Hooks, site db.SiteID) {
	k.Journal().Append(int64(k.Now()), journal.KSiteRecover, int32(site), 0, 0, 0, 0, "")
	n.SetDown(site, false)
	if hooks.OnRecover != nil {
		hooks.OnRecover(site)
	}
}

// applyCut journals and applies (or heals) one partition given its
// pre-enumerated cross-partition link pairs.
func applyCut(k *sim.Kernel, n *netsim.Network, pairs [][2]db.SiteID, mask int64, cut bool) {
	kind := journal.KPartition
	if !cut {
		kind = journal.KHeal
	}
	k.Journal().Append(int64(k.Now()), kind, 0, 0, 0, mask, 0, "")
	for _, pr := range pairs {
		n.SetCut(pr[0], pr[1], cut)
	}
}

// Install wires the plan into a run of `sites` sites: the injector
// becomes the network's per-message fault source, and every crash,
// recovery, partition, and heal is scheduled as a kernel event that
// journals itself, flips the network state, and invokes the protocol
// hooks. Installing a nil injector is a no-op.
func (in *Injector) Install(k *sim.Kernel, n *netsim.Network, sites int, hooks Hooks) {
	if in == nil {
		return
	}
	in.k = k
	n.SetInjector(in)
	for i := range in.plan.Crashes {
		c := in.plan.Crashes[i]
		site := db.SiteID(c.Site)
		recover := c.RecoverAt
		if recover <= c.At {
			recover = -1
		}
		k.At(sim.Time(c.At), func() {
			applyCrash(k, n, hooks, site, recover)
		})
		if recover > 0 {
			k.At(sim.Time(recover), func() {
				applyRecover(k, n, hooks, site)
			})
		}
	}
	for i := range in.plan.Partitions {
		pt := in.plan.Partitions[i]
		mask := pt.mask()
		pairs := partitionPairs(pt.GroupA, sites)
		k.At(sim.Time(pt.At), func() {
			applyCut(k, n, pairs, mask, true)
		})
		if pt.HealAt > pt.At {
			k.At(sim.Time(pt.HealAt), func() {
				applyCut(k, n, pairs, mask, false)
			})
		}
	}
	if in.plan.Chosen == nil {
		return
	}
	// Chosen crashes and cuts mirror the fault-space exploration that
	// produced them: the KFault* record lands at the decision instant
	// and the recovery/heal event is created from inside it (as the
	// exploration did), so the two runs create runtime events in the
	// same order and their journals stay byte-identical.
	for i := range in.plan.Chosen.Crashes {
		c := in.plan.Chosen.Crashes[i]
		site := db.SiteID(c.Site)
		recover := c.RecoverAt
		if recover <= c.At {
			recover = -1
		}
		k.At(sim.Time(c.At), func() {
			k.Journal().Append(int64(k.Now()), journal.KFaultCrash, int32(site), 0, 0, recover, 0, "")
			applyCrash(k, n, hooks, site, recover)
			if recover > 0 {
				k.At(sim.Time(recover), func() {
					applyRecover(k, n, hooks, site)
				})
			}
		})
	}
	for i := range in.plan.Chosen.Cuts {
		ct := in.plan.Chosen.Cuts[i]
		site := db.SiteID(ct.Site)
		mask := int64(1) << uint(ct.Site)
		pairs := partitionPairs([]int{ct.Site}, sites)
		heal := ct.HealAt
		if heal <= ct.At {
			heal = -1
		}
		k.At(sim.Time(ct.At), func() {
			k.Journal().Append(int64(k.Now()), journal.KFaultCut, int32(site), 0, 0, mask, heal, "")
			applyCut(k, n, pairs, mask, true)
			if heal > 0 {
				k.At(sim.Time(heal), func() {
					applyCut(k, n, pairs, mask, false)
				})
			}
		})
	}
}

// partitionPairs enumerates the cross-partition links to cut, in sorted
// order so the cut sequence is deterministic.
func partitionPairs(groupA []int, sites int) [][2]db.SiteID {
	inA := make(map[int]bool, len(groupA))
	for _, s := range groupA {
		inA[s] = true
	}
	a := append([]int(nil), groupA...)
	sort.Ints(a)
	var pairs [][2]db.SiteID
	for _, x := range a {
		for y := 0; y < sites; y++ {
			if !inA[y] {
				pairs = append(pairs, [2]db.SiteID{db.SiteID(x), db.SiteID(y)})
			}
		}
	}
	return pairs
}
