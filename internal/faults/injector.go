package faults

import (
	"math/rand"
	"sort"

	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
)

// Hooks lets the protocol layer react to scheduled site faults: the
// cluster wipes volatile state (and kills resident work) on crash, and
// replays its write-ahead log on recovery. Either hook may be nil.
type Hooks struct {
	OnCrash   func(site db.SiteID)
	OnRecover func(site db.SiteID)
}

// Injector is a compiled plan plus its per-message PRNG stream. It
// implements netsim.FaultInjector; the network consults it once per
// inter-site message, in deterministic kernel order, so the fate
// sequence is a pure function of (plan, seed).
type Injector struct {
	plan *Plan
	rng  *rand.Rand
}

// New compiles a plan. It returns nil for an empty plan so callers can
// hand the result straight to netsim.Network.SetInjector and keep the
// fault-free fast path (a nil injector draws nothing).
func New(plan *Plan, seed int64) *Injector {
	if plan.Empty() {
		return nil
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// Plan returns the compiled plan (nil receiver allowed).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// oneCopy is the fate of an unaffected message: a single copy with no
// extra delay. Callers must not mutate it.
var oneCopy = []sim.Duration{0}

// rule returns the first link rule active at now that matches the link,
// or nil. First-match-wins keeps overlapping rules deterministic.
func (in *Injector) rule(now int64, from, to int) *LinkFault {
	for i := range in.plan.Links {
		l := &in.plan.Links[i]
		if l.From != -1 && l.From != from {
			continue
		}
		if l.To != -1 && l.To != to {
			continue
		}
		if now < l.Start {
			continue
		}
		if l.End > l.Start && now >= l.End {
			continue
		}
		return l
	}
	return nil
}

// Deliveries rolls one message's fate: nil means the message is
// dropped; otherwise one entry per delivered copy carrying that copy's
// extra delay (a single zero entry is a normal delivery). PRNG draws
// are guarded by plan fields, so the draw sequence depends only on
// (plan, message order).
func (in *Injector) Deliveries(now sim.Time, from, to db.SiteID) []sim.Duration {
	r := in.rule(int64(now), int(from), int(to))
	if r == nil {
		return oneCopy
	}
	if r.Drop > 0 && in.rng.Float64() < r.Drop {
		return nil
	}
	copies := 1
	if r.Dup > 0 && in.rng.Float64() < r.Dup {
		copies = 2
	}
	if r.JitterMax <= 0 {
		if copies == 1 {
			return oneCopy
		}
		return make([]sim.Duration, copies)
	}
	out := make([]sim.Duration, copies)
	for i := range out {
		out[i] = sim.Duration(in.rng.Int63n(r.JitterMax + 1))
	}
	return out
}

// Install wires the plan into a run of `sites` sites: the injector
// becomes the network's per-message fault source, and every crash,
// recovery, partition, and heal is scheduled as a kernel event that
// journals itself, flips the network state, and invokes the protocol
// hooks. Installing a nil injector is a no-op.
func (in *Injector) Install(k *sim.Kernel, n *netsim.Network, sites int, hooks Hooks) {
	if in == nil {
		return
	}
	n.SetInjector(in)
	for i := range in.plan.Crashes {
		c := in.plan.Crashes[i]
		site := db.SiteID(c.Site)
		recover := c.RecoverAt
		if recover <= c.At {
			recover = -1
		}
		k.At(sim.Time(c.At), func() {
			k.Journal().Append(int64(k.Now()), journal.KSiteCrash, int32(site), 0, 0, recover, 0, "")
			n.SetDown(site, true)
			if hooks.OnCrash != nil {
				hooks.OnCrash(site)
			}
		})
		if recover > 0 {
			k.At(sim.Time(recover), func() {
				k.Journal().Append(int64(k.Now()), journal.KSiteRecover, int32(site), 0, 0, 0, 0, "")
				n.SetDown(site, false)
				if hooks.OnRecover != nil {
					hooks.OnRecover(site)
				}
			})
		}
	}
	for i := range in.plan.Partitions {
		pt := in.plan.Partitions[i]
		mask := pt.mask()
		pairs := partitionPairs(pt.GroupA, sites)
		k.At(sim.Time(pt.At), func() {
			k.Journal().Append(int64(k.Now()), journal.KPartition, 0, 0, 0, mask, 0, "")
			for _, pr := range pairs {
				n.SetCut(pr[0], pr[1], true)
			}
		})
		if pt.HealAt > pt.At {
			k.At(sim.Time(pt.HealAt), func() {
				k.Journal().Append(int64(k.Now()), journal.KHeal, 0, 0, 0, mask, 0, "")
				for _, pr := range pairs {
					n.SetCut(pr[0], pr[1], false)
				}
			})
		}
	}
}

// partitionPairs enumerates the cross-partition links to cut, in sorted
// order so the cut sequence is deterministic.
func partitionPairs(groupA []int, sites int) [][2]db.SiteID {
	inA := make(map[int]bool, len(groupA))
	for _, s := range groupA {
		inA[s] = true
	}
	a := append([]int(nil), groupA...)
	sort.Ints(a)
	var pairs [][2]db.SiteID
	for _, x := range a {
		for y := 0; y < sites; y++ {
			if !inA[y] {
				pairs = append(pairs, [2]db.SiteID{db.SiteID(x), db.SiteID(y)})
			}
		}
	}
	return pairs
}
