package wal

// The two-phase-commit records: forced yes-votes, logged decisions, and
// the in-doubt set restart must resolve.

import (
	"reflect"
	"testing"

	"rtlock/internal/core"
)

func TestAppendVoteIdempotent(t *testing.T) {
	l := NewLog()
	objs := []core.ObjectID{3, 5}
	lsn1 := l.AppendVote(7, 10, 1, objs)
	lsn2 := l.AppendVote(7, 20, 1, objs)
	if lsn1 != lsn2 {
		t.Fatalf("duplicate vote got a new LSN: %d then %d", lsn1, lsn2)
	}
	if l.Records() != 1 {
		t.Fatalf("records written = %d, want 1", l.Records())
	}
	// The logged write-set is a copy, immune to caller mutation.
	objs[0] = 99
	if got := l.PendingVotes()[0].Objs; !reflect.DeepEqual(got, []core.ObjectID{3, 5}) {
		t.Fatalf("vote write-set aliased the caller's slice: %v", got)
	}
}

func TestDecisionSettlesVote(t *testing.T) {
	l := NewLog()
	l.AppendVote(1, 10, 0, []core.ObjectID{1})
	l.AppendVote(2, 11, 0, []core.ObjectID{2})
	l.AppendVote(3, 12, 0, []core.ObjectID{3})
	l.AppendDecision(2, true)
	l.AppendDecision(3, false)

	if commit, known := l.Decision(2); !known || !commit {
		t.Fatalf("Decision(2) = %t,%t", commit, known)
	}
	if commit, known := l.Decision(3); !known || commit {
		t.Fatalf("Decision(3) = %t,%t", commit, known)
	}
	if _, known := l.Decision(1); known {
		t.Fatal("undecided transaction reported a decision")
	}

	pending := l.PendingVotes()
	if len(pending) != 1 || pending[0].Tx != 1 {
		t.Fatalf("pending votes = %+v, want only tx 1", pending)
	}
}

func TestPendingVotesLSNOrder(t *testing.T) {
	l := NewLog()
	for tx := int64(5); tx >= 1; tx-- {
		l.AppendVote(tx, 0, 0, nil)
	}
	prev := int64(0)
	for _, v := range l.PendingVotes() {
		if v.LSN <= prev {
			t.Fatalf("pending votes out of LSN order: %+v", l.PendingVotes())
		}
		prev = v.LSN
	}
}

func TestDecisionRewriteKeepsRecordCount(t *testing.T) {
	l := NewLog()
	l.AppendDecision(4, true)
	n := l.Records()
	l.AppendDecision(4, true)
	if l.Records() != n {
		t.Fatalf("re-logging a decision wrote a new record: %d -> %d", n, l.Records())
	}
}
