// Package wal provides the database-recovery substrate the paper's
// prototyping environment exists to host experiments for ("new
// approaches for synchronization and database recovery … experimentation
// to verify their properties … has not been performed due to the lack of
// appropriate test tools", §1; the module library offers "database
// management functions" including recovery).
//
// The scheme matches the runtime's deferred-update execution exactly:
// writes become visible only at commit, so the log is redo-only — one
// record per committed transaction carrying its write-set — and
// checkpoints snapshot the committed state. Restart loads the latest
// checkpoint and replays the committed records after it; no undo is ever
// needed.
package wal

import (
	"fmt"
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// WriteImage is one object's after-image in a commit record.
type WriteImage struct {
	Obj   core.ObjectID
	Value int64
}

// CommitRecord is the redo record of one committed transaction.
type CommitRecord struct {
	LSN    int64
	Tx     int64
	At     sim.Time
	Writes []WriteImage
}

// Log is a redo-only write-ahead log with sharp checkpoints. It models
// the recovery component of a memory-resident real-time database: the
// durable state is the latest checkpoint snapshot plus the commit
// records after it.
type Log struct {
	lsn     int64
	records []CommitRecord

	checkpointLSN  int64
	checkpointAt   sim.Time
	snapshot       map[core.ObjectID]int64
	checkpoints    int
	recordsWritten int
}

// NewLog returns an empty log (the implicit initial checkpoint is the
// empty database at time zero).
func NewLog() *Log {
	return &Log{snapshot: make(map[core.ObjectID]int64)}
}

// AppendCommit logs a committed transaction's write-set and returns its
// LSN. Read-only transactions need no record; callers may skip them.
func (l *Log) AppendCommit(tx int64, at sim.Time, writes []WriteImage) int64 {
	l.lsn++
	l.recordsWritten++
	rec := CommitRecord{LSN: l.lsn, Tx: tx, At: at, Writes: append([]WriteImage(nil), writes...)}
	l.records = append(l.records, rec)
	return rec.LSN
}

// Checkpoint snapshots the committed state: records before it become
// irrelevant to restart and are truncated.
func (l *Log) Checkpoint(at sim.Time, state map[core.ObjectID]int64) {
	l.lsn++
	l.checkpoints++
	l.checkpointLSN = l.lsn
	l.checkpointAt = at
	l.snapshot = make(map[core.ObjectID]int64, len(state))
	for k, v := range state {
		l.snapshot[k] = v
	}
	l.records = l.records[:0]
}

// RedoLength reports how many commit records restart would replay.
func (l *Log) RedoLength() int { return len(l.records) }

// Checkpoints reports how many checkpoints were taken.
func (l *Log) Checkpoints() int { return l.checkpoints }

// Records reports how many commit records were ever written.
func (l *Log) Records() int { return l.recordsWritten }

// Recover rebuilds the committed state: the latest checkpoint snapshot
// plus every logged commit after it, applied in LSN order.
func (l *Log) Recover() map[core.ObjectID]int64 {
	state := make(map[core.ObjectID]int64, len(l.snapshot))
	for k, v := range l.snapshot {
		state[k] = v
	}
	recs := append([]CommitRecord(nil), l.records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	for _, rec := range recs {
		for _, w := range rec.Writes {
			state[w.Obj] = w.Value
		}
	}
	return state
}

// RecoveryTime estimates restart duration: loading the snapshot plus
// replaying the redo tail, at the given per-object and per-record costs.
func (l *Log) RecoveryTime(loadPerObj, redoPerRecord sim.Duration) sim.Duration {
	return sim.Duration(len(l.snapshot))*loadPerObj + sim.Duration(len(l.records))*redoPerRecord
}

// String summarizes the log for reports.
func (l *Log) String() string {
	return fmt.Sprintf("wal: %d records total, %d checkpoints, redo tail %d",
		l.recordsWritten, l.checkpoints, len(l.records))
}
