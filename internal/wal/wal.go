// Package wal provides the database-recovery substrate the paper's
// prototyping environment exists to host experiments for ("new
// approaches for synchronization and database recovery … experimentation
// to verify their properties … has not been performed due to the lack of
// appropriate test tools", §1; the module library offers "database
// management functions" including recovery).
//
// The scheme matches the runtime's deferred-update execution exactly:
// writes become visible only at commit, so the log is redo-only — one
// record per committed transaction carrying its write-set — and
// checkpoints snapshot the committed state. Restart loads the latest
// checkpoint and replays the committed records after it; no undo is ever
// needed.
package wal

import (
	"fmt"
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

// WriteImage is one object's after-image in a commit record.
type WriteImage struct {
	Obj   core.ObjectID
	Value int64
}

// CommitRecord is the redo record of one committed transaction.
type CommitRecord struct {
	LSN    int64
	Tx     int64
	At     sim.Time
	Writes []WriteImage
}

// VoteRecord is a two-phase-commit participant's forced yes-vote: once
// it is on the log the participant is prepared and may no longer
// unilaterally abort. Coord is the coordinator's home site and Objs the
// participant's share of the write-set, so recovery can finish the
// transaction after a crash. Abort votes are never logged
// (presumed-abort: absence of a vote record means the participant never
// promised anything).
type VoteRecord struct {
	LSN   int64
	Tx    int64
	At    sim.Time
	Coord int
	Objs  []core.ObjectID
}

// Log is a redo-only write-ahead log with sharp checkpoints. It models
// the recovery component of a memory-resident real-time database: the
// durable state is the latest checkpoint snapshot plus the commit
// records after it. For distributed runs it also carries the
// two-phase-commit records — participant yes-votes and final decisions
// — that survive a site crash.
type Log struct {
	lsn     int64
	records []CommitRecord

	votes     []VoteRecord
	decisions map[int64]bool

	checkpointLSN  int64
	checkpointAt   sim.Time
	snapshot       map[core.ObjectID]int64
	checkpoints    int
	recordsWritten int
}

// NewLog returns an empty log (the implicit initial checkpoint is the
// empty database at time zero).
func NewLog() *Log {
	return &Log{snapshot: make(map[core.ObjectID]int64), decisions: make(map[int64]bool)}
}

// AppendVote forces a participant's yes-vote to the log and returns its
// LSN. It is idempotent per transaction: a duplicate prepare re-votes
// without writing a second record.
func (l *Log) AppendVote(tx int64, at sim.Time, coord int, objs []core.ObjectID) int64 {
	for i := range l.votes {
		if l.votes[i].Tx == tx {
			return l.votes[i].LSN
		}
	}
	l.lsn++
	l.recordsWritten++
	l.votes = append(l.votes, VoteRecord{
		LSN: l.lsn, Tx: tx, At: at, Coord: coord,
		Objs: append([]core.ObjectID(nil), objs...),
	})
	return l.lsn
}

// AppendDecision logs the final outcome of a two-phase commit the site
// took part in (as coordinator or participant). Under presumed-abort
// only commits strictly need the force, but participants also log their
// aborts so recovery does not re-resolve settled transactions.
func (l *Log) AppendDecision(tx int64, commit bool) int64 {
	if _, ok := l.decisions[tx]; !ok {
		l.recordsWritten++
	}
	l.lsn++
	l.decisions[tx] = commit
	return l.lsn
}

// Decision reports the logged outcome for a transaction, if any.
func (l *Log) Decision(tx int64) (commit, known bool) {
	commit, known = l.decisions[tx]
	return commit, known
}

// PendingVotes returns the yes-votes with no logged decision, in LSN
// order — exactly the in-doubt transactions restart must resolve with
// the coordinator.
func (l *Log) PendingVotes() []VoteRecord {
	var out []VoteRecord
	for i := range l.votes {
		if _, ok := l.decisions[l.votes[i].Tx]; !ok {
			out = append(out, l.votes[i])
		}
	}
	return out
}

// AppendCommit logs a committed transaction's write-set and returns its
// LSN. Read-only transactions need no record; callers may skip them.
func (l *Log) AppendCommit(tx int64, at sim.Time, writes []WriteImage) int64 {
	l.lsn++
	l.recordsWritten++
	rec := CommitRecord{LSN: l.lsn, Tx: tx, At: at, Writes: append([]WriteImage(nil), writes...)}
	l.records = append(l.records, rec)
	return rec.LSN
}

// Checkpoint snapshots the committed state: records before it become
// irrelevant to restart and are truncated.
func (l *Log) Checkpoint(at sim.Time, state map[core.ObjectID]int64) {
	l.lsn++
	l.checkpoints++
	l.checkpointLSN = l.lsn
	l.checkpointAt = at
	l.snapshot = make(map[core.ObjectID]int64, len(state))
	for k, v := range state {
		l.snapshot[k] = v
	}
	l.records = l.records[:0]
}

// RedoLength reports how many commit records restart would replay.
func (l *Log) RedoLength() int { return len(l.records) }

// Checkpoints reports how many checkpoints were taken.
func (l *Log) Checkpoints() int { return l.checkpoints }

// Records reports how many commit records were ever written.
func (l *Log) Records() int { return l.recordsWritten }

// Recover rebuilds the committed state: the latest checkpoint snapshot
// plus every logged commit after it, applied in LSN order.
func (l *Log) Recover() map[core.ObjectID]int64 {
	state := make(map[core.ObjectID]int64, len(l.snapshot))
	for k, v := range l.snapshot {
		state[k] = v
	}
	recs := append([]CommitRecord(nil), l.records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].LSN < recs[j].LSN })
	for _, rec := range recs {
		for _, w := range rec.Writes {
			state[w.Obj] = w.Value
		}
	}
	return state
}

// RecoveryTime estimates restart duration: loading the snapshot plus
// replaying the redo tail, at the given per-object and per-record costs.
func (l *Log) RecoveryTime(loadPerObj, redoPerRecord sim.Duration) sim.Duration {
	return sim.Duration(len(l.snapshot))*loadPerObj + sim.Duration(len(l.records))*redoPerRecord
}

// String summarizes the log for reports.
func (l *Log) String() string {
	return fmt.Sprintf("wal: %d records total, %d checkpoints, redo tail %d",
		l.recordsWritten, l.checkpoints, len(l.records))
}
