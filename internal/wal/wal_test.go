package wal

import (
	"testing"
	"testing/quick"

	"rtlock/internal/core"
	"rtlock/internal/sim"
)

func TestRecoverEmpty(t *testing.T) {
	l := NewLog()
	if state := l.Recover(); len(state) != 0 {
		t.Fatalf("empty log recovered %v", state)
	}
}

func TestRecoverReplaysCommits(t *testing.T) {
	l := NewLog()
	l.AppendCommit(1, 10, []WriteImage{{Obj: 1, Value: 1}, {Obj: 2, Value: 1}})
	l.AppendCommit(2, 20, []WriteImage{{Obj: 1, Value: 2}})
	state := l.Recover()
	if state[1] != 2 || state[2] != 1 {
		t.Fatalf("recovered %v", state)
	}
	if l.RedoLength() != 2 || l.Records() != 2 {
		t.Fatalf("redo=%d records=%d", l.RedoLength(), l.Records())
	}
}

func TestCheckpointTruncatesRedo(t *testing.T) {
	l := NewLog()
	l.AppendCommit(1, 10, []WriteImage{{Obj: 1, Value: 1}})
	l.Checkpoint(15, map[core.ObjectID]int64{1: 1})
	if l.RedoLength() != 0 {
		t.Fatalf("redo tail %d after checkpoint", l.RedoLength())
	}
	l.AppendCommit(2, 20, []WriteImage{{Obj: 2, Value: 2}})
	state := l.Recover()
	if state[1] != 1 || state[2] != 2 {
		t.Fatalf("recovered %v", state)
	}
	if l.Checkpoints() != 1 {
		t.Fatalf("checkpoints = %d", l.Checkpoints())
	}
}

func TestCheckpointSnapshotIsolated(t *testing.T) {
	l := NewLog()
	src := map[core.ObjectID]int64{5: 9}
	l.Checkpoint(1, src)
	src[5] = 99 // mutate the caller's map afterwards
	if l.Recover()[5] != 9 {
		t.Fatal("checkpoint aliased the caller's state map")
	}
}

func TestRecoveryTimeModel(t *testing.T) {
	l := NewLog()
	l.Checkpoint(0, map[core.ObjectID]int64{1: 1, 2: 2})
	l.AppendCommit(1, 10, []WriteImage{{Obj: 3, Value: 3}})
	got := l.RecoveryTime(2*sim.Millisecond, 5*sim.Millisecond)
	want := 2*2*sim.Millisecond + 1*5*sim.Millisecond
	if got != want {
		t.Fatalf("recovery time %v, want %v", got, want)
	}
}

// TestPropRecoverMatchesDirectApplication: replaying the log always
// equals applying the committed write-sets in order, regardless of
// checkpoint placement.
func TestPropRecoverMatchesDirectApplication(t *testing.T) {
	prop := func(ops []uint8, checkpointAfter uint8) bool {
		l := NewLog()
		oracle := make(map[core.ObjectID]int64)
		for i, b := range ops {
			obj := core.ObjectID(b % 8)
			val := int64(i + 1)
			l.AppendCommit(int64(i+1), sim.Time(i), []WriteImage{{Obj: obj, Value: val}})
			oracle[obj] = val
			if i == int(checkpointAfter%16) {
				l.Checkpoint(sim.Time(i), oracle)
			}
		}
		state := l.Recover()
		if len(state) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if state[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
