package dist

import (
	"errors"
	"fmt"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// installPort is the message-server port replica updates arrive on.
const installPort = "install"

// errInstallTimeout aborts one installer attempt whose lock wait ran too
// long; the installer retries.
var errInstallTimeout = errors.New("dist: replica install attempt timed out")

// installMsg carries one committed transaction's updates to a secondary
// site.
type installMsg struct {
	origin   int64
	deadline sim.Time
	objs     []core.ObjectID
	versions map[core.ObjectID]db.Version
}

// execLocal runs one transaction under the local ceiling approach: every
// object is replicated at every site, so all reads and writes are local;
// the site's own ceiling manager synchronizes them; the transaction
// commits locally; and the written versions are then shipped to the
// other sites' message servers for asynchronous installation
// (restriction 3). Reads sample replica staleness — the temporal
// inconsistency the approach trades for responsiveness.
func (c *Cluster) execLocal(p *sim.Proc, t *workload.Txn) {
	home := c.sites[t.Home]
	// Pin the manager instance for the whole attempt: a crash replaces
	// the site's (volatile) manager, and registration/release must pair
	// up against the same one.
	mgr := home.mgr
	st := core.NewTxState(t.ID, t.Priority(), p)
	st.ReadSet = t.ReadSet()
	st.WriteSet = t.WriteSet()
	st.OnPrioChange = func(pr sim.Priority) { home.cpu.Reprioritize(p, pr) }

	c.emit(home.id, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")
	c.emit(home.id, journal.KRegister, t.ID, 0, 0, 0, "")
	mgr.Register(st)
	deadlineEv := c.K.At(t.Deadline, func() { p.Interrupt(txn.ErrDeadlineMissed) })
	var reads []readSample
	err := c.localBody(p, st, t, home, mgr, &reads)
	deadlineEv.Cancel()
	if c.faultsOn && errors.Is(err, ErrSiteCrashed) {
		// The home site crashed: its manager (with this registration)
		// was already discarded wholesale.
		c.record(p, t, st, err, 0)
		return
	}

	var versions map[core.ObjectID]db.Version
	if err == nil && len(st.WriteSet) > 0 {
		// Commit locally: install the new versions on the primary
		// copies (which live here by restriction 2).
		versions = make(map[core.ObjectID]db.Version, len(st.WriteSet))
		for _, obj := range st.WriteSet {
			v := home.store.Write(obj, t.ID, p.Now())
			home.mv.Write(obj, t.ID, p.Now())
			versions[obj] = v
		}
	}
	if err == nil && t.Kind == workload.ReadOnly && len(reads) >= 2 {
		c.classifyView(reads)
	}
	mgr.ReleaseAll(st)
	mgr.Unregister(st)
	c.emit(home.id, journal.KUnregister, t.ID, 0, 0, 0, "")

	msgs := 0
	if versions != nil {
		// Propagate to every other site after commit; the transaction
		// does not wait (restriction 3 decouples primaries from
		// secondaries).
		msg := installMsg{origin: t.ID, deadline: t.Deadline, objs: st.WriteSet, versions: versions}
		for _, other := range c.sites {
			if other.id == home.id {
				continue
			}
			msgs++
			c.Net.Send(home.id, other.id, installPort, msg)
		}
	}
	c.record(p, t, st, err, msgs)
}

// readSample records which version a read observed, for the temporal
// consistency classification.
type readSample struct {
	obj core.ObjectID
	seq int64
}

func (c *Cluster) localBody(p *sim.Proc, st *core.TxState, t *workload.Txn, home *site, mgr *core.Ceiling, reads *[]readSample) error {
	// Snapshot reads pin the view to a single instant old enough for
	// propagation to have completed everywhere.
	snapshotAt := t.Arrival.Add(-c.cfg.SnapshotLag)
	for _, op := range t.Ops {
		if c.faultsOn && c.crashed[home.id] {
			// A wake was already in flight when the site crashed; the
			// process must not keep executing there.
			return ErrSiteCrashed
		}
		if err := mgr.Acquire(p, st, op.Obj, op.Mode); err != nil {
			return err
		}
		if op.Mode == core.Read {
			c.sampleStaleness(home, op.Obj, p.Now())
			*reads = append(*reads, c.readVersion(home, op.Obj, t, snapshotAt))
		}
		if err := home.use(p, st.Eff(), c.cfg.CPUPerObj); err != nil {
			return err
		}
		c.emit(home.id, journal.KOp, t.ID, int32(op.Obj), int64(op.Mode), 0, "")
		if c.History != nil {
			c.History.Record(t.ID, op.Obj, op.Mode, p.Now())
		}
	}
	return nil
}

// readVersion resolves which version a read observes: the snapshot
// version under the multiversion scheme (falling back to the latest on
// a history miss), otherwise the replica's latest copy.
func (c *Cluster) readVersion(s *site, obj core.ObjectID, t *workload.Txn, snapshotAt sim.Time) readSample {
	if c.cfg.Multiversion && t.Kind == workload.ReadOnly {
		if v, ok := s.mv.AsOf(obj, snapshotAt); ok {
			return readSample{obj: obj, seq: v.Seq}
		}
		// The snapshot predates every retained version. If version 1
		// is still retained (or nothing was ever written), the state
		// at the snapshot is the implicit zero version; otherwise the
		// needed version was evicted and the reader falls back to the
		// latest copy.
		if s.mv.FirstSeq(obj) <= 1 {
			return readSample{obj: obj, seq: 0}
		}
		c.repl.SnapshotMisses++
	}
	return readSample{obj: obj, seq: s.mv.Latest(obj).Seq}
}

// classifyView checks whether a committed read-only transaction's reads
// could all have been the newest versions at one instant, judged against
// the primary copies' version histories.
func (c *Cluster) classifyView(reads []readSample) {
	const (
		minTime = sim.Time(-1 << 62)
		maxTime = sim.Time(1<<62 - 1)
	)
	lo, hi := minTime, maxTime
	for _, r := range reads {
		primary := c.sites[c.Catalog.PrimarySite(r.obj)]
		start, end, known := primary.mv.Interval(r.obj, r.seq)
		if !known {
			c.repl.UnknownViews++
			return
		}
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
	}
	if lo < hi {
		c.repl.ConsistentViews++
	} else {
		c.repl.InconsistentViews++
	}
}

// sampleStaleness compares the local copy against the primary.
func (c *Cluster) sampleStaleness(s *site, obj core.ObjectID, now sim.Time) {
	c.repl.ReadSamples++
	primarySite := c.Catalog.PrimarySite(obj)
	if primarySite == s.id {
		return
	}
	primary := c.sites[primarySite].store.Read(obj)
	if lag := s.store.Staleness(obj, primary, now); lag > 0 {
		c.repl.StaleReads++
		c.repl.TotalLag += lag
	}
}

// registerInstallHandlers wires every site's message server to spawn an
// installer process per arriving update.
func (c *Cluster) registerInstallHandlers() {
	for _, s := range c.sites {
		s := s
		c.Net.Server(s.id).Handle(installPort, func(m netsim.Message) {
			msg, ok := m.Payload.(installMsg)
			if !ok {
				return
			}
			c.K.Spawn(fmt.Sprintf("install-%d@%d", msg.origin, s.id), func(p *sim.Proc) {
				c.install(p, s, msg)
			})
		})
	}
}

// install applies one replicated update at a secondary site. The
// installer synchronizes through the site's local ceiling manager with
// the originating transaction's (deadline-derived) priority, consuming
// apply CPU per object. Attempts that wait too long are timed out and
// retried; after the retry budget the update is dropped and counted —
// the copy stays at its previous version until a newer update lands,
// which the monotone Install tolerates.
func (c *Cluster) install(p *sim.Proc, s *site, msg installMsg) {
	c.installSeq++
	// Installer ids live far above transaction ids so priority
	// tie-breaks favor real transactions.
	id := int64(1)<<40 + c.installSeq
	prio := sim.Priority{Deadline: int64(msg.deadline), TxID: id}
	for attempt := 0; attempt < c.cfg.InstallRetries; attempt++ {
		if c.faultsOn && c.crashed[s.id] {
			return // the replica crashed; the update dies with it
		}
		// Pin the manager per attempt: a crash replaces it, and this
		// attempt's release must pair with its own registration.
		mgr := s.mgr
		st := core.NewTxState(id, prio, p)
		st.WriteSet = msg.objs
		st.OnPrioChange = func(pr sim.Priority) { s.cpu.Reprioritize(p, pr) }
		c.emit(s.id, journal.KRegister, id, 0, int64(attempt), 0, "install")
		mgr.Register(st)
		timeout := c.K.After(c.cfg.InstallTimeout, func() { p.Interrupt(errInstallTimeout) })
		err := c.installBody(p, st, s, mgr, msg)
		timeout.Cancel()
		mgr.ReleaseAll(st)
		mgr.Unregister(st)
		c.emit(s.id, journal.KUnregister, id, 0, int64(attempt), 0, "install")
		switch {
		case err == nil:
			c.repl.Installs++
			c.twopcCounter("repl_installs_total", "Replica updates applied at secondary sites.").Inc()
			c.emit(s.id, journal.KInstall, msg.origin, 0, id, int64(attempt), "")
			return
		case errors.Is(err, sim.ErrShutdown):
			return
		case c.faultsOn && errors.Is(err, ErrSiteCrashed):
			return
		}
		if p.Sleep(c.cfg.InstallTimeout/4) != nil {
			return
		}
	}
	c.repl.InstallDrops++
	c.twopcCounter("repl_install_drops_total", "Replica updates dropped after exhausting retries.").Inc()
	c.emit(s.id, journal.KInstallDrop, msg.origin, 0, id, 0, "")
}

func (c *Cluster) installBody(p *sim.Proc, st *core.TxState, s *site, mgr *core.Ceiling, msg installMsg) error {
	for _, obj := range msg.objs {
		if c.faultsOn && c.crashed[s.id] {
			return ErrSiteCrashed
		}
		if err := mgr.Acquire(p, st, obj, core.Write); err != nil {
			return err
		}
		if err := s.use(p, st.Eff(), c.cfg.ApplyPerObj); err != nil {
			return err
		}
	}
	for _, obj := range msg.objs {
		s.store.Install(obj, msg.versions[obj])
		s.mv.Install(obj, msg.versions[obj])
	}
	return nil
}
