package dist

// Abort and timeout paths of the two-phase commit protocol. The
// VoteFault hook injects participant abort votes that memory-resident
// participants would otherwise never cast; site failures exercise the
// paper's time-out mechanism as the coordinator's escape hatch.

import (
	"testing"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

// twopcJournalKinds extracts (kind, a) pairs for 2PC records of one tx.
func twopcVotes(j *journal.Journal, tx int64) (commitVotes, abortVotes, decisions, commitDecisions int) {
	for _, r := range j.Records() {
		if r.Tx != tx {
			continue
		}
		switch r.Kind {
		case journal.KTwoPCVote:
			if r.A == 1 {
				commitVotes++
			} else {
				abortVotes++
			}
		case journal.KTwoPCDecision:
			if r.Note == "coord" {
				continue
			}
			decisions++
			if r.A == 1 {
				commitDecisions++
			}
		}
	}
	return
}

func TestTwoPCParticipantAbortVote(t *testing.T) {
	conf := cfg(GlobalCeiling, 5*sim.Millisecond)
	conf.Journal = journal.New(1, "twophase-test")
	conf.VoteFault = func(site db.SiteID, txID int64) bool { return site == 2 && txID == 1 }
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	// A write at site 2's primary from home 1 makes site 2 a 2PC
	// participant, and its injected abort vote must doom the commit.
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{{Obj: 20, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 0 {
		t.Fatalf("summary: %+v — transaction committed over an abort vote", sum)
	}
	if v := c.Store(2).Read(20); v.Seq != 0 {
		t.Fatalf("aborted write reached the primary store: %+v", v)
	}
	if c.TwoPCDecisions() != 1 {
		t.Fatalf("decisions = %d, want 1 abort decision", c.TwoPCDecisions())
	}
	cv, av, dec, cd := twopcVotes(conf.Journal, 1)
	if cv != 0 || av != 1 || dec != 1 || cd != 0 {
		t.Fatalf("journal: commitVotes=%d abortVotes=%d decisions=%d commitDecisions=%d", cv, av, dec, cd)
	}
	if vs := audit.Run(conf.Journal, audit.NewTwoPCConsistent()); len(vs) > 0 {
		t.Fatalf("2PC auditor: %v", vs)
	}
}

func TestTwoPCMixedVotes(t *testing.T) {
	conf := cfg(GlobalCeiling, 5*sim.Millisecond)
	conf.GCMSite = 1 // keep locking free for the home site
	conf.Journal = journal.New(1, "twophase-test")
	conf.VoteFault = func(site db.SiteID, txID int64) bool { return site == 0 }
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	// Two remote write participants: site 2 votes commit, site 0 votes
	// abort. The coordinator must decide abort for both.
	tx := mkDistTxn(1, 1, 0, sim.Time(sim.Second), []workload.Op{
		{Obj: 20, Mode: core.Write}, // primary site 2, votes commit
		{Obj: 0, Mode: core.Write},  // primary site 0, votes abort
	})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 0 {
		t.Fatalf("summary: %+v — mixed votes must abort", sum)
	}
	if v := c.Store(2).Read(20); v.Seq != 0 {
		t.Fatalf("write applied at the commit-voting participant: %+v", v)
	}
	if v := c.Store(0).Read(0); v.Seq != 0 {
		t.Fatalf("write applied at the abort-voting participant: %+v", v)
	}
	if c.TwoPCDecisions() != 2 {
		t.Fatalf("decisions = %d, want abort delivered to both participants", c.TwoPCDecisions())
	}
	cv, av, dec, cd := twopcVotes(conf.Journal, 1)
	if cv != 1 || av != 1 || dec != 2 || cd != 0 {
		t.Fatalf("journal: commitVotes=%d abortVotes=%d decisions=%d commitDecisions=%d", cv, av, dec, cd)
	}
	if vs := audit.Run(conf.Journal, audit.NewTwoPCConsistent()); len(vs) > 0 {
		t.Fatalf("2PC auditor: %v", vs)
	}
}

func TestTwoPCParticipantDownTimesOut(t *testing.T) {
	conf := cfg(GlobalCeiling, 5*sim.Millisecond)
	conf.GCMSite = 1
	conf.Journal = journal.New(1, "twophase-test")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	// Site 2 goes down just before the prepare round: the prepare is
	// dropped, no vote ever returns, and the parked coordinator is
	// unblocked only by its deadline — the paper's time-out mechanism.
	c.FailSite(2, sim.Time(25*sim.Millisecond), 0)
	tx := mkDistTxn(1, 1, 0, sim.Time(200*sim.Millisecond), []workload.Op{{Obj: 20, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 0 || sum.Missed != 1 {
		t.Fatalf("summary: %+v — coordinator must abort via deadline timeout", sum)
	}
	rec := c.Monitor.Records()[0]
	if rec.Finish != sim.Time(200*sim.Millisecond) {
		t.Fatalf("aborted at %v, want the 200ms deadline", rec.Finish)
	}
	if c.Net.DroppedDown == 0 {
		t.Fatal("no message was dropped toward the down participant")
	}
	if v := c.Store(2).Read(20); v.Seq != 0 {
		t.Fatalf("write applied without a commit decision: %+v", v)
	}
	if vs := audit.Run(conf.Journal, audit.NewTwoPCConsistent()); len(vs) > 0 {
		t.Fatalf("2PC auditor: %v", vs)
	}
}

func TestTwoPCLateVoteIgnored(t *testing.T) {
	conf := cfg(GlobalCeiling, 5*sim.Millisecond)
	conf.GCMSite = 1
	conf.Journal = journal.New(1, "twophase-test")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	// The deadline lands while the votes are in flight: the coordinator
	// aborts mid-protocol, deletes its vote collector, and the commit
	// vote arriving afterwards must be ignored without resurrecting the
	// transaction. With the GCM at the home site the ops finish at 20ms
	// and the vote returns at 30ms; the deadline hits at 28ms.
	tx := mkDistTxn(1, 1, 0, sim.Time(28*sim.Millisecond), []workload.Op{{Obj: 20, Mode: core.Write}})
	c.Load([]*workload.Txn{tx})
	sum := c.Run()
	if sum.Committed != 0 || sum.Missed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	cv, _, dec, cd := twopcVotes(conf.Journal, 1)
	if cv != 1 {
		t.Fatalf("participant should have voted commit before the abort, got %d votes", cv)
	}
	if dec != 1 || cd != 0 {
		t.Fatalf("decisions=%d commitDecisions=%d, want one abort decision", dec, cd)
	}
	if v := c.Store(2).Read(20); v.Seq != 0 {
		t.Fatalf("write applied after coordinator abort: %+v", v)
	}
	if vs := audit.Run(conf.Journal, audit.NewTwoPCConsistent()); len(vs) > 0 {
		t.Fatalf("2PC auditor: %v", vs)
	}
}
