package dist

import (
	"errors"
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// execGlobal runs one transaction under the global ceiling manager:
// every lock request travels to the GCM site and is decided against the
// system-wide ceiling state; data accesses execute at the object's
// primary site; commits that wrote at remote sites run two-phase commit;
// locks are released at the GCM after the outcome, so they are held
// across the network for the duration of the communication delays — the
// cost the paper attributes to this approach.
//
// With a fault plan attached, a transaction arriving while the GCM site
// is down degrades gracefully: it registers with its home site's
// failover ceiling manager instead (journaled as KFailover) and keeps
// all locking local for that attempt. The choice is sticky per attempt,
// preserving strict two-phase locking against a single manager; global
// serializability across managers is deliberately not promised during
// degraded windows (see DESIGN.md, "Fault model").
func (c *Cluster) execGlobal(p *sim.Proc, t *workload.Txn) {
	st := c.newTxState(p, t)
	home := t.Home
	mgr, mgrSite := c.gcm, c.cfg.GCMSite
	degraded := false
	if c.faultsOn && c.gcmDown && home != c.cfg.GCMSite {
		mgr, mgrSite, degraded = c.failover[home], home, true
	}
	msgs := 0
	c.emit(home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")
	if degraded {
		c.mFailovers.Inc()
		c.emit(home, journal.KFailover, t.ID, 0, int64(c.cfg.GCMSite), 0, "")
	}

	// Announce the transaction (its access sets feed the ceilings) to
	// the manager. The registration message departs before the first
	// lock request, so it is in effect when that request arrives.
	if home == mgrSite {
		c.emit(mgrSite, journal.KRegister, t.ID, 0, 0, 0, "")
		mgr.Register(st)
		c.trackGCMReg(mgr, t.ID, home, p, st)
	} else {
		msgs++
		c.K.After(c.Net.Delay(home, mgrSite), func() {
			if c.faultsOn && !c.Net.Reachable(home, mgrSite) {
				return // the registration message is lost
			}
			c.emit(mgrSite, journal.KRegister, t.ID, 0, 0, 0, "")
			mgr.Register(st)
			c.trackGCMReg(mgr, t.ID, home, p, st)
		})
	}

	deadlineEv := c.K.At(t.Deadline, func() { p.Interrupt(txn.ErrDeadlineMissed) })
	err := c.globalBody(p, st, t, mgr, mgrSite, &msgs)
	deadlineEv.Cancel()

	// Release at the manager. A remote transaction's release is one
	// more message; the locks stay held while it travels. A transaction
	// killed by its home site's crash skips the release — the GCM
	// evicted its registration when it detected the crash.
	if c.faultsOn && errors.Is(err, ErrSiteCrashed) {
		c.record(p, t, st, err, msgs)
		return
	}
	if home == mgrSite {
		mgr.ReleaseAll(st)
		mgr.Unregister(st)
		c.emit(mgrSite, journal.KUnregister, t.ID, 0, 0, 0, "")
		c.untrackGCMReg(mgr, t.ID)
	} else {
		msgs++
		c.K.After(c.Net.Delay(home, mgrSite), func() {
			if c.faultsOn && !c.Net.Reachable(home, mgrSite) {
				return // the release message is lost; resync reclaims it
			}
			mgr.ReleaseAll(st)
			mgr.Unregister(st)
			c.emit(mgrSite, journal.KUnregister, t.ID, 0, 0, 0, "")
			c.untrackGCMReg(mgr, t.ID)
		})
	}
	if err == nil {
		// Apply committed writes at their primary sites (writes were
		// performed there during the access phase; the values become
		// visible at commit). Under a fault plan, remote primaries are
		// 2PC participants and install their own share when the commit
		// decision reaches them.
		for _, obj := range st.WriteSet {
			owner := c.Catalog.PrimarySite(obj)
			if c.faultsOn && owner != home {
				continue
			}
			c.sites[owner].store.Write(obj, t.ID, p.Now())
		}
	}
	c.record(p, t, st, err, msgs)
}

// trackGCMReg remembers a registration at the real GCM so crash
// detection can evict it; failover-manager registrations die with their
// (volatile, rebuilt-on-crash) manager instead.
func (c *Cluster) trackGCMReg(mgr *core.Ceiling, txID int64, home db.SiteID, p *sim.Proc, st *core.TxState) {
	if c.faultsOn && mgr == c.gcm {
		c.gcmReg[txID] = &gcmEntry{st: st, home: home, p: p}
	}
}

func (c *Cluster) untrackGCMReg(mgr *core.Ceiling, txID int64) {
	if c.faultsOn && mgr == c.gcm {
		delete(c.gcmReg, txID)
	}
}

func (c *Cluster) globalBody(p *sim.Proc, st *core.TxState, t *workload.Txn, mgr *core.Ceiling, mgrSite db.SiteID, msgs *int) error {
	home := t.Home
	remoteWriters := make(map[int]bool)

	for _, op := range t.Ops {
		if c.faultsOn && c.crashed[home] {
			// The home site crashed while this process had a wake in
			// flight; it must not keep executing.
			return ErrSiteCrashed
		}
		// Lock at the ceiling manager.
		if home != mgrSite {
			*msgs += 2
			if err := c.Net.Hop(p, home, mgrSite); err != nil {
				return err
			}
		}
		if err := mgr.Acquire(p, st, op.Obj, op.Mode); err != nil {
			return err
		}
		if home != mgrSite {
			if err := c.Net.Hop(p, mgrSite, home); err != nil {
				return err
			}
		}
		// Access the data object at its primary site.
		owner := c.Catalog.PrimarySite(op.Obj)
		if owner != home {
			*msgs += 2
			if err := c.Net.Hop(p, home, owner); err != nil {
				return err
			}
		}
		if err := c.sites[owner].use(p, st.Eff(), c.cfg.CPUPerObj); err != nil {
			return err
		}
		if owner != home {
			if err := c.Net.Hop(p, owner, home); err != nil {
				return err
			}
		}
		c.emit(home, journal.KOp, t.ID, int32(op.Obj), int64(op.Mode), 0, "")
		if c.History != nil {
			c.History.Record(t.ID, op.Obj, op.Mode, p.Now())
		}
		if op.Mode == core.Write && owner != home {
			remoteWriters[int(owner)] = true
		}
	}

	// Two-phase commit when the transaction wrote at remote sites:
	// prepares go out in parallel over the message servers, the
	// coordinator parks for the votes, and decisions ship without
	// waiting.
	if len(remoteWriters) > 0 {
		parts := make([]db.SiteID, 0, len(remoteWriters))
		for site := range remoteWriters {
			parts = append(parts, db.SiteID(site))
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		objsBySite := make(map[db.SiteID][]core.ObjectID)
		if c.faultsOn {
			// Each participant's share of the write-set rides in its
			// prepare, so it can install the writes itself when the
			// commit decision (possibly resolved after a crash)
			// reaches it.
			for _, obj := range st.WriteSet {
				owner := c.Catalog.PrimarySite(obj)
				if owner != home {
					objsBySite[owner] = append(objsBySite[owner], obj)
				}
			}
		}
		if err := c.runTwoPC(p, home, t.ID, parts, objsBySite, msgs); err != nil {
			return err
		}
	}
	return nil
}
