package dist

import (
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/sim"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// execGlobal runs one transaction under the global ceiling manager:
// every lock request travels to the GCM site and is decided against the
// system-wide ceiling state; data accesses execute at the object's
// primary site; commits that wrote at remote sites run two-phase commit;
// locks are released at the GCM after the outcome, so they are held
// across the network for the duration of the communication delays — the
// cost the paper attributes to this approach.
func (c *Cluster) execGlobal(p *sim.Proc, t *workload.Txn) {
	st := c.newTxState(p, t)
	home := t.Home
	gcmSite := c.cfg.GCMSite
	msgs := 0
	c.emit(home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")

	// Announce the transaction (its access sets feed the ceilings) to
	// the GCM. The registration message departs before the first lock
	// request, so it is in effect when that request arrives.
	if home == gcmSite {
		c.emit(gcmSite, journal.KRegister, t.ID, 0, 0, 0, "")
		c.gcm.Register(st)
	} else {
		msgs++
		c.K.After(c.Net.Delay(home, gcmSite), func() {
			c.emit(gcmSite, journal.KRegister, t.ID, 0, 0, 0, "")
			c.gcm.Register(st)
		})
	}

	deadlineEv := c.K.At(t.Deadline, func() { p.Interrupt(txn.ErrDeadlineMissed) })
	err := c.globalBody(p, st, t, &msgs)
	deadlineEv.Cancel()

	// Release at the GCM. A remote transaction's release is one more
	// message; the locks stay held while it travels.
	if home == gcmSite {
		c.gcm.ReleaseAll(st)
		c.gcm.Unregister(st)
		c.emit(gcmSite, journal.KUnregister, t.ID, 0, 0, 0, "")
	} else {
		msgs++
		c.K.After(c.Net.Delay(home, gcmSite), func() {
			c.gcm.ReleaseAll(st)
			c.gcm.Unregister(st)
			c.emit(gcmSite, journal.KUnregister, t.ID, 0, 0, 0, "")
		})
	}
	if err == nil {
		// Apply committed writes at their primary sites (writes were
		// performed there during the access phase; the values become
		// visible at commit).
		for _, obj := range st.WriteSet {
			c.sites[c.Catalog.PrimarySite(obj)].store.Write(obj, t.ID, p.Now())
		}
	}
	c.record(p, t, st, err, msgs)
}

func (c *Cluster) globalBody(p *sim.Proc, st *core.TxState, t *workload.Txn, msgs *int) error {
	home := t.Home
	gcmSite := c.cfg.GCMSite
	remoteWriters := make(map[int]bool)

	for _, op := range t.Ops {
		// Lock at the global ceiling manager.
		if home != gcmSite {
			*msgs += 2
			if err := c.Net.Hop(p, home, gcmSite); err != nil {
				return err
			}
		}
		if err := c.gcm.Acquire(p, st, op.Obj, op.Mode); err != nil {
			return err
		}
		if home != gcmSite {
			if err := c.Net.Hop(p, gcmSite, home); err != nil {
				return err
			}
		}
		// Access the data object at its primary site.
		owner := c.Catalog.PrimarySite(op.Obj)
		if owner != home {
			*msgs += 2
			if err := c.Net.Hop(p, home, owner); err != nil {
				return err
			}
		}
		if err := c.sites[owner].use(p, st.Eff(), c.cfg.CPUPerObj); err != nil {
			return err
		}
		if owner != home {
			if err := c.Net.Hop(p, owner, home); err != nil {
				return err
			}
		}
		c.emit(home, journal.KOp, t.ID, int32(op.Obj), int64(op.Mode), 0, "")
		if c.History != nil {
			c.History.Record(t.ID, op.Obj, op.Mode, p.Now())
		}
		if op.Mode == core.Write && owner != home {
			remoteWriters[int(owner)] = true
		}
	}

	// Two-phase commit when the transaction wrote at remote sites:
	// prepares go out in parallel over the message servers, the
	// coordinator parks for the votes, and decisions ship without
	// waiting.
	if len(remoteWriters) > 0 {
		parts := make([]db.SiteID, 0, len(remoteWriters))
		for site := range remoteWriters {
			parts = append(parts, db.SiteID(site))
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
		if err := c.runTwoPC(p, home, t.ID, parts, msgs); err != nil {
			return err
		}
	}
	return nil
}
