package dist

import (
	"errors"
	"sort"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
	"rtlock/internal/txn"
	"rtlock/internal/workload"
)

// This file implements the placement-aware execution paths selected by
// Config.Placement (see internal/place):
//
//   - execShard: primary-copy sharding. Locks and data both live at each
//     object's primary site; a transaction registers with every shard
//     manager its access sets touch and runs strict two-phase locking
//     against each. Writers that touched remote shards commit with 2PC.
//
//   - execQuorum: sharded locking plus K-replica quorum replication.
//     Reads gather R replica versions, committed writes push new
//     versions to replicas and wait for W acknowledgements while the
//     write lock is still held — so R+W > K makes every read quorum
//     intersect the latest write quorum (the audit.QuorumIntersection
//     invariant).
//
//   - execPrimary: the uncoordinated baseline. Direct RPC to each
//     object's primary, no distributed locking, no 2PC, writes land the
//     instant the op executes. Serializability is waived by construction
//     and journaled as such (KPlacement); comparing the coordinated
//     modes against this baseline yields the consistency tax.

// ErrShardEvicted aborts a transaction whose request reached a shard
// manager that does not know it: the registration was lost while the
// site was down, or the manager restarted after a crash and dropped its
// lock table. The manager refuses the request.
var ErrShardEvicted = errors.New("dist: shard manager evicted transaction registration")

// shardPin is one shard manager a transaction synchronizes with,
// pinned per attempt so a crash-induced manager replacement cannot
// split an attempt across two lock tables.
type shardPin struct {
	site db.SiteID
	mgr  *core.Ceiling
	st   *core.TxState
}

// shardSites returns the distinct primary sites of a transaction's
// access sets, ascending.
func (c *Cluster) shardSites(t *workload.Txn) []db.SiteID {
	seen := make(map[db.SiteID]bool)
	out := make([]db.SiteID, 0, 4)
	for _, op := range t.Ops {
		s := c.Catalog.PrimarySite(op.Obj)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// filterShard keeps the objects whose primary is the given shard.
func (c *Cluster) filterShard(objs []core.ObjectID, shard db.SiteID) []core.ObjectID {
	out := make([]core.ObjectID, 0, len(objs))
	for _, o := range objs {
		if c.Catalog.PrimarySite(o) == shard {
			out = append(out, o)
		}
	}
	return out
}

// newShardState builds the per-manager protocol state holding just the
// slice of the access sets that manager owns, so each shard's ceilings
// see only the demand actually arriving there.
func (c *Cluster) newShardState(p *sim.Proc, t *workload.Txn, shard db.SiteID) *core.TxState {
	st := core.NewTxState(t.ID, t.Priority(), p)
	st.ReadSet = c.filterShard(t.ReadSet(), shard)
	st.WriteSet = c.filterShard(t.WriteSet(), shard)
	st.OnPrioChange = func(pr sim.Priority) {
		for _, s := range c.sites {
			s.cpu.Reprioritize(p, pr)
		}
	}
	return st
}

// trackShardReg remembers a registration at a shard manager so crash
// detection can evict it (no-op without fault machinery).
func (c *Cluster) trackShardReg(site db.SiteID, txID int64, home db.SiteID, p *sim.Proc, st *core.TxState) {
	if c.shardReg != nil {
		c.shardReg[site][txID] = &gcmEntry{st: st, home: home, p: p}
	}
}

func (c *Cluster) untrackShardReg(site db.SiteID, txID int64) {
	if c.shardReg != nil {
		delete(c.shardReg[site], txID)
	}
}

// registerShards announces the transaction to every shard manager it
// will touch. Local registration is immediate; remote registrations
// ride one message each and are in effect before the first lock request
// can arrive there (the request travels the same link).
func (c *Cluster) registerShards(p *sim.Proc, t *workload.Txn, pins []*shardPin, msgs *int) {
	home := t.Home
	for _, pin := range pins {
		pin := pin
		if pin.site == home {
			c.emit(pin.site, journal.KRegister, t.ID, 0, 0, 0, "")
			pin.mgr.Register(pin.st)
			c.trackShardReg(pin.site, t.ID, home, p, pin.st)
			continue
		}
		*msgs++
		c.K.After(c.Net.Delay(home, pin.site), func() {
			if c.faultsOn && !c.Net.Reachable(home, pin.site) {
				return // the registration message is lost
			}
			if c.faultsOn && c.sites[pin.site].mgr != pin.mgr {
				return // the manager rebooted while the registration traveled
			}
			c.emit(pin.site, journal.KRegister, t.ID, 0, 0, 0, "")
			pin.mgr.Register(pin.st)
			c.trackShardReg(pin.site, t.ID, home, p, pin.st)
		})
	}
}

// releaseShards releases and unregisters at every pinned manager after
// the outcome. Remote releases ride one message each; a lost release is
// reclaimed only by crash eviction, mirroring the global approach.
func (c *Cluster) releaseShards(t *workload.Txn, pins []*shardPin, msgs *int) {
	home := t.Home
	for _, pin := range pins {
		pin := pin
		if pin.site == home {
			pin.mgr.ReleaseAll(pin.st)
			pin.mgr.Unregister(pin.st)
			c.emit(pin.site, journal.KUnregister, t.ID, 0, 0, 0, "")
			c.untrackShardReg(pin.site, t.ID)
			continue
		}
		*msgs++
		c.K.After(c.Net.Delay(home, pin.site), func() {
			if c.faultsOn && !c.Net.Reachable(home, pin.site) {
				return // the release message is lost; eviction reclaims it
			}
			if c.faultsOn && (c.sites[pin.site].mgr != pin.mgr || !pin.mgr.Registered(pin.st)) {
				return // the manager rebooted or never learned of us
			}
			pin.mgr.ReleaseAll(pin.st)
			pin.mgr.Unregister(pin.st)
			c.emit(pin.site, journal.KUnregister, t.ID, 0, 0, 0, "")
			c.untrackShardReg(pin.site, t.ID)
		})
	}
}

// aggState folds the per-shard blocking statistics into one state for
// the monitor record.
func aggState(pins []*shardPin) *core.TxState {
	agg := &core.TxState{}
	for _, pin := range pins {
		agg.BlockedTime += pin.st.BlockedTime
		agg.BlockedCount += pin.st.BlockedCount
	}
	return agg
}

// shardBody runs the access phase against the pinned shard managers:
// for each op the process travels to the object's primary, acquires the
// lock from that shard's ceiling manager, consumes the access demand
// there, and returns. When quorum is set, reads additionally gather an
// R-sized read quorum before the next op.
func (c *Cluster) shardBody(p *sim.Proc, t *workload.Txn, pins map[db.SiteID]*shardPin, msgs *int, quorum bool) error {
	home := t.Home
	for _, op := range t.Ops {
		if c.faultsOn && c.crashed[home] {
			return ErrSiteCrashed
		}
		owner := c.Catalog.PrimarySite(op.Obj)
		pin := pins[owner]
		if owner != home {
			*msgs += 2
			if err := c.Net.Hop(p, home, owner); err != nil {
				return err
			}
		}
		if c.faultsOn && (c.sites[owner].mgr != pin.mgr || !pin.mgr.Registered(pin.st)) {
			// The shard manager restarted (dropping its lock table) or the
			// registration message was lost while the site was down; the
			// manager refuses a request from a transaction it does not
			// know and the transaction aborts.
			return ErrShardEvicted
		}
		if err := pin.mgr.Acquire(p, pin.st, op.Obj, op.Mode); err != nil {
			return err
		}
		if err := c.sites[owner].use(p, pin.st.Eff(), c.cfg.CPUPerObj); err != nil {
			return err
		}
		if owner != home {
			if err := c.Net.Hop(p, owner, home); err != nil {
				return err
			}
		}
		c.emit(home, journal.KOp, t.ID, int32(op.Obj), int64(op.Mode), 0, "")
		if c.History != nil {
			c.History.Record(t.ID, op.Obj, op.Mode, p.Now())
		}
		if quorum && op.Mode == core.Read {
			if err := c.quorumRead(p, t, op.Obj, owner, msgs); err != nil {
				return err
			}
		}
	}
	return nil
}

// shardCommitParts lists the remote shards the transaction wrote at —
// the 2PC participants — ascending, plus each participant's share of the
// write set when the fault machinery needs it carried in the prepares.
func (c *Cluster) shardCommitParts(t *workload.Txn, withObjs bool) ([]db.SiteID, map[db.SiteID][]core.ObjectID) {
	home := t.Home
	seen := make(map[db.SiteID]bool)
	parts := make([]db.SiteID, 0, 4)
	objsBySite := make(map[db.SiteID][]core.ObjectID)
	for _, obj := range t.WriteSet() {
		owner := c.Catalog.PrimarySite(obj)
		if owner == home {
			continue
		}
		if !seen[owner] {
			seen[owner] = true
			parts = append(parts, owner)
		}
		if withObjs {
			objsBySite[owner] = append(objsBySite[owner], obj)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	return parts, objsBySite
}

// execShard runs one transaction under primary-copy sharding.
func (c *Cluster) execShard(p *sim.Proc, t *workload.Txn) {
	home := t.Home
	msgs := 0
	c.emit(home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")

	pinList := make([]*shardPin, 0, 4)
	pins := make(map[db.SiteID]*shardPin)
	for _, sid := range c.shardSites(t) {
		pin := &shardPin{site: sid, mgr: c.sites[sid].mgr, st: c.newShardState(p, t, sid)}
		pinList = append(pinList, pin)
		pins[sid] = pin
	}
	c.registerShards(p, t, pinList, &msgs)

	deadlineEv := c.K.At(t.Deadline, func() { p.Interrupt(txn.ErrDeadlineMissed) })
	err := c.shardBody(p, t, pins, &msgs, false)
	if err == nil {
		parts, objsBySite := c.shardCommitParts(t, c.faultsOn)
		if !c.faultsOn {
			objsBySite = nil
		}
		err = c.runTwoPC(p, home, t.ID, parts, objsBySite, &msgs)
	}
	deadlineEv.Cancel()

	if c.faultsOn && errors.Is(err, ErrSiteCrashed) {
		c.record(p, t, aggState(pinList), err, msgs)
		return
	}
	c.releaseShards(t, pinList, &msgs)
	if err == nil {
		cross := false
		for _, obj := range t.WriteSet() {
			owner := c.Catalog.PrimarySite(obj)
			if owner != home {
				cross = true
				if c.faultsOn {
					// The remote shard is a 2PC participant and installs
					// its share when the commit decision reaches it.
					continue
				}
			}
			c.sites[owner].store.Write(obj, t.ID, p.Now())
		}
		if len(t.WriteSet()) > 0 {
			if cross {
				c.mShardCross.Inc()
			} else {
				c.mShardLocal.Inc()
			}
		}
	}
	c.record(p, t, aggState(pinList), err, msgs)
}

// Quorum replication rounds run over these message-server ports.
const (
	qreadPort      = "quorum-read"
	qreadReplyPort = "quorum-read-reply"
	qwritePort     = "quorum-write"
	qackPort       = "quorum-write-ack"
)

type qreadMsg struct {
	txID int64
	obj  core.ObjectID
	from db.SiteID
}

type qreadReply struct {
	txID int64
	obj  core.ObjectID
	from db.SiteID
	seq  int64
}

type qwriteMsg struct {
	txID  int64
	obj   core.ObjectID
	coord db.SiteID
	v     db.Version
}

type qackMsg struct {
	txID int64
	obj  core.ObjectID
	from db.SiteID
}

// quorumKey identifies one open replication round; kind keeps a late
// read reply from counting toward a later write round of the same
// object.
type quorumKey struct {
	tx   int64
	obj  core.ObjectID
	kind int // 0 read, 1 write
}

// quorumRound gathers one round's replies at the transaction's home.
// Replies are deduplicated per site so injected duplicates cannot
// satisfy the quorum early.
type quorumRound struct {
	need   int
	got    map[db.SiteID]bool
	maxSeq int64
	tok    *sim.Token
}

// registerQuorumHandlers wires the replication round ports at every
// site: replica-side version serves and installs, home-side reply and
// acknowledgement collection.
func (c *Cluster) registerQuorumHandlers() {
	for _, s := range c.sites {
		s := s
		srv := c.Net.Server(s.id)
		srv.Handle(qreadPort, func(m netsim.Message) {
			msg, ok := m.Payload.(qreadMsg)
			if !ok {
				return
			}
			c.Net.Send(s.id, msg.from, qreadReplyPort,
				qreadReply{txID: msg.txID, obj: msg.obj, from: s.id, seq: s.store.Read(msg.obj).Seq})
		})
		srv.Handle(qreadReplyPort, func(m netsim.Message) {
			msg, ok := m.Payload.(qreadReply)
			if !ok {
				return
			}
			round := c.qrounds[quorumKey{tx: msg.txID, obj: msg.obj, kind: 0}]
			if round == nil || round.got[msg.from] {
				return // round settled, or duplicate reply
			}
			round.got[msg.from] = true
			if msg.seq > round.maxSeq {
				round.maxSeq = msg.seq
			}
			if len(round.got) >= round.need {
				round.tok.Wake(nil)
			}
		})
		srv.Handle(qwritePort, func(m netsim.Message) {
			msg, ok := m.Payload.(qwriteMsg)
			if !ok {
				return
			}
			s.store.Install(msg.obj, msg.v)
			c.Net.Send(s.id, msg.coord, qackPort, qackMsg{txID: msg.txID, obj: msg.obj, from: s.id})
		})
		srv.Handle(qackPort, func(m netsim.Message) {
			msg, ok := m.Payload.(qackMsg)
			if !ok {
				return
			}
			round := c.qrounds[quorumKey{tx: msg.txID, obj: msg.obj, kind: 1}]
			if round == nil || round.got[msg.from] {
				return
			}
			round.got[msg.from] = true
			if len(round.got) >= round.need {
				round.tok.Wake(nil)
			}
		})
	}
}

// quorumRead gathers an R-sized read quorum for obj while the read lock
// is held at its primary. The primary's copy — just read by the op
// itself — counts as the first reply, so R=1 needs no messages. There is
// no per-round timer: a round starved by failures parks until the
// transaction's deadline interrupt, which is the liveness backstop for
// every mode.
func (c *Cluster) quorumRead(p *sim.Proc, t *workload.Txn, obj core.ObjectID, owner db.SiteID, msgs *int) error {
	maxSeq := c.sites[owner].store.Read(obj).Seq
	replies := 1
	r := c.Catalog.Placement().ReadQuorum()
	if r > 1 {
		reps := c.Catalog.Replicas(obj)
		round := &quorumRound{need: r - 1, got: make(map[db.SiteID]bool), maxSeq: maxSeq, tok: &sim.Token{}}
		key := quorumKey{tx: t.ID, obj: obj, kind: 0}
		c.qrounds[key] = round
		defer delete(c.qrounds, key)
		for _, rep := range reps[1:] {
			*msgs += 2 // request out, reply back
			c.Net.Send(t.Home, rep, qreadPort, qreadMsg{txID: t.ID, obj: obj, from: t.Home})
		}
		if err := p.Park(round.tok); err != nil {
			return err
		}
		if round.maxSeq > maxSeq {
			maxSeq = round.maxSeq
		}
		replies += len(round.got)
	}
	c.mQuorumReads.Inc()
	c.emit(owner, journal.KQuorumRead, t.ID, int32(obj), maxSeq, int64(replies), "")
	return nil
}

// quorumWrite installs a committed write at the object's primary and
// replicates it to the other replicas, waiting for a W-sized write
// quorum before reporting the round. It runs before the write locks are
// released, so the quorum-committed version is in place at W replicas
// before any later reader's quorum can form — the intersection
// invariant the auditor checks.
func (c *Cluster) quorumWrite(p *sim.Proc, t *workload.Txn, obj core.ObjectID, msgs *int) error {
	owner := c.Catalog.PrimarySite(obj)
	v := c.sites[owner].store.Write(obj, t.ID, p.Now())
	acks := 1 // the primary's own install
	w := c.Catalog.Placement().WriteQuorum()
	reps := c.Catalog.Replicas(obj)
	if len(reps) > 1 {
		var round *quorumRound
		if w > 1 {
			round = &quorumRound{need: w - 1, got: make(map[db.SiteID]bool), tok: &sim.Token{}}
			key := quorumKey{tx: t.ID, obj: obj, kind: 1}
			c.qrounds[key] = round
			defer delete(c.qrounds, key)
		}
		for _, rep := range reps[1:] {
			*msgs += 2 // install out, acknowledgement back
			c.Net.Send(owner, rep, qwritePort, qwriteMsg{txID: t.ID, obj: obj, coord: t.Home, v: v})
		}
		if round != nil {
			if err := p.Park(round.tok); err != nil {
				return err
			}
			acks += len(round.got)
		}
	}
	c.mQuorumWrites.Inc()
	c.emit(owner, journal.KQuorumWrite, t.ID, int32(obj), v.Seq, int64(acks), "")
	return nil
}

// execQuorum runs one transaction under quorum replication: sharded
// strict two-phase locking at the primaries, quorum rounds for the data.
// 2PC covers the atomic commit decision across remote write shards; the
// replication itself rides the write quorum rounds, so the prepares
// carry no write-set shares even under faults. A deadline striking
// mid-replication leaves the already-quorum-committed objects installed
// (there is no undo); the journal still records the miss.
func (c *Cluster) execQuorum(p *sim.Proc, t *workload.Txn) {
	home := t.Home
	msgs := 0
	c.emit(home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")

	pinList := make([]*shardPin, 0, 4)
	pins := make(map[db.SiteID]*shardPin)
	for _, sid := range c.shardSites(t) {
		pin := &shardPin{site: sid, mgr: c.sites[sid].mgr, st: c.newShardState(p, t, sid)}
		pinList = append(pinList, pin)
		pins[sid] = pin
	}
	c.registerShards(p, t, pinList, &msgs)

	deadlineEv := c.K.At(t.Deadline, func() { p.Interrupt(txn.ErrDeadlineMissed) })
	err := c.shardBody(p, t, pins, &msgs, true)
	if err == nil {
		parts, _ := c.shardCommitParts(t, false)
		err = c.runTwoPC(p, home, t.ID, parts, nil, &msgs)
	}
	if err == nil {
		for _, obj := range t.WriteSet() {
			if err = c.quorumWrite(p, t, obj, &msgs); err != nil {
				break
			}
		}
	}
	deadlineEv.Cancel()

	if c.faultsOn && errors.Is(err, ErrSiteCrashed) {
		c.record(p, t, aggState(pinList), err, msgs)
		return
	}
	c.releaseShards(t, pinList, &msgs)
	c.record(p, t, aggState(pinList), err, msgs)
}

// execPrimary runs one transaction under the uncoordinated baseline:
// direct RPC to each object's primary, no locks, no registration, no
// 2PC. Writes land the instant the op executes; nothing orders
// concurrent transactions, which is exactly the waived consistency the
// mode exists to price.
func (c *Cluster) execPrimary(p *sim.Proc, t *workload.Txn) {
	home := t.Home
	msgs := 0
	c.emit(home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")
	deadlineEv := c.K.At(t.Deadline, func() { p.Interrupt(txn.ErrDeadlineMissed) })
	var err error
	for _, op := range t.Ops {
		if c.faultsOn && c.crashed[home] {
			err = ErrSiteCrashed
			break
		}
		owner := c.Catalog.PrimarySite(op.Obj)
		if owner != home {
			msgs += 2
			if err = c.Net.Hop(p, home, owner); err != nil {
				break
			}
		}
		if err = c.sites[owner].use(p, t.Priority(), c.cfg.CPUPerObj); err != nil {
			break
		}
		if op.Mode == core.Write {
			c.sites[owner].store.Write(op.Obj, t.ID, p.Now())
		}
		if owner != home {
			if err = c.Net.Hop(p, owner, home); err != nil {
				break
			}
		}
		c.emit(home, journal.KOp, t.ID, int32(op.Obj), int64(op.Mode), 0, "")
	}
	deadlineEv.Cancel()
	c.record(p, t, &core.TxState{}, err, msgs)
}
