package dist

import (
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
)

// Two-phase commit over the message servers: the coordinator (the
// transaction's process at its home site) sends prepare messages to
// every participant, parks until all votes return, then ships the
// decision without waiting — the paper's transaction manager "executes
// the two-phase commit protocol to ensure that a transaction commits or
// aborts globally".
const (
	preparePort  = "2pc-prepare"
	votePort     = "2pc-vote"
	decisionPort = "2pc-decision"
)

type prepareMsg struct {
	txID  int64
	coord db.SiteID
}

type voteMsg struct {
	txID   int64
	commit bool
}

type decisionMsg struct {
	txID   int64
	commit bool
}

// voteCollector gathers one transaction's votes at the coordinator.
type voteCollector struct {
	need  int
	votes int
	tok   *sim.Token
}

// registerTwoPCHandlers wires prepare/vote/decision ports at every site.
func (c *Cluster) registerTwoPCHandlers() {
	for _, s := range c.sites {
		s := s
		srv := c.Net.Server(s.id)
		srv.Handle(preparePort, func(m netsim.Message) {
			msg, ok := m.Payload.(prepareMsg)
			if !ok {
				return
			}
			// Memory-resident participants have no log force; they
			// vote immediately. A configured VoteFault lets tests
			// force the abort vote this site would otherwise never
			// cast.
			commit := c.cfg.VoteFault == nil || !c.cfg.VoteFault(s.id, msg.txID)
			c.emit(s.id, journal.KTwoPCVote, msg.txID, 0, b2i(commit), 0, "")
			c.Net.Send(s.id, msg.coord, votePort, voteMsg{txID: msg.txID, commit: commit})
		})
		srv.Handle(votePort, func(m netsim.Message) {
			msg, ok := m.Payload.(voteMsg)
			if !ok {
				return
			}
			col, ok := c.twopc[msg.txID]
			if !ok {
				return // coordinator aborted; late vote ignored
			}
			if !msg.commit {
				col.tok.Wake(errVoteAbort)
				return
			}
			col.votes++
			if col.votes >= col.need {
				col.tok.Wake(nil)
			}
		})
		srv.Handle(decisionPort, func(m netsim.Message) {
			if msg, ok := m.Payload.(decisionMsg); ok {
				c.decisions++
				c.emit(s.id, journal.KTwoPCDecision, msg.txID, 0, b2i(msg.commit), 0, "")
			}
		})
	}
}

// errVoteAbort would flow from a participant voting no; with
// memory-resident participants it never fires but the path is wired.
var errVoteAbort = errDecisionAbort{}

type errDecisionAbort struct{}

func (errDecisionAbort) Error() string { return "dist: participant voted abort" }

// runTwoPC coordinates commit across the participants. It returns nil
// when every vote arrived, or the interruption error if the coordinator
// was aborted mid-protocol (deadline); either way the decision is sent
// to all participants.
func (c *Cluster) runTwoPC(p *sim.Proc, home db.SiteID, txID int64, participants []db.SiteID, msgs *int) error {
	if len(participants) == 0 {
		return nil
	}
	col := &voteCollector{need: len(participants), tok: &sim.Token{}}
	c.twopc[txID] = col
	col.tok.OnCancel = func() { delete(c.twopc, txID) }
	for _, s := range participants {
		*msgs += 2 // prepare out, vote back
		c.emit(home, journal.KTwoPCPrepare, txID, 0, int64(s), 0, "")
		c.Net.Send(home, s, preparePort, prepareMsg{txID: txID, coord: home})
	}
	err := p.Park(col.tok)
	delete(c.twopc, txID)
	commit := err == nil
	c.emit(home, journal.KTwoPCDecision, txID, 0, b2i(commit), 0, "coord")
	for _, s := range participants {
		*msgs++
		c.Net.Send(home, s, decisionPort, decisionMsg{txID: txID, commit: commit})
	}
	return err
}
