package dist

import (
	"errors"
	"fmt"

	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/journal"
	"rtlock/internal/metrics"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
)

// twopcCounter fetches a 2PC probe handle (no-op without a registry).
func (c *Cluster) twopcCounter(name, help string, labels ...metrics.Label) sim.Counter {
	return c.K.Metrics().Counter(name, help, labels...)
}

// observeInDoubt feeds one settled participant's in-doubt window length
// to the histogram.
func (c *Cluster) observeInDoubt(pt *preparedTx) {
	if d := c.K.Now().Sub(pt.at); d >= 0 {
		c.K.Metrics().Histogram("twopc_indoubt_ticks",
			"In-doubt windows of prepared participants, in ticks.", nil).Observe(int64(d))
	}
}

// Two-phase commit over the message servers: the coordinator (the
// transaction's process at its home site) sends prepare messages to
// every participant, parks until all votes return, then ships the
// decision without waiting — the paper's transaction manager "executes
// the two-phase commit protocol to ensure that a transaction commits or
// aborts globally".
//
// With a fault plan attached the protocol hardens to presumed-abort:
// participants force their yes-votes to the write-ahead log (becoming
// prepared — no unilateral abort afterwards), the coordinator forces
// commit decisions before shipping them and retries unanswered prepares
// with bounded doubling backoff, and a prepared participant whose
// decision never arrives resolves it with the coordinator's site —
// which answers from its log, or "pending" while the vote round is
// still open, or abort by presumption.
const (
	preparePort  = "2pc-prepare"
	votePort     = "2pc-vote"
	decisionPort = "2pc-decision"
	resolvePort  = "2pc-resolve"
	resolvedPort = "2pc-resolved"
)

type prepareMsg struct {
	txID  int64
	coord db.SiteID
	objs  []core.ObjectID
}

type voteMsg struct {
	txID   int64
	from   db.SiteID
	commit bool
}

type decisionMsg struct {
	txID   int64
	commit bool
}

// resolveMsg asks a coordinator's site for a transaction's outcome.
type resolveMsg struct {
	txID int64
	from db.SiteID
}

// Resolution statuses carried by resolvedMsg.
const (
	statusAbort   = 0
	statusCommit  = 1
	statusPending = 2
)

type resolvedMsg struct {
	txID   int64
	status int
}

// voteCollector gathers one transaction's votes at the coordinator.
// Votes are deduplicated per participant so injected duplicates and
// retry re-votes cannot satisfy the count early.
type voteCollector struct {
	need  int
	voted map[db.SiteID]bool
	tok   *sim.Token
}

// errPhaseTimeout unparks a coordinator whose vote round went
// unanswered; it retries or presumes abort.
var errPhaseTimeout = errors.New("dist: 2pc phase timed out")

// backoff is the capped-doubling retry timeout: base<<attempt up to
// 16×base, so large retry budgets degrade into steady polling instead
// of ever-longer silent waits. The default budget (3 retries, max
// shift 3 = 8×base) never reaches the cap, keeping existing runs
// bit-identical.
func backoff(base sim.Duration, attempt int) sim.Duration {
	if attempt > 4 {
		attempt = 4
	}
	return base << uint(attempt)
}

// registerTwoPCHandlers wires prepare/vote/decision ports at every site.
func (c *Cluster) registerTwoPCHandlers() {
	for _, s := range c.sites {
		s := s
		srv := c.Net.Server(s.id)
		srv.Handle(preparePort, func(m netsim.Message) {
			msg, ok := m.Payload.(prepareMsg)
			if !ok {
				return
			}
			c.handlePrepare(s.id, msg)
		})
		srv.Handle(votePort, func(m netsim.Message) {
			msg, ok := m.Payload.(voteMsg)
			if !ok {
				return
			}
			col, ok := c.twopc[msg.txID]
			if !ok {
				return // coordinator aborted; late vote ignored
			}
			if !msg.commit {
				col.tok.Wake(errVoteAbort)
				return
			}
			if col.voted[msg.from] {
				return // duplicate (injected copy or retry re-vote)
			}
			col.voted[msg.from] = true
			if len(col.voted) >= col.need {
				col.tok.Wake(nil)
			}
		})
		srv.Handle(decisionPort, func(m netsim.Message) {
			if msg, ok := m.Payload.(decisionMsg); ok {
				c.decisions++
				c.twopcCounter("twopc_decisions_total", "2PC decisions learned, by role.",
					metrics.L("role", "participant")).Inc()
				c.emit(s.id, journal.KTwoPCDecision, msg.txID, 0, b2i(msg.commit), 0, "")
				if c.faultsOn {
					c.applyDecision(s.id, msg.txID, msg.commit)
				}
			}
		})
		srv.Handle(resolvePort, func(m netsim.Message) {
			msg, ok := m.Payload.(resolveMsg)
			if !ok || !c.faultsOn {
				return
			}
			// Presumed-abort resolution at the coordinator's site: a
			// logged commit answers commit; an open vote round answers
			// pending; everything else is an abort by presumption.
			status := statusAbort
			if commit, known := c.wals[s.id].Decision(msg.txID); known && commit {
				status = statusCommit
			} else if _, active := c.twopc[msg.txID]; active {
				status = statusPending
			}
			c.Net.Send(s.id, msg.from, resolvedPort, resolvedMsg{txID: msg.txID, status: status})
		})
		srv.Handle(resolvedPort, func(m netsim.Message) {
			msg, ok := m.Payload.(resolvedMsg)
			if !ok || !c.faultsOn {
				return
			}
			switch msg.status {
			case statusCommit, statusAbort:
				commit := msg.status == statusCommit
				c.decisions++
				c.twopcCounter("twopc_decisions_total", "2PC decisions learned, by role.",
					metrics.L("role", "participant")).Inc()
				c.emit(s.id, journal.KTwoPCDecision, msg.txID, 0, b2i(commit), 0, "resolved")
				c.applyDecision(s.id, msg.txID, commit)
			case statusPending:
				if tok := c.resolveTok[resolveKey{site: s.id, tx: msg.txID}]; tok != nil {
					tok.Wake(errPhaseTimeout)
				}
			}
		})
	}
}

// handlePrepare is a participant's side of the vote round.
func (c *Cluster) handlePrepare(siteID db.SiteID, msg prepareMsg) {
	if c.faultsOn {
		if commit, known := c.wals[siteID].Decision(msg.txID); known {
			// Already settled here (duplicate prepare after the
			// decision): restate the outcome without re-voting.
			c.Net.Send(siteID, msg.coord, votePort, voteMsg{txID: msg.txID, from: siteID, commit: commit})
			return
		}
		if c.prepared[siteID][msg.txID] != nil {
			// Duplicate prepare while in doubt: the vote is already
			// forced; just re-send it.
			c.emit(siteID, journal.KTwoPCVote, msg.txID, 0, 1, 1, "dup")
			c.Net.Send(siteID, msg.coord, votePort, voteMsg{txID: msg.txID, from: siteID, commit: true})
			return
		}
	}
	// Memory-resident participants have no log force in the fault-free
	// mode; they vote immediately. A configured VoteFault lets tests
	// force the abort vote this site would otherwise never cast.
	commit := c.cfg.VoteFault == nil || !c.cfg.VoteFault(siteID, msg.txID)
	voteLabel := metrics.L("vote", "abort")
	if commit {
		voteLabel = metrics.L("vote", "commit")
	}
	c.twopcCounter("twopc_votes_total", "2PC votes cast by participants, by outcome.", voteLabel).Inc()
	c.emit(siteID, journal.KTwoPCVote, msg.txID, 0, b2i(commit), 0, "")
	if c.faultsOn && commit {
		// Force the vote: from here on this participant is prepared
		// and may only learn the outcome, never presume it.
		c.twopcCounter("wal_forces_total", "WAL forces, by record kind.", metrics.L("kind", "vote")).Inc()
		if c.cfg.WALForceFault == nil || !c.cfg.WALForceFault(siteID, msg.txID) {
			c.wals[siteID].AppendVote(msg.txID, c.K.Now(), int(msg.coord), msg.objs)
		}
		pt := &preparedTx{coord: msg.coord, objs: msg.objs, at: c.K.Now()}
		c.prepared[siteID][msg.txID] = pt
		site, tx := siteID, msg.txID
		pt.timeout = c.K.After(2*c.phaseTimeout(siteID, msg.coord), func() {
			c.spawnResolver(site, tx)
		})
	}
	c.Net.Send(siteID, msg.coord, votePort, voteMsg{txID: msg.txID, from: siteID, commit: commit})
}

// applyDecision settles an in-doubt transaction at a participant:
// the outcome is logged, the writes install on commit, and any waiting
// resolver is released. Unprepared (or already settled) participants
// ignore it.
func (c *Cluster) applyDecision(siteID db.SiteID, tx int64, commit bool) {
	pt := c.prepared[siteID][tx]
	if pt == nil {
		return
	}
	c.twopcCounter("wal_forces_total", "WAL forces, by record kind.", metrics.L("kind", "decision")).Inc()
	c.wals[siteID].AppendDecision(tx, commit)
	c.observeInDoubt(pt)
	pt.timeout.Cancel()
	delete(c.prepared[siteID], tx)
	if commit {
		for _, obj := range pt.objs {
			c.sites[siteID].store.Write(obj, tx, c.K.Now())
		}
	}
	if tok := c.resolveTok[resolveKey{site: siteID, tx: tx}]; tok != nil {
		tok.Wake(nil)
	}
}

// spawnResolver starts a bounded resolution loop for one in-doubt
// transaction: ask the coordinator's site, back off, retry. On
// exhaustion the participant stays prepared — it never unilaterally
// aborts — awaiting a duplicate decision or the next recovery.
func (c *Cluster) spawnResolver(siteID db.SiteID, tx int64) {
	key := resolveKey{site: siteID, tx: tx}
	if c.resolveTok[key] != nil {
		return // already resolving
	}
	pt := c.prepared[siteID][tx]
	if pt == nil || c.crashed[siteID] {
		return
	}
	coord := pt.coord
	c.resolveTok[key] = &sim.Token{} // reserve before the proc first runs
	c.K.Spawn(fmt.Sprintf("resolve-%d@%d", tx, siteID), func(p *sim.Proc) {
		defer delete(c.resolveTok, key)
		for attempt := 0; attempt <= c.cfg.TwoPCRetries; attempt++ {
			if c.prepared[siteID][tx] == nil || c.crashed[siteID] {
				return // settled meanwhile, or we crashed again
			}
			if attempt > 0 {
				c.twopcCounter("twopc_retries_total", "2PC retry rounds, by phase.",
					metrics.L("phase", "resolve")).Inc()
			}
			c.emit(siteID, journal.KRetry, tx, 0, int64(attempt), 0, "resolve")
			c.Net.Send(siteID, coord, resolvePort, resolveMsg{txID: tx, from: siteID})
			tok := &sim.Token{}
			c.resolveTok[key] = tok
			tev := c.K.After(backoff(c.phaseTimeout(siteID, coord), attempt), func() {
				tok.Wake(errPhaseTimeout)
			})
			err := p.Park(tok)
			tev.Cancel()
			if err == nil {
				// Decision arrived and was applied.
				c.K.Metrics().Histogram("twopc_resolve_rounds",
					"Resolution rounds a recovered participant needed to settle an in-doubt transaction.",
					resolveRoundBounds).Observe(int64(attempt) + 1)
				return
			}
			if !errors.Is(err, errPhaseTimeout) {
				return // shutdown or crash interrupt
			}
		}
		// Exhausted: the participant stays prepared (it never presumes),
		// awaiting a duplicate decision or the next recovery. Journaled
		// so the liveness auditor can tell graceful degradation from a
		// resolver that silently gave up.
		if c.prepared[siteID][tx] != nil && !c.crashed[siteID] {
			c.twopcCounter("twopc_retry_exhausted_total",
				"Bounded retry loops that consumed every attempt, by phase.",
				metrics.L("phase", "resolve")).Inc()
			c.emit(siteID, journal.KRetryExhausted, tx, 0, int64(c.cfg.TwoPCRetries)+1, 0, "resolve")
		}
	})
}

// resolveRoundBounds buckets the in-doubt resolution round histogram.
var resolveRoundBounds = []int64{1, 2, 3, 4, 6, 8}

// phaseTimeout is the per-phase 2PC timeout for one link: the
// configured value, or 4× the link delay plus 10ms (mirroring the
// network's synchronous time-out default).
func (c *Cluster) phaseTimeout(a, b db.SiteID) sim.Duration {
	if c.cfg.TwoPCTimeout > 0 {
		return c.cfg.TwoPCTimeout
	}
	return 4*c.Net.Delay(a, b) + 10*sim.Millisecond
}

// errVoteAbort would flow from a participant voting no; with
// memory-resident participants it never fires but the path is wired.
var errVoteAbort = errDecisionAbort{}

type errDecisionAbort struct{}

func (errDecisionAbort) Error() string { return "dist: participant voted abort" }

// runTwoPC coordinates commit across the participants. It returns nil
// when every vote arrived, or the error that aborted the coordinator
// mid-protocol (deadline, crash, exhausted retries); the decision is
// shipped to every participant unless the coordinator's own site
// crashed — then the decision is left to presumed-abort resolution.
func (c *Cluster) runTwoPC(p *sim.Proc, home db.SiteID, txID int64, participants []db.SiteID, objsBySite map[db.SiteID][]core.ObjectID, msgs *int) error {
	if len(participants) == 0 {
		return nil
	}
	c.twopcCounter("twopc_rounds_total", "Two-phase commits coordinated.").Inc()
	// Schedule exploration may rotate the prepare fan-out (and hence the
	// canonical vote arrival order): any rotation of the participant
	// list is a legal coordinator behavior.
	if r := c.K.Choose(sim.ChooseVote, len(participants)); r != 0 {
		rot := make([]db.SiteID, 0, len(participants))
		rot = append(rot, participants[r:]...)
		rot = append(rot, participants[:r]...)
		participants = rot
	}
	started := c.K.Now()
	col := &voteCollector{need: len(participants), voted: make(map[db.SiteID]bool)}
	c.twopc[txID] = col
	var maxd sim.Duration
	for _, s := range participants {
		if d := c.Net.Delay(home, s); d > maxd {
			maxd = d
		}
	}
	base := c.cfg.TwoPCTimeout
	if base <= 0 {
		base = 4*maxd + 10*sim.Millisecond
	}
	attempts := 1
	if c.faultsOn {
		attempts = 1 + c.cfg.TwoPCRetries
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.twopcCounter("twopc_retries_total", "2PC retry rounds, by phase.",
				metrics.L("phase", "prepare")).Inc()
			c.emit(home, journal.KRetry, txID, 0, int64(attempt), 0, "prepare")
		}
		for _, s := range participants {
			if col.voted[s] {
				continue // already has this participant's yes-vote
			}
			*msgs += 2 // prepare out, vote back
			c.emit(home, journal.KTwoPCPrepare, txID, 0, int64(s), int64(attempt), "")
			c.Net.Send(home, s, preparePort, prepareMsg{txID: txID, coord: home, objs: objsBySite[s]})
		}
		tok := &sim.Token{}
		tok.OnCancel = func() { delete(c.twopc, txID) }
		col.tok = tok
		var tev sim.EventRef
		if c.faultsOn {
			// Capped-doubling backoff per retry round.
			tev = c.K.After(backoff(base, attempt), func() { tok.Wake(errPhaseTimeout) })
		}
		err = p.Park(tok)
		tev.Cancel()
		if err == nil {
			break
		}
		if !c.faultsOn || !errors.Is(err, errPhaseTimeout) {
			break // abort vote, deadline, crash, shutdown
		}
		if len(col.voted) >= col.need {
			// The last vote landed as the timer fired.
			err = nil
			break
		}
	}
	delete(c.twopc, txID)
	if c.faultsOn && errors.Is(err, errPhaseTimeout) {
		// Prepare retries exhausted: degrade to presumed abort below
		// instead of waiting forever, and journal the exhaustion.
		c.twopcCounter("twopc_retry_exhausted_total",
			"Bounded retry loops that consumed every attempt, by phase.",
			metrics.L("phase", "prepare")).Inc()
		c.emit(home, journal.KRetryExhausted, txID, 0, int64(attempts), 0, "prepare")
	}
	commit := err == nil
	if commit {
		c.K.Metrics().Histogram("twopc_roundtrip_ticks",
			"Vote-round durations at the coordinator (prepare out to last vote in), in ticks.",
			nil).Observe(int64(c.K.Now().Sub(started)))
	}
	if c.faultsOn && errors.Is(err, ErrSiteCrashed) {
		// The coordinator's site crashed: it cannot decide or ship.
		// Prepared participants resolve against its log — which has no
		// commit record — and presume abort.
		return err
	}
	if c.faultsOn && commit {
		// Presumed-abort: only the commit decision is forced to the
		// coordinator's log (aborts are presumed from its absence).
		c.twopcCounter("wal_forces_total", "WAL forces, by record kind.", metrics.L("kind", "decision")).Inc()
		c.wals[home].AppendDecision(txID, true)
	}
	c.twopcCounter("twopc_decisions_total", "2PC decisions learned, by role.",
		metrics.L("role", "coord")).Inc()
	c.emit(home, journal.KTwoPCDecision, txID, 0, b2i(commit), 0, "coord")
	for _, s := range participants {
		*msgs++
		c.Net.Send(home, s, decisionPort, decisionMsg{txID: txID, commit: commit})
	}
	return err
}
