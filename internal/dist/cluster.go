// Package dist implements the paper's two distributed real-time locking
// architectures (§4):
//
//   - GlobalCeiling: a global ceiling manager at one site makes every
//     ceiling-blocking decision; lock requests travel to it, locks are
//     held across the network, data objects live at their primary sites,
//     and updates commit with two-phase commit when they touch remote
//     sites.
//
//   - LocalCeiling: every data object is fully replicated; update
//     transactions are homed at the site holding their write set's
//     primary copies (restriction 2); transactions synchronize only with
//     their site's local ceiling manager; commits are local and remote
//     secondary copies are updated asynchronously after commit
//     (restriction 3), trading temporal consistency for responsiveness.
package dist

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"rtlock/internal/check"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/faults"
	"rtlock/internal/journal"
	"rtlock/internal/metrics"
	"rtlock/internal/netsim"
	"rtlock/internal/place"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/timeline"
	"rtlock/internal/wal"
	"rtlock/internal/workload"
)

// ErrSiteCrashed aborts work resident at a site the fault plan crashed:
// its volatile state is gone, so in-flight transactions and installers
// there are killed (and recorded as missed).
var ErrSiteCrashed = errors.New("dist: home site crashed")

// Approach selects the distributed locking architecture.
type Approach int

// The two architectures of §4.
const (
	GlobalCeiling Approach = iota + 1
	LocalCeiling
)

// String names the approach in reports.
func (a Approach) String() string {
	switch a {
	case GlobalCeiling:
		return "global"
	case LocalCeiling:
		return "local"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Config parameterizes a distributed run.
type Config struct {
	// Approach selects global or local ceiling management. It applies
	// to the legacy layouts (Placement zero or place.Full); the
	// sharded, quorum, and primary-only placements select their own
	// execution model and require Approach to stay unset.
	Approach Approach
	// Placement selects the data placement and replication policy.
	// Zero keeps the historical behavior: full replication for the
	// local approach, primary-copy data under the global ceiling.
	// place.Sharded, place.Quorum, and place.PrimaryOnly switch to the
	// placement-aware execution paths (see internal/place).
	Placement place.Policy
	// HashShards scatters primaries with a multiplicative hash instead
	// of contiguous ranges (sharded, quorum, and primary-only
	// placements).
	HashShards bool
	// Replicas is the number of copies per object K (quorum placement
	// only; zero means min(3, Sites)).
	Replicas int
	// ReadQuorum is the number of replicas a read must reach, R
	// (quorum placement only; zero means a majority of Replicas).
	ReadQuorum int
	// WriteQuorum is the number of replicas a write must reach, W
	// (quorum placement only; zero means the smallest W with R+W > K).
	WriteQuorum int
	// Sites is the number of fully interconnected sites.
	Sites int
	// Objects is the database size.
	Objects int
	// CommDelay is the one-way inter-site communication delay
	// (uniform full mesh). Ignored when Topology is set.
	CommDelay sim.Duration
	// Topology, when non-nil, supplies per-pair delays (ring, star,
	// custom) instead of the uniform full mesh.
	Topology *netsim.Topology
	// CPUPerObj is the CPU demand per object access. The distributed
	// experiments simulate a memory-resident database: no I/O cost.
	CPUPerObj sim.Duration
	// SiteSpeed optionally scales each site's processor speed (the
	// paper's UI exposes "the relative speed of CPU"): service demand
	// at site i is divided by SiteSpeed[i]. Empty means every site
	// runs at speed 1; otherwise one entry per site, each positive.
	SiteSpeed []float64
	// ApplyPerObj is the CPU demand to install one replicated update
	// at a secondary site (LocalCeiling only).
	ApplyPerObj sim.Duration
	// GCMSite hosts the global ceiling manager (GlobalCeiling only).
	GCMSite db.SiteID
	// Multiversion makes read-only transactions in the local approach
	// read a temporally consistent snapshot — for every object, the
	// newest version written at or before (arrival − SnapshotLag) —
	// instead of each replica's latest copy. This is the multi-version
	// scheme the paper's §4 closes with: controlling the time lags of
	// distributed versions so decisions rest on temporally consistent
	// data.
	Multiversion bool
	// SnapshotLag is the snapshot age Δ; it should cover the
	// propagation delay so snapshots are complete at every replica
	// (zero means the default of 3×CommDelay + 10×ApplyPerObj).
	SnapshotLag sim.Duration
	// VersionsKept bounds each object's retained history (zero means
	// the default of 32).
	VersionsKept int
	// InstallRetries bounds how many times a replica installer retries
	// when its lock wait times out; afterwards the update is dropped
	// and counted (zero means the default of 5).
	InstallRetries int
	// InstallTimeout is the per-attempt installer lock timeout (zero
	// means the default of 50× ApplyPerObj, at least 10ms).
	InstallTimeout sim.Duration
	// RecordHistory keeps the access history for serializability
	// checks in tests.
	RecordHistory bool
	// Journal, when non-nil, receives every kernel-level event of the
	// run (scheduling, locking, 2PC, replication) for deterministic
	// replay and invariant auditing.
	Journal *journal.Journal
	// VoteFault, when non-nil, is consulted by each two-phase-commit
	// participant: returning true makes that site vote abort for the
	// transaction. Used by tests to exercise the global abort path;
	// production participants are memory-resident and always vote
	// commit.
	VoteFault func(site db.SiteID, txID int64) bool
	// WALForceFault, when non-nil, is consulted when a participant
	// forces its yes-vote to the write-ahead log: returning true drops
	// that one force — the site proceeds as prepared but the log record
	// is lost, so a crash forgets the vote. Used by tests to seed a
	// durability weakening the fault-space explorer must find.
	WALForceFault func(site db.SiteID, txID int64) bool
	// TwoPCRetries bounds the coordinator's prepare re-sends and a
	// recovering participant's decision-resolution attempts when a
	// fault plan is attached (zero means the default of 3).
	TwoPCRetries int
	// TwoPCTimeout is the per-phase 2PC timeout under an attached
	// fault plan (zero picks 4× the farthest participant delay plus
	// 10ms, doubling per retry).
	TwoPCTimeout sim.Duration
	// Metrics, when non-nil, receives virtual-time metric series from
	// every layer (kernel, CPUs, network, lock managers, 2PC,
	// replication), sampled every MetricsInterval of virtual time.
	// Metrics never touch the journal.
	Metrics *metrics.Registry
	// MetricsInterval spaces registry snapshots (zero picks
	// sim.DefaultSampleInterval).
	MetricsInterval sim.Duration
	// Timeline, when non-nil, receives every finished transaction and
	// rolls per-virtual-time-window rows. Like Metrics it never touches
	// the journal; build it over the same registry as Metrics so the
	// probe fields resolve.
	Timeline *timeline.Collector
	// MaxRawRecords caps the Monitor's raw TxRecord retention (0 keeps
	// every record); the streaming aggregates are exact either way.
	MaxRawRecords int
}

// Validate checks the configuration's explicit values. Zero values of
// optional fields mean "use the default" and are always valid; fill
// applies the defaults after validation and only derives values Validate
// would accept.
func (c *Config) Validate() error {
	switch c.Placement {
	case 0, place.Full, place.Sharded, place.Quorum, place.PrimaryOnly:
	default:
		return fmt.Errorf("dist: unknown placement policy %d", int(c.Placement))
	}
	if c.execPolicy() != 0 {
		if c.Approach != 0 {
			return fmt.Errorf("dist: placement %s selects its own execution model; approach must be unset, got %s", c.Placement, c.Approach)
		}
	} else {
		if c.Placement == place.Full && c.Approach == GlobalCeiling {
			return fmt.Errorf("dist: placement full is the local approach's layout; approach must be local or unset")
		}
		if c.Approach != GlobalCeiling && c.Approach != LocalCeiling &&
			!(c.Placement == place.Full && c.Approach == 0) {
			return fmt.Errorf("dist: unknown approach %d", c.Approach)
		}
	}
	if c.HashShards && c.execPolicy() == 0 {
		return fmt.Errorf("dist: hash sharding requires a sharded, quorum, or primary-only placement")
	}
	if c.Placement != place.Quorum && (c.Replicas != 0 || c.ReadQuorum != 0 || c.WriteQuorum != 0) {
		return fmt.Errorf("dist: replica and quorum parameters require placement quorum")
	}
	if c.Placement == place.Quorum && c.Sites >= 1 {
		k := c.Replicas
		if k == 0 {
			k = defaultReplicas(c.Sites)
		}
		if c.Replicas != 0 && (c.Replicas < 1 || c.Replicas > c.Sites) {
			return fmt.Errorf("dist: replica count %d out of range [1,%d]", c.Replicas, c.Sites)
		}
		if c.ReadQuorum != 0 && (c.ReadQuorum < 1 || c.ReadQuorum > k) {
			return fmt.Errorf("dist: read quorum %d out of range [1,%d]", c.ReadQuorum, k)
		}
		if c.WriteQuorum != 0 && (c.WriteQuorum < 1 || c.WriteQuorum > k) {
			return fmt.Errorf("dist: write quorum %d out of range [1,%d]", c.WriteQuorum, k)
		}
		if c.ReadQuorum != 0 && c.WriteQuorum != 0 && c.ReadQuorum+c.WriteQuorum <= k {
			return fmt.Errorf("dist: quorums R=%d W=%d do not intersect over K=%d replicas (need R+W > K)", c.ReadQuorum, c.WriteQuorum, k)
		}
	}
	if c.Sites < 1 {
		return fmt.Errorf("dist: sites must be >= 1, got %d", c.Sites)
	}
	if c.Objects < 1 {
		return fmt.Errorf("dist: objects must be >= 1, got %d", c.Objects)
	}
	if c.CPUPerObj <= 0 {
		return fmt.Errorf("dist: CPUPerObj must be positive")
	}
	if c.CommDelay < 0 {
		return fmt.Errorf("dist: negative communication delay")
	}
	if c.Topology != nil && c.Topology.Sites() != c.Sites {
		return fmt.Errorf("dist: topology has %d sites, config has %d", c.Topology.Sites(), c.Sites)
	}
	if len(c.SiteSpeed) != 0 {
		if len(c.SiteSpeed) != c.Sites {
			return fmt.Errorf("dist: %d site speeds for %d sites", len(c.SiteSpeed), c.Sites)
		}
		for i, sp := range c.SiteSpeed {
			if sp <= 0 {
				return fmt.Errorf("dist: site %d speed %v must be positive", i, sp)
			}
		}
	}
	if int(c.GCMSite) < 0 || int(c.GCMSite) >= c.Sites {
		return fmt.Errorf("dist: GCM site %d out of range", c.GCMSite)
	}
	return nil
}

// defaultReplicas is the default copy count K for the quorum placement.
func defaultReplicas(sites int) int {
	if sites < 3 {
		return sites
	}
	return 3
}

// execPolicy returns the placement policy that switches execution onto
// the placement-aware paths. Zero covers the legacy layouts: Placement
// unset (Approach decides) and place.Full, which is the local approach's
// historical layout, not a separate execution model.
func (c *Config) execPolicy() place.Policy {
	switch c.Placement {
	case place.Sharded, place.Quorum, place.PrimaryOnly:
		return c.Placement
	}
	return 0
}

// usesTwoPC reports whether the mode commits multi-site writers with
// two-phase commit (and therefore needs the 2PC handler/WAL machinery).
func (c *Config) usesTwoPC() bool {
	return c.Approach == GlobalCeiling || c.Placement == place.Sharded || c.Placement == place.Quorum
}

// perSiteManagers reports whether every site runs its own ceiling
// manager (as opposed to the single global manager, or none at all for
// the primary-only baseline).
func (c *Config) perSiteManagers() bool {
	return c.Approach == LocalCeiling || c.Placement == place.Sharded || c.Placement == place.Quorum
}

// buildPlacement constructs the place.Map the validated configuration
// describes (defaults already filled in).
func (c *Config) buildPlacement() (place.Map, error) {
	part := place.RangePartition
	if c.HashShards {
		part = place.HashPartition
	}
	switch c.Placement {
	case place.Sharded:
		return place.NewSharded(c.Sites, c.Objects, part)
	case place.Quorum:
		return place.NewQuorum(c.Sites, c.Objects, part, c.Replicas, c.ReadQuorum, c.WriteQuorum)
	case place.PrimaryOnly:
		return place.NewPrimaryOnly(c.Sites, c.Objects, part)
	default:
		return place.NewFull(c.Sites, c.Objects)
	}
}

func (c *Config) fill() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Placement == place.Full && c.Approach == 0 {
		c.Approach = LocalCeiling
	}
	if c.Placement == place.Quorum {
		if c.Replicas == 0 {
			c.Replicas = defaultReplicas(c.Sites)
		}
		if c.ReadQuorum == 0 {
			c.ReadQuorum = c.Replicas/2 + 1
		}
		if c.WriteQuorum == 0 {
			c.WriteQuorum = c.Replicas - c.ReadQuorum + 1
		}
		// Re-check the derived triple: an explicit R or W combined with
		// a defaulted partner must still intersect.
		if c.ReadQuorum+c.WriteQuorum <= c.Replicas {
			return fmt.Errorf("dist: quorums R=%d W=%d do not intersect over K=%d replicas (need R+W > K)", c.ReadQuorum, c.WriteQuorum, c.Replicas)
		}
	}
	if c.ApplyPerObj <= 0 {
		c.ApplyPerObj = c.CPUPerObj / 2
		if c.ApplyPerObj <= 0 {
			c.ApplyPerObj = 1
		}
	}
	if c.InstallRetries <= 0 {
		c.InstallRetries = 5
	}
	if c.SnapshotLag <= 0 {
		c.SnapshotLag = 3*c.CommDelay + 10*c.ApplyPerObj
	}
	if c.VersionsKept <= 0 {
		c.VersionsKept = 32
	}
	if c.InstallTimeout <= 0 {
		c.InstallTimeout = 50 * c.ApplyPerObj
		if c.InstallTimeout < 10*sim.Millisecond {
			c.InstallTimeout = 10 * sim.Millisecond
		}
	}
	if c.TwoPCRetries <= 0 {
		c.TwoPCRetries = 3
	}
	return nil
}

// site is one node: processor, store, and (local approach) its own
// ceiling manager and versioned store.
type site struct {
	id    db.SiteID
	cpu   *sim.CPU
	speed float64
	store *db.Store
	mv    *db.MVStore
	mgr   *core.Ceiling
}

// use consumes d of service demand on the site's processor, scaled by
// its relative speed.
func (s *site) use(p *sim.Proc, prio sim.Priority, d sim.Duration) error {
	if s.speed != 1 {
		d = sim.Duration(float64(d) / s.speed)
	}
	return s.cpu.Use(p, prio, d)
}

// ReplicationStats aggregates the local approach's replica behavior.
type ReplicationStats struct {
	// ReadSamples counts read operations that checked staleness.
	ReadSamples int
	// StaleReads counts reads that observed a copy older than the
	// primary — the paper's temporal inconsistency.
	StaleReads int
	// TotalLag sums the observed staleness over stale reads.
	TotalLag sim.Duration
	// Installs counts successfully applied replica updates.
	Installs int
	// InstallDrops counts updates dropped after exhausting retries.
	InstallDrops int

	// ConsistentViews and InconsistentViews classify committed
	// read-only transactions with at least two reads: a view is
	// temporally consistent when a single instant exists at which
	// every version it read was the newest one (checked against the
	// primary copies' histories).
	ConsistentViews   int
	InconsistentViews int
	// UnknownViews counts views that could not be classified because
	// a read version was evicted from the bounded history.
	UnknownViews int
	// SnapshotMisses counts multiversion reads whose snapshot version
	// had already been evicted (the reader fell back to the latest
	// copy).
	SnapshotMisses int
}

// Cluster is a distributed real-time database instance.
type Cluster struct {
	K       *sim.Kernel
	Net     *netsim.Network
	Catalog *db.Catalog
	Monitor *stats.Monitor
	History *check.History

	cfg        Config
	sites      []*site
	gcm        *core.Ceiling
	repl       ReplicationStats
	installSeq int64
	twopc      map[int64]*voteCollector
	decisions  int
	qrounds    map[quorumKey]*quorumRound

	// Fault-plan state, inert until AttachFaults is called. faultsOn
	// gates every behavioral addition so a cluster without a plan is
	// byte-identical to earlier revisions.
	faultsOn   bool
	injector   *faults.Injector
	spaceInj   *faults.SpaceInjector
	crashed    []bool
	crashAt    []sim.Time
	failover   []*core.Ceiling
	gcmDown    bool
	wals       []*wal.Log
	prepared   []map[int64]*preparedTx
	resolveTok map[resolveKey]*sim.Token
	liveTx     []map[int64]*sim.Proc
	gcmReg     map[int64]*gcmEntry
	shardReg   []map[int64]*gcmEntry

	// Probe handles, cached at construction (no-ops without a
	// registry).
	mInflight  sim.Gauge
	mCommits   sim.Counter
	mMissDead  sim.Counter
	mMissCrash sim.Counter
	mGCMDown   sim.Gauge
	mFailovers sim.Counter
	// Per-placement probes, initialized only in the matching mode.
	mShardLocal   sim.Counter
	mShardCross   sim.Counter
	mQuorumReads  sim.Counter
	mQuorumWrites sim.Counter
}

// preparedTx is a participant's volatile state for an in-doubt
// transaction: it voted yes (the vote is on its WAL) and awaits the
// decision; timeout fires a resolver if the decision never arrives.
type preparedTx struct {
	coord   db.SiteID
	objs    []core.ObjectID
	timeout sim.EventRef
	// at is when this participant became prepared (vote forced or
	// redone), the start of its in-doubt window.
	at sim.Time
}

// resolveKey identifies one participant's decision-resolution attempt.
type resolveKey struct {
	site db.SiteID
	tx   int64
}

// gcmEntry tracks a registration at the global ceiling manager so a
// crash can evict orphaned state.
type gcmEntry struct {
	st   *core.TxState
	home db.SiteID
	p    *sim.Proc
}

// NewCluster assembles a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	pm, err := cfg.buildPlacement()
	if err != nil {
		return nil, err
	}
	cat, err := db.NewCatalogWithPlacement(pm)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	k.SetJournal(cfg.Journal, 0)
	// Attach metrics before the network and per-site CPUs are built:
	// their constructors cache probe handles from the kernel's registry.
	k.SetMetrics(cfg.Metrics, cfg.MetricsInterval)
	net := netsim.NewNetwork(k, cfg.CommDelay)
	if cfg.Topology != nil {
		net = netsim.NewNetworkTopology(k, cfg.Topology)
	}
	c := &Cluster{
		K:       k,
		Net:     net,
		Catalog: cat,
		Monitor: stats.NewMonitor(),
		cfg:     cfg,
	}
	if cfg.RecordHistory {
		c.History = check.NewHistory()
	}
	c.Monitor.SetMaxRaw(cfg.MaxRawRecords)
	m := k.Metrics()
	c.mInflight = m.Gauge("txn_inflight", "Transactions between arrival and commit/abort.")
	c.mCommits = m.Counter("txn_commits_total", "Transactions that committed by their deadline.")
	c.mMissDead = m.Counter("txn_deadline_misses_total", "Transactions aborted at their deadline.", metrics.L("reason", "deadline"))
	c.mMissCrash = m.Counter("txn_deadline_misses_total", "Transactions aborted at their deadline.", metrics.L("reason", "crashed"))
	c.mGCMDown = m.Gauge("dist_gcm_down", "1 while the global ceiling manager's site is crashed.")
	c.mFailovers = m.Counter("dist_failovers_total", "Lock requests served by a failover manager while the GCM was down.")
	for i := 0; i < cfg.Sites; i++ {
		speed := 1.0
		if len(cfg.SiteSpeed) > 0 {
			speed = cfg.SiteSpeed[i]
		}
		s := &site{
			id:    db.SiteID(i),
			cpu:   sim.NewCPU(k, sim.PreemptivePriority),
			speed: speed,
			store: db.NewStore(db.SiteID(i)),
		}
		if cfg.perSiteManagers() {
			s.mgr = core.NewCeiling(k)
			s.mgr.SetJournalSite(int32(i))
		}
		if cfg.Approach == LocalCeiling {
			s.mv = db.NewMVStore(db.SiteID(i), cfg.VersionsKept)
		}
		c.sites = append(c.sites, s)
	}
	if cfg.Approach == GlobalCeiling {
		c.gcm = core.NewCeiling(k)
		c.gcm.SetJournalSite(int32(cfg.GCMSite))
	}
	if cfg.usesTwoPC() {
		c.twopc = make(map[int64]*voteCollector)
		c.registerTwoPCHandlers()
	}
	if cfg.Approach == LocalCeiling {
		c.registerInstallHandlers()
	}
	switch cfg.execPolicy() {
	case place.Sharded:
		c.mShardLocal = m.Counter("dist_shard_commits_total", "Committed update transactions by shard span.", metrics.L("kind", "local"))
		c.mShardCross = m.Counter("dist_shard_commits_total", "Committed update transactions by shard span.", metrics.L("kind", "cross"))
	case place.Quorum:
		c.qrounds = make(map[quorumKey]*quorumRound)
		c.registerQuorumHandlers()
		c.mQuorumReads = m.Counter("dist_quorum_rounds_total", "Completed quorum replication rounds by kind.", metrics.L("kind", "read"))
		c.mQuorumWrites = m.Counter("dist_quorum_rounds_total", "Completed quorum replication rounds by kind.", metrics.L("kind", "write"))
	}
	if pol := cfg.execPolicy(); pol != 0 {
		// One placement banner per run so replays and auditors know the
		// consistency contract in force. The primary-only baseline
		// journals its waived serializability explicitly.
		note := pm.String()
		if pol == place.PrimaryOnly {
			note += "; serializability waived"
		}
		c.emit(0, journal.KPlacement, 0, 0, int64(pol),
			int64(pm.ReadQuorum())|int64(pm.WriteQuorum())<<32, note)
	}
	return c, nil
}

// TwoPCDecisions reports how many two-phase-commit decisions reached
// participants (global approach).
func (c *Cluster) TwoPCDecisions() int { return c.decisions }

// FailSite schedules a site to become non-operational at the given
// virtual time, recovering at recoverAt (no recovery if recoverAt is not
// after at). Messages to the down site are dropped and synchronous
// requests toward it time out, per the paper's message-server time-out
// mechanism. The site's own processor keeps running (the failure models
// reachability, not a crash of local work).
func (c *Cluster) FailSite(site db.SiteID, at, recoverAt sim.Time) {
	c.K.At(at, func() { c.Net.SetDown(site, true) })
	if recoverAt > at {
		c.K.At(recoverAt, func() { c.Net.SetDown(site, false) })
	}
}

// AttachFaults wires a fault plan into the cluster before Run: the
// plan's injector becomes the network's per-message fault source, its
// crash/partition windows are scheduled as kernel events, and the
// crash-aware protocol paths switch on — participant votes are WAL-
// forced and redone on recovery, the coordinator retries prepares with
// bounded backoff and presumes abort, and (global approach) lock
// traffic fails over to per-site local ceiling managers while the GCM
// site is down. Attaching an empty plan enables the same machinery but
// injects nothing; the run's journal stays byte-identical to one
// without the plan.
func (c *Cluster) AttachFaults(plan *faults.Plan, seed int64) error {
	if err := plan.Validate(c.cfg.Sites); err != nil {
		return err
	}
	c.enableFaultMachinery()
	c.injector = faults.New(plan, seed)
	c.injector.Install(c.K, c.Net, c.cfg.Sites, faults.Hooks{
		OnCrash:   c.onCrash,
		OnRecover: c.onRecover,
	})
	return nil
}

// AttachFaultSpace arms the same crash-recovery machinery as
// AttachFaults and installs a fault decision space instead of a fixed
// plan: the kernel's chooser picks concrete faults at the space's
// decision points (every canonical pick injects nothing), and
// ChosenFaultPlan exposes the exact failure schedule afterwards. The
// injector is caller-owned so explorations can recycle it across runs.
func (c *Cluster) AttachFaultSpace(si *faults.SpaceInjector) {
	c.enableFaultMachinery()
	c.spaceInj = si
	si.Install(c.K, c.Net, c.cfg.Sites, faults.Hooks{
		OnCrash:   c.onCrash,
		OnRecover: c.onRecover,
	})
}

// ChosenFaultPlan returns the exact fault plan a fault-space run
// committed to (nil without an attached space, or when every decision
// was canonical). Replaying it through AttachFaults regenerates the
// same failure schedule — and, for the same (seed, config) journal
// key, a byte-identical journal.
func (c *Cluster) ChosenFaultPlan() *faults.Plan {
	if c.spaceInj == nil {
		return nil
	}
	return c.spaceInj.ChosenPlan()
}

// enableFaultMachinery switches on the crash-aware protocol paths once:
// WAL-forced votes, presumed-abort retries, failover managers. Gated by
// faultsOn so a cluster without faults stays byte-identical to earlier
// revisions.
func (c *Cluster) enableFaultMachinery() {
	if c.faultsOn {
		return
	}
	c.faultsOn = true
	c.crashed = make([]bool, c.cfg.Sites)
	c.crashAt = make([]sim.Time, c.cfg.Sites)
	c.resolveTok = make(map[resolveKey]*sim.Token)
	c.liveTx = make([]map[int64]*sim.Proc, c.cfg.Sites)
	c.wals = make([]*wal.Log, c.cfg.Sites)
	c.prepared = make([]map[int64]*preparedTx, c.cfg.Sites)
	for i := 0; i < c.cfg.Sites; i++ {
		c.liveTx[i] = make(map[int64]*sim.Proc)
		c.wals[i] = wal.NewLog()
		c.prepared[i] = make(map[int64]*preparedTx)
	}
	if c.cfg.Approach == GlobalCeiling {
		c.gcmReg = make(map[int64]*gcmEntry)
		c.failover = make([]*core.Ceiling, c.cfg.Sites)
		for i := range c.failover {
			c.failover[i] = c.newFailoverMgr(i)
		}
	}
	if pol := c.cfg.execPolicy(); pol == place.Sharded || pol == place.Quorum {
		c.shardReg = make([]map[int64]*gcmEntry, c.cfg.Sites)
		for i := range c.shardReg {
			c.shardReg[i] = make(map[int64]*gcmEntry)
		}
	}
}

// WAL returns a site's write-ahead log (nil before AttachFaults), for
// inspection in tests and reports.
func (c *Cluster) WAL(site db.SiteID) *wal.Log {
	if c.wals == nil {
		return nil
	}
	return c.wals[site]
}

func (c *Cluster) newFailoverMgr(site int) *core.Ceiling {
	m := core.NewCeiling(c.K)
	m.SetJournalSite(int32(site))
	return m
}

// onCrash loses a site's volatile state: resident transactions and
// installers die, un-decided 2PC bookkeeping vanishes (the WAL
// survives), and — global approach — the GCM evicts the site's
// registrations, or is itself marked down when the crashed site hosts
// it. Network unreachability is flipped by the injector before this
// hook runs.
func (c *Cluster) onCrash(siteID db.SiteID) {
	c.crashed[siteID] = true
	c.crashAt[siteID] = c.K.Now()

	// Kill resident transactions, in id order for determinism.
	ids := make([]int64, 0, len(c.liveTx[siteID]))
	for id := range c.liveTx[siteID] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.liveTx[siteID][id].Interrupt(ErrSiteCrashed)
	}

	// Wipe volatile 2PC participant state; pending decision timers die
	// with it. The WAL keeps the forced votes for recovery.
	ptIDs := make([]int64, 0, len(c.prepared[siteID]))
	for id := range c.prepared[siteID] {
		ptIDs = append(ptIDs, id)
	}
	sort.Slice(ptIDs, func(i, j int) bool { return ptIDs[i] < ptIDs[j] })
	for _, id := range ptIDs {
		c.prepared[siteID][id].timeout.Cancel()
	}
	c.prepared[siteID] = make(map[int64]*preparedTx)

	if c.cfg.Approach == GlobalCeiling {
		if siteID == c.cfg.GCMSite {
			c.gcmDown = true
			c.mGCMDown.Set(1)
		} else {
			// The GCM detects the crash and releases the site's
			// orphaned registrations (the killed transactions skip
			// their own release).
			evictIDs := make([]int64, 0)
			for id, e := range c.gcmReg {
				if e.home == siteID {
					evictIDs = append(evictIDs, id)
				}
			}
			sort.Slice(evictIDs, func(i, j int) bool { return evictIDs[i] < evictIDs[j] })
			for _, id := range evictIDs {
				e := c.gcmReg[id]
				c.gcm.ReleaseAll(e.st)
				c.gcm.Unregister(e.st)
				delete(c.gcmReg, id)
			}
			c.emit(c.cfg.GCMSite, journal.KResync, 0, 0, int64(len(evictIDs)), int64(siteID), "evict")
		}
		// The crashed site's failover manager state is volatile too.
		c.failover[siteID] = c.newFailoverMgr(int(siteID))
	}
	if c.cfg.perSiteManagers() {
		// The site's ceiling manager lock table is volatile: recovery
		// restarts it empty (killed residents skip their releases).
		s := c.sites[siteID]
		s.mgr = core.NewCeiling(c.K)
		s.mgr.SetJournalSite(int32(siteID))
	}
	if c.shardReg != nil {
		// Registrations at the crashed site's manager died with its lock
		// table; every surviving shard manager evicts the crashed site's
		// transactions (their processes were just killed and will skip
		// their own releases).
		c.shardReg[siteID] = make(map[int64]*gcmEntry)
		for sid := 0; sid < c.cfg.Sites; sid++ {
			if db.SiteID(sid) == siteID {
				continue
			}
			evictIDs := make([]int64, 0)
			for id, e := range c.shardReg[sid] {
				if e.home == siteID {
					evictIDs = append(evictIDs, id)
				}
			}
			sort.Slice(evictIDs, func(i, j int) bool { return evictIDs[i] < evictIDs[j] })
			for _, id := range evictIDs {
				e := c.shardReg[sid][id]
				c.sites[sid].mgr.ReleaseAll(e.st)
				c.sites[sid].mgr.Unregister(e.st)
				delete(c.shardReg[sid], id)
			}
			if len(evictIDs) > 0 {
				c.emit(db.SiteID(sid), journal.KResync, 0, 0, int64(len(evictIDs)), int64(siteID), "evict")
			}
		}
	}
}

// onRecover brings a site back: it replays the WAL's in-doubt votes
// into fresh prepared state and spawns resolvers to settle them with
// their coordinators; a recovering GCM site purges registrations whose
// transactions died while it was down and resumes global locking.
func (c *Cluster) onRecover(siteID db.SiteID) {
	c.crashed[siteID] = false
	if d := c.K.Now().Sub(c.crashAt[siteID]); d >= 0 {
		c.K.Metrics().Histogram("recovery_duration_ticks",
			"Crash-to-recovery (resync complete) windows per site, in ticks.", nil).Observe(int64(d))
	}
	if !c.cfg.usesTwoPC() {
		return
	}
	pending := c.wals[siteID].PendingVotes()
	c.emit(siteID, journal.KWALRedo, 0, 0, int64(len(pending)), 0, "")
	for _, v := range pending {
		c.prepared[siteID][v.Tx] = &preparedTx{coord: db.SiteID(v.Coord), objs: v.Objs, at: c.K.Now()}
	}
	for _, v := range pending {
		c.spawnResolver(siteID, v.Tx)
	}
	if siteID == c.cfg.GCMSite {
		c.gcmDown = false
		c.mGCMDown.Set(0)
		purgeIDs := make([]int64, 0)
		for id, e := range c.gcmReg {
			if e.p.Dead() {
				purgeIDs = append(purgeIDs, id)
			}
		}
		sort.Slice(purgeIDs, func(i, j int) bool { return purgeIDs[i] < purgeIDs[j] })
		for _, id := range purgeIDs {
			e := c.gcmReg[id]
			c.gcm.ReleaseAll(e.st)
			c.gcm.Unregister(e.st)
			delete(c.gcmReg, id)
		}
		c.emit(siteID, journal.KResync, 0, 0, int64(len(purgeIDs)), int64(siteID), "resync")
	}
}

// Config returns the effective configuration (defaults filled in).
func (c *Cluster) Config() Config { return c.cfg }

// Replication returns the replica statistics (meaningful for the local
// approach).
func (c *Cluster) Replication() ReplicationStats { return c.repl }

// NetReport aggregates the run's message-layer counters: the network's
// send and loss counts plus every site's message-server delivery and
// no-handler counts.
func (c *Cluster) NetReport() stats.NetReport {
	r := stats.NetReport{
		Sent:         c.Net.Sent,
		DroppedDown:  c.Net.DroppedDown,
		DroppedCut:   c.Net.DroppedCut,
		DroppedFault: c.Net.DroppedFault,
		Duplicated:   c.Net.Duplicated,
	}
	for _, s := range c.sites {
		srv := c.Net.Server(s.id)
		r.Delivered += srv.Delivered
		r.DroppedNoHandler += srv.Dropped
	}
	return r
}

// Site returns site i's store, for inspection in tests and examples.
func (c *Cluster) Store(i db.SiteID) *db.Store { return c.sites[i].store }

// Load schedules the transactions' arrivals. An arrival at a crashed
// site is lost with the site's volatile state: it is recorded as an
// immediate miss and never spawns a process.
func (c *Cluster) Load(txs []*workload.Txn) {
	for _, t := range txs {
		t := t
		c.K.At(t.Arrival, func() {
			if c.faultsOn && c.crashed[t.Home] {
				c.emit(t.Home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")
				c.emit(t.Home, journal.KDeadlineMiss, t.ID, 0, 0, 0, "crashed")
				c.mMissCrash.Inc()
				c.Monitor.Add(stats.TxRecord{
					ID: t.ID, Site: t.Home, Size: t.Size(),
					ReadOnly: t.Kind == workload.ReadOnly,
					Arrival:  t.Arrival, Start: t.Arrival,
					Deadline: t.Deadline, Finish: c.K.Now(),
					Outcome: stats.DeadlineMissed,
				})
				c.cfg.Timeline.Tx(c.K.Now(), false, 0, 0)
				return
			}
			c.K.Spawn("tx"+strconv.FormatInt(t.ID, 10), func(p *sim.Proc) {
				c.mInflight.Add(1)
				defer c.mInflight.Add(-1)
				if c.faultsOn {
					c.liveTx[t.Home][t.ID] = p
					defer delete(c.liveTx[t.Home], t.ID)
				}
				switch c.cfg.execPolicy() {
				case place.Sharded:
					c.execShard(p, t)
				case place.Quorum:
					c.execQuorum(p, t)
				case place.PrimaryOnly:
					c.execPrimary(p, t)
				default:
					if c.cfg.Approach == GlobalCeiling {
						c.execGlobal(p, t)
					} else {
						c.execLocal(p, t)
					}
				}
			})
		})
	}
}

// Run drives the simulation to completion, tears down the message
// servers, and returns the summary.
func (c *Cluster) Run() stats.Summary {
	c.K.Run()
	c.Net.Shutdown()
	c.K.Run()
	if c.K.Live() > 0 {
		// Stuck installers or transactions (should not happen: every
		// transaction has a deadline timer and installers time out).
		_ = c.K.Shutdown()
	}
	c.cfg.Timeline.Finish(c.Monitor.Horizon())
	sum := c.Monitor.Summarize()
	if h := c.Monitor.Horizon(); h > 0 {
		var busy sim.Duration
		for _, s := range c.sites {
			busy += s.cpu.Busy()
		}
		sum.CPUUtil = busy.Seconds() / (sim.Duration(h).Seconds() * float64(len(c.sites)))
	}
	return sum
}

// newTxState builds the protocol state for a transaction, wiring priority
// inheritance to every site's processor (the process may be queued at any
// of them while executing remotely).
func (c *Cluster) newTxState(p *sim.Proc, t *workload.Txn) *core.TxState {
	st := core.NewTxState(t.ID, t.Priority(), p)
	st.ReadSet = t.ReadSet()
	st.WriteSet = t.WriteSet()
	st.OnPrioChange = func(pr sim.Priority) {
		for _, s := range c.sites {
			s.cpu.Reprioritize(p, pr)
		}
	}
	return st
}

// emit appends a site-tagged record to the cluster's journal (a no-op
// without one). Dist-layer events carry the transaction's home site or
// the site where the event physically happens, unlike the kernel's own
// records which use the kernel-wide default site.
func (c *Cluster) emit(site db.SiteID, kind journal.Kind, tx int64, obj int32, a, b int64, note string) {
	c.K.Journal().Append(int64(c.K.Now()), kind, int32(site), tx, obj, a, b, note)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// record finalizes the monitor record for a processed transaction.
func (c *Cluster) record(p *sim.Proc, t *workload.Txn, st *core.TxState, err error, msgs int) {
	if errors.Is(err, sim.ErrShutdown) {
		return
	}
	rec := stats.TxRecord{
		ID:           t.ID,
		Site:         t.Home,
		Size:         t.Size(),
		ReadOnly:     t.Kind == workload.ReadOnly,
		Arrival:      t.Arrival,
		Start:        t.Arrival,
		Deadline:     t.Deadline,
		Finish:       p.Now(),
		Blocked:      st.BlockedTime,
		BlockedCount: st.BlockedCount,
		Messages:     msgs,
	}
	if err == nil {
		rec.Outcome = stats.Committed
		c.mCommits.Inc()
		c.emit(t.Home, journal.KCommit, t.ID, 0, 0, 0, "")
		if c.History != nil {
			c.History.Commit(t.ID)
		}
	} else {
		rec.Outcome = stats.DeadlineMissed
		note := ""
		if errors.Is(err, ErrSiteCrashed) {
			note = "crashed"
			c.mMissCrash.Inc()
		} else {
			c.mMissDead.Inc()
		}
		c.emit(t.Home, journal.KDeadlineMiss, t.ID, 0, 0, 0, note)
	}
	c.Monitor.Add(rec)
	c.cfg.Timeline.Tx(rec.Finish, rec.Outcome == stats.Committed,
		rec.Finish.Sub(rec.Arrival), rec.Restarts)
}
