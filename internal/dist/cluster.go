// Package dist implements the paper's two distributed real-time locking
// architectures (§4):
//
//   - GlobalCeiling: a global ceiling manager at one site makes every
//     ceiling-blocking decision; lock requests travel to it, locks are
//     held across the network, data objects live at their primary sites,
//     and updates commit with two-phase commit when they touch remote
//     sites.
//
//   - LocalCeiling: every data object is fully replicated; update
//     transactions are homed at the site holding their write set's
//     primary copies (restriction 2); transactions synchronize only with
//     their site's local ceiling manager; commits are local and remote
//     secondary copies are updated asynchronously after commit
//     (restriction 3), trading temporal consistency for responsiveness.
package dist

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"rtlock/internal/check"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/faults"
	"rtlock/internal/journal"
	"rtlock/internal/metrics"
	"rtlock/internal/netsim"
	"rtlock/internal/sim"
	"rtlock/internal/stats"
	"rtlock/internal/timeline"
	"rtlock/internal/wal"
	"rtlock/internal/workload"
)

// ErrSiteCrashed aborts work resident at a site the fault plan crashed:
// its volatile state is gone, so in-flight transactions and installers
// there are killed (and recorded as missed).
var ErrSiteCrashed = errors.New("dist: home site crashed")

// Approach selects the distributed locking architecture.
type Approach int

// The two architectures of §4.
const (
	GlobalCeiling Approach = iota + 1
	LocalCeiling
)

// String names the approach in reports.
func (a Approach) String() string {
	switch a {
	case GlobalCeiling:
		return "global"
	case LocalCeiling:
		return "local"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Config parameterizes a distributed run.
type Config struct {
	// Approach selects global or local ceiling management.
	Approach Approach
	// Sites is the number of fully interconnected sites.
	Sites int
	// Objects is the database size.
	Objects int
	// CommDelay is the one-way inter-site communication delay
	// (uniform full mesh). Ignored when Topology is set.
	CommDelay sim.Duration
	// Topology, when non-nil, supplies per-pair delays (ring, star,
	// custom) instead of the uniform full mesh.
	Topology *netsim.Topology
	// CPUPerObj is the CPU demand per object access. The distributed
	// experiments simulate a memory-resident database: no I/O cost.
	CPUPerObj sim.Duration
	// SiteSpeed optionally scales each site's processor speed (the
	// paper's UI exposes "the relative speed of CPU"): service demand
	// at site i is divided by SiteSpeed[i]. Empty means every site
	// runs at speed 1; otherwise one entry per site, each positive.
	SiteSpeed []float64
	// ApplyPerObj is the CPU demand to install one replicated update
	// at a secondary site (LocalCeiling only).
	ApplyPerObj sim.Duration
	// GCMSite hosts the global ceiling manager (GlobalCeiling only).
	GCMSite db.SiteID
	// Multiversion makes read-only transactions in the local approach
	// read a temporally consistent snapshot — for every object, the
	// newest version written at or before (arrival − SnapshotLag) —
	// instead of each replica's latest copy. This is the multi-version
	// scheme the paper's §4 closes with: controlling the time lags of
	// distributed versions so decisions rest on temporally consistent
	// data.
	Multiversion bool
	// SnapshotLag is the snapshot age Δ; it should cover the
	// propagation delay so snapshots are complete at every replica
	// (zero means the default of 3×CommDelay + 10×ApplyPerObj).
	SnapshotLag sim.Duration
	// VersionsKept bounds each object's retained history (zero means
	// the default of 32).
	VersionsKept int
	// InstallRetries bounds how many times a replica installer retries
	// when its lock wait times out; afterwards the update is dropped
	// and counted (zero means the default of 5).
	InstallRetries int
	// InstallTimeout is the per-attempt installer lock timeout (zero
	// means the default of 50× ApplyPerObj, at least 10ms).
	InstallTimeout sim.Duration
	// RecordHistory keeps the access history for serializability
	// checks in tests.
	RecordHistory bool
	// Journal, when non-nil, receives every kernel-level event of the
	// run (scheduling, locking, 2PC, replication) for deterministic
	// replay and invariant auditing.
	Journal *journal.Journal
	// VoteFault, when non-nil, is consulted by each two-phase-commit
	// participant: returning true makes that site vote abort for the
	// transaction. Used by tests to exercise the global abort path;
	// production participants are memory-resident and always vote
	// commit.
	VoteFault func(site db.SiteID, txID int64) bool
	// WALForceFault, when non-nil, is consulted when a participant
	// forces its yes-vote to the write-ahead log: returning true drops
	// that one force — the site proceeds as prepared but the log record
	// is lost, so a crash forgets the vote. Used by tests to seed a
	// durability weakening the fault-space explorer must find.
	WALForceFault func(site db.SiteID, txID int64) bool
	// TwoPCRetries bounds the coordinator's prepare re-sends and a
	// recovering participant's decision-resolution attempts when a
	// fault plan is attached (zero means the default of 3).
	TwoPCRetries int
	// TwoPCTimeout is the per-phase 2PC timeout under an attached
	// fault plan (zero picks 4× the farthest participant delay plus
	// 10ms, doubling per retry).
	TwoPCTimeout sim.Duration
	// Metrics, when non-nil, receives virtual-time metric series from
	// every layer (kernel, CPUs, network, lock managers, 2PC,
	// replication), sampled every MetricsInterval of virtual time.
	// Metrics never touch the journal.
	Metrics *metrics.Registry
	// MetricsInterval spaces registry snapshots (zero picks
	// sim.DefaultSampleInterval).
	MetricsInterval sim.Duration
	// Timeline, when non-nil, receives every finished transaction and
	// rolls per-virtual-time-window rows. Like Metrics it never touches
	// the journal; build it over the same registry as Metrics so the
	// probe fields resolve.
	Timeline *timeline.Collector
	// MaxRawRecords caps the Monitor's raw TxRecord retention (0 keeps
	// every record); the streaming aggregates are exact either way.
	MaxRawRecords int
}

func (c *Config) fill() error {
	if c.Approach != GlobalCeiling && c.Approach != LocalCeiling {
		return fmt.Errorf("dist: unknown approach %d", c.Approach)
	}
	if c.Sites < 1 {
		return fmt.Errorf("dist: sites must be >= 1, got %d", c.Sites)
	}
	if c.Objects < 1 {
		return fmt.Errorf("dist: objects must be >= 1, got %d", c.Objects)
	}
	if c.CPUPerObj <= 0 {
		return fmt.Errorf("dist: CPUPerObj must be positive")
	}
	if c.CommDelay < 0 {
		return fmt.Errorf("dist: negative communication delay")
	}
	if c.Topology != nil && c.Topology.Sites() != c.Sites {
		return fmt.Errorf("dist: topology has %d sites, config has %d", c.Topology.Sites(), c.Sites)
	}
	if len(c.SiteSpeed) != 0 {
		if len(c.SiteSpeed) != c.Sites {
			return fmt.Errorf("dist: %d site speeds for %d sites", len(c.SiteSpeed), c.Sites)
		}
		for i, sp := range c.SiteSpeed {
			if sp <= 0 {
				return fmt.Errorf("dist: site %d speed %v must be positive", i, sp)
			}
		}
	}
	if int(c.GCMSite) < 0 || int(c.GCMSite) >= c.Sites {
		return fmt.Errorf("dist: GCM site %d out of range", c.GCMSite)
	}
	if c.ApplyPerObj <= 0 {
		c.ApplyPerObj = c.CPUPerObj / 2
		if c.ApplyPerObj <= 0 {
			c.ApplyPerObj = 1
		}
	}
	if c.InstallRetries <= 0 {
		c.InstallRetries = 5
	}
	if c.SnapshotLag <= 0 {
		c.SnapshotLag = 3*c.CommDelay + 10*c.ApplyPerObj
	}
	if c.VersionsKept <= 0 {
		c.VersionsKept = 32
	}
	if c.InstallTimeout <= 0 {
		c.InstallTimeout = 50 * c.ApplyPerObj
		if c.InstallTimeout < 10*sim.Millisecond {
			c.InstallTimeout = 10 * sim.Millisecond
		}
	}
	if c.TwoPCRetries <= 0 {
		c.TwoPCRetries = 3
	}
	return nil
}

// site is one node: processor, store, and (local approach) its own
// ceiling manager and versioned store.
type site struct {
	id    db.SiteID
	cpu   *sim.CPU
	speed float64
	store *db.Store
	mv    *db.MVStore
	mgr   *core.Ceiling
}

// use consumes d of service demand on the site's processor, scaled by
// its relative speed.
func (s *site) use(p *sim.Proc, prio sim.Priority, d sim.Duration) error {
	if s.speed != 1 {
		d = sim.Duration(float64(d) / s.speed)
	}
	return s.cpu.Use(p, prio, d)
}

// ReplicationStats aggregates the local approach's replica behavior.
type ReplicationStats struct {
	// ReadSamples counts read operations that checked staleness.
	ReadSamples int
	// StaleReads counts reads that observed a copy older than the
	// primary — the paper's temporal inconsistency.
	StaleReads int
	// TotalLag sums the observed staleness over stale reads.
	TotalLag sim.Duration
	// Installs counts successfully applied replica updates.
	Installs int
	// InstallDrops counts updates dropped after exhausting retries.
	InstallDrops int

	// ConsistentViews and InconsistentViews classify committed
	// read-only transactions with at least two reads: a view is
	// temporally consistent when a single instant exists at which
	// every version it read was the newest one (checked against the
	// primary copies' histories).
	ConsistentViews   int
	InconsistentViews int
	// UnknownViews counts views that could not be classified because
	// a read version was evicted from the bounded history.
	UnknownViews int
	// SnapshotMisses counts multiversion reads whose snapshot version
	// had already been evicted (the reader fell back to the latest
	// copy).
	SnapshotMisses int
}

// Cluster is a distributed real-time database instance.
type Cluster struct {
	K       *sim.Kernel
	Net     *netsim.Network
	Catalog *db.Catalog
	Monitor *stats.Monitor
	History *check.History

	cfg        Config
	sites      []*site
	gcm        *core.Ceiling
	repl       ReplicationStats
	installSeq int64
	twopc      map[int64]*voteCollector
	decisions  int

	// Fault-plan state, inert until AttachFaults is called. faultsOn
	// gates every behavioral addition so a cluster without a plan is
	// byte-identical to earlier revisions.
	faultsOn   bool
	injector   *faults.Injector
	spaceInj   *faults.SpaceInjector
	crashed    []bool
	crashAt    []sim.Time
	failover   []*core.Ceiling
	gcmDown    bool
	wals       []*wal.Log
	prepared   []map[int64]*preparedTx
	resolveTok map[resolveKey]*sim.Token
	liveTx     []map[int64]*sim.Proc
	gcmReg     map[int64]*gcmEntry

	// Probe handles, cached at construction (no-ops without a
	// registry).
	mInflight  sim.Gauge
	mCommits   sim.Counter
	mMissDead  sim.Counter
	mMissCrash sim.Counter
	mGCMDown   sim.Gauge
	mFailovers sim.Counter
}

// preparedTx is a participant's volatile state for an in-doubt
// transaction: it voted yes (the vote is on its WAL) and awaits the
// decision; timeout fires a resolver if the decision never arrives.
type preparedTx struct {
	coord   db.SiteID
	objs    []core.ObjectID
	timeout sim.EventRef
	// at is when this participant became prepared (vote forced or
	// redone), the start of its in-doubt window.
	at sim.Time
}

// resolveKey identifies one participant's decision-resolution attempt.
type resolveKey struct {
	site db.SiteID
	tx   int64
}

// gcmEntry tracks a registration at the global ceiling manager so a
// crash can evict orphaned state.
type gcmEntry struct {
	st   *core.TxState
	home db.SiteID
	p    *sim.Proc
}

// NewCluster assembles a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	cat, err := db.NewCatalog(cfg.Sites, cfg.Objects)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	k.SetJournal(cfg.Journal, 0)
	// Attach metrics before the network and per-site CPUs are built:
	// their constructors cache probe handles from the kernel's registry.
	k.SetMetrics(cfg.Metrics, cfg.MetricsInterval)
	net := netsim.NewNetwork(k, cfg.CommDelay)
	if cfg.Topology != nil {
		net = netsim.NewNetworkTopology(k, cfg.Topology)
	}
	c := &Cluster{
		K:       k,
		Net:     net,
		Catalog: cat,
		Monitor: stats.NewMonitor(),
		cfg:     cfg,
	}
	if cfg.RecordHistory {
		c.History = check.NewHistory()
	}
	c.Monitor.SetMaxRaw(cfg.MaxRawRecords)
	m := k.Metrics()
	c.mInflight = m.Gauge("txn_inflight", "Transactions between arrival and commit/abort.")
	c.mCommits = m.Counter("txn_commits_total", "Transactions that committed by their deadline.")
	c.mMissDead = m.Counter("txn_deadline_misses_total", "Transactions aborted at their deadline.", metrics.L("reason", "deadline"))
	c.mMissCrash = m.Counter("txn_deadline_misses_total", "Transactions aborted at their deadline.", metrics.L("reason", "crashed"))
	c.mGCMDown = m.Gauge("dist_gcm_down", "1 while the global ceiling manager's site is crashed.")
	c.mFailovers = m.Counter("dist_failovers_total", "Lock requests served by a failover manager while the GCM was down.")
	for i := 0; i < cfg.Sites; i++ {
		speed := 1.0
		if len(cfg.SiteSpeed) > 0 {
			speed = cfg.SiteSpeed[i]
		}
		s := &site{
			id:    db.SiteID(i),
			cpu:   sim.NewCPU(k, sim.PreemptivePriority),
			speed: speed,
			store: db.NewStore(db.SiteID(i)),
		}
		if cfg.Approach == LocalCeiling {
			s.mgr = core.NewCeiling(k)
			s.mgr.SetJournalSite(int32(i))
			s.mv = db.NewMVStore(db.SiteID(i), cfg.VersionsKept)
		}
		c.sites = append(c.sites, s)
	}
	if cfg.Approach == GlobalCeiling {
		c.gcm = core.NewCeiling(k)
		c.gcm.SetJournalSite(int32(cfg.GCMSite))
		c.twopc = make(map[int64]*voteCollector)
		c.registerTwoPCHandlers()
	}
	if cfg.Approach == LocalCeiling {
		c.registerInstallHandlers()
	}
	return c, nil
}

// TwoPCDecisions reports how many two-phase-commit decisions reached
// participants (global approach).
func (c *Cluster) TwoPCDecisions() int { return c.decisions }

// FailSite schedules a site to become non-operational at the given
// virtual time, recovering at recoverAt (no recovery if recoverAt is not
// after at). Messages to the down site are dropped and synchronous
// requests toward it time out, per the paper's message-server time-out
// mechanism. The site's own processor keeps running (the failure models
// reachability, not a crash of local work).
func (c *Cluster) FailSite(site db.SiteID, at, recoverAt sim.Time) {
	c.K.At(at, func() { c.Net.SetDown(site, true) })
	if recoverAt > at {
		c.K.At(recoverAt, func() { c.Net.SetDown(site, false) })
	}
}

// AttachFaults wires a fault plan into the cluster before Run: the
// plan's injector becomes the network's per-message fault source, its
// crash/partition windows are scheduled as kernel events, and the
// crash-aware protocol paths switch on — participant votes are WAL-
// forced and redone on recovery, the coordinator retries prepares with
// bounded backoff and presumes abort, and (global approach) lock
// traffic fails over to per-site local ceiling managers while the GCM
// site is down. Attaching an empty plan enables the same machinery but
// injects nothing; the run's journal stays byte-identical to one
// without the plan.
func (c *Cluster) AttachFaults(plan *faults.Plan, seed int64) error {
	if err := plan.Validate(c.cfg.Sites); err != nil {
		return err
	}
	c.enableFaultMachinery()
	c.injector = faults.New(plan, seed)
	c.injector.Install(c.K, c.Net, c.cfg.Sites, faults.Hooks{
		OnCrash:   c.onCrash,
		OnRecover: c.onRecover,
	})
	return nil
}

// AttachFaultSpace arms the same crash-recovery machinery as
// AttachFaults and installs a fault decision space instead of a fixed
// plan: the kernel's chooser picks concrete faults at the space's
// decision points (every canonical pick injects nothing), and
// ChosenFaultPlan exposes the exact failure schedule afterwards. The
// injector is caller-owned so explorations can recycle it across runs.
func (c *Cluster) AttachFaultSpace(si *faults.SpaceInjector) {
	c.enableFaultMachinery()
	c.spaceInj = si
	si.Install(c.K, c.Net, c.cfg.Sites, faults.Hooks{
		OnCrash:   c.onCrash,
		OnRecover: c.onRecover,
	})
}

// ChosenFaultPlan returns the exact fault plan a fault-space run
// committed to (nil without an attached space, or when every decision
// was canonical). Replaying it through AttachFaults regenerates the
// same failure schedule — and, for the same (seed, config) journal
// key, a byte-identical journal.
func (c *Cluster) ChosenFaultPlan() *faults.Plan {
	if c.spaceInj == nil {
		return nil
	}
	return c.spaceInj.ChosenPlan()
}

// enableFaultMachinery switches on the crash-aware protocol paths once:
// WAL-forced votes, presumed-abort retries, failover managers. Gated by
// faultsOn so a cluster without faults stays byte-identical to earlier
// revisions.
func (c *Cluster) enableFaultMachinery() {
	if c.faultsOn {
		return
	}
	c.faultsOn = true
	c.crashed = make([]bool, c.cfg.Sites)
	c.crashAt = make([]sim.Time, c.cfg.Sites)
	c.resolveTok = make(map[resolveKey]*sim.Token)
	c.liveTx = make([]map[int64]*sim.Proc, c.cfg.Sites)
	c.wals = make([]*wal.Log, c.cfg.Sites)
	c.prepared = make([]map[int64]*preparedTx, c.cfg.Sites)
	for i := 0; i < c.cfg.Sites; i++ {
		c.liveTx[i] = make(map[int64]*sim.Proc)
		c.wals[i] = wal.NewLog()
		c.prepared[i] = make(map[int64]*preparedTx)
	}
	if c.cfg.Approach == GlobalCeiling {
		c.gcmReg = make(map[int64]*gcmEntry)
		c.failover = make([]*core.Ceiling, c.cfg.Sites)
		for i := range c.failover {
			c.failover[i] = c.newFailoverMgr(i)
		}
	}
}

// WAL returns a site's write-ahead log (nil before AttachFaults), for
// inspection in tests and reports.
func (c *Cluster) WAL(site db.SiteID) *wal.Log {
	if c.wals == nil {
		return nil
	}
	return c.wals[site]
}

func (c *Cluster) newFailoverMgr(site int) *core.Ceiling {
	m := core.NewCeiling(c.K)
	m.SetJournalSite(int32(site))
	return m
}

// onCrash loses a site's volatile state: resident transactions and
// installers die, un-decided 2PC bookkeeping vanishes (the WAL
// survives), and — global approach — the GCM evicts the site's
// registrations, or is itself marked down when the crashed site hosts
// it. Network unreachability is flipped by the injector before this
// hook runs.
func (c *Cluster) onCrash(siteID db.SiteID) {
	c.crashed[siteID] = true
	c.crashAt[siteID] = c.K.Now()

	// Kill resident transactions, in id order for determinism.
	ids := make([]int64, 0, len(c.liveTx[siteID]))
	for id := range c.liveTx[siteID] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.liveTx[siteID][id].Interrupt(ErrSiteCrashed)
	}

	// Wipe volatile 2PC participant state; pending decision timers die
	// with it. The WAL keeps the forced votes for recovery.
	ptIDs := make([]int64, 0, len(c.prepared[siteID]))
	for id := range c.prepared[siteID] {
		ptIDs = append(ptIDs, id)
	}
	sort.Slice(ptIDs, func(i, j int) bool { return ptIDs[i] < ptIDs[j] })
	for _, id := range ptIDs {
		c.prepared[siteID][id].timeout.Cancel()
	}
	c.prepared[siteID] = make(map[int64]*preparedTx)

	if c.cfg.Approach == GlobalCeiling {
		if siteID == c.cfg.GCMSite {
			c.gcmDown = true
			c.mGCMDown.Set(1)
		} else {
			// The GCM detects the crash and releases the site's
			// orphaned registrations (the killed transactions skip
			// their own release).
			evictIDs := make([]int64, 0)
			for id, e := range c.gcmReg {
				if e.home == siteID {
					evictIDs = append(evictIDs, id)
				}
			}
			sort.Slice(evictIDs, func(i, j int) bool { return evictIDs[i] < evictIDs[j] })
			for _, id := range evictIDs {
				e := c.gcmReg[id]
				c.gcm.ReleaseAll(e.st)
				c.gcm.Unregister(e.st)
				delete(c.gcmReg, id)
			}
			c.emit(c.cfg.GCMSite, journal.KResync, 0, 0, int64(len(evictIDs)), int64(siteID), "evict")
		}
		// The crashed site's failover manager state is volatile too.
		c.failover[siteID] = c.newFailoverMgr(int(siteID))
	}
	if c.cfg.Approach == LocalCeiling {
		// The local ceiling manager's lock table is volatile: recovery
		// restarts it empty (killed residents skip their releases).
		s := c.sites[siteID]
		s.mgr = core.NewCeiling(c.K)
		s.mgr.SetJournalSite(int32(siteID))
	}
}

// onRecover brings a site back: it replays the WAL's in-doubt votes
// into fresh prepared state and spawns resolvers to settle them with
// their coordinators; a recovering GCM site purges registrations whose
// transactions died while it was down and resumes global locking.
func (c *Cluster) onRecover(siteID db.SiteID) {
	c.crashed[siteID] = false
	if d := c.K.Now().Sub(c.crashAt[siteID]); d >= 0 {
		c.K.Metrics().Histogram("recovery_duration_ticks",
			"Crash-to-recovery (resync complete) windows per site, in ticks.", nil).Observe(int64(d))
	}
	if c.cfg.Approach != GlobalCeiling {
		return
	}
	pending := c.wals[siteID].PendingVotes()
	c.emit(siteID, journal.KWALRedo, 0, 0, int64(len(pending)), 0, "")
	for _, v := range pending {
		c.prepared[siteID][v.Tx] = &preparedTx{coord: db.SiteID(v.Coord), objs: v.Objs, at: c.K.Now()}
	}
	for _, v := range pending {
		c.spawnResolver(siteID, v.Tx)
	}
	if siteID == c.cfg.GCMSite {
		c.gcmDown = false
		c.mGCMDown.Set(0)
		purgeIDs := make([]int64, 0)
		for id, e := range c.gcmReg {
			if e.p.Dead() {
				purgeIDs = append(purgeIDs, id)
			}
		}
		sort.Slice(purgeIDs, func(i, j int) bool { return purgeIDs[i] < purgeIDs[j] })
		for _, id := range purgeIDs {
			e := c.gcmReg[id]
			c.gcm.ReleaseAll(e.st)
			c.gcm.Unregister(e.st)
			delete(c.gcmReg, id)
		}
		c.emit(siteID, journal.KResync, 0, 0, int64(len(purgeIDs)), int64(siteID), "resync")
	}
}

// Config returns the effective configuration (defaults filled in).
func (c *Cluster) Config() Config { return c.cfg }

// Replication returns the replica statistics (meaningful for the local
// approach).
func (c *Cluster) Replication() ReplicationStats { return c.repl }

// NetReport aggregates the run's message-layer counters: the network's
// send and loss counts plus every site's message-server delivery and
// no-handler counts.
func (c *Cluster) NetReport() stats.NetReport {
	r := stats.NetReport{
		Sent:         c.Net.Sent,
		DroppedDown:  c.Net.DroppedDown,
		DroppedCut:   c.Net.DroppedCut,
		DroppedFault: c.Net.DroppedFault,
		Duplicated:   c.Net.Duplicated,
	}
	for _, s := range c.sites {
		srv := c.Net.Server(s.id)
		r.Delivered += srv.Delivered
		r.DroppedNoHandler += srv.Dropped
	}
	return r
}

// Site returns site i's store, for inspection in tests and examples.
func (c *Cluster) Store(i db.SiteID) *db.Store { return c.sites[i].store }

// Load schedules the transactions' arrivals. An arrival at a crashed
// site is lost with the site's volatile state: it is recorded as an
// immediate miss and never spawns a process.
func (c *Cluster) Load(txs []*workload.Txn) {
	for _, t := range txs {
		t := t
		c.K.At(t.Arrival, func() {
			if c.faultsOn && c.crashed[t.Home] {
				c.emit(t.Home, journal.KArrive, t.ID, 0, int64(t.Deadline), 0, "")
				c.emit(t.Home, journal.KDeadlineMiss, t.ID, 0, 0, 0, "crashed")
				c.mMissCrash.Inc()
				c.Monitor.Add(stats.TxRecord{
					ID: t.ID, Site: t.Home, Size: t.Size(),
					ReadOnly: t.Kind == workload.ReadOnly,
					Arrival:  t.Arrival, Start: t.Arrival,
					Deadline: t.Deadline, Finish: c.K.Now(),
					Outcome: stats.DeadlineMissed,
				})
				c.cfg.Timeline.Tx(c.K.Now(), false, 0, 0)
				return
			}
			c.K.Spawn("tx"+strconv.FormatInt(t.ID, 10), func(p *sim.Proc) {
				c.mInflight.Add(1)
				defer c.mInflight.Add(-1)
				if c.faultsOn {
					c.liveTx[t.Home][t.ID] = p
					defer delete(c.liveTx[t.Home], t.ID)
				}
				if c.cfg.Approach == GlobalCeiling {
					c.execGlobal(p, t)
				} else {
					c.execLocal(p, t)
				}
			})
		})
	}
}

// Run drives the simulation to completion, tears down the message
// servers, and returns the summary.
func (c *Cluster) Run() stats.Summary {
	c.K.Run()
	c.Net.Shutdown()
	c.K.Run()
	if c.K.Live() > 0 {
		// Stuck installers or transactions (should not happen: every
		// transaction has a deadline timer and installers time out).
		_ = c.K.Shutdown()
	}
	c.cfg.Timeline.Finish(c.Monitor.Horizon())
	sum := c.Monitor.Summarize()
	if h := c.Monitor.Horizon(); h > 0 {
		var busy sim.Duration
		for _, s := range c.sites {
			busy += s.cpu.Busy()
		}
		sum.CPUUtil = busy.Seconds() / (sim.Duration(h).Seconds() * float64(len(c.sites)))
	}
	return sum
}

// newTxState builds the protocol state for a transaction, wiring priority
// inheritance to every site's processor (the process may be queued at any
// of them while executing remotely).
func (c *Cluster) newTxState(p *sim.Proc, t *workload.Txn) *core.TxState {
	st := core.NewTxState(t.ID, t.Priority(), p)
	st.ReadSet = t.ReadSet()
	st.WriteSet = t.WriteSet()
	st.OnPrioChange = func(pr sim.Priority) {
		for _, s := range c.sites {
			s.cpu.Reprioritize(p, pr)
		}
	}
	return st
}

// emit appends a site-tagged record to the cluster's journal (a no-op
// without one). Dist-layer events carry the transaction's home site or
// the site where the event physically happens, unlike the kernel's own
// records which use the kernel-wide default site.
func (c *Cluster) emit(site db.SiteID, kind journal.Kind, tx int64, obj int32, a, b int64, note string) {
	c.K.Journal().Append(int64(c.K.Now()), kind, int32(site), tx, obj, a, b, note)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// record finalizes the monitor record for a processed transaction.
func (c *Cluster) record(p *sim.Proc, t *workload.Txn, st *core.TxState, err error, msgs int) {
	if errors.Is(err, sim.ErrShutdown) {
		return
	}
	rec := stats.TxRecord{
		ID:           t.ID,
		Site:         t.Home,
		Size:         t.Size(),
		ReadOnly:     t.Kind == workload.ReadOnly,
		Arrival:      t.Arrival,
		Start:        t.Arrival,
		Deadline:     t.Deadline,
		Finish:       p.Now(),
		Blocked:      st.BlockedTime,
		BlockedCount: st.BlockedCount,
		Messages:     msgs,
	}
	if err == nil {
		rec.Outcome = stats.Committed
		c.mCommits.Inc()
		c.emit(t.Home, journal.KCommit, t.ID, 0, 0, 0, "")
		if c.History != nil {
			c.History.Commit(t.ID)
		}
	} else {
		rec.Outcome = stats.DeadlineMissed
		note := ""
		if errors.Is(err, ErrSiteCrashed) {
			note = "crashed"
			c.mMissCrash.Inc()
		} else {
			c.mMissDead.Inc()
		}
		c.emit(t.Home, journal.KDeadlineMiss, t.ID, 0, 0, 0, note)
	}
	c.Monitor.Add(rec)
	c.cfg.Timeline.Tx(rec.Finish, rec.Outcome == stats.Committed,
		rec.Finish.Sub(rec.Arrival), rec.Restarts)
}
