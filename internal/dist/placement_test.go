package dist

// Placement-aware execution paths: validation of the new config
// surface, micro-semantics of each mode (sharded, quorum, primary-only),
// byte-determinism across repeated runs, invariant audits per policy,
// and crash-recovery behavior of the sharded and quorum modes.

import (
	"strings"
	"testing"

	"rtlock/internal/audit"
	"rtlock/internal/core"
	"rtlock/internal/db"
	"rtlock/internal/faults"
	"rtlock/internal/journal"
	"rtlock/internal/place"
	"rtlock/internal/sim"
	"rtlock/internal/workload"
)

func findPlacementBanner(j *journal.Journal) *journal.Record {
	for _, r := range j.Records() {
		if r.Kind == journal.KPlacement {
			return &r
		}
	}
	return nil
}

func pcfg(pol place.Policy, delay sim.Duration) Config {
	return Config{
		Placement: pol,
		Sites:     3,
		Objects:   30, // 10 per site under range partitioning
		CommDelay: delay,
		CPUPerObj: 10 * sim.Millisecond,
	}
}

// TestPlacementValidation pins the exact rejection messages of the new
// placement and quorum fields.
func TestPlacementValidation(t *testing.T) {
	base := func(c Config) Config {
		if c.Sites == 0 {
			c.Sites = 4
		}
		c.Objects = 40
		c.CPUPerObj = sim.Millisecond
		return c
	}
	cases := []struct {
		name string
		c    Config
		want string
	}{
		{"unknown policy", Config{Placement: place.Policy(9)},
			"dist: unknown placement policy 9"},
		{"approach with shard", Config{Placement: place.Sharded, Approach: LocalCeiling},
			"dist: placement shard selects its own execution model; approach must be unset, got local"},
		{"approach with quorum", Config{Placement: place.Quorum, Approach: GlobalCeiling},
			"dist: placement quorum selects its own execution model; approach must be unset, got global"},
		{"full with global", Config{Placement: place.Full, Approach: GlobalCeiling},
			"dist: placement full is the local approach's layout; approach must be local or unset"},
		{"hash without placement", Config{Approach: LocalCeiling, HashShards: true},
			"dist: hash sharding requires a sharded, quorum, or primary-only placement"},
		{"replicas without quorum", Config{Placement: place.Sharded, Replicas: 2},
			"dist: replica and quorum parameters require placement quorum"},
		{"read quorum without quorum", Config{Approach: GlobalCeiling, ReadQuorum: 2},
			"dist: replica and quorum parameters require placement quorum"},
		{"replicas exceed sites", Config{Placement: place.Quorum, Sites: 3, Replicas: 5},
			"dist: replica count 5 out of range [1,3]"},
		{"negative replicas", Config{Placement: place.Quorum, Replicas: -1},
			"dist: replica count -1 out of range [1,4]"},
		{"read quorum exceeds default k", Config{Placement: place.Quorum, ReadQuorum: 9},
			"dist: read quorum 9 out of range [1,3]"},
		{"write quorum exceeds k", Config{Placement: place.Quorum, Replicas: 4, WriteQuorum: 5},
			"dist: write quorum 5 out of range [1,4]"},
		{"non-intersecting quorums", Config{Placement: place.Quorum, Replicas: 4, ReadQuorum: 2, WriteQuorum: 2},
			"dist: quorums R=2 W=2 do not intersect over K=4 replicas (need R+W > K)"},
	}
	for _, tc := range cases {
		c := base(tc.c)
		err := c.Validate()
		if err == nil || err.Error() != tc.want {
			t.Errorf("%s: Validate() = %v, want %q", tc.name, err, tc.want)
		}
		if _, err := NewCluster(c); err == nil {
			t.Errorf("%s: NewCluster accepted the invalid config", tc.name)
		}
	}
	// A defaulted partner that cannot intersect an explicit quorum is
	// caught when the defaults are filled in.
	c := base(Config{Placement: place.Quorum, Sites: 6, Replicas: 5, WriteQuorum: 2})
	if _, err := NewCluster(c); err == nil ||
		err.Error() != "dist: quorums R=3 W=2 do not intersect over K=5 replicas (need R+W > K)" {
		t.Errorf("defaulted non-intersecting quorum: %v", err)
	}
	// Bad locality probability is rejected by the workload layer.
	if _, err := workload.NewStream(workload.Params{LocalityProb: 1.5}); err == nil ||
		!strings.Contains(err.Error(), "workload: ") {
		t.Errorf("LocalityProb 1.5: %v", err)
	}
	cl, err := NewCluster(pcfg(place.Sharded, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = workload.NewStream(workload.Params{
		Catalog: cl.Catalog, Count: 1, MeanInterarrival: sim.Millisecond, MeanSize: 2,
		SlackMin: 1, SlackMax: 2, PerObjCost: sim.Millisecond, LocalityProb: -0.1,
	})
	if err == nil || err.Error() != "workload: locality probability -0.1 out of [0,1]" {
		t.Errorf("LocalityProb -0.1: %v", err)
	}
}

func TestShardExecution(t *testing.T) {
	conf := pcfg(place.Sharded, 5*sim.Millisecond)
	conf.Journal = journal.New(1, "shard-exec")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	c.Load([]*workload.Txn{
		// Home-shard write: lock, CPU, and data all local. 10ms CPU.
		mkDistTxn(1, 1, 0, ms(500), []workload.Op{{Obj: 11, Mode: core.Write}}),
		// Cross-shard writer: local op (10ms), travel to shard 2
		// (5+10+5), then 2PC with site 2 (prepare+vote = 10ms).
		mkDistTxn(2, 1, ms(100), ms(500), []workload.Op{{Obj: 12, Mode: core.Write}, {Obj: 21, Mode: core.Write}}),
	})
	sum := c.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := c.Monitor.Records()
	if recs[0].Finish != ms(10) {
		t.Fatalf("local shard write finish = %v, want 10ms", recs[0].Finish)
	}
	if recs[0].Messages != 0 {
		t.Fatalf("local shard write messages = %d, want 0", recs[0].Messages)
	}
	if recs[1].Finish != ms(140) {
		t.Fatalf("cross-shard write finish = %v, want 140ms (arrival 100 + 10 + 20 + 2PC 10)", recs[1].Finish)
	}
	// Writes land at their primaries only (no replicas in this mode).
	if v := c.Store(1).Read(11); v.Seq != 1 {
		t.Fatalf("store(1) obj 11 = %+v", v)
	}
	if v := c.Store(2).Read(21); v.Seq != 1 {
		t.Fatalf("store(2) obj 21 = %+v", v)
	}
	if v := c.Store(0).Read(11); v.Seq != 0 {
		t.Fatalf("store(0) obj 11 = %+v, want no copy", v)
	}
	if c.TwoPCDecisions() == 0 {
		t.Fatal("cross-shard writer committed without 2PC")
	}
	if vs := audit.Run(conf.Journal, audit.ForPlacement("shard")...); len(vs) > 0 {
		t.Fatalf("auditors: %v", vs)
	}
	// The placement banner is journaled once, up front.
	if b := findPlacementBanner(conf.Journal); b == nil || b.Note != "shard(range)" {
		t.Fatalf("placement banner = %+v, want shard(range)", b)
	}
}

func TestQuorumReplicationRounds(t *testing.T) {
	conf := pcfg(place.Quorum, 5*sim.Millisecond)
	conf.Replicas, conf.ReadQuorum, conf.WriteQuorum = 3, 2, 2
	conf.Journal = journal.New(1, "quorum-exec")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	c.Load([]*workload.Txn{
		// Home-shard write at site 1: CPU 10ms, then the write quorum
		// round — install to replicas 2 and 0, first ack back at +10ms.
		mkDistTxn(1, 1, 0, ms(500), []workload.Op{{Obj: 11, Mode: core.Write}}),
		// Later read of the same object from its primary site: the read
		// quorum (primary + 1 reply) must observe the committed version.
		mkDistTxn(2, 1, ms(100), ms(500), []workload.Op{{Obj: 11, Mode: core.Read}}),
	})
	sum := c.Run()
	if sum.Committed != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	recs := c.Monitor.Records()
	if recs[0].Finish != ms(20) {
		t.Fatalf("write finish = %v, want 20ms (CPU 10 + write round 10)", recs[0].Finish)
	}
	if recs[1].Finish != ms(120) {
		t.Fatalf("read finish = %v, want 120ms (arrival 100 + CPU 10 + read round 10)", recs[1].Finish)
	}
	// The committed version replicated to every replica of object 11
	// (primary 1, then sites 2 and 0).
	for site := db.SiteID(0); site < 3; site++ {
		if v := c.Store(site).Read(11); v.Seq != 1 {
			t.Fatalf("store(%d) obj 11 = %+v, want seq 1", site, v)
		}
	}
	var wrote, read bool
	for _, r := range conf.Journal.Records() {
		switch r.Kind {
		case journal.KQuorumWrite:
			wrote = true
			if r.B < 2 {
				t.Fatalf("write round acks = %d, want >= W=2", r.B)
			}
		case journal.KQuorumRead:
			read = true
			if r.A != 1 || r.B < 2 {
				t.Fatalf("read round = %+v, want seq 1 with >= R=2 replies", r)
			}
		}
	}
	if !wrote || !read {
		t.Fatalf("wrote=%t read=%t, want both rounds journaled", wrote, read)
	}
	if vs := audit.Run(conf.Journal, audit.ForPlacement("quorum")...); len(vs) > 0 {
		t.Fatalf("auditors: %v", vs)
	}
}

func TestPrimaryOnlyBaseline(t *testing.T) {
	conf := pcfg(place.PrimaryOnly, 5*sim.Millisecond)
	conf.Journal = journal.New(1, "primary-exec")
	c, err := NewCluster(conf)
	if err != nil {
		t.Fatal(err)
	}
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	c.Load([]*workload.Txn{
		// Remote write: travel (5) + CPU (10) + back (5). No locks, no
		// registration, no 2PC.
		mkDistTxn(1, 1, 0, ms(500), []workload.Op{{Obj: 21, Mode: core.Write}}),
	})
	sum := c.Run()
	if sum.Committed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	rec := c.Monitor.Records()[0]
	if rec.Finish != ms(20) {
		t.Fatalf("finish = %v, want 20ms", rec.Finish)
	}
	if rec.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (data hop only)", rec.Messages)
	}
	if v := c.Store(2).Read(21); v.Seq != 1 {
		t.Fatalf("store(2) obj 21 = %+v", v)
	}
	banner := findPlacementBanner(conf.Journal)
	if banner == nil || !strings.Contains(banner.Note, "serializability waived") {
		t.Fatalf("placement banner = %+v, want waived serializability note", banner)
	}
	for _, r := range conf.Journal.Records() {
		if r.Kind == journal.KRegister || r.Kind == journal.KLockGrant || r.Kind == journal.KTwoPCPrepare {
			t.Fatalf("uncoordinated baseline journaled coordination record %+v", r)
		}
	}
}

// placementLoad generates a locality-skewed mixed workload for a policy.
func placementLoad(t *testing.T, c *Cluster, pol place.Policy, seed int64) []*workload.Txn {
	t.Helper()
	p := workload.Params{
		Seed:             seed,
		Catalog:          c.Catalog,
		Count:            120,
		MeanInterarrival: 4 * sim.Millisecond,
		MeanSize:         3,
		ReadOnlyFrac:     0.3,
		PerObjCost:       c.Config().CPUPerObj,
		SlackMin:         6,
		SlackMax:         10,
	}
	if pol == place.Full {
		p.LocalWriteSets = true
	} else {
		p.LocalityProb = 0.7
	}
	txs, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return txs
}

// TestPlacementDeterminismAndAudits runs every policy three times and
// demands byte-identical journals plus green invariant audits.
func TestPlacementDeterminismAndAudits(t *testing.T) {
	for _, pol := range place.Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			run := func() *journal.Journal {
				conf := pcfg(pol, 3*sim.Millisecond)
				conf.Objects = 60
				if pol == place.Quorum {
					conf.Replicas, conf.ReadQuorum, conf.WriteQuorum = 3, 2, 2
				}
				conf.Journal = journal.New(7, "placement-det/"+pol.String())
				c, err := NewCluster(conf)
				if err != nil {
					t.Fatal(err)
				}
				c.Load(placementLoad(t, c, pol, 7))
				sum := c.Run()
				if sum.Committed == 0 {
					t.Fatalf("%s: nothing committed: %+v", pol, sum)
				}
				return conf.Journal
			}
			a, b, d := run(), run(), run()
			if a.Hash() != b.Hash() || a.Hash() != d.Hash() {
				t.Fatalf("%s: journals differ across identical runs:\n%s", pol, journal.Diff(a, b))
			}
			if vs := audit.Run(a, audit.ForPlacement(pol.String())...); len(vs) > 0 {
				t.Fatalf("%s: auditors: %v", pol, vs)
			}
		})
	}
}

// TestPlacementFaults crashes a site mid-run under the sharded and
// quorum modes and checks recovery-correctness plus determinism.
func TestPlacementFaults(t *testing.T) {
	for _, pol := range []place.Policy{place.Sharded, place.Quorum} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			run := func() *journal.Journal {
				conf := pcfg(pol, 3*sim.Millisecond)
				conf.Objects = 60
				if pol == place.Quorum {
					conf.Replicas, conf.ReadQuorum, conf.WriteQuorum = 3, 2, 2
				}
				conf.Journal = journal.New(7, "placement-faults/"+pol.String())
				c, err := NewCluster(conf)
				if err != nil {
					t.Fatal(err)
				}
				plan := &faults.Plan{Crashes: []faults.Crash{{
					Site: 0, At: 30 * int64(sim.Millisecond), RecoverAt: 250 * int64(sim.Millisecond),
				}}}
				if err := c.AttachFaults(plan, 11); err != nil {
					t.Fatal(err)
				}
				c.Load(placementLoad(t, c, pol, 7))
				sum := c.Run()
				if sum.Committed == 0 {
					t.Fatalf("%s: nothing committed under faults: %+v", pol, sum)
				}
				return conf.Journal
			}
			a, b := run(), run()
			if a.Hash() != b.Hash() {
				t.Fatalf("%s: fault runs differ:\n%s", pol, journal.Diff(a, b))
			}
			if vs := audit.Run(a, audit.ForPlacementFaults(pol.String())...); len(vs) > 0 {
				t.Fatalf("%s: auditors: %v", pol, vs)
			}
		})
	}
}
